/**
 * @file
 * Policy explorer: run one workload under all six paper caching
 * configurations plus the three dynamic policies and report how each
 * mechanism moves the bottlenecks - a miniature of the paper's
 * Section VII analysis for a single workload.
 *
 * Usage: policy_explorer [workload] [scale]
 *        policy_explorer --list   (print both registries and exit)
 */

#include <cstdlib>
#include <cstring>
#include <iostream>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "policy/policy_registry.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace migc;

    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        std::cout << "registered cache policies:\n"
                  << PolicyRegistry::instance().describe()
                  << "\nregistered workloads:\n"
                  << WorkloadRegistry::instance().describe()
                  << "\nsee docs/POLICIES.md for each policy's "
                     "decision points,\nparameters, and the paper "
                     "figure it appears in\n";
        return 0;
    }

    std::string name = argc > 1 ? argv[1] : "FwLRN";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    SimConfig cfg = SimConfig::defaultConfig();
    cfg.workloadScale = scale;

    auto workload = makeWorkload(name);
    std::cout << "policy sweep for " << workload->name() << " ("
              << categoryName(workload->category()) << ")\n\n";

    std::printf("%-14s %10s %8s %9s %9s %10s %10s %10s\n", "policy",
                "exec(us)", "rel", "DRAM", "row-hit", "stalls/req",
                "allocByp", "predByp");

    auto policies = CachePolicy::allPolicies();
    for (const auto &p : CachePolicy::dynamicPolicies())
        policies.push_back(p);

    double base_us = 0;
    for (const auto &policy : policies) {
        RunMetrics m = runWorkload(*workload, cfg, policy);
        double us = m.execSeconds * 1e6;
        if (policy.name == "Uncached")
            base_us = us;
        std::printf("%-14s %10.1f %8.3f %9.0f %9.3f %10.4f %10.0f "
                    "%10.0f\n",
                    policy.name.c_str(), us,
                    base_us > 0 ? us / base_us : 1.0, m.dramAccesses,
                    m.dramRowHitRate, m.stallsPerRequest,
                    m.allocBypassed, m.predictorBypasses);
    }

    std::cout << "\nrel = execution time normalized to Uncached "
                 "(Figure 6 / Figure 10 style)\n";
    return 0;
}
