/**
 * @file
 * Policy explorer: run one workload under all six caching
 * configurations (three static + three cumulative optimizations) and
 * report how each mechanism moves the bottlenecks - a miniature of
 * the paper's Section VII analysis for a single workload.
 *
 * Usage: policy_explorer [workload] [scale]
 */

#include <cstdlib>
#include <iostream>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace migc;

    std::string name = argc > 1 ? argv[1] : "FwLRN";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    SimConfig cfg = SimConfig::defaultConfig();
    cfg.workloadScale = scale;

    auto workload = makeWorkload(name);
    std::cout << "policy sweep for " << workload->name() << " ("
              << categoryName(workload->category()) << ")\n\n";

    std::printf("%-13s %10s %8s %9s %9s %10s %10s %10s\n", "policy",
                "exec(us)", "rel", "DRAM", "row-hit", "stalls/req",
                "allocByp", "predByp");

    double base_us = 0;
    for (const auto &policy : CachePolicy::allPolicies()) {
        RunMetrics m = runWorkload(*workload, cfg, policy);
        double us = m.execSeconds * 1e6;
        if (policy.name == "Uncached")
            base_us = us;
        std::printf("%-13s %10.1f %8.3f %9.0f %9.3f %10.4f %10.0f "
                    "%10.0f\n",
                    policy.name.c_str(), us,
                    base_us > 0 ? us / base_us : 1.0, m.dramAccesses,
                    m.dramRowHitRate, m.stallsPerRequest,
                    m.allocBypassed, m.predictorBypasses);
    }

    std::cout << "\nrel = execution time normalized to Uncached "
                 "(Figure 6 / Figure 10 style)\n";
    return 0;
}
