/**
 * @file
 * Custom workload: shows how a downstream user defines their own MI
 * kernel with ProgramBuilder, registers it in the WorkloadRegistry,
 * and runs it through the policy stack by name - here, a strided
 * attention-score kernel (Q.K^T row block) that is not part of the
 * paper's suite (the full three-phase attention workload lives in
 * src/workloads/attention.cc as "Attn").
 */

#include <cstdio>
#include <iostream>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "workloads/workload.hh"

namespace
{

using namespace migc;

/** A small attention-score kernel: scores = Q (dot) K^T. */
class AttentionScores : public Workload
{
  public:
    std::string name() const override { return "AttnScores"; }

    Category category() const override
    {
        return Category::reuseSensitive;
    }

    WorkloadInfo
    paperInfo() const override
    {
        return {"seq 256, dim 256 (not in paper)", 1, 1, "0.8 MB"};
    }

  protected:
    std::vector<KernelDesc>
    buildKernels(double scale) const override
    {
        const std::uint32_t seq =
            std::max<std::uint32_t>(64,
                static_cast<std::uint32_t>(256 * scale));
        const std::uint32_t dim = 256;
        const Addr q_base = workload_detail::region(0);
        const Addr k_base = workload_detail::region(1);
        const Addr s_base = workload_detail::region(2);

        KernelDesc k;
        k.name = "attnScoresQKt";
        k.wavesPerWorkgroup = 4;
        k.numWorkgroups = seq / 64; // one workgroup per 64 query rows
        k.endScope = SyncScope::system;
        k.pcBase = 0x90000;
        k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
            ProgramBuilder b(k.pcBase);
            // Each wave owns 16 query rows; every wave streams the
            // whole K matrix -> massive cross-workgroup K reuse that
            // only the L2 can capture.
            std::uint64_t q_row0 =
                (static_cast<std::uint64_t>(wg) * 4 + wf) * 16;
            for (std::uint32_t kr = 0; kr < seq; kr += 16) {
                for (std::uint32_t r = 0; r < 16; ++r) {
                    b.load(0, k_base + (kr + r) * dim * 4, 4, 64);
                }
                b.load(1, q_base + q_row0 * dim * 4, 4, 64);
                b.waitLoads();
                b.lds(2);
                b.valu(16 * 16 * 4 / 64, 4);
            }
            b.store(2, s_base + q_row0 * seq * 4, 4, 64);
            return b.take();
        };
        return {k};
    }

    std::uint64_t
    modelFootprint(double scale) const override
    {
        std::uint64_t seq = std::max<std::uint64_t>(
            64, static_cast<std::uint64_t>(256 * scale));
        return seq * 256 * 4 * 2 + seq * seq * 4;
    }
};

} // namespace

int
main()
{
    using namespace migc;

    SimConfig cfg = SimConfig::defaultConfig();
    cfg.workloadScale = 1.0;

    // Registering the workload makes it addressable by name through
    // every run entry point - runNamedWorkload, the sweep engine and
    // its on-disk cache, and the figure binaries' grids.
    WorkloadRegistry::instance().add(WorkloadRegistry::Entry{
        "AttnScores", [] { return std::make_unique<AttentionScores>(); },
        -1});

    std::cout << "custom workload 'AttnScores' under all policies:\n\n";
    std::printf("%-13s %10s %12s %10s\n", "policy", "exec(us)",
                "DRAM", "L2 hit rate");
    for (const auto &policy : CachePolicy::allPolicies()) {
        RunMetrics m = runNamedWorkload("AttnScores", cfg, policy.name);
        double l2_acc = m.l2Hits + m.l2Misses;
        std::printf("%-13s %10.1f %12.0f %10.3f\n",
                    policy.name.c_str(), m.execSeconds * 1e6,
                    m.dramAccesses,
                    l2_acc > 0 ? m.l2Hits / l2_acc : 0.0);
    }
    return 0;
}
