/**
 * @file
 * Quickstart: simulate one MI workload under the three static GPU
 * caching policies and print the headline metrics.
 *
 * Usage: quickstart [workload] [scale]
 *   workload defaults to FwAct; scale defaults to 0.25.
 */

#include <cstdlib>
#include <iostream>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace migc;

    std::string name = argc > 1 ? argv[1] : "FwAct";
    double scale = argc > 2 ? std::atof(argv[2]) : 0.25;

    SimConfig cfg = SimConfig::defaultConfig();
    cfg.workloadScale = scale;

    auto workload = makeWorkload(name);
    std::cout << "workload: " << workload->name() << " ("
              << categoryName(workload->category()) << ")\n"
              << "modeled footprint: "
              << workload->footprintBytes(scale) / 1024.0 / 1024.0
              << " MiB, scale " << scale << "\n\n";

    std::cout << "policy        exec(us)   DRAM accesses   row-hit   "
                 "stalls/req\n";
    for (const auto &policy : CachePolicy::staticPolicies()) {
        RunMetrics m = runWorkload(*workload, cfg, policy);
        std::printf("%-12s %9.1f %15.0f %9.3f %12.4f\n",
                    policy.name.c_str(), m.execSeconds * 1e6,
                    m.dramAccesses, m.dramRowHitRate,
                    m.stallsPerRequest);
    }
    return 0;
}
