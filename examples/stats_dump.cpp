/**
 * @file
 * Diagnostic: run one workload under one policy and dump the entire
 * statistics tree (per-CU, per-cache, per-channel). Useful for
 * understanding where time and traffic go under each policy.
 *
 * Usage: stats_dump [workload] [policy] [scale] [filter-substring]
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>

#include "core/sim_config.hh"
#include "core/system.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace migc;

    std::string wname = argc > 1 ? argv[1] : "FwAct";
    std::string pname = argc > 2 ? argv[2] : "CacheR";
    double scale = argc > 3 ? std::atof(argv[3]) : 0.25;
    std::string filter = argc > 4 ? argv[4] : "";

    SimConfig cfg = SimConfig::defaultConfig();
    cfg.workloadScale = scale;

    System sys(cfg, CachePolicy::fromName(pname));
    auto wl = makeWorkload(wname);
    bool done = false;
    sys.gpu().dispatcher().run(wl->kernels(scale),
                               [&done] { done = true; });
    sys.eventQueue().runUntil([&done] { return done; },
                              2'000'000'000ULL);
    fatal_if(!done, "simulation did not finish");

    std::cout << "# " << wname << " / " << pname << " finished at "
              << sys.eventQueue().curTick() / 1000 << " ns, "
              << sys.eventQueue().numProcessed() << " events\n";

    std::map<std::string, double> flat;
    sys.stats().flatten(flat);
    for (const auto &[path, value] : flat) {
        if (!filter.empty() && path.find(filter) == std::string::npos)
            continue;
        if (value != 0.0)
            std::cout << path << " " << value << "\n";
    }
    return 0;
}
