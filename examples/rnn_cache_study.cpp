/**
 * @file
 * RNN cache study: sweep LSTM/GRU inference and training across
 * sequence lengths and show how cross-kernel weight reuse in the L2
 * drives the caching benefit - the paper's Section II.C/VI analysis
 * of recurrent workloads.
 *
 * Usage: rnn_cache_study [max_seq_scale]
 */

#include <cstdlib>
#include <iostream>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "workloads/rnn.hh"

int
main(int argc, char **argv)
{
    using namespace migc;

    double max_scale = argc > 1 ? std::atof(argv[1]) : 1.0;

    SimConfig cfg = SimConfig::defaultConfig();
    CachePolicy uncached = CachePolicy::fromName("Uncached");
    CachePolicy cache_r = CachePolicy::fromName("CacheR");
    CachePolicy cache_rw = CachePolicy::fromName("CacheRW");

    std::cout << "RNN weight-reuse study: longer sequences amortize "
                 "the first-step\nweight fetch across more steps, so "
                 "the caching win grows with\nsequence length "
                 "(device-scope kernel boundaries keep W in L2).\n\n";

    for (bool training : {false, true}) {
        for (RnnCell cell : {RnnCell::lstm, RnnCell::gru}) {
            RnnWorkload wl(cell, training);
            std::cout << "== " << wl.name() << " ==\n";
            std::printf("%6s %6s %12s %12s %12s %10s\n", "scale",
                        "steps", "Unc(us)", "CacheR", "CacheRW",
                        "DRAM savings");
            for (double s : {0.25, 0.5, 1.0}) {
                if (s > max_scale)
                    continue;
                cfg.workloadScale = s;
                RunMetrics mu = runWorkload(wl, cfg, uncached);
                RunMetrics mr = runWorkload(wl, cfg, cache_r);
                RunMetrics mw = runWorkload(wl, cfg, cache_rw);
                std::printf(
                    "%6.2f %6.0f %12.1f %12.3f %12.3f %9.1f%%\n", s,
                    mu.kernels,
                    mu.execSeconds * 1e6,
                    static_cast<double>(mr.execTicks) /
                        static_cast<double>(mu.execTicks),
                    static_cast<double>(mw.execTicks) /
                        static_cast<double>(mu.execTicks),
                    100.0 * (1.0 - mw.dramAccesses /
                                       mu.dramAccesses));
            }
            std::cout << "\n";
        }
    }
    std::cout << "CacheR / CacheRW columns are exec time normalized "
                 "to Uncached.\n";
    return 0;
}
