#!/usr/bin/env bash
# Fail on broken relative links and absolute-path references in the
# repository's markdown docs.
#
# Scans README.md, ROADMAP.md, and docs/*.md for inline markdown
# links/images `[text](target)` whose target is a relative path
# (external URLs and pure in-page #anchors are skipped), strips any
# #fragment, and checks that the target exists relative to the
# linking file. Absolute-path link targets and prose references to
# absolute checkout paths (`/root/...`) are also errors: they point
# at one machine's filesystem, not the repo, and rot silently.
# SNIPPETS.md is exempt — it is a generated retrieval artifact, not
# maintained documentation. CI runs this as the docs-check step; run
# it locally from the repo root before touching the docs.
set -u

cd "$(dirname "$0")/.."

status=0
checked=0

for file in README.md ROADMAP.md docs/*.md; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    # Fenced code blocks are stripped first (a C++ lambda like
    # "[](const T &x)" is not a link; a shell example may legally
    # show an absolute path).
    prose=$(awk '/^[[:space:]]*```/ { inblock = !inblock; next } !inblock' "$file")
    # One inline link target per line. Markdown permits titles after
    # the path ("](a.md \"title\")"); everything from the first
    # whitespace on is dropped with the ')'.
    targets=$(grep -oE '\]\([^)]+\)' <<< "$prose" \
        | sed -e 's/^](//' -e 's/)$//' -e 's/[[:space:]].*//')
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        case "$path" in
            /*)
                echo "ABSOLUTE: $file -> $target (link targets must be repo-relative)" >&2
                status=1
                continue
                ;;
        esac
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $file -> $target" >&2
            status=1
        fi
    done <<< "$targets"
    # Prose references to a checkout-absolute path (typically from a
    # scratch environment, e.g. `/root/related/...`) dangle for every
    # other reader of the repo.
    rootrefs=$(grep -nE '(^|[^[:alnum:]_./-])/root/[[:alnum:]_./-]+' <<< "$prose" || true)
    if [ -n "$rootrefs" ]; then
        while IFS= read -r line; do
            echo "ABSOLUTE: $file: $line (references a checkout-local /root/ path)" >&2
        done <<< "$rootrefs"
        status=1
    fi
done

if [ "$status" -eq 0 ]; then
    echo "docs-check: $checked relative links OK, no absolute-path references"
else
    echo "docs-check: broken or absolute-path references found" >&2
fi
exit $status
