#!/usr/bin/env bash
# Fail on broken relative links in the repository's markdown docs.
#
# Scans README.md and docs/*.md for inline markdown links/images
# `[text](target)` whose target is a relative path (external URLs
# and pure in-page #anchors are skipped), strips any #fragment, and
# checks that the target exists relative to the linking file. CI
# runs this as the docs-check step; run it locally from the repo
# root before touching the docs.
set -u

cd "$(dirname "$0")/.."

status=0
checked=0

for file in README.md docs/*.md; do
    [ -f "$file" ] || continue
    dir=$(dirname "$file")
    # One inline link target per line. Fenced code blocks are
    # stripped first (a C++ lambda like "[](const T &x)" is not a
    # link). Markdown permits titles after the path
    # ("](a.md \"title\")"); everything from the first whitespace on
    # is dropped with the ')'.
    targets=$(awk '/^[[:space:]]*```/ { inblock = !inblock; next } !inblock' "$file" \
        | grep -oE '\]\([^)]+\)' | sed -e 's/^](//' -e 's/)$//' -e 's/[[:space:]].*//')
    while IFS= read -r target; do
        [ -n "$target" ] || continue
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "BROKEN: $file -> $target" >&2
            status=1
        fi
    done <<< "$targets"
done

if [ "$status" -eq 0 ]; then
    echo "docs-check: $checked relative links OK"
else
    echo "docs-check: broken relative links found" >&2
fi
exit $status
