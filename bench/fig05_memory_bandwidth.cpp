/**
 * @file
 * Regenerates figure5 of the paper (see core/experiments.hh for the
 * exact definition). Results are simulated on first run and cached
 * in mi_sweep_cache.csv; the table is also written as fig05_memory_bandwidth.csv.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    migc::ExperimentSweep sweep;
    migc::FigureData fig = migc::figure5(sweep);
    migc::printFigure(std::cout, fig, 4);
    migc::writeFigureCsv("fig05_memory_bandwidth.csv", fig);
    return 0;
}
