/**
 * @file
 * Ablation: Dirty-Block-Index capacity vs. row locality.
 *
 * The paper adopts Seshadri et al.'s DBI at the GPU L2 without
 * studying its sizing; this sweep varies the rows tracked per L2
 * bank and reports DRAM row-hit rate and execution time for the
 * write-heavy BwPool workload under CacheRW-CR. Too-small indexes
 * rinse rows prematurely (capacity evictions); large indexes
 * approach ideal row-clustered drains.
 *
 * Runs go through the shared SweepEngine, so each DBI size is cached
 * in its own config section and re-runs are free.
 */

#include <cstdio>
#include <vector>

#include "core/report.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"

int
main()
{
    using namespace migc;

    std::printf("== Ablation: DBI rows per L2 bank (BwPool, "
                "CacheRW-CR) ==\n");
    std::printf("%9s %10s %10s %12s %14s\n", "dbi_rows", "exec(us)",
                "row-hit", "rinse_wbs", "dram_accesses");

    const std::vector<std::size_t> rowCounts{4, 16, 64, 256};

    SweepEngine engine;
    std::vector<RunRequest> grid;
    for (std::size_t rows : rowCounts) {
        SimConfig cfg = SimConfig::defaultConfig();
        cfg.workloadScale = 0.25;
        cfg.l2Bank.dbiRows = rows;
        grid.push_back(RunRequest{cfg, "BwPool", "CacheRW-CR"});
    }
    std::vector<RunMetrics> results = engine.run(grid);
    warnPlaceholderRows(countPlaceholderRows(results),
                        "DBI capacity ablation");

    for (std::size_t i = 0; i < rowCounts.size(); ++i) {
        const RunMetrics &m = results[i];
        std::printf("%9zu %10.1f %10.3f %12.0f %14.0f\n",
                    rowCounts[i], m.execSeconds * 1e6,
                    m.dramRowHitRate, m.rinseWritebacks,
                    m.dramAccesses);
    }
    return 0;
}
