/**
 * @file
 * Ablation: Dirty-Block-Index capacity vs. row locality.
 *
 * The paper adopts Seshadri et al.'s DBI at the GPU L2 without
 * studying its sizing; this sweep varies the rows tracked per L2
 * bank and reports DRAM row-hit rate and execution time for the
 * write-heavy BwPool workload under CacheRW-CR. Too-small indexes
 * rinse rows prematurely (capacity evictions); large indexes
 * approach ideal row-clustered drains.
 */

#include <cstdio>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace migc;

    std::printf("== Ablation: DBI rows per L2 bank (BwPool, "
                "CacheRW-CR) ==\n");
    std::printf("%9s %10s %10s %12s %14s\n", "dbi_rows", "exec(us)",
                "row-hit", "rinse_wbs", "dram_accesses");

    auto wl = makeWorkload("BwPool");
    CachePolicy policy = CachePolicy::fromName("CacheRW-CR");
    for (std::size_t rows : {4, 16, 64, 256}) {
        SimConfig cfg = SimConfig::defaultConfig();
        cfg.workloadScale = 0.25;
        cfg.l2Bank.dbiRows = rows;
        RunMetrics m = runWorkload(*wl, cfg, policy);
        std::printf("%9zu %10.1f %10.3f %12.0f %14.0f\n", rows,
                    m.execSeconds * 1e6, m.dramRowHitRate,
                    m.rinseWritebacks, m.dramAccesses);
    }
    return 0;
}
