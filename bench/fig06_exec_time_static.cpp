/**
 * @file
 * Regenerates figure6 of the paper (see core/experiments.hh for the
 * exact definition). Results are simulated on first run and cached
 * in mi_sweep_cache.csv; the table is also written as fig06_exec_time_static.csv.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    migc::ExperimentSweep sweep;
    // Simulate any missing grid points in parallel (MIGC_JOBS workers)
    // before the serial figure assembly below.
    sweep.prefetch(migc::ExperimentSweep::staticPolicyNames());
    migc::FigureData fig = migc::figure6(sweep);
    migc::printFigure(std::cout, fig, 4);
    migc::writeFigureCsv("fig06_exec_time_static.csv", fig);
    return 0;
}
