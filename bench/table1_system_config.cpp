/**
 * @file
 * Regenerates Table 1: the key simulated system parameters, for both
 * the paper-faithful configuration and the scaled configuration all
 * experiments run on.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    using namespace migc;
    std::cout << "--- paper configuration (Table 1 as published) "
                 "---\n";
    std::cout << table1Text(SimConfig::paperConfig()) << "\n";
    std::cout << "--- default experiment configuration (1/4 scale, "
                 "used by fig* benches) ---\n";
    std::cout << table1Text(SimConfig::defaultConfig()) << "\n";
    return 0;
}
