/**
 * @file
 * Regenerates figure11 of the paper (see core/experiments.hh for the
 * exact definition). Results are simulated on first run and cached
 * in mi_sweep_cache.csv; the table is also written as fig11_dram_accesses_opts.csv.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    migc::ExperimentSweep sweep;
    // Simulate any missing grid points in parallel (MIGC_JOBS workers)
    // before the serial figure assembly below.
    sweep.prefetchAll();
    migc::FigureData fig = migc::figure11(sweep);
    migc::printFigure(std::cout, fig, 4);
    migc::writeFigureCsv("fig11_dram_accesses_opts.csv", fig);
    return 0;
}
