/**
 * @file
 * Ablation: PC reuse-predictor geometry (Tian et al. style).
 *
 * Sweeps the counter threshold and the training-sample interval for
 * CacheRW-PCby on one throughput-sensitive workload (FwLRN, where
 * bypassing should win) and one reuse-sensitive workload (FwBN,
 * where over-eager bypassing would forfeit reuse). A good operating
 * point keeps FwBN's DRAM savings while shedding FwLRN's caching
 * overhead.
 */

#include <cstdio>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "workloads/workload.hh"

namespace
{

void
sweepFor(const char *workload)
{
    using namespace migc;
    std::printf("-- %s --\n", workload);
    std::printf("%10s %8s %10s %14s %12s\n", "threshold", "sample",
                "exec(us)", "dram_accesses", "pred_bypass");
    auto wl = makeWorkload(workload);
    CachePolicy policy = CachePolicy::fromName("CacheRW-PCby");
    for (unsigned threshold : {1u, 4u, 7u}) {
        for (unsigned sample : {4u, 16u, 64u}) {
            SimConfig cfg = SimConfig::defaultConfig();
            cfg.workloadScale = 0.25;
            cfg.predictor.threshold = threshold;
            cfg.predictor.initialValue = threshold;
            cfg.predictor.sampleInterval = sample;
            RunMetrics m = runWorkload(*wl, cfg, policy);
            std::printf("%10u %8u %10.1f %14.0f %12.0f\n", threshold,
                        sample, m.execSeconds * 1e6, m.dramAccesses,
                        m.predictorBypasses);
        }
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("== Ablation: PC reuse predictor geometry "
                "(CacheRW-PCby) ==\n");
    sweepFor("FwLRN");
    sweepFor("FwBN");
    return 0;
}
