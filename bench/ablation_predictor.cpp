/**
 * @file
 * Ablation: PC reuse-predictor geometry (Tian et al. style).
 *
 * Sweeps the counter threshold and the training-sample interval for
 * CacheRW-PCby on one throughput-sensitive workload (FwLRN, where
 * bypassing should win) and one reuse-sensitive workload (FwBN,
 * where over-eager bypassing would forfeit reuse). A good operating
 * point keeps FwBN's DRAM savings while shedding FwLRN's caching
 * overhead.
 *
 * Both workloads' grids are submitted to the shared SweepEngine in
 * one batch, so the 18 runs schedule longest-first across the whole
 * pool and every (threshold, sample) point caches independently.
 */

#include <cstdio>
#include <vector>

#include "core/report.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"

namespace
{

struct Point
{
    unsigned threshold;
    unsigned sample;
};

std::vector<Point>
pointGrid()
{
    std::vector<Point> grid;
    for (unsigned threshold : {1u, 4u, 7u}) {
        for (unsigned sample : {4u, 16u, 64u})
            grid.push_back({threshold, sample});
    }
    return grid;
}

void
printFor(const char *workload, const std::vector<Point> &points,
         const std::vector<migc::RunMetrics> &results)
{
    std::printf("-- %s --\n", workload);
    std::printf("%10s %8s %10s %14s %12s\n", "threshold", "sample",
                "exec(us)", "dram_accesses", "pred_bypass");
    for (std::size_t i = 0; i < points.size(); ++i) {
        const migc::RunMetrics &m = results[i];
        std::printf("%10u %8u %10.1f %14.0f %12.0f\n",
                    points[i].threshold, points[i].sample,
                    m.execSeconds * 1e6, m.dramAccesses,
                    m.predictorBypasses);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace migc;

    std::printf("== Ablation: PC reuse predictor geometry "
                "(CacheRW-PCby) ==\n");

    const std::vector<Point> points = pointGrid();
    const std::vector<const char *> workloads{"FwLRN", "FwBN"};

    SweepEngine engine;
    std::vector<RunRequest> grid;
    for (const char *w : workloads) {
        for (const Point &pt : points) {
            SimConfig cfg = SimConfig::defaultConfig();
            cfg.workloadScale = 0.25;
            cfg.predictor.threshold = pt.threshold;
            cfg.predictor.initialValue = pt.threshold;
            cfg.predictor.sampleInterval = pt.sample;
            grid.push_back(RunRequest{cfg, w, "CacheRW-PCby"});
        }
    }
    std::vector<RunMetrics> results = engine.run(grid);
    warnPlaceholderRows(countPlaceholderRows(results),
                        "predictor ablation");

    for (std::size_t w = 0; w < workloads.size(); ++w) {
        printFor(workloads[w], points,
                 {results.begin() +
                      static_cast<std::ptrdiff_t>(w * points.size()),
                  results.begin() + static_cast<std::ptrdiff_t>(
                                        (w + 1) * points.size())});
    }
    return 0;
}
