/**
 * @file
 * Ablation: PC reuse-predictor geometry (Tian et al. style).
 *
 * Sweeps the counter threshold and the training-sample interval for
 * CacheRW-PCby on one throughput-sensitive workload (FwLRN, where
 * bypassing should win) and one reuse-sensitive workload (FwBN,
 * where over-eager bypassing would forfeit reuse). A good operating
 * point keeps FwBN's DRAM savings while shedding FwLRN's caching
 * overhead.
 */

#include <cstdio>
#include <vector>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "sim/parallel.hh"
#include "workloads/workload.hh"

namespace
{

void
sweepFor(const char *workload)
{
    using namespace migc;
    std::printf("-- %s --\n", workload);
    std::printf("%10s %8s %10s %14s %12s\n", "threshold", "sample",
                "exec(us)", "dram_accesses", "pred_bypass");

    struct Point
    {
        unsigned threshold;
        unsigned sample;
    };
    std::vector<Point> grid;
    for (unsigned threshold : {1u, 4u, 7u}) {
        for (unsigned sample : {4u, 16u, 64u})
            grid.push_back({threshold, sample});
    }

    // Simulate the grid in parallel; print in grid order afterwards.
    std::vector<RunMetrics> results(grid.size());
    parallelFor(grid.size(), [&](std::size_t i) {
        auto wl = makeWorkload(workload);
        CachePolicy policy = CachePolicy::fromName("CacheRW-PCby");
        SimConfig cfg = SimConfig::defaultConfig();
        cfg.workloadScale = 0.25;
        cfg.predictor.threshold = grid[i].threshold;
        cfg.predictor.initialValue = grid[i].threshold;
        cfg.predictor.sampleInterval = grid[i].sample;
        results[i] = runWorkload(*wl, cfg, policy);
    });

    for (std::size_t i = 0; i < grid.size(); ++i) {
        const RunMetrics &m = results[i];
        std::printf("%10u %8u %10.1f %14.0f %12.0f\n",
                    grid[i].threshold, grid[i].sample,
                    m.execSeconds * 1e6, m.dramAccesses,
                    m.predictorBypasses);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    std::printf("== Ablation: PC reuse predictor geometry "
                "(CacheRW-PCby) ==\n");
    sweepFor("FwLRN");
    sweepFor("FwBN");
    return 0;
}
