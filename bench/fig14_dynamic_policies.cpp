/**
 * @file
 * Figure 14 (beyond the paper): the three dynamic policies - adaptive
 * occupancy bypass (CacheRW-DynAB), CacheR-vs-CacheRW set dueling
 * (CacheRW-Duel), and dynamic-threshold rinsing (CacheRW-DynCR) -
 * against the paper's six configurations, across all 17 paper
 * workloads plus the attention extension (18 x 9 grid).
 *
 * The whole grid runs through the SweepEngine: dynamic policies are
 * addressed purely by registry name, so they share the scheduler,
 * the per-worker System reuse, and the on-disk RunCache with the
 * paper figures - a re-run serves every point from cache with zero
 * simulations. Results print as execution time normalized to CacheRW
 * (how much each mechanism buys over plain store coalescing) plus a
 * per-policy geomean summary, and export as
 * fig14_dynamic_policies.csv.
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/report.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace migc;

    const std::vector<std::string> policies = {
        "Uncached",      "CacheR",       "CacheRW",
        "CacheRW-AB",    "CacheRW-CR",   "CacheRW-PCby",
        "CacheRW-DynAB", "CacheRW-Duel", "CacheRW-DynCR"};

    SimConfig cfg = SimConfig::defaultConfig();
    const auto workloads = extendedWorkloadOrder();

    std::vector<RunRequest> requests;
    requests.reserve(workloads.size() * policies.size());
    for (const auto &w : workloads) {
        for (const auto &p : policies)
            requests.push_back(RunRequest{cfg, w, p});
    }

    SweepEngine engine;
    std::vector<RunMetrics> results = engine.run(requests);
    warnPlaceholderRows(countPlaceholderRows(results), "Figure 14");

    FigureData fig;
    fig.title = "Figure 14: dynamic policies vs the paper's six "
                "(execution time)";
    fig.valueLabel = "normalized to CacheRW";
    fig.workloads = workloads;
    fig.series = policies;

    // results is in request order: workload-major, policy-minor.
    auto ticks = [&](std::size_t w, std::size_t p) {
        return static_cast<double>(
            results[w * policies.size() + p].execTicks);
    };
    const std::size_t cacherw = 2; // "CacheRW" index in `policies`
    for (std::size_t p = 0; p < policies.size(); ++p) {
        std::vector<double> row;
        row.reserve(workloads.size());
        for (std::size_t w = 0; w < workloads.size(); ++w) {
            double base = ticks(w, cacherw);
            row.push_back(base > 0 ? ticks(w, p) / base : 0.0);
        }
        fig.values.push_back(std::move(row));
    }

    printFigure(std::cout, fig, 4);
    writeFigureCsv("fig14_dynamic_policies.csv", fig);

    std::printf("\n%-14s %10s\n", "policy", "geomean");
    for (std::size_t p = 0; p < policies.size(); ++p)
        std::printf("%-14s %10.4f\n", policies[p].c_str(),
                    geoMean(fig.values[p]));
    std::printf("\n(%zu workloads x %zu policies; %llu simulated, "
                "%llu from cache)\n",
                workloads.size(), policies.size(),
                static_cast<unsigned long long>(
                    engine.simulationsPerformed()),
                static_cast<unsigned long long>(engine.cacheHits()));
    return 0;
}
