/**
 * @file
 * Regenerates figure9 of the paper (see core/experiments.hh for the
 * exact definition). Results are simulated on first run and cached
 * in mi_sweep_cache.csv; the table is also written as fig09_row_hits_static.csv.
 */

#include <iostream>

#include "core/experiments.hh"

int
main()
{
    migc::ExperimentSweep sweep;
    // Simulate any missing grid points in parallel (MIGC_JOBS workers)
    // before the serial figure assembly below.
    sweep.prefetch(migc::ExperimentSweep::staticPolicyNames());
    migc::FigureData fig = migc::figure9(sweep);
    migc::printFigure(std::cout, fig, 4);
    migc::writeFigureCsv("fig09_row_hits_static.csv", fig);
    return 0;
}
