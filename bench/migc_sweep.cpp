/**
 * @file
 * migc_sweep: the elastic multi-process sweep driver.
 *
 * One binary, several roles around one deterministic grid:
 *
 *  - single-process: run the grid through the SweepEngine, exactly
 *    like a figure binary (`migc_sweep --grid dynamic`).
 *  - fleet coordinator: `--shards N` builds the grid, plans the
 *    pending run-key list (longest-estimated-job-first, costs from
 *    prior RunCache rows), serves it as leases over an AF_UNIX
 *    socket (core/fleet.hh), and fork/execs N local workers that
 *    lease, simulate, checkpoint, and report until the queue drains;
 *    then merges the shard caches - byte-identical to the
 *    single-process file for any worker count, steal schedule, or
 *    crash history. `--resume` folds partial shard caches into the
 *    plan first, so only never-checkpointed keys are re-enqueued.
 *  - fleet worker: `--fleet SOCK --shard-index i` leases ranges from
 *    the coordinator at SOCK and writes to `<cache>.shard<i>`.
 *  - listening coordinator: `--listen SOCK --shards N` is the
 *    coordinator without the forking - workers are started by hand
 *    or a launcher (what `--manifest` prints); it merges at drain.
 *  - static worker: `--shards N --shard-index i` (no socket) is the
 *    coordinator-free hash partition (shard.hh) that every figure
 *    binary also speaks via MIGC_SHARDS / MIGC_SHARD_INDEX.
 *  - merge: `--shards N --merge` performs just the join - union the
 *    shard files into the canonical cache, dedupe identical rows,
 *    fail loudly on conflicting rows, delete the merged inputs.
 *
 * The grid is workloads x policies on one configuration; results
 * land in the same RunCache namespaces the figure binaries read, so
 * a sharded cold sweep followed by a merge makes every figure
 * binary's run free. See docs/SWEEPS.md for the workflows and the
 * fleet protocol.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.hh"
#include "core/fleet.hh"
#include "core/shard.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"
#include "policy/cache_policy.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "workloads/workload.hh"

namespace
{

using namespace migc;

struct Options
{
    std::string grid = "paper";     // paper | dynamic
    std::string config = "default"; // default | paper | test
    std::string cache;              // resolved in resolveCachePath()
    std::vector<std::string> workloads; // override (empty = grid's)
    std::vector<std::string> policies;  // override (empty = grid's)
    unsigned shards = 0;   // 0 = unsharded
    int shardIndex = -1;   // -1 = coordinator when shards > 0
    unsigned jobs = 0;     // threads per process (0 = MIGC_JOBS)
    bool manifest = false;
    bool merge = false;
    std::string cacheFormat; // "" = MIGC_CACHE_FORMAT / v4 default
    bool convert = false;    // rewrite the cache in --cache-format
    std::string exportPath;  // write a copy there in --cache-format

    // Fleet (elastic lease queue) options. Sockets are endpoint
    // specs: unix:<path>, tcp:<host>:<port>, or a bare AF_UNIX path.
    std::string fleetSocket;  // worker: coordinator socket to join
    std::string listenSocket; // coordinator: serve leases, don't fork
    bool push = false;        // worker: force shard push over the wire
    bool resume = false;      // fold partial shard caches into plan
    unsigned leaseSize = 2;   // keys per lease
    unsigned renewMs = 10000; // lease renew deadline
    int slowWorkerIndex = -1; // straggler injection (coordinator)
    unsigned slowWorkerMs = 0;
    unsigned slowMs = 0;      // straggler injection (this process)
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --grid paper|dynamic   17x6 paper grid (default) or the\n"
        "                         18x9 dynamic-policy grid (fig14)\n"
        "  --config default|paper|test\n"
        "                         system preset (default: default)\n"
        "  --workloads a,b,...    override the grid's workload list\n"
        "  --policies x,y,...     override the grid's policy list\n"
        "  --cache PATH           canonical cache file (default:\n"
        "                         MIGC_SWEEP_CACHE or mi_sweep_cache.csv)\n"
        "  --shards N             run an N-worker elastic fleet (fork\n"
        "                         local workers, lease run-key ranges,\n"
        "                         steal from stragglers, merge at join)\n"
        "  --shard-index I        run as worker I in [0, N): a fleet\n"
        "                         worker with --fleet, else the static\n"
        "                         hash-partition worker\n"
        "  --fleet SPEC           lease work from the coordinator at\n"
        "                         SPEC instead of a static slice;\n"
        "                         SPEC is unix:<path>, tcp:<host>:<port>,\n"
        "                         or a bare AF_UNIX path\n"
        "  --listen SPEC          coordinate on SPEC without forking\n"
        "                         workers (start them by hand; see\n"
        "                         --manifest); merges when drained.\n"
        "                         tcp:<host>:0 binds an ephemeral port\n"
        "                         and prints the real one\n"
        "  --push                 workers upload their shard cache to\n"
        "                         the coordinator before each done\n"
        "                         (default for tcp: endpoints - no\n"
        "                         shared filesystem assumed)\n"
        "  --resume               re-enqueue only keys absent from the\n"
        "                         canonical cache and the partial\n"
        "                         <cache>.shard* files of a crashed or\n"
        "                         interrupted fleet\n"
        "  --lease-size K         run keys per lease (default 2)\n"
        "  --renew-ms MS          lease renew deadline (default 10000);\n"
        "                         a worker silent this long forfeits\n"
        "                         its lease\n"
        "  --manifest             print the fleet coordinator + worker\n"
        "                         commands, then exit\n"
        "  --merge                merge <cache>.shard* into <cache>\n"
        "                         and exit\n"
        "  --cache-format v4|csv  cache serialization this process\n"
        "                         (and its forked workers) writes:\n"
        "                         v4 binary columnar (default) or the\n"
        "                         v3 csv text; reads always sniff\n"
        "  --convert              rewrite <cache> in --cache-format\n"
        "                         and exit (v4 <-> csv migration)\n"
        "  --export PATH          write a copy of <cache> to PATH in\n"
        "                         --cache-format and exit (the\n"
        "                         original is untouched)\n"
        "  --jobs J               worker threads per process\n"
        "  --slow-worker I:MS     testing: fork worker I with an MS ms\n"
        "                         sleep after every run (straggler)\n"
        "  --slow-ms MS           testing: this process sleeps MS ms\n"
        "                         after every run\n"
        "  --help                 this text\n"
        "\nsee docs/SWEEPS.md for copy-paste sweep workflows\n",
        argv0);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

unsigned
parseCount(const char *flag, const std::string &value, unsigned min,
           unsigned max)
{
    return parseBoundedUnsigned(flag, value.c_str(), min, max);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int i) -> std::string {
        fatal_if(i + 1 >= argc, "%s needs a value (--help for usage)",
                 argv[i]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else if (arg == "--grid") {
            opt.grid = need(i++);
            fatal_if(opt.grid != "paper" && opt.grid != "dynamic",
                     "--grid %s: expected paper or dynamic",
                     opt.grid.c_str());
        } else if (arg == "--config") {
            opt.config = need(i++);
            fatal_if(opt.config != "default" && opt.config != "paper" &&
                         opt.config != "test",
                     "--config %s: expected default, paper, or test",
                     opt.config.c_str());
        } else if (arg == "--workloads") {
            opt.workloads = splitList(need(i++));
        } else if (arg == "--policies") {
            opt.policies = splitList(need(i++));
        } else if (arg == "--cache") {
            opt.cache = need(i++);
        } else if (arg == "--shards") {
            opt.shards = parseCount("--shards", need(i++), 1, 4096);
        } else if (arg == "--shard-index") {
            opt.shardIndex = static_cast<int>(
                parseCount("--shard-index", need(i++), 0, 4095));
        } else if (arg == "--jobs") {
            opt.jobs = parseCount("--jobs", need(i++), 1, 4096);
        } else if (arg == "--fleet") {
            opt.fleetSocket = need(i++);
        } else if (arg == "--listen") {
            opt.listenSocket = need(i++);
        } else if (arg == "--push") {
            opt.push = true;
        } else if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--lease-size") {
            opt.leaseSize =
                parseCount("--lease-size", need(i++), 1, 4096);
        } else if (arg == "--renew-ms") {
            opt.renewMs =
                parseCount("--renew-ms", need(i++), 10, 3600000);
        } else if (arg == "--slow-worker") {
            const std::string v = need(i++);
            std::size_t colon = v.find(':');
            fatal_if(colon == std::string::npos,
                     "--slow-worker wants INDEX:MS (got %s)",
                     v.c_str());
            opt.slowWorkerIndex = static_cast<int>(parseCount(
                "--slow-worker index", v.substr(0, colon), 0, 4095));
            opt.slowWorkerMs = parseCount(
                "--slow-worker ms", v.substr(colon + 1), 1, 600000);
        } else if (arg == "--slow-ms") {
            opt.slowMs = parseCount("--slow-ms", need(i++), 1, 600000);
        } else if (arg == "--manifest") {
            opt.manifest = true;
        } else if (arg == "--merge") {
            opt.merge = true;
        } else if (arg == "--cache-format") {
            opt.cacheFormat = need(i++);
            fatal_if(opt.cacheFormat != "v4" &&
                         opt.cacheFormat != "csv" &&
                         opt.cacheFormat != "v3",
                     "--cache-format %s: expected v4 or csv",
                     opt.cacheFormat.c_str());
        } else if (arg == "--convert") {
            opt.convert = true;
        } else if (arg == "--export") {
            opt.exportPath = need(i++);
        } else {
            usage(argv[0]);
            fatal("unknown option %s", arg.c_str());
        }
    }
    fatal_if(opt.shardIndex >= 0 && opt.shards == 0 &&
                 opt.fleetSocket.empty(),
             "--shard-index needs --shards (static worker) or "
             "--fleet (fleet worker)");
    fatal_if(opt.shardIndex >= 0 && opt.shards > 0 &&
                 static_cast<unsigned>(opt.shardIndex) >= opt.shards,
             "--shard-index %d out of range for --shards %u",
             opt.shardIndex, opt.shards);
    fatal_if(!opt.fleetSocket.empty() && opt.shardIndex < 0,
             "--fleet needs --shard-index (it names the worker's "
             "private shard cache file)");
    fatal_if(!opt.fleetSocket.empty() && !opt.listenSocket.empty(),
             "--fleet (worker) and --listen (coordinator) are "
             "mutually exclusive");
    fatal_if(!opt.listenSocket.empty() && opt.shardIndex >= 0,
             "--listen coordinates; it cannot also be worker %d",
             opt.shardIndex);
    fatal_if(opt.merge && (!opt.fleetSocket.empty() ||
                           !opt.listenSocket.empty()),
             "--merge cannot be combined with --fleet/--listen");
    // --manifest --listen SPEC prints commands for that endpoint (the
    // multi-host workflow); --manifest --fleet is still meaningless
    // (a manifest describes a whole fleet, not one worker).
    fatal_if(opt.manifest && !opt.fleetSocket.empty(),
             "--manifest cannot be combined with --fleet");
    fatal_if(opt.resume && !opt.fleetSocket.empty(),
             "--resume is a coordinator option (workers just lease "
             "whatever the resumed plan still needs)");
    fatal_if(opt.slowWorkerIndex >= 0 && !opt.listenSocket.empty(),
             "--slow-worker injects at fork; with --listen, start "
             "the straggler yourself with --slow-ms");
    fatal_if((opt.convert || !opt.exportPath.empty()) &&
                 (opt.merge || opt.manifest || opt.shards > 0 ||
                  !opt.fleetSocket.empty() ||
                  !opt.listenSocket.empty()),
             "--convert/--export only rewrite the cache; they cannot "
             "be combined with sweep or fleet roles");
    return opt;
}

/** The canonical cache path: flag, else the figure binaries' env. */
std::string
resolveCachePath(const Options &opt)
{
    return opt.cache.empty() ? sweepCachePathFromEnv() : opt.cache;
}

SimConfig
makeConfig(const Options &opt)
{
    if (opt.config == "paper")
        return SimConfig::paperConfig();
    if (opt.config == "test")
        return SimConfig::testConfig();
    return SimConfig::defaultConfig();
}

std::vector<RunRequest>
buildGrid(const Options &opt, const SimConfig &cfg)
{
    std::vector<std::string> workloads = opt.workloads;
    if (workloads.empty()) {
        workloads = opt.grid == "dynamic" ? extendedWorkloadOrder()
                                          : workloadOrder();
    }
    std::vector<std::string> policies = opt.policies;
    if (policies.empty()) {
        policies = ExperimentSweep::allPolicyNames();
        if (opt.grid == "dynamic") {
            for (const CachePolicy &p : CachePolicy::dynamicPolicies())
                policies.push_back(p.name);
        }
    }
    std::vector<RunRequest> requests;
    requests.reserve(workloads.size() * policies.size());
    for (const auto &w : workloads) {
        for (const auto &p : policies)
            requests.push_back(RunRequest{cfg, w, p});
    }
    return requests;
}

/** The fleet-worker command line for worker @p index. */
std::vector<std::string>
workerArgs(const std::string &argv0, const Options &opt,
           const std::string &cache, unsigned index,
           const std::string &sock)
{
    std::vector<std::string> args{argv0,
                                  "--grid",
                                  opt.grid,
                                  "--config",
                                  opt.config,
                                  "--cache",
                                  cache,
                                  "--fleet",
                                  sock,
                                  "--shard-index",
                                  std::to_string(index)};
    if (!opt.workloads.empty()) {
        args.push_back("--workloads");
        args.push_back(joinStrings(opt.workloads, ","));
    }
    if (!opt.policies.empty()) {
        args.push_back("--policies");
        args.push_back(joinStrings(opt.policies, ","));
    }
    if (!opt.cacheFormat.empty()) {
        // The env var also propagates across fork, but the manifest
        // prints these lines for copy-paste from a fresh shell.
        args.push_back("--cache-format");
        args.push_back(opt.cacheFormat);
    }
    if (opt.jobs > 0) {
        args.push_back("--jobs");
        args.push_back(std::to_string(opt.jobs));
    }
    if (opt.push) {
        args.push_back("--push");
    }
    if (opt.slowWorkerIndex >= 0 &&
        static_cast<unsigned>(opt.slowWorkerIndex) == index) {
        args.push_back("--slow-ms");
        args.push_back(std::to_string(opt.slowWorkerMs));
    }
    return args;
}

/** Quote one argument for copy-paste into a POSIX shell. */
std::string
shellQuote(const std::string &s)
{
    static const char *safe =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "0123456789._-+=/:,@%";
    if (!s.empty() && s.find_first_not_of(safe) == std::string::npos)
        return s;
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

std::string
shellJoin(const std::vector<std::string> &args)
{
    std::vector<std::string> quoted;
    quoted.reserve(args.size());
    for (const std::string &a : args)
        quoted.push_back(shellQuote(a));
    return joinStrings(quoted, " ");
}

void
printMergeSummary(const std::string &cache, const ShardMergeStats &stats)
{
    std::printf("merged %zu shard cache%s into %s: +%zu rows, "
                "%zu duplicates deduped, %zu parse errors\n",
                stats.files, stats.files == 1 ? "" : "s", cache.c_str(),
                stats.rows, stats.duplicates, stats.parseErrors);
}

/** This binary's path for re-exec; /proc/self/exe survives PATH
 *  lookups and working-directory changes, argv[0] is the fallback. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

/**
 * The coordinator's socket address. Derived from the cache path so
 * two fleets on different caches never collide; the pid suffix keeps
 * repeated runs on one cache apart. sun_path caps AF_UNIX paths at
 * ~107 bytes, so deep build trees fall back to /tmp.
 */
std::string
fleetSocketPath(const std::string &cache)
{
    std::string sock = csprintf("%s.fleet.%d.sock", cache.c_str(),
                                static_cast<int>(::getpid()));
    if (sock.size() < 100)
        return sock;
    return csprintf("/tmp/migc_fleet_%d.sock",
                    static_cast<int>(::getpid()));
}

int
runSweep(const Options &opt, const std::string &cache, ShardSpec shard)
{
    SimConfig cfg = makeConfig(opt);
    std::vector<RunRequest> requests = buildGrid(opt, cfg);
    SweepEngine engine(cache, shard);
    if (opt.slowMs > 0)
        engine.setInjectedRunDelayMs(opt.slowMs);
    engine.run(requests, opt.jobs);
    engine.flush();
    if (shard.active()) {
        std::printf("shard %u/%u: %llu simulated, %llu from cache, "
                    "%llu owned elsewhere (grid: %zu points)\n",
                    shard.index, shard.shards,
                    static_cast<unsigned long long>(
                        engine.simulationsPerformed()),
                    static_cast<unsigned long long>(engine.cacheHits()),
                    static_cast<unsigned long long>(
                        engine.shardSkipped()),
                    requests.size());
    } else {
        std::printf("sweep done: %llu simulated, %llu from cache "
                    "(grid: %zu points, %zu cache parse errors)\n",
                    static_cast<unsigned long long>(
                        engine.simulationsPerformed()),
                    static_cast<unsigned long long>(engine.cacheHits()),
                    requests.size(), engine.cacheParseErrors());
    }
    return 0;
}

/** Fleet worker: lease run-key ranges until the grid drains. */
int
runFleetWorker(const Options &opt, const std::string &cache)
{
    SimConfig cfg = makeConfig(opt);
    std::vector<RunRequest> requests = buildGrid(opt, cfg);
    const unsigned index = static_cast<unsigned>(opt.shardIndex);

    // Push is the no-shared-filesystem mode: forced by --push, and
    // the default over TCP (a tcp: coordinator is presumed to be on
    // another machine; a unix: one shares our filesystem, where
    // pushing would just re-store files the merge already reads).
    FleetClientOptions copts;
    copts.gridSize = requests.size();
    copts.push =
        opt.push ||
        parseEndpoint(opt.fleetSocket).kind == Endpoint::Kind::tcp;

    // The client connects before the engine opens any cache file so
    // a restarted worker can fetch its own pre-crash checkpoint back
    // from the coordinator's shard store first.
    FleetClient client(opt.fleetSocket, index,
                       gridFingerprint(requests), copts);
    if (copts.push) {
        const std::string shard_file = shardCachePath(cache, index);
        std::ifstream probe(shard_file);
        if (!probe && client.fetchShard(index, shard_file)) {
            inform("worker %u: fetched its stored shard cache back "
                   "from the coordinator",
                   index);
        }
    }

    SweepEngine engine(cache, FleetWorkerSpec{index});
    if (opt.slowMs > 0)
        engine.setInjectedRunDelayMs(opt.slowMs);
    SweepEngine::FleetRunStats st =
        engine.runFleet(requests, client, opt.jobs);
    engine.flush();
    std::printf("worker %u drained: %llu simulated, %llu from cache, "
                "%llu leases, %llu stale dones\n",
                index, static_cast<unsigned long long>(st.runs),
                static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.leases),
                static_cast<unsigned long long>(st.stale));
    return 0;
}

/** The per-worker accounting block of the join summary. */
void
printFleetSummary(const FleetServer &server)
{
    for (const auto &[worker, st] : server.workerStats()) {
        std::printf("fleet worker %u: %llu runs, %llu leases "
                    "(%llu stolen, %llu expired, %llu stale), "
                    "%.1fs wall\n",
                    worker,
                    static_cast<unsigned long long>(st.runs),
                    static_cast<unsigned long long>(st.leases),
                    static_cast<unsigned long long>(st.steals),
                    static_cast<unsigned long long>(st.expired),
                    static_cast<unsigned long long>(st.staleDones),
                    st.wallSeconds());
    }
}

/**
 * Fleet coordinator: plan the pending keys, serve leases, run the
 * workers (forked locally unless @p listen_only), merge at drain.
 */
int
coordinateFleet(const Options &opt, const std::string &cache,
                const char *argv0, bool listen_only)
{
    const std::string self = selfExePath(argv0);
    SimConfig cfg = makeConfig(opt);
    std::vector<RunRequest> requests = buildGrid(opt, cfg);
    FleetPlan plan =
        planFleetSweep(requests, cache, opt.shards, opt.resume);
    inform("fleet plan: %zu of %zu grid points pending (%zu cached, "
           "%zu rows recovered from partial shard caches)",
           plan.pending.size(), requests.size(), plan.cached,
           plan.resumedRows);

    if (plan.pending.empty()) {
        // Nothing to lease; fold in whatever partial shard files a
        // previous fleet left behind and call it done.
        printMergeSummary(cache, mergeShardCaches(cache, opt.shards));
        return 0;
    }

    FleetConfig fcfg;
    fcfg.leaseSize = opt.leaseSize;
    fcfg.renewMs = opt.renewMs;
    const std::string sock = opt.listenSocket.empty()
                                 ? fleetSocketPath(cache)
                                 : opt.listenSocket;
    FleetServer server(sock,
                       FleetQueue(plan.costs, plan.pending, fcfg),
                       gridFingerprint(requests));
    // Always accept shard uploads: a unix-socket fleet shares the
    // filesystem and never pushes, but a worker that does push (tcp,
    // or --push) must find a store, and it is the same canonical
    // shardCachePath the merge reads either way.
    server.setShardStore(cache);
    server.start();

    if (listen_only) {
        // boundEndpoint resolves tcp:<host>:0 to the real port - the
        // one thing the user cannot know before start().
        const std::string bound = server.boundEndpoint().spec();
        inform("fleet coordinator on %s: %zu keys to lease; start "
               "workers with --fleet %s --shard-index I (I < %u), "
               "merging when drained",
               bound.c_str(), plan.pending.size(), bound.c_str(),
               opt.shards);
        while (!server.drained()) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(200));
        }
        // Linger until the workers have collected their `# drained`
        // replies (each closes its connection on exit): stopping the
        // instant the last key retires would turn every worker's
        // final lease request into a connection error. Bounded so a
        // wedged worker cannot stall the merge.
        for (int i = 0; i < 50 && server.liveConnections() > 0; ++i) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(100));
        }
    } else {
        // The workers all run on this machine: divide the thread
        // budget between them instead of letting each one claim
        // every core. sweepJobs() is the budget so MIGC_JOBS still
        // caps the whole fleet; an explicit --jobs passes through.
        Options worker_opt = opt;
        if (worker_opt.jobs == 0)
            worker_opt.jobs = std::max(1u, sweepJobs() / opt.shards);

        std::vector<pid_t> children;
        children.reserve(opt.shards);
        for (unsigned i = 0; i < opt.shards; ++i) {
            std::vector<std::string> args =
                workerArgs(self, worker_opt, cache, i, sock);
            pid_t pid = ::fork();
            fatal_if(pid < 0, "fork failed for worker %u: %s", i,
                     std::strerror(errno));
            if (pid == 0) {
                std::vector<char *> argvec;
                argvec.reserve(args.size() + 1);
                for (std::string &a : args)
                    argvec.push_back(a.data());
                argvec.push_back(nullptr);
                ::execv(self.c_str(), argvec.data());
                std::fprintf(stderr, "exec %s failed: %s\n",
                             self.c_str(), std::strerror(errno));
                std::_Exit(127);
            }
            children.push_back(pid);
        }

        // A dead worker is no longer fatal by itself: its lease
        // expires and the surviving workers absorb the keys. Only an
        // undrained queue after every worker exited means real loss.
        unsigned failed = 0;
        for (unsigned i = 0; i < children.size(); ++i) {
            int status = 0;
            if (::waitpid(children[i], &status, 0) < 0 ||
                !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
                warn("fleet worker %u (pid %d) died (status %d); "
                     "its unfinished leases return to the queue", i,
                     static_cast<int>(children[i]), status);
                ++failed;
            }
        }
        if (failed > 0 && !server.drained()) {
            server.stop();
            fatal("%u fleet worker%s died with %zu key%s still "
                  "unfinished; completed runs are checkpointed in "
                  "the shard caches - re-run with --resume to "
                  "finish the rest",
                  failed, failed == 1 ? "" : "s",
                  server.pendingCount(),
                  server.pendingCount() == 1 ? "" : "s");
        }
    }

    fatal_if(!server.drained(),
             "fleet queue not drained; re-run with --resume");
    server.stop();
    printFleetSummary(server);
    if (server.expiredLeases() > 0) {
        inform("fleet: %llu lease%s expired and requeued",
               static_cast<unsigned long long>(
                   server.expiredLeases()),
               server.expiredLeases() == 1 ? "" : "s");
    }
    printMergeSummary(cache, mergeShardCaches(cache, opt.shards));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    // Resolve --cache-format by publishing it as MIGC_CACHE_FORMAT
    // before the first RunCache exists: one source of truth for this
    // process's caches AND the forked fleet workers' (environments
    // survive fork/exec, so the whole fleet writes one format).
    if (!opt.cacheFormat.empty())
        ::setenv("MIGC_CACHE_FORMAT", opt.cacheFormat.c_str(), 1);

    // No --shards on the command line: honor the same environment
    // hook every figure binary obeys, so `MIGC_SHARDS=4
    // MIGC_SHARD_INDEX=0 migc_sweep` is a worker rather than a
    // silent full-grid run duplicating the rest of the fleet
    // (shardFromEnv is fatal on malformed or index-less specs).
    // --merge and --manifest only need the shard *count*, so they
    // accept MIGC_SHARDS without an index.
    if (opt.shards == 0 && opt.fleetSocket.empty()) {
        const char *env_shards = std::getenv("MIGC_SHARDS");
        if ((opt.merge || opt.manifest) && env_shards &&
            env_shards[0] != '\0') {
            opt.shards =
                parseCount("MIGC_SHARDS", env_shards, 1, 4096);
        } else {
            ShardSpec env = shardFromEnv();
            if (env.active()) {
                opt.shards = env.shards;
                opt.shardIndex = static_cast<int>(env.index);
            }
        }
    }
    fatal_if(opt.merge && opt.shards == 0, "--merge needs --shards");
    fatal_if(opt.manifest && opt.shards == 0,
             "--manifest needs --shards");
    fatal_if(!opt.listenSocket.empty() && opt.shards == 0,
             "--listen needs --shards (the merge scans shard files "
             "0..N-1, and workers must use indices below N)");

    const std::string cache = resolveCachePath(opt);
    fatal_if(cache.empty() &&
                 (opt.shards > 0 || !opt.fleetSocket.empty()),
             "sharded sweeps need a cache file to merge "
             "(unset MIGC_NO_CACHE or pass --cache)");

    if (opt.convert || !opt.exportPath.empty()) {
        fatal_if(cache.empty(),
                 "--convert/--export need a cache file (unset "
                 "MIGC_NO_CACHE or pass --cache)");
        RunCache rc(cache); // sniffs whatever format is on disk
        const CacheFormat fmt = cacheFormatFromEnv();
        const std::string dest =
            opt.exportPath.empty() ? cache : opt.exportPath;
        fatal_if(!rc.exportFile(dest, fmt),
                 "could not write %s", dest.c_str());
        std::printf("wrote %s as %s (%zu rows; source format %s)\n",
                    dest.c_str(), cacheFormatName(fmt), rc.size(),
                    rc.loadedFormatName());
        return 0;
    }

    if (opt.merge) {
        printMergeSummary(cache, mergeShardCaches(cache, opt.shards));
        return 0;
    }

    if (opt.manifest) {
        const std::string self = selfExePath(argv[0]);
        // A stable, pid-free socket name (the printed commands are
        // for copy-paste, possibly from a file, long after this
        // process exited) - unless --listen named an endpoint, which
        // passes through verbatim (tcp: for multi-host fleets).
        const std::string sock = opt.listenSocket.empty()
                                     ? cache + ".fleet.sock"
                                     : opt.listenSocket;
        const bool tcp =
            parseEndpoint(sock).kind == Endpoint::Kind::tcp;
        std::printf(
            "# elastic fleet: start the coordinator first (it owns "
            "the lease queue\n"
            "# and merges at drain), then one worker per index%s:\n",
            tcp ? " on any host that can reach it (shard files "
                  "travel over the socket)"
                : " on the same host");
        std::vector<std::string> coord{
            self,           "--grid",  opt.grid,
            "--config",     opt.config, "--cache",
            cache,          "--shards", std::to_string(opt.shards),
            "--listen",     sock};
        if (!opt.workloads.empty()) {
            coord.push_back("--workloads");
            coord.push_back(joinStrings(opt.workloads, ","));
        }
        if (!opt.policies.empty()) {
            coord.push_back("--policies");
            coord.push_back(joinStrings(opt.policies, ","));
        }
        if (!opt.cacheFormat.empty()) {
            coord.push_back("--cache-format");
            coord.push_back(opt.cacheFormat);
        }
        if (opt.resume)
            coord.push_back("--resume");
        std::printf("%s\n", shellJoin(coord).c_str());
        for (unsigned i = 0; i < opt.shards; ++i)
            std::printf(
                "%s\n",
                shellJoin(workerArgs(self, opt, cache, i, sock))
                    .c_str());
        std::printf(
            "# after a crash, rerun the coordinator line with "
            "--resume: only keys\n"
            "# absent from the canonical cache and the partial "
            "<cache>.shard* files\n"
            "# are re-enqueued\n");
        return 0;
    }

    if (!opt.fleetSocket.empty())
        return runFleetWorker(opt, cache);

    if (!opt.listenSocket.empty())
        return coordinateFleet(opt, cache, argv[0],
                               /*listen_only=*/true);

    if (opt.shards > 0 && opt.shardIndex < 0)
        return coordinateFleet(opt, cache, argv[0],
                               /*listen_only=*/false);

    ShardSpec shard;
    if (opt.shards > 0) {
        shard.shards = opt.shards;
        shard.index = static_cast<unsigned>(opt.shardIndex);
    }
    return runSweep(opt, cache, shard);
}
