/**
 * @file
 * migc_sweep: the multi-process sharded sweep driver.
 *
 * One binary, four roles around one deterministic grid:
 *
 *  - single-process: run the grid through the SweepEngine, exactly
 *    like a figure binary (`migc_sweep --grid dynamic`).
 *  - coordinator: `--shards N` fork/execs N local workers (one per
 *    shard index), waits for all of them, then merges their shard
 *    cache files into the canonical cache - byte-identical to the
 *    single-process file.
 *  - worker: `--shards N --shard-index i` simulates only the grid
 *    points shard i owns and writes them to `<cache>.shard<i>`.
 *    External launchers (a cluster, a container fleet) run workers
 *    directly; `--manifest` prints the exact command per shard plus
 *    the join step.
 *  - merge: `--shards N --merge` performs just the join - union the
 *    shard files into the canonical cache, dedupe identical rows,
 *    fail loudly on conflicting rows, delete the merged inputs.
 *
 * The grid is workloads x policies on one configuration; results
 * land in the same RunCache namespaces the figure binaries read, so
 * a sharded cold sweep followed by a merge makes every figure
 * binary's run free. See docs/SWEEPS.md for the workflow.
 */

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/experiments.hh"
#include "core/shard.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"
#include "policy/cache_policy.hh"
#include "sim/logging.hh"
#include "sim/parallel.hh"
#include "workloads/workload.hh"

namespace
{

using namespace migc;

struct Options
{
    std::string grid = "paper";     // paper | dynamic
    std::string config = "default"; // default | paper | test
    std::string cache;              // resolved in resolveCachePath()
    std::vector<std::string> workloads; // override (empty = grid's)
    std::vector<std::string> policies;  // override (empty = grid's)
    unsigned shards = 0;   // 0 = unsharded
    int shardIndex = -1;   // -1 = coordinator when shards > 0
    unsigned jobs = 0;     // threads per process (0 = MIGC_JOBS)
    bool manifest = false;
    bool merge = false;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --grid paper|dynamic   17x6 paper grid (default) or the\n"
        "                         18x9 dynamic-policy grid (fig14)\n"
        "  --config default|paper|test\n"
        "                         system preset (default: default)\n"
        "  --workloads a,b,...    override the grid's workload list\n"
        "  --policies x,y,...     override the grid's policy list\n"
        "  --cache PATH           canonical cache file (default:\n"
        "                         MIGC_SWEEP_CACHE or mi_sweep_cache.csv)\n"
        "  --shards N             split the grid across N processes\n"
        "  --shard-index I        run as worker I in [0, N) instead of\n"
        "                         coordinating\n"
        "  --manifest             print the per-shard worker commands\n"
        "                         and the join step, then exit\n"
        "  --merge                merge <cache>.shard* into <cache>\n"
        "                         and exit\n"
        "  --jobs J               worker threads per process\n"
        "  --help                 this text\n"
        "\nsee docs/SWEEPS.md for copy-paste sharding workflows\n",
        argv0);
}

std::vector<std::string>
splitList(const std::string &s)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty())
            out.push_back(item);
    }
    return out;
}

unsigned
parseCount(const char *flag, const std::string &value, unsigned min,
           unsigned max)
{
    return parseBoundedUnsigned(flag, value.c_str(), min, max);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    auto need = [&](int i) -> std::string {
        fatal_if(i + 1 >= argc, "%s needs a value (--help for usage)",
                 argv[i]);
        return argv[i + 1];
    };
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            std::exit(0);
        } else if (arg == "--grid") {
            opt.grid = need(i++);
            fatal_if(opt.grid != "paper" && opt.grid != "dynamic",
                     "--grid %s: expected paper or dynamic",
                     opt.grid.c_str());
        } else if (arg == "--config") {
            opt.config = need(i++);
            fatal_if(opt.config != "default" && opt.config != "paper" &&
                         opt.config != "test",
                     "--config %s: expected default, paper, or test",
                     opt.config.c_str());
        } else if (arg == "--workloads") {
            opt.workloads = splitList(need(i++));
        } else if (arg == "--policies") {
            opt.policies = splitList(need(i++));
        } else if (arg == "--cache") {
            opt.cache = need(i++);
        } else if (arg == "--shards") {
            opt.shards = parseCount("--shards", need(i++), 1, 4096);
        } else if (arg == "--shard-index") {
            opt.shardIndex = static_cast<int>(
                parseCount("--shard-index", need(i++), 0, 4095));
        } else if (arg == "--jobs") {
            opt.jobs = parseCount("--jobs", need(i++), 1, 4096);
        } else if (arg == "--manifest") {
            opt.manifest = true;
        } else if (arg == "--merge") {
            opt.merge = true;
        } else {
            usage(argv[0]);
            fatal("unknown option %s", arg.c_str());
        }
    }
    fatal_if(opt.shardIndex >= 0 && opt.shards == 0,
             "--shard-index needs --shards");
    fatal_if(opt.shardIndex >= 0 &&
                 static_cast<unsigned>(opt.shardIndex) >= opt.shards,
             "--shard-index %d out of range for --shards %u",
             opt.shardIndex, opt.shards);
    return opt;
}

/** The canonical cache path: flag, else the figure binaries' env. */
std::string
resolveCachePath(const Options &opt)
{
    return opt.cache.empty() ? sweepCachePathFromEnv() : opt.cache;
}

SimConfig
makeConfig(const Options &opt)
{
    if (opt.config == "paper")
        return SimConfig::paperConfig();
    if (opt.config == "test")
        return SimConfig::testConfig();
    return SimConfig::defaultConfig();
}

std::vector<RunRequest>
buildGrid(const Options &opt, const SimConfig &cfg)
{
    std::vector<std::string> workloads = opt.workloads;
    if (workloads.empty()) {
        workloads = opt.grid == "dynamic" ? extendedWorkloadOrder()
                                          : workloadOrder();
    }
    std::vector<std::string> policies = opt.policies;
    if (policies.empty()) {
        policies = ExperimentSweep::allPolicyNames();
        if (opt.grid == "dynamic") {
            for (const CachePolicy &p : CachePolicy::dynamicPolicies())
                policies.push_back(p.name);
        }
    }
    std::vector<RunRequest> requests;
    requests.reserve(workloads.size() * policies.size());
    for (const auto &w : workloads) {
        for (const auto &p : policies)
            requests.push_back(RunRequest{cfg, w, p});
    }
    return requests;
}

/** The worker command line for shard @p index of this invocation. */
std::vector<std::string>
workerArgs(const std::string &argv0, const Options &opt,
           const std::string &cache, unsigned index)
{
    std::vector<std::string> args{argv0,
                                  "--grid",
                                  opt.grid,
                                  "--config",
                                  opt.config,
                                  "--cache",
                                  cache,
                                  "--shards",
                                  std::to_string(opt.shards),
                                  "--shard-index",
                                  std::to_string(index)};
    if (!opt.workloads.empty()) {
        args.push_back("--workloads");
        args.push_back(joinStrings(opt.workloads, ","));
    }
    if (!opt.policies.empty()) {
        args.push_back("--policies");
        args.push_back(joinStrings(opt.policies, ","));
    }
    if (opt.jobs > 0) {
        args.push_back("--jobs");
        args.push_back(std::to_string(opt.jobs));
    }
    return args;
}

/** Quote one argument for copy-paste into a POSIX shell. */
std::string
shellQuote(const std::string &s)
{
    static const char *safe =
        "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
        "0123456789._-+=/:,@%";
    if (!s.empty() && s.find_first_not_of(safe) == std::string::npos)
        return s;
    std::string out = "'";
    for (char c : s) {
        if (c == '\'')
            out += "'\\''";
        else
            out += c;
    }
    out += "'";
    return out;
}

std::string
shellJoin(const std::vector<std::string> &args)
{
    std::vector<std::string> quoted;
    quoted.reserve(args.size());
    for (const std::string &a : args)
        quoted.push_back(shellQuote(a));
    return joinStrings(quoted, " ");
}

void
printMergeSummary(const std::string &cache, const ShardMergeStats &stats)
{
    std::printf("merged %zu shard cache%s into %s: +%zu rows, "
                "%zu duplicates deduped, %zu parse errors\n",
                stats.files, stats.files == 1 ? "" : "s", cache.c_str(),
                stats.rows, stats.duplicates, stats.parseErrors);
}

/** This binary's path for re-exec; /proc/self/exe survives PATH
 *  lookups and working-directory changes, argv[0] is the fallback. */
std::string
selfExePath(const char *argv0)
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n > 0) {
        buf[n] = '\0';
        return buf;
    }
    return argv0;
}

int
runSweep(const Options &opt, const std::string &cache, ShardSpec shard)
{
    SimConfig cfg = makeConfig(opt);
    std::vector<RunRequest> requests = buildGrid(opt, cfg);
    SweepEngine engine(cache, shard);
    engine.run(requests, opt.jobs);
    engine.flush();
    if (shard.active()) {
        std::printf("shard %u/%u: %llu simulated, %llu from cache, "
                    "%llu owned elsewhere (grid: %zu points)\n",
                    shard.index, shard.shards,
                    static_cast<unsigned long long>(
                        engine.simulationsPerformed()),
                    static_cast<unsigned long long>(engine.cacheHits()),
                    static_cast<unsigned long long>(
                        engine.shardSkipped()),
                    requests.size());
    } else {
        std::printf("sweep done: %llu simulated, %llu from cache "
                    "(grid: %zu points, %zu cache parse errors)\n",
                    static_cast<unsigned long long>(
                        engine.simulationsPerformed()),
                    static_cast<unsigned long long>(engine.cacheHits()),
                    requests.size(), engine.cacheParseErrors());
    }
    return 0;
}

int
coordinate(const Options &opt, const std::string &cache,
           const char *argv0)
{
    const std::string self = selfExePath(argv0);

    // The workers all run on this machine: divide the thread budget
    // between them instead of letting each one claim every core.
    // sweepJobs() is the budget so MIGC_JOBS still caps the whole
    // fleet; an explicit --jobs is passed through as given.
    Options worker_opt = opt;
    if (worker_opt.jobs == 0)
        worker_opt.jobs = std::max(1u, sweepJobs() / opt.shards);

    std::vector<pid_t> children;
    children.reserve(opt.shards);
    for (unsigned i = 0; i < opt.shards; ++i) {
        std::vector<std::string> args =
            workerArgs(self, worker_opt, cache, i);
        pid_t pid = ::fork();
        fatal_if(pid < 0, "fork failed for shard %u: %s", i,
                 std::strerror(errno));
        if (pid == 0) {
            std::vector<char *> argvec;
            argvec.reserve(args.size() + 1);
            for (std::string &a : args)
                argvec.push_back(a.data());
            argvec.push_back(nullptr);
            ::execv(self.c_str(), argvec.data());
            std::fprintf(stderr, "exec %s failed: %s\n", self.c_str(),
                         std::strerror(errno));
            std::_Exit(127);
        }
        children.push_back(pid);
    }

    bool failed = false;
    for (unsigned i = 0; i < children.size(); ++i) {
        int status = 0;
        if (::waitpid(children[i], &status, 0) < 0 ||
            !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
            warn("shard %u worker (pid %d) failed (status %d)", i,
                 static_cast<int>(children[i]), status);
            failed = true;
        }
    }
    fatal_if(failed, "one or more shard workers failed; shard caches "
                     "left unmerged for inspection");

    printMergeSummary(cache, mergeShardCaches(cache, opt.shards));
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt = parseArgs(argc, argv);

    // No --shards on the command line: honor the same environment
    // hook every figure binary obeys, so `MIGC_SHARDS=4
    // MIGC_SHARD_INDEX=0 migc_sweep` is a worker rather than a
    // silent full-grid run duplicating the rest of the fleet
    // (shardFromEnv is fatal on malformed or index-less specs).
    // --merge and --manifest only need the shard *count*, so they
    // accept MIGC_SHARDS without an index.
    if (opt.shards == 0) {
        const char *env_shards = std::getenv("MIGC_SHARDS");
        if ((opt.merge || opt.manifest) && env_shards &&
            env_shards[0] != '\0') {
            opt.shards =
                parseCount("MIGC_SHARDS", env_shards, 1, 4096);
        } else {
            ShardSpec env = shardFromEnv();
            if (env.active()) {
                opt.shards = env.shards;
                opt.shardIndex = static_cast<int>(env.index);
            }
        }
    }
    fatal_if(opt.merge && opt.shards == 0, "--merge needs --shards");
    fatal_if(opt.manifest && opt.shards == 0,
             "--manifest needs --shards");

    const std::string cache = resolveCachePath(opt);
    fatal_if(cache.empty() && (opt.shards > 0),
             "sharded sweeps need a cache file to merge "
             "(unset MIGC_NO_CACHE or pass --cache)");

    if (opt.merge) {
        printMergeSummary(cache, mergeShardCaches(cache, opt.shards));
        return 0;
    }

    if (opt.manifest) {
        const std::string self = selfExePath(argv[0]);
        std::printf("# one command per shard; run anywhere that "
                    "shares (or later provides) the cache directory\n");
        for (unsigned i = 0; i < opt.shards; ++i)
            std::printf("%s\n",
                        shellJoin(workerArgs(self, opt, cache, i))
                            .c_str());
        std::printf("# join step, once every worker has finished:\n"
                    "%s\n",
                    shellJoin({self, "--cache", cache, "--shards",
                               std::to_string(opt.shards), "--merge"})
                        .c_str());
        return 0;
    }

    if (opt.shards > 0 && opt.shardIndex < 0)
        return coordinate(opt, cache, argv[0]);

    ShardSpec shard;
    if (opt.shards > 0) {
        shard.shards = opt.shards;
        shard.index = static_cast<unsigned>(opt.shardIndex);
    }
    return runSweep(opt, cache, shard);
}
