/**
 * @file
 * migc_serve: long-running warm-cache query service.
 *
 * Loads every section of the sweep cache into an immutable in-memory
 * snapshot and answers newline-delimited queries (exact `get` and
 * glob `match`, see docs/SERVE.md and src/serve/serve_protocol.hh)
 * without simulating anything that is already cached. Cold points
 * enqueue a simulate-on-miss job; when it finishes, a new snapshot
 * is published and the next query is a warm hit.
 *
 * Two front ends over the same ServeService:
 *
 *  - stdin (default): requests on stdin, responses on stdout, one
 *    client. EOF drains pending misses, flushes the cache, exits.
 *    `migc_serve <<< 'match default * *'` is a complete session.
 *
 *  - --socket SPEC: a stream socket (unix:<path>, tcp:<host>:<port>,
 *    or a bare AF_UNIX path - serve/transport.hh), one thread per
 *    connection, any number of concurrent clients. Runs until
 *    killed.
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/sweep_engine.hh"
#include "serve/serve_service.hh"
#include "serve/transport.hh"
#include "sim/logging.hh"

namespace
{

using namespace migc;

int
usage(const char *argv0, int code)
{
    std::fprintf(
        code == 0 ? stdout : stderr,
        "usage: %s [--cache PATH] [--socket SPEC] [--no-simulate]\n"
        "\n"
        "Serve sweep-cache results over a line protocol (docs/"
        "SERVE.md).\n"
        "\n"
        "  --cache PATH    sweep cache file to serve (default: "
        "MIGC_SWEEP_CACHE\n"
        "                  or mi_sweep_cache.csv)\n"
        "  --socket SPEC   listen on unix:<path>, tcp:<host>:<port>, "
        "or a bare\n"
        "                  AF_UNIX path instead of stdin/stdout\n"
        "  --no-simulate   answer cold points with '# miss' instead "
        "of simulating\n",
        argv0);
    return code;
}

/** One connection: read request lines, write responses. */
void
serveStream(ServeService &service, Stream &stream)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        ssize_t n = stream.read(chunk, sizeof(chunk));
        if (n <= 0)
            break;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string reply =
                service.handleLine(buf.substr(0, nl));
            buf.erase(0, nl + 1);
            if (!reply.empty() && !stream.writeAll(reply))
                return;
        }
    }
}

int
serveSocket(ServeService &service, const std::string &spec)
{
    Listener listener;
    listener.bind(parseEndpoint(spec));
    inform("serving on %s (one thread per connection; kill to stop)",
           listener.bound().spec().c_str());
    for (;;) {
        std::unique_ptr<Stream> conn = listener.accept();
        if (conn == nullptr)
            return 0; // stopped (or a non-transient accept error)
        std::shared_ptr<Stream> stream(std::move(conn));
        std::thread([&service, stream] {
            serveStream(service, *stream);
        }).detach();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string cache = sweepCachePathFromEnv();
    std::string socket_path;
    ServeService::Options opts;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--help" || arg == "-h")
            return usage(argv[0], 0);
        if (arg == "--no-simulate") {
            opts.simulate = false;
        } else if (arg == "--cache" && i + 1 < argc) {
            cache = argv[++i];
        } else if (arg == "--socket" && i + 1 < argc) {
            socket_path = argv[++i];
        } else {
            std::fprintf(stderr, "unknown argument: %s\n",
                         arg.c_str());
            return usage(argv[0], 2);
        }
    }

    // stdout is the protocol stream; keep status chatter (cache
    // load, per-simulation informs) off it in both modes.
    setInformStream(stderr);

    // A shard worker answers foreign grid points with all-zero
    // placeholder rows; a query service must never be in a position
    // to produce one. Serve the merged canonical cache instead.
    fatal_if(shardFromEnv().active(),
             "migc_serve cannot run under MIGC_SHARDS: serve the "
             "merged canonical cache, not one shard's slice");

    SweepEngine engine(cache);
    opts.cachePath = cache;
    ServeService service(engine, opts);
    // Report through the service, not engine.snapshot(): on an
    // mmap'd start the engine has not parsed the cache, and asking
    // it for a snapshot here would force exactly the parse the
    // zero-copy path exists to skip.
    inform("loaded %zu row%s from %s (%s, %.1f ms)",
           service.snapshotRows(),
           service.snapshotRows() == 1 ? "" : "s",
           cache.empty() ? "(cache disabled)" : cache.c_str(),
           service.snapshotFormat().c_str(), service.loadMs());

    if (!socket_path.empty())
        return serveSocket(service, socket_path);

    std::string line;
    while (std::getline(std::cin, line)) {
        std::string reply = service.handleLine(line);
        if (!reply.empty()) {
            std::fwrite(reply.data(), 1, reply.size(), stdout);
            std::fflush(stdout);
        }
    }
    // EOF: let enqueued misses finish and persist their rows.
    service.drain();
    engine.flush();
    return 0;
}
