/**
 * @file
 * Regenerates Table 2: the studied MI workloads, with the paper's
 * published input / kernel counts / footprints alongside the modeled
 * kernel counts and scaled footprints this reproduction simulates.
 */

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "core/sim_config.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace migc;
    SimConfig cfg = SimConfig::defaultConfig();

    std::cout << "== Table 2: studied MI workloads ==\n";
    std::printf("%-9s %-34s %11s %13s | %13s %13s %-20s\n", "name",
                "input (paper)", "kern(paper)", "footpr(paper)",
                "kern(model)", "footpr(model)", "category");
    const auto paper = workloadOrder();
    bool extensions = false;
    for (const auto &name : extendedWorkloadOrder()) {
        bool is_extension =
            std::find(paper.begin(), paper.end(), name) == paper.end();
        if (is_extension && !extensions) {
            extensions = true;
            std::printf("--- model extensions (not in the paper; "
                        "footprint scales with workloadScale=%.3f) "
                        "---\n",
                        cfg.workloadScale);
        }
        auto wl = makeWorkload(name);
        WorkloadInfo info = wl->paperInfo();
        auto kernels = wl->kernels(cfg.workloadScale);
        double mib = static_cast<double>(
                         wl->footprintBytes(cfg.workloadScale)) /
                     (1024.0 * 1024.0);
        std::printf("%-9s %-34s %5u/%-5u %13s | %13zu %11.2fMB %-20s\n",
                    wl->name().c_str(), info.input.c_str(),
                    info.uniqueKernels, info.totalKernels,
                    info.gpuFootprint.c_str(), kernels.size(), mib,
                    categoryName(wl->category()));
    }
    return 0;
}
