/**
 * @file
 * Self-contained perf harness for the simulator substrate.
 *
 * Measures events/sec (and ops/sec for the non-event scenarios)
 * across the hot paths of the simulation core - event queue churn,
 * reschedule-heavy timer traffic, deep queues, tag lookups, and two
 * end-to-end workload runs with per-category event attribution - and
 * emits the results as JSON so CI can record a perf trajectory per
 * commit and fail on regressions.
 *
 * Usage:
 *   micro_substrate [--json FILE] [--baseline FILE] [--max-regress R]
 *
 * --json FILE       write results to FILE as JSON.
 * --baseline FILE   compare the headline events/sec against FILE
 *                   (a previous --json output); exit 1 when it
 *                   regresses by more than R (default 0.30,
 *                   0 < R < 1).
 *
 * These quantify simulator performance, not modeled-hardware
 * performance.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <functional>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cache/tags.hh"
#include "core/cache_v4.hh"
#include "core/fleet.hh"
#include "core/runner.hh"
#include "core/shard.hh"
#include "core/sweep_engine.hh"
#include "core/system.hh"
#include "policy/cache_policy.hh"
#include "policy/policy_engine.hh"
#include "sim/event_queue.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

using namespace migc;
using BenchClock = std::chrono::steady_clock;

namespace
{

double
secondsSince(BenchClock::time_point t0)
{
    return std::chrono::duration<double>(BenchClock::now() - t0).count();
}

struct BenchResult
{
    std::string name;
    std::uint64_t items = 0;
    double seconds = 0.0;

    /** True when the items are simulation events (headline pool). */
    bool eventScenario = true;

    /** Per-category event counts (end-to-end scenarios only). */
    std::vector<std::pair<std::string, std::uint64_t>> byCategory;

    double rate() const { return seconds > 0 ? items / seconds : 0.0; }
};

BenchResult
benchEqScheduleService()
{
    BenchResult r;
    r.name = "eq_schedule_service";
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "bm");
    const std::uint64_t n = 20'000'000;
    Tick t = 1;
    auto t0 = BenchClock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        eq.schedule(&ev, t++);
        eq.serviceOne();
    }
    r.seconds = secondsSince(t0);
    r.items = n;
    return r;
}

BenchResult
benchEqRescheduleStorm()
{
    // The DRAM bank-timer pattern: a fixed population of events that
    // constantly move around in time. The old lazy-deletion queue
    // accumulated one stale heap entry per reschedule; the intrusive
    // heap relocates in place.
    BenchResult r;
    r.name = "eq_reschedule_storm";
    EventQueue eq;
    std::vector<std::unique_ptr<EventFunctionWrapper>> evs;
    Rng rng(7);
    for (int i = 0; i < 1024; ++i) {
        evs.push_back(std::make_unique<EventFunctionWrapper>([] {}, "bm"));
        eq.schedule(evs.back().get(), 1'000'000 + rng.below(1'000'000));
    }
    const std::uint64_t n = 4'000'000;
    auto t0 = BenchClock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        auto &ev = *evs[rng.below(evs.size())];
        eq.reschedule(&ev, 1'000'000 + i + rng.below(1'000'000));
    }
    eq.run();
    r.seconds = secondsSince(t0);
    r.items = n;
    return r;
}

BenchResult
benchEqDepth()
{
    BenchResult r;
    r.name = "eq_depth_16384";
    const std::size_t depth = 16384;
    const int reps = 100;
    for (int rep = 0; rep < reps; ++rep) {
        EventQueue eq;
        std::vector<std::unique_ptr<EventFunctionWrapper>> evs;
        Rng rng(static_cast<std::uint64_t>(rep + 1));
        for (std::size_t i = 0; i < depth; ++i) {
            evs.push_back(
                std::make_unique<EventFunctionWrapper>([] {}, "bm"));
            eq.schedule(evs.back().get(), rng.below(1'000'000));
        }
        auto t0 = BenchClock::now();
        eq.run();
        r.seconds += secondsSince(t0);
    }
    r.items = depth * reps;
    return r;
}

BenchResult
benchTagsLookupHit()
{
    BenchResult r;
    r.name = "tags_lookup_hit";
    r.eventScenario = false;
    Tags tags(1 << 20, 16, 64, ReplKind::lru);
    for (Addr a = 0; a < (1 << 20); a += 64) {
        CacheBlk *v = tags.findVictim(a);
        tags.insert(v, a, BlkState::valid, 0);
    }
    Rng rng(2);
    const std::uint64_t n = 40'000'000;
    std::uint64_t sink = 0;
    auto t0 = BenchClock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr a = rng.below((1 << 20) / 64) * 64;
        sink += tags.findBlock(a) != nullptr;
    }
    r.seconds = secondsSince(t0);
    r.items = n;
    if (sink != n)
        std::fprintf(stderr, "tags_lookup_hit: unexpected misses\n");
    return r;
}

BenchResult
benchTagsVictimSearch()
{
    BenchResult r;
    r.name = "tags_victim_search";
    r.eventScenario = false;
    Tags tags(1 << 16, 16, 64, ReplKind::lru);
    for (Addr a = 0; a < (1 << 16); a += 64) {
        CacheBlk *v = tags.findVictim(a);
        tags.insert(v, a, BlkState::valid, 0);
    }
    Rng rng(3);
    const std::uint64_t n = 20'000'000;
    std::uint64_t sink = 0;
    auto t0 = BenchClock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr a = rng.below(1 << 24) & ~63ULL;
        sink += tags.findVictim(a) != nullptr;
    }
    r.seconds = secondsSince(t0);
    r.items = n;
    (void)sink;
    return r;
}

/**
 * Sustained sequential lookup sweep over every resident line: the
 * streaming counterpart to tags_lookup_hit's random probes. Walks
 * the whole footprint in address order so each set's address lane is
 * scanned back to back - the pure SoA/SIMD scan rate with no RNG in
 * the loop.
 */
BenchResult
benchTagsSoaScanSweep()
{
    BenchResult r;
    r.name = "tags_soa_scan_sweep";
    r.eventScenario = false;
    Tags tags(1 << 20, 16, 64, ReplKind::lru);
    for (Addr a = 0; a < (1 << 20); a += 64) {
        CacheBlk *v = tags.findVictim(a);
        tags.insert(v, a, BlkState::valid, 0);
    }
    const int reps = 2000;
    const std::uint64_t lines = (1 << 20) / 64;
    std::uint64_t sink = 0;
    auto t0 = BenchClock::now();
    for (int rep = 0; rep < reps; ++rep) {
        for (Addr a = 0; a < (1 << 20); a += 64)
            sink += tags.findBlock(a) != nullptr;
    }
    r.seconds = secondsSince(t0);
    r.items = lines * reps;
    if (sink != r.items)
        std::fprintf(stderr, "tags_soa_scan_sweep: unexpected misses\n");
    return r;
}

/**
 * busyWays over random sets with half the store busy: the occupancy
 * probe the dynamic allocation-bypass policy (CacheRW-DynAB) makes
 * on every store. One popcount per call against the busy bitmap.
 */
BenchResult
benchBusyBitmapPopcount()
{
    BenchResult r;
    r.name = "busy_bitmap_popcount";
    r.eventScenario = false;
    Tags tags(1 << 20, 16, 64, ReplKind::lru);
    int i = 0;
    for (Addr a = 0; a < (1 << 20); a += 64) {
        CacheBlk *v = tags.findVictim(a);
        tags.insert(v, a, (i++ % 2) ? BlkState::busy : BlkState::valid,
                    0);
    }
    Rng rng(5);
    const std::uint64_t n = 200'000'000;
    std::uint64_t sink = 0;
    auto t0 = BenchClock::now();
    for (std::uint64_t k = 0; k < n; ++k) {
        Addr a = rng.below((1 << 20) / 64) * 64;
        sink += tags.busyWays(a);
    }
    r.seconds = secondsSince(t0);
    r.items = n;
    // Half the ways of every set are busy, so the mean must be 8.
    if (sink != n * 8)
        std::fprintf(stderr, "busy_bitmap_popcount: unexpected sum\n");
    return r;
}

/**
 * Deep-queue drain at 4x the eq_depth_16384 population: the shape
 * that separates heap arities (siftDown dominates, and the tree
 * depth spans more cache levels). Outside the headline pool so the
 * headline stays comparable with pre-PR7 records.
 */
BenchResult
benchEqDaryDepth()
{
    BenchResult r;
    r.name = "eq_dary_depth";
    r.eventScenario = false;
    const std::size_t depth = 65536;
    const int reps = 40;
    for (int rep = 0; rep < reps; ++rep) {
        EventQueue eq;
        std::vector<std::unique_ptr<EventFunctionWrapper>> evs;
        Rng rng(static_cast<std::uint64_t>(rep + 1));
        for (std::size_t i = 0; i < depth; ++i) {
            evs.push_back(
                std::make_unique<EventFunctionWrapper>([] {}, "bm"));
            eq.schedule(evs.back().get(), rng.below(1'000'000));
        }
        auto t0 = BenchClock::now();
        eq.run();
        r.seconds += secondsSince(t0);
    }
    r.items = depth * reps;
    return r;
}

BenchResult
benchEndToEnd(const std::string &workload, const std::string &policy)
{
    BenchResult r;
    r.name = "end_to_end_" + workload + "_" + policy;
    SimConfig cfg = SimConfig::testConfig();
    cfg.seed = deriveSeed(cfg.seed, workload + "/" + policy);
    auto wl = makeWorkload(workload);
    System sys(cfg, CachePolicy::fromName(policy));
    bool done = false;
    auto t0 = BenchClock::now();
    sys.gpu().dispatcher().run(wl->kernels(cfg.workloadScale),
                               [&done] { done = true; });
    sys.eventQueue().runUntil([&done] { return done; });
    r.seconds = secondsSince(t0);
    r.items = sys.eventQueue().numProcessed();
    for (std::size_t c = 0; c < numEventCategories; ++c) {
        auto cat = static_cast<EventCategory>(c);
        r.byCategory.emplace_back(eventCategoryName(cat),
                                  sys.eventQueue().numProcessed(cat));
    }
    return r;
}

/**
 * Verdict-call overhead of the PolicyEngine: the static fast path
 * every paper policy takes at each cache decision point, plus each
 * dynamic mechanism's full verdict. Outside the events/s headline
 * pool (decisions/sec, not events); gated per-scenario in perf-smoke
 * so the engine indirection can never silently slow the hot path.
 */
BenchResult
benchPolicyDecisionOverhead()
{
    BenchResult r;
    r.name = "policy_decision_overhead";
    r.eventScenario = false;
    PolicyEngine stat(CachePolicy::fromName("CacheRW-PCby"));
    PolicyEngine duel(CachePolicy::fromName("CacheRW-Duel"));
    PolicyEngine dynab(CachePolicy::fromName("CacheRW-DynAB"));
    PolicyEngine dyncr(CachePolicy::fromName("CacheRW-DynCR"));
    const std::uint64_t n = 20'000'000;
    std::uint64_t sink = 0;
    auto t0 = BenchClock::now();
    for (std::uint64_t i = 0; i < n; ++i) {
        unsigned set = static_cast<unsigned>(i & 63);
        sink += stat.rinseRow(4);                       // static fast path
        sink += stat.cacheStore(DuelRole::follower);    // static fast path
        sink += duel.cacheStore(duel.duelRole(set, 64));
        sink += dynab.occupancyBypass(set & 15, 16);
        sink += dyncr.rinseRow((i & 7) + 1);
    }
    r.seconds = secondsSince(t0);
    r.items = n * 5; // five verdicts per iteration
    // Two of the five verdicts are unconditionally true, so sink must
    // reach at least 2n; the check also keeps the verdict calls
    // observable (no dead-code elimination of the measured loop).
    if (sink < 2 * n)
        std::fprintf(stderr,
                     "policy_decision_overhead: unexpected sink\n");
    return r;
}

/**
 * Worker count for the sweep-throughput scenarios. Fixed (not
 * hardware-derived) so the runs/sec numbers compare across commits
 * on the same runner class.
 */
constexpr unsigned kSweepJobs = 4;

/**
 * The sweep-throughput grid: the paper's full 17-workload x 6-policy
 * sweep at test scale, in the exact submission order the figure
 * binaries use (workload-major). The heavy FwLRN runs sit near the
 * end of this order, which is what makes FIFO's tail visible.
 */
std::vector<RunRequest>
sweepGrid()
{
    std::vector<RunRequest> grid;
    SimConfig cfg = SimConfig::testConfig();
    for (const auto &w : workloadOrder()) {
        for (const char *p :
             {"Uncached", "CacheR", "CacheRW", "CacheRW-AB",
              "CacheRW-CR", "CacheRW-PCby"})
            grid.push_back(RunRequest{cfg, w, p});
    }
    return grid;
}

/**
 * Cold full-grid sweep the pre-engine way: FIFO submission order,
 * one freshly built System per run, no cache. The reference the
 * engine scenario is judged against.
 */
BenchResult
benchSweepColdFifo()
{
    BenchResult r;
    r.name = "sweep_cold_fifo_fresh_systems";
    r.eventScenario = false;
    auto grid = sweepGrid();
    auto t0 = BenchClock::now();
    parallelFor(
        grid.size(),
        [&](std::size_t i) {
            RunMetrics m = runNamedWorkload(
                grid[i].workload, grid[i].cfg, grid[i].policy);
            (void)m;
        },
        kSweepJobs);
    r.seconds = secondsSince(t0);
    r.items = grid.size();
    return r;
}

/**
 * The same cold grid through the SweepEngine: longest-job-first
 * scheduling plus per-worker System reuse (cache disabled, so every
 * run simulates). Bit-identical results, less wall clock on
 * multi-core hosts. @p grid_results receives the metrics so the
 * scheduler model below can replay the grid's true run costs.
 */
BenchResult
benchSweepColdEngine(std::vector<RunMetrics> &grid_results)
{
    BenchResult r;
    r.name = "sweep_cold_engine";
    r.eventScenario = false;
    auto grid = sweepGrid();
    auto t0 = BenchClock::now();
    SweepEngine engine("");
    grid_results = engine.run(grid, kSweepJobs);
    r.seconds = secondsSince(t0);
    r.items = grid.size();
    if (engine.simulationsPerformed() != grid.size())
        std::fprintf(stderr, "sweep_cold_engine: unexpected cache hits\n");
    return r;
}

/**
 * Deterministic scheduler-quality model: replay the grid's measured
 * per-run costs (sim_events, which are bit-exact and host-
 * independent) through a k-worker pool in FIFO submission order vs
 * longest-job-first, and compare makespans. This isolates the
 * tail-straggler effect the LPT scheduler removes from host core
 * count and thread noise - the wall-clock scenarios above only show
 * it when the host really has >= kSweepJobs cores.
 */
struct ScheduleModel
{
    unsigned workers;
    double fifoMakespan; ///< event units
    double lptMakespan;  ///< event units
    double ratio() const
    {
        return lptMakespan > 0 ? fifoMakespan / lptMakespan : 0.0;
    }
};

ScheduleModel
modelSchedule(const std::vector<RunMetrics> &grid_results, unsigned k)
{
    auto makespan = [k](const std::vector<double> &seq) {
        std::vector<double> workers(k, 0.0);
        for (double cost : seq) {
            auto it = std::min_element(workers.begin(), workers.end());
            *it += cost;
        }
        return *std::max_element(workers.begin(), workers.end());
    };
    std::vector<double> fifo;
    fifo.reserve(grid_results.size());
    for (const auto &m : grid_results)
        fifo.push_back(m.simEvents);
    std::vector<double> lpt = fifo;
    std::sort(lpt.begin(), lpt.end(), std::greater<double>());
    return ScheduleModel{k, makespan(fifo), makespan(lpt)};
}

/**
 * Deterministic fleet-quality model: replay the grid's measured
 * per-run costs through the static PR 5 hash partition vs the
 * work-stealing fleet (core/fleet.hh models) on a k-worker pool with
 * one 3x straggler - the sweep-level failure mode the elastic fleet
 * exists to remove. Like the schedule model above, this is built
 * from sim_events, so it is bit-exact and host-independent.
 */
struct FleetMakespanModel
{
    unsigned workers;
    double staticMakespan; ///< event units (straggler-bound)
    double stealMakespan;  ///< event units
    double ratio() const
    {
        return stealMakespan > 0 ? staticMakespan / stealMakespan
                                 : 0.0;
    }
};

FleetMakespanModel
modelFleetMakespan(const std::vector<RunMetrics> &grid_results,
                   unsigned k)
{
    // Owners come from the real shardOf hash on the real run keys,
    // so the static side is exactly the partition PR 5 would fork.
    auto grid = sweepGrid();
    std::vector<double> costs;
    std::vector<unsigned> owners;
    costs.reserve(grid_results.size());
    for (std::size_t i = 0; i < grid_results.size(); ++i) {
        costs.push_back(grid_results[i].simEvents);
        owners.push_back(shardOf(grid[i].cfg.signature(),
                                 grid[i].workload, grid[i].policy, k));
    }
    std::vector<double> speeds(k, 1.0);
    speeds[0] = 1.0 / 3.0; // one straggling worker
    return FleetMakespanModel{
        k, fleetStaticMakespan(costs, owners, speeds),
        fleetStealMakespan(costs, speeds)};
}

/**
 * Warm-cache replay: the grid is fully on disk; each iteration
 * builds a fresh engine (cache load included) and re-requests the
 * whole grid. Zero simulations - this is the "ablation re-run"
 * path, and its rate is grid points served per second.
 */
BenchResult
benchSweepWarmReplay()
{
    BenchResult r;
    r.name = "sweep_warm_replay";
    r.eventScenario = false;
    const std::string path = "BENCH_sweep_warm_cache.tmp.csv";
    std::remove(path.c_str());
    auto grid = sweepGrid();
    {
        SweepEngine engine(path);
        engine.run(grid, kSweepJobs);
    }

    const int reps = 50;
    auto t0 = BenchClock::now();
    for (int rep = 0; rep < reps; ++rep) {
        SweepEngine engine(path);
        engine.run(grid);
        if (engine.simulationsPerformed() != 0) {
            std::fprintf(stderr,
                         "sweep_warm_replay: cache miss on replay\n");
            break;
        }
    }
    r.seconds = secondsSince(t0);
    r.items = static_cast<std::uint64_t>(reps) * grid.size();
    std::remove(path.c_str());
    return r;
}

// ---------------------------------------------------------------
// Zero-copy data plane (cache v4): load, replay, and shard merge
// over a 100k-row synthetic grid. No simulation runs here - these
// scenarios time the cache serialization layer alone, at a scale
// (10 configs x 100 workloads x 100 policies) where the O(rows)
// costs dominate and a parse-vs-mmap difference is unmistakable.
// ---------------------------------------------------------------

/** Keys of the synthetic 100k-row grid. */
struct SyntheticGrid
{
    std::vector<std::string> sigs;      ///< 10 config signatures
    std::vector<std::string> workloads; ///< 100
    std::vector<std::string> policies;  ///< 100

    std::size_t rows() const
    {
        return sigs.size() * workloads.size() * policies.size();
    }
};

SyntheticGrid
syntheticGrid()
{
    SyntheticGrid g;
    for (int j = 0; j < 10; ++j)
        g.sigs.push_back(csprintf("synthcfg%02d", j));
    for (int a = 0; a < 100; ++a)
        g.workloads.push_back(csprintf("w%02d", a));
    for (int b = 0; b < 100; ++b)
        g.policies.push_back(csprintf("p%02d", b));
    return g;
}

/** A deterministic, nonzero metrics row for one synthetic key. */
RunMetrics
syntheticRow(const std::string &workload, const std::string &policy,
             std::uint64_t salt)
{
    const std::uint64_t h = splitmix64(salt);
    RunMetrics m;
    m.workload = workload;
    m.policy = policy;
    m.execTicks = 1000 + (h & 0xffff);
    m.execSeconds = static_cast<double>(m.execTicks) * 1e-9;
    m.gpuMemRequests = static_cast<double>(h % 100000);
    m.dramReads = static_cast<double>(h % 7919);
    m.dramWrites = static_cast<double>(h % 4093);
    m.dramAccesses = m.dramReads + m.dramWrites + 1.0;
    m.dramRowHitRate = static_cast<double>(h % 1000) / 1000.0;
    m.simEvents = static_cast<double>(1 + h % 65536);
    return m;
}

/** Write the synthetic grid to @p path in @p format (one compact
 *  write: the checkpoint interval is too large to trigger). */
void
writeSyntheticCache(const std::string &path, const SyntheticGrid &g,
                    CacheFormat format)
{
    std::remove(path.c_str());
    RunCache rc(path, 1u << 30, format);
    std::uint64_t salt = 0;
    for (const auto &sig : g.sigs)
        for (const auto &w : g.workloads)
            for (const auto &p : g.policies)
                rc.insert(sig, syntheticRow(w, p, ++salt));
    rc.flush();
}

/**
 * Zero-copy load: map the v4 file and build the serving snapshot
 * (checksum pass included, no row materialization). This is the
 * migc_serve startup path; its counterpart cache_v3_parse below is
 * the same logical load through the text parser.
 */
BenchResult
benchCacheV4Load(const std::string &path, const SyntheticGrid &g)
{
    BenchResult r;
    r.name = "cache_v4_load";
    r.eventScenario = false;
    const int reps = 40;
    std::size_t sink = 0;
    auto t0 = BenchClock::now();
    for (int rep = 0; rep < reps; ++rep) {
        std::string why;
        auto file = MappedCacheV4::map(path, &why);
        if (file == nullptr) {
            std::fprintf(stderr, "cache_v4_load: map failed: %s\n",
                         why.c_str());
            break;
        }
        auto snap = CacheSnapshot::fromMappedFile(std::move(file));
        sink += snap->rows();
    }
    r.seconds = secondsSince(t0);
    r.items = static_cast<std::uint64_t>(reps) * g.rows();
    if (sink != r.items)
        std::fprintf(stderr, "cache_v4_load: row count drifted\n");
    return r;
}

/** The same grid loaded through the v3 text parser. */
BenchResult
benchCacheV3Parse(const std::string &path, const SyntheticGrid &g)
{
    BenchResult r;
    r.name = "cache_v3_parse";
    r.eventScenario = false;
    const int reps = 3;
    std::size_t sink = 0;
    auto t0 = BenchClock::now();
    for (int rep = 0; rep < reps; ++rep) {
        RunCache rc(path, 1u << 30);
        sink += rc.size();
    }
    r.seconds = secondsSince(t0);
    r.items = static_cast<std::uint64_t>(reps) * g.rows();
    if (sink != r.items)
        std::fprintf(stderr, "cache_v3_parse: row count drifted\n");
    return r;
}

/**
 * Warm replay against the v4 cache: load it the way a sweep engine
 * does (bulk sorted import, no per-row map inserts) and look up
 * every grid key. Grid points served per second, the v4 analogue of
 * sweep_warm_replay's rate.
 */
BenchResult
benchWarmReplayV4(const std::string &path, const SyntheticGrid &g)
{
    BenchResult r;
    r.name = "warm_replay_v4";
    r.eventScenario = false;
    const int reps = 10;
    std::size_t hits = 0;
    auto t0 = BenchClock::now();
    for (int rep = 0; rep < reps; ++rep) {
        RunCache rc(path, 1u << 30);
        for (const auto &sig : g.sigs)
            for (const auto &w : g.workloads)
                for (const auto &p : g.policies)
                    hits += rc.find(sig, w, p) != nullptr;
    }
    r.seconds = secondsSince(t0);
    r.items = static_cast<std::uint64_t>(reps) * g.rows();
    if (hits != r.items)
        std::fprintf(stderr, "warm_replay_v4: cache miss on replay\n");
    return r;
}

/**
 * Coordinator join over 4 x 25k-row shard files (plus no canonical
 * cache). In v4 mode this takes the zero-copy k-way merge; the csv
 * variant measures the same join through the general RunCache path.
 * Only the merge itself is timed - re-seeding the consumed input
 * files between reps is setup.
 */
BenchResult
benchShardMerge100k(const std::string &base, const SyntheticGrid &g,
                    CacheFormat format, const char *name, int reps)
{
    BenchResult r;
    r.name = name;
    r.eventScenario = false;
    constexpr unsigned kShards = 4;

    // Build each shard's bytes once (round-robin key partition, so
    // shard files are key-disjoint and individually sorted), then
    // re-seed the files from memory before every timed merge.
    std::vector<std::string> blobs(kShards);
    {
        std::vector<std::unique_ptr<RunCache>> shards;
        for (unsigned i = 0; i < kShards; ++i) {
            const std::string path = shardCachePath(base, i);
            std::remove(path.c_str());
            shards.push_back(std::make_unique<RunCache>(
                path, 1u << 30, format));
        }
        std::uint64_t salt = 0;
        std::size_t at = 0;
        for (const auto &sig : g.sigs)
            for (const auto &w : g.workloads)
                for (const auto &p : g.policies)
                    shards[at++ % kShards]->insert(
                        sig, syntheticRow(w, p, ++salt));
        for (unsigned i = 0; i < kShards; ++i) {
            shards[i]->flush();
            std::ifstream in(shardCachePath(base, i),
                             std::ios::binary);
            std::stringstream ss;
            ss << in.rdbuf();
            blobs[i] = ss.str();
        }
    }

    r.seconds = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
        std::remove(base.c_str());
        for (unsigned i = 0; i < kShards; ++i) {
            std::ofstream out(shardCachePath(base, i),
                              std::ios::binary | std::ios::trunc);
            out.write(blobs[i].data(),
                      static_cast<std::streamsize>(blobs[i].size()));
        }
        auto t0 = BenchClock::now();
        ShardMergeStats stats = mergeShardCaches(base, kShards);
        r.seconds += secondsSince(t0);
        if (stats.rows != g.rows() || stats.files != kShards)
            std::fprintf(stderr, "%s: bad merge (%zu rows, %zu "
                         "files)\n", name, stats.rows, stats.files);
    }
    r.items = static_cast<std::uint64_t>(reps) * g.rows();
    std::remove(base.c_str());
    return r;
}

double
geomeanRate(const std::vector<BenchResult> &results, bool events_only)
{
    double log_sum = 0.0;
    int n = 0;
    for (const auto &r : results) {
        if (events_only && !r.eventScenario)
            continue;
        if (r.rate() <= 0)
            continue;
        log_sum += std::log(r.rate());
        ++n;
    }
    return n > 0 ? std::exp(log_sum / n) : 0.0;
}

std::string
toJson(const std::vector<BenchResult> &results, double headline,
       const std::vector<ScheduleModel> &models,
       const std::vector<FleetMakespanModel> &fleet_models)
{
    std::ostringstream os;
    os << "{\n  \"schema\": 1,\n  \"simd_isa\": \"" << Tags::simdIsa()
       << "\",\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const auto &r = results[i];
        os << "    {\"name\": \"" << r.name << "\", \"items\": "
           << r.items << ", \"seconds\": " << r.seconds
           << ", \"rate\": " << r.rate();
        if (!r.byCategory.empty()) {
            os << ", \"events_by_category\": {";
            for (std::size_t c = 0; c < r.byCategory.size(); ++c) {
                os << "\"" << r.byCategory[c].first
                   << "\": " << r.byCategory[c].second;
                if (c + 1 < r.byCategory.size())
                    os << ", ";
            }
            os << "}";
        }
        os << "}" << (i + 1 < results.size() ? "," : "") << "\n";
    }
    os << "  ],\n  \"sweep_schedule_model\": {";
    for (std::size_t i = 0; i < models.size(); ++i) {
        const auto &sm = models[i];
        os << "\"workers_" << sm.workers << "\": {\"fifo_makespan_events\": "
           << sm.fifoMakespan << ", \"lpt_makespan_events\": "
           << sm.lptMakespan << ", \"fifo_over_lpt\": " << sm.ratio()
           << "}" << (i + 1 < models.size() ? ", " : "");
    }
    os << "},\n  \"fleet_makespan_model\": {";
    for (std::size_t i = 0; i < fleet_models.size(); ++i) {
        const auto &fm = fleet_models[i];
        os << "\"workers_" << fm.workers
           << "\": {\"static_makespan_events\": " << fm.staticMakespan
           << ", \"steal_makespan_events\": " << fm.stealMakespan
           << ", \"static_over_steal\": " << fm.ratio() << "}"
           << (i + 1 < fleet_models.size() ? ", " : "");
    }
    os << "},\n  \"headline_events_per_sec\": " << headline << "\n}\n";
    return os.str();
}

/**
 * Extract a numeric field from one of our own JSON files. Minimal by
 * design: the harness only ever reads files it wrote itself.
 */
bool
extractNumber(const std::string &json, const std::string &key,
              double &out)
{
    auto pos = json.find("\"" + key + "\":");
    if (pos == std::string::npos)
        return false;
    pos = json.find(':', pos);
    return std::sscanf(json.c_str() + pos + 1, "%lf", &out) == 1;
}

/** The "rate" recorded for scenario @p name in one of our files. */
bool
extractScenarioRate(const std::string &json, const std::string &name,
                    double &out)
{
    auto pos = json.find("\"name\": \"" + name + "\"");
    if (pos == std::string::npos)
        return false;
    pos = json.find("\"rate\":", pos);
    if (pos == std::string::npos)
        return false;
    pos = json.find(':', pos);
    return std::sscanf(json.c_str() + pos + 1, "%lf", &out) == 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string json_path;
    std::string baseline_path;
    double max_regress = 0.30;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--json" && i + 1 < argc) {
            json_path = argv[++i];
        } else if (arg == "--baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
        } else if (arg == "--max-regress" && i + 1 < argc) {
            char *end = nullptr;
            max_regress = std::strtod(argv[++i], &end);
            if (end == argv[i] || *end != '\0' || max_regress <= 0.0 ||
                max_regress >= 1.0) {
                std::fprintf(stderr,
                             "--max-regress wants a fraction in (0, 1), "
                             "got '%s'\n",
                             argv[i]);
                return 2;
            }
        } else {
            std::fprintf(stderr,
                         "usage: %s [--json FILE] [--baseline FILE] "
                         "[--max-regress R]\n",
                         argv[0]);
            return 2;
        }
    }

    std::vector<BenchResult> results;
    results.push_back(benchEqScheduleService());
    results.push_back(benchEqRescheduleStorm());
    results.push_back(benchEqDepth());
    results.push_back(benchTagsLookupHit());
    results.push_back(benchTagsVictimSearch());
    results.push_back(benchTagsSoaScanSweep());
    results.push_back(benchBusyBitmapPopcount());
    results.push_back(benchEqDaryDepth());
    results.push_back(benchEndToEnd("FwPool", "CacheRW"));
    results.push_back(benchEndToEnd("FwAct", "CacheRW-PCby"));
    results.push_back(benchPolicyDecisionOverhead());
    results.push_back(benchSweepColdFifo());
    std::vector<RunMetrics> grid_results;
    results.push_back(benchSweepColdEngine(grid_results));
    results.push_back(benchSweepWarmReplay());

    // Data-plane scenarios: same 100k-row synthetic grid through
    // both serializations. The merge dispatch reads
    // MIGC_CACHE_FORMAT, so pin it per scenario and restore.
    {
        const char *old_fmt = std::getenv("MIGC_CACHE_FORMAT");
        const std::string saved = old_fmt ? old_fmt : "";
        const SyntheticGrid grid100k = syntheticGrid();
        const std::string v4_path = "BENCH_cache_v4.tmp.bin";
        const std::string v3_path = "BENCH_cache_v3.tmp.csv";
        writeSyntheticCache(v4_path, grid100k, CacheFormat::v4);
        writeSyntheticCache(v3_path, grid100k, CacheFormat::csv);
        results.push_back(benchCacheV4Load(v4_path, grid100k));
        results.push_back(benchCacheV3Parse(v3_path, grid100k));
        results.push_back(benchWarmReplayV4(v4_path, grid100k));
        ::setenv("MIGC_CACHE_FORMAT", "v4", 1);
        results.push_back(benchShardMerge100k(
            "BENCH_merge_v4.tmp.bin", grid100k, CacheFormat::v4,
            "shard_merge_100k", 5));
        ::setenv("MIGC_CACHE_FORMAT", "csv", 1);
        results.push_back(benchShardMerge100k(
            "BENCH_merge_v3.tmp.csv", grid100k, CacheFormat::csv,
            "shard_merge_100k_csv", 1));
        if (old_fmt)
            ::setenv("MIGC_CACHE_FORMAT", saved.c_str(), 1);
        else
            ::unsetenv("MIGC_CACHE_FORMAT");
        std::remove(v4_path.c_str());
        std::remove(v3_path.c_str());
    }

    std::vector<ScheduleModel> models{
        modelSchedule(grid_results, 4), modelSchedule(grid_results, 8),
        modelSchedule(grid_results, 16), modelSchedule(grid_results, 24)};

    std::vector<FleetMakespanModel> fleet_models{
        modelFleetMakespan(grid_results, 4),
        modelFleetMakespan(grid_results, 8),
        modelFleetMakespan(grid_results, 16),
        modelFleetMakespan(grid_results, 24)};

    // Gate the 8-worker straggler ratio as a scenario "rate": the
    // model is deterministic (sim_events in, event-units out), so
    // items = ratio x 1000 over one nominal second regresses only
    // when scheduling or simulation behavior actually changes.
    {
        BenchResult r;
        r.name = "fleet_steal_makespan";
        r.eventScenario = false;
        r.items = static_cast<std::uint64_t>(
            std::llround(fleet_models[1].ratio() * 1000.0));
        r.seconds = 1.0;
        results.push_back(r);
    }

    const double headline = geomeanRate(results, true);

    for (const auto &r : results) {
        std::printf("%-32s %12.0f /s  (%llu items, %.3fs)\n",
                    r.name.c_str(), r.rate(),
                    static_cast<unsigned long long>(r.items), r.seconds);
        for (const auto &[cat, count] : r.byCategory) {
            if (count > 0)
                std::printf("    %-28s %12llu events\n", cat.c_str(),
                            static_cast<unsigned long long>(count));
        }
    }
    for (const auto &sm : models) {
        std::printf("%-32s fifo %.0f -> lpt %.0f event-units "
                    "(%.2fx shorter tail at %u workers)\n",
                    "sweep_schedule_model", sm.fifoMakespan,
                    sm.lptMakespan, sm.ratio(), sm.workers);
    }
    for (const auto &fm : fleet_models) {
        std::printf("%-32s static %.0f -> steal %.0f event-units "
                    "(%.2fx faster with a 3x straggler at %u "
                    "workers)\n",
                    "fleet_makespan_model", fm.staticMakespan,
                    fm.stealMakespan, fm.ratio(), fm.workers);
    }
    std::printf("%-32s %12.0f events/s (geomean of event scenarios)\n",
                "headline", headline);

    if (!json_path.empty()) {
        std::ofstream out(json_path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
            return 2;
        }
        out << toJson(results, headline, models, fleet_models);
        std::printf("wrote %s\n", json_path.c_str());
    }

    if (!baseline_path.empty()) {
        std::ifstream in(baseline_path);
        if (!in) {
            std::fprintf(stderr, "cannot read baseline %s\n",
                         baseline_path.c_str());
            return 2;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        double base_headline = 0.0;
        if (!extractNumber(buf.str(), "headline_events_per_sec",
                           base_headline) ||
            base_headline <= 0) {
            std::fprintf(stderr, "baseline %s has no headline\n",
                         baseline_path.c_str());
            return 2;
        }
        double ratio = headline / base_headline;
        std::printf("baseline headline %.0f events/s -> ratio %.2f\n",
                    base_headline, ratio);
        if (ratio < 1.0 - max_regress) {
            std::fprintf(stderr,
                         "FAIL: headline events/sec regressed %.0f%% "
                         "(limit %.0f%%)\n",
                         (1.0 - ratio) * 100.0, max_regress * 100.0);
            return 1;
        }

        // Non-headline scenarios (sweep throughput in runs/sec,
        // policy verdicts in decisions/sec, tag-scan and heap-drain
        // ops/sec) gate individually against the baseline when it
        // records them.
        for (const auto &r : results) {
            if (r.name.rfind("sweep_", 0) != 0 &&
                r.name.rfind("fleet_", 0) != 0 &&
                r.name.rfind("tags_", 0) != 0 &&
                r.name.rfind("cache_", 0) != 0 &&
                r.name.rfind("warm_", 0) != 0 &&
                r.name.rfind("shard_", 0) != 0 &&
                r.name != "busy_bitmap_popcount" &&
                r.name != "eq_dary_depth" &&
                r.name != "policy_decision_overhead")
                continue;
            double base_rate = 0.0;
            if (!extractScenarioRate(buf.str(), r.name, base_rate) ||
                base_rate <= 0) {
                continue; // baseline predates the scenario
            }
            double sratio = r.rate() / base_rate;
            std::printf("baseline %s %.0f /s -> ratio %.2f\n",
                        r.name.c_str(), base_rate, sratio);
            if (sratio < 1.0 - max_regress) {
                std::fprintf(stderr,
                             "FAIL: %s regressed %.0f%% (limit %.0f%%)\n",
                             r.name.c_str(), (1.0 - sratio) * 100.0,
                             max_regress * 100.0);
                return 1;
            }
        }
    }
    return 0;
}
