/**
 * @file
 * google-benchmark microbenchmarks of the simulator substrate: event
 * queue, tag lookups, DRAM address decode, reuse predictor, DBI, and
 * the coalescer. These quantify simulator performance (events/sec),
 * not modeled-hardware performance.
 */

#include <benchmark/benchmark.h>

#include "cache/dbi.hh"
#include "cache/tags.hh"
#include "dram/address_map.hh"
#include "gpu/coalescer.hh"
#include "policy/reuse_predictor.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

using namespace migc;

static void
BM_EventQueueScheduleService(benchmark::State &state)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "bm");
    Tick t = 1;
    for (auto _ : state) {
        eq.schedule(&ev, t++);
        eq.serviceOne();
    }
}
BENCHMARK(BM_EventQueueScheduleService);

static void
BM_EventQueueDepth(benchmark::State &state)
{
    const auto depth = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        state.PauseTiming();
        EventQueue eq;
        std::vector<std::unique_ptr<EventFunctionWrapper>> evs;
        Rng rng(1);
        for (std::size_t i = 0; i < depth; ++i) {
            evs.push_back(std::make_unique<EventFunctionWrapper>(
                [] {}, "bm"));
            eq.schedule(evs.back().get(), rng.below(1'000'000));
        }
        state.ResumeTiming();
        eq.run();
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * depth);
}
BENCHMARK(BM_EventQueueDepth)->Arg(1024)->Arg(16384);

static void
BM_TagsLookupHit(benchmark::State &state)
{
    Tags tags(1 << 20, 16, 64, ReplKind::lru);
    for (Addr a = 0; a < (1 << 20); a += 64) {
        CacheBlk *v = tags.findVictim(a);
        tags.insert(v, a, BlkState::valid, 0);
    }
    Rng rng(2);
    for (auto _ : state) {
        Addr a = rng.below((1 << 20) / 64) * 64;
        benchmark::DoNotOptimize(tags.findBlock(a));
    }
}
BENCHMARK(BM_TagsLookupHit);

static void
BM_TagsVictimSearch(benchmark::State &state)
{
    Tags tags(1 << 16, 16, 64, ReplKind::lru);
    for (Addr a = 0; a < (1 << 16); a += 64) {
        CacheBlk *v = tags.findVictim(a);
        tags.insert(v, a, BlkState::valid, 0);
    }
    Rng rng(3);
    for (auto _ : state) {
        Addr a = rng.below(1 << 24) & ~63ULL;
        benchmark::DoNotOptimize(tags.findVictim(a));
    }
}
BENCHMARK(BM_TagsVictimSearch);

static void
BM_AddressDecode(benchmark::State &state)
{
    DramConfig cfg;
    AddressMap map(cfg);
    Rng rng(4);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            map.decode(rng.below(1ULL << 34) & ~63ULL));
    }
}
BENCHMARK(BM_AddressDecode);

static void
BM_PredictorLookup(benchmark::State &state)
{
    ReusePredictor pred;
    Rng rng(5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            pred.shouldCache(rng.below(4096) * 4, rng.below(1 << 20)));
    }
}
BENCHMARK(BM_PredictorLookup);

static void
BM_DbiAddTake(benchmark::State &state)
{
    DirtyBlockIndex dbi(64);
    Rng rng(6);
    for (auto _ : state) {
        std::uint64_t row = rng.below(256);
        Addr line = rng.below(1 << 16) * 64;
        benchmark::DoNotOptimize(dbi.add(row, line));
        if (rng.chance(0.1))
            benchmark::DoNotOptimize(dbi.takeRow(row, line));
    }
}
BENCHMARK(BM_DbiAddTake);

static void
BM_Coalesce64Lanes(benchmark::State &state)
{
    GpuOp op;
    op.type = GpuOpType::vload;
    op.base = 0x1000;
    op.laneStride = 4;
    op.lanes = 64;
    for (auto _ : state)
        benchmark::DoNotOptimize(coalesce(op, 64));
}
BENCHMARK(BM_Coalesce64Lanes);

BENCHMARK_MAIN();
