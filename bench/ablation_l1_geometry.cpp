/**
 * @file
 * Ablation: L1 set count vs. allocation blocking.
 *
 * The paper's cache stalls (Section VI.C.1) arise when every way of
 * a set holds a pending fill. With 16 KB at 64 B lines, a 16-way L1
 * has only 16 sets - easy to exhaust under streaming. This sweep
 * holds capacity constant and trades associativity for sets,
 * measuring stall cycles per request and execution time for BwAct
 * under CacheR. More sets means fewer allocation-blocked stalls, at
 * the cost of conflict behavior for other workloads.
 *
 * Runs go through the shared SweepEngine: each L1 geometry lands in
 * its own section of the multi-config run cache, so a re-run of this
 * binary (or any other that already swept these configs) simulates
 * nothing.
 */

#include <cstdio>
#include <vector>

#include "core/report.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"

int
main()
{
    using namespace migc;

    std::printf("== Ablation: L1 assoc/sets at fixed 16 KB (BwAct, "
                "CacheR) ==\n");
    // CacheR never converts allocations to bypasses, so the stall
    // signal here is total blocked cycles, not bypass conversions.
    std::printf("%7s %6s %10s %12s %12s\n", "assoc", "sets",
                "exec(us)", "stalls/req", "stall_cycles");

    const SimConfig base = SimConfig::defaultConfig();
    const std::vector<unsigned> assocs{32u, 16u, 8u, 4u};

    SweepEngine engine;
    std::vector<RunRequest> grid;
    for (unsigned assoc : assocs) {
        SimConfig cfg = base;
        cfg.workloadScale = 0.25;
        cfg.l1.assoc = assoc;
        grid.push_back(RunRequest{cfg, "BwAct", "CacheR"});
    }
    std::vector<RunMetrics> results = engine.run(grid);
    warnPlaceholderRows(countPlaceholderRows(results),
                        "L1 geometry ablation");

    for (std::size_t i = 0; i < assocs.size(); ++i) {
        const RunMetrics &m = results[i];
        unsigned sets = static_cast<unsigned>(
            base.l1.size / assocs[i] / base.l1.lineSize);
        std::printf("%7u %6u %10.1f %12.4f %12.0f\n", assocs[i], sets,
                    m.execSeconds * 1e6, m.stallsPerRequest,
                    m.cacheStallCycles);
    }
    return 0;
}
