/**
 * @file
 * Ablation: L1 set count vs. allocation blocking.
 *
 * The paper's cache stalls (Section VI.C.1) arise when every way of
 * a set holds a pending fill. With 16 KB at 64 B lines, a 16-way L1
 * has only 16 sets - easy to exhaust under streaming. This sweep
 * holds capacity constant and trades associativity for sets,
 * measuring stall cycles per request and execution time for BwAct
 * under CacheR. More sets means fewer allocation-blocked stalls, at
 * the cost of conflict behavior for other workloads.
 */

#include <cstdio>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace migc;

    std::printf("== Ablation: L1 assoc/sets at fixed 16 KB (BwAct, "
                "CacheR) ==\n");
    std::printf("%7s %6s %10s %12s %12s\n", "assoc", "sets",
                "exec(us)", "stalls/req", "alloc_rejects");

    auto wl = makeWorkload("BwAct");
    CachePolicy policy = CachePolicy::fromName("CacheR");
    for (unsigned assoc : {32u, 16u, 8u, 4u}) {
        SimConfig cfg = SimConfig::defaultConfig();
        cfg.workloadScale = 0.25;
        cfg.l1.assoc = assoc;
        unsigned sets = static_cast<unsigned>(
            cfg.l1.size / assoc / cfg.l1.lineSize);
        RunMetrics m = runWorkload(*wl, cfg, policy);
        std::printf("%7u %6u %10.1f %12.4f %12.0f\n", assoc, sets,
                    m.execSeconds * 1e6, m.stallsPerRequest,
                    m.cacheStallCycles);
    }
    return 0;
}
