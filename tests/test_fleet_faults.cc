/** @file Chaos suite for the multi-host fleet: a deterministic
 *  fault-injection matrix ({drop, truncate, duplicate, delay,
 *  corrupt} x {lease, done, renew, push, fetch}) driven through the
 *  transport shim (serve/transport.hh) over real localhost-TCP
 *  sockets, proving the merged coordinator-store cache stays
 *  byte-identical to a single-process sweep under every injected
 *  failure. Plus: the shim's replay determinism (same seed +
 *  schedule = same byte trace, independent of read chunking), a
 *  checksum-failed v4 segment dropping loudly out of the shard merge
 *  and repairing on re-push, the connect-failure fatal naming the
 *  underlying OS error, and a SIGKILLed TCP worker whose takeover
 *  still merges byte-identical with no shared shard files. */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/cache_v4.hh"
#include "core/fleet.hh"
#include "core/shard.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"
#include "serve/transport.hh"
#include "sim/rng.hh"

using namespace migc;

// See tests/test_fleet.cc: TSan cannot follow a forked child that
// starts threads, so the SIGKILL test skips itself there.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MIGC_FLEET_TSAN 1
#endif
#endif
#if !defined(MIGC_FLEET_TSAN) && defined(__SANITIZE_THREAD__)
#define MIGC_FLEET_TSAN 1
#endif

namespace
{

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + "migc_faults_" + leaf;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path,
                      std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

void
removeCacheFamily(const std::string &base, unsigned shards)
{
    std::remove(base.c_str());
    for (unsigned i = 0; i < shards; ++i)
        std::remove(shardCachePath(base, i).c_str());
}

/** The small grid every end-to-end case sweeps (same points as
 *  tests/test_fleet.cc, so sim cost stays bounded). */
std::vector<RunRequest>
smallGrid()
{
    const SimConfig cfg = SimConfig::testConfig();
    std::vector<RunRequest> grid;
    for (const char *w : {"FwSoft", "FwBN"}) {
        for (const char *p : {"Uncached", "CacheR", "CacheRW"})
            grid.push_back(RunRequest{cfg, w, p});
    }
    return grid;
}

/** Single-process reference bytes for smallGrid(), computed once. */
const std::string &
soloBytes()
{
    static const std::string bytes = [] {
        const std::string solo = tempPath("solo_ref.csv");
        std::remove(solo.c_str());
        {
            SweepEngine engine(solo);
            engine.run(smallGrid());
        }
        std::string b = readFile(solo);
        std::remove(solo.c_str());
        return b;
    }();
    return bytes;
}

struct FleetResult
{
    std::string mergedBytes;
    std::string trace;
    std::uint64_t pushes = 0;
    bool drained = false;
};

/**
 * One chaos run: a 2-worker push-mode fleet over tcp:127.0.0.1:0
 * with disjoint per-worker cache bases (nothing shares a shard
 * path - only `push` can move bytes to the coordinator), worker 0's
 * connections wrapped in the fault shim with @p faults. Returns the
 * drain-time merge of the coordinator's *store* - exactly what a
 * no-shared-filesystem fleet would have.
 */
FleetResult
runFaultedFleet(const std::string &tag,
                const std::vector<StreamFault> &faults,
                unsigned worker0DelayMs, std::uint64_t renewMs)
{
    const auto grid = smallGrid();
    const std::uint64_t hash = gridFingerprint(grid);
    const std::string coord = tempPath(tag + "_coord.csv");
    const std::string w0 = tempPath(tag + "_w0.csv");
    const std::string w1 = tempPath(tag + "_w1.csv");
    removeCacheFamily(coord, 2);
    removeCacheFamily(w0, 2);
    removeCacheFamily(w1, 2);

    FleetPlan plan = planFleetSweep(grid, coord, 2, false);
    FleetServer server("tcp:127.0.0.1:0",
                       FleetQueue(plan.costs, plan.pending,
                                  FleetConfig{1, renewMs}),
                       hash);
    server.setShardStore(coord);
    server.start();
    const std::string spec = server.boundEndpoint().spec();

    auto fplan = std::make_shared<FaultPlan>();
    fplan->faults = faults;
    fplan->seed = 0xC0FFEEu;

    std::vector<std::thread> workers;
    for (unsigned i = 0; i < 2; ++i) {
        workers.emplace_back([&, i] {
            SweepEngine engine(i == 0 ? w0 : w1,
                               FleetWorkerSpec{i});
            engine.setInjectedRunDelayMs(i == 0 ? worker0DelayMs
                                                : 0);
            FleetClientOptions opts;
            opts.gridSize = grid.size();
            opts.push = true;
            if (i == 0) {
                opts.wrap = [fplan](std::unique_ptr<Stream> s) {
                    return wrapFaulty(std::move(s), fplan);
                };
            }
            FleetClient client(spec, i, hash, opts);
            engine.runFleet(grid, client, 1);
        });
    }
    for (std::thread &t : workers)
        t.join();

    FleetResult r;
    r.drained = server.drained();
    r.pushes = server.pushesStored();
    server.stop();
    r.trace = fplan->trace();

    mergeShardCaches(coord, 2);
    r.mergedBytes = readFile(coord);
    removeCacheFamily(coord, 2);
    removeCacheFamily(w0, 2);
    removeCacheFamily(w1, 2);
    return r;
}

struct VerbTarget
{
    const char *name;
    const char *pattern;   ///< tx-stream trigger for the shim
    unsigned delayMs;      ///< worker 0 straggler delay
    std::uint64_t renewMs; ///< coordinator renew deadline
};

/** The verb column of the matrix. Renew needs a short deadline and
 *  a slowed worker or the background renewer never has a lease to
 *  renew; the others fire on any drain. */
const VerbTarget kVerbTargets[] = {
    {"lease", "lease ", 0, 10000},
    {"done", "done ", 0, 10000},
    {"renew", "renew ", 250, 300},
    {"push", "push ", 0, 10000},
};

/** Run one fault op across every verb target; every schedule must
 *  fire (visible in the trace) and still merge byte-identical. */
void
runMatrixForOp(StreamFault::Op op, const char *opName,
               const char *traceMark)
{
    for (const VerbTarget &v : kVerbTargets) {
        SCOPED_TRACE(std::string(opName) + " x " + v.name);
        StreamFault f;
        f.op = op;
        f.dir = StreamFault::Dir::tx;
        f.conn = 0;
        f.match = v.pattern;
        f.matchNth = 1;
        // Inside the verb word: the corruption can garble the frame
        // (or split it with an injected newline) but never forge a
        // different valid verb.
        f.offset = 2;
        f.len = 3;
        f.holdBytes = 6;
        FleetResult r = runFaultedFleet(
            std::string(opName) + "_" + v.name, {f}, v.delayMs,
            v.renewMs);
        EXPECT_TRUE(r.drained);
        EXPECT_GE(r.pushes, 1u);
        EXPECT_NE(r.trace.find(traceMark), std::string::npos)
            << "fault never fired; trace:\n" << r.trace;
        ASSERT_FALSE(soloBytes().empty());
        EXPECT_EQ(r.mergedBytes, soloBytes());
    }
}

} // namespace

// ---------------------------------------------------------------------
// The fault matrix: op x verb, merged bytes vs solo every time
// ---------------------------------------------------------------------

TEST(FleetFaultMatrix, Drop)
{
    runMatrixForOp(StreamFault::Op::drop, "drop", "drop");
}

TEST(FleetFaultMatrix, Truncate)
{
    runMatrixForOp(StreamFault::Op::truncate, "truncate",
                   "truncate");
}

TEST(FleetFaultMatrix, Duplicate)
{
    runMatrixForOp(StreamFault::Op::duplicate, "duplicate",
                   "duplicate");
}

TEST(FleetFaultMatrix, Delay)
{
    runMatrixForOp(StreamFault::Op::delay, "delay",
                   "delay-release");
}

TEST(FleetFaultMatrix, Corrupt)
{
    runMatrixForOp(StreamFault::Op::corrupt, "corrupt", "corrupt");
}

TEST(FleetFaultMatrix, PushPayloadFaultsNeverReachTheStore)
{
    // The matrix above hits the push *header*; these land inside
    // the raw payload bytes - the checksum path. A corrupted or
    // reordered payload must bounce off the coordinator (mismatch
    // reply), a torn one must die mid-frame; either way the client
    // retransmits the whole file and the store ends byte-exact.
    struct OpCase
    {
        StreamFault::Op op;
        const char *name;
        const char *mark;
    };
    const OpCase cases[] = {
        {StreamFault::Op::corrupt, "pcorrupt", "corrupt"},
        {StreamFault::Op::drop, "pdrop", "drop"},
        {StreamFault::Op::truncate, "ptrunc", "truncate"},
        {StreamFault::Op::duplicate, "pdup", "duplicate"},
        {StreamFault::Op::delay, "pdelay", "delay-release"},
    };
    for (const OpCase &c : cases) {
        SCOPED_TRACE(c.name);
        StreamFault f;
        f.op = c.op;
        f.dir = StreamFault::Dir::tx;
        f.conn = 0;
        f.match = "push ";
        f.matchNth = 1;
        // Past the ~25-byte header line: inside the v4 payload.
        f.offset = 64;
        f.len = 16;
        f.holdBytes = 32;
        FleetResult r = runFaultedFleet(c.name, {f}, 0, 10000);
        EXPECT_TRUE(r.drained);
        EXPECT_NE(r.trace.find(c.mark), std::string::npos)
            << "fault never fired; trace:\n" << r.trace;
        EXPECT_EQ(r.mergedBytes, soloBytes());
    }
}

// ---------------------------------------------------------------------
// Fetch column of the matrix: faults on the reply stream
// ---------------------------------------------------------------------

TEST(FleetFaults, FetchRetriesThroughEveryFaultKind)
{
    const std::string store = tempPath("fetch_store.csv");
    std::string bytes;
    Rng rng(0xFE7C4u);
    for (int i = 0; i < 256; ++i)
        bytes.push_back(static_cast<char>(rng.below(256)));
    writeFile(shardCachePath(store, 3), bytes);

    FleetServer server("tcp:127.0.0.1:0",
                       FleetQueue({1.0}, {0}, FleetConfig{1, 10000}),
                       42);
    server.setShardStore(store);
    server.start();
    const std::string spec = server.boundEndpoint().spec();

    const StreamFault::Op ops[] = {
        StreamFault::Op::drop, StreamFault::Op::truncate,
        StreamFault::Op::duplicate, StreamFault::Op::delay,
        StreamFault::Op::corrupt,
    };
    int casenum = 0;
    for (StreamFault::Op op : ops) {
        // Offset 2 garbles the "# shard <bytes> <checksum>" header;
        // offset 40 lands inside the streamed payload.
        for (std::uint64_t offset : {2ull, 40ull}) {
            SCOPED_TRACE(casenum);
            auto fplan = std::make_shared<FaultPlan>();
            StreamFault f;
            f.op = op;
            f.dir = StreamFault::Dir::rx;
            f.conn = 0;
            f.match = "# shard";
            f.matchNth = 1;
            f.offset = offset;
            f.len = 5;
            f.holdBytes = 6;
            fplan->faults = {f};
            fplan->seed = 0xD00Du + casenum;

            FleetClientOptions opts;
            opts.wrap = [fplan](std::unique_ptr<Stream> s) {
                return wrapFaulty(std::move(s), fplan);
            };
            FleetClient client(spec, 0, 42, opts);
            const std::string dest = tempPath(
                "fetch_dest_" + std::to_string(casenum));
            std::remove(dest.c_str());
            EXPECT_TRUE(client.fetchShard(3, dest));
            EXPECT_EQ(readFile(dest), bytes);
            EXPECT_FALSE(fplan->trace().empty());
            std::remove(dest.c_str());
            ++casenum;
        }
    }
    server.stop();
    std::remove(shardCachePath(store, 3).c_str());
}

// ---------------------------------------------------------------------
// Shim determinism: same seed + schedule = same byte trace
// ---------------------------------------------------------------------

namespace
{

/** Scripted in-memory peer: read() hands out the scripted input in
 *  fixed-size chunks (to prove chunking cannot change outcomes),
 *  writeAll() lands in a sink string. */
class ScriptStream : public Stream
{
  public:
    ScriptStream(std::string input, std::size_t chunk,
                 std::string *sink)
        : input_(std::move(input)), chunk_(chunk), sink_(sink)
    {
    }

    ssize_t
    read(void *buf, std::size_t n) override
    {
        if (pos_ >= input_.size())
            return 0;
        const std::size_t take =
            std::min({n, chunk_, input_.size() - pos_});
        std::memcpy(buf, input_.data() + pos_, take);
        pos_ += take;
        return static_cast<ssize_t>(take);
    }

    bool
    writeAll(const void *buf, std::size_t n) override
    {
        sink_->append(static_cast<const char *>(buf), n);
        return true;
    }

  private:
    std::string input_;
    std::size_t pos_ = 0;
    std::size_t chunk_;
    std::string *sink_;
};

/** One scripted session through the shim; returns the plan trace
 *  and fills the delivered tx/rx byte strings. */
std::string
runScriptedSession(std::uint64_t seed, std::size_t chunk,
                   std::string *tx, std::string *rx)
{
    auto plan = std::make_shared<FaultPlan>();
    plan->seed = seed;
    StreamFault corrupt_tx;
    corrupt_tx.op = StreamFault::Op::corrupt;
    corrupt_tx.dir = StreamFault::Dir::tx;
    corrupt_tx.match = "lease";
    corrupt_tx.offset = 1;
    corrupt_tx.len = 4;
    StreamFault delay_tx;
    delay_tx.op = StreamFault::Op::delay;
    delay_tx.dir = StreamFault::Dir::tx;
    delay_tx.match = "done";
    delay_tx.offset = 0;
    delay_tx.len = 4;
    delay_tx.holdBytes = 3;
    StreamFault dup_rx;
    dup_rx.op = StreamFault::Op::duplicate;
    dup_rx.dir = StreamFault::Dir::rx;
    dup_rx.offset = 3;
    dup_rx.len = 5;
    StreamFault corrupt_rx;
    corrupt_rx.op = StreamFault::Op::corrupt;
    corrupt_rx.dir = StreamFault::Dir::rx;
    corrupt_rx.offset = 20;
    corrupt_rx.len = 4;
    plan->faults = {corrupt_tx, delay_tx, dup_rx, corrupt_rx};

    tx->clear();
    rx->clear();
    {
        std::unique_ptr<Stream> s = wrapFaulty(
            std::make_unique<ScriptStream>(
                "# lease 1 500 fresh 3 1 4\n# ok\n# drained\n",
                chunk, tx),
            plan);
        s->writeAll(std::string("lease 0 42\n"));
        char buf[8];
        for (int i = 0; i < 5; ++i) {
            ssize_t n = s->read(buf, sizeof(buf));
            if (n <= 0)
                break;
            rx->append(buf, static_cast<std::size_t>(n));
        }
        s->writeAll(std::string("done 0 1 3\n"));
        for (;;) {
            ssize_t n = s->read(buf, sizeof(buf));
            if (n <= 0)
                break;
            rx->append(buf, static_cast<std::size_t>(n));
        }
    } // destruction finalizes the per-direction eof/hash trace
    return plan->trace();
}

/** The trace lines mentioning one direction, in order - each
 *  direction's event sequence is chunk-invariant even though the
 *  global tx/rx interleaving follows the caller's read/write
 *  schedule. */
std::string
directionLines(const std::string &trace, const std::string &dir)
{
    std::string out;
    std::istringstream in(trace);
    std::string line;
    while (std::getline(in, line)) {
        if (line.find(" " + dir + " ") != std::string::npos) {
            out += line;
            out += '\n';
        }
    }
    return out;
}

} // namespace

TEST(FleetFaults, ReplayedScheduleProducesIdenticalTrace)
{
    std::string tx1, rx1, tx2, rx2;
    const std::string t1 = runScriptedSession(7, 7, &tx1, &rx1);
    const std::string t2 = runScriptedSession(7, 7, &tx2, &rx2);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(tx1, tx2);
    EXPECT_EQ(rx1, rx2);

    // Every fault really fired and the trace pinned it.
    EXPECT_NE(t1.find("corrupt"), std::string::npos) << t1;
    EXPECT_NE(t1.find("duplicate"), std::string::npos) << t1;
    EXPECT_NE(t1.find("delay-release"), std::string::npos) << t1;
    EXPECT_NE(t1.find("eof"), std::string::npos) << t1;

    // Offsets index the logical stream, so how the peer chunks its
    // reads cannot change a delivered byte, a fault trigger, or a
    // per-direction event sequence. (Only the *interleaving* of the
    // two directions' trace lines follows the caller's read/write
    // schedule - they are independent streams.)
    std::string tx3, rx3;
    const std::string t3 = runScriptedSession(7, 3, &tx3, &rx3);
    EXPECT_EQ(directionLines(t1, "tx"), directionLines(t3, "tx"));
    EXPECT_EQ(directionLines(t1, "rx"), directionLines(t3, "rx"));
    EXPECT_EQ(tx1, tx3);
    EXPECT_EQ(rx1, rx3);

    // A different seed draws different corrupt masks: different
    // delivered bytes, different delivered-byte hashes in the trace.
    std::string tx4, rx4;
    const std::string t4 = runScriptedSession(8, 7, &tx4, &rx4);
    EXPECT_NE(t1, t4);
    EXPECT_NE(tx1, tx4);
}

// ---------------------------------------------------------------------
// A checksum-failed v4 segment drops loudly, survives re-push
// ---------------------------------------------------------------------

TEST(FleetFaults, CorruptFooterSegmentDropsLoudlyThenRepushRepairs)
{
    const SimConfig cfg = SimConfig::testConfig();
    const std::string aPath = tempPath("seg_a.csv");
    const std::string bPath = tempPath("seg_b.csv");
    std::remove(aPath.c_str());
    std::remove(bPath.c_str());
    {
        SweepEngine e(aPath);
        e.run({RunRequest{cfg, "FwSoft", "Uncached"}});
    }
    {
        SweepEngine e(bPath);
        e.run({RunRequest{cfg, "FwBN", "CacheR"}});
    }
    const std::string a = readFile(aPath);
    const std::string b = readFile(bPath);
    ASSERT_GT(a.size(), kV4HeaderBytes + kV4FooterBytes);
    ASSERT_EQ(a.compare(0, sizeof(kV4SegMagic), kV4SegMagic,
                        sizeof(kV4SegMagic)),
              0)
        << "expected a v4-format cache (MIGC_CACHE_FORMAT override?)";

    // Two distinct-key single-row segments concatenate into one
    // valid two-segment shard file - the shape a worker's
    // checkpoint-append discipline produces.
    const std::string clean = a + b;
    const std::string base = tempPath("seg_base.csv");
    removeCacheFamily(base, 1);
    const std::string shard0 = shardCachePath(base, 0);

    // Flip one byte of the *second* segment's footer checksum: the
    // first segment must survive, the second must drop - counted,
    // never silently.
    std::string damaged = clean;
    damaged[damaged.size() - kV4FooterBytes] ^=
        static_cast<char>(0x5a);
    writeFile(shard0, damaged);

    ShardMergeStats st1 = mergeShardCaches(base, 1);
    EXPECT_EQ(st1.files, 1u);
    EXPECT_EQ(st1.rows, 1u);
    EXPECT_GE(st1.parseErrors, 1u)
        << "a dropped segment must be counted, not silent";
    {
        RunCache probe(base, 8);
        EXPECT_EQ(probe.size(), 1u);
    }

    // Re-push the clean file (what FleetClient::pushShard's
    // retransmit delivers) and merge again: the lost row comes
    // back, the surviving one dedupes.
    writeFile(shard0, clean);
    ShardMergeStats st2 = mergeShardCaches(base, 1);
    EXPECT_EQ(st2.rows, 1u);
    EXPECT_EQ(st2.duplicates, 1u);
    EXPECT_EQ(st2.parseErrors, 0u);

    // Byte-identical to a merge that never saw the damage.
    const std::string base2 = tempPath("seg_base2.csv");
    removeCacheFamily(base2, 1);
    writeFile(shardCachePath(base2, 0), clean);
    mergeShardCaches(base2, 1);
    const std::string wantBytes = readFile(base2);
    ASSERT_FALSE(wantBytes.empty());
    EXPECT_EQ(readFile(base), wantBytes);

    std::remove(aPath.c_str());
    std::remove(bPath.c_str());
    removeCacheFamily(base, 1);
    removeCacheFamily(base2, 1);
}

// ---------------------------------------------------------------------
// Connect failure surfaces the underlying OS error
// ---------------------------------------------------------------------

TEST(FleetFaultsDeathTest, ConnectFailureNamesTheOsError)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    FleetClientOptions opts;
    opts.connectAttempts = 2;
    opts.connectDelayMs = 1;

    // A unix endpoint with no socket file: the final fatal must say
    // *why* (ENOENT), not just "could not reach".
    const std::string missing = tempPath("no_such.sock");
    std::remove(missing.c_str());
    EXPECT_EXIT({ FleetClient c(missing, 0, 1, opts); },
                ::testing::ExitedWithCode(1),
                "No such file or directory");

    // A TCP port that just stopped listening: ECONNREFUSED, by name.
    EXPECT_EXIT(
        {
            Listener probe;
            probe.bind(parseEndpoint("tcp:127.0.0.1:0"));
            const std::string target = probe.bound().spec();
            probe.stop();
            FleetClient c(target, 0, 1, opts);
        },
        ::testing::ExitedWithCode(1), "Connection refused");
}

// ---------------------------------------------------------------------
// SIGKILL + takeover over TCP with no shared shard files
// ---------------------------------------------------------------------

TEST(FleetFaults, TcpSigkilledWorkerPlusTakeoverMatchesSolo)
{
#ifdef MIGC_FLEET_TSAN
    GTEST_SKIP() << "fork + threads is unsupported under TSan";
#endif
    const auto grid = smallGrid();
    const std::uint64_t hash = gridFingerprint(grid);
    ASSERT_FALSE(soloBytes().empty());

    const std::string coord = tempPath("kill_coord.csv");
    const std::string w0 = tempPath("kill_w0.csv");
    const std::string w1 = tempPath("kill_w1.csv");
    removeCacheFamily(coord, 2);
    removeCacheFamily(w0, 2);
    removeCacheFamily(w1, 2);

    FleetPlan plan = planFleetSweep(grid, coord, 2, false);
    FleetServer server("tcp:127.0.0.1:0",
                       FleetQueue(plan.costs, plan.pending,
                                  FleetConfig{1, 500}),
                       hash);
    server.setShardStore(coord);

    // Fork the victim *before* the server spawns any thread; the
    // kernel-chosen port is only known after start(), so it travels
    // to the single-threaded child over a pipe.
    int pipefd[2];
    ASSERT_EQ(::pipe(pipefd), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        ::close(pipefd[1]);
        std::string spec;
        char c;
        while (::read(pipefd[0], &c, 1) == 1 && c != '\n')
            spec.push_back(c);
        ::close(pipefd[0]);
        SweepEngine engine(w0, FleetWorkerSpec{0});
        engine.setInjectedRunDelayMs(200);
        FleetClientOptions opts;
        opts.gridSize = grid.size();
        opts.push = true;
        FleetClient client(spec, 0, hash, opts);
        engine.runFleet(grid, client, 1);
        _exit(0);
    }
    ::close(pipefd[0]);
    server.start();
    const std::string specLine =
        server.boundEndpoint().spec() + "\n";
    ASSERT_EQ(::write(pipefd[1], specLine.data(), specLine.size()),
              static_cast<ssize_t>(specLine.size()));
    ::close(pipefd[1]);

    // Push-before-done means a stored push is proof the victim both
    // checkpointed and uploaded at least one row. Then kill it dead
    // mid-lease.
    bool pushed = false;
    for (int i = 0; i < 3000 && !pushed; ++i) {
        pushed = server.pushesStored() > 0;
        if (!pushed)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(pushed) << "worker 0 never pushed a shard";
    EXPECT_TRUE(WIFSIGNALED(status));

    // The survivor takes over on the same TCP endpoint: the
    // victim's lease expires (500 ms), its keys requeue, the grid
    // drains.
    {
        SweepEngine engine(w1, FleetWorkerSpec{1});
        FleetClientOptions opts;
        opts.gridSize = grid.size();
        opts.push = true;
        FleetClient client(server.boundEndpoint().spec(), 1, hash,
                           opts);
        engine.runFleet(grid, client, 1);
    }
    EXPECT_TRUE(server.drained());
    server.stop();

    // Merge only the coordinator's *store* - the workers' own cache
    // files are deleted first, so nothing can leak through a shared
    // filesystem. Keys the victim pushed but never reported get
    // re-run by the survivor and dedupe byte-identically.
    removeCacheFamily(w0, 2);
    removeCacheFamily(w1, 2);
    mergeShardCaches(coord, 2);
    EXPECT_EQ(readFile(coord), soloBytes());
    removeCacheFamily(coord, 2);
}
