/** @file Tests for the coalescer, compute unit, and dispatcher. */

#include <gtest/gtest.h>

#include "gpu/coalescer.hh"
#include "gpu/compute_unit.hh"
#include "gpu/dispatcher.hh"
#include "gpu/kernel.hh"
#include "test_util.hh"

using namespace migc;
using namespace migc::test;

TEST(Coalescer, ContiguousFp32LoadMakesFourLines)
{
    GpuOp op;
    op.type = GpuOpType::vload;
    op.base = 0x1000;
    op.laneStride = 4;
    op.lanes = 64;
    auto lines = coalesce(op, 64);
    ASSERT_EQ(lines.size(), 4u);
    EXPECT_EQ(lines[0], 0x1000u);
    EXPECT_EQ(lines[3], 0x10c0u);
}

TEST(Coalescer, SameLineLanesCollapseToOne)
{
    GpuOp op;
    op.type = GpuOpType::vload;
    op.base = 0x2000;
    op.laneStride = 0; // broadcast
    op.lanes = 64;
    EXPECT_EQ(coalesce(op, 64).size(), 1u);
}

TEST(Coalescer, StridedAccessTouchesManyLines)
{
    GpuOp op;
    op.type = GpuOpType::vstore;
    op.base = 0x0;
    op.laneStride = 128; // one line per two lanes... 128B stride
    op.lanes = 16;
    EXPECT_EQ(coalesce(op, 64).size(), 16u);
}

TEST(Coalescer, UnalignedBaseSpansExtraLine)
{
    GpuOp op;
    op.type = GpuOpType::vload;
    op.base = 0x1020; // mid-line start
    op.laneStride = 4;
    op.lanes = 64;
    EXPECT_EQ(coalesce(op, 64).size(), 5u);
}

TEST(Coalescer, PartialWavefront)
{
    GpuOp op;
    op.type = GpuOpType::vload;
    op.base = 0x3000;
    op.laneStride = 4;
    op.lanes = 8; // 32 bytes
    EXPECT_EQ(coalesce(op, 64).size(), 1u);
}

namespace
{

GpuConfig
tinyGpu()
{
    GpuConfig cfg;
    cfg.numCus = 1;
    cfg.simdsPerCu = 2;
    cfg.wfSlotsPerSimd = 4;
    cfg.launchLatency = 1000;
    cfg.drainPollInterval = Cycles(8);
    return cfg;
}

} // namespace

TEST(ComputeUnit, RunsASimpleProgramToCompletion)
{
    EventQueue eq;
    GpuConfig cfg = tinyGpu();
    PacketPool pool;
    ComputeUnit cu("cu", eq, pool, cfg, 0);
    MockMem mem(eq, 200);
    cu.memPort().bind(mem);

    int wgs_done = 0;
    cu.onWorkgroupComplete([&](unsigned) { ++wgs_done; });

    ProgramBuilder b(0x100);
    b.load(0, 0x1000).waitLoads().valu(4).store(1, 0x2000);
    std::vector<WavefrontProgram> programs;
    programs.push_back(b.take());
    cu.startWorkgroup(0, std::move(programs));
    eq.run();

    EXPECT_EQ(wgs_done, 1);
    EXPECT_TRUE(cu.idle());
    EXPECT_EQ(mem.reads, 4u);  // one 64-lane fp32 load = 4 lines
    EXPECT_EQ(mem.writes, 4u);
    EXPECT_EQ(cu.vectorOps(), 4.0);
    EXPECT_EQ(cu.memRequests(), 8.0);
}

TEST(ComputeUnit, WaitLoadsBlocksUntilDataReturns)
{
    EventQueue eq;
    GpuConfig cfg = tinyGpu();
    PacketPool pool;
    ComputeUnit cu("cu", eq, pool, cfg, 0);
    MockMem mem(eq, 0, SIZE_MAX, /*manual=*/true);
    cu.memPort().bind(mem);

    bool done = false;
    cu.onWorkgroupComplete([&](unsigned) { done = true; });

    ProgramBuilder b(0x100);
    b.load(0, 0x1000).waitLoads().valu(1);
    std::vector<WavefrontProgram> programs;
    programs.push_back(b.take());
    cu.startWorkgroup(7, std::move(programs));
    eq.run();

    EXPECT_FALSE(done); // parked at waitLoads
    EXPECT_EQ(mem.held(), 4u);
    mem.releaseAll();
    eq.run();
    EXPECT_TRUE(done);
}

TEST(ComputeUnit, TracksFreeSlots)
{
    EventQueue eq;
    GpuConfig cfg = tinyGpu(); // 8 slots
    PacketPool pool;
    ComputeUnit cu("cu", eq, pool, cfg, 0);
    MockMem mem(eq, 100, SIZE_MAX, /*manual=*/true);
    cu.memPort().bind(mem);
    cu.onWorkgroupComplete([](unsigned) {});

    EXPECT_EQ(cu.freeWfSlots(), 8u);
    std::vector<WavefrontProgram> programs;
    for (int i = 0; i < 3; ++i) {
        ProgramBuilder b(0x100);
        b.load(0, 0x1000u * i).waitLoads();
        programs.push_back(b.take());
    }
    cu.startWorkgroup(0, std::move(programs));
    EXPECT_EQ(cu.freeWfSlots(), 5u);
    EXPECT_EQ(cu.liveWavefronts(), 3u);
    mem.releaseAll();
    eq.run();
    mem.releaseAll();
    eq.run();
    EXPECT_EQ(cu.freeWfSlots(), 8u);
}

TEST(Dispatcher, RunsKernelsInOrderWithHooks)
{
    EventQueue eq;
    GpuConfig cfg = tinyGpu();
    PacketPool pool;
    ComputeUnit cu("cu", eq, pool, cfg, 0);
    MockMem mem(eq, 100);
    cu.memPort().bind(mem);
    Dispatcher disp("disp", eq, cfg, {&cu});

    int l1_invals = 0;
    int l2_syncs = 0;
    Dispatcher::SyncHooks hooks;
    hooks.invalidateL1s = [&] { ++l1_invals; };
    hooks.syncL2System = [&](std::function<void()> cb) {
        ++l2_syncs;
        cb();
    };
    hooks.memSystemQuiescent = [] { return true; };
    disp.setSyncHooks(std::move(hooks));

    auto make_kernel = [](const std::string &name, SyncScope scope) {
        KernelDesc k;
        k.name = name;
        k.numWorkgroups = 2;
        k.wavesPerWorkgroup = 2;
        k.endScope = scope;
        k.makeProgram = [](std::uint32_t wg, std::uint32_t wf) {
            ProgramBuilder b(0x100);
            b.load(0, 0x1000u + wg * 0x100 + wf * 0x40);
            b.waitLoads().valu(2).store(1, 0x9000);
            return b.take();
        };
        return k;
    };

    bool done = false;
    disp.run({make_kernel("k0", SyncScope::device),
              make_kernel("k1", SyncScope::device),
              make_kernel("k2", SyncScope::system)},
             [&] { done = true; });
    eq.run();

    EXPECT_TRUE(done);
    EXPECT_FALSE(disp.running());
    EXPECT_EQ(disp.kernelsLaunched(), 3.0);
    EXPECT_EQ(l1_invals, 3); // every kernel boundary
    EXPECT_EQ(l2_syncs, 1);  // only the system-scope end
}

TEST(Dispatcher, LastKernelForcesSystemScope)
{
    EventQueue eq;
    GpuConfig cfg = tinyGpu();
    PacketPool pool;
    ComputeUnit cu("cu", eq, pool, cfg, 0);
    MockMem mem(eq, 50);
    cu.memPort().bind(mem);
    Dispatcher disp("disp", eq, cfg, {&cu});

    int l2_syncs = 0;
    Dispatcher::SyncHooks hooks;
    hooks.invalidateL1s = [] {};
    hooks.syncL2System = [&](std::function<void()> cb) {
        ++l2_syncs;
        cb();
    };
    hooks.memSystemQuiescent = [] { return true; };
    disp.setSyncHooks(std::move(hooks));

    KernelDesc k;
    k.name = "only";
    k.numWorkgroups = 1;
    k.wavesPerWorkgroup = 1;
    k.endScope = SyncScope::device; // should be promoted
    k.makeProgram = [](std::uint32_t, std::uint32_t) {
        ProgramBuilder b(0x100);
        b.valu(1);
        return b.take();
    };
    bool done = false;
    disp.run({k}, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    EXPECT_EQ(l2_syncs, 1);
}

TEST(Dispatcher, ManyWorkgroupsRotateAcrossCapacity)
{
    EventQueue eq;
    GpuConfig cfg = tinyGpu(); // 8 slots, 2-wave workgroups -> 4 live
    PacketPool pool;
    ComputeUnit cu("cu", eq, pool, cfg, 0);
    MockMem mem(eq, 300);
    cu.memPort().bind(mem);
    Dispatcher disp("disp", eq, cfg, {&cu});

    Dispatcher::SyncHooks hooks;
    hooks.invalidateL1s = [] {};
    hooks.syncL2System = [](std::function<void()> cb) { cb(); };
    hooks.memSystemQuiescent = [] { return true; };
    disp.setSyncHooks(std::move(hooks));

    KernelDesc k;
    k.name = "wide";
    k.numWorkgroups = 32;
    k.wavesPerWorkgroup = 2;
    k.makeProgram = [](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(0x100);
        b.load(0, 0x100000u + (wg * 2 + wf) * 0x100);
        b.waitLoads().valu(2);
        return b.take();
    };
    bool done = false;
    disp.run({k}, [&] { done = true; });
    eq.run();
    EXPECT_TRUE(done);
    // One 64-lane fp32 load spans 256 B = 4 lines per wavefront.
    EXPECT_EQ(mem.reads, 32u * 2u * 4u);
}
