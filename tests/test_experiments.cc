/** @file Tests for the ExperimentSweep engine: on-disk cache
 *  round-trips, cache bypass, and static-policy selection logic. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "core/experiments.hh"
#include "core/metrics.hh"
#include "core/sim_config.hh"
#include "workloads/workload.hh"

using namespace migc;

namespace
{

/** Scoped env var set/restore so tests cannot leak state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool hadOld_ = false;
};

std::string
tempCachePath(const std::string &leaf)
{
    return ::testing::TempDir() + "migc_" + leaf + ".csv";
}

bool
fileExists(const std::string &path)
{
    return static_cast<bool>(std::ifstream(path));
}

/** A fake metrics row so selection tests need no simulation. */
RunMetrics
fakeMetrics(const std::string &workload, const std::string &policy,
            Tick exec_ticks)
{
    RunMetrics m;
    m.workload = workload;
    m.policy = policy;
    m.execTicks = exec_ticks;
    m.dramAccesses = 1.0;
    return m;
}

/** Header tag the sweep cache format uses (see experiments.cc). */
constexpr const char *kCacheTag = "# migc-sweep-v2 ";

/** Seed a cache file the sweep will accept for @p cfg. */
void
writeCacheFile(const std::string &path, const SimConfig &cfg,
               const std::vector<RunMetrics> &rows)
{
    std::ofstream out(path, std::ios::trunc);
    out << kCacheTag << cfg.signature() << "\n";
    out << RunMetrics::csvHeader() << "\n";
    for (const auto &m : rows)
        out << m.toCsv() << "\n";
}

} // namespace

TEST(ExperimentSweep, CacheRoundTripBySignature)
{
    const std::string path = tempCachePath("roundtrip");
    std::remove(path.c_str());
    ScopedEnv cache("MIGC_SWEEP_CACHE", path.c_str());
    ScopedEnv no_cache("MIGC_NO_CACHE", nullptr);

    SimConfig cfg = SimConfig::testConfig();
    RunMetrics first;
    {
        ExperimentSweep sweep(cfg);
        first = sweep.get("FwSoft", "CacheRW");
        ASSERT_TRUE(fileExists(path));
    }

    // The first cache line must carry the format tag + signature.
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, kCacheTag + cfg.signature());

    // A new sweep on the same config must load the saved result
    // rather than resimulate: doctor the cached row and confirm the
    // doctored value (which no simulation would produce) comes back.
    RunMetrics doctored = first;
    doctored.execTicks = 424242;
    writeCacheFile(path, cfg, {doctored});
    {
        ExperimentSweep sweep(cfg);
        EXPECT_EQ(sweep.get("FwSoft", "CacheRW").execTicks,
                  Tick(424242));
    }

    // A different signature (changed seed) invalidates the cache.
    SimConfig other = cfg;
    other.seed = cfg.seed + 1;
    {
        ExperimentSweep sweep(other);
        EXPECT_NE(sweep.get("FwSoft", "CacheRW").execTicks,
                  Tick(424242));
    }
    std::remove(path.c_str());
}

TEST(ExperimentSweep, NoCacheEnvBypassesDisk)
{
    const std::string path = tempCachePath("bypass");
    std::remove(path.c_str());
    ScopedEnv cache("MIGC_SWEEP_CACHE", path.c_str());

    // Plant a doctored cache: with MIGC_NO_CACHE=1 the sweep must
    // neither read it nor overwrite it.
    SimConfig cfg = SimConfig::testConfig();
    writeCacheFile(path, cfg,
                   {fakeMetrics("FwSoft", "CacheRW", 424242)});
    {
        ScopedEnv no_cache("MIGC_NO_CACHE", "1");
        ExperimentSweep sweep(cfg);
        EXPECT_NE(sweep.get("FwSoft", "CacheRW").execTicks,
                  Tick(424242));
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    std::vector<std::string> lines;
    do {
        lines.push_back(line);
    } while (std::getline(in, line));
    EXPECT_EQ(lines.size(), 3u); // signature + header + planted row
    std::remove(path.c_str());
}

TEST(ExperimentSweep, StaticBestAndWorstSelection)
{
    const std::string path = tempCachePath("selection");
    std::remove(path.c_str());
    ScopedEnv cache("MIGC_SWEEP_CACHE", path.c_str());
    ScopedEnv no_cache("MIGC_NO_CACHE", nullptr);

    // Preload all three static policies so selection never
    // simulates: CacheR fastest, Uncached slowest.
    SimConfig cfg = SimConfig::testConfig();
    writeCacheFile(path, cfg,
                   {fakeMetrics("FwSoft", "Uncached", 3000),
                    fakeMetrics("FwSoft", "CacheR", 1000),
                    fakeMetrics("FwSoft", "CacheRW", 2000)});
    ExperimentSweep sweep(cfg);
    EXPECT_EQ(sweep.staticBest("FwSoft"), "CacheR");
    EXPECT_EQ(sweep.staticWorst("FwSoft"), "Uncached");
    std::remove(path.c_str());
}

TEST(ExperimentSweep, PolicyNameSetsMatchThePaper)
{
    auto stat = ExperimentSweep::staticPolicyNames();
    auto all = ExperimentSweep::allPolicyNames();
    EXPECT_EQ(stat.size(), 3u);
    EXPECT_EQ(all.size(), 6u);
    // The static policies lead the full list, same order.
    for (std::size_t i = 0; i < stat.size(); ++i)
        EXPECT_EQ(all[i], stat[i]);
}

TEST(ExperimentSweep, PrefetchFillsTheGridWithoutResimulation)
{
    const std::string path = tempCachePath("prefetch");
    std::remove(path.c_str());
    ScopedEnv cache("MIGC_SWEEP_CACHE", path.c_str());
    ScopedEnv no_cache("MIGC_NO_CACHE", nullptr);
    ScopedEnv jobs("MIGC_JOBS", "4");

    SimConfig cfg = SimConfig::testConfig();
    ExperimentSweep sweep(cfg);
    sweep.prefetch({"Uncached"});

    // Every workload row must now be in the cache file.
    std::ifstream in(path);
    std::string line;
    std::size_t rows = 0;
    while (std::getline(in, line)) {
        RunMetrics m;
        if (RunMetrics::fromCsv(line, m))
            ++rows;
    }
    EXPECT_EQ(rows, workloadOrder().size());
    std::remove(path.c_str());
}
