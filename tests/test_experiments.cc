/** @file Tests for the experiment harness and the sweep engine: the
 *  multi-config on-disk cache, cache bypass, cross-config isolation,
 *  warm-cache replay, and static-policy selection logic. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "core/experiments.hh"
#include "core/metrics.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"
#include "workloads/workload.hh"

using namespace migc;

namespace
{

/** Scoped env var set/restore so tests cannot leak state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool hadOld_ = false;
};

std::string
tempCachePath(const std::string &leaf)
{
    return ::testing::TempDir() + "migc_" + leaf + ".csv";
}

bool
fileExists(const std::string &path)
{
    return static_cast<bool>(std::ifstream(path));
}

/** A fake metrics row so selection tests need no simulation. */
RunMetrics
fakeMetrics(const std::string &workload, const std::string &policy,
            Tick exec_ticks)
{
    RunMetrics m;
    m.workload = workload;
    m.policy = policy;
    m.execTicks = exec_ticks;
    m.dramAccesses = 1.0;
    return m;
}

/** Multi-config header tags (see core/sweep_engine.cc). */
constexpr const char *kCacheTagV3 = "# migc-sweep-v3";
constexpr const char *kSectionTag = "# config ";

/** Seed a v3 cache file with one section for @p cfg. */
void
writeCacheFile(const std::string &path, const SimConfig &cfg,
               const std::vector<RunMetrics> &rows)
{
    std::ofstream out(path, std::ios::trunc);
    out << kCacheTagV3 << "\n";
    out << kSectionTag << cfg.signature() << "\n";
    out << RunMetrics::csvHeader() << "\n";
    for (const auto &m : rows)
        out << m.toCsv() << "\n";
}

} // namespace

TEST(ExperimentSweep, CacheRoundTripBySignature)
{
    const std::string path = tempCachePath("roundtrip");
    std::remove(path.c_str());
    ScopedEnv cache("MIGC_SWEEP_CACHE", path.c_str());
    ScopedEnv no_cache("MIGC_NO_CACHE", nullptr);
    // This test asserts the v3 text layout line by line; run the
    // engine in csv mode (the v4 binary path has its own tests).
    ScopedEnv fmt("MIGC_CACHE_FORMAT", "csv");

    SimConfig cfg = SimConfig::testConfig();
    RunMetrics first;
    {
        ExperimentSweep sweep(cfg);
        first = sweep.get("FwSoft", "CacheRW");
        ASSERT_TRUE(fileExists(path));
    }

    // The file leads with the format tag, then this config's section.
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, kCacheTagV3);
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, kSectionTag + cfg.signature());

    // A new sweep on the same config must load the saved result
    // rather than resimulate: doctor the cached row and confirm the
    // doctored value (which no simulation would produce) comes back.
    RunMetrics doctored = first;
    doctored.execTicks = 424242;
    writeCacheFile(path, cfg, {doctored});
    {
        ExperimentSweep sweep(cfg);
        EXPECT_EQ(sweep.get("FwSoft", "CacheRW").execTicks,
                  Tick(424242));
    }

    // A different signature (changed seed) must not see the doctored
    // section; it simulates its own result.
    SimConfig other = cfg;
    other.seed = cfg.seed + 1;
    {
        ExperimentSweep sweep(other);
        EXPECT_NE(sweep.get("FwSoft", "CacheRW").execTicks,
                  Tick(424242));
    }
    std::remove(path.c_str());
}

TEST(ExperimentSweep, NoCacheEnvBypassesDisk)
{
    const std::string path = tempCachePath("bypass");
    std::remove(path.c_str());
    ScopedEnv cache("MIGC_SWEEP_CACHE", path.c_str());

    // Plant a doctored cache: with MIGC_NO_CACHE=1 the sweep must
    // neither read it nor overwrite it.
    SimConfig cfg = SimConfig::testConfig();
    writeCacheFile(path, cfg,
                   {fakeMetrics("FwSoft", "CacheRW", 424242)});
    {
        ScopedEnv no_cache("MIGC_NO_CACHE", "1");
        ExperimentSweep sweep(cfg);
        EXPECT_NE(sweep.get("FwSoft", "CacheRW").execTicks,
                  Tick(424242));
    }
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    std::vector<std::string> lines;
    do {
        lines.push_back(line);
    } while (std::getline(in, line));
    // tag + section + header + planted row, untouched
    EXPECT_EQ(lines.size(), 4u);
    std::remove(path.c_str());
}

TEST(ExperimentSweep, LegacyV2CacheIsPreservedButNeverServed)
{
    const std::string path = tempCachePath("legacy_v2");
    std::remove(path.c_str());
    // The rewrite layout being asserted below is v3 text.
    ScopedEnv fmt("MIGC_CACHE_FORMAT", "csv");

    // A real pre-multi-config cache: "# migc-sweep-v2 <sig>" header
    // in the OLD signature format (no structure hash) and rows
    // without the sim_events column. The old format aliased
    // structurally different configs, so its rows must never be
    // served - but they must survive as a foreign section instead
    // of being silently discarded.
    const std::string old_sig =
        "test:cus4:l2x4:64kB:ch4:scale0.125:seed1";
    RunMetrics planted = fakeMetrics("FwSoft", "CacheRW", 424242);
    std::string row = planted.toCsv();
    row = row.substr(0, row.rfind(',')); // drop sim_events column
    {
        std::ofstream out(path, std::ios::trunc);
        out << "# migc-sweep-v2 " << old_sig << "\n";
        out << "workload,policy,...legacy header...\n";
        out << row << "\n";
    }

    SimConfig cfg = SimConfig::testConfig();
    {
        SweepEngine engine(path);
        // Old-format rows do not satisfy current-format lookups.
        EXPECT_NE(engine.get(cfg, "FwSoft", "CacheRW").execTicks,
                  Tick(424242));
        EXPECT_EQ(engine.simulationsPerformed(), 1u);
    }

    // After the rewrite, both the legacy row (re-serialized with the
    // sim_events column defaulted to 0) and the fresh result coexist
    // in the v3 file.
    std::ifstream in(path);
    std::string line;
    bool legacy_section = false;
    bool legacy_row = false;
    std::size_t sections = 0;
    while (std::getline(in, line)) {
        if (line.rfind("# config ", 0) == 0) {
            ++sections;
            legacy_section |= line == "# config " + old_sig;
        }
        legacy_row |= line == row + ",0";
    }
    EXPECT_TRUE(legacy_section);
    EXPECT_TRUE(legacy_row);
    EXPECT_EQ(sections, 2u);
    std::remove(path.c_str());
}

TEST(SweepEngine, CrossConfigSectionsDoNotClobberEachOther)
{
    const std::string path = tempCachePath("crossconfig");
    std::remove(path.c_str());

    SimConfig cfg_a = SimConfig::testConfig();
    SimConfig cfg_b = SimConfig::testConfig();
    cfg_b.seed = cfg_a.seed + 7;
    ASSERT_NE(cfg_a.signature(), cfg_b.signature());

    // Two engines with different configs fill one cache path in
    // turn; each write must preserve the other's section.
    Tick ticks_a = 0;
    Tick ticks_b = 0;
    {
        SweepEngine engine(path);
        ticks_a = engine.get(cfg_a, "FwSoft", "Uncached").execTicks;
        EXPECT_EQ(engine.simulationsPerformed(), 1u);
    }
    {
        SweepEngine engine(path);
        ticks_b = engine.get(cfg_b, "FwSoft", "Uncached").execTicks;
        EXPECT_EQ(engine.simulationsPerformed(), 1u);
    }

    // A third engine resumes both results without simulating.
    {
        SweepEngine engine(path);
        EXPECT_EQ(engine.get(cfg_a, "FwSoft", "Uncached").execTicks,
                  ticks_a);
        EXPECT_EQ(engine.get(cfg_b, "FwSoft", "Uncached").execTicks,
                  ticks_b);
        EXPECT_EQ(engine.simulationsPerformed(), 0u);
        EXPECT_EQ(engine.cacheHits(), 2u);
    }
    std::remove(path.c_str());
}

TEST(SweepEngine, OverlappingWritersUnionInsteadOfClobbering)
{
    const std::string path = tempCachePath("unionwriters");
    std::remove(path.c_str());

    SimConfig cfg_a = SimConfig::testConfig();
    SimConfig cfg_b = SimConfig::testConfig();
    cfg_b.seed = cfg_a.seed + 3;

    // Both engines open the (empty) cache before either has written:
    // the classic lost-update shape. Each save must union the file's
    // latest contents, so the second writer preserves the first
    // writer's section instead of overwriting it with its own
    // load-time snapshot.
    Tick ticks_a = 0;
    Tick ticks_b = 0;
    {
        SweepEngine engine_a(path);
        SweepEngine engine_b(path);
        ticks_a = engine_a.get(cfg_a, "FwSoft", "Uncached").execTicks;
        ticks_b = engine_b.get(cfg_b, "FwSoft", "Uncached").execTicks;
    }

    SweepEngine reader(path);
    EXPECT_EQ(reader.get(cfg_a, "FwSoft", "Uncached").execTicks,
              ticks_a);
    EXPECT_EQ(reader.get(cfg_b, "FwSoft", "Uncached").execTicks,
              ticks_b);
    EXPECT_EQ(reader.simulationsPerformed(), 0u);
    std::remove(path.c_str());
}

TEST(SweepEngine, WarmCacheReplayPerformsZeroSimulations)
{
    const std::string path = tempCachePath("warmreplay");
    std::remove(path.c_str());

    // An ablation-style multi-config grid: same (workload, policy)
    // at three DBI sizes plus a second workload.
    std::vector<RunRequest> grid;
    for (std::size_t rows : {4u, 16u, 64u}) {
        SimConfig cfg = SimConfig::testConfig();
        cfg.l2Bank.dbiRows = rows;
        grid.push_back(RunRequest{cfg, "FwBN", "CacheRW-CR"});
    }
    grid.push_back(
        RunRequest{SimConfig::testConfig(), "FwSoft", "CacheRW"});

    std::vector<RunMetrics> cold;
    {
        SweepEngine engine(path);
        cold = engine.run(grid);
        EXPECT_EQ(engine.simulationsPerformed(), grid.size());
    }

    // Re-running the whole ablation from the on-disk cache must not
    // simulate anything and must reproduce every row.
    {
        SweepEngine engine(path);
        std::vector<RunMetrics> warm = engine.run(grid);
        EXPECT_EQ(engine.simulationsPerformed(), 0u);
        ASSERT_EQ(warm.size(), cold.size());
        for (std::size_t i = 0; i < cold.size(); ++i) {
            EXPECT_EQ(warm[i].execTicks, cold[i].execTicks);
            EXPECT_EQ(warm[i].dramAccesses, cold[i].dramAccesses);
            EXPECT_EQ(warm[i].simEvents, cold[i].simEvents);
        }
    }
    std::remove(path.c_str());
}

TEST(SweepEngine, CorruptedCacheRowsAreCountedAsParseErrors)
{
    const std::string path = tempCachePath("parse_errors");
    std::remove(path.c_str());

    // A cache file with one good row and two corrupted lines (a
    // truncated write, a stale schema, a stray editor). The good row
    // must still be served, and the losses must be counted - a
    // truncated cache should not be able to pass for a cold one.
    SimConfig cfg = SimConfig::testConfig();
    {
        std::ofstream out(path, std::ios::trunc);
        out << kCacheTagV3 << "\n";
        out << kSectionTag << cfg.signature() << "\n";
        out << RunMetrics::csvHeader() << "\n";
        out << fakeMetrics("FwSoft", "CacheRW", 424242).toCsv() << "\n";
        out << "this line is not a metrics row\n";
        out << "FwBN,CacheR,not-a-number\n";
    }

    SweepEngine engine(path);
    EXPECT_EQ(engine.cacheParseErrors(), 2u);
    EXPECT_EQ(engine.get(cfg, "FwSoft", "CacheRW").execTicks,
              Tick(424242));
    EXPECT_EQ(engine.simulationsPerformed(), 0u);
    std::remove(path.c_str());
}

TEST(RunCache, ParseErrorsCountEachDamagedLineOnce)
{
    const std::string corrupt = tempCachePath("corrupt_input");
    const std::string path = tempCachePath("parse_dedupe");
    std::remove(corrupt.c_str());
    std::remove(path.c_str());
    {
        std::ofstream out(corrupt, std::ios::trunc);
        out << kCacheTagV3 << "\n";
        out << kSectionTag << "some-config\n";
        out << "broken row\n";
    }

    RunCache cache(path);
    // Re-merging the same damaged file must not inflate the count.
    cache.mergeFile(corrupt);
    cache.mergeFile(corrupt);
    EXPECT_EQ(cache.parseErrors(), 1u);

    // A row corrupted (by a concurrent writer) after this cache
    // loaded is seen - and counted - by the pre-write merge of
    // save(), the last moment it is visible before the rewrite
    // drops it.
    {
        std::ofstream out(path, std::ios::trunc);
        out << kCacheTagV3 << "\n";
        out << kSectionTag << "other-config\n";
        out << "another broken row\n";
    }
    cache.insert("fresh-config", fakeMetrics("FwSoft", "CacheR", 7));
    cache.saveNow();
    EXPECT_EQ(cache.parseErrors(), 2u);
    std::remove(corrupt.c_str());
    std::remove(path.c_str());
}

TEST(SweepEngine, DuplicateRequestsSimulateOnce)
{
    SweepEngine engine(""); // in-memory only
    SimConfig cfg = SimConfig::testConfig();
    std::vector<RunRequest> grid(3, RunRequest{cfg, "FwSoft", "CacheR"});
    std::vector<RunMetrics> results = engine.run(grid);
    EXPECT_EQ(engine.simulationsPerformed(), 1u);
    ASSERT_EQ(results.size(), 3u);
    EXPECT_EQ(results[0].execTicks, results[1].execTicks);
    EXPECT_EQ(results[0].execTicks, results[2].execTicks);
}

TEST(ExperimentSweep, StaticBestAndWorstSelection)
{
    const std::string path = tempCachePath("selection");
    std::remove(path.c_str());
    ScopedEnv cache("MIGC_SWEEP_CACHE", path.c_str());
    ScopedEnv no_cache("MIGC_NO_CACHE", nullptr);

    // Preload all three static policies so selection never
    // simulates: CacheR fastest, Uncached slowest.
    SimConfig cfg = SimConfig::testConfig();
    writeCacheFile(path, cfg,
                   {fakeMetrics("FwSoft", "Uncached", 3000),
                    fakeMetrics("FwSoft", "CacheR", 1000),
                    fakeMetrics("FwSoft", "CacheRW", 2000)});
    ExperimentSweep sweep(cfg);
    EXPECT_EQ(sweep.staticBest("FwSoft"), "CacheR");
    EXPECT_EQ(sweep.staticWorst("FwSoft"), "Uncached");
    std::remove(path.c_str());
}

TEST(ExperimentSweep, PolicyNameSetsMatchThePaper)
{
    auto stat = ExperimentSweep::staticPolicyNames();
    auto all = ExperimentSweep::allPolicyNames();
    EXPECT_EQ(stat.size(), 3u);
    EXPECT_EQ(all.size(), 6u);
    // The static policies lead the full list, same order.
    for (std::size_t i = 0; i < stat.size(); ++i)
        EXPECT_EQ(all[i], stat[i]);
}

TEST(ExperimentSweep, PrefetchFillsTheGridWithoutResimulation)
{
    const std::string path = tempCachePath("prefetch");
    std::remove(path.c_str());
    ScopedEnv cache("MIGC_SWEEP_CACHE", path.c_str());
    ScopedEnv no_cache("MIGC_NO_CACHE", nullptr);
    ScopedEnv jobs("MIGC_JOBS", "4");

    SimConfig cfg = SimConfig::testConfig();
    ExperimentSweep sweep(cfg);
    sweep.prefetch({"Uncached"});

    // Every workload row must now be in the cache file. Count them
    // through RunCache so the check holds for v4 binary (the
    // default) and csv alike.
    RunCache rows(path, 8);
    EXPECT_EQ(rows.size(), workloadOrder().size());

    // A second sweep over the same grid replays from disk.
    ExperimentSweep warm(cfg);
    warm.prefetch({"Uncached"});
    EXPECT_EQ(warm.engine().simulationsPerformed(), 0u);
    std::remove(path.c_str());
}
