/** @file Tests for cache policies and the PC reuse predictor. */

#include <gtest/gtest.h>

#include "policy/cache_policy.hh"
#include "policy/reuse_predictor.hh"

using namespace migc;

TEST(CachePolicy, UncachedBypassesEverything)
{
    CachePolicy p = CachePolicy::make(PolicyKind::uncached);
    EXPECT_EQ(p.name, "Uncached");
    EXPECT_FALSE(p.cacheLoadsL1);
    EXPECT_FALSE(p.cacheLoadsL2);
    EXPECT_FALSE(p.cacheStoresL2);
    EXPECT_TRUE(p.fullyBypassed());
}

TEST(CachePolicy, CacheRCachesLoadsOnly)
{
    CachePolicy p = CachePolicy::make(PolicyKind::cacheR);
    EXPECT_TRUE(p.cacheLoadsL1);
    EXPECT_TRUE(p.cacheLoadsL2);
    EXPECT_FALSE(p.cacheStoresL2);
    EXPECT_FALSE(p.fullyBypassed());
}

TEST(CachePolicy, OptimizationsAreCumulative)
{
    CachePolicy ab = CachePolicy::make(PolicyKind::cacheRwAb);
    EXPECT_TRUE(ab.allocationBypass);
    EXPECT_FALSE(ab.cacheRinsing);

    CachePolicy cr = CachePolicy::make(PolicyKind::cacheRwCr);
    EXPECT_TRUE(cr.allocationBypass);
    EXPECT_TRUE(cr.cacheRinsing);
    EXPECT_FALSE(cr.pcBypassL2);

    CachePolicy pcby = CachePolicy::make(PolicyKind::cacheRwPcby);
    EXPECT_TRUE(pcby.allocationBypass);
    EXPECT_TRUE(pcby.cacheRinsing);
    EXPECT_TRUE(pcby.pcBypassL2);
}

TEST(CachePolicy, FromNameRoundTrips)
{
    for (const auto &p : CachePolicy::allPolicies()) {
        CachePolicy q = CachePolicy::fromName(p.name);
        EXPECT_EQ(q.name, p.name);
        EXPECT_EQ(q.cacheLoadsL1, p.cacheLoadsL1);
        EXPECT_EQ(q.cacheStoresL2, p.cacheStoresL2);
        EXPECT_EQ(q.allocationBypass, p.allocationBypass);
        EXPECT_EQ(q.cacheRinsing, p.cacheRinsing);
        EXPECT_EQ(q.pcBypassL2, p.pcBypassL2);
    }
}

TEST(CachePolicy, PaperOrdering)
{
    auto all = CachePolicy::allPolicies();
    ASSERT_EQ(all.size(), 6u);
    EXPECT_EQ(all[0].name, "Uncached");
    EXPECT_EQ(all[5].name, "CacheRW-PCby");
    EXPECT_EQ(CachePolicy::staticPolicies().size(), 3u);
}

TEST(ReusePredictor, StartsCaching)
{
    ReusePredictor pred;
    EXPECT_TRUE(pred.shouldCache(0x1234, 0x40));
}

TEST(ReusePredictor, TrainsDownToBypass)
{
    ReusePredictor::Config cfg;
    cfg.sampleInterval = 1 << 30; // pick a slice that never samples
    ReusePredictor pred(cfg);
    Addr pc = 0x500;
    for (int i = 0; i < 8; ++i)
        pred.trainNoReuse(pc);
    EXPECT_EQ(pred.counterFor(pc), 0u);
    // Find an address that is not in the sampled slice.
    bool bypassed = false;
    for (Addr line = 0x40; line < 0x40 * 100; line += 0x40) {
        if (!pred.shouldCache(pc, line)) {
            bypassed = true;
            break;
        }
    }
    EXPECT_TRUE(bypassed);
}

TEST(ReusePredictor, TrainsBackUp)
{
    ReusePredictor::Config cfg;
    cfg.sampleInterval = 1 << 30;
    ReusePredictor pred(cfg);
    Addr pc = 0x600;
    for (int i = 0; i < 8; ++i)
        pred.trainNoReuse(pc);
    for (int i = 0; i < 8; ++i)
        pred.trainReuse(pc);
    EXPECT_TRUE(pred.shouldCache(pc, 0x99 * 0x40));
}

TEST(ReusePredictor, CountersSaturate)
{
    ReusePredictor::Config cfg;
    cfg.counterBits = 2; // 0..3
    cfg.initialValue = 3;
    cfg.threshold = 2;
    ReusePredictor pred(cfg);
    Addr pc = 0x700;
    for (int i = 0; i < 100; ++i)
        pred.trainReuse(pc);
    EXPECT_EQ(pred.counterFor(pc), 3u);
    for (int i = 0; i < 100; ++i)
        pred.trainNoReuse(pc);
    EXPECT_EQ(pred.counterFor(pc), 0u);
}

TEST(ReusePredictor, SamplingOverrideKeepsTraining)
{
    ReusePredictor::Config cfg;
    cfg.sampleInterval = 4;
    ReusePredictor pred(cfg);
    Addr pc = 0x800;
    for (int i = 0; i < 16; ++i)
        pred.trainNoReuse(pc);
    // About 1/4 of lines should still be cached via sampling.
    int cached = 0;
    for (int i = 0; i < 400; ++i) {
        if (pred.shouldCache(pc, 0x40ULL * i))
            ++cached;
    }
    EXPECT_GT(cached, 50);
    EXPECT_LT(cached, 200);
}

TEST(ReusePredictor, SamplingIsDeterministicPerLine)
{
    ReusePredictor::Config cfg;
    cfg.sampleInterval = 4;
    ReusePredictor pred(cfg);
    Addr pc = 0x900;
    for (int i = 0; i < 16; ++i)
        pred.trainNoReuse(pc);
    for (int i = 0; i < 64; ++i) {
        Addr line = 0x40ULL * i;
        EXPECT_EQ(pred.shouldCache(pc, line),
                  pred.shouldCache(pc, line));
    }
}

TEST(ReusePredictor, ResetRestoresInitialState)
{
    ReusePredictor pred;
    Addr pc = 0xA00;
    for (int i = 0; i < 8; ++i)
        pred.trainNoReuse(pc);
    pred.reset();
    EXPECT_TRUE(pred.shouldCache(pc, 0x40));
}

/** Property sweep over predictor configurations. */
class PredictorSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(PredictorSweep, ThresholdSemanticsHold)
{
    auto [bits, threshold] = GetParam();
    if (threshold > (1u << bits) - 1)
        GTEST_SKIP() << "threshold exceeds counter range";
    ReusePredictor::Config cfg;
    cfg.counterBits = bits;
    cfg.threshold = threshold;
    cfg.initialValue = threshold; // starts exactly at threshold
    cfg.sampleInterval = 1 << 30;
    ReusePredictor pred(cfg);
    Addr pc = 0x40;
    EXPECT_TRUE(pred.shouldCache(pc, 0x0));
    pred.trainNoReuse(pc);
    // One notch below threshold: bypass for non-sampled lines.
    bool all_cache = true;
    for (int i = 1; i < 50; ++i) {
        if (!pred.shouldCache(pc, 0x40ULL * i))
            all_cache = false;
    }
    EXPECT_FALSE(all_cache);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PredictorSweep,
    ::testing::Combine(::testing::Values(2u, 3u, 4u),
                       ::testing::Values(1u, 2u, 4u)));
