/** @file Tests for the warm-cache serve layer and the input
 *  validation around it: glob matching, CacheSnapshot semantics
 *  (immutability, first-wins, row lifetime past the owning cache),
 *  the RunCache snapshot/append-log split, the ServeService protocol
 *  (warm hits, simulate-on-miss with exactly-one-enqueue, glob
 *  queries), a concurrent reader/writer torture test, and the fatal
 *  paths for malformed MIGC_JOBS values, cache-unsafe registry
 *  names, and placeholder rows reaching the cache. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/cache_snapshot.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"
#include "policy/policy_registry.hh"
#include "serve/serve_protocol.hh"
#include "serve/serve_service.hh"
#include "sim/parallel.hh"
#include "workloads/workload.hh"

using namespace migc;

namespace
{

/** Scoped env var set/restore so tests cannot leak state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool hadOld_ = false;
};

std::string
tempCachePath(const std::string &leaf)
{
    return ::testing::TempDir() + "migc_serve_" + leaf + ".csv";
}

RunMetrics
fakeMetrics(const std::string &workload, const std::string &policy,
            Tick exec_ticks)
{
    RunMetrics m;
    m.workload = workload;
    m.policy = policy;
    m.execTicks = exec_ticks;
    return m;
}

/** The serve-test grid: 2 workloads x 3 policies on the tiny test
 *  system (the same slice the shard tests sweep). */
std::vector<RunRequest>
smallGrid()
{
    const SimConfig cfg = SimConfig::testConfig();
    std::vector<RunRequest> grid;
    for (const char *w : {"FwSoft", "FwBN"}) {
        for (const char *p : {"Uncached", "CacheR", "CacheRW"})
            grid.push_back(RunRequest{cfg, w, p});
    }
    return grid;
}

/** Expected CSV per (workload, policy), from an independent warm
 *  replay - the byte-identity oracle for everything serve returns. */
std::map<std::pair<std::string, std::string>, std::string>
expectedRows()
{
    static const auto rows = [] {
        std::string path = tempCachePath("expected");
        std::remove(path.c_str());
        SweepEngine engine(path);
        std::vector<RunMetrics> results = engine.run(smallGrid());
        std::map<std::pair<std::string, std::string>, std::string>
            out;
        std::vector<RunRequest> grid = smallGrid();
        for (std::size_t i = 0; i < grid.size(); ++i) {
            out[{grid[i].workload, grid[i].policy}] =
                results[i].toCsv();
        }
        std::remove(path.c_str());
        return out;
    }();
    return rows;
}

} // namespace

// ---------------------------------------------------------------------
// Glob matching
// ---------------------------------------------------------------------

TEST(Glob, LiteralAndWildcardMatching)
{
    EXPECT_TRUE(globMatch("FwBN", "FwBN"));
    EXPECT_FALSE(globMatch("FwBN", "FwBn"));
    EXPECT_TRUE(globMatch("*", ""));
    EXPECT_TRUE(globMatch("*", "anything"));
    EXPECT_TRUE(globMatch("Fw*", "FwSoft"));
    EXPECT_FALSE(globMatch("Fw*", "BwSoft"));
    EXPECT_TRUE(globMatch("*Soft", "FwSoft"));
    EXPECT_TRUE(globMatch("F?Soft", "FwSoft"));
    EXPECT_FALSE(globMatch("F?Soft", "FSoft"));
    EXPECT_TRUE(globMatch("a*b*c", "aXXbYYc"));
    EXPECT_TRUE(globMatch("a*b*c", "abc"));
    EXPECT_FALSE(globMatch("a*b*c", "aXXbYY"));
    EXPECT_TRUE(globMatch("*W*", "CacheRW"));
    EXPECT_FALSE(globMatch("", "x"));
    EXPECT_TRUE(globMatch("", ""));
    EXPECT_TRUE(globMatch("**", "x"));
}

// ---------------------------------------------------------------------
// CacheSnapshot
// ---------------------------------------------------------------------

TEST(Snapshot, BuildsFirstWinsIndexInCanonicalOrder)
{
    RunMetrics a = fakeMetrics("FwBN", "CacheR", 10);
    RunMetrics b = fakeMetrics("FwBN", "Uncached", 20);
    RunMetrics c = fakeMetrics("BwBN", "CacheR", 30);
    RunMetrics dup = fakeMetrics("FwBN", "CacheR", 999);

    CacheSnapshot::Builder builder;
    EXPECT_TRUE(builder.add("sigB", &a));
    EXPECT_TRUE(builder.add("sigB", &b));
    EXPECT_TRUE(builder.add("sigA", &c));
    EXPECT_FALSE(builder.add("sigB", &dup)) << "first add must win";
    auto snap = builder.build();

    EXPECT_EQ(snap->rows(), 3u);
    ASSERT_NE(snap->find("sigB", "FwBN", "CacheR"), nullptr);
    EXPECT_EQ(snap->find("sigB", "FwBN", "CacheR")->execTicks, 10u);
    EXPECT_EQ(snap->find("sigB", "FwBN", "Missing"), nullptr);
    EXPECT_EQ(snap->find("nosig", "FwBN", "CacheR"), nullptr);

    // match order: signature, then workload, then policy.
    std::vector<const RunMetrics *> all = snap->match("*", "*", "*");
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0]->workload, "BwBN");
    EXPECT_EQ(all[1]->policy, "CacheR");
    EXPECT_EQ(all[2]->policy, "Uncached");

    EXPECT_EQ(snap->match("sigB", "*", "Cache?").size(), 1u);
    EXPECT_EQ(snap->match("sig?", "?w*", "*").size(), 3u);
}

TEST(Snapshot, RefusesPlaceholderAndNullRows)
{
    RunMetrics ph = fakeMetrics("FwBN", "CacheR", 0);
    ph.placeholder = true;
    CacheSnapshot::Builder builder;
    EXPECT_FALSE(builder.add("sig", &ph));
    EXPECT_FALSE(builder.add("sig", nullptr));
    EXPECT_EQ(builder.build()->rows(), 0u);
    EXPECT_EQ(CacheSnapshot::empty()->rows(), 0u);
}

TEST(Snapshot, RunCachePublishesImmutableViews)
{
    RunCache cache{std::string()}; // memory-only
    cache.insert("sig", fakeMetrics("FwBN", "CacheR", 10));

    auto first = cache.snapshot();
    EXPECT_EQ(first->rows(), 1u);
    EXPECT_EQ(cache.snapshot().get(), first.get())
        << "no appends since publish: snapshot() must be free";

    cache.insert("sig", fakeMetrics("FwBN", "Uncached", 20));
    auto second = cache.snapshot();
    EXPECT_EQ(first->rows(), 1u)
        << "published snapshots must never change";
    EXPECT_EQ(second->rows(), 2u);
    EXPECT_EQ(first->find("sig", "FwBN", "Uncached"), nullptr);
    ASSERT_NE(second->find("sig", "FwBN", "Uncached"), nullptr);
}

TEST(Snapshot, RowsOutliveTheOwningCache)
{
    std::shared_ptr<const CacheSnapshot> snap;
    {
        RunCache cache{std::string()};
        cache.insert("sig", fakeMetrics("FwBN", "CacheR", 42));
        snap = cache.snapshot();
    }
    const RunMetrics *row = snap->find("sig", "FwBN", "CacheR");
    ASSERT_NE(row, nullptr);
    EXPECT_EQ(row->execTicks, 42u);
    EXPECT_EQ(row->toCsv(),
              fakeMetrics("FwBN", "CacheR", 42).toCsv());
}

TEST(Snapshot, FindPrefersUnpublishedAppendsOverNothing)
{
    RunCache cache{std::string()};
    cache.snapshot(); // publish the empty base
    cache.insert("sig", fakeMetrics("FwBN", "CacheR", 7));
    // find() must see the append-log row before it is published...
    ASSERT_NE(cache.find("sig", "FwBN", "CacheR"), nullptr);
    EXPECT_EQ(cache.estimateEvents("FwBN", "CacheR"), 0.0);
    EXPECT_EQ(cache.size(), 1u);
    // ...and insert() must dedupe against it (first write wins).
    const RunMetrics &kept =
        cache.insert("sig", fakeMetrics("FwBN", "CacheR", 9));
    EXPECT_EQ(kept.execTicks, 7u);
    EXPECT_EQ(cache.size(), 1u);
}

// ---------------------------------------------------------------------
// Cache input validation (satellite fixes)
// ---------------------------------------------------------------------

TEST(CacheValidationDeath, PlaceholderRowsNeverReachTheCache)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    RunMetrics ph = fakeMetrics("FwBN", "CacheR", 0);
    ph.placeholder = true;
    RunCache cache{std::string()};
    EXPECT_EXIT(cache.insert("sig", ph),
                ::testing::ExitedWithCode(1), "placeholder");
}

TEST(CacheValidationDeath, MetacharacterNamesAreFatalPerCharacter)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    RunCache cache{std::string()};
    // One death per v3 metacharacter: field separator, line break,
    // leading comment marker, and the header-prefix collision.
    EXPECT_EXIT(
        cache.insert("sig", fakeMetrics("Fw,BN", "CacheR", 1)),
        ::testing::ExitedWithCode(1), "cannot key the run cache");
    EXPECT_EXIT(
        cache.insert("sig", fakeMetrics("FwBN", "Cache\nR", 1)),
        ::testing::ExitedWithCode(1), "cannot key the run cache");
    EXPECT_EXIT(
        cache.insert("sig", fakeMetrics("#FwBN", "CacheR", 1)),
        ::testing::ExitedWithCode(1), "cannot key the run cache");
    EXPECT_EXIT(
        cache.insert("sig", fakeMetrics("workload", "CacheR", 1)),
        ::testing::ExitedWithCode(1), "header prefix");
}

TEST(CacheValidationDeath, RegistriesRejectUnsafeNames)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(
        {
            WorkloadRegistry::Entry e;
            e.name = "Bad,Workload";
            WorkloadRegistry::instance().add(std::move(e));
        },
        ::testing::ExitedWithCode(1), "cannot key the run cache");
    EXPECT_EXIT(
        {
            PolicyRegistry::Entry e;
            e.name = "#BadPolicy";
            PolicyRegistry::instance().add(std::move(e));
        },
        ::testing::ExitedWithCode(1), "cannot key the run cache");
    // The paper's parameterized specs take "@0.5"-style params; a
    // comma-decimal locale habit would have produced a name the
    // cache silently loses. It must die loudly instead.
    CachePolicy out;
    EXPECT_EXIT(
        PolicyRegistry::instance().tryMake("CacheRW-DynAB@0,5", out),
        ::testing::ExitedWithCode(1), "cannot key the run cache");
}

TEST(SweepJobsEnv, ValidValuesParse)
{
    {
        ScopedEnv env("MIGC_JOBS", "8");
        EXPECT_EQ(sweepJobs(), 8u);
    }
    {
        ScopedEnv env("MIGC_JOBS", "1");
        EXPECT_EQ(sweepJobs(), 1u);
    }
    {
        // Empty and unset both mean "hardware default", never fatal.
        ScopedEnv env("MIGC_JOBS", "");
        EXPECT_GE(sweepJobs(), 1u);
    }
    {
        ScopedEnv env("MIGC_JOBS", nullptr);
        EXPECT_GE(sweepJobs(), 1u);
    }
}

TEST(SweepJobsEnvDeath, MalformedValuesAreFatalNotSilent)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    {
        ScopedEnv env("MIGC_JOBS", "abc");
        EXPECT_EXIT(sweepJobs(), ::testing::ExitedWithCode(1),
                    "MIGC_JOBS");
    }
    {
        ScopedEnv env("MIGC_JOBS", "8x");
        EXPECT_EXIT(sweepJobs(), ::testing::ExitedWithCode(1),
                    "MIGC_JOBS");
    }
    {
        ScopedEnv env("MIGC_JOBS", "0");
        EXPECT_EXIT(sweepJobs(), ::testing::ExitedWithCode(1),
                    "MIGC_JOBS");
    }
    {
        ScopedEnv env("MIGC_JOBS", "-2");
        EXPECT_EXIT(sweepJobs(), ::testing::ExitedWithCode(1),
                    "MIGC_JOBS");
    }
    {
        ScopedEnv env("MIGC_JOBS", "5000");
        EXPECT_EXIT(sweepJobs(), ::testing::ExitedWithCode(1),
                    "MIGC_JOBS");
    }
}

// ---------------------------------------------------------------------
// Serve protocol parsing
// ---------------------------------------------------------------------

TEST(ServeProtocol, ParsesCommandsCommentsAndErrors)
{
    EXPECT_EQ(parseServeRequest("").kind, ServeRequest::Kind::none);
    EXPECT_EQ(parseServeRequest("# note").kind,
              ServeRequest::Kind::none);
    EXPECT_EQ(parseServeRequest("   \t ").kind,
              ServeRequest::Kind::none);

    ServeRequest get = parseServeRequest("get test FwBN CacheR");
    EXPECT_EQ(get.kind, ServeRequest::Kind::get);
    EXPECT_EQ(get.config, "test");
    EXPECT_EQ(get.workload, "FwBN");
    EXPECT_EQ(get.policy, "CacheR");

    ServeRequest match = parseServeRequest("match * Fw* Cache?");
    EXPECT_EQ(match.kind, ServeRequest::Kind::match);
    EXPECT_EQ(match.workload, "Fw*");

    EXPECT_EQ(parseServeRequest("stats").kind,
              ServeRequest::Kind::stats);
    EXPECT_EQ(parseServeRequest("wait").kind,
              ServeRequest::Kind::wait);
    EXPECT_EQ(parseServeRequest("help").kind,
              ServeRequest::Kind::help);

    EXPECT_EQ(parseServeRequest("get test FwBN").kind,
              ServeRequest::Kind::error);
    EXPECT_EQ(parseServeRequest("stats now").kind,
              ServeRequest::Kind::error);
    EXPECT_EQ(parseServeRequest("frobnicate").kind,
              ServeRequest::Kind::error);
}

// ---------------------------------------------------------------------
// ServeService
// ---------------------------------------------------------------------

TEST(ServeService, WarmHitsAreByteIdenticalToWarmReplay)
{
    const auto &expected = expectedRows();
    std::string path = tempCachePath("warm_hits");
    std::remove(path.c_str());
    {
        SweepEngine warmup(path);
        warmup.run(smallGrid());
    }

    SweepEngine engine(path);
    ServeService service(engine);
    for (const auto &[key, csv] : expected) {
        std::string reply = service.handleLine(
            "get test " + key.first + " " + key.second);
        EXPECT_EQ(reply, csv + "\n");
    }
    EXPECT_EQ(engine.simulationsPerformed(), 0u)
        << "a fully warm cache must serve without simulating";
    EXPECT_EQ(service.missEnqueues(), 0u);
    EXPECT_EQ(service.served(), expected.size());

    // match over the full grid: rows in canonical order + trailer.
    std::string matched = service.handleLine("match test * *");
    std::string want;
    for (const auto &[key, csv] : expected)
        want += csv + "\n"; // map order == (workload, policy) order
    want += "# matched 6 rows\n";
    EXPECT_EQ(matched, want);

    // The exact signature works as a config token too.
    std::string sig = SimConfig::testConfig().signature();
    std::string reply =
        service.handleLine("get " + sig + " FwBN CacheR");
    EXPECT_EQ(reply, expected.at({"FwBN", "CacheR"}) + "\n");
    std::remove(path.c_str());
}

TEST(ServeService, ErrorsAndEdgeCases)
{
    std::string path = tempCachePath("errors");
    std::remove(path.c_str());
    SweepEngine engine(path);
    ServeService service(engine);

    EXPECT_EQ(service.handleLine(""), "");
    EXPECT_EQ(service.handleLine("# comment"), "");
    EXPECT_EQ(service.handleLine("nope"),
              "# error: unknown command 'nope' (try: help)\n");
    EXPECT_TRUE(service.handleLine("get test NoSuchWl CacheR")
                    .find("# error: unknown workload") == 0);
    EXPECT_TRUE(service.handleLine("get test FwBN NoSuchPolicy")
                    .find("# error: unknown policy") == 0);
    EXPECT_TRUE(service.handleLine("get nosig FwBN CacheR")
                    .find("# error:") == 0)
        << "unknown config that is not cached cannot simulate";
    EXPECT_EQ(service.handleLine("match nosig * *"),
              "# matched 0 rows\n");
    EXPECT_TRUE(service.handleLine("help").find("# get") == 0);
    EXPECT_TRUE(service.handleLine("stats").find("# stats rows=0")
                == 0);
    std::remove(path.c_str());
}

TEST(ServeService, NoSimulateModeAnswersMissWithoutEnqueueing)
{
    std::string path = tempCachePath("no_simulate");
    std::remove(path.c_str());
    SweepEngine engine(path);
    ServeService::Options opts;
    opts.simulate = false;
    ServeService service(engine, opts);

    EXPECT_EQ(service.handleLine("get test FwBN CacheR"),
              "# miss test/FwBN/CacheR\n");
    service.drain(); // must not block with nothing pending
    EXPECT_EQ(service.missEnqueues(), 0u);
    EXPECT_EQ(engine.simulationsPerformed(), 0u);
    std::remove(path.c_str());
}

TEST(ServeService, ColdPointSimulatesOnMissExactlyOnce)
{
    const auto &expected = expectedRows();
    std::string path = tempCachePath("cold_miss");
    std::remove(path.c_str());
    SweepEngine engine(path);
    ServeService service(engine);

    std::string first = service.handleLine("get test FwBN Uncached");
    EXPECT_TRUE(first.find("# miss test/FwBN/Uncached") == 0);
    std::string again = service.handleLine("get test FwBN Uncached");
    if (again.find('#') == 0) {
        EXPECT_TRUE(again.find("# miss") == 0);
    } else {
        // The miss worker can legitimately finish between the two
        // lines; then the re-get is already a warm hit.
        EXPECT_EQ(again, expected.at({"FwBN", "Uncached"}) + "\n");
    }
    EXPECT_EQ(service.handleLine("wait"), "# drained\n");
    EXPECT_EQ(service.handleLine("get test FwBN Uncached"),
              expected.at({"FwBN", "Uncached"}) + "\n");
    EXPECT_EQ(service.missEnqueues(), 1u)
        << "repeat gets of one cold point must join the pending job";
    EXPECT_EQ(engine.simulationsPerformed(), 1u);
    std::remove(path.c_str());
}

TEST(ServeService, TortureConcurrentReadersDuringMissInserts)
{
    const auto &expected = expectedRows();
    const std::vector<RunRequest> grid = smallGrid();

    // Pre-warm half the grid; the other half stays cold and is
    // simulated on miss while readers hammer the snapshot.
    std::string path = tempCachePath("torture");
    std::remove(path.c_str());
    {
        SweepEngine warmup(path);
        std::vector<RunRequest> half(grid.begin(),
                                     grid.begin() + grid.size() / 2);
        warmup.run(half);
    }

    SweepEngine engine(path);
    ServeService service(engine);

    constexpr int kReaders = 4;
    constexpr int kIters = 200;
    std::vector<std::thread> readers;
    std::vector<std::string> failures(kReaders);
    for (int r = 0; r < kReaders; ++r) {
        readers.emplace_back([&, r] {
            for (int i = 0; i < kIters; ++i) {
                const RunRequest &req =
                    grid[static_cast<std::size_t>(r + i) %
                         grid.size()];
                std::string reply = service.handleLine(
                    "get test " + req.workload + " " + req.policy);
                const std::string &want =
                    expected.at({req.workload, req.policy});
                if (reply.find('#') == 0) {
                    if (reply.find("# miss") != 0) {
                        failures[r] = "unexpected status: " + reply;
                        return;
                    }
                } else if (reply != want + "\n") {
                    failures[r] = "served row diverged:\n  got  " +
                                  reply + "  want " + want + "\n";
                    return;
                }
                if (i % 16 == 0) {
                    // Pattern queries race the publishes too; every
                    // data row they return must be a real result.
                    std::string matched =
                        service.handleLine("match test * *");
                    std::size_t start = 0;
                    while (start < matched.size()) {
                        std::size_t nl = matched.find('\n', start);
                        std::string row =
                            matched.substr(start, nl - start);
                        start = nl + 1;
                        if (row.empty() || row[0] == '#')
                            continue;
                        bool known = false;
                        for (const auto &[key, csv] : expected)
                            known = known || csv == row;
                        if (!known) {
                            failures[r] =
                                "match returned a row that is not a "
                                "warm-replay result: " + row;
                            return;
                        }
                    }
                }
            }
        });
    }
    for (auto &t : readers)
        t.join();
    for (const auto &f : failures)
        EXPECT_EQ(f, "");

    service.drain();
    for (const RunRequest &req : grid) {
        EXPECT_EQ(service.handleLine("get test " + req.workload +
                                     " " + req.policy),
                  expected.at({req.workload, req.policy}) + "\n");
    }
    EXPECT_EQ(service.missEnqueues(), grid.size() - grid.size() / 2)
        << "each cold point must enqueue exactly one simulation";
    EXPECT_EQ(engine.simulationsPerformed(),
              grid.size() - grid.size() / 2);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// SweepEngine::snapshot
// ---------------------------------------------------------------------

TEST(EngineSnapshot, UnionsWarmSideStoreWithWritableCache)
{
    // A shard worker warm-imports the canonical cache; its snapshot
    // must serve those rows alongside its own fresh ones.
    const auto &expected = expectedRows();
    std::string canonical = tempCachePath("engine_snap");
    std::remove(canonical.c_str());
    {
        SweepEngine warmup(canonical);
        warmup.run(smallGrid());
    }

    ShardSpec spec;
    spec.shards = 2;
    spec.index = 0;
    SweepEngine worker(canonical, spec);
    auto snap = worker.snapshot();
    EXPECT_EQ(snap->rows(), expected.size());
    std::string sig = SimConfig::testConfig().signature();
    for (const auto &[key, csv] : expected) {
        const RunMetrics *row =
            snap->find(sig, key.first, key.second);
        ASSERT_NE(row, nullptr);
        EXPECT_EQ(row->toCsv(), csv);
    }
    std::remove(canonical.c_str());
    std::remove(shardCachePath(canonical, 0).c_str());
}
