/** @file Unit tests for the event queue and events. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

using namespace migc;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.numProcessed(), 0u);
}

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");
    eq.schedule(&c, 300);
    eq.schedule(&a, 100);
    eq.schedule(&b, 200);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 300u);
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    EventFunctionWrapper low([&] { order.push_back(1); }, "low",
                             Event::cpuTickPriority);
    EventFunctionWrapper hi([&] { order.push_back(2); }, "hi",
                            Event::responsePriority);
    EventFunctionWrapper first([&] { order.push_back(3); }, "first");
    EventFunctionWrapper second([&] { order.push_back(4); }, "second");
    eq.schedule(&low, 50);
    eq.schedule(&first, 50);
    eq.schedule(&second, 50);
    eq.schedule(&hi, 50);
    eq.run();
    // responsePriority first, then default in insertion order, then
    // cpuTickPriority.
    EXPECT_EQ(order, (std::vector<int>{2, 3, 4, 1}));
}

TEST(EventQueue, DescheduleSkipsEvent)
{
    EventQueue eq;
    int fired = 0;
    EventFunctionWrapper a([&] { ++fired; }, "a");
    eq.schedule(&a, 10);
    EXPECT_TRUE(a.scheduled());
    eq.deschedule(&a);
    EXPECT_FALSE(a.scheduled());
    eq.run();
    EXPECT_EQ(fired, 0);
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue eq;
    Tick fired_at = 0;
    EventFunctionWrapper a([&] { fired_at = eq.curTick(); }, "a");
    eq.schedule(&a, 10);
    eq.reschedule(&a, 99);
    eq.run();
    EXPECT_EQ(fired_at, 99u);
    EXPECT_EQ(eq.numProcessed(), 1u);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper chain(
        [&] {
            if (++count < 5)
                eq.schedule(&chain, eq.curTick() + 7);
        },
        "chain");
    eq.schedule(&chain, 0);
    eq.run();
    EXPECT_EQ(count, 5);
    EXPECT_EQ(eq.curTick(), 28u);
}

TEST(EventQueue, RunUntilStopsOnPredicate)
{
    EventQueue eq;
    int count = 0;
    std::vector<EventFunctionWrapper *> events;
    EventFunctionWrapper a([&] { ++count; }, "a");
    EventFunctionWrapper b([&] { ++count; }, "b");
    EventFunctionWrapper c([&] { ++count; }, "c");
    eq.schedule(&a, 1);
    eq.schedule(&b, 2);
    eq.schedule(&c, 3);
    bool hit = eq.runUntil([&] { return count >= 2; });
    EXPECT_TRUE(hit);
    EXPECT_EQ(count, 2);
    eq.run(); // drain the rest so destruction is clean
}

TEST(EventQueue, RunRespectsMaxEvents)
{
    EventQueue eq;
    int count = 0;
    EventFunctionWrapper chain(
        [&] {
            ++count;
            eq.schedule(&chain, eq.curTick() + 1);
        },
        "chain");
    eq.schedule(&chain, 0);
    auto processed = eq.run(10);
    EXPECT_EQ(processed, 10u);
    EXPECT_EQ(count, 10);
    eq.deschedule(&chain);
}

TEST(EventQueue, DestructionWhileScheduledIsSafe)
{
    EventQueue eq;
    {
        EventFunctionWrapper a([] {}, "a");
        eq.schedule(&a, 10);
    } // destructor must deschedule
    EXPECT_TRUE(eq.empty());
    eq.run();
}

TEST(EventQueue, RescheduleStormStaysBounded)
{
    // Regression: the old lazy-deletion design left one stale heap
    // entry behind per reschedule, so a heavily rescheduled event
    // (the DRAM bank-timer pattern) grew the heap without bound. The
    // intrusive heap relocates the event in place: after a million
    // reschedules exactly one pending event and one heap slot exist.
    EventQueue eq;
    int fired = 0;
    EventFunctionWrapper timer([&] { ++fired; }, "timer");
    eq.schedule(&timer, 1);
    for (Tick i = 0; i < 1'000'000; ++i)
        eq.reschedule(&timer, i + 2);
    EXPECT_EQ(eq.numPending(), 1u);
    EXPECT_EQ(eq.heapSize(), 1u);
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.numProcessed(), 1u);
    EXPECT_EQ(eq.heapSize(), 0u);
}

TEST(EventQueue, DescheduleFromTheMiddleKeepsOrder)
{
    // Removing an interior heap element must preserve the firing
    // order of everything else (exercises the sift-up path of the
    // removal, which a pop-only heap never hits).
    EventQueue eq;
    std::vector<int> order;
    std::vector<std::unique_ptr<EventFunctionWrapper>> evs;
    for (int i = 0; i < 64; ++i) {
        evs.push_back(std::make_unique<EventFunctionWrapper>(
            [&order, i] { order.push_back(i); }, "e"));
        eq.schedule(evs[static_cast<std::size_t>(i)].get(),
                    static_cast<Tick>(100 + i));
    }
    // Deschedule every third event.
    std::vector<int> expect;
    for (int i = 0; i < 64; ++i) {
        if (i % 3 == 0)
            eq.deschedule(evs[static_cast<std::size_t>(i)].get());
        else
            expect.push_back(i);
    }
    eq.run();
    EXPECT_EQ(order, expect);
}

TEST(EventQueue, CountsProcessedByCategory)
{
    EventQueue eq;
    EventFunctionWrapper generic([] {}, "g");
    EventFunctionWrapper dram1([] {}, "d1", Event::defaultPriority,
                               EventCategory::dram);
    EventFunctionWrapper dram2([] {}, "d2", Event::defaultPriority,
                               EventCategory::dram);
    EventFunctionWrapper gpu([] {}, "cu", Event::cpuTickPriority,
                             EventCategory::gpu);
    eq.schedule(&generic, 1);
    eq.schedule(&dram1, 2);
    eq.schedule(&dram2, 3);
    eq.schedule(&gpu, 4);
    eq.run();
    EXPECT_EQ(eq.numProcessed(), 4u);
    EXPECT_EQ(eq.numProcessed(EventCategory::generic), 1u);
    EXPECT_EQ(eq.numProcessed(EventCategory::dram), 2u);
    EXPECT_EQ(eq.numProcessed(EventCategory::gpu), 1u);
    EXPECT_EQ(eq.numProcessed(EventCategory::cache), 0u);
    EXPECT_EQ(eq.numProcessed(EventCategory::mem), 0u);
}

TEST(EventQueue, CategoryNamesAreStable)
{
    EXPECT_STREQ(eventCategoryName(EventCategory::generic), "generic");
    EXPECT_STREQ(eventCategoryName(EventCategory::gpu), "gpu");
    EXPECT_STREQ(eventCategoryName(EventCategory::cache), "cache");
    EXPECT_STREQ(eventCategoryName(EventCategory::mem), "mem");
    EXPECT_STREQ(eventCategoryName(EventCategory::dram), "dram");
    EXPECT_STREQ(eventCategoryName(EventCategory::stats), "stats");
}

TEST(EventQueue, DeterministicTieBreaking)
{
    // Two runs with identical scheduling produce identical order.
    auto run_once = [] {
        EventQueue eq;
        std::vector<int> order;
        std::vector<std::unique_ptr<EventFunctionWrapper>> evs;
        for (int i = 0; i < 32; ++i) {
            evs.push_back(std::make_unique<EventFunctionWrapper>(
                [&order, i] { order.push_back(i); }, "e"));
            eq.schedule(evs.back().get(), 5);
        }
        eq.run();
        return order;
    };
    EXPECT_EQ(run_once(), run_once());
}
