/** @file Determinism regression tests: a (workload, policy, seed)
 *  run must be bit-identical whether it executes serially or through
 *  the parallel sweep pool, and seed streams must be stable. */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/experiments.hh"
#include "core/runner.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

using namespace migc;

namespace
{

/** Field-by-field bitwise comparison of two runs. */
void
expectIdentical(const RunMetrics &a, const RunMetrics &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.policy, b.policy);
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_EQ(a.execSeconds, b.execSeconds);
    EXPECT_EQ(a.gpuMemRequests, b.gpuMemRequests);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.dramWrites, b.dramWrites);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.dramRowHitRate, b.dramRowHitRate);
    EXPECT_EQ(a.cacheStallCycles, b.cacheStallCycles);
    EXPECT_EQ(a.stallsPerRequest, b.stallsPerRequest);
    EXPECT_EQ(a.vops, b.vops);
    EXPECT_EQ(a.gvops, b.gvops);
    EXPECT_EQ(a.gmrps, b.gmrps);
    EXPECT_EQ(a.l1Hits, b.l1Hits);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
    EXPECT_EQ(a.l2Hits, b.l2Hits);
    EXPECT_EQ(a.l2Misses, b.l2Misses);
    EXPECT_EQ(a.l2Writebacks, b.l2Writebacks);
    EXPECT_EQ(a.rinseWritebacks, b.rinseWritebacks);
    EXPECT_EQ(a.allocBypassed, b.allocBypassed);
    EXPECT_EQ(a.predictorBypasses, b.predictorBypasses);
    EXPECT_EQ(a.kernels, b.kernels);
    EXPECT_EQ(a.simEvents, b.simEvents);
}

/** Scoped env var set/restore (duplicated from test_experiments to
 *  keep the suites independent). */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool hadOld_ = false;
};

} // namespace

TEST(SeedStreams, DeriveSeedIsPureAndCollisionResistant)
{
    EXPECT_EQ(deriveSeed(1, "FwSoft/CacheRW"),
              deriveSeed(1, "FwSoft/CacheRW"));
    EXPECT_NE(deriveSeed(1, "FwSoft/CacheRW"),
              deriveSeed(2, "FwSoft/CacheRW"));
    EXPECT_NE(deriveSeed(1, "FwSoft/CacheRW"),
              deriveSeed(1, "FwSoft/CacheR"));
    EXPECT_NE(deriveSeed(1, std::uint64_t(0)),
              deriveSeed(1, std::uint64_t(1)));
}

TEST(SeedStreams, RngSequenceIsReproducible)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(a.next(), b.next());
    // Nearby seeds diverge immediately.
    Rng a2(42);
    EXPECT_NE(a2.next(), c.next());
}

TEST(Determinism, NamedRunIsRepeatable)
{
    SimConfig cfg = SimConfig::testConfig();
    RunMetrics a = runNamedWorkload("FwSoft", cfg, "CacheRW");
    RunMetrics b = runNamedWorkload("FwSoft", cfg, "CacheRW");
    expectIdentical(a, b);
}

TEST(Determinism, ParallelForCoversEveryIndexExactlyOnce)
{
    std::vector<std::atomic<int>> hits(257);
    for (auto &h : hits)
        h.store(0);
    parallelFor(hits.size(),
                [&](std::size_t i) { hits[i].fetch_add(1); }, 8);
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(Determinism, SerialAndParallelSweepsAreBitIdentical)
{
    ScopedEnv no_cache("MIGC_NO_CACHE", "1");
    SimConfig cfg = SimConfig::testConfig();
    const std::vector<std::string> policies{"CacheR", "CacheRW"};

    ExperimentSweep serial(cfg);
    {
        ScopedEnv jobs("MIGC_JOBS", "1");
        serial.prefetch(policies);
    }

    ExperimentSweep parallel(cfg);
    {
        ScopedEnv jobs("MIGC_JOBS", "4");
        parallel.prefetch(policies);
    }

    for (const auto &w : workloadOrder()) {
        for (const auto &p : policies)
            expectIdentical(serial.get(w, p), parallel.get(w, p));
    }
}

TEST(Determinism, LptMultiConfigSweepIsBitIdenticalAcrossJobCounts)
{
    // A mixed-config grid through the sweep engine: two structurally
    // different configs, several policies. The LPT scheduler and
    // per-worker System reuse must not leak any state between runs -
    // one worker replaying everything serially and four workers
    // racing must produce bit-identical metrics.
    SimConfig small = SimConfig::testConfig();
    SimConfig big_dbi = SimConfig::testConfig();
    big_dbi.l2Bank.dbiRows = 16;
    ASSERT_FALSE(SimConfig::structurallyEqual(small, big_dbi));

    std::vector<RunRequest> grid;
    for (const auto &w : {"FwSoft", "FwBN", "BwSoft"}) {
        for (const auto &p : {"Uncached", "CacheRW", "CacheRW-CR"}) {
            grid.push_back(RunRequest{small, w, p});
            grid.push_back(RunRequest{big_dbi, w, p});
        }
    }

    SweepEngine one_worker("");
    auto serial = one_worker.run(grid, 1);
    SweepEngine four_workers("");
    auto parallel = four_workers.run(grid, 4);

    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        expectIdentical(serial[i], parallel[i]);

    // Both engines simulated every unique grid point exactly once.
    EXPECT_EQ(one_worker.simulationsPerformed(), grid.size());
    EXPECT_EQ(four_workers.simulationsPerformed(), grid.size());
}
