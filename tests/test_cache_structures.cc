/** @file Tests for tags, replacement, MSHRs, and the DBI. */

#include <gtest/gtest.h>

#include <set>

#include "cache/dbi.hh"
#include "cache/mshr.hh"
#include "cache/tags.hh"

using namespace migc;

TEST(Tags, GeometryChecks)
{
    Tags t(16 * 1024, 16, 64, ReplKind::lru);
    EXPECT_EQ(t.numSets(), 16u);
    EXPECT_EQ(t.assoc(), 16u);
    EXPECT_EQ(t.lineAlign(0x12345), 0x12340u);
}

TEST(Tags, InsertAndFind)
{
    Tags t(4 * 1024, 4, 64, ReplKind::lru);
    EXPECT_EQ(t.findBlock(0x1000), nullptr);
    CacheBlk *victim = t.findVictim(0x1000);
    ASSERT_NE(victim, nullptr);
    t.insert(victim, 0x1000, BlkState::valid, 0x99);
    CacheBlk *found = t.findBlock(0x1000);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->addr, 0x1000u);
    EXPECT_EQ(found->insertPc, 0x99u);
    EXPECT_FALSE(found->reused);
}

TEST(Tags, VictimPrefersInvalid)
{
    Tags t(1024, 4, 64, ReplKind::lru); // 4 sets x 4 ways
    // Fill 3 ways of set 0.
    for (int i = 0; i < 3; ++i) {
        CacheBlk *v = t.findVictim(0x0);
        t.insert(v, 0x1000u * i, BlkState::valid, 0);
    }
    CacheBlk *v = t.findVictim(0x0);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->state, BlkState::invalid);
}

TEST(Tags, LruEvictsColdest)
{
    Tags t(1024, 4, 64, ReplKind::lru);
    std::vector<CacheBlk *> blks;
    for (int i = 0; i < 4; ++i) {
        CacheBlk *v = t.findVictim(0x0);
        t.insert(v, 0x1000u * i + 0x0, BlkState::valid, 0);
        blks.push_back(v);
    }
    // Touch all but the second.
    t.touch(blks[0]);
    t.touch(blks[2]);
    t.touch(blks[3]);
    CacheBlk *victim = t.findVictim(0x0);
    EXPECT_EQ(victim, blks[1]);
}

TEST(Tags, AllBusyMeansNoVictim)
{
    Tags t(1024, 4, 64, ReplKind::lru);
    for (int i = 0; i < 4; ++i) {
        CacheBlk *v = t.findVictim(0x0);
        t.insert(v, 0x1000u * i, BlkState::busy, 0);
    }
    EXPECT_EQ(t.findVictim(0x0), nullptr);
    // Another set is unaffected.
    EXPECT_NE(t.findVictim(0x40), nullptr);
}

TEST(Tags, InvalidateCleanSparesDirtyAndBusy)
{
    Tags t(1024, 4, 64, ReplKind::lru);
    CacheBlk *a = t.findVictim(0x0);
    t.insert(a, 0x0, BlkState::valid, 0);
    CacheBlk *b = t.findVictim(0x40);
    t.insert(b, 0x40, BlkState::dirty, 0);
    CacheBlk *c = t.findVictim(0x80);
    t.insert(c, 0x80, BlkState::busy, 0);

    EXPECT_EQ(t.invalidateClean(), 1u);
    EXPECT_EQ(t.findBlock(0x0), nullptr);
    EXPECT_NE(t.findBlock(0x40), nullptr);
    EXPECT_NE(t.findBlock(0x80), nullptr);
    EXPECT_EQ(t.countState(BlkState::dirty), 1u);
}

TEST(Tags, InterleaveBitsSpreadBankStripedLines)
{
    // A bank of an 8-banked cache sees every 8th line; with the
    // interleave bits stripped, those lines cover all sets.
    Tags t(8 * 1024, 4, 64, ReplKind::lru, 1, /*interleave_bits=*/3);
    std::set<unsigned> sets;
    for (unsigned i = 0; i < 1024; ++i)
        sets.insert(t.setIndex(i * 8 * 64ULL)); // bank-0 lines
    EXPECT_EQ(sets.size(), t.numSets());
}

TEST(Tags, ForEachDirtyVisitsExactlyDirty)
{
    Tags t(1024, 4, 64, ReplKind::lru);
    for (int i = 0; i < 8; ++i) {
        CacheBlk *v = t.findVictim(0x40u * i);
        t.insert(v, 0x40u * i,
                 i % 2 ? BlkState::dirty : BlkState::valid, 0);
    }
    int dirty = 0;
    t.forEachDirty([&](CacheBlk &blk) {
        ++dirty;
        EXPECT_TRUE(blk.isDirty());
    });
    EXPECT_EQ(dirty, 4);
}

class ReplPolicySweep : public ::testing::TestWithParam<ReplKind>
{};

TEST_P(ReplPolicySweep, VictimIsAlwaysAmongCandidates)
{
    auto policy = ReplPolicy::create(GetParam(), 7);
    std::vector<CacheBlk> storage(8);
    std::vector<CacheBlk *> cands;
    for (auto &blk : storage) {
        blk.state = BlkState::valid;
        cands.push_back(&blk);
    }
    for (int i = 0; i < 100; ++i) {
        std::size_t v = policy->victim(cands);
        EXPECT_LT(v, cands.size());
    }
}

TEST_P(ReplPolicySweep, DeterministicAcrossInstances)
{
    auto p1 = ReplPolicy::create(GetParam(), 11);
    auto p2 = ReplPolicy::create(GetParam(), 11);
    std::vector<CacheBlk> storage(4);
    std::vector<CacheBlk *> cands;
    std::uint64_t stamp = 0;
    for (auto &blk : storage) {
        blk.state = BlkState::valid;
        blk.lastTouch = ++stamp;
        blk.insertStamp = stamp;
        cands.push_back(&blk);
    }
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(p1->victim(cands), p2->victim(cands));
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, ReplPolicySweep,
                         ::testing::Values(ReplKind::lru,
                                           ReplKind::fifo,
                                           ReplKind::random));

TEST(Mshr, AllocateFindDeallocate)
{
    MshrFile file(4, 4);
    EXPECT_FALSE(file.full());
    Mshr &m = file.allocate(0x1000, nullptr, 42);
    EXPECT_EQ(m.lineAddr, 0x1000u);
    EXPECT_EQ(file.find(0x1000), &m);
    EXPECT_EQ(file.find(0x2000), nullptr);
    file.deallocate(0x1000);
    EXPECT_EQ(file.find(0x1000), nullptr);
}

TEST(Mshr, FullAtCapacity)
{
    MshrFile file(2, 4);
    file.allocate(0x0, nullptr, 1);
    file.allocate(0x40, nullptr, 2);
    EXPECT_TRUE(file.full());
    file.deallocate(0x0);
    EXPECT_FALSE(file.full());
}

TEST(Mshr, TargetCoalescingLimit)
{
    MshrFile file(2, 2);
    Mshr &m = file.allocate(0x0, nullptr, 1);
    EXPECT_TRUE(file.canCoalesce(m));
    m.targets.push_back(nullptr);
    EXPECT_TRUE(file.canCoalesce(m));
    m.targets.push_back(nullptr);
    EXPECT_FALSE(file.canCoalesce(m));
}

TEST(Dbi, AddRemoveTakeRow)
{
    DirtyBlockIndex dbi(8);
    EXPECT_TRUE(dbi.add(1, 0x40).empty());
    EXPECT_TRUE(dbi.add(1, 0x80).empty());
    EXPECT_TRUE(dbi.add(2, 0xc0).empty());
    EXPECT_EQ(dbi.rowsTracked(), 2u);
    EXPECT_EQ(dbi.rowPopulation(1), 2u);

    auto rinse = dbi.takeRow(1, 0x40);
    ASSERT_EQ(rinse.size(), 1u);
    EXPECT_EQ(rinse[0], 0x80u);
    EXPECT_EQ(dbi.rowsTracked(), 1u);

    dbi.remove(2, 0xc0);
    EXPECT_EQ(dbi.rowsTracked(), 0u);
}

TEST(Dbi, DuplicateAddIsIdempotent)
{
    DirtyBlockIndex dbi(4);
    dbi.add(1, 0x40);
    dbi.add(1, 0x40);
    EXPECT_EQ(dbi.rowPopulation(1), 1u);
}

TEST(Dbi, CapacityEvictionSpillsLruRow)
{
    DirtyBlockIndex dbi(2);
    dbi.add(1, 0x40);
    dbi.add(2, 0x80);
    dbi.add(1, 0x100); // touches row 1: row 2 is now LRU
    auto spilled = dbi.add(3, 0x140);
    ASSERT_EQ(spilled.size(), 1u);
    EXPECT_EQ(spilled[0], 0x80u);
    EXPECT_EQ(dbi.rowsTracked(), 2u);
    EXPECT_EQ(dbi.rowPopulation(1), 2u);
    EXPECT_EQ(dbi.rowPopulation(3), 1u);
}

TEST(Dbi, RemoveUnknownIsNoop)
{
    DirtyBlockIndex dbi(2);
    dbi.remove(9, 0x40); // no such row
    dbi.add(1, 0x40);
    dbi.remove(1, 0x9999); // no such line
    EXPECT_EQ(dbi.rowPopulation(1), 1u);
}

TEST(Dbi, TakeRowOnUnknownRowIsEmpty)
{
    DirtyBlockIndex dbi(2);
    EXPECT_TRUE(dbi.takeRow(7, 0x40).empty());
}
