/**
 * @file
 * Shared test fixtures: a mock memory endpoint and a mock requester
 * for driving ports directly.
 */

#ifndef MIGC_TESTS_TEST_UTIL_HH
#define MIGC_TESTS_TEST_UTIL_HH

#include <deque>
#include <vector>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/event_queue.hh"

namespace migc::test
{

/**
 * A memory endpoint that answers every request after a fixed
 * latency, with optional bounded capacity (to exercise retry flow)
 * and a manual mode that holds responses until released.
 */
class MockMem : public ResponsePort
{
  public:
    MockMem(EventQueue &eq, Tick latency = 1000,
            std::size_t capacity = SIZE_MAX, bool manual = false)
        : ResponsePort("mock_mem"), eq_(eq), latency_(latency),
          capacity_(capacity), manual_(manual),
          respondEvent_([this] { respondOne(); }, "mock_mem.respond")
    {}

    bool
    recvTimingReq(PacketPtr pkt) override
    {
        if (pending_.size() >= capacity_) {
            ++rejected;
            blocked_ = true;
            return false;
        }
        switch (pkt->cmd) {
          case MemCmd::ReadReq:
            ++reads;
            break;
          case MemCmd::WriteReq:
            ++writes;
            break;
          case MemCmd::WritebackDirty:
            ++writebacks;
            break;
          default:
            break;
        }
        addrs.push_back(pkt->addr);
        pcs.push_back(pkt->pc);
        flagsSeen.push_back(pkt->flags);
        pending_.push_back(Entry{pkt, eq_.curTick() + latency_});
        if (!manual_ && !respondEvent_.scheduled())
            eq_.schedule(&respondEvent_, pending_.front().ready);
        return true;
    }

    /** Manual mode: answer the oldest held request now. */
    void
    releaseOne()
    {
        if (pending_.empty())
            return;
        PacketPtr pkt = pending_.front().pkt;
        pending_.pop_front();
        pkt->makeResponse();
        sendTimingResp(pkt);
        if (blocked_ && pending_.size() < capacity_) {
            blocked_ = false;
            sendReqRetry();
        }
    }

    void
    releaseAll()
    {
        while (!pending_.empty())
            releaseOne();
    }

    std::size_t held() const { return pending_.size(); }

    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t rejected = 0;
    std::vector<Addr> addrs;
    std::vector<Addr> pcs;
    std::vector<std::uint32_t> flagsSeen;

  private:
    struct Entry
    {
        PacketPtr pkt;
        Tick ready;
    };

    void
    respondOne()
    {
        while (!pending_.empty() &&
               pending_.front().ready <= eq_.curTick()) {
            releaseOne();
        }
        if (!pending_.empty())
            eq_.schedule(&respondEvent_, pending_.front().ready);
    }

    EventQueue &eq_;
    Tick latency_;
    std::size_t capacity_;
    bool manual_;
    bool blocked_ = false;
    std::deque<Entry> pending_;
    EventFunctionWrapper respondEvent_;
};

/**
 * A requester that sends packets and records responses; retries
 * rejected sends automatically.
 */
class MockCpu : public RequestPort
{
  public:
    explicit MockCpu(EventQueue &eq)
        : RequestPort("mock_cpu"), eq_(eq),
          retryEvent_([this] { drain(); }, "mock_cpu.retry")
    {}

    /** Queue a request; it is owned by this mock until responded. */
    void
    send(MemCmd cmd, Addr addr, Addr pc = 0)
    {
        auto *pkt = new Packet(cmd, addr, 64, eq_.curTick());
        pkt->pc = pc;
        sendQ_.push_back(pkt);
        drain();
    }

    void
    recvTimingResp(PacketPtr pkt) override
    {
        responses.push_back(*pkt);
        delete pkt;
    }

    void recvReqRetry() override { drain(); }

    bool allSent() const { return sendQ_.empty(); }

    std::vector<Packet> responses;

  private:
    void
    drain()
    {
        while (!sendQ_.empty()) {
            if (!sendTimingReq(sendQ_.front()))
                return;
            sendQ_.pop_front();
        }
    }

    EventQueue &eq_;
    std::deque<PacketPtr> sendQ_;
    EventFunctionWrapper retryEvent_;
};

} // namespace migc::test

#endif // MIGC_TESTS_TEST_UTIL_HH
