/** @file Tests for packets, ports, packet queues, and the crossbar. */

#include <gtest/gtest.h>

#include "mem/packet.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "mem/xbar.hh"
#include "test_util.hh"

using namespace migc;
using namespace migc::test;

TEST(Packet, IdsAreUniqueAndMonotonic)
{
    Packet a(MemCmd::ReadReq, 0, 64, 0);
    Packet b(MemCmd::ReadReq, 0, 64, 0);
    EXPECT_LT(a.id, b.id);
}

TEST(Packet, MakeResponseConvertsCommands)
{
    Packet r(MemCmd::ReadReq, 0x40, 64, 0);
    EXPECT_TRUE(r.isRequest());
    r.makeResponse();
    EXPECT_EQ(r.cmd, MemCmd::ReadResp);
    EXPECT_TRUE(r.isResponse());

    Packet w(MemCmd::WriteReq, 0x40, 64, 0);
    w.makeResponse();
    EXPECT_EQ(w.cmd, MemCmd::WriteResp);

    Packet wb(MemCmd::WritebackDirty, 0x40, 64, 0);
    EXPECT_TRUE(wb.isWrite());
    wb.makeResponse();
    EXPECT_EQ(wb.cmd, MemCmd::WritebackResp);
}

TEST(Packet, Flags)
{
    Packet p(MemCmd::ReadReq, 0, 64, 0);
    EXPECT_FALSE(p.hasFlag(pktFlagBypass));
    p.setFlag(pktFlagBypass);
    p.setFlag(pktFlagRinse);
    EXPECT_TRUE(p.hasFlag(pktFlagBypass));
    EXPECT_TRUE(p.hasFlag(pktFlagRinse));
    EXPECT_FALSE(p.hasFlag(pktFlagFlush));
}

TEST(Ports, RoundTripThroughMockMem)
{
    EventQueue eq;
    MockMem mem(eq, 500);
    MockCpu cpu(eq);
    cpu.bind(mem);

    cpu.send(MemCmd::ReadReq, 0x1000);
    cpu.send(MemCmd::WriteReq, 0x2000);
    eq.run();

    ASSERT_EQ(cpu.responses.size(), 2u);
    EXPECT_EQ(cpu.responses[0].cmd, MemCmd::ReadResp);
    EXPECT_EQ(cpu.responses[1].cmd, MemCmd::WriteResp);
    EXPECT_EQ(mem.reads, 1u);
    EXPECT_EQ(mem.writes, 1u);
}

TEST(Ports, RetryFlowDeliversEventually)
{
    EventQueue eq;
    MockMem mem(eq, 100, /*capacity=*/1, /*manual=*/true);
    MockCpu cpu(eq);
    cpu.bind(mem);

    cpu.send(MemCmd::ReadReq, 0x40);
    cpu.send(MemCmd::ReadReq, 0x80); // rejected: capacity 1
    EXPECT_FALSE(cpu.allSent());
    EXPECT_GE(mem.rejected, 1u);

    mem.releaseOne(); // frees space and sends retry
    eq.run();
    mem.releaseAll();
    eq.run();
    EXPECT_EQ(cpu.responses.size(), 2u);
}

TEST(RespPacketQueue, DeliversAtReadyTickInOrder)
{
    EventQueue eq;
    MockCpu cpu(eq);
    CallbackResponsePort dev("dev", [](PacketPtr) { return true; });
    cpu.bind(dev);
    RespPacketQueue q(eq, dev, "q");

    auto *p1 = new Packet(MemCmd::ReadReq, 0x40, 64, 0);
    auto *p2 = new Packet(MemCmd::ReadReq, 0x80, 64, 0);
    p1->makeResponse();
    p2->makeResponse();
    q.push(p2, 200);
    q.push(p1, 100);
    eq.run();
    ASSERT_EQ(cpu.responses.size(), 2u);
    EXPECT_EQ(cpu.responses[0].addr, 0x40u);
    EXPECT_EQ(cpu.responses[1].addr, 0x80u);
}

TEST(ReqPacketQueue, RespectsCapacityAndRetries)
{
    EventQueue eq;
    MockMem mem(eq, 10, /*capacity=*/1, /*manual=*/true);

    CallbackRequestPort port("p", [](PacketPtr) {},
                             [] {});
    // Use a dedicated request port wired to the queue's retry.
    struct QPort : RequestPort
    {
        explicit QPort(ReqPacketQueue *&q) : RequestPort("qp"), q(q) {}
        void recvTimingResp(PacketPtr pkt) override { delete pkt; }
        void recvReqRetry() override { q->retry(); }
        ReqPacketQueue *&q;
    };
    ReqPacketQueue *qptr = nullptr;
    QPort qport(qptr);
    qport.bind(mem);
    ReqPacketQueue q(eq, qport, "q", 4);
    qptr = &q;

    int freed = 0;
    q.onSpaceFreed([&] { ++freed; });

    for (int i = 0; i < 4; ++i)
        q.push(new Packet(MemCmd::ReadReq, 0x40u * i, 64, 0), 0);
    EXPECT_TRUE(q.full());
    eq.run();
    // One accepted by mem (capacity 1), three stuck waiting retry.
    EXPECT_EQ(mem.held(), 1u);
    mem.releaseAll();
    eq.run();
    mem.releaseAll();
    eq.run();
    mem.releaseAll();
    eq.run();
    mem.releaseAll();
    eq.run();
    EXPECT_TRUE(q.empty());
    EXPECT_EQ(freed, 4);
}

class XBarTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        XBar::Config cfg;
        cfg.numInputs = 2;
        cfg.numOutputs = 2;
        cfg.latency = Cycles(2);
        cfg.queueDepth = 8;
        xbar = std::make_unique<XBar>(
            "xbar", eq, ClockDomain(1000), cfg,
            [](Addr a) { return unsigned((a >> 6) & 1); });
        for (int i = 0; i < 2; ++i) {
            cpus.push_back(std::make_unique<MockCpu>(eq));
            cpus[i]->bind(xbar->cpuSidePort(i));
            mems.push_back(std::make_unique<MockMem>(eq, 100));
            xbar->memSidePort(i).bind(*mems[i]);
        }
    }

    EventQueue eq;
    std::unique_ptr<XBar> xbar;
    std::vector<std::unique_ptr<MockCpu>> cpus;
    std::vector<std::unique_ptr<MockMem>> mems;
};

TEST_F(XBarTest, RoutesByAddress)
{
    cpus[0]->send(MemCmd::ReadReq, 0x000); // line 0 -> output 0
    cpus[0]->send(MemCmd::ReadReq, 0x040); // line 1 -> output 1
    eq.run();
    EXPECT_EQ(mems[0]->reads, 1u);
    EXPECT_EQ(mems[1]->reads, 1u);
}

TEST_F(XBarTest, ResponsesReturnToOriginatingInput)
{
    cpus[0]->send(MemCmd::ReadReq, 0x040);
    cpus[1]->send(MemCmd::ReadReq, 0x0c0);
    eq.run();
    EXPECT_EQ(cpus[0]->responses.size(), 1u);
    EXPECT_EQ(cpus[1]->responses.size(), 1u);
    EXPECT_EQ(cpus[0]->responses[0].addr, 0x040u);
    EXPECT_EQ(cpus[1]->responses[0].addr, 0x0c0u);
}

TEST_F(XBarTest, ManyRequestsAllComplete)
{
    for (int i = 0; i < 64; ++i)
        cpus[i % 2]->send(MemCmd::ReadReq, 0x40u * i);
    eq.run();
    EXPECT_EQ(cpus[0]->responses.size(), 32u);
    EXPECT_EQ(cpus[1]->responses.size(), 32u);
}
