/** @file Seeded, deterministic fuzz of the serve/fleet wire
 *  protocol: parseServeRequest must never crash and never accept a
 *  malformed frame (every accepted request satisfies its verb's
 *  arity and numeric bounds), across random byte lines, every prefix
 *  of every valid line, and seeded mutations of valid frames. The
 *  live half drives a real FleetServer socket with binary garbage
 *  and hostile push frames and proves the coordinator still answers
 *  afterwards - and that nothing damaged ever reached its shard
 *  store. */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cache_v4.hh"
#include "core/fleet.hh"
#include "core/shard.hh"
#include "serve/serve_protocol.hh"
#include "serve/transport.hh"
#include "sim/rng.hh"

using namespace migc;

namespace
{

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + "migc_fuzz_" + leaf;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool
fileExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return in.good();
}

/** Reference oracle for the protocol's strict-decimal rule: the
 *  whole token, digits only, no sign, no overflow. Independent of
 *  the implementation under test. */
bool
refU64(const std::string &tok, unsigned long long *out = nullptr)
{
    if (tok.empty())
        return false;
    unsigned long long v = 0;
    for (char c : tok) {
        if (c < '0' || c > '9')
            return false;
        unsigned long long d =
            static_cast<unsigned long long>(c - '0');
        if (v > (UINT64_MAX - d) / 10)
            return false;
        v = v * 10 + d;
    }
    if (out != nullptr)
        *out = v;
    return true;
}

/**
 * Parse @p line and check the accepted-frame invariants: whatever
 * kind comes back must be consistent with the tokens actually on the
 * line. This is the "no accepted malformed frames" oracle every fuzz
 * loop funnels through.
 */
void
expectInvariants(const std::string &line)
{
    using K = ServeRequest::Kind;
    const ServeRequest req = parseServeRequest(line);
    const std::vector<std::string> tok = serveTokens(line);

    if (tok.empty() || tok[0][0] == '#') {
        EXPECT_EQ(req.kind, K::none) << "line: " << line;
        return;
    }
    unsigned long long v = 0;
    switch (req.kind) {
      case K::none:
        FAIL() << "non-blank line parsed as none: " << line;
        break;
      case K::error:
        EXPECT_FALSE(req.error.empty()) << "line: " << line;
        break;
      case K::get:
      case K::match:
        EXPECT_EQ(tok.size(), 4u);
        EXPECT_EQ(tok[0], req.kind == K::get ? "get" : "match");
        EXPECT_EQ(req.config, tok[1]);
        EXPECT_EQ(req.workload, tok[2]);
        EXPECT_EQ(req.policy, tok[3]);
        break;
      case K::stats:
      case K::wait:
      case K::help:
        EXPECT_EQ(tok.size(), 1u);
        break;
      case K::fetch:
        ASSERT_EQ(tok.size(), 2u);
        EXPECT_EQ(tok[0], "fetch");
        ASSERT_TRUE(refU64(tok[1], &v)) << "line: " << line;
        EXPECT_LE(v, 4095u);
        EXPECT_EQ(req.worker, v);
        break;
      case K::lease:
        ASSERT_EQ(tok.size(), 3u);
        EXPECT_EQ(tok[0], "lease");
        ASSERT_TRUE(refU64(tok[1], &v)) << "line: " << line;
        EXPECT_LE(v, 4095u);
        EXPECT_EQ(req.worker, v);
        ASSERT_TRUE(refU64(tok[2], &v));
        EXPECT_EQ(req.gridHash, v);
        break;
      case K::renew:
        ASSERT_EQ(tok.size(), 3u);
        EXPECT_EQ(tok[0], "renew");
        ASSERT_TRUE(refU64(tok[1], &v));
        EXPECT_LE(v, 4095u);
        ASSERT_TRUE(refU64(tok[2], &v));
        EXPECT_EQ(req.leaseId, v);
        break;
      case K::done:
        ASSERT_EQ(tok.size(), 4u);
        EXPECT_EQ(tok[0], "done");
        ASSERT_TRUE(refU64(tok[1], &v));
        EXPECT_LE(v, 4095u);
        ASSERT_TRUE(refU64(tok[3], &v));
        EXPECT_LE(v, 0xffffffffull);
        EXPECT_EQ(req.key, v);
        break;
      case K::push:
        ASSERT_EQ(tok.size(), 5u);
        EXPECT_EQ(tok[0], "push");
        ASSERT_TRUE(refU64(tok[1], &v));
        EXPECT_LE(v, 4095u);
        ASSERT_TRUE(refU64(tok[2], &v));
        EXPECT_EQ(req.leaseId, v);
        ASSERT_TRUE(refU64(tok[3], &v));
        EXPECT_LE(v, kServeMaxPushBytes);
        EXPECT_EQ(req.bytes, v);
        ASSERT_TRUE(refU64(tok[4], &v));
        EXPECT_EQ(req.checksum, v);
        break;
    }
}

/** Valid frames of every verb, used as mutation/truncation seeds. */
const std::vector<std::string> &
validLines()
{
    static const std::vector<std::string> lines = {
        "get default FwSoft CacheRW",
        "match paper * Cache?",
        "stats",
        "wait",
        "help",
        "lease 3 12345678901234567890",
        "done 1 42 7",
        "renew 0 9",
        "push 2 7 128 18446744073709551615",
        "fetch 3",
        "fetch 4095",
        "done 1 1 4294967295",
        "push 1 1 1073741824 0",
    };
    return lines;
}

/** One '\n'-terminated reply line out of @p stream via @p buf. */
bool
readLineFrom(Stream &stream, std::string &buf, std::string &line)
{
    for (;;) {
        const std::size_t nl = buf.find('\n');
        if (nl != std::string::npos) {
            line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            return true;
        }
        char chunk[4096];
        ssize_t n = stream.read(chunk, sizeof(chunk));
        if (n <= 0)
            return false;
        buf.append(chunk, static_cast<std::size_t>(n));
    }
}

/** Read reply lines until one starts with @p prefix (in-order
 *  protocol: everything before it answers earlier garbage). */
bool
readUntilPrefix(Stream &stream, std::string &buf,
                const std::string &prefix, std::string &line)
{
    while (readLineFrom(stream, buf, line)) {
        if (line.rfind(prefix, 0) == 0)
            return true;
    }
    return false;
}

} // namespace

// ---------------------------------------------------------------------
// Pure-parser fuzz: seeded, deterministic, no sockets
// ---------------------------------------------------------------------

TEST(ProtocolFuzz, RandomByteLinesNeverCrashOrMisparse)
{
    Rng rng(0xF00DF00Du);
    for (int iter = 0; iter < 20000; ++iter) {
        const std::size_t len = rng.below(120);
        std::string line;
        line.reserve(len);
        for (std::size_t i = 0; i < len; ++i) {
            // Any byte but '\n' (the framing layer owns newlines);
            // NULs, high-bit bytes, and tabs are all fair game.
            char c = static_cast<char>(rng.below(255));
            if (c == '\n')
                c = ' ';
            line.push_back(c);
        }
        expectInvariants(line);
    }
}

TEST(ProtocolFuzz, EveryPrefixOfEveryValidLineParsesSafely)
{
    // A prefix may legitimately still be a valid shorter frame
    // ("lease 3 12" is a lease with a different fingerprint); the
    // invariant is that nothing crashes and nothing malformed is
    // accepted - expectInvariants checks arity and bounds either
    // way.
    for (const std::string &line : validLines()) {
        for (std::size_t cut = 0; cut <= line.size(); ++cut)
            expectInvariants(line.substr(0, cut));
    }
}

TEST(ProtocolFuzz, SeededMutationsOfValidFramesNeverMisparse)
{
    Rng rng(0xBADC0DEu);
    for (int iter = 0; iter < 20000; ++iter) {
        std::string line =
            validLines()[rng.below(validLines().size())];
        const unsigned edits = 1 + static_cast<unsigned>(rng.below(4));
        for (unsigned e = 0; e < edits; ++e) {
            const std::uint64_t kind = rng.below(3);
            const std::size_t at =
                line.empty() ? 0 : rng.below(line.size());
            char c = static_cast<char>(1 + rng.below(254));
            if (c == '\n')
                c = ' ';
            if (kind == 0 && !line.empty())
                line[at] = c; // substitute
            else if (kind == 1)
                line.insert(line.begin() + at, c); // insert
            else if (!line.empty())
                line.erase(line.begin() + at); // delete
        }
        expectInvariants(line);
    }
}

TEST(ProtocolFuzz, NumericEdgeTokensAreRejectedExactly)
{
    using K = ServeRequest::Kind;
    // One past every bound, plus every non-strict-decimal spelling.
    const char *bad[] = {
        "fetch 4096",
        "lease 4096 1",
        "done 1 1 4294967296",
        "push 1 1 1073741825 5",            // kServeMaxPushBytes + 1
        "push 1 1 99999999999999999999 0",  // u64 overflow
        "push 1 1 100 18446744073709551616",
        "lease -1 5",
        "lease +1 5",
        "lease 0x10 5",
        "lease 1e9 5",
        "done 1 1 2.0",
        "renew 1 ",
        "push 1 1 100",       // missing checksum
        "push 1 1 100 5 9",   // extra operand
        "fetch",
        "fetch 1 2",
    };
    for (const char *line : bad) {
        EXPECT_EQ(parseServeRequest(line).kind, K::error)
            << "accepted: " << line;
        expectInvariants(line);
    }
    // ...and the exact bounds themselves are accepted.
    EXPECT_EQ(parseServeRequest("fetch 4095").kind, K::fetch);
    EXPECT_EQ(parseServeRequest("done 1 1 4294967295").kind, K::done);
    EXPECT_EQ(parseServeRequest("push 1 1 1073741824 0").kind,
              K::push);
    EXPECT_EQ(
        parseServeRequest("lease 4095 18446744073709551615").kind,
        K::lease);
}

// ---------------------------------------------------------------------
// Live-coordinator fuzz: garbage and hostile frames over a real socket
// ---------------------------------------------------------------------

TEST(ProtocolFuzz, LiveCoordinatorSurvivesGarbageAndHostilePushes)
{
    const std::string store = tempPath("live_store.csv");
    for (unsigned i = 0; i < 16; ++i)
        std::remove(shardCachePath(store, i).c_str());

    FleetServer server("tcp:127.0.0.1:0",
                       FleetQueue({1.0}, {0}, FleetConfig{1, 10000}),
                       42);
    server.setShardStore(store);
    server.start();

    std::string error;
    std::unique_ptr<Stream> conn =
        connectTo(server.boundEndpoint(), &error);
    ASSERT_NE(conn, nullptr) << error;
    std::string rx;

    // Phase 1: seeded garbage lines, including binary junk. The
    // coordinator may answer each with an error line or nothing
    // (comments); it must never wedge or die.
    Rng rng(0x5EEDu);
    for (int i = 0; i < 300; ++i) {
        const std::size_t len = rng.below(80);
        std::string line;
        for (std::size_t j = 0; j < len; ++j) {
            char c = static_cast<char>(1 + rng.below(254));
            if (c == '\n')
                c = '.';
            line.push_back(c);
        }
        line.push_back('\n');
        ASSERT_TRUE(conn->writeAll(line));
    }

    // Phase 2: a push frame whose payload fails its checksum. The
    // payload must be drained (framing survives) but never stored.
    ASSERT_TRUE(conn->writeAll(std::string("push 7 1 12 999\n") +
                               "HELLO WORLD!"));

    // Phase 3: a push header claiming more than kServeMaxPushBytes
    // is rejected at parse, so no payload is consumed - the stats
    // line right behind it must be answered, not swallowed.
    ASSERT_TRUE(conn->writeAll("push 1 1 2000000000 7\n"));
    ASSERT_TRUE(conn->writeAll("stats\n"));

    std::string line;
    ASSERT_TRUE(readUntilPrefix(*conn, rx, "# fleet total=", line));
    EXPECT_FALSE(fileExists(shardCachePath(store, 7)))
        << "checksum-failed push reached the shard store";

    // Phase 4: after all that abuse, a well-formed push still lands
    // byte-exactly, and fetch streams it back.
    std::string payload = "not a real cache file, but 48 raw bytes!\n";
    payload.push_back('\0');
    payload += "binary\xff\x01tail";
    const std::string header = "push 8 1 " +
        std::to_string(payload.size()) + " " +
        std::to_string(v4Checksum(payload.data(), payload.size())) +
        "\n";
    ASSERT_TRUE(conn->writeAll(header + payload));
    ASSERT_TRUE(readUntilPrefix(*conn, rx, "# pushed ", line));
    EXPECT_EQ(line, "# pushed " + std::to_string(payload.size()));
    EXPECT_EQ(readFile(shardCachePath(store, 8)), payload);

    ASSERT_TRUE(conn->writeAll("fetch 9\n"));
    ASSERT_TRUE(readLineFrom(*conn, rx, line));
    EXPECT_EQ(line, "# none");

    ASSERT_TRUE(conn->writeAll("fetch 8\n"));
    ASSERT_TRUE(readLineFrom(*conn, rx, line));
    ASSERT_EQ(line.rfind("# shard ", 0), 0u) << line;
    std::string fetched = rx;
    while (fetched.size() < payload.size()) {
        char chunk[4096];
        ssize_t n = conn->read(chunk, sizeof(chunk));
        ASSERT_GT(n, 0);
        fetched.append(chunk, static_cast<std::size_t>(n));
    }
    EXPECT_EQ(fetched, payload);

    EXPECT_EQ(server.pushesStored(), 1u);
    conn.reset();
    server.stop();
    std::remove(shardCachePath(store, 8).c_str());
}

TEST(ProtocolFuzz, SocketFuzzIsDeterministicAcrossTwoRuns)
{
    // The same seed drives the same garbage byte-for-byte: record
    // both runs' transmitted bytes and compare. (The live test
    // above depends on this to be debuggable at all.)
    auto generate = [](std::uint64_t seed) {
        Rng rng(seed);
        std::string all;
        for (int i = 0; i < 300; ++i) {
            const std::size_t len = rng.below(80);
            for (std::size_t j = 0; j < len; ++j) {
                char c = static_cast<char>(1 + rng.below(254));
                all.push_back(c == '\n' ? '.' : c);
            }
            all.push_back('\n');
        }
        return all;
    };
    EXPECT_EQ(generate(0x5EEDu), generate(0x5EEDu));
    EXPECT_NE(generate(0x5EEDu), generate(0x5EEEu));
}
