/**
 * @file
 * Golden-hash determinism suite.
 *
 * One (workload, policy) pair per workload family, covering all six
 * policy configurations, run under SimConfig::testConfig(). The
 * expected values were captured from the simulator BEFORE the
 * hot-path overhaul (pooled packets, intrusive event queue, flattened
 * tag lookup, coalescer caching); the refactored simulator must
 * reproduce them bit-identically. Every counter here is an exact
 * integer count, so EXPECT_EQ on the doubles is exact.
 *
 * If a PR changes these values it changed simulated behavior, not
 * just simulator speed - that must be intentional and called out,
 * and the goldens re-captured.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "core/system.hh"
#include "workloads/workload.hh"

using namespace migc;

namespace
{

struct Golden
{
    const char *workload;
    const char *policy;
    std::uint64_t execTicks;
    double gpuMemRequests;
    double dramReads;
    double dramWrites;
    double cacheStallCycles;
    double l1Hits;
    double l1Misses;
    double l2Hits;
    double l2Misses;
    double l2Writebacks;
    double rinseWritebacks;
    double allocBypassed;
    double predictorBypasses;
    double kernels;
};

// Captured at commit 6f96c8a (pre-refactor seed + harness), with
// MIGC_NO_CACHE=1, SimConfig::testConfig(), default seed.
const Golden kGoldens[] = {
    {"DGEMM", "Uncached", 23840625ULL, 9216, 6326, 1024, 0, 0, 0, 0, 0,
     0, 0, 0, 0, 1},
    {"FwBN", "CacheR", 4458750ULL, 12288, 4096, 4096, 16758, 0, 8192,
     4096, 4096, 0, 0, 0, 0, 1},
    {"FwPool", "CacheRW", 24458375ULL, 43008, 31327, 5384, 230206, 3666,
     33177, 1826, 37471, 6144, 0, 0, 0, 1},
    {"BwSoft", "CacheRW-AB", 1334625ULL, 1280, 512, 8, 978, 512, 512, 0,
     768, 256, 0, 0, 0, 1},
    {"FwLSTM", "CacheRW-CR", 11182750ULL, 17728, 14711, 56, 50405, 28,
     4880, 2147, 3758, 96, 36, 12200, 0, 4},
    {"FwAct", "CacheRW-PCby", 13166500ULL, 24576, 12288, 11570, 64627,
     0, 12206, 0, 4791, 2213, 1379, 82, 19790, 1},
};

class GoldenDeterminism : public ::testing::TestWithParam<Golden>
{};

} // namespace

TEST_P(GoldenDeterminism, RunMetricsMatchPreRefactorGoldens)
{
    const Golden &g = GetParam();
    SimConfig cfg = SimConfig::testConfig();
    RunMetrics m = runNamedWorkload(g.workload, cfg, g.policy);

    EXPECT_EQ(m.execTicks, g.execTicks);
    EXPECT_EQ(m.gpuMemRequests, g.gpuMemRequests);
    EXPECT_EQ(m.dramReads, g.dramReads);
    EXPECT_EQ(m.dramWrites, g.dramWrites);
    EXPECT_EQ(m.cacheStallCycles, g.cacheStallCycles);
    EXPECT_EQ(m.l1Hits, g.l1Hits);
    EXPECT_EQ(m.l1Misses, g.l1Misses);
    EXPECT_EQ(m.l2Hits, g.l2Hits);
    EXPECT_EQ(m.l2Misses, g.l2Misses);
    EXPECT_EQ(m.l2Writebacks, g.l2Writebacks);
    EXPECT_EQ(m.rinseWritebacks, g.rinseWritebacks);
    EXPECT_EQ(m.allocBypassed, g.allocBypassed);
    EXPECT_EQ(m.predictorBypasses, g.predictorBypasses);
    EXPECT_EQ(m.kernels, g.kernels);
}

TEST_P(GoldenDeterminism, RepeatedRunsAreTickIdentical)
{
    const Golden &g = GetParam();
    SimConfig cfg = SimConfig::testConfig();
    RunMetrics a = runNamedWorkload(g.workload, cfg, g.policy);
    RunMetrics b = runNamedWorkload(g.workload, cfg, g.policy);
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.cacheStallCycles, b.cacheStallCycles);
}

TEST(GoldenDeterminism, ReusedSystemMatchesGoldensThroughResets)
{
    // The sweep engine's reuse pattern: ONE System carried through
    // all six golden pairs via System::reset(), changing policy and
    // seed at every step (Uncached -> CacheR -> CacheRW -> AB -> CR
    // -> PCby). Every run must be bit-identical to the fresh-System
    // goldens above; any state leaking across a reset shows up here.
    SimConfig cfg = SimConfig::testConfig();
    std::unique_ptr<System> sys;
    for (const Golden &g : kGoldens) {
        const std::uint64_t seed =
            runSeedFor(cfg, g.workload, g.policy);
        const CachePolicy policy = CachePolicy::fromName(g.policy);
        if (sys == nullptr) {
            SimConfig run_cfg = cfg;
            run_cfg.seed = seed;
            sys = std::make_unique<System>(run_cfg, policy);
        } else {
            sys->reset(policy, seed);
        }
        auto wl = makeWorkload(g.workload);
        RunMetrics m = runWorkloadOn(*sys, *wl);

        EXPECT_EQ(m.execTicks, g.execTicks) << g.workload;
        EXPECT_EQ(m.gpuMemRequests, g.gpuMemRequests) << g.workload;
        EXPECT_EQ(m.dramReads, g.dramReads) << g.workload;
        EXPECT_EQ(m.dramWrites, g.dramWrites) << g.workload;
        EXPECT_EQ(m.cacheStallCycles, g.cacheStallCycles) << g.workload;
        EXPECT_EQ(m.l1Hits, g.l1Hits) << g.workload;
        EXPECT_EQ(m.l1Misses, g.l1Misses) << g.workload;
        EXPECT_EQ(m.l2Hits, g.l2Hits) << g.workload;
        EXPECT_EQ(m.l2Misses, g.l2Misses) << g.workload;
        EXPECT_EQ(m.l2Writebacks, g.l2Writebacks) << g.workload;
        EXPECT_EQ(m.rinseWritebacks, g.rinseWritebacks) << g.workload;
        EXPECT_EQ(m.allocBypassed, g.allocBypassed) << g.workload;
        EXPECT_EQ(m.predictorBypasses, g.predictorBypasses)
            << g.workload;
        EXPECT_EQ(m.kernels, g.kernels) << g.workload;
    }
}

TEST(GoldenDeterminism, SoaTagMirrorsStayCoherentThroughGoldenRuns)
{
    // The SoA tag store (PR 7) mirrors block state into address
    // lanes and bitmaps; after a full golden run every cache's
    // mirrors must still match its per-block metadata exactly.
    SimConfig cfg = SimConfig::testConfig();
    for (const Golden &g : {kGoldens[2], kGoldens[4]}) {
        SimConfig run_cfg = cfg;
        run_cfg.seed = runSeedFor(cfg, g.workload, g.policy);
        System sys(run_cfg, CachePolicy::fromName(g.policy));
        runWorkloadOn(sys, *makeWorkload(g.workload));
        for (unsigned i = 0; i < run_cfg.gpu.numCus; ++i) {
            EXPECT_TRUE(sys.l1(i).tags().shadowCoherent())
                << g.workload << " L1 " << i;
        }
        for (unsigned i = 0; i < sys.numL2Banks(); ++i) {
            EXPECT_TRUE(sys.l2Bank(i).tags().shadowCoherent())
                << g.workload << " L2 bank " << i;
        }
    }
}

TEST(GoldenDeterminism, ResetRunHasSameSimEventsAsFreshRun)
{
    // simEvents feeds the LPT cost model; a reused System's per-run
    // event count must match a fresh one's exactly.
    SimConfig cfg = SimConfig::testConfig();
    RunMetrics fresh = runNamedWorkload("FwBN", cfg, "CacheR");

    const std::uint64_t seed = runSeedFor(cfg, "FwBN", "CacheR");
    SimConfig run_cfg = cfg;
    run_cfg.seed = runSeedFor(cfg, "DGEMM", "Uncached");
    System sys(run_cfg, CachePolicy::fromName("Uncached"));
    runWorkloadOn(sys, *makeWorkload("DGEMM"));
    sys.reset(CachePolicy::fromName("CacheR"), seed);
    RunMetrics reused = runWorkloadOn(sys, *makeWorkload("FwBN"));

    EXPECT_EQ(reused.simEvents, fresh.simEvents);
    EXPECT_EQ(reused.execTicks, fresh.execTicks);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GoldenDeterminism, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        std::string name = std::string(info.param.workload) + "_" +
                           info.param.policy;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });
