/**
 * @file
 * Golden-hash determinism suite.
 *
 * One (workload, policy) pair per workload family, covering all six
 * policy configurations, run under SimConfig::testConfig(). The
 * expected values were captured from the simulator BEFORE the
 * hot-path overhaul (pooled packets, intrusive event queue, flattened
 * tag lookup, coalescer caching); the refactored simulator must
 * reproduce them bit-identically. Every counter here is an exact
 * integer count, so EXPECT_EQ on the doubles is exact.
 *
 * If a PR changes these values it changed simulated behavior, not
 * just simulator speed - that must be intentional and called out,
 * and the goldens re-captured.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "core/runner.hh"
#include "core/sim_config.hh"

using namespace migc;

namespace
{

struct Golden
{
    const char *workload;
    const char *policy;
    std::uint64_t execTicks;
    double gpuMemRequests;
    double dramReads;
    double dramWrites;
    double cacheStallCycles;
    double l1Hits;
    double l1Misses;
    double l2Hits;
    double l2Misses;
    double l2Writebacks;
    double rinseWritebacks;
    double allocBypassed;
    double predictorBypasses;
    double kernels;
};

// Captured at commit 6f96c8a (pre-refactor seed + harness), with
// MIGC_NO_CACHE=1, SimConfig::testConfig(), default seed.
const Golden kGoldens[] = {
    {"DGEMM", "Uncached", 23840625ULL, 9216, 6326, 1024, 0, 0, 0, 0, 0,
     0, 0, 0, 0, 1},
    {"FwBN", "CacheR", 4458750ULL, 12288, 4096, 4096, 16758, 0, 8192,
     4096, 4096, 0, 0, 0, 0, 1},
    {"FwPool", "CacheRW", 24458375ULL, 43008, 31327, 5384, 230206, 3666,
     33177, 1826, 37471, 6144, 0, 0, 0, 1},
    {"BwSoft", "CacheRW-AB", 1334625ULL, 1280, 512, 8, 978, 512, 512, 0,
     768, 256, 0, 0, 0, 1},
    {"FwLSTM", "CacheRW-CR", 11182750ULL, 17728, 14711, 56, 50405, 28,
     4880, 2147, 3758, 96, 36, 12200, 0, 4},
    {"FwAct", "CacheRW-PCby", 13166500ULL, 24576, 12288, 11570, 64627,
     0, 12206, 0, 4791, 2213, 1379, 82, 19790, 1},
};

class GoldenDeterminism : public ::testing::TestWithParam<Golden>
{};

} // namespace

TEST_P(GoldenDeterminism, RunMetricsMatchPreRefactorGoldens)
{
    const Golden &g = GetParam();
    SimConfig cfg = SimConfig::testConfig();
    RunMetrics m = runNamedWorkload(g.workload, cfg, g.policy);

    EXPECT_EQ(m.execTicks, g.execTicks);
    EXPECT_EQ(m.gpuMemRequests, g.gpuMemRequests);
    EXPECT_EQ(m.dramReads, g.dramReads);
    EXPECT_EQ(m.dramWrites, g.dramWrites);
    EXPECT_EQ(m.cacheStallCycles, g.cacheStallCycles);
    EXPECT_EQ(m.l1Hits, g.l1Hits);
    EXPECT_EQ(m.l1Misses, g.l1Misses);
    EXPECT_EQ(m.l2Hits, g.l2Hits);
    EXPECT_EQ(m.l2Misses, g.l2Misses);
    EXPECT_EQ(m.l2Writebacks, g.l2Writebacks);
    EXPECT_EQ(m.rinseWritebacks, g.rinseWritebacks);
    EXPECT_EQ(m.allocBypassed, g.allocBypassed);
    EXPECT_EQ(m.predictorBypasses, g.predictorBypasses);
    EXPECT_EQ(m.kernels, g.kernels);
}

TEST_P(GoldenDeterminism, RepeatedRunsAreTickIdentical)
{
    const Golden &g = GetParam();
    SimConfig cfg = SimConfig::testConfig();
    RunMetrics a = runNamedWorkload(g.workload, cfg, g.policy);
    RunMetrics b = runNamedWorkload(g.workload, cfg, g.policy);
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_EQ(a.dramReads, b.dramReads);
    EXPECT_EQ(a.cacheStallCycles, b.cacheStallCycles);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, GoldenDeterminism, ::testing::ValuesIn(kGoldens),
    [](const ::testing::TestParamInfo<Golden> &info) {
        std::string name = std::string(info.param.workload) + "_" +
                           info.param.policy;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });
