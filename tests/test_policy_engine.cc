/**
 * @file
 * Tests for the composable policy layer: the string-keyed policy
 * registry (paper presets + parameterized dynamic variants), the
 * PolicyEngine's verdicts and dynamic state, the workload registry
 * (order lists derived from the factory), and the end-to-end
 * properties the sweep stack depends on - registry round-trip into
 * the run cache, and set-dueling determinism across worker counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "cache/tags.hh"
#include "core/runner.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"
#include "core/system.hh"
#include "policy/cache_policy.hh"
#include "policy/policy_engine.hh"
#include "policy/policy_registry.hh"
#include "workloads/workload.hh"

using namespace migc;

namespace
{

std::string
tempCachePath(const std::string &leaf)
{
    return ::testing::TempDir() + "migc_" + leaf + ".csv";
}

const std::vector<std::string> kDynamicNames = {
    "CacheRW-DynAB", "CacheRW-Duel", "CacheRW-DynCR"};

} // namespace

// ---------------------------------------------------------------------
// Policy registry
// ---------------------------------------------------------------------

TEST(PolicyRegistry, BuiltinsCoverPaperAndDynamicPolicies)
{
    auto names = PolicyRegistry::instance().names();
    ASSERT_EQ(names.size(), 9u);
    EXPECT_EQ(names[0], "Uncached");
    EXPECT_EQ(names[5], "CacheRW-PCby");
    for (const auto &dyn : kDynamicNames)
        EXPECT_TRUE(PolicyRegistry::instance().known(dyn)) << dyn;
}

TEST(PolicyRegistry, PaperPresetsMatchMake)
{
    for (const auto &p : CachePolicy::allPolicies()) {
        CachePolicy q = CachePolicy::fromName(p.name);
        EXPECT_EQ(q.name, p.name);
        EXPECT_EQ(q.cacheLoadsL1, p.cacheLoadsL1);
        EXPECT_EQ(q.cacheLoadsL2, p.cacheLoadsL2);
        EXPECT_EQ(q.cacheStoresL2, p.cacheStoresL2);
        EXPECT_EQ(q.allocationBypass, p.allocationBypass);
        EXPECT_EQ(q.cacheRinsing, p.cacheRinsing);
        EXPECT_EQ(q.pcBypassL2, p.pcBypassL2);
        EXPECT_EQ(q.dynamic, DynPolicy::none);
    }
}

TEST(PolicyRegistry, ParameterizedSpecsRoundTripTheirName)
{
    CachePolicy ab = CachePolicy::fromName("CacheRW-DynAB@0.5");
    EXPECT_EQ(ab.name, "CacheRW-DynAB@0.5");
    EXPECT_EQ(ab.dynamic, DynPolicy::adaptiveBypass);
    EXPECT_DOUBLE_EQ(ab.dynBypassOccupancy, 0.5);
    EXPECT_TRUE(ab.allocationBypass);

    CachePolicy duel = CachePolicy::fromName("CacheRW-Duel@16");
    EXPECT_EQ(duel.name, "CacheRW-Duel@16");
    EXPECT_EQ(duel.dynamic, DynPolicy::setDueling);
    EXPECT_EQ(duel.duelLeaderPeriod, 16u);
    EXPECT_TRUE(duel.cacheStoresL2); // the capability stays on

    CachePolicy cr = CachePolicy::fromName("CacheRW-DynCR@4");
    EXPECT_EQ(cr.name, "CacheRW-DynCR@4");
    EXPECT_EQ(cr.dynamic, DynPolicy::dynamicRinse);
    EXPECT_EQ(cr.dynRinseMinLines, 4u);
    EXPECT_TRUE(cr.cacheRinsing);
}

TEST(PolicyRegistry, TryMakeRejectsUnknownNames)
{
    CachePolicy p;
    EXPECT_FALSE(PolicyRegistry::instance().tryMake("NoSuchPolicy", p));
    EXPECT_FALSE(PolicyRegistry::instance().known("NoSuchPolicy@3"));
    EXPECT_TRUE(PolicyRegistry::instance().tryMake("CacheRW", p));
    EXPECT_EQ(p.name, "CacheRW");
    // A trailing '@' would alias the defaults under a second cache
    // namespace, and presets accept no parameter at all; known()
    // must agree with tryMake() on both.
    EXPECT_FALSE(
        PolicyRegistry::instance().tryMake("CacheRW-DynAB@", p));
    EXPECT_FALSE(PolicyRegistry::instance().known("CacheRW-DynAB@"));
    EXPECT_FALSE(PolicyRegistry::instance().tryMake("Uncached@5", p));
    EXPECT_FALSE(PolicyRegistry::instance().known("Uncached@5"));
}

TEST(PolicyRegistry, MalformedParametersDie)
{
    // Negative values must not wrap through strtoul into huge
    // unsigned parameters, and non-divisor duel periods must not
    // skew the leader constituencies.
    EXPECT_DEATH((void)CachePolicy::fromName("CacheRW-DynCR@-1"),
                 "integer");
    EXPECT_DEATH((void)CachePolicy::fromName("CacheRW-Duel@-2"),
                 "integer");
    EXPECT_DEATH((void)CachePolicy::fromName("CacheRW-Duel@12"),
                 "power");
    EXPECT_DEATH((void)CachePolicy::fromName("CacheRW-DynAB@1.5"),
                 "fraction");
}

TEST(PolicyRegistry, DescribeListsEveryEntry)
{
    std::string listing = PolicyRegistry::instance().describe();
    for (const auto &name : PolicyRegistry::instance().names())
        EXPECT_NE(listing.find(name), std::string::npos) << name;
}

// ---------------------------------------------------------------------
// PolicyEngine verdicts
// ---------------------------------------------------------------------

TEST(PolicyEngine, LevelFlagsMirrorTheStaticPolicy)
{
    for (const auto &p : CachePolicy::allPolicies()) {
        PolicyEngine engine(p);
        auto l1 = engine.levelFlags(CacheLevel::l1);
        EXPECT_EQ(l1.cacheLoads, p.cacheLoadsL1) << p.name;
        EXPECT_FALSE(l1.cacheStores) << p.name; // L1 never coalesces
        EXPECT_FALSE(l1.rinsing) << p.name;
        EXPECT_FALSE(l1.usePredictor) << p.name;
        auto l2 = engine.levelFlags(CacheLevel::l2);
        EXPECT_EQ(l2.cacheLoads, p.cacheLoadsL2) << p.name;
        EXPECT_EQ(l2.cacheStores, p.cacheStoresL2) << p.name;
        EXPECT_EQ(l2.rinsing, p.cacheRinsing) << p.name;
        EXPECT_EQ(l2.usePredictor, p.pcBypassL2) << p.name;
    }
}

TEST(PolicyEngine, StaticPoliciesAlwaysRinseAndNeverPreBypass)
{
    PolicyEngine engine(CachePolicy::fromName("CacheRW-CR"));
    EXPECT_FALSE(engine.occupancyBypassActive());
    EXPECT_FALSE(engine.duelingActive(CacheLevel::l2));
    for (std::size_t pop = 1; pop < 16; ++pop)
        EXPECT_TRUE(engine.rinseRow(pop));
}

TEST(PolicyEngine, OccupancyThresholdConvertsAtTheLimit)
{
    PolicyEngine engine(CachePolicy::fromName("CacheRW-DynAB@0.75"));
    ASSERT_TRUE(engine.occupancyBypassActive());
    // 16-way set: 0.75 * 16 = 12 busy ways trigger the pre-bypass.
    EXPECT_FALSE(engine.occupancyBypass(11, 16));
    EXPECT_TRUE(engine.occupancyBypass(12, 16));
    EXPECT_TRUE(engine.occupancyBypass(16, 16));
    EXPECT_EQ(engine.occupancyBypasses(), 2.0);
}

TEST(PolicyEngine, DuelRolesTileEveryPeriod)
{
    PolicyEngine engine(CachePolicy::fromName("CacheRW-Duel@8"));
    const unsigned sets = 64;
    unsigned leaders_r = 0, leaders_rw = 0;
    for (unsigned s = 0; s < sets; ++s) {
        switch (engine.duelRole(s, sets)) {
          case DuelRole::leaderR:
            ++leaders_r;
            EXPECT_EQ(s % 8, 0u);
            break;
          case DuelRole::leaderRW:
            ++leaders_rw;
            EXPECT_EQ(s % 8, 4u);
            break;
          case DuelRole::follower:
            break;
        }
    }
    EXPECT_EQ(leaders_r, sets / 8);
    EXPECT_EQ(leaders_rw, sets / 8);
}

TEST(PolicyEngine, LeadersObeyTheirConstituency)
{
    PolicyEngine engine(CachePolicy::fromName("CacheRW-Duel"));
    EXPECT_FALSE(engine.cacheStore(DuelRole::leaderR));
    EXPECT_TRUE(engine.cacheStore(DuelRole::leaderRW));
}

TEST(PolicyEngine, FollowersFlipWithPsel)
{
    PolicyEngine engine(CachePolicy::fromName("CacheRW-Duel"));
    // At the midpoint the follower default is CacheRW (coalesce).
    EXPECT_TRUE(engine.cacheStore(DuelRole::follower));
    // Writebacks pouring out of the CacheRW leaders make coalescing
    // look expensive: followers flip to bypassing.
    engine.noteDuelWriteback();
    EXPECT_FALSE(engine.cacheStore(DuelRole::follower));
    // Bypass-store cost in the CacheR leaders flips them back.
    engine.noteDuelBypassStore();
    EXPECT_TRUE(engine.cacheStore(DuelRole::follower));
    engine.noteDuelBypassStore();
    EXPECT_TRUE(engine.cacheStore(DuelRole::follower));
}

TEST(PolicyEngine, DynamicRinseHonorsFloorAndRunningMean)
{
    PolicyEngine engine(CachePolicy::fromName("CacheRW-DynCR@3"));
    // Below the floor: never rinse, regardless of the mean.
    EXPECT_FALSE(engine.rinseRow(1));
    EXPECT_FALSE(engine.rinseRow(2));
    // Dense rows (>= running mean, >= floor) rinse.
    EXPECT_TRUE(engine.rinseRow(8));
    EXPECT_TRUE(engine.rinseRow(8));
    // After dense rows raised the mean, a just-at-floor row defers.
    EXPECT_FALSE(engine.rinseRow(3));
    EXPECT_GT(engine.rinseDeferred(), 0.0);
}

TEST(PolicyEngine, ResetRestoresDynamicState)
{
    CachePolicy duel = CachePolicy::fromName("CacheRW-Duel");
    PolicyEngine engine(duel);
    const std::uint32_t initial = engine.psel();
    engine.noteDuelWriteback();
    engine.noteDuelWriteback();
    EXPECT_NE(engine.psel(), initial);
    engine.reset(duel);
    EXPECT_EQ(engine.psel(), initial);
    EXPECT_TRUE(engine.cacheStore(DuelRole::follower));
}

// ---------------------------------------------------------------------
// Workload registry
// ---------------------------------------------------------------------

TEST(WorkloadRegistryExtensions, OrderListsDeriveFromTheRegistry)
{
    auto paper = workloadOrder();
    ASSERT_EQ(paper.size(), 17u);
    auto extended = extendedWorkloadOrder();
    ASSERT_EQ(extended.size(), 18u);
    // The extended list is the paper list plus the extensions.
    for (std::size_t i = 0; i < paper.size(); ++i)
        EXPECT_EQ(extended[i], paper[i]);
    EXPECT_EQ(extended.back(), "Attn");
    // Every listed name round-trips through the factory.
    for (const auto &name : extended)
        EXPECT_EQ(makeWorkload(name)->name(), name);
}

TEST(WorkloadRegistryExtensions, AttentionHasThreePhases)
{
    auto wl = makeWorkload("Attn");
    EXPECT_EQ(wl->category(), Category::reuseSensitive);
    auto kernels = wl->kernels(0.25);
    ASSERT_EQ(kernels.size(), 3u);
    EXPECT_EQ(kernels[0].name, "attnQKt");
    EXPECT_EQ(kernels[1].name, "attnSoftmax");
    EXPECT_EQ(kernels[2].name, "attnV");
    // Intermediate tensors stay on-device; only the output publishes.
    EXPECT_EQ(kernels[0].endScope, SyncScope::device);
    EXPECT_EQ(kernels[1].endScope, SyncScope::device);
    EXPECT_EQ(kernels[2].endScope, SyncScope::system);
    EXPECT_GT(wl->footprintBytes(0.25), 0u);
}

// ---------------------------------------------------------------------
// End-to-end properties through the sweep stack
// ---------------------------------------------------------------------

TEST(DynamicPolicySweep, RegistryRoundTripHitsTheRunCache)
{
    const std::string path = tempCachePath("dynamic_roundtrip");
    std::remove(path.c_str());
    SimConfig cfg = SimConfig::testConfig();

    std::vector<RunRequest> grid;
    for (const auto &p : kDynamicNames)
        grid.push_back(RunRequest{cfg, "FwSoft", p});
    grid.push_back(RunRequest{cfg, "Attn", "CacheRW-Duel@8"});

    std::vector<RunMetrics> cold;
    {
        SweepEngine engine(path);
        cold = engine.run(grid, 2);
        EXPECT_EQ(engine.simulationsPerformed(), grid.size());
    }
    // A fresh engine on the same file must serve every point - the
    // dynamic policies' names key the cache exactly like presets.
    SweepEngine engine(path);
    std::vector<RunMetrics> warm = engine.run(grid, 2);
    EXPECT_EQ(engine.simulationsPerformed(), 0u);
    ASSERT_EQ(warm.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i) {
        EXPECT_EQ(warm[i].execTicks, cold[i].execTicks) << i;
        EXPECT_EQ(warm[i].policy, cold[i].policy) << i;
    }
    std::remove(path.c_str());
}

TEST(DynamicPolicySweep, SetDuelingIsBitIdenticalAcrossWorkerCounts)
{
    // The duel's PSEL lives per System, so sharding the grid across
    // any worker count must not change a single counter. Compare a
    // serial sweep with a 4-worker sweep (no disk cache).
    SimConfig cfg = SimConfig::testConfig();
    std::vector<RunRequest> grid;
    for (const char *w : {"FwSoft", "BwSoft", "FwBN", "Attn"}) {
        for (const auto &p : kDynamicNames)
            grid.push_back(RunRequest{cfg, w, p});
    }

    SweepEngine serial("");
    std::vector<RunMetrics> a = serial.run(grid, 1);
    SweepEngine parallel("");
    std::vector<RunMetrics> b = parallel.run(grid, 4);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].execTicks, b[i].execTicks) << grid[i].workload;
        EXPECT_EQ(a[i].dramReads, b[i].dramReads) << grid[i].workload;
        EXPECT_EQ(a[i].dramWrites, b[i].dramWrites) << grid[i].workload;
        EXPECT_EQ(a[i].l2Writebacks, b[i].l2Writebacks)
            << grid[i].workload;
        EXPECT_EQ(a[i].allocBypassed, b[i].allocBypassed)
            << grid[i].workload;
    }
}

TEST(DynamicPolicySweep, RepeatedDynamicRunsAreTickIdentical)
{
    SimConfig cfg = SimConfig::testConfig();
    for (const auto &p : kDynamicNames) {
        RunMetrics a = runNamedWorkload("FwPool", cfg, p);
        RunMetrics b = runNamedWorkload("FwPool", cfg, p);
        EXPECT_EQ(a.execTicks, b.execTicks) << p;
        EXPECT_EQ(a.cacheStallCycles, b.cacheStallCycles) << p;
        EXPECT_EQ(a.l2Writebacks, b.l2Writebacks) << p;
    }
}

TEST(DynamicPolicySweep, DuelCostSamplesLandOnlyInLeaderSets)
{
    // The per-set sample counters in Tags record where duel cost
    // events were charged; by construction only leader sets are ever
    // charged, and a store-heavy run must charge some.
    SimConfig cfg = SimConfig::testConfig();
    const std::string policy_name = "CacheRW-Duel@8";
    SimConfig run_cfg = cfg;
    run_cfg.seed = runSeedFor(cfg, "FwPool", policy_name);
    System sys(run_cfg, CachePolicy::fromName(policy_name));
    runWorkloadOn(sys, *makeWorkload("FwPool"));

    std::uint64_t leader_samples = 0;
    std::uint64_t follower_samples = 0;
    for (unsigned b = 0; b < sys.numL2Banks(); ++b) {
        const Tags &tags = sys.l2Bank(b).tags();
        for (unsigned s = 0; s < tags.numSets(); ++s) {
            if (sys.policyEngine().duelRole(s, tags.numSets()) ==
                DuelRole::follower) {
                follower_samples += tags.duelSamples(s);
            } else {
                leader_samples += tags.duelSamples(s);
            }
        }
    }
    EXPECT_GT(leader_samples, 0u);
    EXPECT_EQ(follower_samples, 0u);
    // L1s never duel: no samples anywhere.
    const Tags &l1_tags = sys.l1(0).tags();
    for (unsigned s = 0; s < l1_tags.numSets(); ++s)
        EXPECT_EQ(l1_tags.duelSamples(s), 0u);
}

TEST(DynamicPolicySweep, DynamicPoliciesDivergeFromTheirStaticBase)
{
    // Sanity: the mechanisms actually fire. Under FwPool (stores and
    // heavy set pressure at test scale) each dynamic policy must
    // produce a different trajectory than its static base.
    SimConfig cfg = SimConfig::testConfig();
    RunMetrics ab = runNamedWorkload("FwPool", cfg, "CacheRW-AB");
    RunMetrics dyn_ab =
        runNamedWorkload("FwPool", cfg, "CacheRW-DynAB@0.25");
    EXPECT_NE(ab.execTicks, dyn_ab.execTicks);
    EXPECT_GT(dyn_ab.allocBypassed, ab.allocBypassed);

    // Leader sets bypassing stores remove writebacks (the per-line
    // DRAM write count can coincide when each line is stored once).
    RunMetrics rw = runNamedWorkload("FwPool", cfg, "CacheRW");
    RunMetrics duel = runNamedWorkload("FwPool", cfg, "CacheRW-Duel@8");
    EXPECT_NE(rw.l2Writebacks, duel.l2Writebacks);
    EXPECT_NE(rw.execTicks, duel.execTicks);

    RunMetrics cr = runNamedWorkload("FwPool", cfg, "CacheRW-CR");
    RunMetrics dyn_cr =
        runNamedWorkload("FwPool", cfg, "CacheRW-DynCR@8");
    EXPECT_NE(cr.rinseWritebacks, dyn_cr.rinseWritebacks);
}
