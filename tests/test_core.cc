/** @file Tests for metrics serialization, reporting, and configs. */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/experiments.hh"
#include "core/metrics.hh"
#include "core/report.hh"
#include "core/sim_config.hh"

using namespace migc;

TEST(RunMetrics, CsvRoundTrip)
{
    RunMetrics m;
    m.workload = "FwAct";
    m.policy = "CacheRW-PCby";
    m.execTicks = 123456789;
    m.execSeconds = 1.23456789e-4;
    m.gpuMemRequests = 1000;
    m.dramReads = 600;
    m.dramWrites = 400;
    m.dramAccesses = 1000;
    m.dramRowHitRate = 0.875;
    m.cacheStallCycles = 42;
    m.stallsPerRequest = 0.042;
    m.vops = 5000;
    m.gvops = 2.5;
    m.gmrps = 1.5;
    m.l1Hits = 10;
    m.l1Misses = 20;
    m.l2Hits = 30;
    m.l2Misses = 40;
    m.l2Writebacks = 50;
    m.rinseWritebacks = 5;
    m.allocBypassed = 7;
    m.predictorBypasses = 9;
    m.kernels = 3;

    RunMetrics out;
    ASSERT_TRUE(RunMetrics::fromCsv(m.toCsv(), out));
    EXPECT_EQ(out.workload, m.workload);
    EXPECT_EQ(out.policy, m.policy);
    EXPECT_EQ(out.execTicks, m.execTicks);
    EXPECT_DOUBLE_EQ(out.dramRowHitRate, m.dramRowHitRate);
    EXPECT_DOUBLE_EQ(out.rinseWritebacks, m.rinseWritebacks);
    EXPECT_DOUBLE_EQ(out.kernels, m.kernels);
}

TEST(RunMetrics, FromCsvRejectsGarbage)
{
    RunMetrics out;
    EXPECT_FALSE(RunMetrics::fromCsv("not,a,metrics,row", out));
    EXPECT_FALSE(RunMetrics::fromCsv("", out));
}

TEST(RunMetrics, HeaderFieldCountMatchesRow)
{
    RunMetrics m;
    // std::string temporaries sidestep a GCC 12 -Wrestrict false
    // positive on consecutive short const-char* assignments.
    m.workload = std::string("X");
    m.policy = std::string("Y");
    auto count_commas = [](const std::string &s) {
        return std::count(s.begin(), s.end(), ',');
    };
    EXPECT_EQ(count_commas(RunMetrics::csvHeader()),
              count_commas(m.toCsv()));
}

TEST(FigureData, AtAndPrint)
{
    FigureData fig;
    fig.title = "test";
    fig.workloads = {"A", "B"};
    fig.series = {"s0", "s1"};
    fig.values = {{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(fig.at(1, 0), 3.0);

    std::ostringstream os;
    printFigure(os, fig);
    EXPECT_NE(os.str().find("test"), std::string::npos);
    EXPECT_NE(os.str().find("s1"), std::string::npos);
    EXPECT_NE(os.str().find("A"), std::string::npos);
}

TEST(Report, GeoMean)
{
    EXPECT_DOUBLE_EQ(geoMean({4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geoMean({}), 0.0);
    EXPECT_DOUBLE_EQ(geoMean({0.0, 8.0, 2.0}), 4.0); // ignores 0
}

TEST(SimConfig, PresetsAreConsistent)
{
    for (auto cfg : {SimConfig::paperConfig(), SimConfig::defaultConfig(),
                     SimConfig::testConfig()}) {
        EXPECT_GT(cfg.gpu.numCus, 0u);
        EXPECT_EQ(cfg.xbar.numInputs, cfg.gpu.numCus);
        EXPECT_EQ(cfg.xbar.numOutputs, cfg.l2Banks);
        EXPECT_GT(cfg.l2Bank.size, 0u);
        EXPECT_FALSE(cfg.signature().empty());
    }
}

TEST(SimConfig, PaperConfigMatchesTable1)
{
    SimConfig cfg = SimConfig::paperConfig();
    EXPECT_EQ(cfg.gpu.numCus, 64u);
    EXPECT_EQ(cfg.gpu.simdsPerCu, 4u);
    EXPECT_EQ(cfg.gpu.wfSlotsPerSimd, 10u);
    EXPECT_EQ(cfg.l1.size, 16u * 1024u);
    EXPECT_EQ(cfg.l1.assoc, 16u);
    EXPECT_EQ(cfg.l2Bank.size * cfg.l2Banks, 4ULL * 1024 * 1024);
    EXPECT_EQ(cfg.dram.channels, 16u);
    EXPECT_EQ(cfg.gpu.clockPeriod, 625u); // 1600 MHz
}

TEST(SimConfig, SignatureDistinguishesConfigs)
{
    EXPECT_NE(SimConfig::paperConfig().signature(),
              SimConfig::defaultConfig().signature());
    SimConfig a = SimConfig::testConfig();
    SimConfig b = SimConfig::testConfig();
    b.workloadScale *= 2;
    EXPECT_NE(a.signature(), b.signature());
}

TEST(Experiments, Table1TextMentionsKeyParameters)
{
    std::string t = table1Text(SimConfig::paperConfig());
    EXPECT_NE(t.find("64"), std::string::npos);
    EXPECT_NE(t.find("1600 MHz"), std::string::npos);
    EXPECT_NE(t.find("HBM2"), std::string::npos);
}

TEST(Experiments, PolicyNameLists)
{
    EXPECT_EQ(ExperimentSweep::staticPolicyNames().size(), 3u);
    EXPECT_EQ(ExperimentSweep::allPolicyNames().size(), 6u);
    EXPECT_EQ(ExperimentSweep::allPolicyNames().back(),
              "CacheRW-PCby");
}
