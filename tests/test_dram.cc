/** @file Tests for address mapping, banks, channels, and the DRAM
 *  controller. */

#include <gtest/gtest.h>

#include <set>

#include "dram/address_map.hh"
#include "dram/bank.hh"
#include "dram/dram_ctrl.hh"
#include "sim/rng.hh"
#include "test_util.hh"

using namespace migc;
using namespace migc::test;

namespace
{

DramConfig
smallDram()
{
    DramConfig cfg;
    cfg.channels = 4;
    cfg.banksPerChannel = 4;
    cfg.rowBytes = 1024;
    cfg.readQDepth = 8;
    cfg.writeQDepth = 16;
    cfg.writeHighWatermark = 8;
    cfg.writeLowWatermark = 2;
    cfg.writeEagerThreshold = 4;
    cfg.writeIdleDrainDelay = 10'000;
    return cfg;
}

} // namespace

TEST(AddressMap, SequentialLinesStripeChannels)
{
    DramConfig cfg = smallDram();
    AddressMap map(cfg);
    for (unsigned i = 0; i < 16; ++i) {
        DramCoord c = map.decode(i * 64);
        EXPECT_EQ(c.channel, i % 4);
    }
}

TEST(AddressMap, ColumnThenBankProgression)
{
    DramConfig cfg = smallDram();
    cfg.bankXorHash = false;
    AddressMap map(cfg);
    unsigned lines_per_row = cfg.rowBytes / cfg.burstBytes;
    EXPECT_EQ(map.linesPerRow(), lines_per_row);
    // Walk channel 0: 64 * channels stride.
    DramCoord first = map.decode(0);
    DramCoord last_col =
        map.decode((lines_per_row - 1) * 64ULL * cfg.channels);
    EXPECT_EQ(first.bank, last_col.bank);
    EXPECT_EQ(first.row, last_col.row);
    EXPECT_EQ(last_col.column, lines_per_row - 1);
    DramCoord next_bank =
        map.decode(lines_per_row * 64ULL * cfg.channels);
    EXPECT_NE(next_bank.bank, first.bank);
}

TEST(AddressMap, RowIdsUniquePerRow)
{
    DramConfig cfg = smallDram();
    AddressMap map(cfg);
    std::set<std::uint64_t> ids;
    // 64 distinct (channel, bank, row) coordinates.
    for (unsigned i = 0; i < 64; ++i)
        ids.insert(map.rowId(i * 64ULL));
    // All lines in one channel-row share a row id.
    Addr a = 0;
    Addr same_row = a + 64ULL * cfg.channels; // next column, same row
    EXPECT_EQ(map.rowId(a), map.rowId(same_row));
}

TEST(AddressMap, BankXorDecorrelatesAlignedBuffers)
{
    DramConfig cfg = smallDram();
    cfg.bankXorHash = true;
    AddressMap map(cfg);
    // Two buffers at a large power-of-two offset should not all land
    // in identical banks.
    unsigned same = 0, total = 32;
    for (unsigned i = 0; i < total; ++i) {
        Addr a = i * 4096ULL;
        Addr b = a + (1ULL << 28);
        if (map.decode(a).bank == map.decode(b).bank)
            ++same;
    }
    EXPECT_LT(same, total);
}

TEST(Bank, ClassifyAndAccessLatencies)
{
    DramConfig cfg = smallDram();
    Bank bank;
    EXPECT_EQ(bank.classify(5), RowOutcome::closedMiss);
    Tick lat = bank.access(5, cfg);
    EXPECT_EQ(lat, cfg.tRcd + cfg.tCas);
    EXPECT_EQ(bank.classify(5), RowOutcome::hit);
    EXPECT_EQ(bank.access(5, cfg), cfg.tCas);
    EXPECT_EQ(bank.classify(9), RowOutcome::conflict);
    EXPECT_EQ(bank.access(9, cfg), cfg.tRp + cfg.tRcd + cfg.tCas);
    bank.close();
    EXPECT_EQ(bank.classify(9), RowOutcome::closedMiss);
}

class DramCtrlTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ctrl = std::make_unique<DramCtrl>("dram", eq, smallDram(), 2);
        for (int i = 0; i < 2; ++i) {
            cpus.push_back(std::make_unique<MockCpu>(eq));
            cpus[i]->bind(ctrl->clientPort(i));
        }
    }

    EventQueue eq;
    std::unique_ptr<DramCtrl> ctrl;
    std::vector<std::unique_ptr<MockCpu>> cpus;
};

TEST_F(DramCtrlTest, ReadCompletesWithData)
{
    cpus[0]->send(MemCmd::ReadReq, 0x1000);
    eq.run();
    ASSERT_EQ(cpus[0]->responses.size(), 1u);
    EXPECT_EQ(cpus[0]->responses[0].cmd, MemCmd::ReadResp);
    EXPECT_EQ(ctrl->totalReads(), 1.0);
    EXPECT_TRUE(ctrl->allIdle());
}

TEST_F(DramCtrlTest, WriteAckedAtQueueThenDrained)
{
    cpus[0]->send(MemCmd::WriteReq, 0x2000);
    eq.run();
    ASSERT_EQ(cpus[0]->responses.size(), 1u);
    EXPECT_EQ(cpus[0]->responses[0].cmd, MemCmd::WriteResp);
    // The drain happened by the time the queue is empty.
    EXPECT_EQ(ctrl->totalWrites(), 1.0);
    EXPECT_TRUE(ctrl->allIdle());
}

TEST_F(DramCtrlTest, WritebacksCountAsWrites)
{
    cpus[1]->send(MemCmd::WritebackDirty, 0x3000);
    eq.run();
    ASSERT_EQ(cpus[1]->responses.size(), 1u);
    EXPECT_EQ(cpus[1]->responses[0].cmd, MemCmd::WritebackResp);
    EXPECT_EQ(ctrl->totalWrites(), 1.0);
}

TEST_F(DramCtrlTest, SequentialStreamHitsRows)
{
    // 256 sequential lines: after the first access per row, hits.
    for (int i = 0; i < 256; ++i)
        cpus[0]->send(MemCmd::ReadReq, 0x40ULL * i);
    eq.run();
    EXPECT_EQ(ctrl->totalReads(), 256.0);
    EXPECT_GT(ctrl->rowHitRate(), 0.85);
}

TEST_F(DramCtrlTest, RandomStreamMissesRows)
{
    Rng rng(3);
    for (int i = 0; i < 256; ++i)
        cpus[0]->send(MemCmd::ReadReq, (rng.below(1 << 20)) * 64ULL);
    eq.run();
    EXPECT_EQ(ctrl->totalReads(), 256.0);
    EXPECT_LT(ctrl->rowHitRate(), 0.5);
}

TEST_F(DramCtrlTest, ResponsesRouteToCorrectClient)
{
    cpus[0]->send(MemCmd::ReadReq, 0x40);
    cpus[1]->send(MemCmd::ReadReq, 0x80);
    eq.run();
    EXPECT_EQ(cpus[0]->responses.size(), 1u);
    EXPECT_EQ(cpus[1]->responses.size(), 1u);
    EXPECT_EQ(cpus[0]->responses[0].addr, 0x40u);
    EXPECT_EQ(cpus[1]->responses[0].addr, 0x80u);
}

TEST_F(DramCtrlTest, BackpressureRetriesOnFullQueue)
{
    // Flood one channel's read queue (depth 8) from one client.
    for (int i = 0; i < 64; ++i)
        cpus[0]->send(MemCmd::ReadReq, 0x40ULL * 4 * i); // channel 0
    eq.run();
    EXPECT_EQ(cpus[0]->responses.size(), 64u);
    EXPECT_EQ(ctrl->totalReads(), 64.0);
}

TEST_F(DramCtrlTest, MixedTrafficDrainsCompletely)
{
    for (int i = 0; i < 128; ++i) {
        cpus[i % 2]->send(i % 3 == 0 ? MemCmd::WriteReq
                                     : MemCmd::ReadReq,
                          0x40ULL * i);
    }
    eq.run();
    EXPECT_TRUE(ctrl->allIdle());
    EXPECT_EQ(ctrl->totalAccesses(), 128.0);
}

/** Property sweep: every geometry decodes losslessly. */
class AddressMapSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned,
                                                 unsigned>>
{};

TEST_P(AddressMapSweep, DecodeCoversAllCoordinates)
{
    auto [channels, banks, row_bytes] = GetParam();
    DramConfig cfg;
    cfg.channels = channels;
    cfg.banksPerChannel = banks;
    cfg.rowBytes = row_bytes;
    cfg.bankXorHash = false;
    AddressMap map(cfg);

    std::set<std::tuple<unsigned, unsigned, std::uint64_t, unsigned>>
        seen;
    std::uint64_t lines =
        static_cast<std::uint64_t>(channels) * banks *
        (row_bytes / cfg.burstBytes) * 2; // two rows per bank
    for (std::uint64_t i = 0; i < lines; ++i) {
        DramCoord c = map.decode(i * 64);
        seen.insert({c.channel, c.bank, c.row, c.column});
    }
    // A bijection: every line lands on a distinct coordinate.
    EXPECT_EQ(seen.size(), lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, AddressMapSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u, 16u),
                       ::testing::Values(2u, 4u, 16u),
                       ::testing::Values(1024u, 2048u)));
