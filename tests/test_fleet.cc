/** @file Tests for the elastic shard fleet: the deterministic lease
 *  queue (grant order, expiry, stealing, late/stale completions),
 *  the wire protocol and coordinator dispatch, the resume-aware plan
 *  step, the static-vs-stealing makespan models, and two end-to-end
 *  invariants - a live two-worker socket fleet and a SIGKILLed
 *  worker plus takeover both merge byte-identical to a
 *  single-process sweep. */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "core/fleet.hh"
#include "core/metrics.hh"
#include "core/shard.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"
#include "serve/serve_protocol.hh"

using namespace migc;

// ThreadSanitizer cannot follow a forked child that starts threads
// (the runtime's own background thread makes every fork
// "multi-threaded"); the SIGKILL test skips itself there. The
// lease/steal/expiry threading it exercises is still covered under
// TSan by the in-process socket test.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MIGC_FLEET_TSAN 1
#endif
#endif
#if !defined(MIGC_FLEET_TSAN) && defined(__SANITIZE_THREAD__)
#define MIGC_FLEET_TSAN 1
#endif

namespace
{

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + "migc_fleet_" + leaf;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
removeCacheFamily(const std::string &base, unsigned shards)
{
    std::remove(base.c_str());
    for (unsigned i = 0; i < shards; ++i)
        std::remove(shardCachePath(base, i).c_str());
}

/** The small grid the end-to-end fleet tests sweep. */
std::vector<RunRequest>
smallGrid()
{
    const SimConfig cfg = SimConfig::testConfig();
    std::vector<RunRequest> grid;
    for (const char *w : {"FwSoft", "FwBN"}) {
        for (const char *p : {"Uncached", "CacheR", "CacheRW"})
            grid.push_back(RunRequest{cfg, w, p});
    }
    return grid;
}

std::vector<std::uint32_t>
allPending(std::size_t n)
{
    std::vector<std::uint32_t> pending(n);
    for (std::size_t i = 0; i < n; ++i)
        pending[i] = static_cast<std::uint32_t>(i);
    return pending;
}

/** Does the file hold at least one parseable result row yet?
 *  Loads through RunCache so the probe is format-agnostic (the
 *  worker may checkpoint v4 binary or csv text). */
bool
hasCheckpointedRow(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.good())
        return false;
    RunCache probe(path, 8);
    return probe.size() > 0;
}

} // namespace

// ---------------------------------------------------------------------
// FleetQueue: the deterministic core, replayed on injected time
// ---------------------------------------------------------------------

TEST(FleetQueue, GrantsLongestEstimateFirstInLeaseChunks)
{
    FleetQueue q({10, 50, 30, 20, 40, 60}, allPending(6),
                 FleetConfig{2, 1000});
    EXPECT_EQ(q.totalKeys(), 6u);

    FleetGrant g1 = q.lease(0, 10);
    ASSERT_EQ(g1.kind, FleetGrant::Kind::work);
    EXPECT_EQ(g1.keys, (std::vector<std::uint32_t>{5, 1}));
    EXPECT_FALSE(g1.stolen);
    EXPECT_EQ(g1.renewMs, 1000u);

    FleetGrant g2 = q.lease(1, 11);
    EXPECT_EQ(g2.keys, (std::vector<std::uint32_t>{4, 2}));
    FleetGrant g3 = q.lease(0, 12);
    EXPECT_EQ(g3.keys, (std::vector<std::uint32_t>{3, 0}));
    EXPECT_NE(g1.id, g2.id);
    EXPECT_EQ(q.pendingCount(), 0u);
    EXPECT_EQ(q.activeLeases(), 3u);

    // Retire everything; the queue drains and says so.
    for (std::uint32_t key : g1.keys)
        EXPECT_TRUE(q.done(0, g1.id, key, 100));
    for (std::uint32_t key : g2.keys)
        EXPECT_TRUE(q.done(1, g2.id, key, 100));
    for (std::uint32_t key : g3.keys)
        EXPECT_TRUE(q.done(0, g3.id, key, 100));
    EXPECT_TRUE(q.drained());
    EXPECT_EQ(q.lease(2, 101).kind, FleetGrant::Kind::drained);
    ASSERT_EQ(q.completions().size(), 6u);
    EXPECT_EQ(q.completions()[0].key, 5u);
    EXPECT_EQ(q.completions()[0].worker, 0u);
}

TEST(FleetQueue, CompletionExtendsTheRenewDeadline)
{
    FleetQueue q({1, 1}, allPending(2), FleetConfig{2, 1000});
    FleetGrant g = q.lease(0, 100); // deadline 1100
    ASSERT_EQ(g.keys.size(), 2u);

    // A done at 1050 is liveness evidence: deadline moves to 2050.
    EXPECT_TRUE(q.done(0, g.id, g.keys[0], 1050));
    q.expire(1500);
    EXPECT_EQ(q.activeLeases(), 1u);
    EXPECT_TRUE(q.renew(0, g.id, 1500).ok);

    // Past the extended deadline the lease finally expires and its
    // remaining key goes back to pending.
    q.expire(2600);
    EXPECT_EQ(q.activeLeases(), 0u);
    EXPECT_EQ(q.pendingCount(), 1u);
    EXPECT_EQ(q.expiredLeases(), 1u);
}

TEST(FleetQueue, ExpiredLeaseRequeuesForOtherWorkers)
{
    FleetQueue q({5, 4}, allPending(2), FleetConfig{2, 100});
    FleetGrant g0 = q.lease(0, 10); // deadline 110
    ASSERT_EQ(g0.keys.size(), 2u);

    // Worker 0 never renews; worker 1's lease at 200 sweeps the
    // expired keys back and is granted them fresh (not stolen).
    FleetGrant g1 = q.lease(1, 200);
    ASSERT_EQ(g1.kind, FleetGrant::Kind::work);
    EXPECT_FALSE(g1.stolen);
    EXPECT_EQ(g1.keys, g0.keys);
    EXPECT_EQ(q.expiredLeases(), 1u);
    EXPECT_EQ(q.workerStats().at(0).expired, 1u);

    // The dead lease no longer renews.
    EXPECT_FALSE(q.renew(0, g0.id, 210).ok);
}

TEST(FleetQueue, IdleWorkerStealsFromTheSlowestLease)
{
    FleetQueue q({100, 90, 10, 9, 8, 7}, allPending(6),
                 FleetConfig{3, 1000});
    FleetGrant g1 = q.lease(0, 1);
    EXPECT_EQ(g1.keys, (std::vector<std::uint32_t>{0, 1, 2}));
    FleetGrant g2 = q.lease(1, 2);
    EXPECT_EQ(g2.keys, (std::vector<std::uint32_t>{3, 4, 5}));
    EXPECT_EQ(q.pendingCount(), 0u);

    // Pending is empty: worker 2's lease shrinks the costliest lease
    // (worker 0's, 200 estimated remaining) and takes its tail - the
    // keys the victim is least likely to have started.
    FleetGrant g3 = q.lease(2, 3);
    ASSERT_EQ(g3.kind, FleetGrant::Kind::work);
    EXPECT_TRUE(g3.stolen);
    EXPECT_EQ(g3.keys, (std::vector<std::uint32_t>{2}));
    FleetQueue::Renewal r = q.renew(0, g1.id, 4);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.keys, (std::vector<std::uint32_t>{0, 1}));

    // Still the slowest: worker 3 steals from worker 0 again...
    FleetGrant g4 = q.lease(3, 5);
    EXPECT_EQ(g4.keys, (std::vector<std::uint32_t>{1}));
    // ...after which worker 0 holds one key and worker 1's lease
    // (24 remaining) is the only one left with a splittable tail.
    FleetGrant g5 = q.lease(4, 6);
    EXPECT_TRUE(g5.stolen);
    EXPECT_EQ(g5.keys, (std::vector<std::uint32_t>{5}));

    EXPECT_EQ(q.workerStats().at(2).steals, 1u);
    EXPECT_EQ(q.workerStats().at(2).leases, 1u);
    EXPECT_EQ(q.workerStats().at(0).steals, 0u);
}

TEST(FleetQueue, SingleKeyLeasesCannotBeSplit)
{
    FleetQueue q({2, 1}, allPending(2), FleetConfig{1, 400});
    EXPECT_EQ(q.lease(0, 1).keys, (std::vector<std::uint32_t>{0}));
    EXPECT_EQ(q.lease(1, 2).keys, (std::vector<std::uint32_t>{1}));

    // Every outstanding lease holds one key: nothing to steal, the
    // idle worker is told to retry shortly.
    FleetGrant g = q.lease(2, 3);
    EXPECT_EQ(g.kind, FleetGrant::Kind::wait);
    EXPECT_GT(g.waitMs, 0u);
    EXPECT_LE(g.waitMs, 100u);
}

TEST(FleetQueue, LateDoneAfterExpiryStillRetiresTheKey)
{
    FleetQueue q({3, 2, 1}, allPending(3), FleetConfig{2, 100});
    FleetGrant g0 = q.lease(0, 10); // keys {0, 1}, deadline 110

    // The lease expires; its keys rejoin pending {2}.
    q.expire(500);
    EXPECT_EQ(q.pendingCount(), 3u);

    // Worker 0 was only wedged, not dead: its completion is real (the
    // row is checkpointed in its shard cache), so the key retires
    // straight out of pending.
    EXPECT_TRUE(q.done(0, g0.id, 1, 600));
    EXPECT_EQ(q.pendingCount(), 2u);
    EXPECT_EQ(q.completedCount(), 1u);
    EXPECT_EQ(q.workerStats().at(0).runs, 1u);

    // Reporting the same key again is stale.
    EXPECT_FALSE(q.done(0, g0.id, 1, 601));
    EXPECT_EQ(q.workerStats().at(0).staleDones, 1u);
}

TEST(FleetQueue, LateDoneBeatsTheThief)
{
    FleetQueue q({100, 90, 10}, allPending(3), FleetConfig{3, 1000});
    FleetGrant victim = q.lease(0, 1); // {0, 1, 2}
    FleetGrant theft = q.lease(1, 2);  // steals {2}
    ASSERT_TRUE(theft.stolen);
    ASSERT_EQ(theft.keys, (std::vector<std::uint32_t>{2}));

    // The victim had already finished key 2 before it noticed the
    // steal: first completion wins, the key leaves the thief's lease.
    EXPECT_TRUE(q.done(0, victim.id, 2, 3));
    EXPECT_EQ(q.completedCount(), 1u);
    EXPECT_FALSE(q.renew(1, theft.id, 4).ok); // thief's lease emptied

    // The thief finishing it anyway is a stale done, not a conflict.
    EXPECT_FALSE(q.done(1, theft.id, 2, 5));
    EXPECT_EQ(q.workerStats().at(1).staleDones, 1u);
    ASSERT_EQ(q.completions().size(), 1u);
    EXPECT_EQ(q.completions()[0].worker, 0u);
}

// ---------------------------------------------------------------------
// Makespan models
// ---------------------------------------------------------------------

TEST(FleetModel, DegenerateFleetsAgree)
{
    // One worker: both models are the serial sum.
    EXPECT_DOUBLE_EQ(fleetStealMakespan({3, 2, 1}, {1.0}), 6.0);
    EXPECT_DOUBLE_EQ(fleetStaticMakespan({3, 2, 1}, {0, 0, 0}, {1.0}),
                     6.0);
    // Equal jobs, even split, equal speeds: nothing to steal.
    EXPECT_DOUBLE_EQ(fleetStealMakespan({1, 1, 1, 1}, {1.0, 1.0}),
                     2.0);
    EXPECT_DOUBLE_EQ(
        fleetStaticMakespan({1, 1, 1, 1}, {0, 0, 1, 1}, {1.0, 1.0}),
        2.0);
}

TEST(FleetModel, StragglerRatioMeetsTheAcceptanceBar)
{
    // The acceptance scenario: a paper-scale grid (102 runs, varied
    // costs), 8 workers, worker 0 a 3x straggler. The static hash
    // partition strands ~1/8 of the grid on the slow worker; the
    // stealing fleet re-balances around it. The PR's bar is >= 1.3x.
    std::vector<double> costs;
    std::vector<unsigned> owners;
    for (unsigned i = 0; i < 102; ++i) {
        costs.push_back(1.0 + static_cast<double>(i % 7) * 0.5);
        owners.push_back(i % 8);
    }
    std::vector<double> speeds(8, 1.0);
    speeds[0] = 1.0 / 3.0;

    const double s = fleetStaticMakespan(costs, owners, speeds);
    const double e = fleetStealMakespan(costs, speeds);
    EXPECT_GT(e, 0.0);
    EXPECT_GE(s / e, 1.3);

    // With no straggler the static split of this near-uniform grid
    // is already decent; stealing must not be *worse* than serial /
    // worse than the slowest static slice by construction.
    std::vector<double> flat(8, 1.0);
    EXPECT_LE(fleetStealMakespan(costs, flat),
              fleetStaticMakespan(costs, owners, flat) + 1e-9);
}

// ---------------------------------------------------------------------
// Wire protocol: parsing and coordinator dispatch
// ---------------------------------------------------------------------

TEST(FleetProtocol, ParsesFleetVerbs)
{
    ServeRequest lease = parseServeRequest("lease 3 12345");
    EXPECT_EQ(lease.kind, ServeRequest::Kind::lease);
    EXPECT_EQ(lease.worker, 3u);
    EXPECT_EQ(lease.gridHash, 12345u);

    ServeRequest done = parseServeRequest("done 2 7 41");
    EXPECT_EQ(done.kind, ServeRequest::Kind::done);
    EXPECT_EQ(done.worker, 2u);
    EXPECT_EQ(done.leaseId, 7u);
    EXPECT_EQ(done.key, 41u);

    ServeRequest renew = parseServeRequest("renew 0 9");
    EXPECT_EQ(renew.kind, ServeRequest::Kind::renew);
    EXPECT_EQ(renew.leaseId, 9u);

    // 64-bit grid fingerprints round-trip whole.
    EXPECT_EQ(parseServeRequest("lease 0 18446744073709551615")
                  .gridHash,
              UINT64_MAX);
}

TEST(FleetProtocol, RejectsMalformedFleetLines)
{
    for (const char *line : {
             "lease 3",                    // missing fingerprint
             "lease 3 12345 extra",        // extra operand
             "lease x 5",                  // non-numeric worker
             "lease 4096 5",               // worker out of range
             "lease 0 -1",                 // signed fingerprint
             "done 1 2",                   // missing key
             "done 0 1 4294967296",        // key > uint32
             "done 0 1 1.5",               // non-integer key
             "renew 1 2 3",                // extra operand
             "renew 0 18446744073709551616", // lease id overflow
         }) {
        EXPECT_EQ(parseServeRequest(line).kind,
                  ServeRequest::Kind::error)
            << line;
    }
}

TEST(FleetServer, AnswersTheWireProtocolWithoutASocket)
{
    FleetQueue q({10, 50, 30, 20, 40, 60}, allPending(6),
                 FleetConfig{2, 10000});
    FleetServer srv(tempPath("dispatch.sock"), std::move(q), 777);

    // Blank lines and comments draw no response (replayable input).
    EXPECT_EQ(srv.handleLine(""), "");
    EXPECT_EQ(srv.handleLine("# comment"), "");

    // A worker whose flags built a different grid is refused before
    // it can misinterpret an index.
    EXPECT_NE(srv.handleLine("lease 0 776").find(
                  "# error: grid fingerprint mismatch"),
              std::string::npos);

    EXPECT_EQ(srv.handleLine("lease 0 777"),
              "# lease 1 10000 fresh 5 1\n");
    EXPECT_EQ(srv.handleLine("done 0 1 5"), "# ok\n");
    EXPECT_EQ(srv.handleLine("done 0 1 5"), "# stale\n");
    EXPECT_EQ(srv.handleLine("renew 0 1"), "# renew 1 1\n");
    EXPECT_EQ(srv.handleLine("stats"),
              "# fleet total=6 completed=1 pending=4 leased=1 "
              "workers=1 expired=0\n");

    // Serve-layer verbs exist in the shared protocol but a fleet
    // coordinator has no cache to answer them from.
    EXPECT_NE(srv.handleLine("get test FwBN CacheR")
                  .find("serve verb"),
              std::string::npos);
    EXPECT_EQ(srv.handleLine("frobnicate"),
              "# error: unknown command 'frobnicate' (try: help)\n");
}

// ---------------------------------------------------------------------
// Grid fingerprint and the resume-aware plan step
// ---------------------------------------------------------------------

TEST(GridFingerprint, SensitiveToContentOrderAndSize)
{
    auto grid = smallGrid();
    const std::uint64_t h = gridFingerprint(grid);
    EXPECT_EQ(h, gridFingerprint(smallGrid()));

    auto reordered = grid;
    std::swap(reordered[0], reordered[1]);
    EXPECT_NE(h, gridFingerprint(reordered));

    auto truncated = grid;
    truncated.pop_back();
    EXPECT_NE(h, gridFingerprint(truncated));

    auto edited = grid;
    edited[0].policy = "CacheRW";
    EXPECT_NE(h, gridFingerprint(edited));
}

TEST(FleetPlan, ColdGridIsAllPendingWithPositiveCosts)
{
    const std::string base = tempPath("plan_cold.csv");
    removeCacheFamily(base, 2);
    const auto grid = smallGrid();
    FleetPlan plan = planFleetSweep(grid, base, 2, false);
    EXPECT_EQ(plan.pending.size(), grid.size());
    EXPECT_EQ(plan.cached, 0u);
    EXPECT_EQ(plan.resumedRows, 0u);
    for (std::uint32_t key : plan.pending)
        EXPECT_GT(plan.costs[key], 0.0) << key;
}

TEST(FleetPlan, ResumeFoldsPartialShardFilesIn)
{
    const std::string base = tempPath("plan_resume.csv");
    const std::string partial = tempPath("plan_partial.csv");
    removeCacheFamily(base, 2);
    std::remove(partial.c_str());

    // A crashed worker 0 checkpointed two rows before dying: fake
    // that by sweeping just those points into what becomes its shard
    // cache (same v3 format).
    const auto grid = smallGrid();
    {
        SweepEngine engine(partial);
        engine.run({grid[0], grid[3]});
    }
    ASSERT_EQ(std::rename(partial.c_str(),
                          shardCachePath(base, 0).c_str()),
              0);

    // Without --resume the shard file is invisible: the full grid
    // comes back pending (re-execution would still merge cleanly).
    FleetPlan cold = planFleetSweep(grid, base, 2, false);
    EXPECT_EQ(cold.pending.size(), grid.size());
    EXPECT_EQ(cold.resumedRows, 0u);

    // With --resume only the never-checkpointed keys are pending,
    // and the shard file stays on disk for the join merge.
    FleetPlan plan = planFleetSweep(grid, base, 2, true);
    EXPECT_EQ(plan.resumedRows, 2u);
    EXPECT_EQ(plan.cached, 2u);
    EXPECT_EQ(plan.pending.size(), grid.size() - 2);
    for (std::uint32_t key : plan.pending) {
        EXPECT_NE(key, 0u);
        EXPECT_NE(key, 3u);
    }
    EXPECT_TRUE(
        static_cast<bool>(std::ifstream(shardCachePath(base, 0))));
    removeCacheFamily(base, 2);
}

TEST(FleetPlan, DuplicateGridPointsLeaseOnce)
{
    const std::string base = tempPath("plan_dupe.csv");
    removeCacheFamily(base, 2);
    auto grid = smallGrid();
    grid.push_back(grid[2]); // same run key, new index
    FleetPlan plan = planFleetSweep(grid, base, 2, false);
    EXPECT_EQ(plan.pending.size(), grid.size() - 1);
    for (std::uint32_t key : plan.pending)
        EXPECT_NE(key, grid.size() - 1);
}

// ---------------------------------------------------------------------
// End to end: live sockets, real engines, byte-identity
// ---------------------------------------------------------------------

TEST(FleetEndToEnd, TwoWorkerSocketFleetMatchesSoloByteForByte)
{
    const std::string solo = tempPath("e2e_solo.csv");
    const std::string base = tempPath("e2e_fleet.csv");
    const std::string sock = tempPath("e2e.sock");
    std::remove(solo.c_str());
    removeCacheFamily(base, 2);

    const auto grid = smallGrid();
    {
        SweepEngine engine(solo);
        engine.run(grid);
    }

    const std::uint64_t hash = gridFingerprint(grid);
    FleetPlan plan = planFleetSweep(grid, base, 2, false);
    FleetServer server(sock,
                       FleetQueue(plan.costs, plan.pending,
                                  FleetConfig{1, 10000}),
                       hash);
    server.start();

    std::vector<std::thread> workers;
    for (unsigned i = 0; i < 2; ++i) {
        workers.emplace_back([&, i] {
            SweepEngine engine(base, FleetWorkerSpec{i});
            FleetClient client(sock, i, hash);
            engine.runFleet(grid, client, 1);
        });
    }
    for (std::thread &t : workers)
        t.join();
    EXPECT_TRUE(server.drained());

    // The deterministic completion record covers every key once, and
    // per-worker runs add up to the grid.
    auto completions = server.completions();
    EXPECT_EQ(completions.size(), grid.size());
    std::uint64_t runs = 0;
    for (const auto &[worker, st] : server.workerStats())
        runs += st.runs;
    EXPECT_EQ(runs, grid.size());
    server.stop();

    mergeShardCaches(base, 2);
    const std::string solo_bytes = readFile(solo);
    ASSERT_FALSE(solo_bytes.empty());
    EXPECT_EQ(solo_bytes, readFile(base));

    std::remove(solo.c_str());
    removeCacheFamily(base, 2);
}

TEST(FleetEndToEnd, SigkilledWorkerPlusTakeoverStaysByteIdentical)
{
#ifdef MIGC_FLEET_TSAN
    GTEST_SKIP() << "fork + threads is unsupported under TSan";
#endif
    const std::string solo = tempPath("kill_solo.csv");
    const std::string base = tempPath("kill_fleet.csv");
    const std::string sock = tempPath("kill.sock");
    std::remove(solo.c_str());
    removeCacheFamily(base, 2);

    const auto grid = smallGrid();
    {
        SweepEngine engine(solo);
        engine.run(grid);
    }

    const std::uint64_t hash = gridFingerprint(grid);
    FleetPlan plan = planFleetSweep(grid, base, 2, false);
    FleetServer server(sock,
                       FleetQueue(plan.costs, plan.pending,
                                  FleetConfig{1, 500}),
                       hash);

    // Fork the victim worker *before* the server spawns any thread:
    // the child is single-threaded at fork and builds its own
    // engine, client, and renewer from scratch.
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Worker 0, slowed so the parent can SIGKILL it mid-run. The
        // client ctor retries connecting while the parent binds.
        SweepEngine engine(base, FleetWorkerSpec{0});
        engine.setInjectedRunDelayMs(200);
        FleetClient client(sock, 0, hash);
        engine.runFleet(grid, client, 1);
        _exit(0);
    }

    server.start();

    // Wait until worker 0 has checkpointed at least one row - the
    // crash-safety contract says the row hit its shard cache before
    // the matching `done` - then kill it dead mid-lease.
    bool checkpointed = false;
    for (int i = 0; i < 3000 && !checkpointed; ++i) {
        checkpointed = hasCheckpointedRow(shardCachePath(base, 0));
        if (!checkpointed)
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
    }
    ::kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(checkpointed)
        << "worker 0 never checkpointed a row";
    EXPECT_TRUE(WIFSIGNALED(status));

    // Worker 1 takes over: the victim's outstanding lease expires
    // (500 ms renew deadline), its keys requeue, and the survivor
    // drains the grid.
    {
        SweepEngine engine(base, FleetWorkerSpec{1});
        FleetClient client(sock, 1, hash);
        engine.runFleet(grid, client, 1);
    }
    EXPECT_TRUE(server.drained());
    server.stop();

    // The dead worker's partial shard cache plus the survivor's
    // merge into exactly the single-process file: duplicated keys
    // (checkpointed but never reported) dedupe byte-identically.
    mergeShardCaches(base, 2);
    const std::string solo_bytes = readFile(solo);
    ASSERT_FALSE(solo_bytes.empty());
    EXPECT_EQ(solo_bytes, readFile(base));

    std::remove(solo.c_str());
    removeCacheFamily(base, 2);
}
