/** @file Tests for the multi-process sharding layer: partition
 *  stability, the env hook every binary inherits, worker slice
 *  isolation, the coordinator merge (bit-identical to a
 *  single-process sweep, loud on conflicts), and placeholder rows
 *  for foreign grid points. */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/shard.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"

using namespace migc;

namespace
{

/** Scoped env var set/restore so tests cannot leak state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool hadOld_ = false;
};

std::string
tempCachePath(const std::string &leaf)
{
    return ::testing::TempDir() + "migc_shard_" + leaf + ".csv";
}

bool
fileExists(const std::string &path)
{
    return static_cast<bool>(std::ifstream(path));
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
removeCacheFamily(const std::string &base, unsigned shards)
{
    std::remove(base.c_str());
    for (unsigned i = 0; i < shards; ++i)
        std::remove(shardCachePath(base, i).c_str());
}

/** The small grid all sharded-sweep tests run: 2 workloads x 3
 *  policies on the tiny test system. */
std::vector<RunRequest>
smallGrid()
{
    const SimConfig cfg = SimConfig::testConfig();
    std::vector<RunRequest> grid;
    for (const char *w : {"FwSoft", "FwBN"}) {
        for (const char *p : {"Uncached", "CacheR", "CacheRW"})
            grid.push_back(RunRequest{cfg, w, p});
    }
    return grid;
}

/** A v3 shard-cache file with one section and the given rows. */
void
writeShardFile(const std::string &path, const std::string &sig,
               const std::vector<RunMetrics> &rows)
{
    std::ofstream out(path, std::ios::trunc);
    out << "# migc-sweep-v3\n";
    out << "# config " << sig << "\n";
    out << RunMetrics::csvHeader() << "\n";
    for (const auto &m : rows)
        out << m.toCsv() << "\n";
}

RunMetrics
fakeMetrics(const std::string &workload, const std::string &policy,
            Tick exec_ticks)
{
    RunMetrics m;
    m.workload = workload;
    m.policy = policy;
    m.execTicks = exec_ticks;
    return m;
}

} // namespace

TEST(ShardPartition, HashDependsOnlyOnKeyText)
{
    const std::uint64_t h = runKeyHash("sig", "FwSoft", "CacheRW");
    EXPECT_EQ(h, runKeyHash("sig", "FwSoft", "CacheRW"));
    // Moving a character across a component boundary must change the
    // hash: the key components are separated, not concatenated.
    EXPECT_NE(h, runKeyHash("sigF", "wSoft", "CacheRW"));
    EXPECT_NE(h, runKeyHash("sig", "FwSoft", "CacheR"));
    EXPECT_NE(h, runKeyHash("", "FwSoft", "CacheRW"));
}

TEST(ShardPartition, EveryKeyOwnedByExactlyOneShard)
{
    const auto grid = smallGrid();
    for (unsigned shards : {1u, 2u, 3u, 4u, 7u, 16u}) {
        for (const RunRequest &req : grid) {
            const std::string sig = req.cfg.signature();
            unsigned owners = 0;
            for (unsigned i = 0; i < shards; ++i) {
                ShardSpec spec{shards, i};
                if (spec.owns(sig, req.workload, req.policy)) {
                    ++owners;
                    EXPECT_EQ(i, shardOf(sig, req.workload, req.policy,
                                         shards));
                }
            }
            EXPECT_EQ(owners, 1u);
        }
    }
}

TEST(ShardPartition, StableAcrossProcessConditions)
{
    // The partition must depend only on the key: recompute under a
    // different MIGC_JOBS and in reverse key order and compare.
    const auto grid = smallGrid();
    std::vector<unsigned> forward;
    {
        ScopedEnv jobs("MIGC_JOBS", "1");
        for (const RunRequest &req : grid)
            forward.push_back(shardOf(req.cfg.signature(), req.workload,
                                      req.policy, 4));
    }
    {
        ScopedEnv jobs("MIGC_JOBS", "16");
        for (std::size_t i = grid.size(); i-- > 0;) {
            EXPECT_EQ(forward[i],
                      shardOf(grid[i].cfg.signature(),
                              grid[i].workload, grid[i].policy, 4));
        }
    }
}

TEST(ShardEnv, ParsesAndValidates)
{
    {
        ScopedEnv shards("MIGC_SHARDS", nullptr);
        ScopedEnv index("MIGC_SHARD_INDEX", nullptr);
        ShardSpec spec = shardFromEnv();
        EXPECT_FALSE(spec.active());
        EXPECT_EQ(spec.shards, 1u);
    }
    {
        ScopedEnv shards("MIGC_SHARDS", "4");
        ScopedEnv index("MIGC_SHARD_INDEX", "2");
        ShardSpec spec = shardFromEnv();
        EXPECT_TRUE(spec.active());
        EXPECT_EQ(spec.shards, 4u);
        EXPECT_EQ(spec.index, 2u);
    }
    {
        // MIGC_SHARDS=1 is sharding off; an index of 0 is tolerated.
        ScopedEnv shards("MIGC_SHARDS", "1");
        ScopedEnv index("MIGC_SHARD_INDEX", nullptr);
        EXPECT_FALSE(shardFromEnv().active());
    }

    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    {
        // An out-of-range or missing index must die, not silently
        // run the whole grid.
        ScopedEnv shards("MIGC_SHARDS", "4");
        ScopedEnv index("MIGC_SHARD_INDEX", "4");
        EXPECT_EXIT(shardFromEnv(), ::testing::ExitedWithCode(1),
                    "MIGC_SHARD_INDEX");
    }
    {
        ScopedEnv shards("MIGC_SHARDS", "4");
        ScopedEnv index("MIGC_SHARD_INDEX", nullptr);
        EXPECT_EXIT(shardFromEnv(), ::testing::ExitedWithCode(1),
                    "MIGC_SHARD_INDEX");
    }
    {
        ScopedEnv shards("MIGC_SHARDS", "banana");
        ScopedEnv index("MIGC_SHARD_INDEX", nullptr);
        EXPECT_EXIT(shardFromEnv(), ::testing::ExitedWithCode(1),
                    "MIGC_SHARDS");
    }
    {
        // Even with sharding off, an out-of-range index means the
        // user meant a different fleet size - running the full grid
        // would silently duplicate every other worker's runs.
        ScopedEnv shards("MIGC_SHARDS", "1");
        ScopedEnv index("MIGC_SHARD_INDEX", "7");
        EXPECT_EXIT(shardFromEnv(), ::testing::ExitedWithCode(1),
                    "MIGC_SHARD_INDEX");
    }
}

TEST(ShardedSweep, WorkersSimulateDisjointSlicesAndPlaceholderTheRest)
{
    const std::string base = tempCachePath("slices");
    removeCacheFamily(base, 4);

    const auto grid = smallGrid();
    std::uint64_t total_sims = 0;
    for (unsigned i = 0; i < 4; ++i) {
        SweepEngine engine(base, ShardSpec{4, i});
        std::vector<RunMetrics> results = engine.run(grid);
        total_sims += engine.simulationsPerformed();
        ASSERT_EQ(results.size(), grid.size());
        for (std::size_t k = 0; k < grid.size(); ++k) {
            const std::string sig = grid[k].cfg.signature();
            const bool owned = ShardSpec{4, i}.owns(
                sig, grid[k].workload, grid[k].policy);
            // Owned points carry real metrics; foreign points come
            // back as labeled all-zero placeholders.
            EXPECT_EQ(results[k].workload, grid[k].workload);
            EXPECT_EQ(results[k].policy, grid[k].policy);
            if (owned)
                EXPECT_GT(results[k].execTicks, Tick(0));
            else
                EXPECT_EQ(results[k].execTicks, Tick(0));
        }
        EXPECT_EQ(engine.simulationsPerformed() + engine.shardSkipped(),
                  grid.size());
    }
    // The shards partition the grid: every point simulated exactly
    // once across the fleet.
    EXPECT_EQ(total_sims, grid.size());
    removeCacheFamily(base, 4);
}

TEST(ShardedSweep, MergedShardCachesAreBitIdenticalToSingleProcess)
{
    const std::string solo = tempCachePath("solo");
    const std::string sharded = tempCachePath("sharded");
    std::remove(solo.c_str());
    removeCacheFamily(sharded, 4);

    const auto grid = smallGrid();
    {
        SweepEngine engine(solo);
        engine.run(grid);
    }
    for (unsigned i = 0; i < 4; ++i) {
        SweepEngine engine(sharded, ShardSpec{4, i});
        engine.run(grid);
    }
    ShardMergeStats stats = mergeShardCaches(sharded, 4);
    EXPECT_EQ(stats.rows, grid.size());

    // The acceptance bar: the coordinator-merged cache is the same
    // file, byte for byte, that the single-process sweep wrote.
    const std::string solo_bytes = readFile(solo);
    ASSERT_FALSE(solo_bytes.empty());
    EXPECT_EQ(solo_bytes, readFile(sharded));

    // Merged shard files are cleaned up.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_FALSE(fileExists(shardCachePath(sharded, i)));

    // The merged canonical cache warm-starts both an unsharded
    // engine and a sharded worker: neither simulates anything.
    {
        SweepEngine engine(sharded);
        engine.run(grid);
        EXPECT_EQ(engine.simulationsPerformed(), 0u);
    }
    {
        SweepEngine engine(sharded, ShardSpec{4, 1});
        engine.run(grid);
        EXPECT_EQ(engine.simulationsPerformed(), 0u);
        EXPECT_EQ(engine.shardSkipped(), 0u);
    }
    std::remove(solo.c_str());
    removeCacheFamily(sharded, 4);
}

TEST(ShardedSweep, EnvHookDrivesTheDefaultEngine)
{
    // MIGC_SHARDS / MIGC_SHARD_INDEX must reach the default-
    // constructed engine every figure binary uses - that is the
    // zero-per-binary-changes contract.
    const std::string base = tempCachePath("envhook");
    removeCacheFamily(base, 2);
    ScopedEnv cache("MIGC_SWEEP_CACHE", base.c_str());
    ScopedEnv no_cache("MIGC_NO_CACHE", nullptr);
    ScopedEnv shards("MIGC_SHARDS", "2");
    ScopedEnv index("MIGC_SHARD_INDEX", "1");

    SweepEngine engine;
    EXPECT_TRUE(engine.shard().active());
    EXPECT_EQ(engine.shard().shards, 2u);
    EXPECT_EQ(engine.shard().index, 1u);

    const auto grid = smallGrid();
    engine.run(grid);
    engine.flush();
    EXPECT_LT(engine.simulationsPerformed(), grid.size());
    EXPECT_EQ(engine.simulationsPerformed() + engine.shardSkipped(),
              grid.size());
    // Results land in the private shard file, not the canonical one.
    EXPECT_FALSE(fileExists(base));
    EXPECT_TRUE(fileExists(shardCachePath(base, 1)));
    removeCacheFamily(base, 2);
}

TEST(ShardedSweep, ShardFilesHoldOnlyFreshRows)
{
    // A worker must serve the canonical cache read-only and write
    // only its own new rows to the shard file - otherwise every
    // shard file grows into a full copy of the canonical cache.
    const std::string base = tempCachePath("freshonly");
    removeCacheFamily(base, 2);

    const auto grid = smallGrid();
    {
        SweepEngine solo(base);
        solo.run(grid); // canonical cache now holds the small grid
    }

    auto extended = grid;
    extended.push_back(
        RunRequest{SimConfig::testConfig(), "FwSoft", "CacheRW-AB"});
    const std::string new_sig = extended.back().cfg.signature();
    const unsigned owner =
        shardOf(new_sig, "FwSoft", "CacheRW-AB", 2);
    {
        SweepEngine engine(base, ShardSpec{2, owner});
        engine.run(extended);
        // Everything but the new point replays from the canonical
        // warm store.
        EXPECT_EQ(engine.simulationsPerformed(), 1u);
        EXPECT_EQ(engine.cacheHits(), grid.size());
    }

    // Count rows through RunCache so the check is format-agnostic
    // (the shard file is v4 binary by default, csv under
    // MIGC_CACHE_FORMAT=csv).
    std::ifstream in(shardCachePath(base, owner), std::ios::binary);
    ASSERT_TRUE(in);
    RunCache shard_rows(shardCachePath(base, owner), 8);
    EXPECT_EQ(shard_rows.size(), 1u);
    removeCacheFamily(base, 2);
}

TEST(ShardedSweep, WorkerFigureCsvLandsNextToTheRealOne)
{
    // A shard worker's figure is partial (placeholder zeros for
    // foreign points); exporting it must not clobber a complete
    // figure CSV in the same directory.
    const std::string path = ::testing::TempDir() + "migc_fig.csv";
    const std::string shard_path = shardCachePath(path, 1);
    std::remove(path.c_str());
    std::remove(shard_path.c_str());

    FigureData fig;
    fig.title = "t";
    fig.valueLabel = "v";
    fig.workloads = {"FwSoft"};
    fig.series = {"CacheR"};
    fig.values = {{1.0}};

    ScopedEnv shards("MIGC_SHARDS", "2");
    ScopedEnv index("MIGC_SHARD_INDEX", "1");
    writeFigureCsv(path, fig);
    EXPECT_FALSE(fileExists(path));
    EXPECT_TRUE(fileExists(shard_path));
    std::remove(shard_path.c_str());
}

TEST(ShardMerge, MissingShardFilesAreSkipped)
{
    const std::string base = tempCachePath("nofiles");
    removeCacheFamily(base, 3);
    ShardMergeStats stats = mergeShardCaches(base, 3);
    EXPECT_EQ(stats.files, 0u);
    EXPECT_EQ(stats.rows, 0u);
    std::remove(base.c_str());
}

TEST(ShardMerge, IdenticalRowsDedupeAcrossShards)
{
    const std::string base = tempCachePath("dedupe");
    removeCacheFamily(base, 2);
    RunMetrics row = fakeMetrics("FwSoft", "CacheRW", 1234);
    writeShardFile(shardCachePath(base, 0), "sectionA", {row});
    writeShardFile(shardCachePath(base, 1), "sectionA", {row});
    ShardMergeStats stats = mergeShardCaches(base, 2);
    EXPECT_EQ(stats.files, 2u);
    EXPECT_EQ(stats.rows, 1u);
    EXPECT_EQ(stats.duplicates, 1u);
    std::remove(base.c_str());
}

TEST(ShardMerge, ZeroLengthShardFileIsAnEmptyCacheNotAParseError)
{
    // A fleet worker SIGKILLed before its first checkpoint leaves a
    // zero-length (or blank) shard file behind; --resume and the
    // join merge must read it as a legitimately empty cache, not
    // count a parse error or warn about a missing format tag.
    const std::string base = tempCachePath("zerolen");
    removeCacheFamily(base, 2);
    RunMetrics row = fakeMetrics("FwSoft", "CacheRW", 4321);
    writeShardFile(shardCachePath(base, 0), "sectionA", {row});
    { std::ofstream touch(shardCachePath(base, 1), std::ios::trunc); }

    ShardMergeStats stats = mergeShardCaches(base, 2);
    EXPECT_EQ(stats.files, 2u);
    EXPECT_EQ(stats.rows, 1u);
    EXPECT_EQ(stats.duplicates, 0u);
    EXPECT_EQ(stats.parseErrors, 0u);
    // Both inputs were consumed, including the empty one.
    EXPECT_FALSE(fileExists(shardCachePath(base, 0)));
    EXPECT_FALSE(fileExists(shardCachePath(base, 1)));
    std::remove(base.c_str());

    // Blank lines only (a checkpoint truncated after the newline of
    // an earlier write) read the same way.
    removeCacheFamily(base, 1);
    {
        std::ofstream blank(shardCachePath(base, 0), std::ios::trunc);
        blank << "\n\n";
    }
    ShardMergeStats blank_stats = mergeShardCaches(base, 1);
    EXPECT_EQ(blank_stats.files, 1u);
    EXPECT_EQ(blank_stats.rows, 0u);
    EXPECT_EQ(blank_stats.parseErrors, 0u);
    std::remove(base.c_str());
}

TEST(ShardMerge, ConflictingRowsFailLoudly)
{
    const std::string base = tempCachePath("conflict");
    removeCacheFamily(base, 2);
    // Two shards claim the same (config, workload, policy) with
    // different results: a nondeterministic simulator or mismatched
    // sweeps. The merge must die and leave the inputs on disk.
    writeShardFile(shardCachePath(base, 0), "sectionA",
                   {fakeMetrics("FwSoft", "CacheRW", 1111)});
    writeShardFile(shardCachePath(base, 1), "sectionA",
                   {fakeMetrics("FwSoft", "CacheRW", 2222)});

    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_EXIT(mergeShardCaches(base, 2),
                ::testing::ExitedWithCode(1), "conflict");
    EXPECT_TRUE(fileExists(shardCachePath(base, 0)));
    EXPECT_TRUE(fileExists(shardCachePath(base, 1)));
    removeCacheFamily(base, 2);
}
