/**
 * @file
 * Differential coverage for the SIMD hot-path kernels and the SoA
 * tag store.
 *
 * Two layers:
 *  - kernel differentials: the build-selected simd:: kernels against
 *    their always-compiled scalar references on randomized inputs
 *    (padding overhang, absent keys, duplicate keys, the unrolled
 *    16-lane fast path, mutating callbacks);
 *  - a randomized trace driven through Tags AND a deliberately naive
 *    array-of-structs reference model (the pre-PR7 scalar semantics),
 *    asserting identical block/victim/busy/count results op for op,
 *    with Tags::shadowCoherent() checked throughout.
 *
 * Under -DMIGC_NO_SIMD=ON (the CI scalar leg) the same suite runs
 * with the kernels compiled scalar, so both sides of every build
 * configuration stay covered.
 */

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cache/cache_blk.hh"
#include "cache/repl_policy.hh"
#include "cache/simd.hh"
#include "cache/tags.hh"
#include "sim/rng.hh"

using namespace migc;

namespace
{

// ---------------------------------------------------------------------
// Kernel differentials
// ---------------------------------------------------------------------

TEST(SimdKernels, IsaNameIsKnown)
{
    const std::string isa = simd::isaName();
    EXPECT_TRUE(isa == "avx2" || isa == "sse2" || isa == "neon" ||
                isa == "scalar")
        << isa;
#if defined(MIGC_NO_SIMD)
    EXPECT_EQ(isa, "scalar");
#endif
}

TEST(SimdKernels, FindLaneMatchesScalarOnRandomArrays)
{
    Rng rng(11);
    for (int iter = 0; iter < 2000; ++iter) {
        const unsigned n = 1 + static_cast<unsigned>(rng.below(40));
        std::vector<std::uint64_t> lanes(n + simd::kLanePad);
        for (auto &l : lanes)
            l = rng.below(8); // few distinct values -> frequent dups
        const std::uint64_t key = rng.below(10); // sometimes absent
        // Poison the padding with the key: matches in the overhang
        // must never be returned.
        for (unsigned p = 0; p < simd::kLanePad; ++p)
            lanes[n + p] = key;
        EXPECT_EQ(simd::findLane(lanes.data(), n, key),
                  simd::findLaneScalar(lanes.data(), n, key))
            << "n=" << n << " key=" << key;
    }
}

TEST(SimdKernels, FindLaneSixteenLaneFastPath)
{
    // n == 16 is the default associativity and takes the unrolled
    // branchless path on the vector ISAs; sweep the match through
    // every lane plus the no-match case.
    std::vector<std::uint64_t> lanes(16 + simd::kLanePad, ~0ull);
    for (unsigned i = 0; i < 16; ++i)
        lanes[i] = 100 + i;
    for (unsigned want = 0; want < 16; ++want)
        EXPECT_EQ(simd::findLane(lanes.data(), 16, 100 + want), want);
    EXPECT_EQ(simd::findLane(lanes.data(), 16, 999), 16u);
    // Duplicate key: the lowest lane must win.
    lanes[3] = lanes[12] = 7;
    EXPECT_EQ(simd::findLane(lanes.data(), 16, 7), 3u);
}

TEST(SimdKernels, CountByteEqMatchesScalar)
{
    Rng rng(12);
    for (std::size_t n :
         {std::size_t{0}, std::size_t{1}, std::size_t{15},
          std::size_t{16}, std::size_t{17}, std::size_t{31},
          std::size_t{32}, std::size_t{100}, std::size_t{4101}}) {
        std::vector<std::uint8_t> data(n);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.below(4));
        for (std::uint8_t key = 0; key < 4; ++key) {
            EXPECT_EQ(simd::countByteEq(data.data(), n, key),
                      simd::countByteEqScalar(data.data(), n, key))
                << "n=" << n << " key=" << unsigned(key);
        }
    }
}

TEST(SimdKernels, ForEachByteEqMatchesScalarOrderAndIndices)
{
    Rng rng(13);
    for (int iter = 0; iter < 200; ++iter) {
        const std::size_t n = rng.below(200);
        std::vector<std::uint8_t> data(n);
        for (auto &b : data)
            b = static_cast<std::uint8_t>(rng.below(3));
        std::vector<std::size_t> got, want;
        simd::forEachByteEq(data.data(), n, 1,
                            [&](std::size_t i) { got.push_back(i); });
        simd::forEachByteEqScalar(
            data.data(), n, 1,
            [&](std::size_t i) { want.push_back(i); });
        EXPECT_EQ(got, want) << "n=" << n;
    }
}

TEST(SimdKernels, ForEachByteEqSupportsMutatingTheVisitedByte)
{
    // The flush path flips each visited dirty byte to valid from
    // inside the callback; every matching byte must still be visited
    // exactly once, on both kernel variants.
    Rng rng(14);
    const std::size_t n = 333;
    std::vector<std::uint8_t> base(n);
    for (auto &b : base)
        b = static_cast<std::uint8_t>(rng.below(2) + 1);

    auto run = [&](bool scalar) {
        std::vector<std::uint8_t> data = base;
        std::vector<std::size_t> visits;
        auto fn = [&](std::size_t i) {
            visits.push_back(i);
            data[i] = 9; // no longer matches
        };
        if (scalar)
            simd::forEachByteEqScalar(data.data(), n, 2, fn);
        else
            simd::forEachByteEq(data.data(), n, 2, fn);
        return visits;
    };
    const auto simd_visits = run(false);
    const auto scalar_visits = run(true);
    EXPECT_EQ(simd_visits, scalar_visits);

    std::vector<std::size_t> expect;
    for (std::size_t i = 0; i < n; ++i) {
        if (base[i] == 2)
            expect.push_back(i);
    }
    EXPECT_EQ(simd_visits, expect);
}

// ---------------------------------------------------------------------
// Tags vs. a naive AoS reference model
// ---------------------------------------------------------------------

/**
 * The pre-PR7 scalar tag-store semantics, kept deliberately naive:
 * per-block structs only, linear walks, candidate gather in way
 * order. Uses its own ReplPolicy instance seeded identically to the
 * Tags under test, so the random policy's draw streams stay in
 * lockstep as long as both sides make the same victim() calls.
 */
class RefTags
{
  public:
    RefTags(std::uint64_t size_bytes, unsigned assoc, unsigned line_size,
            ReplKind repl, std::uint64_t seed)
        : assoc_(assoc), lineMask_(line_size - 1),
          numSets_(static_cast<unsigned>(size_bytes / assoc / line_size)),
          setShift_(0), repl_(ReplPolicy::create(repl, seed))
    {
        for (unsigned s = 1; s < line_size; s <<= 1)
            ++setShift_;
        blocks_.resize(static_cast<std::size_t>(numSets_) * assoc_);
    }

    Addr lineAlign(Addr a) const { return a & ~lineMask_; }

    unsigned setIndex(Addr a) const
    {
        return static_cast<unsigned>((a >> setShift_) & (numSets_ - 1));
    }

    /** Way holding @p a, or assoc_ when absent. */
    unsigned
    findWay(Addr a) const
    {
        const Addr line = lineAlign(a);
        const std::size_t base =
            static_cast<std::size_t>(setIndex(a)) * assoc_;
        for (unsigned w = 0; w < assoc_; ++w) {
            const CacheBlk &b = blocks_[base + w];
            if (b.addr == line && b.state != BlkState::invalid)
                return w;
        }
        return assoc_;
    }

    unsigned
    busyWays(Addr a) const
    {
        const std::size_t base =
            static_cast<std::size_t>(setIndex(a)) * assoc_;
        unsigned busy = 0;
        for (unsigned w = 0; w < assoc_; ++w)
            busy += blocks_[base + w].isBusy();
        return busy;
    }

    /** Victim way for @p a, or assoc_ when every way is busy. */
    unsigned
    victimWay(Addr a)
    {
        const std::size_t base =
            static_cast<std::size_t>(setIndex(a)) * assoc_;
        std::vector<CacheBlk *> cands;
        for (unsigned w = 0; w < assoc_; ++w) {
            CacheBlk &b = blocks_[base + w];
            if (b.state == BlkState::invalid)
                return w;
            if (!b.isBusy())
                cands.push_back(&b);
        }
        if (cands.empty())
            return assoc_;
        CacheBlk *victim = cands[repl_->victim(cands)];
        return static_cast<unsigned>(victim - &blocks_[base]);
    }

    CacheBlk &
    at(Addr a, unsigned way)
    {
        return blocks_[static_cast<std::size_t>(setIndex(a)) * assoc_ +
                       way];
    }

    void
    touch(CacheBlk &b)
    {
        b.lastTouch = ++stamp_;
    }

    void
    insert(CacheBlk &b, Addr a, BlkState state)
    {
        b.addr = lineAlign(a);
        b.state = state;
        b.reused = false;
        b.insertStamp = ++stamp_;
        b.lastTouch = stamp_;
    }

    std::uint64_t
    invalidateClean()
    {
        std::uint64_t n = 0;
        for (auto &b : blocks_) {
            if (b.state == BlkState::valid) {
                b.invalidate();
                ++n;
            }
        }
        return n;
    }

    std::uint64_t
    countState(BlkState state) const
    {
        std::uint64_t n = 0;
        for (const auto &b : blocks_)
            n += b.state == state;
        return n;
    }

    std::vector<Addr>
    dirtyAddrs() const
    {
        std::vector<Addr> out;
        for (const auto &b : blocks_) {
            if (b.isDirty())
                out.push_back(b.addr);
        }
        return out;
    }

    void
    reset(std::uint64_t seed)
    {
        for (auto &b : blocks_)
            b = CacheBlk{};
        stamp_ = 0;
        repl_->reset(seed);
    }

  private:
    unsigned assoc_;
    Addr lineMask_;
    unsigned numSets_;
    unsigned setShift_;
    std::unique_ptr<ReplPolicy> repl_;
    std::vector<CacheBlk> blocks_;
    std::uint64_t stamp_ = 0;
};

/** Way index of a Tags-owned block (via the forEach enumeration). */
class WayIndex
{
  public:
    explicit WayIndex(Tags &tags)
    {
        std::size_t i = 0;
        tags.forEach([&](CacheBlk &b) { index_[&b] = i++; });
    }

    unsigned
    way(const Tags &tags, const CacheBlk *blk) const
    {
        return static_cast<unsigned>(index_.at(blk) % tags.assoc());
    }

  private:
    std::unordered_map<const CacheBlk *, std::size_t> index_;
};

void
driveTrace(ReplKind kind, unsigned assoc, std::uint64_t trace_seed)
{
    SCOPED_TRACE("kind=" + std::to_string(static_cast<int>(kind)) +
                 " assoc=" + std::to_string(assoc) +
                 " seed=" + std::to_string(trace_seed));
    const std::uint64_t size = 16 * 1024;
    const unsigned line = 64;
    const std::uint64_t repl_seed = 77;
    Tags tags(size, assoc, line, kind, repl_seed);
    RefTags ref(size, assoc, line, kind, repl_seed);
    WayIndex ways(tags);

    // 4x the cache footprint: plenty of conflict misses.
    const std::uint64_t addr_space = 4 * size;
    Rng rng(trace_seed);
    auto randAddr = [&] { return rng.below(addr_space); };

    const int ops = 60000;
    for (int op = 0; op < ops; ++op) {
        const std::uint64_t what = rng.below(100);
        if (what < 40) {
            // Lookup (+ touch on hit).
            const Addr a = randAddr();
            CacheBlk *blk = tags.findBlock(a);
            const unsigned rw = ref.findWay(a);
            ASSERT_EQ(blk != nullptr, rw < assoc) << "op " << op;
            if (blk) {
                ASSERT_EQ(ways.way(tags, blk), rw) << "op " << op;
                ASSERT_EQ(blk->state, ref.at(a, rw).state);
                tags.touch(blk);
                ref.touch(ref.at(a, rw));
            }
        } else if (what < 65) {
            // Allocate: victim select, evict if needed, insert.
            const Addr a = randAddr();
            if (tags.findBlock(a) != nullptr) {
                // Already resident; treat as a hit op instead.
                continue;
            }
            CacheBlk *victim = tags.findVictim(a);
            const unsigned rw = ref.victimWay(a);
            ASSERT_EQ(victim != nullptr, rw < assoc) << "op " << op;
            if (!victim)
                continue;
            ASSERT_EQ(ways.way(tags, victim), rw) << "op " << op;
            if (victim->isValid())
                tags.invalidateBlock(victim);
            CacheBlk &rv = ref.at(a, rw);
            if (rv.isValid())
                rv.invalidate();
            const BlkState st =
                std::array{BlkState::valid, BlkState::dirty,
                           BlkState::busy}[rng.below(3)];
            tags.insert(victim, a, st, 0);
            ref.insert(rv, a, st);
        } else if (what < 75) {
            // State transition on a resident block.
            const Addr a = randAddr();
            CacheBlk *blk = tags.findBlock(a);
            const unsigned rw = ref.findWay(a);
            ASSERT_EQ(blk != nullptr, rw < assoc);
            if (blk) {
                const BlkState st = rng.below(2) ? BlkState::valid
                                                 : BlkState::dirty;
                tags.setState(blk, st);
                ref.at(a, rw).state = st;
            }
        } else if (what < 82) {
            // Invalidate a resident block.
            const Addr a = randAddr();
            CacheBlk *blk = tags.findBlock(a);
            const unsigned rw = ref.findWay(a);
            ASSERT_EQ(blk != nullptr, rw < assoc);
            if (blk) {
                tags.invalidateBlock(blk);
                ref.at(a, rw).invalidate();
            }
        } else if (what < 90) {
            const Addr a = randAddr();
            ASSERT_EQ(tags.busyWays(a), ref.busyWays(a)) << "op " << op;
        } else if (what < 94) {
            for (BlkState st :
                 {BlkState::invalid, BlkState::valid, BlkState::dirty,
                  BlkState::busy}) {
                ASSERT_EQ(tags.countState(st), ref.countState(st));
            }
        } else if (what < 97) {
            ASSERT_EQ(tags.invalidateClean(), ref.invalidateClean());
        } else if (what < 99) {
            std::vector<Addr> got;
            tags.forEachDirty(
                [&](CacheBlk &b) { got.push_back(b.addr); });
            ASSERT_EQ(got, ref.dirtyAddrs()) << "op " << op;
        } else {
            // Full reset mid-trace; both sides restart their stamps
            // and replacement RNG from the same seed.
            const std::uint64_t s = rng.below(1000);
            tags.reset(s);
            ref.reset(s);
        }

        if (op % 1000 == 0) {
            ASSERT_TRUE(tags.shadowCoherent()) << "op " << op;
        }
    }
    EXPECT_TRUE(tags.shadowCoherent());
}

TEST(TagsDifferential, LruMatchesReferenceModel)
{
    driveTrace(ReplKind::lru, 16, 1);
    driveTrace(ReplKind::lru, 8, 2); // generic (non-16) findLane path
}

TEST(TagsDifferential, FifoMatchesReferenceModel)
{
    driveTrace(ReplKind::fifo, 16, 3);
    driveTrace(ReplKind::fifo, 4, 4);
}

TEST(TagsDifferential, RandomPolicyRngDrawsStayInLockstep)
{
    driveTrace(ReplKind::random, 16, 5);
    driveTrace(ReplKind::random, 8, 6);
}

TEST(TagsDifferential, FullSetMinScanFastPathPicksLruVictim)
{
    // Fill one set completely with known touch order and check the
    // stamp-lane fast path picks the least-recently-used way.
    Tags tags(16 * 1024, 16, 64, ReplKind::lru);
    const Addr set_stride = 64 * 16; // 16 sets
    std::vector<CacheBlk *> inserted;
    for (unsigned w = 0; w < 16; ++w) {
        const Addr a = w * set_stride; // all map to set 0
        CacheBlk *v = tags.findVictim(a);
        tags.insert(v, a, BlkState::valid, 0);
        inserted.push_back(v);
    }
    // Touch every way except way 5 (most-recent last).
    for (unsigned w = 0; w < 16; ++w) {
        if (w != 5)
            tags.touch(inserted[w]);
    }
    CacheBlk *victim = tags.findVictim(16 * set_stride);
    ASSERT_NE(victim, nullptr);
    EXPECT_EQ(victim, inserted[5]);
    EXPECT_TRUE(tags.shadowCoherent());
}

} // namespace
