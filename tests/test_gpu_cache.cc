/** @file Behavioral tests for the GpuCache controller. */

#include <gtest/gtest.h>

#include "cache/gpu_cache.hh"
#include "dram/address_map.hh"
#include "policy/reuse_predictor.hh"
#include "test_util.hh"

using namespace migc;
using namespace migc::test;

namespace
{

GpuCacheConfig
smallCache()
{
    GpuCacheConfig cfg;
    cfg.name = "c";
    cfg.size = 1024; // 4 sets x 4 ways
    cfg.assoc = 4;
    cfg.lineSize = 64;
    cfg.lookupLatency = Cycles(2);
    cfg.responseLatency = Cycles(1);
    cfg.bypassLatency = Cycles(1);
    cfg.mshrs = 4;
    cfg.targetsPerMshr = 4;
    cfg.bypassEntries = 8;
    cfg.writeBufDepth = 4;
    cfg.memQueueDepth = 8;
    cfg.clockPeriod = 1000;
    return cfg;
}

DramConfig
mapConfig()
{
    DramConfig d;
    d.channels = 1;
    d.banksPerChannel = 2;
    d.rowBytes = 256; // 4 lines per row: easy rinse sets
    d.bankXorHash = false;
    return d;
}

struct CacheHarness
{
    explicit CacheHarness(GpuCacheConfig cfg,
                          ReusePredictor *pred = nullptr,
                          Tick mem_latency = 20'000)
        : map(mapConfig()),
          cache(cfg, eq, pool, &map, pred), cpu(eq),
          mem(eq, mem_latency)
    {
        cpu.bind(cache.cpuSidePort());
        cache.memSidePort().bind(mem);
    }

    EventQueue eq;
    PacketPool pool;
    AddressMap map;
    GpuCache cache;
    MockCpu cpu;
    MockMem mem;
};

} // namespace

TEST(GpuCache, ColdMissFillsThenHits)
{
    CacheHarness h(smallCache());
    h.cpu.send(MemCmd::ReadReq, 0x1000, 0x4);
    h.eq.run();
    EXPECT_EQ(h.mem.reads, 1u);
    ASSERT_EQ(h.cpu.responses.size(), 1u);
    EXPECT_EQ(h.cache.demandMisses(), 1.0);

    h.cpu.send(MemCmd::ReadReq, 0x1000, 0x4);
    h.eq.run();
    EXPECT_EQ(h.mem.reads, 1u); // no new memory read
    EXPECT_EQ(h.cache.demandHits(), 1.0);
    EXPECT_EQ(h.cpu.responses.size(), 2u);
}

TEST(GpuCache, ConcurrentMissesCoalesceOnMshr)
{
    GpuCacheConfig cfg = smallCache();
    CacheHarness h(cfg);
    // Burst of three reads to the same line before the fill returns.
    h.cpu.send(MemCmd::ReadReq, 0x2000);
    h.cpu.send(MemCmd::ReadReq, 0x2000);
    h.cpu.send(MemCmd::ReadReq, 0x2000);
    h.eq.run();
    EXPECT_EQ(h.mem.reads, 1u);
    EXPECT_EQ(h.cpu.responses.size(), 3u);
    EXPECT_EQ(h.cache.demandMisses(), 1.0);
    EXPECT_TRUE(h.cache.quiescent());
}

TEST(GpuCache, BypassReadsCoalesceInPendingTable)
{
    GpuCacheConfig cfg = smallCache();
    cfg.cacheLoads = false; // Uncached policy at this level
    CacheHarness h(cfg);
    h.cpu.send(MemCmd::ReadReq, 0x3000);
    h.cpu.send(MemCmd::ReadReq, 0x3000);
    h.eq.run();
    EXPECT_EQ(h.mem.reads, 1u); // coalesced
    EXPECT_EQ(h.cpu.responses.size(), 2u);
    EXPECT_EQ(h.cache.demandAccesses(), 0.0); // never queried tags
    // Nothing was inserted.
    EXPECT_EQ(h.cache.tags().countState(BlkState::valid), 0u);
}

TEST(GpuCache, BypassForwardCarriesBypassFlag)
{
    GpuCacheConfig cfg = smallCache();
    cfg.cacheLoads = false;
    CacheHarness h(cfg);
    h.cpu.send(MemCmd::ReadReq, 0x3000);
    h.eq.run();
    ASSERT_EQ(h.mem.flagsSeen.size(), 1u);
    EXPECT_TRUE(h.mem.flagsSeen[0] & pktFlagBypass);
}

TEST(GpuCache, StoresAbsorbedWhenCachingStores)
{
    GpuCacheConfig cfg = smallCache();
    cfg.cacheStores = true;
    CacheHarness h(cfg);
    h.cpu.send(MemCmd::WriteReq, 0x4000);
    h.cpu.send(MemCmd::WriteReq, 0x4000); // hits the dirty line
    h.eq.run();
    EXPECT_EQ(h.mem.writes, 0u); // nothing written through yet
    EXPECT_EQ(h.cpu.responses.size(), 2u);
    EXPECT_EQ(h.cache.tags().countState(BlkState::dirty), 1u);
}

TEST(GpuCache, WriteThroughWhenNotCachingStores)
{
    GpuCacheConfig cfg = smallCache(); // cacheStores = false
    CacheHarness h(cfg);
    h.cpu.send(MemCmd::WriteReq, 0x4000);
    h.eq.run();
    EXPECT_EQ(h.mem.writes, 1u);
    EXPECT_EQ(h.cache.tags().countState(BlkState::dirty), 0u);
}

TEST(GpuCache, DirtyEvictionEmitsWriteback)
{
    GpuCacheConfig cfg = smallCache();
    cfg.cacheStores = true;
    CacheHarness h(cfg);
    // Dirty a line in set 0, then evict it with 4 more fills in the
    // same set (assoc 4): addresses 0x1000 apart share a set.
    h.cpu.send(MemCmd::WriteReq, 0x0);
    h.eq.run();
    for (int i = 1; i <= 4; ++i) {
        h.cpu.send(MemCmd::ReadReq, 0x1000u * i);
        h.eq.run();
    }
    EXPECT_EQ(h.mem.writebacks, 1u);
    EXPECT_EQ(h.cache.tags().countState(BlkState::dirty), 0u);
    EXPECT_TRUE(h.cache.quiescent());
}

TEST(GpuCache, AllocationBlockingStallsWithoutAb)
{
    GpuCacheConfig cfg = smallCache();
    cfg.mshrs = 8; // the set (4 ways), not the MSHR file, must block
    CacheHarness h(cfg);
    // Occupy all 4 ways of set 0 with pending fills (manual mem).
    MockMem slow(h.eq, 0, SIZE_MAX, /*manual=*/true);
    // Rebind: use a fresh harness instead.
    (void)slow;

    // Use the default harness but rely on mem latency: issue 4
    // misses to set 0, then a 5th before any fill returns.
    for (int i = 0; i < 5; ++i)
        h.cpu.send(MemCmd::ReadReq, 0x1000u * i);
    h.eq.run();
    // All complete eventually, and the 5th was stalled.
    EXPECT_EQ(h.cpu.responses.size(), 5u);
    EXPECT_GT(h.cache.stallCycles(), 0.0);
    EXPECT_EQ(h.cache.allocBypassConversions(), 0.0);
}

TEST(GpuCache, AllocationBypassConvertsInsteadOfStalling)
{
    GpuCacheConfig cfg = smallCache();
    cfg.mshrs = 8; // the set (4 ways), not the MSHR file, must block
    cfg.allocationBypass = true;
    CacheHarness h(cfg);
    for (int i = 0; i < 5; ++i)
        h.cpu.send(MemCmd::ReadReq, 0x1000u * i);
    h.eq.run();
    EXPECT_EQ(h.cpu.responses.size(), 5u);
    EXPECT_GE(h.cache.allocBypassConversions(), 1.0);
    // The converted request still returned data but did not insert:
    // only 4 lines resident.
    EXPECT_EQ(h.cache.tags().countState(BlkState::valid), 4u);
}

TEST(GpuCache, InvalidateCleanDropsOnlyCleanLines)
{
    GpuCacheConfig cfg = smallCache();
    cfg.cacheStores = true;
    CacheHarness h(cfg);
    h.cpu.send(MemCmd::ReadReq, 0x100);
    h.cpu.send(MemCmd::WriteReq, 0x200);
    h.eq.run();
    EXPECT_EQ(h.cache.invalidateClean(), 1u);
    EXPECT_EQ(h.cache.tags().countState(BlkState::dirty), 1u);
    EXPECT_EQ(h.cache.tags().countState(BlkState::valid), 0u);
}

TEST(GpuCache, FlushDirtyWritesEverythingBack)
{
    GpuCacheConfig cfg = smallCache();
    cfg.cacheStores = true;
    CacheHarness h(cfg);
    for (int i = 0; i < 6; ++i)
        h.cpu.send(MemCmd::WriteReq, 0x40u * i + 0x8000);
    h.eq.run();
    EXPECT_EQ(h.mem.writes, 0u);

    bool flushed = false;
    h.cache.flushDirty([&] { flushed = true; });
    h.eq.run();
    EXPECT_TRUE(flushed);
    EXPECT_EQ(h.mem.writebacks, 6u);
    EXPECT_EQ(h.cache.tags().countState(BlkState::dirty), 0u);
    // Flushed lines remain cached clean.
    EXPECT_EQ(h.cache.tags().countState(BlkState::valid), 6u);
}

TEST(GpuCache, FlushWithNothingDirtyCompletesImmediately)
{
    CacheHarness h(smallCache());
    bool flushed = false;
    h.cache.flushDirty([&] { flushed = true; });
    h.eq.run();
    EXPECT_TRUE(flushed);
}

TEST(GpuCache, RinsingWritesBackWholeRowOnEviction)
{
    GpuCacheConfig cfg = smallCache();
    cfg.size = 4096; // 16 sets: row lines land in distinct sets
    cfg.cacheStores = true;
    cfg.rinsing = true;
    cfg.dbiRows = 8;
    CacheHarness h(cfg);

    // Dirty 4 lines of the same DRAM row (rowBytes 256, 1 channel:
    // lines 0x0, 0x40, 0x80, 0xc0).
    for (int i = 0; i < 4; ++i)
        h.cpu.send(MemCmd::WriteReq, 0x40u * i);
    h.eq.run();
    EXPECT_EQ(h.cache.tags().countState(BlkState::dirty), 4u);

    // Evict line 0x0 by filling its set (16 sets -> 0x400 stride).
    for (int i = 1; i <= 4; ++i)
        h.cpu.send(MemCmd::ReadReq, 0x400u * i);
    h.eq.run();

    // The victim plus the 3 same-row rinse writebacks.
    EXPECT_EQ(h.mem.writebacks, 4u);
    EXPECT_EQ(h.cache.rinseWritebacks(), 3.0);
    // Rinsed lines stay cached, now clean.
    EXPECT_EQ(h.cache.tags().countState(BlkState::dirty), 0u);
}

TEST(GpuCache, PredictorBypassesNoReusePc)
{
    GpuCacheConfig cfg = smallCache();
    ReusePredictor::Config pc;
    pc.entries = 64;
    pc.counterBits = 2;
    pc.threshold = 2;
    pc.initialValue = 2;
    pc.sampleInterval = 1024; // effectively no sampling override
    ReusePredictor pred(pc);
    CacheHarness h(cfg, &pred);

    // Stream distinct lines from one PC with no reuse; evictions
    // train the predictor down to bypass.
    Addr pc_stream = 0xAA0;
    for (int i = 0; i < 64; ++i) {
        h.cpu.send(MemCmd::ReadReq, 0x40ULL * i * 16, pc_stream);
        h.eq.run();
    }
    EXPECT_LT(pred.counterFor(pc_stream), 2u);
    EXPECT_GT(h.cache.predictorBypasses(), 0.0);
}

TEST(GpuCache, PredictorKeepsCachingReusedPc)
{
    GpuCacheConfig cfg = smallCache();
    ReusePredictor::Config pc;
    pc.entries = 64;
    pc.sampleInterval = 1024;
    ReusePredictor pred(pc);
    CacheHarness h(cfg, &pred);

    Addr pc_hot = 0xBB0;
    for (int round = 0; round < 8; ++round) {
        h.cpu.send(MemCmd::ReadReq, 0x40, pc_hot);
        h.eq.run();
    }
    EXPECT_GE(pred.counterFor(pc_hot), 4u);
    EXPECT_EQ(h.cache.predictorBypasses(), 0.0);
    EXPECT_EQ(h.cache.demandHits(), 7.0);
}

TEST(GpuCache, QuiescentReflectsInFlightWork)
{
    CacheHarness h(smallCache());
    EXPECT_TRUE(h.cache.quiescent());
    h.cpu.send(MemCmd::ReadReq, 0x40);
    EXPECT_FALSE(h.cache.quiescent()); // fill outstanding
    h.eq.run();
    EXPECT_TRUE(h.cache.quiescent());
}

TEST(GpuCache, BypassProbeStillHitsCachedData)
{
    // An AB/predictor-converted request must see cached lines for
    // correctness (mixed-policy probe).
    GpuCacheConfig cfg = smallCache();
    CacheHarness h(cfg);
    h.cpu.send(MemCmd::ReadReq, 0x40); // fill
    h.eq.run();
    // Now send a bypass-flagged read to the same line.
    auto *pkt = new Packet(MemCmd::ReadReq, 0x40, 64, h.eq.curTick());
    pkt->setFlag(pktFlagBypass);
    // Route it through the cpu port directly.
    h.cpu.send(MemCmd::ReadReq, 0x40); // normal hit for comparison
    h.eq.run();
    delete pkt; // (direct injection path covered by integration tests)
    EXPECT_EQ(h.mem.reads, 1u);
}
