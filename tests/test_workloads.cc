/** @file Property tests over all 17 MI workloads. */

#include <gtest/gtest.h>

#include <set>

#include "workloads/workload.hh"

using namespace migc;

TEST(WorkloadRegistry, SeventeenWorkloadsInPaperOrder)
{
    auto names = workloadOrder();
    ASSERT_EQ(names.size(), 17u);
    EXPECT_EQ(names.front(), "DGEMM");
    EXPECT_EQ(names.back(), "BwAct");
    std::set<std::string> unique(names.begin(), names.end());
    EXPECT_EQ(unique.size(), 17u);
}

TEST(WorkloadRegistry, ScaleMustBePositiveAndFinite)
{
    auto wl = makeWorkload("FwSoft");
    // Valid scales pass the shared check and reach the workload.
    EXPECT_FALSE(wl->kernels(0.125).empty());
    EXPECT_GT(wl->footprintBytes(0.125), 0u);
    // Invalid scales die in the shared helper, for every workload.
    EXPECT_DEATH((void)wl->kernels(0.0), "scale");
    EXPECT_DEATH((void)wl->kernels(-1.0), "scale");
    EXPECT_DEATH((void)makeWorkload("Attn")->footprintBytes(0.0),
                 "scale");
}

TEST(WorkloadRegistry, CategoriesMatchThePaper)
{
    EXPECT_EQ(makeWorkload("SGEMM")->category(),
              Category::insensitive);
    EXPECT_EQ(makeWorkload("DGEMM")->category(),
              Category::insensitive);
    EXPECT_EQ(makeWorkload("CM")->category(), Category::insensitive);
    EXPECT_EQ(makeWorkload("FwAct")->category(),
              Category::throughputSensitive);
    EXPECT_EQ(makeWorkload("FwLRN")->category(),
              Category::throughputSensitive);
    EXPECT_EQ(makeWorkload("BwAct")->category(),
              Category::throughputSensitive);
    EXPECT_EQ(makeWorkload("FwFc")->category(),
              Category::reuseSensitive);
    EXPECT_EQ(makeWorkload("FwBwLSTM")->category(),
              Category::reuseSensitive);
}

class WorkloadSweep : public ::testing::TestWithParam<std::string>
{};

TEST_P(WorkloadSweep, NameMatchesRegistry)
{
    auto wl = makeWorkload(GetParam());
    EXPECT_EQ(wl->name(), GetParam());
}

TEST_P(WorkloadSweep, KernelsAreWellFormed)
{
    auto wl = makeWorkload(GetParam());
    auto kernels = wl->kernels(0.125);
    ASSERT_FALSE(kernels.empty());
    for (const auto &k : kernels) {
        EXPECT_FALSE(k.name.empty());
        EXPECT_GT(k.numWorkgroups, 0u);
        EXPECT_GT(k.wavesPerWorkgroup, 0u);
        ASSERT_TRUE(static_cast<bool>(k.makeProgram));
    }
    // The final kernel must publish results to the host.
    EXPECT_EQ(kernels.back().endScope, SyncScope::system);
}

TEST_P(WorkloadSweep, ProgramsAreWellFormed)
{
    auto wl = makeWorkload(GetParam());
    auto kernels = wl->kernels(0.125);
    for (const auto &k : kernels) {
        // Check first and last workgroup, first and last wave.
        for (std::uint32_t wg :
             {0u, k.numWorkgroups - 1}) {
            for (std::uint32_t wf :
                 {0u, k.wavesPerWorkgroup - 1}) {
                auto prog = k.makeProgram(wg, wf);
                ASSERT_FALSE(prog.empty())
                    << k.name << " wg " << wg << " wf " << wf;
                for (const auto &op : prog) {
                    if (op.type == GpuOpType::vload ||
                        op.type == GpuOpType::vstore) {
                        EXPECT_GT(op.lanes, 0u);
                        EXPECT_LE(op.lanes, 64u);
                        EXPECT_NE(op.pc, 0u)
                            << "memory op without a PC in "
                            << k.name;
                    } else {
                        EXPECT_GT(op.cycles, 0u);
                    }
                }
            }
        }
    }
}

TEST_P(WorkloadSweep, ProgramGenerationIsDeterministic)
{
    auto wl = makeWorkload(GetParam());
    auto k1 = wl->kernels(0.125);
    auto k2 = wl->kernels(0.125);
    ASSERT_EQ(k1.size(), k2.size());
    const auto &a = k1.front();
    const auto &b = k2.front();
    auto pa = a.makeProgram(0, 0);
    auto pb = b.makeProgram(0, 0);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        EXPECT_EQ(pa[i].type, pb[i].type);
        EXPECT_EQ(pa[i].base, pb[i].base);
        EXPECT_EQ(pa[i].pc, pb[i].pc);
    }
}

TEST_P(WorkloadSweep, FootprintScalesMonotonically)
{
    auto wl = makeWorkload(GetParam());
    EXPECT_GT(wl->footprintBytes(0.125), 0u);
    EXPECT_LE(wl->footprintBytes(0.125), wl->footprintBytes(1.0));
    EXPECT_LE(wl->footprintBytes(1.0), wl->footprintBytes(4.0));
}

TEST_P(WorkloadSweep, PaperMetadataPresent)
{
    auto wl = makeWorkload(GetParam());
    WorkloadInfo info = wl->paperInfo();
    EXPECT_FALSE(info.input.empty());
    EXPECT_FALSE(info.gpuFootprint.empty());
    EXPECT_GE(info.totalKernels, info.uniqueKernels);
    EXPECT_GE(info.uniqueKernels, 1u);
}

TEST_P(WorkloadSweep, MemoryOpsHaveDistinctPcsPerSite)
{
    // All memory ops in one program must use PCs derived from the
    // kernel's pcBase so the reuse predictor can separate sites.
    auto wl = makeWorkload(GetParam());
    auto kernels = wl->kernels(0.125);
    const auto &k = kernels.front();
    auto prog = k.makeProgram(0, 0);
    for (const auto &op : prog) {
        if (op.type == GpuOpType::vload ||
            op.type == GpuOpType::vstore) {
            EXPECT_GE(op.pc, k.pcBase);
            EXPECT_LT(op.pc, k.pcBase + 0x1000);
        }
    }
}

// The property sweep covers the paper's 17 plus every registered
// extension (currently Attn).
INSTANTIATE_TEST_SUITE_P(AllRegistered, WorkloadSweep,
                         ::testing::ValuesIn(extendedWorkloadOrder()));

TEST(RnnWorkloads, TrainingHasMoreKernelsThanInference)
{
    auto fw = makeWorkload("FwLSTM");
    auto fwbw = makeWorkload("FwBwLSTM");
    EXPECT_GT(fwbw->kernels(0.25).size(), fw->kernels(0.25).size());
}

TEST(RnnWorkloads, InterStepBoundariesAreDeviceScope)
{
    auto kernels = makeWorkload("FwGRU")->kernels(0.25);
    ASSERT_GT(kernels.size(), 2u);
    // All but the last are device scope (weights stay in L2).
    for (std::size_t i = 0; i + 1 < kernels.size(); ++i)
        EXPECT_EQ(kernels[i].endScope, SyncScope::device);
}

TEST(ComposedModel, AlternatesKernelTypes)
{
    auto kernels = makeWorkload("CM")->kernels(0.25);
    ASSERT_GE(kernels.size(), 6u);
    EXPECT_EQ(kernels[0].name, "cmConvolution");
    EXPECT_EQ(kernels[1].name, "cmActivation");
    EXPECT_EQ(kernels[2].name, "cmPooling");
}
