/** @file End-to-end integration tests: full system runs on the tiny
 *  test configuration, validating the paper's qualitative effects. */

#include <gtest/gtest.h>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "core/system.hh"
#include "policy/cache_policy.hh"
#include "workloads/workload.hh"

using namespace migc;

namespace
{

RunMetrics
run(const std::string &workload, const std::string &policy,
    double scale = 0.0)
{
    SimConfig cfg = SimConfig::testConfig();
    if (scale > 0)
        cfg.workloadScale = scale;
    auto wl = makeWorkload(workload);
    return runWorkload(*wl, cfg, CachePolicy::fromName(policy));
}

} // namespace

TEST(Integration, FwSoftCompletesUnderEveryPolicy)
{
    for (const auto &p : CachePolicy::allPolicies()) {
        SimConfig cfg = SimConfig::testConfig();
        auto wl = makeWorkload("FwSoft");
        RunMetrics m = runWorkload(*wl, cfg, p);
        EXPECT_GT(m.execTicks, 0u) << p.name;
        EXPECT_GT(m.gpuMemRequests, 0.0) << p.name;
        EXPECT_GT(m.dramAccesses, 0.0) << p.name;
    }
}

TEST(Integration, DeterministicAcrossRuns)
{
    RunMetrics a = run("FwSoft", "CacheRW");
    RunMetrics b = run("FwSoft", "CacheRW");
    EXPECT_EQ(a.execTicks, b.execTicks);
    EXPECT_EQ(a.dramAccesses, b.dramAccesses);
    EXPECT_EQ(a.cacheStallCycles, b.cacheStallCycles);
}

TEST(Integration, ReadCachingCutsDramTrafficForReuseWorkload)
{
    RunMetrics unc = run("FwSoft", "Uncached");
    RunMetrics r = run("FwSoft", "CacheR");
    // Three read passes over a small buffer: caching must remove a
    // large fraction of DRAM reads.
    EXPECT_LT(r.dramReads, 0.7 * unc.dramReads);
}

TEST(Integration, WriteCachingCoalescesStores)
{
    RunMetrics r = run("BwBN", "CacheR");
    RunMetrics rw = run("BwBN", "CacheRW");
    // Accumulator rewrites coalesce in the L2.
    EXPECT_LT(rw.dramWrites, r.dramWrites);
}

TEST(Integration, UncachedDoesNotAllocate)
{
    RunMetrics m = run("FwSoft", "Uncached");
    EXPECT_EQ(m.l1Hits + m.l1Misses, 0.0);
    EXPECT_EQ(m.l2Hits + m.l2Misses, 0.0);
    EXPECT_EQ(m.l2Writebacks, 0.0);
}

TEST(Integration, CacheRNeverDirtiesTheL2)
{
    RunMetrics m = run("BwPool", "CacheR");
    EXPECT_EQ(m.l2Writebacks, 0.0);
    // All stores reached DRAM directly.
    EXPECT_GT(m.dramWrites, 0.0);
}

TEST(Integration, CacheRwFlushesAllDirtyDataByTheEnd)
{
    SimConfig cfg = SimConfig::testConfig();
    System sys(cfg, CachePolicy::fromName("CacheRW"));
    auto wl = makeWorkload("FwSoft");
    bool done = false;
    sys.gpu().dispatcher().run(wl->kernels(cfg.workloadScale),
                               [&done] { done = true; });
    sys.eventQueue().runUntil([&done] { return done; },
                              500'000'000ULL);
    ASSERT_TRUE(done);
    EXPECT_TRUE(sys.memSystemQuiescent());
    for (unsigned i = 0; i < sys.numL2Banks(); ++i) {
        EXPECT_EQ(sys.l2Bank(i).tags().countState(BlkState::dirty),
                  0u);
    }
    // After the remaining posted writes drain, DRAM is fully idle.
    sys.eventQueue().run();
    EXPECT_TRUE(sys.dram().allIdle());
}

TEST(Integration, RnnWeightsReuseAcrossSteps)
{
    // The weight matrix (512 KB) must fit the L2 for cross-step
    // reuse, so this test uses the default (1 MB L2) configuration
    // at a small sequence length.
    SimConfig cfg = SimConfig::defaultConfig();
    cfg.workloadScale = 0.125;
    auto wl = makeWorkload("FwLSTM");
    RunMetrics unc =
        runWorkload(*wl, cfg, CachePolicy::fromName("Uncached"));
    RunMetrics r =
        runWorkload(*wl, cfg, CachePolicy::fromName("CacheR"));
    // Weights are re-read every step from the L2 once cached.
    EXPECT_LT(r.dramReads, 0.7 * unc.dramReads);
}

TEST(Integration, AllocationBypassReducesStallCycles)
{
    RunMetrics rw = run("BwAct", "CacheRW");
    RunMetrics ab = run("BwAct", "CacheRW-AB");
    EXPECT_GT(ab.allocBypassed, 0.0);
    EXPECT_LT(ab.cacheStallCycles, rw.cacheStallCycles);
}

TEST(Integration, RinsingProducesRowClusteredWritebacks)
{
    RunMetrics cr = run("BwPool", "CacheRW-CR");
    EXPECT_GT(cr.rinseWritebacks, 0.0);
}

TEST(Integration, PredictorEngagesOnStreamingWorkload)
{
    RunMetrics pcby = run("FwLRN", "CacheRW-PCby");
    EXPECT_GT(pcby.predictorBypasses, 0.0);
}

TEST(Integration, GvopsAndGmrpsArePopulated)
{
    RunMetrics m = run("SGEMM", "CacheR");
    EXPECT_GT(m.gvops, 0.0);
    EXPECT_GT(m.gmrps, 0.0);
    EXPECT_GT(m.vops, 0.0);
}

TEST(Integration, GemmIsComputeHeavy)
{
    RunMetrics gemm = run("SGEMM", "CacheR");
    RunMetrics act = run("FwAct", "CacheR");
    // GVOPS per memory request: GEMM far above an activation stream.
    double gemm_intensity = gemm.vops / gemm.gpuMemRequests;
    double act_intensity = act.vops / act.gpuMemRequests;
    EXPECT_GT(gemm_intensity, 4.0 * act_intensity);
}

TEST(Integration, MultiKernelWorkloadLaunchesAllKernels)
{
    SimConfig cfg = SimConfig::testConfig();
    auto wl = makeWorkload("CM");
    auto expected = wl->kernels(cfg.workloadScale).size();
    RunMetrics m =
        runWorkload(*wl, cfg, CachePolicy::fromName("CacheRW"));
    EXPECT_EQ(m.kernels, static_cast<double>(expected));
}

TEST(Integration, StallAccountingOnlyWhenCachesQueried)
{
    RunMetrics unc = run("FwAct", "Uncached");
    RunMetrics r = run("FwAct", "CacheR");
    EXPECT_EQ(unc.cacheStallCycles, 0.0);
    EXPECT_GT(r.cacheStallCycles, 0.0);
}

/** Every workload completes under every policy on the test config. */
class FullMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, std::string>>
{};

TEST_P(FullMatrix, CompletesAndIsSane)
{
    auto [workload, policy] = GetParam();
    RunMetrics m = run(workload, policy);
    EXPECT_GT(m.execTicks, 0u);
    EXPECT_GT(m.dramAccesses, 0.0);
    EXPECT_EQ(m.workload, workload);
    EXPECT_EQ(m.policy, policy);
    // Row hit rate is a ratio.
    EXPECT_GE(m.dramRowHitRate, 0.0);
    EXPECT_LE(m.dramRowHitRate, 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    SweepFast, FullMatrix,
    ::testing::Combine(
        ::testing::Values("FwSoft", "BwSoft", "FwBN", "FwLSTM",
                          "FwBwGRU", "CM"),
        ::testing::Values("Uncached", "CacheR", "CacheRW",
                          "CacheRW-AB", "CacheRW-CR",
                          "CacheRW-PCby")));
