/** @file Tests for types, clock domains, RNG, stats, and logging. */

#include <gtest/gtest.h>

#include <sstream>

#include "mem/addr_utils.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/types.hh"

using namespace migc;

TEST(ClockDomain, CycleTickConversions)
{
    ClockDomain clk(625); // 1.6 GHz
    EXPECT_EQ(clk.cyclesToTicks(Cycles(4)), 2500u);
    EXPECT_EQ(clk.ticksToCycles(2500).value(), 4u);
    EXPECT_DOUBLE_EQ(clk.frequency(), 1.6e9);
}

TEST(ClockDomain, ClockEdgeAlignsUp)
{
    ClockDomain clk(1000);
    EXPECT_EQ(clk.clockEdge(0), 0u);
    EXPECT_EQ(clk.clockEdge(1), 1000u);
    EXPECT_EQ(clk.clockEdge(1000), 1000u);
    EXPECT_EQ(clk.clockEdge(1001, Cycles(2)), 4000u);
}

TEST(Cycles, Arithmetic)
{
    Cycles a(5), b(3);
    EXPECT_EQ((a + b).value(), 8u);
    EXPECT_EQ((a - b).value(), 2u);
    EXPECT_LT(b, a);
    a += Cycles(1);
    EXPECT_EQ(a.value(), 6u);
}

TEST(AddrUtils, PowersAndAlignment)
{
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(alignDown(0x1234, 64), 0x1200u);
    EXPECT_EQ(alignUp(0x1234, 64), 0x1240u);
    EXPECT_EQ(alignUp(0x1240, 64), 0x1240u);
}

TEST(AddrUtils, HashMixesBits)
{
    // Nearby inputs should map far apart (basic avalanche check).
    EXPECT_NE(hashAddr(1), hashAddr(2));
    EXPECT_NE(hashAddr(0x1000), hashAddr(0x1040));
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Csprintf, FormatsLikePrintf)
{
    EXPECT_EQ(csprintf("%d-%s", 42, "x"), "42-x");
    EXPECT_EQ(csprintf("%#llx", 255ULL), "0xff");
}

TEST(Stats, ScalarAccumulates)
{
    StatScalar s;
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.reset();
    EXPECT_DOUBLE_EQ(s.value(), 0.0);
}

TEST(Stats, AverageMean)
{
    StatAverage a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(2);
    a.sample(4);
    EXPECT_DOUBLE_EQ(a.mean(), 3.0);
    EXPECT_DOUBLE_EQ(a.count(), 2.0);
}

TEST(Stats, HistogramBucketsAndSaturation)
{
    StatHistogram h(0, 10, 5);
    h.sample(0.5);
    h.sample(9.5);
    h.sample(-3);  // clamps to first bucket
    h.sample(100); // clamps to last bucket
    EXPECT_DOUBLE_EQ(h.count(), 4.0);
    EXPECT_DOUBLE_EQ(h.buckets()[0], 2.0);
    EXPECT_DOUBLE_EQ(h.buckets()[4], 2.0);
    EXPECT_DOUBLE_EQ(h.minSample(), -3.0);
    EXPECT_DOUBLE_EQ(h.maxSample(), 100.0);
}

TEST(Stats, GroupPathsAndFormulas)
{
    StatGroup root;
    StatScalar hits, misses;
    hits += 30;
    misses += 10;
    auto &l1 = root.child("l1");
    l1.addScalar("hits", "", &hits);
    l1.addScalar("misses", "", &misses);
    l1.addFormula("hit_rate", "", [&] {
        return hits.value() / (hits.value() + misses.value());
    });
    EXPECT_DOUBLE_EQ(root.get("l1.hits"), 30.0);
    EXPECT_DOUBLE_EQ(root.get("l1.hit_rate"), 0.75);
    EXPECT_TRUE(root.has("l1.misses"));
    EXPECT_FALSE(root.has("l1.nothing"));
}

TEST(Stats, SumOverChildren)
{
    StatGroup root;
    StatScalar a, b;
    a += 5;
    b += 7;
    root.child("c0").addScalar("hits", "", &a);
    root.child("c1").addScalar("hits", "", &b);
    EXPECT_DOUBLE_EQ(root.sumOverChildren("hits"), 12.0);
}

TEST(Stats, FlattenAndDump)
{
    StatGroup root;
    StatScalar v;
    v += 1;
    root.child("x").addScalar("v", "a value", &v);
    std::map<std::string, double> flat;
    root.flatten(flat);
    EXPECT_EQ(flat.size(), 1u);
    EXPECT_DOUBLE_EQ(flat.at("x.v"), 1.0);

    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("x.v 1"), std::string::npos);
}
