/**
 * @file
 * The v4 binary columnar cache format: round-trip exactness, byte
 * determinism, O(fresh) checkpoint appends, torn-write rejection and
 * recovery, format migration (v3/v2 -> v4) with byte-identical CSV
 * export, the zero-copy mapped snapshot's parity with the parsed
 * one, and the mixed-format shard merge fallback. See
 * src/core/cache_v4.hh and docs/SWEEPS.md.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cache_snapshot.hh"
#include "core/cache_v4.hh"
#include "core/metrics.hh"
#include "core/shard.hh"
#include "core/sweep_engine.hh"

using namespace migc;

namespace
{

std::string
tempPath(const std::string &leaf)
{
    return ::testing::TempDir() + "migc_cache_v4_" + leaf;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
}

class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_)
            old_ = old;
        if (value)
            ::setenv(name, value, 1);
        else
            ::unsetenv(name);
    }

    ~ScopedEnv()
    {
        if (hadOld_)
            ::setenv(name_.c_str(), old_.c_str(), 1);
        else
            ::unsetenv(name_.c_str());
    }

  private:
    std::string name_;
    std::string old_;
    bool hadOld_;
};

/** A row with doubles no text format would round-trip exactly. */
RunMetrics
awkwardRow(const std::string &workload, const std::string &policy)
{
    RunMetrics m;
    m.workload = workload;
    m.policy = policy;
    m.execTicks = 123456789012345ull;
    m.execSeconds = 1.0 / 3.0;
    m.gpuMemRequests = 2.0 / 7.0;
    m.dramReads = 1e-300;
    m.dramWrites = 9.87654321e200;
    m.dramAccesses = 0.1;
    m.dramRowHitRate = 0.30000000000000004; // 0.1 + 0.2
    m.cacheStallCycles = 1.0;
    m.stallsPerRequest = 3.0e-9;
    m.vops = 7.0;
    m.gvops = 1234.5678901234567;
    m.gmrps = 2.5;
    m.l1Hits = 42.0;
    m.simEvents = 1e6 + 0.25;
    return m;
}

/** A plain deterministic row. Whole-number doubles only, so the
 *  row survives a v3 text round trip bit-exactly (the mixed-format
 *  merge test compares across serializations). */
RunMetrics
simpleRow(const std::string &workload, const std::string &policy,
          double seedv)
{
    RunMetrics m;
    m.workload = workload;
    m.policy = policy;
    m.execTicks = static_cast<Tick>(1000 + seedv);
    m.execSeconds = seedv;
    m.dramAccesses = seedv + 1.0;
    m.simEvents = seedv * 3 + 1;
    return m;
}

} // namespace

// ---------------------------------------------------------------
// Round-trip and byte determinism
// ---------------------------------------------------------------

TEST(CacheV4, RoundTripPreservesExactDoubles)
{
    const std::string path = tempPath("roundtrip");
    std::remove(path.c_str());
    const RunMetrics planted = awkwardRow("FwSoft", "CacheRW");
    {
        RunCache rc(path, 100, CacheFormat::v4);
        rc.insert("sig-a", planted);
        rc.flush();
    }
    RunCache rc(path, 100, CacheFormat::v4);
    const RunMetrics *held = rc.find("sig-a", "FwSoft", "CacheRW");
    ASSERT_NE(held, nullptr);
    // Exact equality, not near-equality: the binary format stores
    // the doubles bit-for-bit, unlike the rounding v3 text columns.
    EXPECT_EQ(held->execTicks, planted.execTicks);
    EXPECT_EQ(held->execSeconds, planted.execSeconds);
    EXPECT_EQ(held->gpuMemRequests, planted.gpuMemRequests);
    EXPECT_EQ(held->dramReads, planted.dramReads);
    EXPECT_EQ(held->dramWrites, planted.dramWrites);
    EXPECT_EQ(held->dramRowHitRate, planted.dramRowHitRate);
    EXPECT_EQ(held->stallsPerRequest, planted.stallsPerRequest);
    EXPECT_EQ(held->gvops, planted.gvops);
    EXPECT_EQ(held->simEvents, planted.simEvents);
    std::remove(path.c_str());
}

TEST(CacheV4, FileBytesAreAPureFunctionOfTheRowSet)
{
    // Same rows inserted in different orders, different checkpoint
    // histories: the flushed files must be byte-identical.
    const std::string a = tempPath("determ_a");
    const std::string b = tempPath("determ_b");
    std::remove(a.c_str());
    std::remove(b.c_str());

    std::vector<std::pair<std::string, RunMetrics>> rows;
    for (int i = 0; i < 20; ++i) {
        const std::string sig = i % 3 ? "sig-x" : "sig-y";
        rows.emplace_back(
            sig, simpleRow("w" + std::to_string(i % 5),
                           "p" + std::to_string(i / 5), i * 7.0));
    }

    {
        RunCache rc(a, 1000, CacheFormat::v4);
        for (const auto &[sig, m] : rows)
            rc.insert(sig, m);
        rc.flush();
    }
    {
        // Reverse order, tiny checkpoint interval (many appends).
        RunCache rc(b, 2, CacheFormat::v4);
        for (auto it = rows.rbegin(); it != rows.rend(); ++it)
            rc.insert(it->first, it->second);
        rc.flush();
    }
    EXPECT_EQ(readFile(a), readFile(b));
    std::remove(a.c_str());
    std::remove(b.c_str());
}

// ---------------------------------------------------------------
// Checkpoints append; flush compacts
// ---------------------------------------------------------------

TEST(CacheV4, CheckpointAppendsSegmentsInsteadOfRewriting)
{
    const std::string path = tempPath("appends");
    std::remove(path.c_str());
    RunCache rc(path, 1000, CacheFormat::v4);

    rc.insert("sig-a", simpleRow("w0", "p0", 1));
    rc.insert("sig-a", simpleRow("w1", "p0", 2));
    rc.checkpoint(); // absent file: first durable write compacts
    EXPECT_EQ(v4SegmentCount(path), 1u);
    const std::string after_first = readFile(path);

    rc.insert("sig-b", simpleRow("w0", "p0", 3));
    rc.checkpoint(); // clean v4 file: O(fresh) append
    EXPECT_EQ(v4SegmentCount(path), 2u);
    // The first segment's bytes are untouched - the checkpoint only
    // appended.
    EXPECT_EQ(readFile(path).compare(0, after_first.size(),
                                     after_first),
              0);

    rc.insert("sig-c", simpleRow("w9", "p9", 4));
    rc.checkpoint();
    EXPECT_EQ(v4SegmentCount(path), 3u);

    // A fresh cache reads the appended file whole.
    {
        RunCache other(path, 1000, CacheFormat::v4);
        EXPECT_EQ(other.size(), 4u);
        EXPECT_EQ(other.parseErrors(), 0u);
        EXPECT_NE(other.find("sig-c", "w9", "p9"), nullptr);
    }

    // flush() compacts: one canonical segment, mmap-servable.
    rc.flush();
    EXPECT_EQ(v4SegmentCount(path), 1u);
    std::string why;
    EXPECT_NE(MappedCacheV4::map(path, &why), nullptr) << why;
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Torn writes: rejection and recovery
// ---------------------------------------------------------------

TEST(CacheV4, TruncatedFooterIsRejectedLoudly)
{
    const std::string path = tempPath("truncated");
    std::remove(path.c_str());
    {
        RunCache rc(path, 100, CacheFormat::v4);
        for (int i = 0; i < 5; ++i)
            rc.insert("sig-a", simpleRow("w" + std::to_string(i),
                                         "p0", i));
        rc.flush();
    }
    const std::string clean = readFile(path);
    writeFile(path, clean.substr(0, clean.size() - 9));

    // The parsing loader refuses the damaged segment and counts the
    // loss; nothing is served from it.
    RunCache rc(path, 100, CacheFormat::v4);
    EXPECT_EQ(rc.size(), 0u);
    EXPECT_GE(rc.parseErrors(), 1u);

    // The zero-copy mapper refuses it outright.
    std::string why;
    EXPECT_EQ(MappedCacheV4::map(path, &why), nullptr);
    EXPECT_FALSE(why.empty());
    std::remove(path.c_str());
}

TEST(CacheV4, CorruptedByteFailsTheChecksum)
{
    const std::string path = tempPath("corrupt");
    std::remove(path.c_str());
    {
        RunCache rc(path, 100, CacheFormat::v4);
        rc.insert("sig-a", awkwardRow("FwSoft", "CacheRW"));
        rc.flush();
    }
    std::string bytes = readFile(path);
    bytes[bytes.size() / 2] ^= 0x40; // flip one bit mid-file
    writeFile(path, bytes);

    RunCache rc(path, 100, CacheFormat::v4);
    EXPECT_EQ(rc.size(), 0u);
    EXPECT_GE(rc.parseErrors(), 1u);
    std::string why;
    EXPECT_EQ(MappedCacheV4::map(path, &why), nullptr);
    std::remove(path.c_str());
}

TEST(CacheV4, CrashMidAppendLosesOnlyTheTornSegment)
{
    const std::string path = tempPath("torn_append");
    std::remove(path.c_str());

    // A clean two-segment file (one compact write + one append)...
    std::string two_segments;
    {
        RunCache rc(path, 1000, CacheFormat::v4);
        rc.insert("sig-a", simpleRow("w0", "p0", 1));
        rc.insert("sig-a", simpleRow("w1", "p0", 2));
        rc.checkpoint();
        rc.insert("sig-b", simpleRow("w2", "p0", 3));
        rc.checkpoint();
        ASSERT_EQ(v4SegmentCount(path), 2u);
        two_segments = readFile(path);
    }
    // ... whose dtor flush then compacted it. Restore the pre-crash
    // two-segment bytes and tear the second append mid-write.
    const std::string torn =
        two_segments.substr(0, two_segments.size() - 21);
    writeFile(path, torn);

    // Reload: the clean first segment survives, the torn tail is a
    // counted parse error, not silent loss of the whole file.
    RunCache rc(path, 1000, CacheFormat::v4);
    EXPECT_EQ(rc.size(), 2u);
    EXPECT_GE(rc.parseErrors(), 1u);
    EXPECT_NE(rc.find("sig-a", "w0", "p0"), nullptr);
    EXPECT_EQ(rc.find("sig-b", "w2", "p0"), nullptr);

    // The next durable write must compact (appending after the
    // garbage tail would strand unreachable bytes forever).
    rc.insert("sig-c", simpleRow("w5", "p5", 9));
    rc.checkpoint();
    EXPECT_EQ(v4SegmentCount(path), 1u);
    {
        RunCache healed(path, 1000, CacheFormat::v4);
        EXPECT_EQ(healed.size(), 3u);
        EXPECT_EQ(healed.parseErrors(), 0u);
    }

    // And the healed bytes equal a never-crashed cache holding the
    // same rows: crash history does not leak into the file.
    const std::string ref = tempPath("torn_append_ref");
    std::remove(ref.c_str());
    {
        RunCache rr(ref, 1000, CacheFormat::v4);
        rr.insert("sig-a", simpleRow("w0", "p0", 1));
        rr.insert("sig-a", simpleRow("w1", "p0", 2));
        rr.insert("sig-c", simpleRow("w5", "p5", 9));
        rr.flush();
    }
    rc.flush();
    EXPECT_EQ(readFile(path), readFile(ref));
    std::remove(path.c_str());
    std::remove(ref.c_str());
}

// ---------------------------------------------------------------
// Format migration
// ---------------------------------------------------------------

TEST(CacheV4, V3LoadSaveExportIsByteIdenticalToTheTextPipeline)
{
    // Build a reference v3 text cache, migrate it through v4, and
    // export back to csv: the exported bytes must equal the
    // original text file exactly.
    const std::string v3 = tempPath("migrate_v3");
    const std::string v4 = tempPath("migrate_v4");
    const std::string out = tempPath("migrate_out");
    std::remove(v3.c_str());
    std::remove(v4.c_str());
    std::remove(out.c_str());
    {
        RunCache rc(v3, 100, CacheFormat::csv);
        for (int i = 0; i < 12; ++i)
            rc.insert(i % 2 ? "sig-a" : "sig-b",
                      simpleRow("w" + std::to_string(i), "p", i));
        rc.flush();
    }
    const std::string v3_bytes = readFile(v3);

    {
        // Load the text file into a v4-writing cache and save: the
        // file migrates to binary.
        RunCache rc(v3, 100, CacheFormat::v4);
        EXPECT_EQ(rc.size(), 12u);
        ASSERT_TRUE(rc.exportFile(v4, CacheFormat::v4));
    }
    {
        RunCache rc(v4, 100, CacheFormat::v4);
        EXPECT_EQ(rc.size(), 12u);
        ASSERT_TRUE(rc.exportFile(out, CacheFormat::csv));
    }
    EXPECT_EQ(readFile(out), v3_bytes);
    std::remove(v3.c_str());
    std::remove(v4.c_str());
    std::remove(out.c_str());
}

TEST(CacheV4, LegacyV2RowsSurviveMigrationAsAForeignSection)
{
    const std::string path = tempPath("migrate_v2");
    std::remove(path.c_str());
    const std::string old_sig =
        "test:cus4:l2x4:64kB:ch4:scale0.125:seed1";
    RunMetrics planted = simpleRow("FwSoft", "CacheRW", 5);
    std::string row = planted.toCsv();
    row = row.substr(0, row.rfind(',')); // no sim_events column
    writeFile(path, "# migc-sweep-v2 " + old_sig +
                        "\nworkload,policy,...legacy header...\n" +
                        row + "\n");

    {
        // Loading the v2 file and saving writes v4; the legacy rows
        // ride along as a preserved (never served) section.
        RunCache rc(path, 100, CacheFormat::v4);
        rc.insert("sig-new", simpleRow("w0", "p0", 1));
        ASSERT_TRUE(rc.saveNow());
    }
    std::string why;
    EXPECT_NE(MappedCacheV4::map(path, &why), nullptr) << why;

    RunCache rc(path, 100, CacheFormat::v4);
    EXPECT_EQ(rc.size(), 2u);
    // The legacy row kept its key and its data (sim_events
    // defaulted to 0 by the v2 importer).
    const RunMetrics *held = rc.find(old_sig, "FwSoft", "CacheRW");
    ASSERT_NE(held, nullptr);
    EXPECT_EQ(held->toCsv(), row + ",0");
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Mapped snapshot parity
// ---------------------------------------------------------------

TEST(CacheV4, MappedSnapshotAnswersExactlyLikeTheParsedOne)
{
    const std::string path = tempPath("parity");
    std::remove(path.c_str());
    RunCache rc(path, 1000, CacheFormat::v4);
    for (int s = 0; s < 3; ++s)
        for (int w = 0; w < 4; ++w)
            for (int p = 0; p < 4; ++p)
                rc.insert("sig-" + std::to_string(s),
                          simpleRow("w" + std::to_string(w),
                                    "p" + std::to_string(p),
                                    s * 16 + w * 4 + p));
    rc.flush();
    auto parsed = rc.snapshot();

    std::string why;
    auto file = MappedCacheV4::map(path, &why);
    ASSERT_NE(file, nullptr) << why;
    auto mapped = CacheSnapshot::fromMappedFile(std::move(file));

    EXPECT_TRUE(mapped->mapped());
    EXPECT_EQ(mapped->rows(), parsed->rows());
    EXPECT_EQ(mapped->sectionCount(), parsed->sectionCount());

    // Exact lookups: same hit set, same serialized row bytes.
    for (int s = 0; s < 3; ++s) {
        for (int w = 0; w < 4; ++w) {
            for (int p = 0; p < 4; ++p) {
                const std::string sig = "sig-" + std::to_string(s);
                const std::string wl = "w" + std::to_string(w);
                const std::string po = "p" + std::to_string(p);
                std::string a, b;
                ASSERT_TRUE(mapped->findCsv(sig, wl, po, a));
                ASSERT_TRUE(parsed->findCsv(sig, wl, po, b));
                EXPECT_EQ(a, b);
            }
        }
    }
    std::string none;
    EXPECT_FALSE(mapped->findCsv("sig-0", "w0", "nope", none));

    // Glob queries: identical multi-line answers, canonical order.
    for (const char *pat : {"*", "w1", "w?", "*2"}) {
        std::string a, b;
        const std::size_t na = mapped->matchCsv("*", pat, "*", a);
        const std::size_t nb = parsed->matchCsv("*", pat, "*", b);
        EXPECT_EQ(na, nb);
        EXPECT_EQ(a, b);
    }

    // Scheduler cost estimates agree (max simEvents per key).
    EXPECT_EQ(mapped->estimateEvents("w3", "p3"),
              parsed->estimateEvents("w3", "p3"));
    EXPECT_EQ(mapped->estimateEvents("w0", "absent"),
              parsed->estimateEvents("w0", "absent"));
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Shard merge across formats
// ---------------------------------------------------------------

TEST(CacheV4, MixedFormatShardMergeMatchesTheAllV4Merge)
{
    // Shard 0 checkpointed v4, shard 1 wrote csv (e.g. an operator
    // override mid-fleet): the coordinator join must still merge
    // both, and the resulting row set must match an all-v4 fleet.
    ScopedEnv fmt("MIGC_CACHE_FORMAT", nullptr); // default: v4
    const std::string mixed = tempPath("merge_mixed");
    const std::string pure = tempPath("merge_pure");
    for (const std::string &base : {mixed, pure}) {
        std::remove(base.c_str());
        for (unsigned i = 0; i < 2; ++i)
            std::remove(shardCachePath(base, i).c_str());
    }

    auto fill = [](RunCache &rc, unsigned shard) {
        for (int i = 0; i < 6; ++i)
            rc.insert("sig-a",
                      simpleRow("w" + std::to_string(i * 2 + shard),
                                "p0", i * 2.0 + shard));
        rc.flush();
    };
    {
        RunCache s0(shardCachePath(mixed, 0), 100, CacheFormat::v4);
        fill(s0, 0);
        RunCache s1(shardCachePath(mixed, 1), 100, CacheFormat::csv);
        fill(s1, 1);
        RunCache p0(shardCachePath(pure, 0), 100, CacheFormat::v4);
        fill(p0, 0);
        RunCache p1(shardCachePath(pure, 1), 100, CacheFormat::v4);
        fill(p1, 1);
    }

    const ShardMergeStats a = mergeShardCaches(mixed, 2);
    const ShardMergeStats b = mergeShardCaches(pure, 2);
    EXPECT_EQ(a.files, 2u);
    EXPECT_EQ(a.rows, 12u);
    EXPECT_EQ(b.rows, 12u);
    EXPECT_EQ(a.parseErrors, 0u);

    // Both canonical files are v4 (the configured write format) and
    // hold identical row sets; the all-v4 join (zero-copy k-way)
    // and the fallback (RunCache) must serialize identically.
    EXPECT_EQ(readFile(mixed), readFile(pure));
    const std::string probe = readFile(mixed);
    ASSERT_GE(probe.size(), 8u);
    EXPECT_EQ(probe.substr(0, 8), "MIGC4SEG");

    std::remove(mixed.c_str());
    std::remove(pure.c_str());
}

// ---------------------------------------------------------------
// Glob matcher: adversarial input stays linear-ish
// ---------------------------------------------------------------

TEST(GlobMatch, AdversarialStarChainsDoNotBlowUp)
{
    // The classic exponential killer for recursive matchers:
    // many '*'s that each have to try every split point, against a
    // text that almost matches. The iterative matcher is
    // O(|pattern| * |text|); give it a generous wall-clock bound
    // that any backtracking blowup would miss by orders of
    // magnitude.
    const std::string text(4000, 'a');
    std::string pattern;
    for (int i = 0; i < 40; ++i)
        pattern += "a*";
    pattern += 'b'; // never matches: text has no 'b'

    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(globMatch(pattern, text));
    EXPECT_TRUE(globMatch(pattern + "*", text + 'b'));
    EXPECT_FALSE(globMatch("*a?b*", text));
    const double secs =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - t0)
            .count();
    EXPECT_LT(secs, 5.0) << "glob matching went super-linear";

    // And the basics still hold.
    EXPECT_TRUE(globMatch("*", ""));
    EXPECT_TRUE(globMatch("a*c", "abc"));
    EXPECT_FALSE(globMatch("a*c", "abd"));
    EXPECT_TRUE(globMatch("?*?", "ab"));
    EXPECT_FALSE(globMatch("?*?", "a"));
}
