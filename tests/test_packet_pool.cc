/** @file Unit tests for the PacketPool freelist recycler. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/packet_pool.hh"

using namespace migc;

TEST(PacketPool, StartsEmpty)
{
    PacketPool pool;
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(pool.freeCount(), 0u);
    EXPECT_EQ(pool.capacity(), 0u);
}

TEST(PacketPool, AllocConstructsAValidPacket)
{
    PacketPool pool;
    Packet *pkt = pool.alloc(MemCmd::ReadReq, 0x1040, 64, 77);
    ASSERT_NE(pkt, nullptr);
    EXPECT_EQ(pkt->cmd, MemCmd::ReadReq);
    EXPECT_EQ(pkt->addr, 0x1040u);
    EXPECT_EQ(pkt->size, 64u);
    EXPECT_EQ(pkt->creationTick, 77u);
    EXPECT_EQ(pkt->flags, pktFlagNone);
    EXPECT_EQ(pkt->pc, 0u);
    EXPECT_EQ(pkt->cuId, -1);
    EXPECT_EQ(pool.liveCount(), 1u);
    pool.release(pkt);
}

TEST(PacketPool, ReusesReleasedSlotsLifo)
{
    PacketPool pool;
    Packet *a = pool.alloc(MemCmd::ReadReq, 0x40, 64, 0);
    pool.release(a);
    Packet *b = pool.alloc(MemCmd::WriteReq, 0x80, 64, 1);
    // Same storage, freshly constructed state.
    EXPECT_EQ(static_cast<void *>(a), static_cast<void *>(b));
    EXPECT_EQ(b->cmd, MemCmd::WriteReq);
    EXPECT_EQ(b->addr, 0x80u);
    EXPECT_EQ(b->flags, pktFlagNone);
    pool.release(b);
}

TEST(PacketPool, ResetClearsStaleFieldsOnReuse)
{
    PacketPool pool;
    Packet *a = pool.alloc(MemCmd::ReadReq, 0x40, 64, 0);
    a->setFlag(pktFlagBypass);
    a->pc = 0xdead;
    a->cuId = 5;
    a->makeResponse();
    pool.release(a);

    Packet *b = pool.alloc(MemCmd::ReadReq, 0x40, 64, 0);
    EXPECT_EQ(b->cmd, MemCmd::ReadReq);
    EXPECT_FALSE(b->hasFlag(pktFlagBypass));
    EXPECT_EQ(b->pc, 0u);
    EXPECT_EQ(b->cuId, -1);
    pool.release(b);
}

TEST(PacketPool, IdsStayMonotonicAcrossReuse)
{
    PacketPool pool;
    std::uint64_t last = 0;
    for (int i = 0; i < 1000; ++i) {
        Packet *pkt = pool.alloc(MemCmd::ReadReq, 0x40, 64, 0);
        EXPECT_GT(pkt->id, last);
        last = pkt->id;
        pool.release(pkt);
    }
}

TEST(PacketPool, GrowsInChunksAndTracksCounts)
{
    PacketPool pool;
    std::vector<Packet *> pkts;
    for (int i = 0; i < 300; ++i)
        pkts.push_back(pool.alloc(MemCmd::ReadReq, 0x40u * i, 64, 0));
    EXPECT_EQ(pool.liveCount(), 300u);
    EXPECT_GE(pool.capacity(), 300u);
    for (Packet *pkt : pkts)
        pool.release(pkt);
    EXPECT_EQ(pool.liveCount(), 0u);
    EXPECT_EQ(pool.freeCount(), pool.capacity());
}

TEST(PacketPool, SteadyStateTrafficDoesNotGrowCapacity)
{
    PacketPool pool;
    std::vector<Packet *> live;
    // A bounded in-flight population recycled many times over must
    // never need more than the first chunk.
    for (int round = 0; round < 10'000; ++round) {
        while (live.size() < 16) {
            live.push_back(
                pool.alloc(MemCmd::ReadReq, 0x40u * round, 64, 0));
        }
        while (!live.empty()) {
            pool.release(live.back());
            live.pop_back();
        }
    }
    EXPECT_EQ(pool.capacity(), 256u);
}

TEST(PacketPool, ReleaseNullIsANoop)
{
    PacketPool pool;
    pool.release(nullptr);
    EXPECT_EQ(pool.liveCount(), 0u);
}
