/**
 * @file
 * Proves the simulation hot path performs zero heap allocations at
 * the default log level: event scheduling/servicing/rescheduling
 * never allocates (intrusive heap, no name-string construction), and
 * pooled packet alloc/release recycles storage.
 *
 * The whole test binary overrides global operator new/delete with a
 * counting wrapper; counting is only armed inside measurement
 * windows, after warmup has sized every lazily-grown structure.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "core/runner.hh"
#include "core/sim_config.hh"
#include "core/system.hh"
#include "mem/packet_pool.hh"
#include "policy/cache_policy.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace
{

bool countingArmed = false;
std::uint64_t allocCount = 0;

} // namespace

void *
operator new(std::size_t size)
{
    if (countingArmed)
        ++allocCount;
    void *p = std::malloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    if (countingArmed)
        ++allocCount;
    void *p = std::malloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using namespace migc;

struct CountingScope
{
    CountingScope()
    {
        allocCount = 0;
        countingArmed = true;
    }

    ~CountingScope() { countingArmed = false; }

    std::uint64_t
    stop()
    {
        countingArmed = false;
        return allocCount;
    }
};

TEST(HotPathAlloc, DefaultLogLevelDoesNotTrace)
{
    // The suite's premise: per-event name construction only happens
    // at trace level, which is never the default.
    EXPECT_LT(logLevel(), LogLevel::trace);
}

TEST(HotPathAlloc, ScheduleServiceLoopIsAllocationFree)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "hot");
    // Warmup: grow the heap slot vector once.
    for (int i = 0; i < 256; ++i) {
        eq.schedule(&ev, eq.curTick() + 1);
        eq.serviceOne();
    }

    CountingScope scope;
    for (int i = 0; i < 100'000; ++i) {
        eq.schedule(&ev, eq.curTick() + 1);
        eq.serviceOne();
    }
    EXPECT_EQ(scope.stop(), 0u);
}

TEST(HotPathAlloc, RescheduleIsAllocationFree)
{
    EventQueue eq;
    EventFunctionWrapper a([] {}, "a");
    EventFunctionWrapper b([] {}, "b");
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);

    CountingScope scope;
    for (int i = 0; i < 100'000; ++i) {
        eq.reschedule(&a, 10 + i);
        eq.reschedule(&b, 20 + i);
    }
    EXPECT_EQ(scope.stop(), 0u);
    eq.run();
}

TEST(HotPathAlloc, SystemResetKeepsAllocationsWarm)
{
    // The sweep engine re-runs workloads on a reset System. Three
    // guarantees keep that path warm: (1) reset() itself never
    // allocates - it recycles the event heap, tag/DBI storage, pool
    // chunks, and queue buffers in place; (2) warm re-runs reach an
    // allocation steady state (consecutive reset+run cycles allocate
    // exactly the same amount - nothing accumulates or regrows);
    // (3) a warm re-run allocates far less than building a fresh
    // System, which is the point of reuse. Remaining steady-state
    // allocations come from per-run workload program generation, not
    // from the simulation infrastructure.
    SimConfig cfg = SimConfig::testConfig();
    const CachePolicy policy = CachePolicy::fromName("CacheRW");
    const std::uint64_t seed = runSeedFor(cfg, "BwSoft", "CacheRW");

    SimConfig run_cfg = cfg;
    run_cfg.seed = seed;
    System sys(run_cfg, policy);
    auto wl = makeWorkload("BwSoft");
    runWorkloadOn(sys, *wl); // warm every lazily-grown structure

    std::uint64_t reset_allocs = 0;
    {
        CountingScope scope;
        sys.reset(policy, seed);
        reset_allocs = scope.stop();
    }
    EXPECT_EQ(reset_allocs, 0u);

    // One untimed warm cycle so later cycles start from identical
    // container capacities, then two measured cycles.
    runWorkloadOn(sys, *wl);
    std::uint64_t warm_first = 0;
    std::uint64_t warm_second = 0;
    {
        CountingScope scope;
        sys.reset(policy, seed);
        runWorkloadOn(sys, *wl);
        warm_first = scope.stop();
    }
    {
        CountingScope scope;
        sys.reset(policy, seed);
        runWorkloadOn(sys, *wl);
        warm_second = scope.stop();
    }
    EXPECT_EQ(warm_first, warm_second);

    std::uint64_t fresh = 0;
    {
        CountingScope scope;
        System fresh_sys(run_cfg, policy);
        runWorkloadOn(fresh_sys, *wl);
        fresh = scope.stop();
    }
    EXPECT_LT(warm_second, fresh);
}

TEST(HotPathAlloc, DynamicPolicyResetIsAllocationFree)
{
    // The dynamic policies (PR 4) add run-time state - the duel's
    // PSEL, per-set sample counters in Tags, the rinse EWMA - and
    // all of it must reset in place like every other component.
    SimConfig cfg = SimConfig::testConfig();
    const CachePolicy policy = CachePolicy::fromName("CacheRW-Duel");
    const std::uint64_t seed = runSeedFor(cfg, "BwSoft", "CacheRW-Duel");

    SimConfig run_cfg = cfg;
    run_cfg.seed = seed;
    System sys(run_cfg, policy);
    auto wl = makeWorkload("BwSoft");
    runWorkloadOn(sys, *wl); // warm every lazily-grown structure

    CountingScope scope;
    sys.reset(policy, seed);
    EXPECT_EQ(scope.stop(), 0u);
}

TEST(HotPathAlloc, PooledPacketTrafficIsAllocationFree)
{
    PacketPool pool;
    // Warmup: populate the first chunk.
    {
        Packet *pkt = pool.alloc(MemCmd::ReadReq, 0x40, 64, 0);
        pool.release(pkt);
    }

    CountingScope scope;
    for (int i = 0; i < 100'000; ++i) {
        Packet *pkt = pool.alloc(MemCmd::ReadReq, 0x40u * i, 64, 0);
        pkt->setFlag(pktFlagBypass);
        pkt->makeResponse();
        pool.release(pkt);
    }
    EXPECT_EQ(scope.stop(), 0u);
}

} // namespace
