/**
 * @file
 * Proves the simulation hot path performs zero heap allocations at
 * the default log level: event scheduling/servicing/rescheduling
 * never allocates (intrusive heap, no name-string construction), and
 * pooled packet alloc/release recycles storage.
 *
 * The whole test binary overrides global operator new/delete with a
 * counting wrapper; counting is only armed inside measurement
 * windows, after warmup has sized every lazily-grown structure.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "mem/packet_pool.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"

namespace
{

bool countingArmed = false;
std::uint64_t allocCount = 0;

} // namespace

void *
operator new(std::size_t size)
{
    if (countingArmed)
        ++allocCount;
    void *p = std::malloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    if (countingArmed)
        ++allocCount;
    void *p = std::malloc(size);
    if (p == nullptr)
        throw std::bad_alloc();
    return p;
}

void operator delete(void *p) noexcept { std::free(p); }
void operator delete(void *p, std::size_t) noexcept { std::free(p); }
void operator delete[](void *p) noexcept { std::free(p); }
void operator delete[](void *p, std::size_t) noexcept { std::free(p); }

namespace
{

using namespace migc;

struct CountingScope
{
    CountingScope()
    {
        allocCount = 0;
        countingArmed = true;
    }

    ~CountingScope() { countingArmed = false; }

    std::uint64_t
    stop()
    {
        countingArmed = false;
        return allocCount;
    }
};

TEST(HotPathAlloc, DefaultLogLevelDoesNotTrace)
{
    // The suite's premise: per-event name construction only happens
    // at trace level, which is never the default.
    EXPECT_LT(logLevel(), LogLevel::trace);
}

TEST(HotPathAlloc, ScheduleServiceLoopIsAllocationFree)
{
    EventQueue eq;
    EventFunctionWrapper ev([] {}, "hot");
    // Warmup: grow the heap slot vector once.
    for (int i = 0; i < 256; ++i) {
        eq.schedule(&ev, eq.curTick() + 1);
        eq.serviceOne();
    }

    CountingScope scope;
    for (int i = 0; i < 100'000; ++i) {
        eq.schedule(&ev, eq.curTick() + 1);
        eq.serviceOne();
    }
    EXPECT_EQ(scope.stop(), 0u);
}

TEST(HotPathAlloc, RescheduleIsAllocationFree)
{
    EventQueue eq;
    EventFunctionWrapper a([] {}, "a");
    EventFunctionWrapper b([] {}, "b");
    eq.schedule(&a, 10);
    eq.schedule(&b, 20);

    CountingScope scope;
    for (int i = 0; i < 100'000; ++i) {
        eq.reschedule(&a, 10 + i);
        eq.reschedule(&b, 20 + i);
    }
    EXPECT_EQ(scope.stop(), 0u);
    eq.run();
}

TEST(HotPathAlloc, PooledPacketTrafficIsAllocationFree)
{
    PacketPool pool;
    // Warmup: populate the first chunk.
    {
        Packet *pkt = pool.alloc(MemCmd::ReadReq, 0x40, 64, 0);
        pool.release(pkt);
    }

    CountingScope scope;
    for (int i = 0; i < 100'000; ++i) {
        Packet *pkt = pool.alloc(MemCmd::ReadReq, 0x40u * i, 64, 0);
        pkt->setFlag(pktFlagBypass);
        pkt->makeResponse();
        pool.release(pkt);
    }
    EXPECT_EQ(scope.stop(), 0u);
}

} // namespace
