/**
 * @file
 * Packet send queues that honor ready-ticks and retry flow control.
 *
 * RespPacketQueue delays responses until their ready tick, then
 * delivers them (responses are never refused).
 *
 * ReqPacketQueue delays requests, sends them in order, and handles
 * the busy/retry dance with the downstream port. It is bounded so
 * back-pressure propagates to the owner via full().
 */

#ifndef MIGC_MEM_PACKET_QUEUE_HH
#define MIGC_MEM_PACKET_QUEUE_HH

#include <cstddef>
#include <deque>
#include <functional>
#include <string>

#include "mem/packet.hh"
#include "mem/port.hh"
#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace migc
{

/** Delayed, in-order delivery of responses through a ResponsePort. */
class RespPacketQueue
{
  public:
    RespPacketQueue(EventQueue &eq, ResponsePort &port, std::string name);

    /** Queue @p pkt for delivery at absolute tick @p ready (>= now). */
    void push(PacketPtr pkt, Tick ready);

    bool empty() const { return queue_.empty(); }

    std::size_t size() const { return queue_.size(); }

    /** Drop all entries (System::reset(); owner reclaims packets). */
    void reset() { queue_.clear(); }

  private:
    void drain();

    struct Entry
    {
        Tick ready;
        PacketPtr pkt;
    };

    EventQueue &eventq_;
    ResponsePort &port_;
    std::deque<Entry> queue_; ///< sorted by ready tick (insertion sort)
    EventFunctionWrapper drainEvent_;
};

/**
 * Delayed, in-order delivery of requests through a RequestPort,
 * with retry handling. The owner must consult full() before pushing
 * and may register a callback to learn when space frees up.
 */
class ReqPacketQueue
{
  public:
    ReqPacketQueue(EventQueue &eq, RequestPort &port, std::string name,
                   std::size_t max_size);

    /** Queue @p pkt to be sent at/after absolute tick @p ready. */
    void push(PacketPtr pkt, Tick ready);

    bool full() const { return queue_.size() >= maxSize_; }

    bool empty() const { return queue_.size() == 0; }

    std::size_t size() const { return queue_.size(); }

    /** Owner forwards the port's recvReqRetry() here. */
    void retry();

    /** Invoked whenever an entry leaves the queue (space freed). */
    void
    onSpaceFreed(std::function<void()> cb)
    {
        spaceFreed_ = std::move(cb);
    }

    /** Drop all entries and any retry-wait (System::reset()). */
    void
    reset()
    {
        queue_.clear();
        waitingRetry_ = false;
    }

  private:
    void trySend();

    struct Entry
    {
        Tick ready;
        PacketPtr pkt;
    };

    EventQueue &eventq_;
    RequestPort &port_;
    std::size_t maxSize_;
    std::deque<Entry> queue_;
    bool waitingRetry_ = false;
    std::function<void()> spaceFreed_;
    EventFunctionWrapper sendEvent_;
};

} // namespace migc

#endif // MIGC_MEM_PACKET_QUEUE_HH
