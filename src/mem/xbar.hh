/**
 * @file
 * A simple address-routed crossbar between the per-CU L1 caches and
 * the banked shared L2.
 *
 * Requests are routed by a caller-supplied address->output mapping;
 * each output has a bounded queue with a fixed traversal latency and
 * a minimum inter-packet gap (one packet per cycle), so over-driven
 * banks push back on the L1s via retries. Responses are routed back
 * to the originating input port.
 */

#ifndef MIGC_MEM_XBAR_HH
#define MIGC_MEM_XBAR_HH

#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace migc
{

class XBar : public SimObject
{
  public:
    struct Config
    {
        unsigned numInputs = 1;
        unsigned numOutputs = 1;
        /** One-way traversal latency in this object's cycles. */
        Cycles latency{8};
        /** Minimum gap between packets on one output, in cycles. */
        Cycles outputGap{1};
        /** Depth of each output request queue. */
        std::size_t queueDepth = 16;
    };

    XBar(std::string name, EventQueue &eq, ClockDomain clock,
         const Config &cfg, std::function<unsigned(Addr)> route);

    /** Port facing requester @p i (bind to an L1 mem-side port). */
    ResponsePort &cpuSidePort(unsigned i);

    /** Port facing device @p j (bind to an L2 bank cpu-side port). */
    RequestPort &memSidePort(unsigned j);

    void regStats(StatGroup &group) override;

    /** Reset routing state, queues, and stats (System::reset()). */
    void reset();

  private:
    bool handleRequest(unsigned src, PacketPtr pkt);
    void handleResponse(unsigned dst_output, PacketPtr pkt);
    void handleOutputSpaceFreed(unsigned output);

    class InputPort : public ResponsePort
    {
      public:
        InputPort(std::string name, XBar &xbar, unsigned index)
            : ResponsePort(std::move(name)), xbar_(xbar), index_(index)
        {}

        bool
        recvTimingReq(PacketPtr pkt) override
        {
            return xbar_.handleRequest(index_, pkt);
        }

      private:
        XBar &xbar_;
        unsigned index_;
    };

    class OutputPort : public RequestPort
    {
      public:
        OutputPort(std::string name, XBar &xbar, unsigned index)
            : RequestPort(std::move(name)), xbar_(xbar), index_(index)
        {}

        void
        recvTimingResp(PacketPtr pkt) override
        {
            xbar_.handleResponse(index_, pkt);
        }

        void
        recvReqRetry() override
        {
            xbar_.reqQueues_[index_]->retry();
        }

      private:
        XBar &xbar_;
        unsigned index_;
    };

    Config cfg_;
    std::function<unsigned(Addr)> route_;

    std::vector<std::unique_ptr<InputPort>> inputPorts_;
    std::vector<std::unique_ptr<OutputPort>> outputPorts_;
    std::vector<std::unique_ptr<ReqPacketQueue>> reqQueues_;
    std::vector<std::unique_ptr<RespPacketQueue>> respQueues_;

    /** Earliest tick the next packet may occupy each output. */
    std::vector<Tick> outputNextFree_;
    /** Earliest tick the next response may use each input. */
    std::vector<Tick> inputNextFree_;

    /** Request id -> originating input index, for response routing. */
    std::unordered_map<std::uint64_t, unsigned> routeBack_;

    /** Inputs waiting for a retry, per output. */
    std::vector<std::vector<unsigned>> waitingInputs_;

    StatScalar statReqPackets_;
    StatScalar statRespPackets_;
    StatScalar statRejects_;
};

} // namespace migc

#endif // MIGC_MEM_XBAR_HH
