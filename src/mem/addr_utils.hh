/**
 * @file
 * Small address arithmetic helpers shared across the memory system.
 */

#ifndef MIGC_MEM_ADDR_UTILS_HH
#define MIGC_MEM_ADDR_UTILS_HH

#include <bit>
#include <cstdint>

#include "sim/types.hh"

namespace migc
{

/** True iff @p v is a power of two (and non-zero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** log2 of a power of two. */
constexpr unsigned
floorLog2(std::uint64_t v)
{
    return static_cast<unsigned>(std::bit_width(v) - 1);
}

/** Align @p addr down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Align @p addr up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** Mix the bits of an address or PC into a table index. */
constexpr std::uint64_t
hashAddr(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xFF51AFD7ED558CCDULL;
    x ^= x >> 33;
    x *= 0xC4CEB9FE1A85EC53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace migc

#endif // MIGC_MEM_ADDR_UTILS_HH
