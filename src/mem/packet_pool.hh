/**
 * @file
 * A freelist recycler for Packet storage.
 *
 * Every simulated memory access used to pay one malloc/free pair (or
 * several, counting fills and writebacks) on the hottest path in the
 * simulator. The pool hands out fixed slots from chunked storage and
 * recycles them LIFO, so steady-state packet traffic performs zero
 * heap allocations.
 *
 * Determinism: packet ids keep coming from the per-thread monotonic
 * counter in Packet's constructor, and a run is confined to one
 * thread, so pooled allocation is bit-identical to heap allocation.
 * Ownership stays exactly as before - the component that allocates a
 * packet releases it when its response returns - only new/delete
 * become alloc()/release() on the owning System's pool.
 */

#ifndef MIGC_MEM_PACKET_POOL_HH
#define MIGC_MEM_PACKET_POOL_HH

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

#include "mem/packet.hh"
#include "sim/logging.hh"

namespace migc
{

class PacketPool
{
    // Recycled slots skip individual destruction; the chunk vector
    // releases raw storage wholesale.
    static_assert(std::is_trivially_destructible_v<Packet>,
                  "Packet must stay trivially destructible for pooling");

  public:
    PacketPool() = default;

    PacketPool(const PacketPool &) = delete;
    PacketPool &operator=(const PacketPool &) = delete;

    /** Construct a Packet in a recycled (or fresh) slot. */
    Packet *
    alloc(MemCmd cmd, Addr addr, unsigned size, Tick creation_tick)
    {
        if (free_.empty())
            grow();
        void *slot = free_.back();
        free_.pop_back();
        ++live_;
        return new (slot) Packet(cmd, addr, size, creation_tick);
    }

    /** Return @p pkt's slot to the freelist. No-op on nullptr. */
    void
    release(Packet *pkt)
    {
        if (pkt == nullptr)
            return;
        panic_if(live_ == 0, "releasing a packet to an empty pool");
        pkt->~Packet();
        --live_;
        free_.push_back(pkt);
    }

    /** Packets currently alive (allocated and not yet released). */
    std::size_t liveCount() const { return live_; }

    /** Slots ready for reuse. */
    std::size_t freeCount() const { return free_.size(); }

    /** Total slots ever created (live + free). */
    std::size_t capacity() const { return chunks_.size() * chunkSlots; }

  private:
    struct Slot
    {
        alignas(alignof(Packet)) unsigned char bytes[sizeof(Packet)];
    };

    static constexpr std::size_t chunkSlots = 256;

    void
    grow()
    {
        chunks_.push_back(std::make_unique<Slot[]>(chunkSlots));
        Slot *chunk = chunks_.back().get();
        for (std::size_t i = chunkSlots; i > 0; --i)
            free_.push_back(chunk[i - 1].bytes);
    }

    std::vector<std::unique_ptr<Slot[]>> chunks_;
    std::vector<void *> free_;
    std::size_t live_ = 0;
};

} // namespace migc

#endif // MIGC_MEM_PACKET_POOL_HH
