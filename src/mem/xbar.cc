#include "mem/xbar.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace migc
{

XBar::XBar(std::string name, EventQueue &eq, ClockDomain clock,
           const Config &cfg, std::function<unsigned(Addr)> route)
    : SimObject(std::move(name), eq, clock), cfg_(cfg),
      route_(std::move(route))
{
    fatal_if(cfg_.numInputs == 0 || cfg_.numOutputs == 0,
             "crossbar needs at least one input and one output");

    for (unsigned i = 0; i < cfg_.numInputs; ++i) {
        inputPorts_.push_back(std::make_unique<InputPort>(
            this->name() + csprintf(".in%u", i), *this, i));
        respQueues_.push_back(std::make_unique<RespPacketQueue>(
            eventQueue(), *inputPorts_.back(),
            this->name() + csprintf(".respq%u", i)));
    }
    for (unsigned j = 0; j < cfg_.numOutputs; ++j) {
        outputPorts_.push_back(std::make_unique<OutputPort>(
            this->name() + csprintf(".out%u", j), *this, j));
        reqQueues_.push_back(std::make_unique<ReqPacketQueue>(
            eventQueue(), *outputPorts_.back(),
            this->name() + csprintf(".reqq%u", j), cfg_.queueDepth));
        reqQueues_.back()->onSpaceFreed(
            [this, j] { handleOutputSpaceFreed(j); });
    }
    outputNextFree_.assign(cfg_.numOutputs, 0);
    inputNextFree_.assign(cfg_.numInputs, 0);
    waitingInputs_.assign(cfg_.numOutputs, {});
}

ResponsePort &
XBar::cpuSidePort(unsigned i)
{
    panic_if(i >= inputPorts_.size(), "bad xbar input index %u", i);
    return *inputPorts_[i];
}

RequestPort &
XBar::memSidePort(unsigned j)
{
    panic_if(j >= outputPorts_.size(), "bad xbar output index %u", j);
    return *outputPorts_[j];
}

bool
XBar::handleRequest(unsigned src, PacketPtr pkt)
{
    unsigned out = route_(pkt->addr);
    panic_if(out >= cfg_.numOutputs, "xbar route out of range");

    if (reqQueues_[out]->full()) {
        ++statRejects_;
        auto &waiters = waitingInputs_[out];
        if (std::find(waiters.begin(), waiters.end(), src) == waiters.end())
            waiters.push_back(src);
        return false;
    }

    ++statReqPackets_;
    Tick ready = std::max(clockEdge(cfg_.latency), outputNextFree_[out]);
    outputNextFree_[out] = ready + cyclesToTicks(cfg_.outputGap);
    routeBack_[pkt->id] = src;
    reqQueues_[out]->push(pkt, ready);
    return true;
}

void
XBar::handleResponse(unsigned dst_output, PacketPtr pkt)
{
    (void)dst_output;
    auto it = routeBack_.find(pkt->id);
    panic_if(it == routeBack_.end(), "xbar response for unknown packet %s",
             pkt->print().c_str());
    unsigned src = it->second;
    routeBack_.erase(it);

    ++statRespPackets_;
    Tick ready = std::max(clockEdge(cfg_.latency), inputNextFree_[src]);
    inputNextFree_[src] = ready + cyclesToTicks(cfg_.outputGap);
    respQueues_[src]->push(pkt, ready);
}

void
XBar::handleOutputSpaceFreed(unsigned output)
{
    auto &waiters = waitingInputs_[output];
    if (waiters.empty())
        return;
    // Wake every waiter; rejected ones will re-register. Waking all
    // (rather than one) avoids starvation when several L1s contend
    // for one hot bank.
    std::vector<unsigned> to_wake;
    to_wake.swap(waiters);
    for (unsigned src : to_wake)
        inputPorts_[src]->sendReqRetry();
}

void
XBar::reset()
{
    panic_if(!routeBack_.empty(),
             "resetting crossbar with requests in flight");
    for (auto &q : reqQueues_)
        q->reset();
    for (auto &q : respQueues_)
        q->reset();
    std::fill(outputNextFree_.begin(), outputNextFree_.end(), 0);
    std::fill(inputNextFree_.begin(), inputNextFree_.end(), 0);
    for (auto &waiters : waitingInputs_)
        waiters.clear();

    statReqPackets_.reset();
    statRespPackets_.reset();
    statRejects_.reset();
}

void
XBar::regStats(StatGroup &group)
{
    group.addScalar("req_packets", "requests routed", &statReqPackets_);
    group.addScalar("resp_packets", "responses routed", &statRespPackets_);
    group.addScalar("rejects", "requests rejected (output queue full)",
                    &statRejects_);
}

} // namespace migc
