#include "mem/packet.hh"

namespace migc
{

namespace
{

const char *
cmdName(MemCmd cmd)
{
    switch (cmd) {
      case MemCmd::ReadReq: return "ReadReq";
      case MemCmd::ReadResp: return "ReadResp";
      case MemCmd::WriteReq: return "WriteReq";
      case MemCmd::WriteResp: return "WriteResp";
      case MemCmd::WritebackDirty: return "WritebackDirty";
      case MemCmd::WritebackResp: return "WritebackResp";
    }
    return "?";
}

} // namespace

std::string
Packet::print() const
{
    return csprintf("[pkt %llu %s addr=%#llx size=%u pc=%#llx flags=%#x]",
                    static_cast<unsigned long long>(id), cmdName(cmd),
                    static_cast<unsigned long long>(addr), size,
                    static_cast<unsigned long long>(pc), flags);
}

} // namespace migc
