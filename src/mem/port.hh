/**
 * @file
 * Point-to-point timing ports with gem5-style retry flow control.
 *
 * Protocol:
 *  - A requester calls RequestPort::sendTimingReq(); the responder may
 *    return false ("busy"). The requester must then hold the packet
 *    and wait for recvReqRetry() before re-sending.
 *  - Responses are never refused: ResponsePort::sendTimingResp() always
 *    succeeds and invokes RequestPort::recvTimingResp().
 */

#ifndef MIGC_MEM_PORT_HH
#define MIGC_MEM_PORT_HH

#include <functional>
#include <string>
#include <utility>

#include "mem/packet.hh"
#include "sim/logging.hh"

namespace migc
{

class ResponsePort;

/** The requester's end of a link (e.g., a cache's mem-side port). */
class RequestPort
{
  public:
    explicit RequestPort(std::string name) : name_(std::move(name)) {}

    virtual ~RequestPort() = default;

    RequestPort(const RequestPort &) = delete;
    RequestPort &operator=(const RequestPort &) = delete;

    /** Connect to the peer response port (exactly once). */
    void bind(ResponsePort &peer);

    bool isBound() const { return peer_ != nullptr; }

    const std::string &name() const { return name_; }

    /**
     * Try to hand @p pkt to the peer.
     * @return false if the peer is busy; a retry will follow.
     */
    bool sendTimingReq(PacketPtr pkt);

    /** Called when a response arrives from the peer. */
    virtual void recvTimingResp(PacketPtr pkt) = 0;

    /** Called when a previously busy peer is ready again. */
    virtual void recvReqRetry() = 0;

  private:
    friend class ResponsePort;

    std::string name_;
    ResponsePort *peer_ = nullptr;
};

/** The responder's end of a link (e.g., a cache's cpu-side port). */
class ResponsePort
{
  public:
    explicit ResponsePort(std::string name) : name_(std::move(name)) {}

    virtual ~ResponsePort() = default;

    ResponsePort(const ResponsePort &) = delete;
    ResponsePort &operator=(const ResponsePort &) = delete;

    const std::string &name() const { return name_; }

    bool isBound() const { return peer_ != nullptr; }

    /** Deliver a response to the requester (always accepted). */
    void sendTimingResp(PacketPtr pkt);

    /** Tell the requester it may retry a rejected request. */
    void sendReqRetry();

    /** Incoming request; return false to push back. */
    virtual bool recvTimingReq(PacketPtr pkt) = 0;

  private:
    friend class RequestPort;

    std::string name_;
    RequestPort *peer_ = nullptr;
};

/**
 * A RequestPort whose callbacks are std::functions; spares small
 * components from declaring a subclass.
 */
class CallbackRequestPort : public RequestPort
{
  public:
    CallbackRequestPort(std::string name,
                        std::function<void(PacketPtr)> on_resp,
                        std::function<void()> on_retry)
        : RequestPort(std::move(name)), onResp_(std::move(on_resp)),
          onRetry_(std::move(on_retry))
    {}

    void recvTimingResp(PacketPtr pkt) override { onResp_(pkt); }

    void recvReqRetry() override { onRetry_(); }

  private:
    std::function<void(PacketPtr)> onResp_;
    std::function<void()> onRetry_;
};

/** A ResponsePort with a std::function request handler. */
class CallbackResponsePort : public ResponsePort
{
  public:
    CallbackResponsePort(std::string name,
                         std::function<bool(PacketPtr)> on_req)
        : ResponsePort(std::move(name)), onReq_(std::move(on_req))
    {}

    bool recvTimingReq(PacketPtr pkt) override { return onReq_(pkt); }

  private:
    std::function<bool(PacketPtr)> onReq_;
};

} // namespace migc

#endif // MIGC_MEM_PORT_HH
