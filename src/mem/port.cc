#include "mem/port.hh"

namespace migc
{

void
RequestPort::bind(ResponsePort &peer)
{
    panic_if(peer_ != nullptr, "port '%s' already bound", name_.c_str());
    panic_if(peer.peer_ != nullptr, "port '%s' already bound",
             peer.name().c_str());
    peer_ = &peer;
    peer.peer_ = this;
}

bool
RequestPort::sendTimingReq(PacketPtr pkt)
{
    panic_if(peer_ == nullptr, "send on unbound port '%s'", name_.c_str());
    panic_if(!pkt->isRequest(), "sendTimingReq with response %s",
             pkt->print().c_str());
    return peer_->recvTimingReq(pkt);
}

void
ResponsePort::sendTimingResp(PacketPtr pkt)
{
    panic_if(peer_ == nullptr, "send on unbound port '%s'", name_.c_str());
    panic_if(!pkt->isResponse(), "sendTimingResp with request %s",
             pkt->print().c_str());
    peer_->recvTimingResp(pkt);
}

void
ResponsePort::sendReqRetry()
{
    panic_if(peer_ == nullptr, "retry on unbound port '%s'", name_.c_str());
    peer_->recvReqRetry();
}

} // namespace migc
