#include "mem/packet_queue.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace migc
{

RespPacketQueue::RespPacketQueue(EventQueue &eq, ResponsePort &port,
                                 std::string name)
    : eventq_(eq), port_(port),
      drainEvent_([this] { drain(); }, name + ".drain",
                  Event::responsePriority, EventCategory::mem)
{}

void
RespPacketQueue::push(PacketPtr pkt, Tick ready)
{
    panic_if(ready < eventq_.curTick(), "response scheduled in the past");
    // Insertion sort from the back keeps the queue ordered; queues are
    // short and latencies near-constant, so this is effectively O(1).
    auto it = queue_.end();
    while (it != queue_.begin() && std::prev(it)->ready > ready)
        --it;
    queue_.insert(it, Entry{ready, pkt});
    if (!drainEvent_.scheduled())
        eventq_.schedule(&drainEvent_, queue_.front().ready);
    else if (drainEvent_.when() > queue_.front().ready)
        eventq_.reschedule(&drainEvent_, queue_.front().ready);
}

void
RespPacketQueue::drain()
{
    Tick now = eventq_.curTick();
    while (!queue_.empty() && queue_.front().ready <= now) {
        PacketPtr pkt = queue_.front().pkt;
        queue_.pop_front();
        port_.sendTimingResp(pkt);
    }
    if (!queue_.empty())
        eventq_.schedule(&drainEvent_, queue_.front().ready);
}

ReqPacketQueue::ReqPacketQueue(EventQueue &eq, RequestPort &port,
                               std::string name, std::size_t max_size)
    : eventq_(eq), port_(port), maxSize_(max_size),
      sendEvent_([this] { trySend(); }, name + ".send",
                 Event::defaultPriority, EventCategory::mem)
{}

void
ReqPacketQueue::push(PacketPtr pkt, Tick ready)
{
    panic_if(full(), "push to full request queue");
    auto it = queue_.end();
    while (it != queue_.begin() && std::prev(it)->ready > ready)
        --it;
    queue_.insert(it, Entry{ready, pkt});
    if (!waitingRetry_ && !sendEvent_.scheduled())
        eventq_.schedule(&sendEvent_, std::max(ready, eventq_.curTick()));
}

void
ReqPacketQueue::retry()
{
    if (!waitingRetry_)
        return;
    waitingRetry_ = false;
    if (!queue_.empty() && !sendEvent_.scheduled())
        eventq_.schedule(&sendEvent_, eventq_.curTick());
}

void
ReqPacketQueue::trySend()
{
    Tick now = eventq_.curTick();
    while (!queue_.empty() && queue_.front().ready <= now) {
        PacketPtr pkt = queue_.front().pkt;
        if (!port_.sendTimingReq(pkt)) {
            waitingRetry_ = true;
            return;
        }
        queue_.pop_front();
        if (spaceFreed_)
            spaceFreed_();
    }
    // The spaceFreed_ callback can re-enter push() (a waiter retried
    // into us synchronously), which may have re-armed the event.
    if (!queue_.empty() && !sendEvent_.scheduled())
        eventq_.schedule(&sendEvent_, queue_.front().ready);
}

} // namespace migc
