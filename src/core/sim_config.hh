/**
 * @file
 * Whole-system configuration presets.
 *
 * paperConfig() mirrors Table 1 (64 CUs, 4 MB L2, 16-channel HBM2).
 * defaultConfig() is the 1/4-scale system used by the experiment
 * harness so a full 17-workload x 6-policy sweep runs in minutes;
 * footprints in src/workloads are sized against it, preserving the
 * footprint:capacity ratios that drive the paper's effects (see
 * docs/ARCHITECTURE.md, scaling note). testConfig() is a tiny fast preset for unit and
 * integration tests.
 */

#ifndef MIGC_CORE_SIM_CONFIG_HH
#define MIGC_CORE_SIM_CONFIG_HH

#include <string>

#include "cache/gpu_cache.hh"
#include "dram/dram_config.hh"
#include "gpu/gpu_config.hh"
#include "mem/xbar.hh"
#include "policy/reuse_predictor.hh"

namespace migc
{

struct SimConfig
{
    std::string name = "default";

    GpuConfig gpu;

    /** Template for the per-CU L1 data caches. */
    GpuCacheConfig l1;

    /** Template for one L2 bank. */
    GpuCacheConfig l2Bank;

    unsigned l2Banks = 8;

    XBar::Config xbar;

    DramConfig dram;

    ReusePredictor::Config predictor;

    /** Footprint multiplier handed to Workload::kernels(). */
    double workloadScale = 1.0;

    std::uint64_t seed = 1;

    /** Table 1 system (64 CUs, 4 MB L2, 16 channels). */
    static SimConfig paperConfig();

    /** 1/4-scale system used for all reported experiments. */
    static SimConfig defaultConfig();

    /** Tiny system for fast tests. */
    static SimConfig testConfig();

    /**
     * One-line signature used to key the sweep result cache. Covers
     * every structural parameter (via a hash of structureKey()) plus
     * the seed, so any config change - including ablation axes like
     * L1 associativity, DBI rows, or predictor geometry - lands in
     * its own cache namespace.
     */
    std::string signature() const;

    /**
     * Canonical dump of every behavior-affecting parameter except
     * the seed and the preset name. Two configs with equal
     * structureKey() build interchangeable Systems: a worker may
     * satisfy both with one System via System::reset().
     */
    std::string structureKey() const;

    /** True when a System built for @p a can be reset to serve @p b. */
    static bool structurallyEqual(const SimConfig &a, const SimConfig &b)
    {
        return a.structureKey() == b.structureKey();
    }
};

} // namespace migc

#endif // MIGC_CORE_SIM_CONFIG_HH
