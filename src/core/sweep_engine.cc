#include "core/sweep_engine.hh"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <fstream>
#include <sstream>
#include <string_view>
#include <thread>
#include <tuple>

#include <chrono>
#include <condition_variable>

#include "core/cache_v4.hh"
#include "core/fleet.hh"
#include "core/runner.hh"
#include "core/system.hh"
#include "sim/logging.hh"
#include "sim/names.hh"
#include "sim/parallel.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace migc
{

namespace
{

/** v3: multi-config sections, one per signature. */
constexpr const char *kCacheTagV3 = "# migc-sweep-v3";

/** Section separator inside a v3 file. */
constexpr const char *kSectionTag = "# config ";

/**
 * v2: single-config files written before the multi-config cache; the
 * signature follows the tag on the same line. v2 rows are PRESERVED
 * (imported as a section keyed by that old-format signature, carried
 * across rewrites like any foreign section) but never served:
 * current lookups use the new signature format, which embeds a hash
 * of every structural parameter precisely because the old format
 * aliased structurally different configs (it ignored ablation axes
 * like L1 associativity and DBI rows) - serving an old row could
 * return a different machine's result. Nothing is silently lost;
 * stale-but-inspectable beats wrong.
 */
constexpr const char *kCacheTagV2 = "# migc-sweep-v2 ";

bool
startsWith(const std::string &s, const char *prefix)
{
    return s.rfind(prefix, 0) == 0;
}

/** Serialize @p snap as a v3 text cache, byte-identical to what the
 *  pre-v4 writer produced for the same rows. */
void
writeCsvCache(std::string &out, const CacheSnapshot &snap)
{
    out += kCacheTagV3;
    out += '\n';
    for (const auto &[sig, section] : snap.sections()) {
        out += kSectionTag;
        out += sig;
        out += '\n';
        out += RunMetrics::csvHeader();
        out += '\n';
        for (const auto &[key, m] : section) {
            out += m->toCsv();
            out += '\n';
        }
    }
}

/** @p snap's rows in canonical (sig, workload, policy) order, ready
 *  for buildV4Segment (the snapshot's own iteration order IS the
 *  canonical order - both maps sort lexicographically). */
std::vector<V4RowRef>
v4RowsOf(const CacheSnapshot &snap)
{
    std::vector<V4RowRef> rows;
    rows.reserve(snap.rows());
    for (const auto &[sig, section] : snap.sections()) {
        for (const auto &[key, m] : section) {
            rows.push_back(
                V4RowRef{sig, m->workload, m->policy, packV4Row(*m)});
        }
    }
    return rows;
}

/**
 * Serialize @p snap to @p path in @p format via tmp+rename: the
 * compacting write shared by save() and exportFile(). The pid suffix
 * keeps concurrent processes' tmp files private.
 */
bool
writeSnapshotTo(const std::string &path, const CacheSnapshot &snap,
                CacheFormat format)
{
    std::string bytes;
    if (format == CacheFormat::csv)
        writeCsvCache(bytes, snap);
    else
        bytes = buildV4Segment(v4RowsOf(snap));
    const std::string tmp = csprintf("%s.%d.tmp", path.c_str(),
                                     static_cast<int>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return false;
    bool ok =
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    ok = (std::fclose(f) == 0) && ok;
    if (!ok) {
        std::remove(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        warn("could not move sweep cache into place at %s",
             path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

std::string
sweepCachePathFromEnv()
{
    const char *no_cache = std::getenv("MIGC_NO_CACHE");
    if (no_cache && no_cache[0] == '1')
        return "";
    const char *path = std::getenv("MIGC_SWEEP_CACHE");
    return path ? path : "mi_sweep_cache.csv";
}

CacheFormat
cacheFormatFromEnv()
{
    const char *v = std::getenv("MIGC_CACHE_FORMAT");
    if (v == nullptr || v[0] == '\0' || std::strcmp(v, "v4") == 0)
        return CacheFormat::v4;
    if (std::strcmp(v, "csv") == 0 || std::strcmp(v, "v3") == 0)
        return CacheFormat::csv;
    fatal("MIGC_CACHE_FORMAT must be \"v4\" or \"csv\" (alias "
          "\"v3\"), not \"%s\"",
          v);
    return CacheFormat::v4; // unreachable
}

const char *
cacheFormatName(CacheFormat format)
{
    return format == CacheFormat::v4 ? "v4" : "csv";
}

// ---------------------------------------------------------------------
// RunCache
// ---------------------------------------------------------------------

RunCache::RunCache(std::string path, std::size_t checkpoint_interval)
    : RunCache(std::move(path), checkpoint_interval,
               cacheFormatFromEnv())
{}

RunCache::RunCache(std::string path, std::size_t checkpoint_interval,
                   CacheFormat format)
    : path_(std::move(path)),
      checkpointInterval_(checkpoint_interval > 0 ? checkpoint_interval
                                                  : 1),
      format_(format),
      log_(std::make_shared<std::deque<RunMetrics>>()),
      base_(CacheSnapshot::empty())
{
    if (enabled())
        load();
}

RunCache::~RunCache()
{
    flush();
}

void
RunCache::noteLoadedFormat(const char *format)
{
    if (loadedFormat_ == nullptr)
        loadedFormat_ = format;
}

const char *
RunCache::loadedFormatName() const
{
    return loadedFormat_ != nullptr ? loadedFormat_ : "none";
}

RunCache::MergeStats
RunCache::mergeFromFile(const std::string &path,
                        bool classify_collisions)
{
    // Sniff the first 8 bytes: the v4 magic never begins a v3/v2
    // text file (those start with '#'), so the dispatch is exact.
    char magic[sizeof(kV4SegMagic)];
    std::size_t got = 0;
    {
        std::FILE *probe = std::fopen(path.c_str(), "rb");
        if (probe == nullptr) {
            if (path == path_)
                fileState_ = FileState::absent;
            return {};
        }
        got = std::fread(magic, 1, sizeof(magic), probe);
        std::fclose(probe);
    }
    if (got == sizeof(magic) && isV4Magic(magic))
        return mergeV4File(path, classify_collisions);
    return mergeTextFile(path, classify_collisions);
}

RunCache::MergeStats
RunCache::mergeTextFile(const std::string &path,
                        bool classify_collisions)
{
    MergeStats stats;
    std::ifstream in(path);
    if (!in) {
        if (path == path_)
            fileState_ = FileState::absent;
        return stats;
    }
    std::string line;
    // Scan past blank lines for the format tag; running out of lines
    // first means the file is empty. A zero-length shard file is a
    // legitimate empty cache, not a corrupt one - a fleet worker
    // SIGKILL'd before its first checkpoint can leave one behind,
    // and its slice must merge as zero rows: no parse error, no
    // format warning, nothing for the coordinator join to trip on.
    for (;;) {
        if (!std::getline(in, line)) {
            if (path == path_)
                fileState_ = FileState::absent;
            return stats;
        }
        if (!line.empty() && line != "\r")
            break;
    }

    const bool durable = path == path_;
    std::string sig;
    bool in_section = false;
    if (line == kCacheTagV3) {
        // Sections follow; rows before the first "# config" line
        // (there should be none) are ignored.
        if (path == path_) {
            noteLoadedFormat("v3");
            fileState_ = FileState::cleanV3;
        }
    } else if (startsWith(line, kCacheTagV2)) {
        // Whole legacy file becomes one preserved-but-unserved
        // section under its old-format signature (see kCacheTagV2).
        sig = line.substr(std::strlen(kCacheTagV2));
        in_section = true;
        if (path == path_) {
            noteLoadedFormat("v2");
            fileState_ = FileState::other;
        }
    } else {
        warn("ignoring sweep cache %s: unrecognized format tag",
             path.c_str());
        if (path == path_) {
            noteLoadedFormat("foreign");
            fileState_ = FileState::other;
        }
        return stats;
    }

    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        if (startsWith(line, kSectionTag)) {
            sig = line.substr(std::strlen(kSectionTag));
            in_section = true;
            continue;
        }
        if (line[0] == '#' || startsWith(line, "workload,"))
            continue; // comment / csv header
        RunMetrics m;
        if (in_section && RunMetrics::fromCsv(line, m)) {
            // Rows already in memory win; for a key both sides hold,
            // determinism says the values must be identical, so an
            // actual difference is worth counting (and, for a
            // coordinator merge, fatal - see mergeShardCaches). The
            // collision cases are rare, so rows only re-serialize
            // for comparison when the key already exists.
            const RunMetrics *held = find(sig, m.workload, m.policy);
            if (held == nullptr) {
                appendRow(sig, std::move(m), durable);
                ++stats.rows;
            } else if (!classify_collisions) {
                ++stats.duplicates;
            } else if (held->toCsv() == m.toCsv()) {
                ++stats.duplicates;
            } else {
                ++stats.conflicts;
            }
        } else if (badLines_.insert(path + '\n' + line).second) {
            // Each damaged line counts once per source file: a later
            // checkpoint save re-reading the same file dedupes, but
            // the same damaged text in two different shard files is
            // two lost rows.
            ++stats.parseErrors;
            ++parseErrors_;
        }
    }
    return stats;
}

RunCache::MergeStats
RunCache::mergeV4File(const std::string &path, bool classify_collisions)
{
    MergeStats stats;
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return stats;
    std::fseek(f, 0, SEEK_END);
    const long flen = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    // A u64 vector keeps the buffer 8-byte aligned, which is what
    // parseV4Segment's typed column views require.
    std::vector<std::uint64_t> words(
        (static_cast<std::size_t>(flen > 0 ? flen : 0) + 7) / 8, 0);
    const std::size_t got =
        flen > 0 ? std::fread(words.data(), 1,
                              static_cast<std::size_t>(flen), f)
                 : 0;
    std::fclose(f);
    const char *buf = reinterpret_cast<const char *>(words.data());

    const bool durable = path == path_;
    bool damaged = false;
    std::size_t off = 0;
    while (off < got) {
        V4SegmentView seg;
        std::string why;
        if (!parseV4Segment(buf + off, got - off, seg, &why)) {
            damaged = true;
            // The damaged tail counts as one parse error, deduped
            // per (file, offset, reason) like bad text lines so a
            // checkpoint's re-read does not recount it.
            const std::string key =
                path + '\n' +
                csprintf("segment@%zu:%s", off, why.c_str());
            if (badLines_.insert(key).second) {
                ++stats.parseErrors;
                ++parseErrors_;
            }
            warn("sweep cache %s: damaged v4 segment at byte %zu "
                 "(%s); keeping the %zu row%s of earlier segments",
                 path.c_str(), off, why.c_str(), stats.rows,
                 stats.rows == 1 ? "" : "s");
            break;
        }
        mergeV4Segment(seg, classify_collisions, durable, stats);
        off += seg.bytes;
    }
    if (path == path_) {
        noteLoadedFormat("v4");
        // A damaged tail must not take appends: a fresh segment
        // after garbage would be unreachable (readers stop at the
        // first damaged segment), so the next durable write compacts
        // instead.
        fileState_ =
            damaged ? FileState::other : FileState::cleanV4;
    }
    return stats;
}

void
RunCache::mergeV4Segment(const V4SegmentView &seg,
                         bool classify_collisions, bool durable,
                         MergeStats &stats)
{
    const bool bulk =
        log_->empty() && fresh_.empty() && base_->rows() == 0;
    if (bulk) {
        // Loading into an empty cache (the overwhelmingly common
        // case: a compacted file's one big segment) skips the
        // per-row find(): the segment is already sorted-unique in
        // canonical order, so the index builds with end-of-map hints
        // and publishes directly as the base snapshot.
        CacheSnapshot::Builder b;
        std::string sig;
        for (std::uint64_t i = 0; i < seg.rowCount; ++i) {
            const V4Key &k = seg.keys[i];
            RunMetrics m;
            const std::string_view wl = seg.str(k.workload);
            const std::string_view pol = seg.str(k.policy);
            m.workload.assign(wl.data(), wl.size());
            m.policy.assign(pol.data(), pol.size());
            unpackV4Row(seg.rows[i], m);
            log_->push_back(std::move(m));
            const RunMetrics *row = &log_->back();
            const std::string_view sv = seg.str(k.sig);
            sig.assign(sv.data(), sv.size());
            if (b.addSorted(sig, row)) {
                ++stats.rows;
                if (!durable && enabled())
                    pendingAppend_.emplace_back(sig, row);
            } else {
                // Duplicate key inside one segment: impossible in a
                // file parseV4Segment accepted, but never index a
                // row we are about to drop.
                log_->pop_back();
            }
        }
        b.retain(log_);
        base_ = b.build();
        return;
    }

    std::string sig, wl, pol;
    for (std::uint64_t i = 0; i < seg.rowCount; ++i) {
        const V4Key &k = seg.keys[i];
        const std::string_view sv = seg.str(k.sig);
        const std::string_view wv = seg.str(k.workload);
        const std::string_view pv = seg.str(k.policy);
        sig.assign(sv.data(), sv.size());
        wl.assign(wv.data(), wv.size());
        pol.assign(pv.data(), pv.size());
        const RunMetrics *held = find(sig, wl, pol);
        if (held == nullptr) {
            RunMetrics m;
            m.workload = wl;
            m.policy = pol;
            unpackV4Row(seg.rows[i], m);
            appendRow(sig, std::move(m), durable);
            ++stats.rows;
        } else if (!classify_collisions) {
            ++stats.duplicates;
        } else {
            // Same dup/conflict test as the text reader: compare the
            // serialized forms, so v3-loaded and v4-loaded copies of
            // one row always classify as duplicates.
            RunMetrics m;
            m.workload = wl;
            m.policy = pol;
            unpackV4Row(seg.rows[i], m);
            if (held->toCsv() == m.toCsv())
                ++stats.duplicates;
            else
                ++stats.conflicts;
        }
    }
}

void
RunCache::warnMergeProblems(const std::string &path,
                            const MergeStats &stats)
{
    if (stats.parseErrors > 0) {
        warn("sweep cache %s: ignored %zu unparseable row%s "
             "(corrupted file or stale schema?)",
             path.c_str(), stats.parseErrors,
             stats.parseErrors == 1 ? "" : "s");
    }
    if (stats.conflicts > 0) {
        warn("sweep cache %s: %zu row%s conflict with rows already "
             "in memory for the same key (kept the in-memory rows)",
             path.c_str(), stats.conflicts,
             stats.conflicts == 1 ? "" : "s");
    }
}

RunCache::MergeStats
RunCache::mergeFile(const std::string &path)
{
    MergeStats stats = mergeFromFile(path);
    warnMergeProblems(path, stats);
    return stats;
}

void
RunCache::load()
{
    mergeFile(path_);
}

bool
RunCache::save()
{
    if (!enabled())
        return true;
    // Union the file's current state first so two binaries sweeping
    // different configs against one cache path preserve each other's
    // freshly finished sections instead of racing whole-file
    // snapshots (a write between our merge and rename can still
    // lose, but the next writer's merge re-converges). Rows another
    // writer corrupted in the meantime are about to be dropped by
    // the rewrite, so they must be counted and warned about here -
    // this is the last time they are visible anywhere. Collision
    // classification is off: nearly every row in our own file
    // collides with the copy already in memory, and in-memory wins
    // regardless.
    warnMergeProblems(path_,
                      mergeFromFile(path_,
                                    /*classify_collisions=*/false));
    // Publish pending rows (including what the merge just pulled in)
    // so one sorted index covers everything; the snapshot's
    // canonical section/row order is the file's serialization order.
    std::shared_ptr<const CacheSnapshot> snap = snapshot();
    if (!writeSnapshotTo(path_, *snap, format_))
        return false;
    pendingAppend_.clear();
    appendedSinceCompact_ = false;
    fileState_ = format_ == CacheFormat::v4 ? FileState::cleanV4
                                            : FileState::cleanV3;
    return true;
}

bool
RunCache::exportFile(const std::string &path, CacheFormat format)
{
    if (!writeSnapshotTo(path, *snapshot(), format))
        return false;
    if (path == path_) {
        // The export just compacted our own file.
        pendingAppend_.clear();
        appendedSinceCompact_ = false;
        fileState_ = format == CacheFormat::v4 ? FileState::cleanV4
                                               : FileState::cleanV3;
    }
    return true;
}

bool
RunCache::appendPending()
{
    // Canonical order *within* the chunk keeps an appended v4
    // segment binary-searchable and a csv chunk tidy; order across
    // chunks is the file's append history, and the next compaction
    // restores the one global canonical order.
    std::vector<const std::pair<std::string, const RunMetrics *> *>
        rows;
    rows.reserve(pendingAppend_.size());
    for (const auto &entry : pendingAppend_)
        rows.push_back(&entry);
    std::sort(rows.begin(), rows.end(),
              [](const auto *a, const auto *b) {
                  return std::tie(a->first, a->second->workload,
                                  a->second->policy) <
                         std::tie(b->first, b->second->workload,
                                  b->second->policy);
              });

    std::string chunk;
    if (format_ == CacheFormat::v4) {
        std::vector<V4RowRef> refs;
        refs.reserve(rows.size());
        for (const auto *entry : rows) {
            refs.push_back(V4RowRef{entry->first,
                                    entry->second->workload,
                                    entry->second->policy,
                                    packV4Row(*entry->second)});
        }
        chunk = buildV4Segment(refs);
    } else {
        // The leading newline terminates any torn partial line a
        // crashed writer left at the tail, so this chunk's rows
        // always start at a line boundary; readers skip the blank
        // line it normally produces.
        chunk = "\n";
        std::string_view last_sig;
        bool have_sig = false;
        for (const auto *entry : rows) {
            if (!have_sig || entry->first != last_sig) {
                chunk += kSectionTag;
                chunk += entry->first;
                chunk += '\n';
                chunk += RunMetrics::csvHeader();
                chunk += '\n';
                last_sig = entry->first;
                have_sig = true;
            }
            chunk += entry->second->toCsv();
            chunk += '\n';
        }
    }

    std::FILE *f = std::fopen(path_.c_str(), "ab");
    if (f == nullptr)
        return false;
    bool ok =
        std::fwrite(chunk.data(), 1, chunk.size(), f) == chunk.size();
    ok = (std::fclose(f) == 0) && ok;
    if (!ok)
        return false;
    pendingAppend_.clear();
    appendedSinceCompact_ = true;
    return true;
}

void
RunCache::checkpoint()
{
    unsaved_ = 0;
    if (!enabled() || pendingAppend_.empty())
        return;
    const bool appendable =
        (format_ == CacheFormat::v4 &&
         fileState_ == FileState::cleanV4) ||
        (format_ == CacheFormat::csv &&
         fileState_ == FileState::cleanV3);
    if (appendable && appendPending())
        return;
    if (appendable) {
        // The append failed partway; the tail is suspect, so only a
        // compacting rewrite may touch the file from here on.
        fileState_ = FileState::other;
    }
    save();
}

const RunMetrics *
RunCache::appendRow(const std::string &sig, RunMetrics m, bool durable)
{
    log_->push_back(std::move(m));
    const RunMetrics *row = &log_->back();
    fresh_[sig].emplace(Key{row->workload, row->policy}, row);
    if (!durable && enabled())
        pendingAppend_.emplace_back(sig, row);
    return row;
}

const RunMetrics *
RunCache::find(const std::string &sig, const std::string &workload,
               const std::string &policy) const
{
    auto sit = fresh_.find(sig);
    if (sit != fresh_.end()) {
        auto rit = sit->second.find(Key{workload, policy});
        if (rit != sit->second.end())
            return rit->second;
    }
    return base_->find(sig, workload, policy);
}

const RunMetrics &
RunCache::insert(const std::string &sig, RunMetrics m)
{
    fatal_if(m.placeholder,
             "refusing to cache a placeholder row for %s/%s: all-zero "
             "shard stand-ins are not results (engine bug - "
             "placeholders must never reach RunCache::insert)",
             m.workload.c_str(), m.policy.c_str());
    checkCacheName("workload", m.workload);
    checkCacheName("policy", m.policy);
    fatal_if(m.workload == "workload",
             "workload name 'workload' cannot key the run cache: its "
             "rows would start with the CSV header prefix "
             "\"workload,\" and be skipped on reload");
    if (const RunMetrics *held = find(sig, m.workload, m.policy))
        return *held; // first write wins
    const RunMetrics *stored = appendRow(sig, std::move(m));
    // Amortized durability: every K inserts, append the fresh rows
    // to the file (O(fresh) bytes - NOT a whole-file rewrite, which
    // would make an N-row sweep cost O(N^2) checkpoint bytes).
    if (++unsaved_ >= checkpointInterval_)
        checkpoint();
    return *stored;
}

std::shared_ptr<const CacheSnapshot>
RunCache::snapshot()
{
    if (!fresh_.empty()) {
        // Rebuild the index from scratch rather than addAll(base_):
        // every row lives in log_, so retaining the log alone keeps
        // the new snapshot self-contained and lets superseded
        // snapshots die with their last reader instead of chaining.
        CacheSnapshot::Builder b;
        for (const auto &[sig, section] : base_->sections()) {
            for (const auto &[key, row] : section)
                b.add(sig, row);
        }
        for (const auto &[sig, section] : fresh_) {
            for (const auto &[key, row] : section)
                b.add(sig, row);
        }
        b.retain(log_);
        base_ = b.build();
        fresh_.clear();
    }
    return base_;
}

double
RunCache::estimateEvents(const std::string &workload,
                         const std::string &policy) const
{
    double best = base_->estimateEvents(workload, policy);
    for (const auto &[sig, section] : fresh_) {
        auto it = section.find(Key{workload, policy});
        if (it != section.end() && it->second->simEvents > best)
            best = it->second->simEvents;
    }
    return best;
}

void
RunCache::flush()
{
    // Compact when anything is pending OR the file holds appended
    // segments: the flushed file must be the one canonical byte
    // representation of the row set. A cache that only ever *read*
    // its file (warm replay) has neither and skips the rewrite.
    if (!pendingAppend_.empty() || appendedSinceCompact_) {
        save();
        unsaved_ = 0;
    }
}

bool
RunCache::saveNow()
{
    bool ok = save();
    unsaved_ = 0;
    return ok;
}

std::size_t
RunCache::size() const
{
    std::size_t n = base_->rows();
    for (const auto &[sig, section] : fresh_)
        n += section.size();
    return n;
}

std::uint64_t
gridFingerprint(const std::vector<RunRequest> &requests)
{
    // Chain the per-key hashes so order matters: leases are indices
    // into the vector, and two grids with the same keys in a
    // different order are NOT interchangeable.
    std::uint64_t h = fnv1a("migc-fleet-grid") ^
                      splitmix64(requests.size());
    for (const RunRequest &req : requests) {
        h = splitmix64(h ^ runKeyHash(req.cfg.signature(),
                                      req.workload, req.policy));
    }
    return h;
}

// ---------------------------------------------------------------------
// SweepEngine
// ---------------------------------------------------------------------

SweepEngine::SweepEngine()
    : SweepEngine(sweepCachePathFromEnv(), shardFromEnv())
{}

SweepEngine::SweepEngine(std::string cache_path)
    : SweepEngine(std::move(cache_path), ShardSpec{})
{}

SweepEngine::SweepEngine(std::string cache_path, ShardSpec shard)
    : shard_(shard),
      cachePath_(shard.active() && !cache_path.empty()
                     ? shardCachePath(cache_path, shard.index)
                     : cache_path)
{
    if (!shard_.active())
        return;
    if (cache_path.empty()) {
        warn("sharding %u/%u with the cache disabled: this shard's "
             "results stay in memory and cannot be merged",
             shard_.index, shard_.shards);
        return;
    }
    // Warm-start from the canonical cache into the read-only side
    // store: points some earlier sweep already merged replay from
    // it in every shard instead of being resimulated by their
    // owner, while the writable shard file stays limited to this
    // worker's own fresh rows.
    warm_.mergeFile(cache_path);
}

SweepEngine::SweepEngine(std::string cache_path, FleetWorkerSpec fleet)
    // shard_ stays inactive: a fleet worker owns whatever the
    // coordinator leases it, not a fixed hash slice.
    : cachePath_(cache_path.empty()
                     ? cache_path
                     : shardCachePath(cache_path, fleet.index))
{
    if (cache_path.empty()) {
        warn("fleet worker %u with the cache disabled: its results "
             "stay in memory and cannot be merged",
             fleet.index);
        return;
    }
    // Same warm-start as a static shard worker: canonical rows
    // replay from the read-only side store, the writable shard file
    // holds only this worker's fresh rows.
    warm_.mergeFile(cache_path);
}

RunCache &
SweepEngine::cache() const
{
    if (cachePtr_ == nullptr)
        cachePtr_ = std::make_unique<RunCache>(cachePath_);
    return *cachePtr_;
}

const char *
SweepEngine::cacheFileFormat() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return cache().loadedFormatName();
}

const RunMetrics *
SweepEngine::findCached(const std::string &sig,
                        const std::string &workload,
                        const std::string &policy) const
{
    if (const RunMetrics *m = cache().find(sig, workload, policy))
        return m;
    return warm_.find(sig, workload, policy);
}

double
SweepEngine::estimateFor(const std::string &workload,
                         const std::string &policy) const
{
    return std::max(cache().estimateEvents(workload, policy),
                    warm_.estimateEvents(workload, policy));
}

SweepEngine::~SweepEngine() = default;

const RunMetrics &
SweepEngine::placeholderFor(const std::string &sig,
                            const std::string &workload,
                            const std::string &policy)
{
    auto key = std::make_tuple(sig, workload, policy);
    auto it = placeholders_.find(key);
    if (it == placeholders_.end()) {
        RunMetrics m;
        m.workload = workload;
        m.policy = policy;
        m.placeholder = true;
        it = placeholders_.emplace(std::move(key), std::move(m)).first;
        skipped_.fetch_add(1, std::memory_order_relaxed);
    }
    return it->second;
}

std::size_t
SweepEngine::cacheParseErrors() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return cache().parseErrors() + warm_.parseErrors();
}

const RunMetrics &
SweepEngine::get(const SimConfig &cfg, const std::string &workload,
                 const std::string &policy)
{
    const std::string sig = cfg.signature();
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (const RunMetrics *m = findCached(sig, workload, policy)) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            return *m;
        }
        if (!shard_.owns(sig, workload, policy)) {
            debug_log("shard %u/%u: %s/%s belongs to another shard; "
                      "returning a zero placeholder row",
                      shard_.index, shard_.shards, workload.c_str(),
                      policy.c_str());
            return placeholderFor(sig, workload, policy);
        }
    }

    inform("simulating %s under %s ...", workload.c_str(),
           policy.c_str());
    ++sims_;
    RunMetrics m = runNamedWorkload(workload, cfg, policy);

    std::lock_guard<std::mutex> lk(mu_);
    if (const RunMetrics *prior = findCached(sig, workload, policy)) {
        // Lost a race with another thread simulating the same point;
        // both computed identical metrics, keep the first.
        return *prior;
    }
    const RunMetrics &stored = cache().insert(sig, std::move(m));
    // Interactive single runs are rare and expensive: make each one
    // durable immediately with an O(1)-row append (run()'s batch
    // path amortizes instead).
    cache().checkpoint();
    return stored;
}

RunMetrics
SweepEngine::runJob(const Job &job, std::unique_ptr<System> &sys,
                    std::string &sys_structure)
{
    const RunRequest &req = *job.req;
    const std::uint64_t run_seed =
        runSeedFor(req.cfg, req.workload, req.policy);
    const CachePolicy policy = CachePolicy::fromName(req.policy);

    std::string structure = req.cfg.structureKey();
    if (sys != nullptr && sys_structure == structure) {
        // Same machine, different run: keep every allocation warm.
        sys->reset(policy, run_seed);
    } else {
        SimConfig run_cfg = req.cfg;
        run_cfg.seed = run_seed;
        sys = std::make_unique<System>(run_cfg, policy);
        sys_structure = std::move(structure);
    }

    auto wl = makeWorkload(req.workload);
    sims_.fetch_add(1, std::memory_order_relaxed);
    RunMetrics m = runWorkloadOn(*sys, *wl);
    if (slowMs_ > 0) {
        // Straggler injection (setInjectedRunDelayMs): stretch wall
        // clock only, after the metrics are computed.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(slowMs_));
    }
    return m;
}

std::vector<RunMetrics>
SweepEngine::run(const std::vector<RunRequest> &requests, unsigned jobs)
{
    // Phase 1: split the batch into cached points and missing jobs,
    // deduplicating repeated grid points. Under an active shard
    // spec, missing points owned by other shards are skipped here
    // and answered with placeholder rows in phase 2.
    std::vector<std::string> sigs;
    sigs.reserve(requests.size());
    std::vector<Job> missing;
    std::size_t foreign = 0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        std::map<std::tuple<std::string, std::string, std::string>,
                 bool>
            seen;
        for (std::size_t i = 0; i < requests.size(); ++i) {
            const RunRequest &req = requests[i];
            sigs.push_back(req.cfg.signature());
            if (findCached(sigs[i], req.workload, req.policy)) {
                hits_.fetch_add(1, std::memory_order_relaxed);
                continue;
            }
            auto key = std::make_tuple(sigs[i], req.workload,
                                       req.policy);
            if (!seen.emplace(std::move(key), true).second)
                continue;
            if (!shard_.owns(sigs[i], req.workload, req.policy)) {
                ++foreign;
                continue;
            }
            missing.push_back(Job{&req, sigs[i],
                                  estimateFor(req.workload,
                                              req.policy),
                                  i});
        }
    }
    if (foreign > 0) {
        inform("shard %u/%u: %zu missing grid point%s belong%s to "
               "other shards (skipped; merge the shard caches for a "
               "complete sweep)",
               shard_.index, shard_.shards, foreign,
               foreign == 1 ? "" : "s", foreign == 1 ? "s" : "");
    }

    if (!missing.empty()) {
        // Fill unknown costs from a workload-size heuristic: the
        // simulated footprint is a stable proxy for run length when
        // no prior run of the pair exists. Heuristic and measured
        // costs only ever order runs, never change them.
        for (Job &job : missing) {
            if (job.estimate <= 0.0) {
                job.estimate = static_cast<double>(
                    makeWorkload(job.req->workload)
                        ->footprintBytes(job.req->cfg.workloadScale));
            }
        }

        // Longest-job-first; submission order breaks ties so the
        // schedule is reproducible.
        std::sort(missing.begin(), missing.end(),
                  [](const Job &a, const Job &b) {
                      if (a.estimate != b.estimate)
                          return a.estimate > b.estimate;
                      return a.submitOrder < b.submitOrder;
                  });

        if (jobs == 0)
            jobs = sweepJobs();
        if (static_cast<std::size_t>(jobs) > missing.size())
            jobs = static_cast<unsigned>(missing.size());
        inform("sweeping %zu (workload, policy) runs on %u worker%s "
               "(longest-first) ...",
               missing.size(), jobs, jobs == 1 ? "" : "s");

        std::atomic<std::size_t> next{0};
        std::exception_ptr error;
        std::mutex error_mu;

        auto worker = [&] {
            // Worker-local System, reused across every structurally
            // compatible run this worker executes.
            std::unique_ptr<System> sys;
            std::string sys_structure;
            for (;;) {
                std::size_t k =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (k >= missing.size())
                    return;
                const Job &job = missing[k];
                try {
                    RunMetrics m = runJob(job, sys, sys_structure);
                    std::lock_guard<std::mutex> lk(mu_);
                    cache().insert(job.sig, std::move(m));
                } catch (...) {
                    std::lock_guard<std::mutex> lk(error_mu);
                    if (!error)
                        error = std::current_exception();
                    next.store(missing.size(),
                               std::memory_order_relaxed);
                    return;
                }
            }
        };

        if (jobs <= 1) {
            worker();
        } else {
            std::vector<std::thread> pool;
            pool.reserve(jobs);
            for (unsigned t = 0; t < jobs; ++t)
                pool.emplace_back(worker);
            for (auto &th : pool)
                th.join();
        }
        if (error)
            std::rethrow_exception(error);

        flush();

        // The batch summary: what the sweep actually cost, and - so
        // a truncated cache cannot pass for a cold one - how many
        // cache rows were lost to parse errors.
        std::lock_guard<std::mutex> lk(mu_);
        const std::size_t lost = cache().parseErrors() +
                                 warm_.parseErrors();
        inform("sweep batch done: %zu simulated, %zu cache parse "
               "error%s",
               missing.size(), lost, lost == 1 ? "" : "s");
    }

    // Phase 2: every owned request is now cached; answer in request
    // order (placeholders for points other shards own).
    std::vector<RunMetrics> results;
    results.reserve(requests.size());
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const RunMetrics *m = findCached(sigs[i], requests[i].workload,
                                         requests[i].policy);
        if (m == nullptr &&
            !shard_.owns(sigs[i], requests[i].workload,
                         requests[i].policy)) {
            m = &placeholderFor(sigs[i], requests[i].workload,
                                requests[i].policy);
        }
        panic_if(m == nullptr, "sweep engine lost a result for %s/%s",
                 requests[i].workload.c_str(),
                 requests[i].policy.c_str());
        results.push_back(*m);
    }
    return results;
}

SweepEngine::FleetRunStats
SweepEngine::runFleet(const std::vector<RunRequest> &requests,
                      FleetClient &client, unsigned jobs)
{
    if (jobs == 0)
        jobs = sweepJobs();
    if (jobs == 0)
        jobs = 1;

    FleetRunStats stats;
    std::mutex stats_mu;

    // Leased keys flow through a small channel to a persistent
    // thread pool, so worker Systems stay warm across leases the
    // same way run()'s pool keeps them warm across jobs.
    std::mutex qmu;
    std::condition_variable qcv;   // work arrived / closed
    std::condition_variable idle;  // lease fully processed
    std::deque<std::pair<std::uint64_t, std::uint32_t>> work;
    std::size_t inflight = 0;
    bool closed = false;

    std::exception_ptr error;
    std::mutex error_mu;

    auto processKey = [&](std::uint64_t id, std::uint32_t key,
                          std::unique_ptr<System> &sys,
                          std::string &sys_structure) {
        panic_if(static_cast<std::size_t>(key) >= requests.size(),
                 "fleet lease key %u outside the %zu-point grid",
                 key, requests.size());
        if (!client.ownedNow(id, key))
            return; // stolen (or the lease went stale): not ours
        const RunRequest &req = requests[key];
        const std::string sig = req.cfg.signature();
        bool cached;
        {
            std::lock_guard<std::mutex> lk(mu_);
            cached =
                findCached(sig, req.workload, req.policy) != nullptr;
        }
        if (cached) {
            hits_.fetch_add(1, std::memory_order_relaxed);
            if (client.pushEnabled()) {
                // In the no-shared-filesystem mode, the only bytes
                // the coordinator ever sees are pushed shard files -
                // so a row satisfied from the warm import must be
                // promoted into the writable shard cache before this
                // key is reported done (insert is first-write-wins:
                // a row already in the shard cache is a no-op).
                std::lock_guard<std::mutex> lk(mu_);
                const RunMetrics *m =
                    findCached(sig, req.workload, req.policy);
                if (m != nullptr) {
                    cache().insert(sig, *m);
                    cache().checkpoint();
                }
            }
        } else {
            Job job{&req, sig, 0.0, key};
            RunMetrics m = runJob(job, sys, sys_structure);
            std::lock_guard<std::mutex> lk(mu_);
            cache().insert(sig, std::move(m));
            // Checkpoint before reporting done: the coordinator
            // retires a key on `done`, so the row must already be
            // durable in the shard cache - this ordering is the
            // whole crash-safety contract. The checkpoint appends
            // the fresh rows (O(fresh) bytes); making every run
            // durable no longer costs a whole-file rewrite per run.
            cache().checkpoint();
        }
        if (client.pushEnabled()) {
            // Push-before-done extends the checkpoint-before-done
            // ordering across hosts: once the coordinator retires
            // this key, its row is already durable *there*. The
            // whole file is read under the engine lock (no
            // checkpoint can land mid-read) and pushes only ever
            // grow, so the last push stored for this shard holds
            // every row reported before it.
            std::string bytes;
            {
                std::lock_guard<std::mutex> lk(mu_);
                std::ifstream in(cachePath_, std::ios::binary);
                if (in) {
                    std::ostringstream ss;
                    ss << in.rdbuf();
                    bytes = ss.str();
                }
            }
            if (!bytes.empty())
                client.pushShard(id, bytes);
        }
        bool fresh = client.done(id, key);
        std::lock_guard<std::mutex> lk(stats_mu);
        if (cached)
            ++stats.hits;
        else
            ++stats.runs;
        if (!fresh)
            ++stats.stale;
    };

    auto workerFn = [&] {
        std::unique_ptr<System> sys;
        std::string sys_structure;
        for (;;) {
            std::pair<std::uint64_t, std::uint32_t> item;
            {
                std::unique_lock<std::mutex> lk(qmu);
                qcv.wait(lk,
                         [&] { return closed || !work.empty(); });
                if (work.empty())
                    return; // closed and drained
                item = work.front();
                work.pop_front();
                ++inflight;
            }
            try {
                processKey(item.first, item.second, sys,
                           sys_structure);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lk(error_mu);
                    if (!error)
                        error = std::current_exception();
                }
                std::lock_guard<std::mutex> lk(qmu);
                work.clear();
                closed = true;
                --inflight;
                qcv.notify_all();
                idle.notify_all();
                return;
            }
            {
                std::lock_guard<std::mutex> lk(qmu);
                --inflight;
            }
            idle.notify_all();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(jobs);
    for (unsigned t = 0; t < jobs; ++t)
        pool.emplace_back(workerFn);

    for (;;) {
        {
            std::lock_guard<std::mutex> lk(qmu);
            if (closed)
                break; // a worker hit an error
        }
        FleetGrant grant = client.lease();
        if (grant.kind == FleetGrant::Kind::drained)
            break;
        {
            std::lock_guard<std::mutex> lk(stats_mu);
            ++stats.leases;
        }
        {
            std::lock_guard<std::mutex> lk(qmu);
            for (std::uint32_t key : grant.keys)
                work.emplace_back(grant.id, key);
        }
        qcv.notify_all();
        // One lease at a time: wait for this one to be fully
        // processed (the renewer keeps it alive throughout) before
        // asking for the next, so the coordinator's remaining-cost
        // picture stays honest for steal decisions.
        {
            std::unique_lock<std::mutex> lk(qmu);
            idle.wait(lk, [&] {
                return closed || (work.empty() && inflight == 0);
            });
        }
        client.finishLease();
    }

    {
        std::lock_guard<std::mutex> lk(qmu);
        closed = true;
    }
    qcv.notify_all();
    for (std::thread &t : pool)
        t.join();
    if (error)
        std::rethrow_exception(error);

    flush();
    return stats;
}

void
SweepEngine::flush()
{
    std::lock_guard<std::mutex> lk(mu_);
    // An untouched lazy cache has nothing to flush; constructing it
    // here would force the file parse that mmap-serving avoided.
    if (cachePtr_ != nullptr)
        cachePtr_->flush();
}

std::shared_ptr<const CacheSnapshot>
SweepEngine::snapshot()
{
    std::lock_guard<std::mutex> lk(mu_);
    std::shared_ptr<const CacheSnapshot> own = cache().snapshot();
    std::shared_ptr<const CacheSnapshot> side = warm_.snapshot();
    if (side->rows() == 0)
        return own;
    // Union with the warm side store, writable rows winning - the
    // same precedence findCached() applies. addAll retains both
    // inputs, so the merged snapshot keeps their row stores alive.
    CacheSnapshot::Builder b;
    b.addAll(own);
    b.addAll(side);
    return b.build();
}

} // namespace migc
