/**
 * @file
 * An immutable, indexed view of run-cache contents, shared between
 * threads by shared_ptr swap.
 *
 * The serving story (bench/migc_serve, docs/SERVE.md) needs many
 * concurrent readers answering cache queries while a writer folds in
 * freshly simulated rows. The classic split: results live in an
 * append-only row store (rows are written once, then never move -
 * the "append log"), and a CacheSnapshot is an immutable index of
 * `const RunMetrics *` over some prefix of that log. Publishing new
 * results builds a *new* snapshot (cheap: the index holds pointers,
 * not rows) and swaps one shared_ptr; readers keep using whatever
 * snapshot they loaded, lock-free, for as long as they hold it.
 *
 * A snapshot has a second, zero-copy representation: fromMappedFile()
 * wraps an mmap'd single-segment v4 cache file (cache_v4.hh) without
 * materializing a single RunMetrics. Queries then run on the interned
 * columns directly - binary search over interned ids for exact finds,
 * glob evaluation once per distinct interned string (instead of once
 * per row) before any row is touched. Only the serialization-level
 * API (findCsv / matchCsv / rows / sectionCount / estimateEvents)
 * works on a mapped snapshot; the pointer-returning find()/match()
 * and sections() are materialized-only, because a mapped snapshot
 * has no RunMetrics objects to point at. This is how migc_serve
 * starts serving by mapping the cache instead of parsing it.
 *
 * Ownership: a snapshot retains (via keep-alive shared_ptrs) every
 * row store - or mapped file - its pointers reach into, so a query
 * result stays valid for the lifetime of the snapshot that produced
 * it - even after the owning RunCache is gone.
 *
 * Thread-safety: a built CacheSnapshot is deeply immutable; any
 * number of threads may query one concurrently with no locking. The
 * Builder is single-threaded.
 */

#ifndef MIGC_CORE_CACHE_SNAPSHOT_HH
#define MIGC_CORE_CACHE_SNAPSHOT_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hh"

namespace migc
{

class MappedCacheV4;

/**
 * Glob match with '*' (any run, including empty) and '?' (exactly
 * one character); everything else matches literally. The pattern
 * language of migc_serve's `match` queries. Iterative two-pointer
 * matching with single-star backtracking: O(|pattern| * |text|)
 * worst case even on adversarial multi-'*' patterns, never the
 * exponential blowup of naive recursive matchers.
 */
bool globMatch(const std::string &pattern, const std::string &text);

class CacheSnapshot
{
  public:
    /** (workload, policy) - the row key inside one config section. */
    using Key = std::pair<std::string, std::string>;

    /** One config section: sorted rows, pointers into a row store. */
    using Section = std::map<Key, const RunMetrics *>;

    /** Sections keyed by config signature, sorted. */
    using SectionMap = std::map<std::string, Section>;

    /** The shared empty snapshot. */
    static std::shared_ptr<const CacheSnapshot> empty();

    /**
     * Zero-copy snapshot over a mapped v4 cache file: no rows are
     * materialized, queries answer straight from the interned
     * columns. Serialization-level queries only (see the file
     * comment); find()/match()/sections() on the result are empty.
     */
    static std::shared_ptr<const CacheSnapshot>
    fromMappedFile(std::shared_ptr<const MappedCacheV4> file);

    /** True for a fromMappedFile() snapshot. */
    bool mapped() const { return mapped_ != nullptr; }

    /** Row for (sig, workload, policy), or nullptr. Materialized
     *  snapshots only: always nullptr on a mapped snapshot. */
    const RunMetrics *find(const std::string &sig,
                           const std::string &workload,
                           const std::string &policy) const;

    /**
     * All rows whose (signature, workload, policy) match the three
     * glob patterns, in canonical order (sorted by signature, then
     * workload, then policy - the cache-file serialization order, so
     * pattern answers are byte-stable across runs). Materialized
     * snapshots only: empty on a mapped snapshot.
     */
    std::vector<const RunMetrics *>
    match(const std::string &sig_pattern,
          const std::string &workload_pattern,
          const std::string &policy_pattern) const;

    /**
     * Serialization-level exact lookup, valid on both
     * representations: on a hit, appends the row's CSV line (no
     * trailing newline) to @p out and returns true. A mapped
     * snapshot resolves the key by interned-id binary search and
     * formats the CSV straight from the metric column.
     */
    bool findCsv(const std::string &sig, const std::string &workload,
                 const std::string &policy, std::string &out) const;

    /**
     * Serialization-level glob query, valid on both representations:
     * appends one '\n'-terminated CSV line per matching row to
     * @p out, canonical order, and returns the match count. A mapped
     * snapshot evaluates each glob once per distinct interned string
     * (signatures per section, workload/policy over the string
     * table) and only then scans the key column - the prefilter that
     * makes glob serving cheap on wide caches.
     */
    std::size_t matchCsv(const std::string &sig_pattern,
                         const std::string &workload_pattern,
                         const std::string &policy_pattern,
                         std::string &out) const;

    /** Total rows, either representation. */
    std::size_t rows() const { return rows_; }

    /** Distinct config sections, either representation. */
    std::size_t sectionCount() const;

    /** Materialized index; empty for a mapped snapshot (use the
     *  serialization-level queries there). */
    const SectionMap &sections() const { return sections_; }

    /** Largest simEvents recorded for (workload, policy) under any
     *  signature; 0 when unseen (scheduler cost estimate). Valid on
     *  both representations. */
    double estimateEvents(const std::string &workload,
                          const std::string &policy) const;

    /** Single-threaded assembler for a new snapshot. */
    class Builder
    {
      public:
        /**
         * Index @p row under (@p sig, row->workload, row->policy).
         * First add wins: returns false (and changes nothing) when
         * the key is already present. Placeholder rows are refused
         * (returns false): a snapshot is a serving surface, and an
         * all-zero stand-in must never be served as a result.
         * The caller guarantees @p row outlives the built snapshot
         * or registers its owner via retain().
         */
        bool add(const std::string &sig, const RunMetrics *row);

        /**
         * add() for canonically ordered input: amortized O(1) per
         * row when rows arrive sorted by (sig, workload, policy) -
         * the order of a compacted v4 segment - via end-of-map
         * hints; falls back to add() whenever the hint is wrong, so
         * unsorted input stays correct, just slower.
         */
        bool addSorted(const std::string &sig, const RunMetrics *row);

        /** Keep @p owner alive as long as the built snapshot. */
        void retain(std::shared_ptr<const void> owner);

        /** add() every row of @p snap (existing keys win) and retain
         *  it, so merged snapshots keep their row stores alive.
         *  Mapped snapshots are refused (panic): they have no rows
         *  to add, and silently dropping a whole cache would be far
         *  worse than crashing. */
        void addAll(const std::shared_ptr<const CacheSnapshot> &snap);

        /** Finish; the builder is empty afterwards. */
        std::shared_ptr<const CacheSnapshot> build();

      private:
        SectionMap sections_;
        std::size_t rows_ = 0;
        std::vector<std::shared_ptr<const void>> keepAlive_;

        /** addSorted() hint state: the section and row positions of
         *  the previous add. */
        SectionMap::iterator hintSection_;
        bool haveHint_ = false;
    };

  private:
    CacheSnapshot(SectionMap sections, std::size_t rows,
                  std::vector<std::shared_ptr<const void>> keep_alive);

    explicit CacheSnapshot(std::shared_ptr<const MappedCacheV4> file);

    SectionMap sections_;
    std::size_t rows_;
    std::vector<std::shared_ptr<const void>> keepAlive_;

    /** Zero-copy base; non-null exactly for mapped snapshots. */
    std::shared_ptr<const MappedCacheV4> mapped_;
};

} // namespace migc

#endif // MIGC_CORE_CACHE_SNAPSHOT_HH
