/**
 * @file
 * An immutable, indexed view of run-cache contents, shared between
 * threads by shared_ptr swap.
 *
 * The serving story (bench/migc_serve, docs/SERVE.md) needs many
 * concurrent readers answering cache queries while a writer folds in
 * freshly simulated rows. The classic split: results live in an
 * append-only row store (rows are written once, then never move -
 * the "append log"), and a CacheSnapshot is an immutable index of
 * `const RunMetrics *` over some prefix of that log. Publishing new
 * results builds a *new* snapshot (cheap: the index holds pointers,
 * not rows) and swaps one shared_ptr; readers keep using whatever
 * snapshot they loaded, lock-free, for as long as they hold it.
 *
 * Ownership: a snapshot retains (via keep-alive shared_ptrs) every
 * row store its pointers reach into, so a query result stays valid
 * for the lifetime of the snapshot that produced it - even after
 * the owning RunCache is gone.
 *
 * Thread-safety: a built CacheSnapshot is deeply immutable; any
 * number of threads may query one concurrently with no locking. The
 * Builder is single-threaded.
 */

#ifndef MIGC_CORE_CACHE_SNAPSHOT_HH
#define MIGC_CORE_CACHE_SNAPSHOT_HH

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hh"

namespace migc
{

/**
 * Glob match with '*' (any run, including empty) and '?' (exactly
 * one character); everything else matches literally. The pattern
 * language of migc_serve's `match` queries.
 */
bool globMatch(const std::string &pattern, const std::string &text);

class CacheSnapshot
{
  public:
    /** (workload, policy) - the row key inside one config section. */
    using Key = std::pair<std::string, std::string>;

    /** One config section: sorted rows, pointers into a row store. */
    using Section = std::map<Key, const RunMetrics *>;

    /** Sections keyed by config signature, sorted. */
    using SectionMap = std::map<std::string, Section>;

    /** The shared empty snapshot. */
    static std::shared_ptr<const CacheSnapshot> empty();

    /** Row for (sig, workload, policy), or nullptr. */
    const RunMetrics *find(const std::string &sig,
                           const std::string &workload,
                           const std::string &policy) const;

    /**
     * All rows whose (signature, workload, policy) match the three
     * glob patterns, in canonical order (sorted by signature, then
     * workload, then policy - the cache-file serialization order, so
     * pattern answers are byte-stable across runs).
     */
    std::vector<const RunMetrics *>
    match(const std::string &sig_pattern,
          const std::string &workload_pattern,
          const std::string &policy_pattern) const;

    /** Total rows across all sections. */
    std::size_t rows() const { return rows_; }

    const SectionMap &sections() const { return sections_; }

    /** Largest simEvents recorded for (workload, policy) under any
     *  signature; 0 when unseen (scheduler cost estimate). */
    double estimateEvents(const std::string &workload,
                          const std::string &policy) const;

    /** Single-threaded assembler for a new snapshot. */
    class Builder
    {
      public:
        /**
         * Index @p row under (@p sig, row->workload, row->policy).
         * First add wins: returns false (and changes nothing) when
         * the key is already present. Placeholder rows are refused
         * (returns false): a snapshot is a serving surface, and an
         * all-zero stand-in must never be served as a result.
         * The caller guarantees @p row outlives the built snapshot
         * or registers its owner via retain().
         */
        bool add(const std::string &sig, const RunMetrics *row);

        /** Keep @p owner alive as long as the built snapshot. */
        void retain(std::shared_ptr<const void> owner);

        /** add() every row of @p snap (existing keys win) and retain
         *  it, so merged snapshots keep their row stores alive. */
        void addAll(const std::shared_ptr<const CacheSnapshot> &snap);

        /** Finish; the builder is empty afterwards. */
        std::shared_ptr<const CacheSnapshot> build();

      private:
        SectionMap sections_;
        std::size_t rows_ = 0;
        std::vector<std::shared_ptr<const void>> keepAlive_;
    };

  private:
    CacheSnapshot(SectionMap sections, std::size_t rows,
                  std::vector<std::shared_ptr<const void>> keep_alive);

    SectionMap sections_;
    std::size_t rows_;
    std::vector<std::shared_ptr<const void>> keepAlive_;
};

} // namespace migc

#endif // MIGC_CORE_CACHE_SNAPSHOT_HH
