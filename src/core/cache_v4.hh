/**
 * @file
 * The v4 binary columnar sweep-cache format.
 *
 * A v4 file is a sequence of self-contained *segments*. Each segment
 * carries its own string table (every distinct signature / workload /
 * policy name, sorted, so interned ids order exactly like the
 * strings), a sorted key column of interned-id triples, a fixed-width
 * metric column (one 176-byte row per key, fields in CSV column
 * order), and a checksummed footer. A compacted cache is one segment
 * in canonical (signature, workload, policy) order - byte-identical
 * for a given row set no matter how it was produced; checkpoints
 * append one small segment of fresh rows instead of rewriting the
 * file (see RunCache::checkpoint).
 *
 * Layout (all integers little-endian, every part 8-byte aligned, so
 * segments always start on an 8-byte boundary):
 *
 *   header   (64 B): magic "MIGC4SEG", u32 version, u32 endian tag,
 *                    u64 segmentBytes, u64 stringCount,
 *                    u64 stringBytes, u64 rowCount, u64 reserved[2]
 *   stringEnds     : u64[stringCount]  (end offset of each string)
 *   blob           : char[stringBytes] (concatenated, 0-padded to 8)
 *   keys           : {u32 sig, u32 workload, u32 policy, u32 pad}
 *                    [rowCount], sorted by the id triple
 *   rows           : V4Row[rowCount]   (rows[i] belongs to keys[i])
 *   footer   (24 B): u64 checksum (over everything before the
 *                    footer), u64 rowCount, magic "MIGC4END"
 *
 * A torn append (crash mid-write) truncates or garbles the *last*
 * segment only; the footer checksum catches it, readers keep every
 * earlier segment and report the tail as one parse error, and the
 * next compaction rewrites a clean file. The tmp+rename discipline
 * of full saves is unchanged.
 */

#ifndef MIGC_CORE_CACHE_V4_HH
#define MIGC_CORE_CACHE_V4_HH

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.hh"

namespace migc
{

/** First / last 8 bytes of every segment. */
constexpr char kV4SegMagic[8] = {'M', 'I', 'G', 'C', '4', 'S', 'E', 'G'};
constexpr char kV4EndMagic[8] = {'M', 'I', 'G', 'C', '4', 'E', 'N', 'D'};
constexpr std::uint32_t kV4Version = 1;
constexpr std::uint32_t kV4EndianTag = 0x01020304u;
constexpr std::size_t kV4HeaderBytes = 64;
constexpr std::size_t kV4FooterBytes = 24;

/** @return true when @p p (>= 8 bytes) starts with the segment
 *  magic - the whole-file format sniff. */
inline bool
isV4Magic(const char *p)
{
    return std::memcmp(p, kV4SegMagic, sizeof(kV4SegMagic)) == 0;
}

/**
 * Checksum used by segment footers: splitmix64 chained over 64-bit
 * words (tail bytes zero-padded into a final word). Not
 * cryptographic - it exists to detect torn appends and truncation,
 * and to do so at memory bandwidth rather than byte-at-a-time FNV
 * speed, since every load verifies it.
 */
std::uint64_t v4Checksum(const void *data, std::size_t n);

/** The fixed-width metric column: RunMetrics' numeric fields in CSV
 *  column order (execTicks, then the 21 doubles of toCsv()). */
struct V4Row
{
    std::uint64_t execTicks;
    double m[21];
};
static_assert(sizeof(V4Row) == 176, "v4 metric row layout drifted");

/** Interned key triple; ids index the segment's string table. */
struct V4Key
{
    std::uint32_t sig;
    std::uint32_t workload;
    std::uint32_t policy;
    std::uint32_t pad;
};
static_assert(sizeof(V4Key) == 16, "v4 key layout drifted");

/** Pack the numeric fields of @p m (names travel via the string
 *  table). Doubles are stored verbatim, so CSV re-export formats the
 *  exact same values byte-identically. */
V4Row packV4Row(const RunMetrics &m);

/** Unpack numeric fields into @p out (leaves names/placeholder
 *  alone). */
void unpackV4Row(const V4Row &row, RunMetrics &out);

/** One row bound for a segment: names as views (the writer interns
 *  them), metrics by value. */
struct V4RowRef
{
    std::string_view sig;
    std::string_view workload;
    std::string_view policy;
    V4Row data;
};

/**
 * Serialize one segment from @p rows, which MUST be sorted by
 * (sig, workload, policy) with no duplicate keys - the canonical
 * cache order. Deterministic: same rows, same bytes.
 */
std::string buildV4Segment(const std::vector<V4RowRef> &rows);

/** A parsed, validated view over one segment's bytes (not owning). */
struct V4SegmentView
{
    std::size_t bytes = 0; ///< total segment size, header..footer
    std::uint64_t stringCount = 0;
    std::uint64_t rowCount = 0;
    const std::uint64_t *stringEnds = nullptr;
    const char *blob = nullptr;
    const V4Key *keys = nullptr;
    const V4Row *rows = nullptr;

    std::string_view
    str(std::uint32_t id) const
    {
        const std::uint64_t begin = id == 0 ? 0 : stringEnds[id - 1];
        return std::string_view(blob + begin, stringEnds[id] - begin);
    }
};

/**
 * Parse and validate the segment starting at @p p (8-byte aligned,
 * @p avail bytes available). Verifies magic, version, endianness,
 * internal bounds, the footer checksum, and that the string table is
 * sorted unique. @return false (with @p why set) on any mismatch -
 * including a torn tail shorter than the header claims.
 */
bool parseV4Segment(const char *p, std::size_t avail,
                    V4SegmentView &seg, std::string *why);

/** Segments parseable from the front of @p path (stops at the first
 *  damaged one); 0 for missing/non-v4 files. Test/introspection. */
std::size_t v4SegmentCount(const std::string &path);

/**
 * A whole v4 cache file mapped read-only - the zero-copy base of a
 * mapped CacheSnapshot (cache_snapshot.hh). Mapping succeeds only
 * for a clean single-segment (i.e. compacted) file whose checksum
 * verifies; anything else - text formats, multi-segment files with
 * pending appends, torn tails - must go through RunCache's parsing
 * loader instead. The mapping lives until the last shared_ptr drops.
 */
class MappedCacheV4
{
  public:
    /** Map @p path; nullptr (with @p why set) when not mappable. */
    static std::shared_ptr<const MappedCacheV4>
    map(const std::string &path, std::string *why);

    ~MappedCacheV4();

    MappedCacheV4(const MappedCacheV4 &) = delete;
    MappedCacheV4 &operator=(const MappedCacheV4 &) = delete;

    const V4SegmentView &segment() const { return seg_; }
    std::size_t rows() const { return seg_.rowCount; }

    /** Distinct signatures (= config sections). */
    std::size_t sections() const { return sections_.size(); }

    /** Interned id of @p s, or -1: binary search over the sorted
     *  string table (id order == string order). */
    std::int64_t stringId(std::string_view s) const;

    /** Row index for the exact key triple, or -1: interned-id
     *  binary search over the sorted key column. */
    std::int64_t findRow(std::string_view sig, std::string_view workload,
                         std::string_view policy) const;

    /** One config section: key range [begin, end) in the row
     *  columns; every key in it shares keys[begin].sig. */
    struct SectionRange
    {
        std::size_t begin;
        std::size_t end;
    };

    const std::vector<SectionRange> &sectionRanges() const
    {
        return sections_;
    }

    /** Materialize row @p idx (names copied from the string
     *  table). */
    RunMetrics materialize(std::size_t idx) const;

  private:
    MappedCacheV4() = default;

    void *base_ = nullptr;
    std::size_t len_ = 0;
    V4SegmentView seg_;
    std::vector<SectionRange> sections_;
};

} // namespace migc

#endif // MIGC_CORE_CACHE_V4_HH
