#include "core/metrics.hh"

#include <cstdio>
#include <sstream>
#include <vector>

#include "sim/logging.hh"

namespace migc
{

std::string
RunMetrics::csvHeader()
{
    return "workload,policy,exec_ticks,exec_seconds,gpu_mem_requests,"
           "dram_reads,dram_writes,dram_accesses,dram_row_hit_rate,"
           "cache_stall_cycles,stalls_per_request,vops,gvops,gmrps,"
           "l1_hits,l1_misses,l2_hits,l2_misses,l2_writebacks,"
           "rinse_writebacks,alloc_bypassed,predictor_bypasses,kernels,"
           "sim_events";
}

std::string
RunMetrics::toCsv() const
{
    return csprintf(
        "%s,%s,%llu,%.9e,%.0f,%.0f,%.0f,%.0f,%.9f,%.0f,%.9f,%.0f,%.6f,"
        "%.6f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f,%.0f",
        workload.c_str(), policy.c_str(),
        static_cast<unsigned long long>(execTicks), execSeconds,
        gpuMemRequests, dramReads, dramWrites, dramAccesses,
        dramRowHitRate, cacheStallCycles, stallsPerRequest, vops, gvops,
        gmrps, l1Hits, l1Misses, l2Hits, l2Misses, l2Writebacks,
        rinseWritebacks, allocBypassed, predictorBypasses, kernels,
        simEvents);
}

bool
RunMetrics::fromCsv(const std::string &line, RunMetrics &out)
{
    std::vector<std::string> fields;
    std::stringstream ss(line);
    std::string item;
    while (std::getline(ss, item, ','))
        fields.push_back(item);
    // 23 fields is the pre-sim_events schema; those rows are still
    // valid results, just without a scheduler cost estimate.
    if (fields.size() != 23 && fields.size() != 24)
        return false;

    out.workload = fields[0];
    out.policy = fields[1];
    try {
        out.execTicks = std::stoull(fields[2]);
        out.execSeconds = std::stod(fields[3]);
        out.gpuMemRequests = std::stod(fields[4]);
        out.dramReads = std::stod(fields[5]);
        out.dramWrites = std::stod(fields[6]);
        out.dramAccesses = std::stod(fields[7]);
        out.dramRowHitRate = std::stod(fields[8]);
        out.cacheStallCycles = std::stod(fields[9]);
        out.stallsPerRequest = std::stod(fields[10]);
        out.vops = std::stod(fields[11]);
        out.gvops = std::stod(fields[12]);
        out.gmrps = std::stod(fields[13]);
        out.l1Hits = std::stod(fields[14]);
        out.l1Misses = std::stod(fields[15]);
        out.l2Hits = std::stod(fields[16]);
        out.l2Misses = std::stod(fields[17]);
        out.l2Writebacks = std::stod(fields[18]);
        out.rinseWritebacks = std::stod(fields[19]);
        out.allocBypassed = std::stod(fields[20]);
        out.predictorBypasses = std::stod(fields[21]);
        out.kernels = std::stod(fields[22]);
        out.simEvents = fields.size() > 23 ? std::stod(fields[23]) : 0.0;
    } catch (...) {
        return false;
    }
    return true;
}

} // namespace migc
