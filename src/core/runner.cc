#include "core/runner.hh"

#include "core/system.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace migc
{

RunMetrics
runWorkloadOn(System &sys, const Workload &workload)
{
    const SimConfig &cfg = sys.config();
    const CachePolicy &policy = sys.policy();
    auto kernels = workload.kernels(cfg.workloadScale);

    bool done = false;
    sys.gpu().dispatcher().run(std::move(kernels),
                               [&done] { done = true; });

    // Generous safety budget: a run needs a few million events; a
    // deadlocked run would otherwise spin forever.
    constexpr std::uint64_t maxEvents = 2'000'000'000ULL;
    sys.eventQueue().runUntil([&done] { return done; }, maxEvents);
    fatal_if(!done,
             "simulation did not complete: workload=%s policy=%s "
             "(deadlock or event budget exhausted at tick %llu)",
             workload.name().c_str(), policy.name.c_str(),
             static_cast<unsigned long long>(
                 sys.eventQueue().curTick()));

    RunMetrics m;
    m.workload = workload.name();
    m.policy = policy.name;
    m.execTicks = sys.eventQueue().curTick();
    m.execSeconds = static_cast<double>(m.execTicks) /
                    static_cast<double>(simSecond);

    m.gpuMemRequests = sys.gpu().totalMemRequests();
    m.dramReads = sys.dram().totalReads();
    m.dramWrites = sys.dram().totalWrites();
    m.dramAccesses = sys.dram().totalAccesses();
    m.dramRowHitRate = sys.dram().rowHitRate();

    m.cacheStallCycles = sys.totalCacheStallCycles();
    m.stallsPerRequest = m.gpuMemRequests > 0
                             ? m.cacheStallCycles / m.gpuMemRequests
                             : 0.0;

    m.vops = sys.gpu().totalVops();
    m.gvops = m.execSeconds > 0 ? m.vops * 64.0 / m.execSeconds / 1e9
                                : 0.0;
    m.gmrps = m.execSeconds > 0
                  ? m.gpuMemRequests / m.execSeconds / 1e9
                  : 0.0;

    m.l1Hits = sys.totalL1Hits();
    m.l1Misses = sys.totalL1Misses();
    m.l2Hits = sys.totalL2Hits();
    m.l2Misses = sys.totalL2Misses();
    m.l2Writebacks = sys.totalL2Writebacks();
    m.rinseWritebacks = sys.totalRinseWritebacks();
    m.allocBypassed = sys.totalAllocBypassed();
    m.predictorBypasses = sys.totalPredictorBypasses();
    m.kernels = sys.gpu().dispatcher().kernelsLaunched();
    m.simEvents = static_cast<double>(sys.eventQueue().numProcessed());
    return m;
}

RunMetrics
runWorkload(const Workload &workload, const SimConfig &cfg,
            const CachePolicy &policy)
{
    System sys(cfg, policy);
    return runWorkloadOn(sys, workload);
}

std::uint64_t
runSeedFor(const SimConfig &cfg, const std::string &workload,
           const std::string &policy)
{
    return deriveSeed(cfg.seed, workload + "/" + policy);
}

RunMetrics
runNamedWorkload(const std::string &workload, const SimConfig &cfg,
                 const std::string &policy)
{
    SimConfig run_cfg = cfg;
    run_cfg.seed = runSeedFor(cfg, workload, policy);
    auto wl = makeWorkload(workload);
    return runWorkload(*wl, run_cfg, CachePolicy::fromName(policy));
}

} // namespace migc
