#include "core/cache_snapshot.hh"

namespace migc
{

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative two-pointer matcher with single-star backtracking:
    // on mismatch, retry from the most recent '*' consuming one more
    // character. O(|pattern| * |text|) worst case, no allocation.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

CacheSnapshot::CacheSnapshot(
    SectionMap sections, std::size_t rows,
    std::vector<std::shared_ptr<const void>> keep_alive)
    : sections_(std::move(sections)), rows_(rows),
      keepAlive_(std::move(keep_alive))
{}

std::shared_ptr<const CacheSnapshot>
CacheSnapshot::empty()
{
    static const std::shared_ptr<const CacheSnapshot> instance(
        new CacheSnapshot({}, 0, {}));
    return instance;
}

const RunMetrics *
CacheSnapshot::find(const std::string &sig, const std::string &workload,
                    const std::string &policy) const
{
    auto sit = sections_.find(sig);
    if (sit == sections_.end())
        return nullptr;
    auto rit = sit->second.find(Key{workload, policy});
    return rit == sit->second.end() ? nullptr : rit->second;
}

std::vector<const RunMetrics *>
CacheSnapshot::match(const std::string &sig_pattern,
                     const std::string &workload_pattern,
                     const std::string &policy_pattern) const
{
    std::vector<const RunMetrics *> out;
    for (const auto &[sig, section] : sections_) {
        if (!globMatch(sig_pattern, sig))
            continue;
        for (const auto &[key, row] : section) {
            if (globMatch(workload_pattern, key.first) &&
                globMatch(policy_pattern, key.second)) {
                out.push_back(row);
            }
        }
    }
    return out;
}

double
CacheSnapshot::estimateEvents(const std::string &workload,
                              const std::string &policy) const
{
    double best = 0.0;
    for (const auto &[sig, section] : sections_) {
        auto it = section.find(Key{workload, policy});
        if (it != section.end() && it->second->simEvents > best)
            best = it->second->simEvents;
    }
    return best;
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

bool
CacheSnapshot::Builder::add(const std::string &sig,
                            const RunMetrics *row)
{
    if (row == nullptr || row->placeholder)
        return false;
    auto [it, fresh] = sections_[sig].emplace(
        Key{row->workload, row->policy}, row);
    (void)it;
    if (fresh)
        ++rows_;
    return fresh;
}

void
CacheSnapshot::Builder::retain(std::shared_ptr<const void> owner)
{
    if (owner)
        keepAlive_.push_back(std::move(owner));
}

void
CacheSnapshot::Builder::addAll(
    const std::shared_ptr<const CacheSnapshot> &snap)
{
    if (!snap)
        return;
    for (const auto &[sig, section] : snap->sections()) {
        for (const auto &[key, row] : section)
            add(sig, row);
    }
    retain(snap);
}

std::shared_ptr<const CacheSnapshot>
CacheSnapshot::Builder::build()
{
    // Drop sections that ended up empty (a section key learned from
    // a "# config" line with no parseable rows) so serialization and
    // match() never see hollow sections.
    for (auto it = sections_.begin(); it != sections_.end();) {
        if (it->second.empty())
            it = sections_.erase(it);
        else
            ++it;
    }
    auto snap = std::shared_ptr<const CacheSnapshot>(new CacheSnapshot(
        std::move(sections_), rows_, std::move(keepAlive_)));
    sections_ = {};
    rows_ = 0;
    keepAlive_ = {};
    return snap;
}

} // namespace migc
