#include "core/cache_snapshot.hh"

#include "core/cache_v4.hh"
#include "sim/logging.hh"

namespace migc
{

bool
globMatch(const std::string &pattern, const std::string &text)
{
    // Iterative two-pointer matcher with single-star backtracking:
    // on mismatch, retry from the most recent '*' consuming one more
    // character. O(|pattern| * |text|) worst case, no allocation.
    std::size_t p = 0, t = 0;
    std::size_t star = std::string::npos, mark = 0;
    while (t < text.size()) {
        if (p < pattern.size() &&
            (pattern[p] == '?' || pattern[p] == text[t])) {
            ++p;
            ++t;
        } else if (p < pattern.size() && pattern[p] == '*') {
            star = p++;
            mark = t;
        } else if (star != std::string::npos) {
            p = star + 1;
            t = ++mark;
        } else {
            return false;
        }
    }
    while (p < pattern.size() && pattern[p] == '*')
        ++p;
    return p == pattern.size();
}

CacheSnapshot::CacheSnapshot(
    SectionMap sections, std::size_t rows,
    std::vector<std::shared_ptr<const void>> keep_alive)
    : sections_(std::move(sections)), rows_(rows),
      keepAlive_(std::move(keep_alive))
{}

CacheSnapshot::CacheSnapshot(std::shared_ptr<const MappedCacheV4> file)
    : rows_(file->rows()), mapped_(std::move(file))
{}

std::shared_ptr<const CacheSnapshot>
CacheSnapshot::empty()
{
    static const std::shared_ptr<const CacheSnapshot> instance(
        new CacheSnapshot({}, 0, {}));
    return instance;
}

std::shared_ptr<const CacheSnapshot>
CacheSnapshot::fromMappedFile(std::shared_ptr<const MappedCacheV4> file)
{
    panic_if(file == nullptr,
             "fromMappedFile needs a mapped cache file");
    return std::shared_ptr<const CacheSnapshot>(
        new CacheSnapshot(std::move(file)));
}

const RunMetrics *
CacheSnapshot::find(const std::string &sig, const std::string &workload,
                    const std::string &policy) const
{
    auto sit = sections_.find(sig);
    if (sit == sections_.end())
        return nullptr;
    auto rit = sit->second.find(Key{workload, policy});
    return rit == sit->second.end() ? nullptr : rit->second;
}

std::vector<const RunMetrics *>
CacheSnapshot::match(const std::string &sig_pattern,
                     const std::string &workload_pattern,
                     const std::string &policy_pattern) const
{
    std::vector<const RunMetrics *> out;
    for (const auto &[sig, section] : sections_) {
        if (!globMatch(sig_pattern, sig))
            continue;
        for (const auto &[key, row] : section) {
            if (globMatch(workload_pattern, key.first) &&
                globMatch(policy_pattern, key.second)) {
                out.push_back(row);
            }
        }
    }
    return out;
}

bool
CacheSnapshot::findCsv(const std::string &sig,
                       const std::string &workload,
                       const std::string &policy,
                       std::string &out) const
{
    if (mapped_ != nullptr) {
        const std::int64_t idx =
            mapped_->findRow(sig, workload, policy);
        if (idx < 0)
            return false;
        out += mapped_->materialize(static_cast<std::size_t>(idx))
                   .toCsv();
        return true;
    }
    const RunMetrics *row = find(sig, workload, policy);
    if (row == nullptr)
        return false;
    out += row->toCsv();
    return true;
}

std::size_t
CacheSnapshot::matchCsv(const std::string &sig_pattern,
                        const std::string &workload_pattern,
                        const std::string &policy_pattern,
                        std::string &out) const
{
    if (mapped_ == nullptr) {
        std::size_t n = 0;
        for (const auto &[sig, section] : sections_) {
            if (!globMatch(sig_pattern, sig))
                continue;
            for (const auto &[key, row] : section) {
                if (globMatch(workload_pattern, key.first) &&
                    globMatch(policy_pattern, key.second)) {
                    out += row->toCsv();
                    out += '\n';
                    ++n;
                }
            }
        }
        return n;
    }

    // Interned-table prefilter: evaluate the workload/policy globs
    // once per distinct string, the signature glob once per section.
    // Rows are only visited inside sections whose signature matched,
    // and each visit is two byte-sized flag loads - the globs never
    // rescan per row.
    const V4SegmentView &seg = mapped_->segment();
    std::vector<unsigned char> wl_ok(seg.stringCount, 0);
    std::vector<unsigned char> pol_ok(seg.stringCount, 0);
    for (std::uint64_t i = 0; i < seg.stringCount; ++i) {
        const std::string s(seg.str(static_cast<std::uint32_t>(i)));
        wl_ok[i] = globMatch(workload_pattern, s) ? 1 : 0;
        pol_ok[i] = globMatch(policy_pattern, s) ? 1 : 0;
    }

    std::size_t n = 0;
    for (const MappedCacheV4::SectionRange &range :
         mapped_->sectionRanges()) {
        const std::string sig(
            seg.str(seg.keys[range.begin].sig));
        if (!globMatch(sig_pattern, sig))
            continue;
        for (std::size_t i = range.begin; i < range.end; ++i) {
            const V4Key &k = seg.keys[i];
            if (!wl_ok[k.workload] || !pol_ok[k.policy])
                continue;
            out += mapped_->materialize(i).toCsv();
            out += '\n';
            ++n;
        }
    }
    return n;
}

std::size_t
CacheSnapshot::sectionCount() const
{
    return mapped_ != nullptr ? mapped_->sections() : sections_.size();
}

double
CacheSnapshot::estimateEvents(const std::string &workload,
                              const std::string &policy) const
{
    if (mapped_ != nullptr) {
        const std::int64_t w = mapped_->stringId(workload);
        const std::int64_t p = mapped_->stringId(policy);
        if (w < 0 || p < 0)
            return 0.0;
        const V4SegmentView &seg = mapped_->segment();
        double best = 0.0;
        for (std::uint64_t i = 0; i < seg.rowCount; ++i) {
            const V4Key &k = seg.keys[i];
            if (k.workload == static_cast<std::uint32_t>(w) &&
                k.policy == static_cast<std::uint32_t>(p) &&
                seg.rows[i].m[20] > best) {
                best = seg.rows[i].m[20];
            }
        }
        return best;
    }
    double best = 0.0;
    for (const auto &[sig, section] : sections_) {
        auto it = section.find(Key{workload, policy});
        if (it != section.end() && it->second->simEvents > best)
            best = it->second->simEvents;
    }
    return best;
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

bool
CacheSnapshot::Builder::add(const std::string &sig,
                            const RunMetrics *row)
{
    if (row == nullptr || row->placeholder)
        return false;
    auto [it, fresh] = sections_[sig].emplace(
        Key{row->workload, row->policy}, row);
    (void)it;
    if (fresh)
        ++rows_;
    return fresh;
}

bool
CacheSnapshot::Builder::addSorted(const std::string &sig,
                                  const RunMetrics *row)
{
    if (row == nullptr || row->placeholder)
        return false;
    if (!haveHint_ || hintSection_->first != sig) {
        // New (or first) section: hint at the end of the section
        // map - correct whenever sections arrive in ascending order,
        // and emplace_hint stays correct (just slower) when not.
        hintSection_ =
            sections_.emplace_hint(sections_.end(), sig, Section{});
        haveHint_ = true;
    }
    Section &section = hintSection_->second;
    const std::size_t before = section.size();
    section.emplace_hint(section.end(),
                         Key{row->workload, row->policy}, row);
    if (section.size() == before)
        return false; // key already present: first add wins
    ++rows_;
    return true;
}

void
CacheSnapshot::Builder::retain(std::shared_ptr<const void> owner)
{
    if (owner)
        keepAlive_.push_back(std::move(owner));
}

void
CacheSnapshot::Builder::addAll(
    const std::shared_ptr<const CacheSnapshot> &snap)
{
    if (!snap)
        return;
    panic_if(snap->mapped(),
             "Builder::addAll on a mapped snapshot: it has no "
             "materialized rows to add, and dropping %zu rows "
             "silently is not an option - materialize through "
             "RunCache first",
             snap->rows());
    for (const auto &[sig, section] : snap->sections()) {
        for (const auto &[key, row] : section)
            add(sig, row);
    }
    retain(snap);
}

std::shared_ptr<const CacheSnapshot>
CacheSnapshot::Builder::build()
{
    // Drop sections that ended up empty (a section key learned from
    // a "# config" line with no parseable rows) so serialization and
    // match() never see hollow sections.
    for (auto it = sections_.begin(); it != sections_.end();) {
        if (it->second.empty())
            it = sections_.erase(it);
        else
            ++it;
    }
    auto snap = std::shared_ptr<const CacheSnapshot>(new CacheSnapshot(
        std::move(sections_), rows_, std::move(keepAlive_)));
    sections_ = {};
    rows_ = 0;
    keepAlive_ = {};
    haveHint_ = false;
    return snap;
}

} // namespace migc
