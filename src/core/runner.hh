/**
 * @file
 * Run one workload under one caching policy and harvest RunMetrics.
 */

#ifndef MIGC_CORE_RUNNER_HH
#define MIGC_CORE_RUNNER_HH

#include "core/metrics.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "workloads/workload.hh"

namespace migc
{

/**
 * Simulate @p workload to completion on a fresh System built from
 * @p cfg with @p policy applied. Deterministic: identical inputs
 * produce tick-identical results.
 *
 * Fatal if the simulation deadlocks (event budget exhausted).
 */
RunMetrics runWorkload(const Workload &workload, const SimConfig &cfg,
                       const CachePolicy &policy);

} // namespace migc

#endif // MIGC_CORE_RUNNER_HH
