/**
 * @file
 * Run one workload under one caching policy and harvest RunMetrics.
 */

#ifndef MIGC_CORE_RUNNER_HH
#define MIGC_CORE_RUNNER_HH

#include "core/metrics.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "workloads/workload.hh"

namespace migc
{

/**
 * Simulate @p workload to completion on a fresh System built from
 * @p cfg with @p policy applied. Deterministic: identical inputs
 * produce tick-identical results.
 *
 * Fatal if the simulation deadlocks (event budget exhausted).
 */
RunMetrics runWorkload(const Workload &workload, const SimConfig &cfg,
                       const CachePolicy &policy);

/**
 * Simulate the workload and policy given by name, with the run's
 * RNG streams seeded from a private stream derived from cfg.seed
 * and the (workload, policy) labels. Results therefore depend only
 * on the configuration and the names - never on which thread or in
 * which order a sweep executes the run - which is what lets
 * ExperimentSweep shard the grid across a thread pool while staying
 * bit-identical to a serial sweep.
 */
RunMetrics runNamedWorkload(const std::string &workload,
                            const SimConfig &cfg,
                            const std::string &policy);

} // namespace migc

#endif // MIGC_CORE_RUNNER_HH
