/**
 * @file
 * Run one workload under one caching policy and harvest RunMetrics.
 */

#ifndef MIGC_CORE_RUNNER_HH
#define MIGC_CORE_RUNNER_HH

#include "core/metrics.hh"
#include "core/sim_config.hh"
#include "policy/cache_policy.hh"
#include "workloads/workload.hh"

namespace migc
{

class System;

/**
 * Simulate @p workload to completion on @p sys and harvest its
 * metrics. @p sys must be freshly constructed or freshly reset();
 * its config and policy determine the run. This is the reuse-aware
 * core of every run entry point: the sweep engine calls it on a
 * worker's recycled System, the wrappers below on a temporary one.
 *
 * Fatal if the simulation deadlocks (event budget exhausted).
 */
RunMetrics runWorkloadOn(System &sys, const Workload &workload);

/**
 * Simulate @p workload to completion on a fresh System built from
 * @p cfg with @p policy applied. Deterministic: identical inputs
 * produce tick-identical results.
 */
RunMetrics runWorkload(const Workload &workload, const SimConfig &cfg,
                       const CachePolicy &policy);

/**
 * The per-run RNG seed stream for (workload, policy) under @p cfg.
 * The single source of truth for the run-seeding contract: every
 * path that simulates a named grid point - runNamedWorkload here,
 * the sweep engine's reuse path - must derive its seed through this
 * helper, or bit-identical results (and the run cache keyed on
 * them) would silently diverge between paths.
 */
std::uint64_t runSeedFor(const SimConfig &cfg,
                         const std::string &workload,
                         const std::string &policy);

/**
 * Simulate the workload and policy given by name, with the run's
 * RNG streams seeded from a private stream derived from cfg.seed
 * and the (workload, policy) labels (runSeedFor). Results therefore
 * depend only on the configuration and the names - never on which
 * thread or in which order a sweep executes the run - which is what
 * lets the sweep engine shard the grid across a thread pool while
 * staying bit-identical to a serial sweep.
 */
RunMetrics runNamedWorkload(const std::string &workload,
                            const SimConfig &cfg,
                            const std::string &policy);

} // namespace migc

#endif // MIGC_CORE_RUNNER_HH
