#include "core/shard.hh"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string_view>
#include <vector>

#include <map>
#include <tuple>

#include "core/cache_v4.hh"
#include "core/sweep_engine.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace migc
{

namespace
{

bool
fileExists(const std::string &path)
{
    return static_cast<bool>(std::ifstream(path));
}

long
fileSize(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return -1;
    std::fseek(f, 0, SEEK_END);
    const long n = std::ftell(f);
    std::fclose(f);
    return n;
}

/**
 * The zero-copy coordinator join: when the canonical cache and every
 * non-empty shard file are clean single-segment v4, merge them with
 * one k-way walk over the mapped, already-sorted key columns -
 * no RunCache, no per-row map inserts, no materialized RunMetrics -
 * and write the result as one canonical segment via tmp+rename.
 * Semantics match the sequential merge exactly: earlier inputs win
 * (canonical first, then shard 0..N-1), identical losing rows count
 * as duplicates, a differing row for the same key is fatal before
 * anything is written or removed.
 *
 * @return false (having written nothing) when any input disqualifies
 * the fast path - text formats, appended multi-segment files, torn
 * tails - so the caller falls back to the general RunCache merge.
 */
bool
mergeShardCachesV4(const std::string &base, unsigned shards,
                   ShardMergeStats &stats)
{
    struct Input
    {
        std::string path;
        std::shared_ptr<const MappedCacheV4> file;
        std::size_t next = 0;
        bool shard = false; ///< counts toward stats.rows
    };
    using MergeKey = std::tuple<std::string_view, std::string_view,
                                std::string_view>;

    std::vector<Input> inputs;
    std::vector<std::string> consumed;
    if (fileSize(base) > 0) {
        std::string why;
        auto file = MappedCacheV4::map(base, &why);
        if (file == nullptr)
            return false;
        inputs.push_back(Input{base, std::move(file), 0, false});
    }
    for (unsigned i = 0; i < shards; ++i) {
        const std::string path = shardCachePath(base, i);
        const long bytes = fileSize(path);
        if (bytes < 0)
            continue;
        if (bytes == 0) {
            // A worker SIGKILL'd before its first checkpoint leaves
            // a zero-length file: a legitimate empty cache, merged
            // as zero rows and consumed like any other shard input.
            stats.files += 1;
            consumed.push_back(path);
            continue;
        }
        std::string why;
        auto file = MappedCacheV4::map(path, &why);
        if (file == nullptr)
            return false;
        stats.files += 1;
        consumed.push_back(path);
        inputs.push_back(Input{path, std::move(file), 0, true});
    }

    auto keyOf = [](const Input &in, std::size_t idx) {
        const V4SegmentView &seg = in.file->segment();
        const V4Key &k = seg.keys[idx];
        return MergeKey{seg.str(k.sig), seg.str(k.workload),
                        seg.str(k.policy)};
    };

    std::vector<V4RowRef> out;
    {
        std::size_t total = 0;
        for (const Input &in : inputs)
            total += in.file->rows();
        out.reserve(total);
    }
    for (;;) {
        // Smallest live key across the input heads; the earliest
        // input breaks ties, so canonical rows take priority over
        // shard rows - the held-rows-win rule of the sequential
        // merge.
        int winner = -1;
        MergeKey best;
        for (std::size_t j = 0; j < inputs.size(); ++j) {
            const Input &in = inputs[j];
            if (in.next >= in.file->rows())
                continue;
            MergeKey key = keyOf(in, in.next);
            if (winner < 0 || key < best) {
                winner = static_cast<int>(j);
                best = key;
            }
        }
        if (winner < 0)
            break;
        Input &win = inputs[winner];
        const V4Row &wrow = win.file->segment().rows[win.next];
        out.push_back(V4RowRef{std::get<0>(best), std::get<1>(best),
                               std::get<2>(best), wrow});
        if (win.shard)
            stats.rows += 1;
        ++win.next;
        // Retire every other input's copy of this key.
        for (std::size_t j = 0; j < inputs.size(); ++j) {
            Input &in = inputs[j];
            if (static_cast<int>(j) == winner ||
                in.next >= in.file->rows() ||
                keyOf(in, in.next) != best)
                continue;
            const V4Row &lrow = in.file->segment().rows[in.next];
            // Bitwise equality is the common deterministic case; on
            // a mismatch, fall back to the serialized comparison the
            // sequential merge uses, so a bit pattern that formats
            // identically (e.g. -0.0 vs 0.0) still counts as a
            // duplicate rather than aborting the join.
            if (std::memcmp(&lrow, &wrow, sizeof(V4Row)) == 0 ||
                in.file->materialize(in.next).toCsv() ==
                    win.file->materialize(win.next - 1).toCsv()) {
                stats.duplicates += 1;
            } else {
                fatal("shard cache %s: row for %s/%s conflicts with "
                      "%s for the same (config, workload, policy) - "
                      "the shards did not run the same deterministic "
                      "sweep; refusing to merge (inputs left on "
                      "disk)",
                      in.path.c_str(),
                      std::string(std::get<1>(best)).c_str(),
                      std::string(std::get<2>(best)).c_str(),
                      win.path.c_str());
            }
            ++in.next;
        }
    }

    const std::string merged = buildV4Segment(out);
    const std::string tmp = csprintf("%s.%d.tmp", base.c_str(),
                                     static_cast<int>(::getpid()));
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    bool ok = f != nullptr;
    if (ok) {
        ok = std::fwrite(merged.data(), 1, merged.size(), f) ==
             merged.size();
        ok = (std::fclose(f) == 0) && ok;
    }
    if (ok && std::rename(tmp.c_str(), base.c_str()) != 0)
        ok = false;
    if (!ok) {
        std::remove(tmp.c_str());
        // Same contract as the general path: the shard inputs are
        // only consumed once the canonical file is safely on disk.
        fatal("could not write merged cache %s; shard inputs left "
              "on disk",
              base.c_str());
    }
    for (const std::string &path : consumed)
        std::remove(path.c_str());
    return true;
}

} // namespace

std::uint64_t
runKeyHash(const std::string &sig, const std::string &workload,
           const std::string &policy)
{
    // '\n' cannot appear inside a key component (keys are one-line
    // cache fields), so the concatenation is unambiguous.
    std::string key;
    key.reserve(sig.size() + workload.size() + policy.size() + 2);
    key += sig;
    key += '\n';
    key += workload;
    key += '\n';
    key += policy;
    return fnv1a(key);
}

unsigned
shardOf(const std::string &sig, const std::string &workload,
        const std::string &policy, unsigned shards)
{
    panic_if(shards == 0, "shardOf called with zero shards");
    return static_cast<unsigned>(runKeyHash(sig, workload, policy) %
                                 shards);
}

bool
ShardSpec::owns(const std::string &sig, const std::string &workload,
                const std::string &policy) const
{
    return !active() || shardOf(sig, workload, policy, shards) == index;
}

ShardSpec
shardFromEnv()
{
    ShardSpec spec;
    const char *shards = std::getenv("MIGC_SHARDS");
    const char *index = std::getenv("MIGC_SHARD_INDEX");
    if (shards == nullptr || shards[0] == '\0') {
        fatal_if(index != nullptr && index[0] != '\0',
                 "MIGC_SHARD_INDEX is set but MIGC_SHARDS is not");
        return spec;
    }
    spec.shards = parseBoundedUnsigned("MIGC_SHARDS", shards, 1, 4096);
    if (index == nullptr || index[0] == '\0') {
        // A worker must know which slice is its own: running the
        // whole grid because the index was forgotten would silently
        // duplicate every other worker's simulations.
        fatal_if(spec.active(),
                 "MIGC_SHARDS=%u needs MIGC_SHARD_INDEX in [0, %u)",
                 spec.shards, spec.shards);
        return spec;
    }
    // Validate the index even for MIGC_SHARDS=1: an out-of-range
    // index means the user meant a different fleet size, and
    // running the full grid would be the silent-duplication failure
    // this function exists to prevent.
    spec.index = parseBoundedUnsigned("MIGC_SHARD_INDEX", index, 0,
                                      spec.shards - 1);
    return spec;
}

std::string
shardCachePath(const std::string &base, unsigned index)
{
    return csprintf("%s.shard%u", base.c_str(), index);
}

ShardMergeStats
mergeShardCaches(const std::string &base, unsigned shards)
{
    fatal_if(base.empty(),
             "cannot merge shard caches without a cache path "
             "(MIGC_NO_CACHE sweeps leave nothing to merge)");
    fatal_if(shards < 1, "cannot merge zero shards");

    // Zero-copy k-way fast path: all-v4 inputs merge over their
    // mapped sorted key columns without parsing a row (falls through
    // to the general path on any non-v4 / fragmented / damaged
    // input, or when the configured write format is not v4).
    if (cacheFormatFromEnv() == CacheFormat::v4) {
        ShardMergeStats fast;
        if (mergeShardCachesV4(base, shards, fast))
            return fast;
    }

    // The canonical RunCache loads whatever the file already holds;
    // each shard file then unions in. Conflicting rows abort before
    // anything is rewritten or removed, so the inputs survive for
    // inspection.
    RunCache canonical(base);
    ShardMergeStats stats;
    std::vector<std::string> merged;
    for (unsigned i = 0; i < shards; ++i) {
        const std::string path = shardCachePath(base, i);
        if (!fileExists(path))
            continue;
        RunCache::MergeStats r = canonical.mergeFile(path);
        fatal_if(r.conflicts > 0,
                 "shard cache %s: %zu row%s conflict with rows already "
                 "merged for the same (config, workload, policy) - "
                 "the shards did not run the same deterministic sweep; "
                 "refusing to merge (inputs left on disk)",
                 path.c_str(), r.conflicts, r.conflicts == 1 ? "" : "s");
        stats.files += 1;
        stats.rows += r.rows;
        stats.duplicates += r.duplicates;
        stats.parseErrors += r.parseErrors;
        merged.push_back(path);
    }
    // The shard inputs are only consumed once the canonical file is
    // safely on disk; a failed write (full disk, unwritable
    // directory) must not cost the workers their results.
    fatal_if(!canonical.saveNow(),
             "could not write merged cache %s; shard inputs left on "
             "disk",
             base.c_str());
    for (const std::string &path : merged)
        std::remove(path.c_str());
    return stats;
}

FleetPlan
planFleetSweep(const std::vector<RunRequest> &requests,
               const std::string &cache, unsigned shards, bool resume)
{
    fatal_if(shards < 1, "cannot plan a fleet of zero workers");

    // Memory-only probe cache: union the canonical file (and, on
    // resume, the partial shard files) without ever writing - the
    // shard files must stay on disk untouched until the join merge
    // consumes them.
    RunCache probe{std::string()};
    if (!cache.empty())
        probe.mergeFile(cache);

    FleetPlan plan;
    plan.costs.assign(requests.size(), 0.0);
    if (!cache.empty() && resume) {
        std::size_t before = probe.size();
        for (unsigned i = 0; i < shards; ++i)
            probe.mergeFile(shardCachePath(cache, i));
        plan.resumedRows = probe.size() - before;
    }

    std::map<std::tuple<std::string, std::string, std::string>, bool>
        seen;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const RunRequest &req = requests[i];
        const std::string sig = req.cfg.signature();
        if (probe.find(sig, req.workload, req.policy) != nullptr) {
            ++plan.cached;
            continue;
        }
        // Duplicate grid points lease (and simulate) once; the
        // result answers every copy at replay time.
        if (!seen.emplace(std::make_tuple(sig, req.workload,
                                          req.policy),
                          true)
                 .second)
            continue;
        double est = probe.estimateEvents(req.workload, req.policy);
        if (est <= 0.0) {
            est = static_cast<double>(
                makeWorkload(req.workload)
                    ->footprintBytes(req.cfg.workloadScale));
        }
        plan.costs[i] = est;
        plan.pending.push_back(static_cast<std::uint32_t>(i));
    }
    return plan;
}

} // namespace migc
