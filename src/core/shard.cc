#include "core/shard.hh"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <vector>

#include <map>
#include <tuple>

#include "core/sweep_engine.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace migc
{

namespace
{

bool
fileExists(const std::string &path)
{
    return static_cast<bool>(std::ifstream(path));
}

} // namespace

std::uint64_t
runKeyHash(const std::string &sig, const std::string &workload,
           const std::string &policy)
{
    // '\n' cannot appear inside a key component (keys are one-line
    // cache fields), so the concatenation is unambiguous.
    std::string key;
    key.reserve(sig.size() + workload.size() + policy.size() + 2);
    key += sig;
    key += '\n';
    key += workload;
    key += '\n';
    key += policy;
    return fnv1a(key);
}

unsigned
shardOf(const std::string &sig, const std::string &workload,
        const std::string &policy, unsigned shards)
{
    panic_if(shards == 0, "shardOf called with zero shards");
    return static_cast<unsigned>(runKeyHash(sig, workload, policy) %
                                 shards);
}

bool
ShardSpec::owns(const std::string &sig, const std::string &workload,
                const std::string &policy) const
{
    return !active() || shardOf(sig, workload, policy, shards) == index;
}

ShardSpec
shardFromEnv()
{
    ShardSpec spec;
    const char *shards = std::getenv("MIGC_SHARDS");
    const char *index = std::getenv("MIGC_SHARD_INDEX");
    if (shards == nullptr || shards[0] == '\0') {
        fatal_if(index != nullptr && index[0] != '\0',
                 "MIGC_SHARD_INDEX is set but MIGC_SHARDS is not");
        return spec;
    }
    spec.shards = parseBoundedUnsigned("MIGC_SHARDS", shards, 1, 4096);
    if (index == nullptr || index[0] == '\0') {
        // A worker must know which slice is its own: running the
        // whole grid because the index was forgotten would silently
        // duplicate every other worker's simulations.
        fatal_if(spec.active(),
                 "MIGC_SHARDS=%u needs MIGC_SHARD_INDEX in [0, %u)",
                 spec.shards, spec.shards);
        return spec;
    }
    // Validate the index even for MIGC_SHARDS=1: an out-of-range
    // index means the user meant a different fleet size, and
    // running the full grid would be the silent-duplication failure
    // this function exists to prevent.
    spec.index = parseBoundedUnsigned("MIGC_SHARD_INDEX", index, 0,
                                      spec.shards - 1);
    return spec;
}

std::string
shardCachePath(const std::string &base, unsigned index)
{
    return csprintf("%s.shard%u", base.c_str(), index);
}

ShardMergeStats
mergeShardCaches(const std::string &base, unsigned shards)
{
    fatal_if(base.empty(),
             "cannot merge shard caches without a cache path "
             "(MIGC_NO_CACHE sweeps leave nothing to merge)");
    fatal_if(shards < 1, "cannot merge zero shards");

    // The canonical RunCache loads whatever the file already holds;
    // each shard file then unions in. Conflicting rows abort before
    // anything is rewritten or removed, so the inputs survive for
    // inspection.
    RunCache canonical(base);
    ShardMergeStats stats;
    std::vector<std::string> merged;
    for (unsigned i = 0; i < shards; ++i) {
        const std::string path = shardCachePath(base, i);
        if (!fileExists(path))
            continue;
        RunCache::MergeStats r = canonical.mergeFile(path);
        fatal_if(r.conflicts > 0,
                 "shard cache %s: %zu row%s conflict with rows already "
                 "merged for the same (config, workload, policy) - "
                 "the shards did not run the same deterministic sweep; "
                 "refusing to merge (inputs left on disk)",
                 path.c_str(), r.conflicts, r.conflicts == 1 ? "" : "s");
        stats.files += 1;
        stats.rows += r.rows;
        stats.duplicates += r.duplicates;
        stats.parseErrors += r.parseErrors;
        merged.push_back(path);
    }
    // The shard inputs are only consumed once the canonical file is
    // safely on disk; a failed write (full disk, unwritable
    // directory) must not cost the workers their results.
    fatal_if(!canonical.saveNow(),
             "could not write merged cache %s; shard inputs left on "
             "disk",
             base.c_str());
    for (const std::string &path : merged)
        std::remove(path.c_str());
    return stats;
}

FleetPlan
planFleetSweep(const std::vector<RunRequest> &requests,
               const std::string &cache, unsigned shards, bool resume)
{
    fatal_if(shards < 1, "cannot plan a fleet of zero workers");

    // Memory-only probe cache: union the canonical file (and, on
    // resume, the partial shard files) without ever writing - the
    // shard files must stay on disk untouched until the join merge
    // consumes them.
    RunCache probe{std::string()};
    if (!cache.empty())
        probe.mergeFile(cache);

    FleetPlan plan;
    plan.costs.assign(requests.size(), 0.0);
    if (!cache.empty() && resume) {
        std::size_t before = probe.size();
        for (unsigned i = 0; i < shards; ++i)
            probe.mergeFile(shardCachePath(cache, i));
        plan.resumedRows = probe.size() - before;
    }

    std::map<std::tuple<std::string, std::string, std::string>, bool>
        seen;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const RunRequest &req = requests[i];
        const std::string sig = req.cfg.signature();
        if (probe.find(sig, req.workload, req.policy) != nullptr) {
            ++plan.cached;
            continue;
        }
        // Duplicate grid points lease (and simulate) once; the
        // result answers every copy at replay time.
        if (!seen.emplace(std::make_tuple(sig, req.workload,
                                          req.policy),
                          true)
                 .second)
            continue;
        double est = probe.estimateEvents(req.workload, req.policy);
        if (est <= 0.0) {
            est = static_cast<double>(
                makeWorkload(req.workload)
                    ->footprintBytes(req.cfg.workloadScale));
        }
        plan.costs[i] = est;
        plan.pending.push_back(static_cast<std::uint32_t>(i));
    }
    return plan;
}

} // namespace migc
