#include "core/cache_v4.hh"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace migc
{

namespace
{

/** Append a little-endian scalar to a byte buffer. */
template <typename T>
void
put(std::string &buf, T v)
{
    char raw[sizeof(T)];
    std::memcpy(raw, &v, sizeof(T));
    buf.append(raw, sizeof(T));
}

/** Read a scalar from a byte pointer (alignment-safe). */
template <typename T>
T
get(const char *p)
{
    T v;
    std::memcpy(&v, p, sizeof(T));
    return v;
}

constexpr std::uint64_t kChecksumSeed = 0x9E3779B97F4A7C15ull;

bool
fail(std::string *why, const char *msg)
{
    if (why != nullptr)
        *why = msg;
    return false;
}

} // namespace

std::uint64_t
v4Checksum(const void *data, std::size_t n)
{
    const char *p = static_cast<const char *>(data);
    std::uint64_t h = kChecksumSeed ^ n;
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        h = splitmix64(h ^ get<std::uint64_t>(p + i));
    if (i < n) {
        std::uint64_t tail = 0;
        std::memcpy(&tail, p + i, n - i);
        h = splitmix64(h ^ tail);
    }
    return h;
}

V4Row
packV4Row(const RunMetrics &m)
{
    V4Row r;
    r.execTicks = m.execTicks;
    r.m[0] = m.execSeconds;
    r.m[1] = m.gpuMemRequests;
    r.m[2] = m.dramReads;
    r.m[3] = m.dramWrites;
    r.m[4] = m.dramAccesses;
    r.m[5] = m.dramRowHitRate;
    r.m[6] = m.cacheStallCycles;
    r.m[7] = m.stallsPerRequest;
    r.m[8] = m.vops;
    r.m[9] = m.gvops;
    r.m[10] = m.gmrps;
    r.m[11] = m.l1Hits;
    r.m[12] = m.l1Misses;
    r.m[13] = m.l2Hits;
    r.m[14] = m.l2Misses;
    r.m[15] = m.l2Writebacks;
    r.m[16] = m.rinseWritebacks;
    r.m[17] = m.allocBypassed;
    r.m[18] = m.predictorBypasses;
    r.m[19] = m.kernels;
    r.m[20] = m.simEvents;
    return r;
}

void
unpackV4Row(const V4Row &row, RunMetrics &out)
{
    out.execTicks = row.execTicks;
    out.execSeconds = row.m[0];
    out.gpuMemRequests = row.m[1];
    out.dramReads = row.m[2];
    out.dramWrites = row.m[3];
    out.dramAccesses = row.m[4];
    out.dramRowHitRate = row.m[5];
    out.cacheStallCycles = row.m[6];
    out.stallsPerRequest = row.m[7];
    out.vops = row.m[8];
    out.gvops = row.m[9];
    out.gmrps = row.m[10];
    out.l1Hits = row.m[11];
    out.l1Misses = row.m[12];
    out.l2Hits = row.m[13];
    out.l2Misses = row.m[14];
    out.l2Writebacks = row.m[15];
    out.rinseWritebacks = row.m[16];
    out.allocBypassed = row.m[17];
    out.predictorBypasses = row.m[18];
    out.kernels = row.m[19];
    out.simEvents = row.m[20];
}

std::string
buildV4Segment(const std::vector<V4RowRef> &rows)
{
    // Intern: sorted unique names, so ids order like the strings and
    // sorting keys by id triple IS the canonical string order.
    std::vector<std::string_view> table;
    table.reserve(rows.size() * 3);
    for (const V4RowRef &r : rows) {
        table.push_back(r.sig);
        table.push_back(r.workload);
        table.push_back(r.policy);
    }
    std::sort(table.begin(), table.end());
    table.erase(std::unique(table.begin(), table.end()), table.end());
    panic_if(table.size() > UINT32_MAX,
             "v4 segment with more than 2^32 interned strings");

    auto idOf = [&](std::string_view s) {
        auto it = std::lower_bound(table.begin(), table.end(), s);
        return static_cast<std::uint32_t>(it - table.begin());
    };

    std::uint64_t string_bytes = 0;
    for (std::string_view s : table)
        string_bytes += s.size();
    const std::uint64_t blob_padded = (string_bytes + 7) & ~7ull;

    const std::uint64_t seg_bytes =
        kV4HeaderBytes + 8 * table.size() + blob_padded +
        sizeof(V4Key) * rows.size() + sizeof(V4Row) * rows.size() +
        kV4FooterBytes;

    std::string buf;
    buf.reserve(seg_bytes);
    buf.append(kV4SegMagic, sizeof(kV4SegMagic));
    put<std::uint32_t>(buf, kV4Version);
    put<std::uint32_t>(buf, kV4EndianTag);
    put<std::uint64_t>(buf, seg_bytes);
    put<std::uint64_t>(buf, table.size());
    put<std::uint64_t>(buf, blob_padded);
    put<std::uint64_t>(buf, rows.size());
    put<std::uint64_t>(buf, 0); // reserved
    put<std::uint64_t>(buf, 0); // reserved

    std::uint64_t end = 0;
    for (std::string_view s : table) {
        end += s.size();
        put<std::uint64_t>(buf, end);
    }
    for (std::string_view s : table)
        buf.append(s.data(), s.size());
    buf.append(blob_padded - string_bytes, '\0');

    V4Key prev{0, 0, 0, 0};
    bool first = true;
    for (const V4RowRef &r : rows) {
        V4Key k{idOf(r.sig), idOf(r.workload), idOf(r.policy), 0};
        panic_if(!first &&
                     std::tie(prev.sig, prev.workload, prev.policy) >=
                         std::tie(k.sig, k.workload, k.policy),
                 "buildV4Segment input not sorted-unique by "
                 "(sig, workload, policy)");
        prev = k;
        first = false;
        buf.append(reinterpret_cast<const char *>(&k), sizeof(k));
    }
    for (const V4RowRef &r : rows)
        buf.append(reinterpret_cast<const char *>(&r.data),
                   sizeof(r.data));

    put<std::uint64_t>(buf, v4Checksum(buf.data(), buf.size()));
    put<std::uint64_t>(buf, rows.size());
    buf.append(kV4EndMagic, sizeof(kV4EndMagic));
    panic_if(buf.size() != seg_bytes,
             "v4 segment size accounting drifted (%zu vs %llu)",
             buf.size(),
             static_cast<unsigned long long>(seg_bytes));
    return buf;
}

bool
parseV4Segment(const char *p, std::size_t avail, V4SegmentView &seg,
               std::string *why)
{
    if (avail < kV4HeaderBytes + kV4FooterBytes)
        return fail(why, "segment truncated before the header");
    if (!isV4Magic(p))
        return fail(why, "segment magic mismatch");
    if (get<std::uint32_t>(p + 8) != kV4Version)
        return fail(why, "unsupported v4 segment version");
    if (get<std::uint32_t>(p + 12) != kV4EndianTag)
        return fail(why, "endianness mismatch (foreign-byte-order "
                         "cache file)");
    const std::uint64_t seg_bytes = get<std::uint64_t>(p + 16);
    const std::uint64_t string_count = get<std::uint64_t>(p + 24);
    const std::uint64_t string_bytes = get<std::uint64_t>(p + 32);
    const std::uint64_t row_count = get<std::uint64_t>(p + 40);

    // Recompute the layout from the counts and demand exact
    // agreement with the declared size before touching any offset.
    if (string_count > avail / 8 || row_count > avail / sizeof(V4Row))
        return fail(why, "segment counts exceed the available bytes");
    const std::uint64_t expect =
        kV4HeaderBytes + 8 * string_count + string_bytes +
        sizeof(V4Key) * row_count + sizeof(V4Row) * row_count +
        kV4FooterBytes;
    if (seg_bytes != expect || (string_bytes & 7) != 0)
        return fail(why, "segment layout is inconsistent with its "
                         "declared size");
    if (seg_bytes > avail)
        return fail(why, "segment truncated (torn append?)");

    const char *footer = p + seg_bytes - kV4FooterBytes;
    if (std::memcmp(footer + 16, kV4EndMagic, sizeof(kV4EndMagic)) != 0)
        return fail(why, "footer magic mismatch (torn append?)");
    if (get<std::uint64_t>(footer + 8) != row_count)
        return fail(why, "footer row count disagrees with the header");
    if (get<std::uint64_t>(footer) !=
        v4Checksum(p, seg_bytes - kV4FooterBytes))
        return fail(why, "footer checksum mismatch (corrupted or "
                         "torn segment)");

    seg.bytes = seg_bytes;
    seg.stringCount = string_count;
    seg.rowCount = row_count;
    seg.stringEnds =
        reinterpret_cast<const std::uint64_t *>(p + kV4HeaderBytes);
    seg.blob = p + kV4HeaderBytes + 8 * string_count;
    seg.keys = reinterpret_cast<const V4Key *>(seg.blob + string_bytes);
    seg.rows = reinterpret_cast<const V4Row *>(seg.keys + row_count);

    // String ends must be monotone and inside the blob, and the
    // table sorted strictly ascending - every str() and every
    // binary search depends on it.
    std::uint64_t prev_end = 0;
    for (std::uint64_t i = 0; i < string_count; ++i) {
        if (seg.stringEnds[i] < prev_end ||
            seg.stringEnds[i] > string_bytes) {
            return fail(why, "string table offsets out of bounds");
        }
        prev_end = seg.stringEnds[i];
    }
    for (std::uint64_t i = 1; i < string_count; ++i) {
        if (seg.str(i - 1) >= seg.str(i))
            return fail(why, "string table not sorted unique");
    }
    for (std::uint64_t i = 0; i < row_count; ++i) {
        const V4Key &k = seg.keys[i];
        if (k.sig >= string_count || k.workload >= string_count ||
            k.policy >= string_count) {
            return fail(why, "key column references a string id "
                             "outside the table");
        }
        if (i > 0) {
            const V4Key &q = seg.keys[i - 1];
            if (std::tie(q.sig, q.workload, q.policy) >=
                std::tie(k.sig, k.workload, k.policy)) {
                return fail(why, "key column not sorted unique");
            }
        }
    }
    return true;
}

std::size_t
v4SegmentCount(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return 0;
    std::fseek(f, 0, SEEK_END);
    const long len = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (len <= 0) {
        std::fclose(f);
        return 0;
    }
    // 8-byte aligned backing store so segment casts are safe.
    std::vector<std::uint64_t> words((len + 7) / 8, 0);
    char *buf = reinterpret_cast<char *>(words.data());
    const std::size_t got = std::fread(buf, 1, len, f);
    std::fclose(f);

    std::size_t n = 0, off = 0;
    while (off < got) {
        V4SegmentView seg;
        if (!parseV4Segment(buf + off, got - off, seg, nullptr))
            break;
        ++n;
        off += seg.bytes;
    }
    return n;
}

// ---------------------------------------------------------------------
// MappedCacheV4
// ---------------------------------------------------------------------

std::shared_ptr<const MappedCacheV4>
MappedCacheV4::map(const std::string &path, std::string *why)
{
    auto set_why = [&](const std::string &m) {
        if (why != nullptr)
            *why = m;
    };
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
        set_why("cannot open the file");
        return nullptr;
    }
    struct ::stat st;
    if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
        ::close(fd);
        set_why("cannot stat the file (or it is empty)");
        return nullptr;
    }
    const std::size_t len = static_cast<std::size_t>(st.st_size);
    void *base = ::mmap(nullptr, len, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd); // the mapping holds its own reference
    if (base == MAP_FAILED) {
        set_why("mmap failed");
        return nullptr;
    }

    auto mapped = std::shared_ptr<MappedCacheV4>(new MappedCacheV4());
    mapped->base_ = base;
    mapped->len_ = len;

    std::string parse_why;
    if (!parseV4Segment(static_cast<const char *>(base), len,
                        mapped->seg_, &parse_why)) {
        set_why(parse_why);
        return nullptr; // dtor unmaps
    }
    if (mapped->seg_.bytes != len) {
        // Pending append segments (or trailing garbage): the parsing
        // loader must fold them; a zero-copy snapshot needs the one
        // canonical sorted run a compaction produces.
        set_why("file is not a single compacted segment");
        return nullptr;
    }

    const V4SegmentView &seg = mapped->seg_;
    for (std::size_t i = 0; i < seg.rowCount; ++i) {
        if (i == 0 || seg.keys[i].sig != seg.keys[i - 1].sig)
            mapped->sections_.push_back(SectionRange{i, i + 1});
        else
            mapped->sections_.back().end = i + 1;
    }
    return mapped;
}

MappedCacheV4::~MappedCacheV4()
{
    if (base_ != nullptr)
        ::munmap(base_, len_);
}

std::int64_t
MappedCacheV4::stringId(std::string_view s) const
{
    std::size_t lo = 0, hi = seg_.stringCount;
    while (lo < hi) {
        const std::size_t mid = (lo + hi) / 2;
        if (seg_.str(static_cast<std::uint32_t>(mid)) < s)
            lo = mid + 1;
        else
            hi = mid;
    }
    if (lo < seg_.stringCount &&
        seg_.str(static_cast<std::uint32_t>(lo)) == s) {
        return static_cast<std::int64_t>(lo);
    }
    return -1;
}

std::int64_t
MappedCacheV4::findRow(std::string_view sig, std::string_view workload,
                       std::string_view policy) const
{
    const std::int64_t s = stringId(sig);
    const std::int64_t w = stringId(workload);
    const std::int64_t p = stringId(policy);
    if (s < 0 || w < 0 || p < 0)
        return -1;
    const V4Key want{static_cast<std::uint32_t>(s),
                     static_cast<std::uint32_t>(w),
                     static_cast<std::uint32_t>(p), 0};
    const V4Key *begin = seg_.keys;
    const V4Key *end = seg_.keys + seg_.rowCount;
    const V4Key *it = std::lower_bound(
        begin, end, want, [](const V4Key &a, const V4Key &b) {
            return std::tie(a.sig, a.workload, a.policy) <
                   std::tie(b.sig, b.workload, b.policy);
        });
    if (it == end || it->sig != want.sig ||
        it->workload != want.workload || it->policy != want.policy) {
        return -1;
    }
    return it - begin;
}

RunMetrics
MappedCacheV4::materialize(std::size_t idx) const
{
    RunMetrics m;
    const V4Key &k = seg_.keys[idx];
    m.workload = std::string(seg_.str(k.workload));
    m.policy = std::string(seg_.str(k.policy));
    unpackV4Row(seg_.rows[idx], m);
    return m;
}

} // namespace migc
