#include "core/report.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>

#include "sim/logging.hh"

namespace migc
{

double
FigureData::at(std::size_t series_idx, std::size_t workload_idx) const
{
    panic_if(series_idx >= values.size() ||
                 workload_idx >= values[series_idx].size(),
             "figure index out of range");
    return values[series_idx][workload_idx];
}

void
printFigure(std::ostream &os, const FigureData &fig, int precision)
{
    os << "== " << fig.title << " ==\n";
    if (!fig.valueLabel.empty())
        os << "   (" << fig.valueLabel << ")\n";

    std::size_t name_w = 9;
    for (const auto &w : fig.workloads)
        name_w = std::max(name_w, w.size() + 1);
    std::size_t col_w = 12;
    for (const auto &s : fig.series)
        col_w = std::max(col_w, s.size() + 2);

    os << std::left << std::setw(static_cast<int>(name_w)) << "workload";
    for (const auto &s : fig.series)
        os << std::right << std::setw(static_cast<int>(col_w)) << s;
    os << "\n";

    for (std::size_t w = 0; w < fig.workloads.size(); ++w) {
        os << std::left << std::setw(static_cast<int>(name_w))
           << fig.workloads[w];
        for (std::size_t s = 0; s < fig.series.size(); ++s) {
            os << std::right << std::setw(static_cast<int>(col_w))
               << std::fixed << std::setprecision(precision)
               << fig.values[s][w];
        }
        os << "\n";
    }
    os.unsetf(std::ios::fixed);
    os << "\n";
}

void
writeFigureCsv(const std::string &path, const FigureData &fig)
{
    std::ofstream out(path);
    if (!out) {
        warn("could not write figure CSV to %s", path.c_str());
        return;
    }
    out << "workload";
    for (const auto &s : fig.series)
        out << "," << s;
    out << "\n";
    for (std::size_t w = 0; w < fig.workloads.size(); ++w) {
        out << fig.workloads[w];
        for (std::size_t s = 0; s < fig.series.size(); ++s)
            out << "," << fig.values[s][w];
        out << "\n";
    }
}

double
geoMean(const std::vector<double> &v)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double x : v) {
        if (x > 0) {
            log_sum += std::log(x);
            ++n;
        }
    }
    return n > 0 ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

} // namespace migc
