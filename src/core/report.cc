#include "core/report.hh"

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>

#include "core/shard.hh"

#include "sim/logging.hh"

namespace migc
{

double
FigureData::at(std::size_t series_idx, std::size_t workload_idx) const
{
    panic_if(series_idx >= values.size() ||
                 workload_idx >= values[series_idx].size(),
             "figure index out of range");
    return values[series_idx][workload_idx];
}

void
warnPlaceholderRows(std::size_t count, const std::string &what)
{
    if (count == 0)
        return;
    warn("%s: %zu value%s come%s from all-zero shard placeholder "
         "rows, not measurements - merge the shard caches "
         "(migc_sweep) and re-run for a complete figure",
         what.c_str(), count, count == 1 ? "" : "s",
         count == 1 ? "s" : "");
}

std::size_t
countPlaceholderRows(const std::vector<RunMetrics> &rows)
{
    std::size_t n = 0;
    for (const RunMetrics &m : rows)
        n += m.placeholder ? 1 : 0;
    return n;
}

void
printFigure(std::ostream &os, const FigureData &fig, int precision)
{
    warnPlaceholderRows(fig.placeholderRows, fig.title);
    os << "== " << fig.title << " ==\n";
    if (!fig.valueLabel.empty())
        os << "   (" << fig.valueLabel << ")\n";

    std::size_t name_w = 9;
    for (const auto &w : fig.workloads)
        name_w = std::max(name_w, w.size() + 1);
    std::size_t col_w = 12;
    for (const auto &s : fig.series)
        col_w = std::max(col_w, s.size() + 2);

    os << std::left << std::setw(static_cast<int>(name_w)) << "workload";
    for (const auto &s : fig.series)
        os << std::right << std::setw(static_cast<int>(col_w)) << s;
    os << "\n";

    for (std::size_t w = 0; w < fig.workloads.size(); ++w) {
        os << std::left << std::setw(static_cast<int>(name_w))
           << fig.workloads[w];
        for (std::size_t s = 0; s < fig.series.size(); ++s) {
            os << std::right << std::setw(static_cast<int>(col_w))
               << std::fixed << std::setprecision(precision)
               << fig.values[s][w];
        }
        os << "\n";
    }
    os.unsetf(std::ios::fixed);
    os << "\n";
}

void
writeFigureCsv(const std::string &path, const FigureData &fig)
{
    // A shard worker's figure is partial by design (grid points
    // other shards own are placeholder zeros), so it lands next to
    // the real figure as <path>.shard<i> instead of clobbering the
    // complete CSV a normal run wrote in the same directory. The
    // redirect keys off the environment hook because that is how
    // every figure binary shards; a driver that shards through an
    // explicit ShardSpec (and writes figures, which migc_sweep does
    // not) must pick its own output path.
    warnPlaceholderRows(fig.placeholderRows, path);
    std::string target = path;
    ShardSpec shard = shardFromEnv();
    if (shard.active())
        target = shardCachePath(path, shard.index);

    // Write-then-rename, like the run cache: concurrent processes
    // (e.g. two shard workers of the same figure binary in one
    // directory) each land a complete file instead of interleaving
    // into the same ofstream.
    std::string tmp = csprintf("%s.%d.tmp", target.c_str(),
                               static_cast<int>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out) {
            warn("could not write figure CSV to %s", target.c_str());
            return;
        }
        out << "workload";
        for (const auto &s : fig.series)
            out << "," << s;
        out << "\n";
        for (std::size_t w = 0; w < fig.workloads.size(); ++w) {
            out << fig.workloads[w];
            for (std::size_t s = 0; s < fig.series.size(); ++s)
                out << "," << fig.values[s][w];
            out << "\n";
        }
        if (!out.good()) {
            std::remove(tmp.c_str());
            warn("could not write figure CSV to %s", target.c_str());
            return;
        }
    }
    if (std::rename(tmp.c_str(), target.c_str()) != 0) {
        warn("could not move figure CSV into place at %s",
             target.c_str());
        std::remove(tmp.c_str());
    }
}

double
geoMean(const std::vector<double> &v)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double x : v) {
        if (x > 0) {
            log_sum += std::log(x);
            ++n;
        }
    }
    return n > 0 ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

} // namespace migc
