/**
 * @file
 * Deterministic multi-process sharding of sweep grids.
 *
 * A sweep grid is a set of run keys (config signature, workload,
 * policy). A ShardSpec partitions that set across N cooperating
 * processes by a stable hash of the key text: shard i owns exactly
 * the keys whose hash lands on index i. The hash covers the run key
 * and nothing else, so the partition depends only on the grid
 * itself - it is independent of MIGC_JOBS, of submission order, and
 * of which binary submits the request. Two different binaries
 * sweeping overlapping grids under the same shard spec therefore
 * agree on who simulates every shared point.
 *
 * Each worker writes its results to a private per-shard cache file
 * (shardCachePath) using the same atomic tmp+rename discipline as
 * the canonical cache; at join, mergeShardCaches() unions the shard
 * files into the canonical file, deduplicating identical rows and
 * failing loudly on conflicting rows for the same key (which would
 * mean a nondeterministic simulator or mismatched sweeps - never
 * something to paper over). Because RunCache serializes sections and
 * rows in sorted order, the merged file is byte-identical to the one
 * a single-process sweep would have written (pinned by
 * tests/test_shard.cc and a CI spot-check).
 *
 * The sweep engine reads MIGC_SHARDS / MIGC_SHARD_INDEX in its
 * default constructor (shardFromEnv), so every existing figure and
 * ablation binary becomes a shard-capable worker with no per-binary
 * changes. bench/migc_sweep is the coordinator: it fork/execs local
 * workers (or emits a manifest for external launchers) and merges at
 * join.
 */

#ifndef MIGC_CORE_SHARD_HH
#define MIGC_CORE_SHARD_HH

#include <cstdint>
#include <string>
#include <vector>

// parseBoundedUnsigned - the shared validator behind MIGC_SHARDS /
// MIGC_SHARD_INDEX / MIGC_JOBS and migc_sweep's count flags - lives
// in sim/env.hh so the sim-layer thread pool can use it too; it is
// re-exported here because every sharding caller historically reached
// it through this header.
#include "sim/env.hh"

namespace migc
{

/** Which slice of a sweep grid this process simulates. */
struct ShardSpec
{
    /** Total cooperating processes; 1 = sharding off. */
    unsigned shards = 1;

    /** This process's index in [0, shards). */
    unsigned index = 0;

    /** True when the grid is actually split (shards > 1). */
    bool active() const { return shards > 1; }

    /** Does this shard simulate the given run key? */
    bool owns(const std::string &sig, const std::string &workload,
              const std::string &policy) const;
};

/**
 * Stable 64-bit hash of one run key. Depends only on the three key
 * strings (FNV-1a over their concatenation), so it is identical
 * across processes, architectures of the same width, and runs.
 */
std::uint64_t runKeyHash(const std::string &sig,
                         const std::string &workload,
                         const std::string &policy);

/** The shard in [0, shards) owning the key; shards must be >= 1. */
unsigned shardOf(const std::string &sig, const std::string &workload,
                 const std::string &policy, unsigned shards);

/**
 * Shard spec from MIGC_SHARDS / MIGC_SHARD_INDEX. Unset (or
 * MIGC_SHARDS=1) means no sharding. Fatal on malformed values,
 * MIGC_SHARDS > 1 without an index, or an index out of range -
 * silently running the full grid would defeat the point of the
 * worker fleet.
 */
ShardSpec shardFromEnv();

/** The private cache file for shard @p index of canonical @p base. */
std::string shardCachePath(const std::string &base, unsigned index);

/** What a coordinator merge accomplished. */
struct ShardMergeStats
{
    /** Shard files found, merged, and removed. */
    std::size_t files = 0;

    /** Rows newly added to the canonical cache. */
    std::size_t rows = 0;

    /** Identical rows present in more than one input (deduplicated). */
    std::size_t duplicates = 0;

    /** Unparseable rows skipped across all inputs. */
    std::size_t parseErrors = 0;
};

/**
 * Coordinator join step: union every existing shard file of @p base
 * (indices [0, shards)) into the canonical file at @p base, then
 * delete the merged shard files. Identical rows for the same key
 * deduplicate; conflicting rows are fatal, and the inputs are left
 * on disk for inspection. Missing shard files are skipped (a shard
 * whose slice was fully cached writes nothing new).
 */
ShardMergeStats mergeShardCaches(const std::string &base,
                                 unsigned shards);

struct RunRequest; // core/sweep_engine.hh

/**
 * What a fleet coordinator knows before the first lease: which grid
 * indices still need simulating, and what each one is expected to
 * cost. Built by planFleetSweep().
 */
struct FleetPlan
{
    /** Grid indices with no cached row yet (deduplicated; the
     *  FleetQueue serves them longest-estimate-first). */
    std::vector<std::uint32_t> pending;

    /** Scheduler cost estimate per grid index (sim_events of a prior
     *  run of the same (workload, policy), falling back to the
     *  workload-footprint heuristic - the same ladder run() uses). */
    std::vector<double> costs;

    /** Grid points already satisfied by the canonical cache (or, on
     *  resume, a partial shard cache). */
    std::size_t cached = 0;

    /** Rows recovered from partial shard files (resume only). */
    std::size_t resumedRows = 0;
};

/**
 * The coordinator's resume-aware grid scan: load the canonical cache
 * at @p cache (memory-only - nothing is written), plus, when
 * @p resume is set, every existing partial shard file of it (left on
 * disk; the join merge consumes them later), then classify each of
 * @p requests as cached or pending and estimate pending costs.
 * `--resume` is exactly this with the shard files folded in: only
 * the keys a crashed fleet never checkpointed come back pending.
 */
FleetPlan planFleetSweep(const std::vector<RunRequest> &requests,
                         const std::string &cache, unsigned shards,
                         bool resume);

} // namespace migc

#endif // MIGC_CORE_SHARD_HH
