/**
 * @file
 * The experiment harness shared by all bench binaries: a cached
 * 17-workload x 6-policy sweep plus builders for every figure in the
 * paper's evaluation (Figures 4-13).
 *
 * All figures derive from one sweep, so results are cached on disk
 * through the SweepEngine's multi-config RunCache (keyed by the
 * configuration signature). Set MIGC_NO_CACHE=1 to force fresh
 * simulation, or MIGC_SWEEP_CACHE=<path> to relocate the cache file.
 *
 * prefetch() submits missing (workload, policy) runs to the engine,
 * which shards them longest-job-first across a thread pool
 * (MIGC_JOBS workers, default one per core) with per-worker System
 * reuse. Each run seeds its own RNG streams, so a parallel sweep is
 * bit-identical to a serial one.
 */

#ifndef MIGC_CORE_EXPERIMENTS_HH
#define MIGC_CORE_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "core/metrics.hh"
#include "core/report.hh"
#include "core/runner.hh"
#include "core/sim_config.hh"
#include "core/sweep_engine.hh"

namespace migc
{

class ExperimentSweep
{
  public:
    explicit ExperimentSweep(SimConfig cfg = SimConfig::defaultConfig());

    /** Metrics for (workload, policy); simulates on first use. */
    const RunMetrics &get(const std::string &workload,
                          const std::string &policy);

    /**
     * Ensure all (workload x policy) combinations are available,
     * simulating missing ones in parallel through the sweep engine.
     * The on-disk cache is checkpointed periodically and on
     * completion, so an interrupted sweep resumes where it left.
     */
    void prefetch(const std::vector<std::string> &policies);

    /** Prefetch the full 17-workload x 6-policy grid. */
    void prefetchAll() { prefetch(allPolicyNames()); }

    const SimConfig &config() const { return cfg_; }

    /** The static policy with the lowest exec time for @p workload. */
    std::string staticBest(const std::string &workload);

    /** The static policy with the highest exec time for @p workload. */
    std::string staticWorst(const std::string &workload);

    /** Names of the three static policies, paper order. */
    static std::vector<std::string> staticPolicyNames();

    /** All six configuration names, paper order. */
    static std::vector<std::string> allPolicyNames();

    /** The underlying engine (shared scheduler + run cache). */
    SweepEngine &engine() { return engine_; }

  private:
    SimConfig cfg_;
    SweepEngine engine_;
};

/** Figure 4: compute bandwidth (GVOPS) per workload, CacheR. */
FigureData figure4(ExperimentSweep &sweep);

/** Figure 5: memory request bandwidth (GMR/s) per workload, CacheR. */
FigureData figure5(ExperimentSweep &sweep);

/** Figure 6: execution time of the static policies, normalized to
 *  Uncached. */
FigureData figure6(ExperimentSweep &sweep);

/** Figure 7: DRAM accesses of the static policies, normalized to
 *  Uncached. */
FigureData figure7(ExperimentSweep &sweep);

/** Figure 8: cache stalls per GPU memory request, static policies. */
FigureData figure8(ExperimentSweep &sweep);

/** Figure 9: DRAM row-buffer hit ratio, static policies. */
FigureData figure9(ExperimentSweep &sweep);

/** Figure 10: execution time of StaticBest/StaticWorst/AB/CR/PCby,
 *  normalized to the best static policy per workload. */
FigureData figure10(ExperimentSweep &sweep);

/** Figure 11: DRAM accesses of the optimized configurations,
 *  normalized to Uncached. */
FigureData figure11(ExperimentSweep &sweep);

/** Figure 12: cache stalls per request, optimized configurations. */
FigureData figure12(ExperimentSweep &sweep);

/** Figure 13: DRAM row hit ratio, optimized configurations. */
FigureData figure13(ExperimentSweep &sweep);

/** Table 1: render the simulated system parameters. */
std::string table1Text(const SimConfig &cfg);

} // namespace migc

#endif // MIGC_CORE_EXPERIMENTS_HH
