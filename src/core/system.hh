/**
 * @file
 * Full-system assembly: GPU -> per-CU L1s -> crossbar -> banked L2
 * -> HBM2 controller, with a caching policy applied across the
 * hierarchy and the dispatcher's synchronization hooks wired up.
 */

#ifndef MIGC_CORE_SYSTEM_HH
#define MIGC_CORE_SYSTEM_HH

#include <memory>
#include <string_view>
#include <vector>

#include "cache/gpu_cache.hh"
#include "core/sim_config.hh"
#include "dram/dram_ctrl.hh"
#include "gpu/gpu.hh"
#include "mem/packet_pool.hh"
#include "mem/xbar.hh"
#include "policy/cache_policy.hh"
#include "policy/policy_engine.hh"
#include "policy/reuse_predictor.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"

namespace migc
{

class System
{
  public:
    System(const SimConfig &cfg, const CachePolicy &policy);

    /**
     * Return the whole system to the state a fresh
     * System(cfg-with-@p seed, @p policy) would have, while keeping
     * every allocation warm: PacketPool chunks, the event-heap
     * array, tag/DBI storage, queue buffers, and DRAM bank state all
     * stay resident. Only the policy and the seed may change; the
     * geometry is fixed at construction (see
     * SimConfig::structurallyEqual for what a caller must check
     * before reusing a System for a different SimConfig).
     *
     * Requires a quiescent system - i.e. the previous run completed
     * (the dispatcher's done callback fired). A reset system is
     * bit-identical in behavior to a freshly built one; the golden
     * determinism suite pins this.
     */
    void reset(const CachePolicy &policy, std::uint64_t seed);

    EventQueue &eventQueue() { return eventq_; }

    /** Shared packet recycler for every component in this system. */
    PacketPool &packetPool() { return pktPool_; }

    Gpu &gpu() { return *gpu_; }

    DramCtrl &dram() { return *dram_; }

    GpuCache &l1(unsigned i) { return *l1s_.at(i); }

    GpuCache &l2Bank(unsigned i) { return *l2Banks_.at(i); }

    unsigned numL2Banks() const
    {
        return static_cast<unsigned>(l2Banks_.size());
    }

    ReusePredictor &predictor() { return predictor_; }

    /** The run's policy decision engine (shared by every cache). */
    PolicyEngine &policyEngine() { return engine_; }

    const SimConfig &config() const { return cfg_; }

    const CachePolicy &policy() const { return policy_; }

    StatGroup &stats() { return stats_; }

    /** No request, fill, or writeback in flight anywhere. */
    bool memSystemQuiescent() const;

    // --- cross-hierarchy aggregates for metrics ---
    double totalCacheStallCycles() const;
    double totalL1Hits() const;
    double totalL1Misses() const;
    double totalL2Hits() const;
    double totalL2Misses() const;
    double totalL2Writebacks() const;
    double totalRinseWritebacks() const;
    double totalAllocBypassed() const;
    double totalPredictorBypasses() const;

  private:
    /**
     * The single source of truth for how the current policy and
     * seed map onto one cache's mutable flags; both construction
     * (via l1ConfigFor/l2ConfigFor) and reset() go through these.
     * @p name is the cache's seed-stream label. Allocation-free.
     */
    GpuCache::PolicyView l1PolicyView(std::string_view name) const;
    GpuCache::PolicyView l2PolicyView(std::string_view name) const;

    /** L1 config for CU @p i under the current policy and seed. */
    GpuCacheConfig l1ConfigFor(unsigned i) const;

    /** L2 bank config for bank @p j under the current policy/seed. */
    GpuCacheConfig l2ConfigFor(unsigned j) const;

    SimConfig cfg_;
    CachePolicy policy_;
    PolicyEngine engine_;
    EventQueue eventq_;
    /** Declared before the components so packet storage outlives
     *  anything that might still reference it at teardown. */
    PacketPool pktPool_;
    ReusePredictor predictor_;

    std::unique_ptr<Gpu> gpu_;
    std::vector<std::unique_ptr<GpuCache>> l1s_;
    std::unique_ptr<XBar> xbar_;
    std::vector<std::unique_ptr<GpuCache>> l2Banks_;
    std::unique_ptr<DramCtrl> dram_;

    StatGroup stats_;
};

} // namespace migc

#endif // MIGC_CORE_SYSTEM_HH
