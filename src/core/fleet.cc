#include "core/fleet.hh"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "serve/serve_protocol.hh"
#include "sim/logging.hh"

namespace migc
{

// ---------------------------------------------------------------------
// FleetQueue
// ---------------------------------------------------------------------

FleetQueue::FleetQueue(std::vector<double> costs,
                       std::vector<std::uint32_t> pending,
                       FleetConfig cfg)
    : cfg_(cfg), costs_(std::move(costs)), pending_(std::move(pending)),
      completed_(costs_.size(), false), totalKeys_(pending_.size())
{
    if (cfg_.leaseSize == 0)
        cfg_.leaseSize = 1;
    for (std::uint32_t key : pending_) {
        panic_if(key >= costs_.size(),
                 "fleet pending key %u outside the %zu-point grid",
                 key, costs_.size());
    }
    std::sort(pending_.begin(), pending_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  return keyBefore(a, b);
              });
    // A duplicate pending key would be granted (and simulated) twice
    // and then double-counted at completion; the plan step dedupes,
    // so seeing one here is a caller bug.
    for (std::size_t i = 1; i < pending_.size(); ++i) {
        panic_if(pending_[i] == pending_[i - 1],
                 "fleet pending list holds key %u twice", pending_[i]);
    }
}

bool
FleetQueue::keyBefore(std::uint32_t a, std::uint32_t b) const
{
    if (costs_[a] != costs_[b])
        return costs_[a] > costs_[b];
    return a < b;
}

void
FleetQueue::requeue(std::uint32_t key)
{
    auto it = std::lower_bound(pending_.begin(), pending_.end(), key,
                               [this](std::uint32_t lhs,
                                      std::uint32_t rhs) {
                                   return keyBefore(lhs, rhs);
                               });
    pending_.insert(it, key);
}

FleetWorkerStats &
FleetQueue::touch(unsigned worker, std::uint64_t now)
{
    FleetWorkerStats &st = stats_[worker];
    if (st.firstMs == 0 && st.lastMs == 0)
        st.firstMs = now;
    st.lastMs = std::max(st.lastMs, now);
    return st;
}

void
FleetQueue::markCompleted(std::uint32_t key, unsigned worker,
                          std::uint64_t lease_id)
{
    completed_[key] = true;
    ++completedCount_;
    completions_.push_back(Completion{key, worker, lease_id});
}

void
FleetQueue::expire(std::uint64_t now)
{
    for (auto it = leases_.begin(); it != leases_.end();) {
        if (it->second.deadline >= now) {
            ++it;
            continue;
        }
        // The worker missed its renew deadline: presume it dead and
        // put its remaining keys back up for grabs. If it is merely
        // wedged and later reports a completion, done() still
        // accepts the row (re-execution is byte-identical), so
        // expiry can only cost duplicated work, never correctness.
        for (std::uint32_t key : it->second.keys)
            requeue(key);
        stats_[it->second.worker].expired += 1;
        ++expired_;
        it = leases_.erase(it);
    }
}

FleetGrant
FleetQueue::lease(unsigned worker, std::uint64_t now)
{
    expire(now);
    FleetWorkerStats &st = touch(worker, now);

    FleetGrant grant;
    if (drained()) {
        grant.kind = FleetGrant::Kind::drained;
        return grant;
    }

    if (!pending_.empty()) {
        std::size_t n = std::min(cfg_.leaseSize, pending_.size());
        grant.kind = FleetGrant::Kind::work;
        grant.id = nextLease_++;
        grant.renewMs = cfg_.renewMs;
        grant.keys.assign(pending_.begin(), pending_.begin() + n);
        pending_.erase(pending_.begin(), pending_.begin() + n);
        leases_.emplace(grant.id, Lease{worker, now + cfg_.renewMs,
                                        grant.keys});
        st.leases += 1;
        return grant;
    }

    // Pending is empty but keys are still outstanding: steal from
    // the slowest peer - the live lease with the most remaining
    // estimated cost - by shrinking it. The victim works its keys
    // front to back (cost-desc grant order), so taking the tail
    // takes the keys it is least likely to have started; a key it
    // does finish anyway just comes back as a stale done. Stealing
    // from one's own lease is allowed: it only happens when a
    // restarted worker finds its pre-crash lease still ticking, and
    // reclaiming the tail beats waiting out the deadline.
    std::uint64_t victim_id = 0;
    double victim_cost = -1.0;
    for (const auto &[id, l] : leases_) {
        if (l.keys.size() < 2)
            continue; // a single key can't be split
        double remaining = 0.0;
        for (std::uint32_t key : l.keys)
            remaining += costs_[key];
        if (remaining > victim_cost ||
            (remaining == victim_cost && id < victim_id)) {
            victim_cost = remaining;
            victim_id = id;
        }
    }
    if (victim_id == 0) {
        // Every outstanding lease is down to its last key: nothing
        // to split, the worker should ask again shortly (an expiry
        // or the final completions will resolve the wait).
        grant.kind = FleetGrant::Kind::wait;
        grant.waitMs = std::min<std::uint64_t>(
            std::max<std::uint64_t>(cfg_.renewMs / 4, 1), 100);
        return grant;
    }

    Lease &victim = leases_.at(victim_id);
    std::size_t keep = victim.keys.size() - victim.keys.size() / 2;
    grant.kind = FleetGrant::Kind::work;
    grant.id = nextLease_++;
    grant.renewMs = cfg_.renewMs;
    grant.stolen = true;
    grant.keys.assign(victim.keys.begin() + keep, victim.keys.end());
    victim.keys.resize(keep);
    leases_.emplace(grant.id,
                    Lease{worker, now + cfg_.renewMs, grant.keys});
    st.leases += 1;
    st.steals += 1;
    return grant;
}

bool
FleetQueue::done(unsigned worker, std::uint64_t id, std::uint32_t key,
                 std::uint64_t now)
{
    expire(now);
    FleetWorkerStats &st = touch(worker, now);

    if (key >= costs_.size() || completed_[key]) {
        st.staleDones += 1;
        return false;
    }

    auto it = leases_.find(id);
    if (it != leases_.end() && it->second.worker == worker) {
        Lease &l = it->second;
        auto kit = std::find(l.keys.begin(), l.keys.end(), key);
        if (kit != l.keys.end()) {
            l.keys.erase(kit);
            if (l.keys.empty()) {
                leases_.erase(it);
            } else {
                // A completion is the strongest liveness evidence
                // there is; extend the deadline like a renew.
                l.deadline = now + cfg_.renewMs;
            }
            markCompleted(key, worker, id);
            st.runs += 1;
            return true;
        }
    }

    // The lease is gone (expired) or the key was stolen out of it,
    // but the worker really did finish the run and its row is
    // checkpointed in its shard cache. The result is as good as any
    // other - re-execution is byte-identical - so retire the key
    // wherever it currently lives: still pending, or inside another
    // lease (whose holder will learn at its next renew, and at worst
    // report a stale done of its own).
    auto pit = std::find(pending_.begin(), pending_.end(), key);
    if (pit != pending_.end()) {
        pending_.erase(pit);
        markCompleted(key, worker, id);
        st.runs += 1;
        return true;
    }
    for (auto lit = leases_.begin(); lit != leases_.end(); ++lit) {
        Lease &l = lit->second;
        auto kit = std::find(l.keys.begin(), l.keys.end(), key);
        if (kit == l.keys.end())
            continue;
        l.keys.erase(kit);
        if (l.keys.empty())
            leases_.erase(lit);
        markCompleted(key, worker, id);
        st.runs += 1;
        return true;
    }

    // Already retired between our check and now - impossible under
    // the single caller lock, so this is the completed_[] branch's
    // domain; count it stale for symmetry.
    st.staleDones += 1;
    return false;
}

FleetQueue::Renewal
FleetQueue::renew(unsigned worker, std::uint64_t id, std::uint64_t now)
{
    expire(now);
    touch(worker, now);

    Renewal r;
    auto it = leases_.find(id);
    if (it == leases_.end() || it->second.worker != worker)
        return r; // expired or never theirs: ok=false
    it->second.deadline = now + cfg_.renewMs;
    r.ok = true;
    r.keys = it->second.keys;
    return r;
}

// ---------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------

std::uint64_t
fleetNowMs()
{
    using namespace std::chrono;
    // +1 so the epoch itself is never returned: FleetQueue treats
    // firstMs == 0 as "never seen".
    static const steady_clock::time_point t0 = steady_clock::now();
    return static_cast<std::uint64_t>(
               duration_cast<milliseconds>(steady_clock::now() - t0)
                   .count()) +
           1;
}

// ---------------------------------------------------------------------
// FleetServer
// ---------------------------------------------------------------------

namespace
{

/** " k1 k2 ..." with a leading space per key (empty for no keys). */
std::string
formatKeys(const std::vector<std::uint32_t> &keys)
{
    std::string out;
    for (std::uint32_t key : keys) {
        out += ' ';
        out += std::to_string(key);
    }
    return out;
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        ssize_t w = ::write(fd, data.data() + off, data.size() - off);
        if (w <= 0)
            return false;
        off += static_cast<std::size_t>(w);
    }
    return true;
}

} // namespace

FleetServer::FleetServer(std::string socket_path, FleetQueue queue,
                         std::uint64_t grid_hash)
    : path_(std::move(socket_path)), queue_(std::move(queue)),
      gridHash_(grid_hash)
{}

FleetServer::~FleetServer()
{
    stop();
}

void
FleetServer::start()
{
    listener_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    fatal_if(listener_ < 0, "socket(AF_UNIX): %s",
             std::strerror(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    fatal_if(path_.size() >= sizeof(addr.sun_path),
             "fleet socket path too long (%zu bytes, max %zu): %s",
             path_.size(), sizeof(addr.sun_path) - 1, path_.c_str());
    std::strncpy(addr.sun_path, path_.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(path_.c_str()); // stale socket from a previous run
    fatal_if(::bind(listener_, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr)) != 0,
             "bind(%s): %s", path_.c_str(), std::strerror(errno));
    fatal_if(::listen(listener_, 64) != 0, "listen(%s): %s",
             path_.c_str(), std::strerror(errno));
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
FleetServer::stop()
{
    if (stopping_.exchange(true))
        return;
    if (listener_ >= 0) {
        // shutdown() alone does not unblock accept() on all kernels;
        // close() does, and the accept loop treats the resulting
        // error as the stop signal.
        ::shutdown(listener_, SHUT_RDWR);
        ::close(listener_);
        listener_ = -1;
    }
    {
        std::lock_guard<std::mutex> lk(connMu_);
        for (int fd : connFds_)
            ::shutdown(fd, SHUT_RDWR);
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lk(connMu_);
        threads.swap(connThreads_);
    }
    for (std::thread &t : threads)
        t.join();
    ::unlink(path_.c_str());
}

void
FleetServer::acceptLoop()
{
    for (;;) {
        int fd = ::accept(listener_, nullptr, nullptr);
        if (fd < 0) {
            if (stopping_.load())
                return;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return;
        }
        std::lock_guard<std::mutex> lk(connMu_);
        connFds_.push_back(fd);
        connThreads_.emplace_back(
            [this, fd] { serveConnection(fd); });
    }
}

void
FleetServer::serveConnection(int fd)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::read(fd, chunk, sizeof(chunk));
        if (n <= 0)
            break;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            std::string reply = handleLine(buf.substr(0, nl));
            buf.erase(0, nl + 1);
            if (!reply.empty() && !writeAll(fd, reply)) {
                ::close(fd);
                return;
            }
        }
    }
    ::close(fd);
}

std::string
FleetServer::handleLine(const std::string &line)
{
    ServeRequest req = parseServeRequest(line);
    const std::uint64_t now = fleetNowMs();
    std::lock_guard<std::mutex> lk(mu_);
    switch (req.kind) {
      case ServeRequest::Kind::none:
        return "";
      case ServeRequest::Kind::lease: {
        if (req.gridHash != gridHash_) {
            // A worker that built a different grid would interpret
            // every leased index as some other run; refuse loudly.
            return csprintf("# error: grid fingerprint mismatch "
                            "(coordinator %llu, worker %llu) - "
                            "worker flags must rebuild the "
                            "coordinator's grid exactly\n",
                            static_cast<unsigned long long>(gridHash_),
                            static_cast<unsigned long long>(
                                req.gridHash));
        }
        FleetGrant g = queue_.lease(req.worker, now);
        switch (g.kind) {
          case FleetGrant::Kind::drained:
            return "# drained\n";
          case FleetGrant::Kind::wait:
            return csprintf("# wait %llu\n",
                            static_cast<unsigned long long>(g.waitMs));
          case FleetGrant::Kind::work:
            return csprintf(
                "# lease %llu %llu %s%s\n",
                static_cast<unsigned long long>(g.id),
                static_cast<unsigned long long>(g.renewMs),
                g.stolen ? "stolen" : "fresh",
                formatKeys(g.keys).c_str());
        }
        return "# error: unreachable\n";
      }
      case ServeRequest::Kind::done:
        return queue_.done(req.worker, req.leaseId, req.key, now)
                   ? "# ok\n"
                   : "# stale\n";
      case ServeRequest::Kind::renew: {
        FleetQueue::Renewal r =
            queue_.renew(req.worker, req.leaseId, now);
        if (!r.ok)
            return "# stale\n";
        return csprintf("# renew %llu%s\n",
                        static_cast<unsigned long long>(req.leaseId),
                        formatKeys(r.keys).c_str());
      }
      case ServeRequest::Kind::stats:
        return csprintf(
            "# fleet total=%zu completed=%zu pending=%zu leased=%zu "
            "workers=%zu expired=%llu\n",
            queue_.totalKeys(), queue_.completedCount(),
            queue_.pendingCount(), queue_.activeLeases(),
            queue_.workerStats().size(),
            static_cast<unsigned long long>(queue_.expiredLeases()));
      case ServeRequest::Kind::error:
        return csprintf("# error: %s\n", req.error.c_str());
      default:
        // get/match/wait/help are serve-layer verbs; a fleet
        // coordinator has no cache to answer them from.
        return csprintf("# error: '%s' is a serve verb; the fleet "
                        "coordinator answers lease/done/renew/stats\n",
                        serveTokens(line).front().c_str());
    }
}

bool
FleetServer::drained() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.drained();
}

std::map<unsigned, FleetWorkerStats>
FleetServer::workerStats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.workerStats();
}

std::vector<FleetQueue::Completion>
FleetServer::completions() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.completions();
}

std::size_t
FleetServer::pendingCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.pendingCount();
}

std::uint64_t
FleetServer::expiredLeases() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.expiredLeases();
}

// ---------------------------------------------------------------------
// FleetClient
// ---------------------------------------------------------------------

FleetClient::FleetClient(std::string socket_path, unsigned worker,
                         std::uint64_t grid_hash)
    : worker_(worker), gridHash_(grid_hash)
{
    // Workers may be exec'd before the coordinator binds (the
    // manifest workflow starts them from a shell script): retry for
    // a few seconds before declaring the coordinator missing.
    const int max_attempts = 100;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        fatal_if(fd < 0, "socket(AF_UNIX): %s", std::strerror(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        fatal_if(socket_path.size() >= sizeof(addr.sun_path),
                 "fleet socket path too long (%zu bytes, max %zu): %s",
                 socket_path.size(), sizeof(addr.sun_path) - 1,
                 socket_path.c_str());
        std::strncpy(addr.sun_path, socket_path.c_str(),
                     sizeof(addr.sun_path) - 1);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd_ = fd;
            break;
        }
        ::close(fd);
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    fatal_if(fd_ < 0,
             "could not reach the fleet coordinator at %s after %d "
             "attempts",
             socket_path.c_str(), max_attempts);
    renewer_ = std::thread([this] { renewLoop(); });
}

FleetClient::~FleetClient()
{
    {
        std::lock_guard<std::mutex> lk(leaseMu_);
        stopRenewer_ = true;
    }
    leaseCv_.notify_all();
    if (renewer_.joinable())
        renewer_.join();
    if (fd_ >= 0)
        ::close(fd_);
}

std::string
FleetClient::transact(const std::string &line)
{
    std::lock_guard<std::mutex> lk(txnMu_);
    fatal_if(!writeAll(fd_, line),
             "fleet coordinator connection lost (write)");
    std::size_t nl;
    while ((nl = rxBuf_.find('\n')) == std::string::npos) {
        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        fatal_if(n <= 0, "fleet coordinator connection lost (read)");
        rxBuf_.append(chunk, static_cast<std::size_t>(n));
    }
    std::string reply = rxBuf_.substr(0, nl);
    rxBuf_.erase(0, nl + 1);
    return reply;
}

FleetGrant
FleetClient::lease()
{
    for (;;) {
        std::string reply = transact(csprintf(
            "lease %u %llu\n", worker_,
            static_cast<unsigned long long>(gridHash_)));
        std::vector<std::string> tok = serveTokens(reply);
        fatal_if(tok.size() < 2 || tok[0] != "#",
                 "malformed fleet reply: %s", reply.c_str());
        if (tok[1] == "drained") {
            FleetGrant g;
            g.kind = FleetGrant::Kind::drained;
            return g;
        }
        if (tok[1] == "wait") {
            std::uint64_t ms =
                tok.size() > 2 ? std::strtoull(tok[2].c_str(),
                                               nullptr, 10)
                               : 50;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::max<std::uint64_t>(
                    1, std::min<std::uint64_t>(ms, 1000))));
            continue;
        }
        fatal_if(tok[1] != "lease" || tok.size() < 5,
                 "malformed fleet reply: %s", reply.c_str());
        FleetGrant g;
        g.kind = FleetGrant::Kind::work;
        g.id = std::strtoull(tok[2].c_str(), nullptr, 10);
        g.renewMs = std::strtoull(tok[3].c_str(), nullptr, 10);
        g.stolen = tok[4] == "stolen";
        for (std::size_t i = 5; i < tok.size(); ++i) {
            g.keys.push_back(static_cast<std::uint32_t>(
                std::strtoul(tok[i].c_str(), nullptr, 10)));
        }
        fatal_if(g.keys.empty(), "fleet lease granted zero keys: %s",
                 reply.c_str());
        ++leasesTaken_;
        {
            std::lock_guard<std::mutex> lk(leaseMu_);
            activeLease_ = g.id;
            renewMs_ = std::max<std::uint64_t>(g.renewMs, 3);
            owned_.clear();
            owned_.insert(g.keys.begin(), g.keys.end());
            leaseStale_ = false;
        }
        leaseCv_.notify_all();
        return g;
    }
}

bool
FleetClient::done(std::uint64_t id, std::uint32_t key)
{
    std::string reply = transact(csprintf(
        "done %u %llu %u\n", worker_,
        static_cast<unsigned long long>(id), key));
    {
        std::lock_guard<std::mutex> lk(leaseMu_);
        if (id == activeLease_)
            owned_.erase(key);
    }
    return reply == "# ok";
}

bool
FleetClient::ownedNow(std::uint64_t id, std::uint32_t key) const
{
    std::lock_guard<std::mutex> lk(leaseMu_);
    return !leaseStale_ && id == activeLease_ &&
           owned_.count(key) != 0;
}

void
FleetClient::finishLease()
{
    std::lock_guard<std::mutex> lk(leaseMu_);
    activeLease_ = 0;
    owned_.clear();
}

void
FleetClient::renewLoop()
{
    std::unique_lock<std::mutex> lk(leaseMu_);
    for (;;) {
        if (stopRenewer_)
            return;
        if (activeLease_ == 0 || leaseStale_) {
            leaseCv_.wait(lk);
            continue;
        }
        const std::uint64_t id = activeLease_;
        const auto interval =
            std::chrono::milliseconds(std::max<std::uint64_t>(
                1, renewMs_ / 3));
        leaseCv_.wait_for(lk, interval);
        if (stopRenewer_)
            return;
        if (activeLease_ != id || leaseStale_)
            continue;
        // Transact without the lease lock (done() also takes it).
        lk.unlock();
        std::string reply = transact(csprintf(
            "renew %u %llu\n", worker_,
            static_cast<unsigned long long>(id)));
        std::vector<std::string> tok = serveTokens(reply);
        lk.lock();
        if (activeLease_ != id)
            continue; // lease changed under us; reply is moot
        if (tok.size() >= 2 && tok[1] == "renew") {
            // The reply's key list is authoritative: drop anything
            // the coordinator stole since the last exchange.
            std::set<std::uint32_t> still;
            for (std::size_t i = 3; i < tok.size(); ++i) {
                still.insert(static_cast<std::uint32_t>(
                    std::strtoul(tok[i].c_str(), nullptr, 10)));
            }
            std::set<std::uint32_t> kept;
            for (std::uint32_t key : owned_) {
                if (still.count(key))
                    kept.insert(key);
            }
            owned_.swap(kept);
        } else {
            // "# stale" (or noise): the lease expired server-side;
            // stop running its keys and let the main loop fetch a
            // fresh lease.
            leaseStale_ = true;
        }
    }
}

// ---------------------------------------------------------------------
// Makespan models
// ---------------------------------------------------------------------

double
fleetStaticMakespan(const std::vector<double> &costs,
                    const std::vector<unsigned> &owners,
                    const std::vector<double> &speeds)
{
    panic_if(costs.size() != owners.size(),
             "fleetStaticMakespan: %zu costs vs %zu owners",
             costs.size(), owners.size());
    std::vector<double> load(speeds.size(), 0.0);
    for (std::size_t i = 0; i < costs.size(); ++i) {
        panic_if(owners[i] >= speeds.size(),
                 "fleetStaticMakespan: owner %u outside %zu workers",
                 owners[i], speeds.size());
        load[owners[i]] += costs[i];
    }
    double makespan = 0.0;
    for (std::size_t w = 0; w < speeds.size(); ++w) {
        panic_if(speeds[w] <= 0.0, "worker speed must be positive");
        makespan = std::max(makespan, load[w] / speeds[w]);
    }
    return makespan;
}

double
fleetStealMakespan(std::vector<double> costs,
                   const std::vector<double> &speeds)
{
    panic_if(speeds.empty(), "fleetStealMakespan needs >= 1 worker");
    // Longest job first, each to the worker that finishes it
    // earliest given current load - the schedule an idle worker
    // pulling leases (and stealing when the queue drains) converges
    // to, evaluated deterministically.
    std::sort(costs.begin(), costs.end(), std::greater<double>());
    std::vector<double> finish(speeds.size(), 0.0);
    for (double cost : costs) {
        std::size_t best = 0;
        double best_t = 0.0;
        for (std::size_t w = 0; w < speeds.size(); ++w) {
            panic_if(speeds[w] <= 0.0, "worker speed must be positive");
            double t = finish[w] + cost / speeds[w];
            if (w == 0 || t < best_t) {
                best = w;
                best_t = t;
            }
        }
        finish[best] = best_t;
    }
    return *std::max_element(finish.begin(), finish.end());
}

} // namespace migc
