#include "core/fleet.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/cache_v4.hh"
#include "core/shard.hh"
#include "serve/serve_protocol.hh"
#include "sim/logging.hh"

namespace migc
{

// ---------------------------------------------------------------------
// FleetQueue
// ---------------------------------------------------------------------

FleetQueue::FleetQueue(std::vector<double> costs,
                       std::vector<std::uint32_t> pending,
                       FleetConfig cfg)
    : cfg_(cfg), costs_(std::move(costs)), pending_(std::move(pending)),
      completed_(costs_.size(), false), totalKeys_(pending_.size())
{
    if (cfg_.leaseSize == 0)
        cfg_.leaseSize = 1;
    for (std::uint32_t key : pending_) {
        panic_if(key >= costs_.size(),
                 "fleet pending key %u outside the %zu-point grid",
                 key, costs_.size());
    }
    std::sort(pending_.begin(), pending_.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                  return keyBefore(a, b);
              });
    // A duplicate pending key would be granted (and simulated) twice
    // and then double-counted at completion; the plan step dedupes,
    // so seeing one here is a caller bug.
    for (std::size_t i = 1; i < pending_.size(); ++i) {
        panic_if(pending_[i] == pending_[i - 1],
                 "fleet pending list holds key %u twice", pending_[i]);
    }
}

bool
FleetQueue::keyBefore(std::uint32_t a, std::uint32_t b) const
{
    if (costs_[a] != costs_[b])
        return costs_[a] > costs_[b];
    return a < b;
}

void
FleetQueue::requeue(std::uint32_t key)
{
    auto it = std::lower_bound(pending_.begin(), pending_.end(), key,
                               [this](std::uint32_t lhs,
                                      std::uint32_t rhs) {
                                   return keyBefore(lhs, rhs);
                               });
    pending_.insert(it, key);
}

FleetWorkerStats &
FleetQueue::touch(unsigned worker, std::uint64_t now)
{
    FleetWorkerStats &st = stats_[worker];
    if (st.firstMs == 0 && st.lastMs == 0)
        st.firstMs = now;
    st.lastMs = std::max(st.lastMs, now);
    return st;
}

void
FleetQueue::markCompleted(std::uint32_t key, unsigned worker,
                          std::uint64_t lease_id)
{
    completed_[key] = true;
    ++completedCount_;
    completions_.push_back(Completion{key, worker, lease_id});
}

void
FleetQueue::expire(std::uint64_t now)
{
    for (auto it = leases_.begin(); it != leases_.end();) {
        if (it->second.deadline >= now) {
            ++it;
            continue;
        }
        // The worker missed its renew deadline: presume it dead and
        // put its remaining keys back up for grabs. If it is merely
        // wedged and later reports a completion, done() still
        // accepts the row (re-execution is byte-identical), so
        // expiry can only cost duplicated work, never correctness.
        for (std::uint32_t key : it->second.keys)
            requeue(key);
        stats_[it->second.worker].expired += 1;
        ++expired_;
        it = leases_.erase(it);
    }
}

FleetGrant
FleetQueue::lease(unsigned worker, std::uint64_t now)
{
    expire(now);
    FleetWorkerStats &st = touch(worker, now);

    FleetGrant grant;
    if (drained()) {
        grant.kind = FleetGrant::Kind::drained;
        return grant;
    }

    if (!pending_.empty()) {
        std::size_t n = std::min(cfg_.leaseSize, pending_.size());
        grant.kind = FleetGrant::Kind::work;
        grant.id = nextLease_++;
        grant.renewMs = cfg_.renewMs;
        grant.keys.assign(pending_.begin(), pending_.begin() + n);
        pending_.erase(pending_.begin(), pending_.begin() + n);
        leases_.emplace(grant.id, Lease{worker, now + cfg_.renewMs,
                                        grant.keys});
        st.leases += 1;
        return grant;
    }

    // Pending is empty but keys are still outstanding: steal from
    // the slowest peer - the live lease with the most remaining
    // estimated cost - by shrinking it. The victim works its keys
    // front to back (cost-desc grant order), so taking the tail
    // takes the keys it is least likely to have started; a key it
    // does finish anyway just comes back as a stale done. Stealing
    // from one's own lease is allowed: it only happens when a
    // restarted worker finds its pre-crash lease still ticking, and
    // reclaiming the tail beats waiting out the deadline.
    std::uint64_t victim_id = 0;
    double victim_cost = -1.0;
    for (const auto &[id, l] : leases_) {
        if (l.keys.size() < 2)
            continue; // a single key can't be split
        double remaining = 0.0;
        for (std::uint32_t key : l.keys)
            remaining += costs_[key];
        if (remaining > victim_cost ||
            (remaining == victim_cost && id < victim_id)) {
            victim_cost = remaining;
            victim_id = id;
        }
    }
    if (victim_id == 0) {
        // Every outstanding lease is down to its last key: nothing
        // to split, the worker should ask again shortly (an expiry
        // or the final completions will resolve the wait).
        grant.kind = FleetGrant::Kind::wait;
        grant.waitMs = std::min<std::uint64_t>(
            std::max<std::uint64_t>(cfg_.renewMs / 4, 1), 100);
        return grant;
    }

    Lease &victim = leases_.at(victim_id);
    std::size_t keep = victim.keys.size() - victim.keys.size() / 2;
    grant.kind = FleetGrant::Kind::work;
    grant.id = nextLease_++;
    grant.renewMs = cfg_.renewMs;
    grant.stolen = true;
    grant.keys.assign(victim.keys.begin() + keep, victim.keys.end());
    victim.keys.resize(keep);
    leases_.emplace(grant.id,
                    Lease{worker, now + cfg_.renewMs, grant.keys});
    st.leases += 1;
    st.steals += 1;
    return grant;
}

bool
FleetQueue::done(unsigned worker, std::uint64_t id, std::uint32_t key,
                 std::uint64_t now)
{
    expire(now);
    FleetWorkerStats &st = touch(worker, now);

    if (key >= costs_.size() || completed_[key]) {
        st.staleDones += 1;
        return false;
    }

    auto it = leases_.find(id);
    if (it != leases_.end() && it->second.worker == worker) {
        Lease &l = it->second;
        auto kit = std::find(l.keys.begin(), l.keys.end(), key);
        if (kit != l.keys.end()) {
            l.keys.erase(kit);
            if (l.keys.empty()) {
                leases_.erase(it);
            } else {
                // A completion is the strongest liveness evidence
                // there is; extend the deadline like a renew.
                l.deadline = now + cfg_.renewMs;
            }
            markCompleted(key, worker, id);
            st.runs += 1;
            return true;
        }
    }

    // The lease is gone (expired) or the key was stolen out of it,
    // but the worker really did finish the run and its row is
    // checkpointed in its shard cache. The result is as good as any
    // other - re-execution is byte-identical - so retire the key
    // wherever it currently lives: still pending, or inside another
    // lease (whose holder will learn at its next renew, and at worst
    // report a stale done of its own).
    auto pit = std::find(pending_.begin(), pending_.end(), key);
    if (pit != pending_.end()) {
        pending_.erase(pit);
        markCompleted(key, worker, id);
        st.runs += 1;
        return true;
    }
    for (auto lit = leases_.begin(); lit != leases_.end(); ++lit) {
        Lease &l = lit->second;
        auto kit = std::find(l.keys.begin(), l.keys.end(), key);
        if (kit == l.keys.end())
            continue;
        l.keys.erase(kit);
        if (l.keys.empty())
            leases_.erase(lit);
        markCompleted(key, worker, id);
        st.runs += 1;
        return true;
    }

    // Already retired between our check and now - impossible under
    // the single caller lock, so this is the completed_[] branch's
    // domain; count it stale for symmetry.
    st.staleDones += 1;
    return false;
}

FleetQueue::Renewal
FleetQueue::renew(unsigned worker, std::uint64_t id, std::uint64_t now)
{
    expire(now);
    touch(worker, now);

    Renewal r;
    auto it = leases_.find(id);
    if (it == leases_.end() || it->second.worker != worker)
        return r; // expired or never theirs: ok=false
    it->second.deadline = now + cfg_.renewMs;
    r.ok = true;
    r.keys = it->second.keys;
    return r;
}

// ---------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------

std::uint64_t
fleetNowMs()
{
    using namespace std::chrono;
    // +1 so the epoch itself is never returned: FleetQueue treats
    // firstMs == 0 as "never seen".
    static const steady_clock::time_point t0 = steady_clock::now();
    return static_cast<std::uint64_t>(
               duration_cast<milliseconds>(steady_clock::now() - t0)
                   .count()) +
           1;
}

// ---------------------------------------------------------------------
// FleetServer
// ---------------------------------------------------------------------

namespace
{

/** " k1 k2 ..." with a leading space per key (empty for no keys). */
std::string
formatKeys(const std::vector<std::uint32_t> &keys)
{
    std::string out;
    for (std::uint32_t key : keys) {
        out += ' ';
        out += std::to_string(key);
    }
    return out;
}

/** Strict decimal uint64 (same rules as the protocol parser). */
bool
parseU64Strict(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : tok) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

/** Write @p bytes at @p path via tmp+rename (the shard-cache
 *  discipline: readers never observe a half-written file). */
bool
writeFileAtomic(const std::string &path, const std::string &bytes,
                std::string *error)
{
    const std::string tmp = path + ".pushtmp";
    {
        std::ofstream out(tmp,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
            *error = csprintf("cannot open %s for writing",
                              tmp.c_str());
            return false;
        }
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
        out.flush();
        if (!out) {
            *error = csprintf("short write to %s", tmp.c_str());
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        *error = csprintf("rename %s -> %s failed", tmp.c_str(),
                          path.c_str());
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

} // namespace

FleetServer::FleetServer(std::string endpoint_spec, FleetQueue queue,
                         std::uint64_t grid_hash)
    : path_(std::move(endpoint_spec)), queue_(std::move(queue)),
      gridHash_(grid_hash)
{}

FleetServer::~FleetServer()
{
    stop();
}

void
FleetServer::setShardStore(std::string cache_base)
{
    std::lock_guard<std::mutex> lk(storeMu_);
    storeBase_ = std::move(cache_base);
}

void
FleetServer::start()
{
    listener_.bind(parseEndpoint(path_));
    acceptThread_ = std::thread([this] { acceptLoop(); });
}

void
FleetServer::stop()
{
    if (stopping_.exchange(true))
        return;
    listener_.stop(); // unblocks the accept loop
    {
        std::lock_guard<std::mutex> lk(connMu_);
        for (const auto &s : connStreams_)
            s->shutdown();
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lk(connMu_);
        threads.swap(connThreads_);
    }
    for (std::thread &t : threads)
        t.join();
}

void
FleetServer::acceptLoop()
{
    for (;;) {
        std::unique_ptr<Stream> conn = listener_.accept();
        if (conn == nullptr)
            return; // stopped (or a non-transient accept error)
        std::shared_ptr<Stream> stream(std::move(conn));
        std::lock_guard<std::mutex> lk(connMu_);
        connStreams_.push_back(stream);
        liveConns_.fetch_add(1, std::memory_order_relaxed);
        connThreads_.emplace_back([this, stream] {
            serveConnection(stream);
            liveConns_.fetch_sub(1, std::memory_order_relaxed);
        });
    }
}

void
FleetServer::serveConnection(std::shared_ptr<Stream> stream)
{
    std::string buf;
    char chunk[4096];
    for (;;) {
        ssize_t n = stream->read(chunk, sizeof(chunk));
        if (n <= 0)
            break;
        buf.append(chunk, static_cast<std::size_t>(n));
        std::size_t nl;
        while ((nl = buf.find('\n')) != std::string::npos) {
            const std::string line = buf.substr(0, nl);
            buf.erase(0, nl + 1);
            // push and fetch carry a raw payload on the connection,
            // so they dispatch here where the stream is in hand;
            // every pure-line verb goes through handleLine.
            ServeRequest req = parseServeRequest(line);
            std::string reply;
            if (req.kind == ServeRequest::Kind::push) {
                if (!handlePush(req, buf, *stream, reply))
                    return;
            } else if (req.kind == ServeRequest::Kind::fetch) {
                reply = handleFetch(req);
            } else {
                reply = handleLine(line);
            }
            if (!reply.empty() && !stream->writeAll(reply))
                return;
        }
    }
}

bool
FleetServer::handlePush(const ServeRequest &req, std::string &buf,
                        Stream &stream, std::string &reply)
{
    // Consume the announced payload unconditionally - even a push
    // this coordinator will refuse must drain its bytes, or the
    // line framing of everything after it is garbage.
    std::string payload;
    const std::size_t from_buf =
        std::min<std::size_t>(buf.size(), req.bytes);
    payload.assign(buf, 0, from_buf);
    buf.erase(0, from_buf);
    char chunk[65536];
    while (payload.size() < req.bytes) {
        const std::size_t want = std::min<std::size_t>(
            sizeof(chunk), req.bytes - payload.size());
        ssize_t n = stream.read(chunk, want);
        if (n <= 0)
            return false; // connection died mid-payload
        payload.append(chunk, static_cast<std::size_t>(n));
    }

    const std::uint64_t cksum =
        v4Checksum(payload.data(), payload.size());
    if (cksum != req.checksum) {
        // A damaged upload must never reach the store: the client
        // resyncs and retransmits on a mismatch reply.
        reply = csprintf(
            "# error: push payload checksum mismatch (announced "
            "%llu, computed %llu); %llu bytes dropped\n",
            static_cast<unsigned long long>(req.checksum),
            static_cast<unsigned long long>(cksum),
            static_cast<unsigned long long>(req.bytes));
        return true;
    }

    std::lock_guard<std::mutex> lk(storeMu_);
    if (storeBase_.empty()) {
        reply = "# error: this coordinator has no shard store "
                "(started without one); push refused\n";
        return true;
    }
    const std::string dest = shardCachePath(storeBase_, req.worker);
    std::string error;
    if (!writeFileAtomic(dest, payload, &error)) {
        reply = csprintf("# error: push store failed: %s\n",
                         error.c_str());
        return true;
    }
    ++pushesStored_;
    reply = csprintf("# pushed %llu\n",
                     static_cast<unsigned long long>(req.bytes));
    return true;
}

std::string
FleetServer::handleFetch(const ServeRequest &req)
{
    std::lock_guard<std::mutex> lk(storeMu_);
    if (storeBase_.empty())
        return "# none\n";
    const std::string path = shardCachePath(storeBase_, req.worker);
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return "# none\n";
    std::ostringstream ss;
    ss << in.rdbuf();
    std::string bytes = ss.str();
    std::string reply = csprintf(
        "# shard %zu %llu\n", bytes.size(),
        static_cast<unsigned long long>(
            v4Checksum(bytes.data(), bytes.size())));
    reply += bytes;
    return reply;
}

std::uint64_t
FleetServer::pushesStored() const
{
    std::lock_guard<std::mutex> lk(storeMu_);
    return pushesStored_;
}

std::string
FleetServer::handleLine(const std::string &line)
{
    ServeRequest req = parseServeRequest(line);
    const std::uint64_t now = fleetNowMs();
    std::lock_guard<std::mutex> lk(mu_);
    switch (req.kind) {
      case ServeRequest::Kind::none:
        return "";
      case ServeRequest::Kind::lease: {
        if (req.gridHash != gridHash_) {
            // A worker that built a different grid would interpret
            // every leased index as some other run; refuse loudly.
            return csprintf("# error: grid fingerprint mismatch "
                            "(coordinator %llu, worker %llu) - "
                            "worker flags must rebuild the "
                            "coordinator's grid exactly\n",
                            static_cast<unsigned long long>(gridHash_),
                            static_cast<unsigned long long>(
                                req.gridHash));
        }
        FleetGrant g = queue_.lease(req.worker, now);
        switch (g.kind) {
          case FleetGrant::Kind::drained:
            return "# drained\n";
          case FleetGrant::Kind::wait:
            return csprintf("# wait %llu\n",
                            static_cast<unsigned long long>(g.waitMs));
          case FleetGrant::Kind::work:
            return csprintf(
                "# lease %llu %llu %s%s\n",
                static_cast<unsigned long long>(g.id),
                static_cast<unsigned long long>(g.renewMs),
                g.stolen ? "stolen" : "fresh",
                formatKeys(g.keys).c_str());
        }
        return "# error: unreachable\n";
      }
      case ServeRequest::Kind::done:
        return queue_.done(req.worker, req.leaseId, req.key, now)
                   ? "# ok\n"
                   : "# stale\n";
      case ServeRequest::Kind::renew: {
        FleetQueue::Renewal r =
            queue_.renew(req.worker, req.leaseId, now);
        if (!r.ok)
            return "# stale\n";
        return csprintf("# renew %llu%s\n",
                        static_cast<unsigned long long>(req.leaseId),
                        formatKeys(r.keys).c_str());
      }
      case ServeRequest::Kind::stats:
        return csprintf(
            "# fleet total=%zu completed=%zu pending=%zu leased=%zu "
            "workers=%zu expired=%llu\n",
            queue_.totalKeys(), queue_.completedCount(),
            queue_.pendingCount(), queue_.activeLeases(),
            queue_.workerStats().size(),
            static_cast<unsigned long long>(queue_.expiredLeases()));
      case ServeRequest::Kind::error:
        return csprintf("# error: %s\n", req.error.c_str());
      case ServeRequest::Kind::push:
      case ServeRequest::Kind::fetch:
        // Their payload framing needs the connection stream;
        // serveConnection dispatches them before reaching here.
        return "# error: push/fetch need a socket connection (their "
               "payload follows the request line)\n";
      default:
        // get/match/wait/help are serve-layer verbs; a fleet
        // coordinator has no cache to answer them from.
        return csprintf("# error: '%s' is a serve verb; the fleet "
                        "coordinator answers lease/done/renew/stats\n",
                        serveTokens(line).front().c_str());
    }
}

bool
FleetServer::drained() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.drained();
}

std::map<unsigned, FleetWorkerStats>
FleetServer::workerStats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.workerStats();
}

std::vector<FleetQueue::Completion>
FleetServer::completions() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.completions();
}

std::size_t
FleetServer::pendingCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.pendingCount();
}

std::uint64_t
FleetServer::expiredLeases() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return queue_.expiredLeases();
}

// ---------------------------------------------------------------------
// FleetClient
// ---------------------------------------------------------------------

FleetClient::FleetClient(std::string endpoint_spec, unsigned worker,
                         std::uint64_t grid_hash,
                         FleetClientOptions opts)
    : ep_(parseEndpoint(endpoint_spec)), worker_(worker),
      gridHash_(grid_hash), opts_(opts)
{
    if (opts_.connectAttempts == 0)
        opts_.connectAttempts = 1;
    // Workers may be exec'd before the coordinator binds (the
    // manifest workflow starts them from a shell script): retry for
    // a few seconds before declaring the coordinator missing.
    std::string error = "no connect attempt made";
    for (unsigned attempt = 0; attempt < opts_.connectAttempts;
         ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(opts_.connectDelayMs));
        }
        std::lock_guard<std::mutex> lk(txnMu_);
        if (reconnectLocked(&error))
            break;
    }
    fatal_if(stream_ == nullptr,
             "could not reach the fleet coordinator at %s after %u "
             "attempts: %s",
             ep_.spec().c_str(), opts_.connectAttempts,
             error.c_str());
    renewer_ = std::thread([this] { renewLoop(); });
}

FleetClient::~FleetClient()
{
    {
        std::lock_guard<std::mutex> lk(leaseMu_);
        stopRenewer_ = true;
    }
    leaseCv_.notify_all();
    if (renewer_.joinable())
        renewer_.join();
    std::lock_guard<std::mutex> lk(txnMu_);
    stream_.reset();
}

bool
FleetClient::reconnectLocked(std::string *error)
{
    // A fresh connection always starts with an empty receive buffer:
    // whatever framing state the old connection had is dead with it.
    rxBuf_.clear();
    std::unique_ptr<Stream> s = connectTo(ep_, error);
    if (s == nullptr) {
        stream_.reset();
        return false;
    }
    if (opts_.wrap)
        s = opts_.wrap(std::move(s));
    stream_ = std::move(s);
    return true;
}

void
FleetClient::dropConnectionLocked()
{
    stream_.reset();
    rxBuf_.clear();
}

bool
FleetClient::readLineLocked(std::string &line)
{
    std::size_t nl;
    while ((nl = rxBuf_.find('\n')) == std::string::npos) {
        char chunk[4096];
        ssize_t n = stream_->read(chunk, sizeof(chunk));
        if (n <= 0)
            return false;
        rxBuf_.append(chunk, static_cast<std::size_t>(n));
    }
    line = rxBuf_.substr(0, nl);
    rxBuf_.erase(0, nl + 1);
    return true;
}

bool
FleetClient::readExactLocked(std::string &out, std::size_t n)
{
    const std::size_t from_buf = std::min(rxBuf_.size(), n);
    out.assign(rxBuf_, 0, from_buf);
    rxBuf_.erase(0, from_buf);
    char chunk[65536];
    while (out.size() < n) {
        const std::size_t want =
            std::min(sizeof(chunk), n - out.size());
        ssize_t r = stream_->read(chunk, want);
        if (r <= 0)
            return false;
        out.append(chunk, static_cast<std::size_t>(r));
    }
    return true;
}

std::string
FleetClient::transactLocked(const std::string &line)
{
    // The connection is disposable: any transport failure drops it,
    // reconnects, and retransmits. Every fleet verb is idempotent
    // under retry (file comment in fleet.hh), so at-least-once
    // delivery is safe.
    std::string error = "not connected";
    for (unsigned attempt = 0; attempt <= opts_.maxRetries;
         ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        if (stream_ == nullptr && !reconnectLocked(&error))
            continue;
        if (!stream_->writeAll(line)) {
            error = "connection lost mid-request";
            dropConnectionLocked();
            continue;
        }
        std::string reply;
        if (!readLineLocked(reply)) {
            error = "connection lost before the reply";
            dropConnectionLocked();
            continue;
        }
        return reply;
    }
    fatal("fleet coordinator at %s unreachable after %u retries "
          "of '%s': %s",
          ep_.spec().c_str(), opts_.maxRetries,
          line.substr(0, line.find('\n')).c_str(), error.c_str());
    return "";
}

std::string
FleetClient::transact(const std::string &line)
{
    std::lock_guard<std::mutex> lk(txnMu_);
    return transactLocked(line);
}

std::string
FleetClient::transactValidated(
    const std::string &line,
    const std::function<bool(const std::string &)> &valid)
{
    std::lock_guard<std::mutex> lk(txnMu_);
    std::string reply;
    for (unsigned attempt = 0; attempt <= opts_.maxRetries;
         ++attempt) {
        reply = transactLocked(line);
        if (valid(reply))
            return reply;
        // A reply this request can't have produced means the
        // request/reply pairing on this connection is no longer
        // trustworthy (a torn, duplicated, or corrupted frame):
        // resync by retransmitting on a fresh connection.
        dropConnectionLocked();
    }
    fatal("fleet reply to '%s' still malformed after %u resyncs "
          "(last reply: %s)",
          line.substr(0, line.find('\n')).c_str(), opts_.maxRetries,
          reply.c_str());
    return reply;
}

FleetGrant
FleetClient::lease()
{
    const std::string request = csprintf(
        "lease %u %llu\n", worker_,
        static_cast<unsigned long long>(gridHash_));
    const std::size_t grid_size = opts_.gridSize;
    auto valid = [grid_size](const std::string &reply) {
        std::vector<std::string> tok = serveTokens(reply);
        if (tok.size() < 2 || tok[0] != "#")
            return false;
        if (tok[1] == "drained")
            return tok.size() == 2;
        if (tok[1] == "wait") {
            std::uint64_t ms;
            return tok.size() == 3 && parseU64Strict(tok[2], ms);
        }
        if (tok[1] == "error:") {
            // Only the coordinator's genuine refusals surface; an
            // error a corrupted *request* provoked (unknown
            // command, bad operand) retransmits instead.
            return reply.rfind("# error: grid fingerprint", 0) == 0;
        }
        if (tok[1] != "lease" || tok.size() < 6)
            return false;
        std::uint64_t id, renew_ms;
        if (!parseU64Strict(tok[2], id) || id == 0 ||
            !parseU64Strict(tok[3], renew_ms))
            return false;
        if (tok[4] != "fresh" && tok[4] != "stolen")
            return false;
        for (std::size_t i = 5; i < tok.size(); ++i) {
            std::uint64_t key;
            if (!parseU64Strict(tok[i], key))
                return false;
            // A key outside the grid is a torn frame, not a grant:
            // handing it to the engine would panic the worker.
            if (grid_size > 0 && key >= grid_size)
                return false;
            if (key > UINT32_MAX)
                return false;
        }
        return true;
    };
    for (;;) {
        std::string reply = transactValidated(request, valid);
        std::vector<std::string> tok = serveTokens(reply);
        fatal_if(tok[1] == "error:", "fleet lease refused: %s",
                 reply.c_str());
        if (tok[1] == "drained") {
            FleetGrant g;
            g.kind = FleetGrant::Kind::drained;
            return g;
        }
        if (tok[1] == "wait") {
            std::uint64_t ms =
                std::strtoull(tok[2].c_str(), nullptr, 10);
            std::this_thread::sleep_for(
                std::chrono::milliseconds(std::max<std::uint64_t>(
                    1, std::min<std::uint64_t>(ms, 1000))));
            continue;
        }
        FleetGrant g;
        g.kind = FleetGrant::Kind::work;
        g.id = std::strtoull(tok[2].c_str(), nullptr, 10);
        g.renewMs = std::strtoull(tok[3].c_str(), nullptr, 10);
        g.stolen = tok[4] == "stolen";
        for (std::size_t i = 5; i < tok.size(); ++i) {
            g.keys.push_back(static_cast<std::uint32_t>(
                std::strtoul(tok[i].c_str(), nullptr, 10)));
        }
        ++leasesTaken_;
        {
            std::lock_guard<std::mutex> lk(leaseMu_);
            activeLease_ = g.id;
            renewMs_ = std::max<std::uint64_t>(g.renewMs, 3);
            owned_.clear();
            owned_.insert(g.keys.begin(), g.keys.end());
            leaseStale_ = false;
        }
        leaseCv_.notify_all();
        return g;
    }
}

bool
FleetClient::done(std::uint64_t id, std::uint32_t key)
{
    std::string reply = transactValidated(
        csprintf("done %u %llu %u\n", worker_,
                 static_cast<unsigned long long>(id), key),
        [](const std::string &r) {
            // "# error" replies retransmit too: they mean the
            // coordinator never processed this done (a corrupted
            // request line), and losing the report would requeue a
            // finished key.
            return r == "# ok" || r == "# stale";
        });
    {
        std::lock_guard<std::mutex> lk(leaseMu_);
        if (id == activeLease_)
            owned_.erase(key);
    }
    return reply == "# ok";
}

void
FleetClient::pushShard(std::uint64_t id, const std::string &bytes)
{
    fatal_if(bytes.size() > kServeMaxPushBytes,
             "shard cache is %zu bytes; the push protocol caps "
             "uploads at %llu",
             bytes.size(),
             static_cast<unsigned long long>(kServeMaxPushBytes));
    const std::string header = csprintf(
        "push %u %llu %zu %llu\n", worker_,
        static_cast<unsigned long long>(id), bytes.size(),
        static_cast<unsigned long long>(
            v4Checksum(bytes.data(), bytes.size())));
    const std::string want =
        csprintf("# pushed %zu", bytes.size());

    std::lock_guard<std::mutex> lk(txnMu_);
    std::string error = "not connected";
    for (unsigned attempt = 0; attempt <= opts_.maxRetries;
         ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        if (stream_ == nullptr && !reconnectLocked(&error))
            continue;
        if (!stream_->writeAll(header) || !stream_->writeAll(bytes)) {
            error = "connection lost mid-upload";
            dropConnectionLocked();
            continue;
        }
        std::string reply;
        if (!readLineLocked(reply)) {
            error = "connection lost before the push reply";
            dropConnectionLocked();
            continue;
        }
        if (reply == want)
            return;
        // Checksum mismatch, a refusal, or a desynced reply: the
        // frame did not land as sent; retransmit whole.
        error = reply;
        dropConnectionLocked();
    }
    fatal("shard push (%zu bytes) to %s failed after %u attempts: "
          "%s",
          bytes.size(), ep_.spec().c_str(), opts_.maxRetries + 1,
          error.c_str());
}

bool
FleetClient::fetchShard(unsigned shard, const std::string &dest)
{
    const std::string request = csprintf("fetch %u\n", shard);
    std::lock_guard<std::mutex> lk(txnMu_);
    std::string error = "not connected";
    for (unsigned attempt = 0; attempt <= opts_.maxRetries;
         ++attempt) {
        if (attempt > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(10));
        }
        if (stream_ == nullptr && !reconnectLocked(&error))
            continue;
        if (!stream_->writeAll(request)) {
            error = "connection lost mid-request";
            dropConnectionLocked();
            continue;
        }
        std::string reply;
        if (!readLineLocked(reply)) {
            error = "connection lost before the fetch reply";
            dropConnectionLocked();
            continue;
        }
        if (reply == "# none")
            return false;
        std::vector<std::string> tok = serveTokens(reply);
        std::uint64_t nbytes = 0, cksum = 0;
        if (tok.size() != 4 || tok[0] != "#" || tok[1] != "shard" ||
            !parseU64Strict(tok[2], nbytes) ||
            nbytes > kServeMaxPushBytes ||
            !parseU64Strict(tok[3], cksum)) {
            error = reply;
            dropConnectionLocked();
            continue;
        }
        std::string payload;
        if (!readExactLocked(payload,
                             static_cast<std::size_t>(nbytes))) {
            error = "connection lost mid-download";
            dropConnectionLocked();
            continue;
        }
        if (v4Checksum(payload.data(), payload.size()) != cksum) {
            error = "fetched payload failed its checksum";
            dropConnectionLocked();
            continue;
        }
        std::string write_error;
        fatal_if(!writeFileAtomic(dest, payload, &write_error),
                 "cannot store fetched shard %u at %s: %s", shard,
                 dest.c_str(), write_error.c_str());
        return true;
    }
    fatal("shard %u fetch from %s failed after %u attempts: %s",
          shard, ep_.spec().c_str(), opts_.maxRetries + 1,
          error.c_str());
    return false;
}

bool
FleetClient::ownedNow(std::uint64_t id, std::uint32_t key) const
{
    std::lock_guard<std::mutex> lk(leaseMu_);
    return !leaseStale_ && id == activeLease_ &&
           owned_.count(key) != 0;
}

void
FleetClient::finishLease()
{
    std::lock_guard<std::mutex> lk(leaseMu_);
    activeLease_ = 0;
    owned_.clear();
}

void
FleetClient::renewLoop()
{
    std::unique_lock<std::mutex> lk(leaseMu_);
    for (;;) {
        if (stopRenewer_)
            return;
        if (activeLease_ == 0 || leaseStale_) {
            leaseCv_.wait(lk);
            continue;
        }
        const std::uint64_t id = activeLease_;
        const auto interval =
            std::chrono::milliseconds(std::max<std::uint64_t>(
                1, renewMs_ / 3));
        leaseCv_.wait_for(lk, interval);
        if (stopRenewer_)
            return;
        if (activeLease_ != id || leaseStale_)
            continue;
        // Transact without the lease lock (done() also takes it).
        lk.unlock();
        std::string reply = transactValidated(
            csprintf("renew %u %llu\n", worker_,
                     static_cast<unsigned long long>(id)),
            [id](const std::string &r) {
                if (r == "# stale")
                    return true;
                std::vector<std::string> tok = serveTokens(r);
                if (tok.size() < 3 || tok[0] != "#" ||
                    tok[1] != "renew")
                    return false;
                std::uint64_t got;
                if (!parseU64Strict(tok[2], got) || got != id)
                    return false;
                for (std::size_t i = 3; i < tok.size(); ++i) {
                    std::uint64_t key;
                    if (!parseU64Strict(tok[i], key))
                        return false;
                }
                return true;
            });
        std::vector<std::string> tok = serveTokens(reply);
        lk.lock();
        if (activeLease_ != id)
            continue; // lease changed under us; reply is moot
        if (tok.size() >= 2 && tok[1] == "renew") {
            // The reply's key list is authoritative: drop anything
            // the coordinator stole since the last exchange.
            std::set<std::uint32_t> still;
            for (std::size_t i = 3; i < tok.size(); ++i) {
                still.insert(static_cast<std::uint32_t>(
                    std::strtoul(tok[i].c_str(), nullptr, 10)));
            }
            std::set<std::uint32_t> kept;
            for (std::uint32_t key : owned_) {
                if (still.count(key))
                    kept.insert(key);
            }
            owned_.swap(kept);
        } else {
            // "# stale" (or noise): the lease expired server-side;
            // stop running its keys and let the main loop fetch a
            // fresh lease.
            leaseStale_ = true;
        }
    }
}

// ---------------------------------------------------------------------
// Makespan models
// ---------------------------------------------------------------------

double
fleetStaticMakespan(const std::vector<double> &costs,
                    const std::vector<unsigned> &owners,
                    const std::vector<double> &speeds)
{
    panic_if(costs.size() != owners.size(),
             "fleetStaticMakespan: %zu costs vs %zu owners",
             costs.size(), owners.size());
    std::vector<double> load(speeds.size(), 0.0);
    for (std::size_t i = 0; i < costs.size(); ++i) {
        panic_if(owners[i] >= speeds.size(),
                 "fleetStaticMakespan: owner %u outside %zu workers",
                 owners[i], speeds.size());
        load[owners[i]] += costs[i];
    }
    double makespan = 0.0;
    for (std::size_t w = 0; w < speeds.size(); ++w) {
        panic_if(speeds[w] <= 0.0, "worker speed must be positive");
        makespan = std::max(makespan, load[w] / speeds[w]);
    }
    return makespan;
}

double
fleetStealMakespan(std::vector<double> costs,
                   const std::vector<double> &speeds)
{
    panic_if(speeds.empty(), "fleetStealMakespan needs >= 1 worker");
    // Longest job first, each to the worker that finishes it
    // earliest given current load - the schedule an idle worker
    // pulling leases (and stealing when the queue drains) converges
    // to, evaluated deterministically.
    std::sort(costs.begin(), costs.end(), std::greater<double>());
    std::vector<double> finish(speeds.size(), 0.0);
    for (double cost : costs) {
        std::size_t best = 0;
        double best_t = 0.0;
        for (std::size_t w = 0; w < speeds.size(); ++w) {
            panic_if(speeds[w] <= 0.0, "worker speed must be positive");
            double t = finish[w] + cost / speeds[w];
            if (w == 0 || t < best_t) {
                best = w;
                best_t = t;
            }
        }
        finish[best] = best_t;
    }
    return *std::max_element(finish.begin(), finish.end());
}

} // namespace migc
