/**
 * @file
 * The elastic shard fleet: a lease-based work queue that replaces the
 * static run-key partition for coordinated multi-process sweeps.
 *
 * PR 5's sharding split a grid by a stable key hash - correct and
 * coordinator-free, but static: one slow or crashed worker owns its
 * slice forever, so the sweep makespan is the straggler's wall
 * clock. The fleet keeps the same workers, cache files, and merge
 * join, and replaces only the *assignment*: a coordinator owns the
 * ordered run-key list (longest-estimated-job-first) and workers
 * lease small ranges of it over a socket (AF_UNIX or TCP, see
 * serve/transport.hh), so assignment follows measured progress
 * instead of a fork-time guess.
 *
 * Three mechanisms bound the makespan:
 *
 *  - Leases, not ownership. A lease is a short list of grid indices
 *    with a renew deadline. Workers report each completion (`done`),
 *    renew in the background, and come back for more when the lease
 *    drains - a fast worker simply takes more leases.
 *
 *  - Work stealing. When the pending queue is empty but leases are
 *    outstanding, an idle worker's `lease` request shrinks the lease
 *    of the slowest peer (the one with the most remaining estimated
 *    cost) and grants the stolen tail, so no worker idles while
 *    another still holds more than one key.
 *
 *  - Crash-safe expiry. A worker that misses its renew deadline
 *    (SIGKILL, hang, dropped socket) has its remaining keys silently
 *    requeued. Its finished rows are already checkpointed in its
 *    `.shard<i>` cache, and re-execution of an unreported key is
 *    byte-identical (the run-identity contract), so the coordinator
 *    merge dedupes any overlap - a killed worker costs only its
 *    unleased tail.
 *
 * FleetQueue is the deterministic core: no clock, no socket, no
 * thread - every call takes `now` in milliseconds, so unit tests
 * replay lease/steal/expiry schedules exactly. FleetServer wraps it
 * in a socket front end (serve_protocol verbs `lease`/`done`/
 * `renew`/`stats`, plus `push`/`fetch` when a shard store is
 * attached); FleetClient is the worker side used by
 * SweepEngine::runFleet.
 *
 * Multi-host fleets need two more things than the single-host
 * original: a TCP endpoint (`tcp:<host>:<port>` instead of a socket
 * path - both sides parse the spec through serve/transport.hh) and a
 * way to move shard cache files without a shared filesystem. The
 * `push` verb uploads a worker's whole `.shard<i>` file to the
 * coordinator (cache_v4-checksummed; the coordinator stores it
 * tmp+rename at the canonical shardCachePath, so the drain-time
 * merge and `--resume` see exactly the files a local fleet would
 * have written), and `fetch` streams a stored copy back so a
 * restarted worker resumes from its own pre-crash checkpoint.
 * Workers push *before* each `done` - the same checkpoint-before-
 * report ordering that makes local crashes safe extends verbatim to
 * the no-shared-FS case.
 *
 * FleetClient treats the connection as disposable: any transport
 * error, torn frame, or reply that fails validation drops the
 * socket, reconnects, and retransmits (bounded; then fatal with the
 * last error). Every verb is idempotent under retry - a duplicated
 * `done` is counted stale, a re-pushed file overwrites byte-identical
 * content, an orphaned lease expires - which is what the
 * fault-injection suite (tests/test_fleet_faults.cc) leans on.
 *
 * The pure makespan-model functions at the bottom replay measured
 * per-run costs through static-vs-stealing fleets;
 * bench/micro_substrate records them (fleet_steal_makespan) and CI
 * gates the ratio.
 */

#ifndef MIGC_CORE_FLEET_HH
#define MIGC_CORE_FLEET_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "serve/transport.hh"

namespace migc
{

struct ServeRequest; // serve/serve_protocol.hh

/** Tuning for a fleet sweep; the coordinator's flags land here. */
struct FleetConfig
{
    /** Keys granted per lease. Small leases keep the steal
     *  granularity fine; the per-lease round trip is microseconds
     *  against multi-millisecond runs. */
    std::size_t leaseSize = 2;

    /** Renew deadline in ms. A lease not renewed (or advanced by a
     *  `done`) within this window is presumed dead and requeued.
     *  Workers renew every renewMs/3 from a background thread, so
     *  the deadline only fires for crashed or wedged workers. */
    std::uint64_t renewMs = 10000;
};

/** What one `lease` request came back with. */
struct FleetGrant
{
    enum class Kind
    {
        work,    ///< keys granted (possibly stolen from a peer)
        wait,    ///< nothing grantable now; retry after waitMs
        drained, ///< every key is complete; the worker may exit
    };

    Kind kind = Kind::wait;
    std::uint64_t id = 0;      ///< lease id (work only)
    std::uint64_t renewMs = 0; ///< renew deadline for this lease
    std::uint64_t waitMs = 0;  ///< retry hint (wait only)
    bool stolen = false;       ///< carved from a peer's lease
    std::vector<std::uint32_t> keys; ///< grid indices, cost-desc
};

/** Per-worker accounting surfaced in the join summary. */
struct FleetWorkerStats
{
    std::uint64_t runs = 0;      ///< keys this worker completed
    std::uint64_t leases = 0;    ///< leases granted to it
    std::uint64_t steals = 0;    ///< ...of which were stolen tails
    std::uint64_t expired = 0;   ///< leases it lost to the deadline
    std::uint64_t staleDones = 0; ///< completions another worker beat
    std::uint64_t firstMs = 0;   ///< first contact (coordinator clock)
    std::uint64_t lastMs = 0;    ///< last contact

    double wallSeconds() const
    {
        return lastMs > firstMs ? (lastMs - firstMs) / 1000.0 : 0.0;
    }
};

/**
 * The deterministic lease queue. Not internally synchronized and
 * clockless: callers pass `now` (milliseconds on any monotonic
 * clock) into every operation, so FleetServer can wrap it in one
 * mutex and tests can replay any schedule bit-exactly.
 */
class FleetQueue
{
  public:
    /**
     * @p costs holds the scheduler estimate for every grid index
     * (size = grid size); @p pending lists the indices that still
     * need simulating (the plan step already dropped cached keys).
     * Pending keys are served longest-estimate-first, ties by index.
     */
    FleetQueue(std::vector<double> costs,
               std::vector<std::uint32_t> pending, FleetConfig cfg);

    /**
     * Grant work to @p worker: pending keys if any remain, else a
     * tail stolen from the outstanding lease with the most remaining
     * estimated cost (when it still holds >1 key), else `wait`;
     * `drained` once every key is complete.
     */
    FleetGrant lease(unsigned worker, std::uint64_t now);

    /**
     * Worker @p worker finished grid index @p key under lease @p id.
     * A completion is accepted even when the lease has expired or
     * the key was stolen and re-leased elsewhere - the row is
     * already checkpointed in the worker's shard cache and
     * re-execution is byte-identical, so the first completion wins
     * and later ones are counted stale. @return true when this call
     * retired the key.
     */
    bool done(unsigned worker, std::uint64_t id, std::uint32_t key,
              std::uint64_t now);

    struct Renewal
    {
        /** False when the lease no longer exists (expired or fully
         *  consumed); the worker should discard its remaining keys
         *  and request a fresh lease. */
        bool ok = false;

        /** The authoritative remaining key set: anything the worker
         *  holds that is absent here was stolen. */
        std::vector<std::uint32_t> keys;
    };

    /** Extend lease @p id's deadline to now + renewMs. */
    Renewal renew(unsigned worker, std::uint64_t id, std::uint64_t now);

    /** Requeue every lease whose deadline passed. Called internally
     *  by lease/done/renew; public so a coordinator can tick it. */
    void expire(std::uint64_t now);

    /** True once every key has been completed. */
    bool drained() const { return completedCount_ == totalKeys_; }

    std::size_t totalKeys() const { return totalKeys_; }
    std::size_t completedCount() const { return completedCount_; }
    std::size_t pendingCount() const { return pending_.size(); }
    std::size_t activeLeases() const { return leases_.size(); }
    std::uint64_t expiredLeases() const { return expired_; }

    const std::map<unsigned, FleetWorkerStats> &workerStats() const
    {
        return stats_;
    }

    /** Who first completed each key, in completion order - the
     *  deterministic record the accounting and tests read. */
    struct Completion
    {
        std::uint32_t key;
        unsigned worker;
        std::uint64_t lease;
    };

    const std::vector<Completion> &completions() const
    {
        return completions_;
    }

  private:
    struct Lease
    {
        unsigned worker;
        std::uint64_t deadline;
        std::vector<std::uint32_t> keys; ///< grant order (cost desc)
    };

    /** Insert @p key into pending_, keeping cost-desc order. */
    void requeue(std::uint32_t key);

    /** Keys-before ordering: higher estimate first, index breaks
     *  ties so the schedule is reproducible. */
    bool keyBefore(std::uint32_t a, std::uint32_t b) const;

    void markCompleted(std::uint32_t key, unsigned worker,
                       std::uint64_t lease_id);

    FleetWorkerStats &touch(unsigned worker, std::uint64_t now);

    FleetConfig cfg_;
    std::vector<double> costs_;
    std::vector<std::uint32_t> pending_;
    std::vector<bool> completed_;
    std::size_t totalKeys_ = 0;
    std::size_t completedCount_ = 0;
    std::map<std::uint64_t, Lease> leases_;
    std::uint64_t nextLease_ = 1;
    std::uint64_t expired_ = 0;
    std::map<unsigned, FleetWorkerStats> stats_;
    std::vector<Completion> completions_;
};

/** Milliseconds on the process-wide monotonic clock (the `now` the
 *  socket layer feeds FleetQueue). */
std::uint64_t fleetNowMs();

/**
 * Socket front end over one FleetQueue: binds a stream socket
 * (unix:<path>, tcp:<host>:<port>, or a bare AF_UNIX path - see
 * serve/transport.hh), accepts any number of workers, and answers
 * the `lease`/`done`/`renew`/`stats` verbs of the serve protocol
 * (serve_protocol.hh), one request line per response. With a shard
 * store attached (setShardStore) it also answers `push` (store a
 * checksummed shard cache upload at the canonical shardCachePath)
 * and `fetch` (stream a stored file back). All queue access is
 * serialized on one mutex; `handleLine` is also public so tests can
 * drive the line protocol without a socket.
 */
class FleetServer
{
  public:
    /** @p grid_hash fingerprints the coordinator's request grid
     *  (gridFingerprint in sweep_engine.hh); a worker whose `lease`
     *  carries a different hash built a different grid and is
     *  refused rather than handed meaningless indices. */
    FleetServer(std::string endpoint_spec, FleetQueue queue,
                std::uint64_t grid_hash);

    ~FleetServer();

    FleetServer(const FleetServer &) = delete;
    FleetServer &operator=(const FleetServer &) = delete;

    /**
     * Accept `push` uploads and answer `fetch` downloads, storing
     * shard files at shardCachePath(@p cache_base, worker) with the
     * same tmp+rename discipline the workers themselves use - so
     * the drain-time merge and a later `--resume` find exactly the
     * files a shared-filesystem fleet would have left. Call before
     * start().
     */
    void setShardStore(std::string cache_base);

    /** Bind, listen, and start the accept thread. Fatal on socket
     *  errors (an unreachable coordinator is never worth a silent
     *  single-process fallback). */
    void start();

    /** Close the listener and every connection; join all threads.
     *  Idempotent; the destructor calls it. */
    void stop();

    /** Answer one protocol line (thread-safe). push/fetch are
     *  refused here - their framing needs the connection stream. */
    std::string handleLine(const std::string &line);

    bool drained() const;
    std::map<unsigned, FleetWorkerStats> workerStats() const;
    std::vector<FleetQueue::Completion> completions() const;
    std::size_t pendingCount() const;
    std::uint64_t expiredLeases() const;
    const std::string &socketPath() const { return path_; }

    /** The endpoint actually bound (tcp port 0 resolved); valid
     *  after start(). */
    const Endpoint &boundEndpoint() const { return listener_.bound(); }

    /** Shard files stored via `push` (accounting for the join). */
    std::uint64_t pushesStored() const;

    /** Connections currently being served. A drained coordinator
     *  lingers until this hits zero (bounded) so every worker's
     *  final lease request gets its `# drained` answer instead of a
     *  torn connection. */
    std::size_t liveConnections() const
    {
        return liveConns_.load(std::memory_order_relaxed);
    }

  private:
    void acceptLoop();
    void serveConnection(std::shared_ptr<Stream> stream);

    /** Consume the push payload from @p buf + @p stream, verify,
     *  store. False when the connection died mid-payload. */
    bool handlePush(const ServeRequest &req, std::string &buf,
                    Stream &stream, std::string &reply);
    std::string handleFetch(const ServeRequest &req);

    std::string path_;
    mutable std::mutex mu_;
    FleetQueue queue_;
    std::uint64_t gridHash_;

    std::string storeBase_; ///< shard-store cache base ("" = off)
    mutable std::mutex storeMu_;
    std::uint64_t pushesStored_ = 0;

    Listener listener_;
    std::atomic<std::size_t> liveConns_{0};
    std::atomic<bool> stopping_{false};
    std::thread acceptThread_;
    std::mutex connMu_;
    std::vector<std::shared_ptr<Stream>> connStreams_;
    std::vector<std::thread> connThreads_;
};

/** Knobs for a FleetClient beyond the identity triple. */
struct FleetClientOptions
{
    /** Grid size for reply validation: a lease reply granting a key
     *  at or past this bound is treated as a torn frame and resynced
     *  rather than handed to the engine (0 = no bound known). */
    std::size_t gridSize = 0;

    /** Upload the shard cache (`push`) before each `done`, and let
     *  the engine fetch a stored copy back at startup - the
     *  no-shared-filesystem mode. */
    bool push = false;

    /** Wraps every connected stream; the fault-injection tests
     *  inject FaultyStream here. Identity when empty. */
    StreamWrapper wrap;

    /** Connect retry budget: attempts x delay is how long a worker
     *  waits for the coordinator to bind before giving up. */
    unsigned connectAttempts = 100;
    unsigned connectDelayMs = 100;

    /** Transactions retried across reconnects before fatal. */
    unsigned maxRetries = 8;
};

/**
 * Worker-side protocol client used by SweepEngine::runFleet. One
 * active lease at a time; a background thread renews it every
 * renewMs/3 and refreshes the owned-key set from the reply, so a
 * steal observed at renew time stops the worker before it simulates
 * a stolen key (a missed steal is only wasted work, never a wrong
 * result). All socket transactions are serialized internally.
 *
 * The connection is disposable: any read/write error or reply that
 * fails validation drops it, reconnects, and retransmits the request
 * (every verb is idempotent under retry; see the file comment).
 */
class FleetClient
{
  public:
    /** Connects to @p endpoint_spec (unix:<path>, tcp:<host>:<port>,
     *  or a bare path), retrying for a few seconds so workers may
     *  start before the coordinator binds. Fatal when the
     *  coordinator never appears, naming the last OS error. */
    FleetClient(std::string endpoint_spec, unsigned worker,
                std::uint64_t grid_hash,
                FleetClientOptions opts = FleetClientOptions());

    ~FleetClient();

    FleetClient(const FleetClient &) = delete;
    FleetClient &operator=(const FleetClient &) = delete;

    /** Request work, sleeping through `wait` replies; returns a
     *  `work` or `drained` grant and starts renewing a work grant. */
    FleetGrant lease();

    /** Report a completion. @return false when the coordinator
     *  already counted the key (stale). */
    bool done(std::uint64_t id, std::uint32_t key);

    /** Upload @p bytes (the worker's current shard cache file) under
     *  lease @p id; the coordinator stores it at the canonical
     *  shardCachePath. Retries like every other verb; fatal when the
     *  coordinator repeatedly refuses the frame. */
    void pushShard(std::uint64_t id, const std::string &bytes);

    /** Download the coordinator's stored copy of shard @p shard into
     *  @p dest (tmp+rename). @return false when the coordinator has
     *  no stored file for that shard. */
    bool fetchShard(unsigned shard, const std::string &dest);

    /** Push-before-done mode is on (FleetClientOptions::push). */
    bool pushEnabled() const { return opts_.push; }

    /** Is @p key still this worker's to run under lease @p id? False
     *  once the key was completed, stolen, or the lease went stale. */
    bool ownedNow(std::uint64_t id, std::uint32_t key) const;

    /** Stop renewing the current lease (it is fully processed). */
    void finishLease();

    /** Leases this client was granted (worker-side accounting). */
    std::uint64_t leasesTaken() const { return leasesTaken_; }

  private:
    /** One request line out, one response line back; txnMu_ held. */
    std::string transact(const std::string &line);

    /** transact, then re-transact (reconnect first) until @p valid
     *  accepts the reply or retries run out (fatal). Guards against
     *  torn/duplicated frames desynchronizing request/reply pairing:
     *  an invalid reply means this connection's framing can no
     *  longer be trusted, so resync = new connection. */
    std::string transactValidated(
        const std::string &line,
        const std::function<bool(const std::string &)> &valid);

    /** transact body under txnMu_ with bounded reconnect. */
    std::string transactLocked(const std::string &line);

    /** Read one '\n'-terminated line from stream_ into rxBuf_;
     *  empty on connection loss. txnMu_ held. */
    bool readLineLocked(std::string &line);

    /** Read exactly @p n payload bytes (rxBuf_ first). txnMu_
     *  held. */
    bool readExactLocked(std::string &out, std::size_t n);

    void dropConnectionLocked();
    bool reconnectLocked(std::string *error);

    void renewLoop();

    Endpoint ep_;
    unsigned worker_;
    std::uint64_t gridHash_;
    FleetClientOptions opts_;
    std::uint64_t leasesTaken_ = 0;

    mutable std::mutex txnMu_; ///< serializes socket transactions
    std::unique_ptr<Stream> stream_;
    std::string rxBuf_;

    mutable std::mutex leaseMu_; ///< guards the active-lease state
    std::condition_variable leaseCv_;
    std::uint64_t activeLease_ = 0;
    std::uint64_t renewMs_ = 0;
    std::set<std::uint32_t> owned_;
    bool leaseStale_ = false;
    bool stopRenewer_ = false;
    std::thread renewer_;
};

// ---------------------------------------------------------------------
// Deterministic fleet makespan models
// ---------------------------------------------------------------------

/**
 * Makespan of the static PR 5 partition: key i runs on worker
 * owners[i]; worker w processes its whole slice at speeds[w] relative
 * speed. Assignment is fixed at fork time, so the makespan is the
 * slowest worker's slice time - the straggler problem the fleet
 * removes.
 */
double fleetStaticMakespan(const std::vector<double> &costs,
                           const std::vector<unsigned> &owners,
                           const std::vector<double> &speeds);

/**
 * Makespan of the work-stealing fleet on the same jobs and speeds:
 * jobs dispatch longest-first, each to the worker that would finish
 * it earliest (the greedy schedule an idle-worker lease/steal loop
 * converges to). Deterministic given (costs, speeds).
 */
double fleetStealMakespan(std::vector<double> costs,
                          const std::vector<double> &speeds);

} // namespace migc

#endif // MIGC_CORE_FLEET_HH
