/**
 * @file
 * The process-wide sweep engine: every bench/figure/ablation binary
 * submits (SimConfig, workload, policy) run requests here instead of
 * rolling its own parallelFor loop.
 *
 * Three mechanisms make multi-config grids cheap:
 *
 *  - RunCache: one on-disk namespace holds results for *many*
 *    configurations at once, keyed by (cfg.signature(), workload,
 *    policy). Ablation grids and the paper-scale sweep coexist in
 *    one file, a config change no longer discards foreign results,
 *    and checkpoints are amortized (every K completions + on flush)
 *    instead of rewriting the whole file after every run.
 *
 *  - Cost-model scheduler: missing runs are dispatched longest-job-
 *    first, using simulator event counts from prior cached runs of
 *    the same (workload, policy) - falling back to a workload-size
 *    heuristic - which removes the FIFO tail-straggler problem.
 *    Scheduling only reorders execution; results depend solely on
 *    (cfg, workload, policy) (see runNamedWorkload), so any
 *    MIGC_JOBS value is bit-identical.
 *
 *  - System reuse: each worker keeps its System alive between runs
 *    and re-runs on it via System::reset() whenever the next run's
 *    config is structurally equal, so PacketPool chunks, the event
 *    heap, tag/DBI storage, and DRAM bank state stay warm instead of
 *    being reconstructed per run.
 *
 * A fourth mechanism scales past one process: under an active
 * ShardSpec (MIGC_SHARDS / MIGC_SHARD_INDEX, see shard.hh) the
 * engine simulates only the grid points whose stable key hash lands
 * on its shard, writing them to a private per-shard cache file; a
 * coordinator (bench/migc_sweep) merges the shard files into the
 * canonical cache at join, byte-identical to a single-process sweep.
 */

#ifndef MIGC_CORE_SWEEP_ENGINE_HH
#define MIGC_CORE_SWEEP_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/cache_snapshot.hh"
#include "core/metrics.hh"
#include "core/shard.hh"
#include "core/sim_config.hh"

namespace migc
{

class System;
class FleetClient;

/**
 * The canonical cache path a default-constructed engine uses:
 * empty when MIGC_NO_CACHE=1, else MIGC_SWEEP_CACHE, else
 * "mi_sweep_cache.csv". The single source of truth for tools (like
 * bench/migc_sweep) that must agree with the figure binaries on
 * where the cache lives.
 */
std::string sweepCachePathFromEnv();

/**
 * On-disk serialization a RunCache writes. Reading always sniffs the
 * file (v4 magic / v3 tag / legacy v2 tag), so any cache loads under
 * either setting; the format only decides what saves produce.
 *
 *  - v4: binary columnar segments (cache_v4.hh) - interned sorted
 *    keys, fixed-width metric columns, checksummed footers, mmap'd
 *    zero-copy serving, O(fresh) checkpoint appends. The default.
 *  - csv: the v3 text format, byte-identical to what pre-v4 builds
 *    wrote - for diffing, grep, and foreign tooling.
 */
enum class CacheFormat
{
    v4,
    csv,
};

/** MIGC_CACHE_FORMAT: "v4" (default) or "csv" ("v3" accepted as an
 *  alias); anything else is fatal. */
CacheFormat cacheFormatFromEnv();

/** "v4" / "csv" for messages and manifests. */
const char *cacheFormatName(CacheFormat format);

/** One grid point: run @p workload under @p policy on @p cfg. */
struct RunRequest
{
    SimConfig cfg;
    std::string workload;
    std::string policy;
};

/**
 * Stable fingerprint of a request grid: a hash over every run key in
 * order, plus the count. A fleet coordinator and its workers build
 * the grid independently from identical flags; leases then carry
 * plain indices into that vector, and this fingerprint (sent with
 * every `lease` request) is what catches a worker whose flags built
 * a different grid before it misinterprets a single index.
 */
std::uint64_t gridFingerprint(const std::vector<RunRequest> &requests);

/**
 * Tag selecting SweepEngine's fleet-worker constructor: like a
 * ShardSpec worker it writes fresh rows to the private
 * shardCachePath(cache, index) file and warm-imports the canonical
 * cache, but it owns no fixed slice - the coordinator's leases
 * decide what it runs, so the key-hash filter stays off.
 */
struct FleetWorkerSpec
{
    /** This worker's index: names its shard cache file and
     *  identifies it in the coordinator's accounting. */
    unsigned index = 0;
};

/**
 * Multi-config on-disk result store.
 *
 * On disk the cache is either a v4 binary columnar file
 * (cache_v4.hh) or a v3 text file of one section per configuration
 * signature:
 *
 *   # migc-sweep-v3
 *   # config <signature>
 *   <csv header>
 *   <RunMetrics rows>
 *   # config <signature'>
 *   ...
 *
 * Reads sniff the format, so v3 and legacy v2 files load
 * transparently no matter what CacheFormat this cache writes, and a
 * save migrates the file. Sections whose signature belongs to some
 * other configuration are preserved across save cycles, so binaries
 * with different configs can share one cache path without clobbering
 * each other. Legacy single-config v2 files import as one such
 * foreign section: their rows are preserved, but never served,
 * because the old signature format aliased structurally different
 * configs (see kCacheTagV2 in sweep_engine.cc).
 *
 * Durability is two-tier. checkpoint() appends only the rows
 * inserted since the last durable write - one small segment (v4) or
 * section chunk (csv) at the end of the file, O(fresh) bytes, which
 * is what the amortized insert checkpointing and the fleet's
 * checkpoint-before-done contract use; a sweep writing N rows costs
 * O(N) total bytes instead of the O(N^2) of rewriting the file at
 * every checkpoint. flush()/saveNow() compact: one canonical sorted
 * rewrite via tmp+rename, so the *final* file bytes are a pure
 * function of the row set - identical across job counts, steal
 * schedules, and crash/resume histories - and a once-appended file
 * never stays fragmented past the next flush. A torn append (crash
 * mid-write) is detected on load (v4: footer checksum; csv: the
 * partial line fails to parse), costs only the torn rows, and is
 * cleaned up by the next compaction.
 *
 * An empty path disables disk I/O; results are then memoized in
 * memory only (the MIGC_NO_CACHE=1 behavior).
 *
 * Internally the cache is an append-only row store plus an immutable
 * index: rows land in a log (a deque whose elements never move) and
 * are indexed either by the published CacheSnapshot (`base_`) or by
 * the not-yet-published append index (`fresh_`). snapshot() folds
 * the append index into a new immutable snapshot and swaps it in -
 * that snapshot can then be queried by any number of threads with no
 * locking while this cache keeps inserting (see cache_snapshot.hh
 * and docs/SERVE.md). Row pointers handed out by find()/insert()
 * stay valid for the cache's lifetime (and beyond it, for as long as
 * any snapshot lives - snapshots retain the row store).
 *
 * The mutating API is not internally synchronized: the owning engine
 * serializes writers. Published snapshots are safe to read from
 * anywhere.
 */
class RunCache
{
  public:
    /** Write format from MIGC_CACHE_FORMAT (default v4). */
    explicit RunCache(std::string path,
                      std::size_t checkpoint_interval = 8);

    /** Explicit write format (tests, converters). */
    RunCache(std::string path, std::size_t checkpoint_interval,
             CacheFormat format);

    /** Flushes pending results (best effort). */
    ~RunCache();

    RunCache(const RunCache &) = delete;
    RunCache &operator=(const RunCache &) = delete;

    bool enabled() const { return !path_.empty(); }

    /** The serialization saves write. */
    CacheFormat format() const { return format_; }

    /** Format the initial load found on disk: "v4", "v3", "v2",
     *  "foreign" (unrecognized), or "none" (missing/empty file).
     *  Operator-facing (migc_serve stats). */
    const char *loadedFormatName() const;

    /** What one mergeFile() call found in its input. */
    struct MergeStats
    {
        /** Rows merged in under keys not previously held. */
        std::size_t rows = 0;

        /** Rows identical to one already held (deduplicated). */
        std::size_t duplicates = 0;

        /** Rows differing from the held row for the same key. The
         *  held row wins; the caller decides how loud to be. */
        std::size_t conflicts = 0;

        /** Unparseable rows this cache had not seen before (bad
         *  lines are remembered, so re-reading the same damaged
         *  file - e.g. at a checkpoint save - counts each loss
         *  once). */
        std::size_t parseErrors = 0;
    };

    /**
     * Union another cache file (v4, v3, or legacy v2 - sniffed) into
     * memory without writing anything; rows already held win. This
     * is how a shard worker warm-starts from the canonical cache and
     * how the coordinator folds shard files back in (shard.hh). A
     * missing file merges zero rows.
     */
    MergeStats mergeFile(const std::string &path);

    /**
     * Distinct unparseable rows seen across the initial load, every
     * explicit mergeFile(), and the pre-write merge of each save -
     * corrupted or stale-schema cache lines whose results were
     * lost. Surfaced in the sweep summary line so a truncated cache
     * cannot silently masquerade as a cold one.
     */
    std::size_t parseErrors() const { return parseErrors_; }

    /**
     * Compact the file now even if nothing is pending (merge join).
     * @return false when the file could not be written or moved
     * into place (callers that consume other files on the strength
     * of this write - the coordinator merge - must check).
     */
    bool saveNow();

    /**
     * Write the current contents to @p path in @p format (tmp +
     * rename; this cache's own file and state are untouched unless
     * @p path aliases it). The CSV export of a v4 cache is
     * byte-identical to the v3 file a pure-text pipeline would have
     * written for the same rows.
     */
    bool exportFile(const std::string &path, CacheFormat format);

    /** Result for (sig, workload, policy), or nullptr. Stable. */
    const RunMetrics *find(const std::string &sig,
                           const std::string &workload,
                           const std::string &policy) const;

    /**
     * Record a completed run under @p sig (first write wins). The
     * file is checkpointed (appended to) after every
     * checkpoint_interval inserts; call flush() when a sweep
     * finishes. Fatal on rows the cache cannot round-trip:
     * placeholder rows (all-zero shard stand-ins must never be
     * persisted as results) and workload/policy names containing v3
     * metacharacters (',', line breaks, leading '#' - they would
     * reload as parse errors and the result would be silently lost;
     * see sim/names.hh).
     * @return the stored row (stable reference).
     */
    const RunMetrics &insert(const std::string &sig, RunMetrics m);

    /**
     * Make every in-memory row durable cheaply: append the rows
     * inserted since the last durable write to the end of the file
     * (O(fresh) bytes), falling back to a full compacting save when
     * the file cannot take an append (different/damaged format,
     * torn tail, first write). This is the fleet worker's
     * checkpoint-before-done primitive; the file stays fragmented
     * until the next flush()/saveNow() compacts it.
     */
    void checkpoint();

    /**
     * The current contents as an immutable snapshot: publishes any
     * append-log rows into a fresh CacheSnapshot, swaps it in, and
     * returns it. The returned snapshot is safe for concurrent
     * lock-free reads and stays valid (rows included) independent of
     * this cache's later inserts or destruction. Cheap when nothing
     * was appended since the last call (returns the held snapshot).
     */
    std::shared_ptr<const CacheSnapshot> snapshot();

    /**
     * Scheduler cost estimate for (workload, policy): the largest
     * sim_events recorded for the pair under *any* signature (a run
     * of the same pair on a nearby config is the best predictor of
     * length). 0 when the pair has never been seen.
     */
    double estimateEvents(const std::string &workload,
                          const std::string &policy) const;

    /** Compact the file now if any unpersisted rows or un-compacted
     *  appends exist, so a finished sweep always leaves the one
     *  canonical byte representation of its row set. */
    void flush();

    /** Total rows across all sections (tests / introspection). */
    std::size_t size() const;

  private:
    using Key = CacheSnapshot::Key;

    /** Index of appended-but-unpublished rows in one section. */
    using FreshSection = std::map<Key, const RunMetrics *>;

    /** What the on-disk file currently is, as far as appends care:
     *  only a clean file of our own write format takes appends;
     *  everything else forces the next durable write to compact. */
    enum class FileState
    {
        absent,   ///< missing or empty
        cleanV4,  ///< v4, no damaged tail seen
        cleanV3,  ///< v3 text
        other,    ///< v2 / foreign / torn v4 tail
    };

    void load();

    /**
     * Union @p path into memory; rows already held in memory win.
     * Shared by load(), mergeFile(), and save()'s pre-write merge -
     * the latter is what lets concurrently running binaries share
     * one cache path: each writer unions the other's finished
     * sections instead of clobbering them with its own load-time
     * snapshot. @p classify_collisions distinguishes duplicates
     * from conflicts by re-serializing both rows; save()'s
     * self-merge turns it off because there nearly every row
     * collides (with this process's own prior checkpoint) and the
     * classification would dominate checkpoint cost.
     */
    MergeStats mergeFromFile(const std::string &path,
                             bool classify_collisions = true);

    /** The v3/v2 text reader behind mergeFromFile(). */
    MergeStats mergeTextFile(const std::string &path,
                             bool classify_collisions);

    /** The v4 segment reader behind mergeFromFile(). */
    MergeStats mergeV4File(const std::string &path,
                           bool classify_collisions);

    /** Merge one parsed v4 segment. @p durable marks rows already in
     *  this cache's own file. */
    void mergeV4Segment(const struct V4SegmentView &seg,
                        bool classify_collisions, bool durable,
                        MergeStats &stats);

    /** Record what the initial load found (first observation only). */
    void noteLoadedFormat(const char *format);

    /** Shared warning text for merge problems found in @p path. */
    static void warnMergeProblems(const std::string &path,
                                  const MergeStats &stats);

    /** Compacting rewrite: pre-merge the file, then write the whole
     *  snapshot via tmp+rename. @return true when the file reached
     *  disk (or I/O is off). */
    bool save();

    /** Append pendingAppend_ as one segment / section chunk at the
     *  end of the file. @return false when the write failed (the
     *  caller falls back to save()). */
    bool appendPending();

    /** Append @p m to the row log and index it in fresh_; the row
     *  address is stable for the log's lifetime. @p durable marks
     *  rows that are already bytes in this cache's own file (initial
     *  load / pre-write merge) and therefore never need appending. */
    const RunMetrics *appendRow(const std::string &sig, RunMetrics m,
                                bool durable = false);

    std::string path_;
    std::size_t checkpointInterval_;
    CacheFormat format_;
    std::size_t unsaved_ = 0;
    std::size_t parseErrors_ = 0;

    /** See FileState. */
    FileState fileState_ = FileState::absent;

    /** First format the load sniffed; nullptr until something was. */
    const char *loadedFormat_ = nullptr;

    /** Rows inserted/merged since the last durable write of this
     *  file, in arrival order: exactly what checkpoint() appends. */
    std::vector<std::pair<std::string, const RunMetrics *>>
        pendingAppend_;

    /** True when checkpoint() appended since the last compaction,
     *  so flush() knows the file needs its canonical rewrite even
     *  if nothing is pending. */
    bool appendedSinceCompact_ = false;

    /** (source path, line) pairs already counted as parse errors:
     *  re-reading the same damaged file dedupes, while the same
     *  damaged text in two different shard files still counts as
     *  two lost rows. */
    std::set<std::string> badLines_;

    /**
     * The append log: every row this cache ever learned (from disk
     * or insert()), in arrival order. A deque never relocates
     * elements, so `const RunMetrics *` handed to snapshots and
     * callers stay valid across appends. Held by shared_ptr because
     * every published snapshot retains it.
     */
    std::shared_ptr<std::deque<RunMetrics>> log_;

    /** Immutable index over the published prefix of log_. */
    std::shared_ptr<const CacheSnapshot> base_;

    /** Index of rows appended since the last publish (pointers into
     *  log_); folded into base_ by snapshot(). */
    std::map<std::string, FreshSection> fresh_;
};

/**
 * Shared run scheduler + cache. Construct once per process (the
 * default constructor reads MIGC_SWEEP_CACHE / MIGC_NO_CACHE) and
 * route every simulation request through it.
 */
class SweepEngine
{
  public:
    /**
     * Cache path and shard spec from the environment, like the
     * figure binaries: MIGC_SWEEP_CACHE / MIGC_NO_CACHE select the
     * cache, MIGC_SHARDS / MIGC_SHARD_INDEX turn the process into
     * one worker of a multi-process sweep (see shard.hh). This is
     * what makes every existing binary shard-capable with no
     * per-binary changes.
     */
    SweepEngine();

    /** Explicit cache path (empty disables the on-disk cache); no
     *  sharding. Tests and library users get hermetic behavior. */
    explicit SweepEngine(std::string cache_path);

    /**
     * Explicit cache path and shard spec. When the spec is active,
     * this engine simulates only the grid points its shard owns:
     * fresh results go to the private shard cache file
     * (shardCachePath(cache_path, index)), the canonical file is
     * warm-imported into a read-only side store (served, never
     * rewritten, so shard files stay small), and requests for
     * points outside the shard that are not already cached come
     * back as all-zero placeholder rows (merge the shard caches and
     * re-run to materialize them).
     */
    SweepEngine(std::string cache_path, ShardSpec shard);

    /**
     * Fleet-worker engine (see FleetWorkerSpec): writes to the
     * private shard cache of @p fleet.index, warm-imports the
     * canonical cache, simulates exactly what runFleet() leases.
     */
    SweepEngine(std::string cache_path, FleetWorkerSpec fleet);

    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /**
     * Result for one grid point; simulates on first use. The
     * reference stays valid for the engine's lifetime.
     */
    const RunMetrics &get(const SimConfig &cfg,
                          const std::string &workload,
                          const std::string &policy);

    /**
     * Ensure every request is available, simulating the missing ones
     * across the worker pool (@p jobs threads; 0 = MIGC_JOBS /
     * hardware default), longest-estimated-job-first.
     * @return metrics in request order.
     */
    std::vector<RunMetrics> run(const std::vector<RunRequest> &requests,
                                unsigned jobs = 0);

    /** What one runFleet() session amounted to (worker side). */
    struct FleetRunStats
    {
        std::uint64_t runs = 0;     ///< keys simulated here
        std::uint64_t hits = 0;     ///< keys answered from cache
        std::uint64_t stale = 0;    ///< completions a peer beat
        std::uint64_t leases = 0;   ///< leases taken
    };

    /**
     * Fleet-worker main loop: lease run-key ranges from @p client
     * until the coordinator reports the grid drained, simulating
     * each leased index of @p requests on up to @p jobs threads
     * (0 = MIGC_JOBS / hardware default). Every completed run is
     * checkpointed to the shard cache *before* it is reported done,
     * so a worker killed at any instant leaves every reported key on
     * disk - the crash-safety half of the lease protocol. Keys the
     * coordinator stole (observed at renew) are skipped without
     * simulating.
     */
    FleetRunStats runFleet(const std::vector<RunRequest> &requests,
                           FleetClient &client, unsigned jobs = 0);

    /**
     * Testing/CI knob: sleep this long after every simulated run,
     * making this worker an artificial straggler so steal/expiry
     * paths trigger deterministically on fast grids. Sleeping never
     * changes metrics - only wall clock.
     */
    void setInjectedRunDelayMs(unsigned ms) { slowMs_ = ms; }

    /** Persist any un-checkpointed results now. */
    void flush();

    /**
     * Immutable snapshot of everything this engine can currently
     * answer from memory: the writable cache unioned with the warm
     * side store (writable rows win, matching findCached). Safe for
     * concurrent lock-free queries; stays valid independent of later
     * engine activity. Placeholder rows are never included. This is
     * the serving surface of migc_serve (src/serve/).
     */
    std::shared_ptr<const CacheSnapshot> snapshot();

    /** The writable cache's on-disk format at load ("v4", "v3",
     *  "v2", "foreign", "none"); loads the cache if this engine has
     *  not touched it yet. Operator-facing (migc_serve stats). */
    const char *cacheFileFormat() const;

    /** Simulations actually executed (cache misses). */
    std::uint64_t simulationsPerformed() const { return sims_.load(); }

    /** Requests answered from the cache without simulating. */
    std::uint64_t cacheHits() const { return hits_.load(); }

    /** Missing grid points skipped because another shard owns them. */
    std::uint64_t shardSkipped() const { return skipped_.load(); }

    /** Unparseable cache rows seen by the underlying RunCache. */
    std::size_t cacheParseErrors() const;

    /** The shard spec this engine runs under. */
    const ShardSpec &shard() const { return shard_; }

  private:
    struct Job
    {
        const RunRequest *req;
        std::string sig;
        double estimate;
        std::size_t submitOrder;
    };

    /**
     * Execute one job on @p sys, reusing it via System::reset() when
     * its structure key matches, rebuilding it otherwise.
     */
    RunMetrics runJob(const Job &job, std::unique_ptr<System> &sys,
                      std::string &sys_structure);

    /**
     * All-zero stand-in row for a point owned by another shard
     * (names filled in, every metric 0). Stable reference; never
     * written to the cache file. Caller holds mu_.
     */
    const RunMetrics &placeholderFor(const std::string &sig,
                                     const std::string &workload,
                                     const std::string &policy);

    /** Lookup across the writable cache and the warm side store
     *  (writable rows win). Caller holds mu_. */
    const RunMetrics *findCached(const std::string &sig,
                                 const std::string &workload,
                                 const std::string &policy) const;

    /** Scheduler cost estimate across both stores. Caller holds
     *  mu_. */
    double estimateFor(const std::string &workload,
                       const std::string &policy) const;

    /**
     * The writable cache, constructed (and its file loaded) on
     * first touch. The laziness is what lets migc_serve answer its
     * first queries from an mmap'd snapshot without this engine
     * ever parsing the file - the cache materializes only when the
     * first cold miss needs it. Caller holds mu_ (or is a
     * constructor/destructor).
     */
    RunCache &cache() const;

    mutable std::mutex mu_;
    ShardSpec shard_;

    /** Resolved path cache() opens (shard/fleet workers: their
     *  private shard file). */
    std::string cachePath_;

    /** See cache(). */
    mutable std::unique_ptr<RunCache> cachePtr_;

    /** Injected per-run straggler delay (setInjectedRunDelayMs). */
    unsigned slowMs_ = 0;

    /**
     * Read-only results imported from the canonical cache when this
     * engine is a shard worker (memory-only: constructed with an
     * empty path, so it never writes). Keeping these out of the
     * writable cache keeps the shard file down to this worker's own
     * fresh rows instead of a full copy of the canonical cache.
     */
    RunCache warm_{std::string()};
    std::atomic<std::uint64_t> sims_{0};
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> skipped_{0};

    /** Placeholder rows handed out for other shards' points. */
    std::map<std::tuple<std::string, std::string, std::string>,
             RunMetrics>
        placeholders_;
};

} // namespace migc

#endif // MIGC_CORE_SWEEP_ENGINE_HH
