/**
 * @file
 * The process-wide sweep engine: every bench/figure/ablation binary
 * submits (SimConfig, workload, policy) run requests here instead of
 * rolling its own parallelFor loop.
 *
 * Three mechanisms make multi-config grids cheap:
 *
 *  - RunCache: one on-disk namespace holds results for *many*
 *    configurations at once, keyed by (cfg.signature(), workload,
 *    policy). Ablation grids and the paper-scale sweep coexist in
 *    one file, a config change no longer discards foreign results,
 *    and checkpoints are amortized (every K completions + on flush)
 *    instead of rewriting the whole file after every run.
 *
 *  - Cost-model scheduler: missing runs are dispatched longest-job-
 *    first, using simulator event counts from prior cached runs of
 *    the same (workload, policy) - falling back to a workload-size
 *    heuristic - which removes the FIFO tail-straggler problem.
 *    Scheduling only reorders execution; results depend solely on
 *    (cfg, workload, policy) (see runNamedWorkload), so any
 *    MIGC_JOBS value is bit-identical.
 *
 *  - System reuse: each worker keeps its System alive between runs
 *    and re-runs on it via System::reset() whenever the next run's
 *    config is structurally equal, so PacketPool chunks, the event
 *    heap, tag/DBI storage, and DRAM bank state stay warm instead of
 *    being reconstructed per run.
 */

#ifndef MIGC_CORE_SWEEP_ENGINE_HH
#define MIGC_CORE_SWEEP_ENGINE_HH

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/metrics.hh"
#include "core/sim_config.hh"

namespace migc
{

class System;

/** One grid point: run @p workload under @p policy on @p cfg. */
struct RunRequest
{
    SimConfig cfg;
    std::string workload;
    std::string policy;
};

/**
 * Multi-config on-disk result store.
 *
 * The file holds one section per configuration signature:
 *
 *   # migc-sweep-v3
 *   # config <signature>
 *   <csv header>
 *   <RunMetrics rows>
 *   # config <signature'>
 *   ...
 *
 * Sections whose signature belongs to some other configuration are
 * preserved across save cycles, so binaries with different configs
 * can share one cache path without clobbering each other. Legacy
 * single-config v2 files import as one such foreign section: their
 * rows are preserved, but never served, because the old signature
 * format aliased structurally different configs (see
 * kCacheTagV2 in sweep_engine.cc).
 *
 * An empty path disables disk I/O; results are then memoized in
 * memory only (the MIGC_NO_CACHE=1 behavior).
 *
 * Not internally synchronized: the owning engine serializes access.
 */
class RunCache
{
  public:
    explicit RunCache(std::string path,
                      std::size_t checkpoint_interval = 8);

    /** Flushes pending results (best effort). */
    ~RunCache();

    RunCache(const RunCache &) = delete;
    RunCache &operator=(const RunCache &) = delete;

    bool enabled() const { return !path_.empty(); }

    /** Result for (sig, workload, policy), or nullptr. Stable. */
    const RunMetrics *find(const std::string &sig,
                           const std::string &workload,
                           const std::string &policy) const;

    /**
     * Record a completed run under @p sig (first write wins). The
     * file is checkpointed after every checkpoint_interval inserts;
     * call flush() when a sweep finishes.
     * @return the stored row (stable reference).
     */
    const RunMetrics &insert(const std::string &sig, RunMetrics m);

    /**
     * Scheduler cost estimate for (workload, policy): the largest
     * sim_events recorded for the pair under *any* signature (a run
     * of the same pair on a nearby config is the best predictor of
     * length). 0 when the pair has never been seen.
     */
    double estimateEvents(const std::string &workload,
                          const std::string &policy) const;

    /** Write the file now if any un-checkpointed results exist. */
    void flush();

    /** Total rows across all sections (tests / introspection). */
    std::size_t size() const;

  private:
    using Key = std::pair<std::string, std::string>;
    using Section = std::map<Key, RunMetrics>;

    void load();

    /**
     * Merge the file's current contents into memory (rows already
     * held in memory win), then atomically rewrite it. The merge
     * step is what lets concurrently running binaries share one
     * cache path: each writer unions the other's finished sections
     * instead of clobbering them with its own load-time snapshot.
     * @return rows that failed to parse (0 for a missing file).
     */
    std::size_t mergeFromDisk();
    void save();

    std::string path_;
    std::size_t checkpointInterval_;
    std::size_t unsaved_ = 0;
    std::map<std::string, Section> sections_;
};

/**
 * Shared run scheduler + cache. Construct once per process (the
 * default constructor reads MIGC_SWEEP_CACHE / MIGC_NO_CACHE) and
 * route every simulation request through it.
 */
class SweepEngine
{
  public:
    /** Cache path from the environment, like the figure binaries. */
    SweepEngine();

    /** Explicit cache path; empty disables the on-disk cache. */
    explicit SweepEngine(std::string cache_path);

    ~SweepEngine();

    SweepEngine(const SweepEngine &) = delete;
    SweepEngine &operator=(const SweepEngine &) = delete;

    /**
     * Result for one grid point; simulates on first use. The
     * reference stays valid for the engine's lifetime.
     */
    const RunMetrics &get(const SimConfig &cfg,
                          const std::string &workload,
                          const std::string &policy);

    /**
     * Ensure every request is available, simulating the missing ones
     * across the worker pool (@p jobs threads; 0 = MIGC_JOBS /
     * hardware default), longest-estimated-job-first.
     * @return metrics in request order.
     */
    std::vector<RunMetrics> run(const std::vector<RunRequest> &requests,
                                unsigned jobs = 0);

    /** Persist any un-checkpointed results now. */
    void flush();

    /** Simulations actually executed (cache misses). */
    std::uint64_t simulationsPerformed() const { return sims_.load(); }

    /** Requests answered from the cache without simulating. */
    std::uint64_t cacheHits() const { return hits_.load(); }

  private:
    struct Job
    {
        const RunRequest *req;
        std::string sig;
        double estimate;
        std::size_t submitOrder;
    };

    /**
     * Execute one job on @p sys, reusing it via System::reset() when
     * its structure key matches, rebuilding it otherwise.
     */
    RunMetrics runJob(const Job &job, std::unique_ptr<System> &sys,
                      std::string &sys_structure);

    mutable std::mutex mu_;
    RunCache cache_;
    std::atomic<std::uint64_t> sims_{0};
    std::atomic<std::uint64_t> hits_{0};
};

} // namespace migc

#endif // MIGC_CORE_SWEEP_ENGINE_HH
