#include "core/sim_config.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace migc
{

namespace
{

/** Shared cache template values derived from Table 1 latencies. */
void
fillCacheDefaults(SimConfig &c)
{
    // L1: 16 KB, 16-way, 64 B lines -> 16 sets; ~50 GPU cycles
    // uncontested (Table 1).
    c.l1.size = 16 * 1024;
    c.l1.assoc = 16;
    c.l1.lineSize = 64;
    c.l1.lookupLatency = Cycles(40);
    c.l1.responseLatency = Cycles(4);
    c.l1.bypassLatency = Cycles(2);
    // Enough MSHRs that allocation blocking (16 sets x 16 ways), not
    // miss tracking, is the first cache-side limiter - the paper's
    // stall mechanism (Section VI.C.1).
    c.l1.mshrs = 128;
    c.l1.targetsPerMshr = 8;
    c.l1.bypassEntries = 1024; // GPU coalescers track many pendings
    c.l1.writeBufDepth = 16;
    c.l1.memQueueDepth = 64;
    c.l1.clockPeriod = c.gpu.clockPeriod;

    // L2 bank: 16-way, 64 B lines; xbar + bank ~125 cycles.
    c.l2Bank.assoc = 16;
    c.l2Bank.lineSize = 64;
    c.l2Bank.lookupLatency = Cycles(40);
    c.l2Bank.responseLatency = Cycles(4);
    c.l2Bank.bypassLatency = Cycles(2);
    c.l2Bank.mshrs = 64;
    c.l2Bank.targetsPerMshr = 16;
    c.l2Bank.bypassEntries = 512;
    c.l2Bank.writeBufDepth = 32;
    c.l2Bank.memQueueDepth = 64;
    c.l2Bank.dbiRows = 64;
    c.l2Bank.clockPeriod = c.gpu.clockPeriod;

    c.xbar.latency = Cycles(12);
    c.xbar.outputGap = Cycles(1);
    c.xbar.queueDepth = 32;
}

} // namespace

SimConfig
SimConfig::paperConfig()
{
    SimConfig c;
    c.name = "paper";
    c.gpu.numCus = 64;
    fillCacheDefaults(c);
    c.l2Banks = 16;
    c.l2Bank.size = 4ULL * 1024 * 1024 / c.l2Banks;
    c.xbar.numInputs = c.gpu.numCus;
    c.xbar.numOutputs = c.l2Banks;
    c.dram.channels = 16;
    c.workloadScale = 4.0;
    return c;
}

SimConfig
SimConfig::defaultConfig()
{
    SimConfig c;
    c.name = "default";
    c.gpu.numCus = 16;
    fillCacheDefaults(c);
    c.l2Banks = 8;
    c.l2Bank.size = 1ULL * 1024 * 1024 / c.l2Banks;
    c.xbar.numInputs = c.gpu.numCus;
    c.xbar.numOutputs = c.l2Banks;
    c.dram.channels = 8;
    // Half-scale footprints keep a full 17x6 sweep to minutes while
    // preserving every footprint:capacity ratio (docs/ARCHITECTURE.md).
    c.workloadScale = 0.5;
    return c;
}

SimConfig
SimConfig::testConfig()
{
    SimConfig c;
    c.name = "test";
    c.gpu.numCus = 4;
    fillCacheDefaults(c);
    c.l2Banks = 4;
    c.l2Bank.size = 256ULL * 1024 / c.l2Banks;
    c.xbar.numInputs = c.gpu.numCus;
    c.xbar.numOutputs = c.l2Banks;
    c.dram.channels = 4;
    c.dram.readQDepth = 32;
    c.dram.writeQDepth = 192;
    c.dram.writeHighWatermark = 48;
    c.dram.writeLowWatermark = 12;
    c.workloadScale = 0.125;
    return c;
}

namespace
{

/** Append one cache template's structural fields to @p out. */
void
appendCacheKey(std::string &out, const char *tag,
               const GpuCacheConfig &c)
{
    // Policy flags and the seed are excluded: System applies the
    // run's policy and derives per-cache seeds itself, so they do
    // not distinguish structures.
    out += csprintf(
        "|%s:%llu:%u:%u:%llu:%llu:%llu:%zu:%zu:%zu:%zu:%zu:%llu:%d:"
        "%u:%zu",
        tag, static_cast<unsigned long long>(c.size), c.assoc,
        c.lineSize, static_cast<unsigned long long>(c.lookupLatency.value()),
        static_cast<unsigned long long>(c.responseLatency.value()),
        static_cast<unsigned long long>(c.bypassLatency.value()),
        c.mshrs, c.targetsPerMshr, c.bypassEntries, c.writeBufDepth,
        c.memQueueDepth, static_cast<unsigned long long>(c.clockPeriod),
        static_cast<int>(c.repl), c.bankInterleaveBits, c.dbiRows);
}

} // namespace

std::string
SimConfig::structureKey() const
{
    std::string key;
    key += csprintf("gpu:%u:%u:%u:%u:%u:%llu:%u:%zu:%llu:%llu",
                    gpu.numCus, gpu.simdsPerCu, gpu.wfSlotsPerSimd,
                    gpu.wavefrontSize, gpu.lineSize,
                    static_cast<unsigned long long>(gpu.clockPeriod),
                    gpu.memIssueWidth, gpu.memQueueDepth,
                    static_cast<unsigned long long>(gpu.launchLatency),
                    static_cast<unsigned long long>(
                        gpu.drainPollInterval.value()));
    appendCacheKey(key, "l1", l1);
    appendCacheKey(key, "l2", l2Bank);
    key += csprintf("|l2banks:%u", l2Banks);
    key += csprintf("|xbar:%llu:%llu:%zu",
                    static_cast<unsigned long long>(xbar.latency.value()),
                    static_cast<unsigned long long>(
                        xbar.outputGap.value()),
                    xbar.queueDepth);
    key += csprintf(
        "|dram:%u:%u:%u:%u:%llu:%llu:%llu:%llu:%llu:%llu:%llu:%llu:"
        "%zu:%zu:%zu:%zu:%zu:%llu:%u:%d",
        dram.channels, dram.banksPerChannel, dram.rowBytes,
        dram.burstBytes, static_cast<unsigned long long>(dram.tBurst),
        static_cast<unsigned long long>(dram.tCas),
        static_cast<unsigned long long>(dram.tRcd),
        static_cast<unsigned long long>(dram.tRp),
        static_cast<unsigned long long>(dram.tWr),
        static_cast<unsigned long long>(dram.tRtw),
        static_cast<unsigned long long>(dram.tWtr),
        static_cast<unsigned long long>(dram.respLatency),
        dram.readQDepth, dram.writeQDepth, dram.writeHighWatermark,
        dram.writeLowWatermark, dram.writeEagerThreshold,
        static_cast<unsigned long long>(dram.writeIdleDrainDelay),
        dram.schedulerWindow, dram.bankXorHash ? 1 : 0);
    key += csprintf("|pred:%zu:%u:%u:%u:%u", predictor.entries,
                    predictor.counterBits, predictor.threshold,
                    predictor.initialValue, predictor.sampleInterval);
    key += csprintf("|scale:%.6f", workloadScale);
    return key;
}

std::string
SimConfig::signature() const
{
    return csprintf("%s:cus%u:l2x%u:%ukB:ch%u:scale%.3f:h%016llx:"
                    "seed%llu",
                    name.c_str(), gpu.numCus, l2Banks,
                    static_cast<unsigned>(l2Bank.size / 1024),
                    dram.channels, workloadScale,
                    static_cast<unsigned long long>(
                        fnv1a(structureKey())),
                    static_cast<unsigned long long>(seed));
}

} // namespace migc
