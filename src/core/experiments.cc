#include "core/experiments.hh"

#include <utility>

#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace migc
{

ExperimentSweep::ExperimentSweep(SimConfig cfg) : cfg_(std::move(cfg))
{}

const RunMetrics &
ExperimentSweep::get(const std::string &workload,
                     const std::string &policy)
{
    return engine_.get(cfg_, workload, policy);
}

void
ExperimentSweep::prefetch(const std::vector<std::string> &policies)
{
    // Submit the full grid in the deterministic workload-major
    // order; the engine skips cached points, schedules the missing
    // ones longest-first across the worker pool, reuses each
    // worker's System across runs, and checkpoints the cache
    // periodically so an interrupted sweep resumes from the finished
    // runs instead of starting over. Each run seeds its RNG streams
    // from the (workload, policy) labels, so the shards never share
    // mutable simulation state and any job count is bit-identical.
    std::vector<RunRequest> requests;
    requests.reserve(workloadOrder().size() * policies.size());
    for (const auto &w : workloadOrder()) {
        for (const auto &p : policies)
            requests.push_back(RunRequest{cfg_, w, p});
    }
    engine_.run(requests);
}

std::vector<std::string>
ExperimentSweep::staticPolicyNames()
{
    return {"Uncached", "CacheR", "CacheRW"};
}

std::vector<std::string>
ExperimentSweep::allPolicyNames()
{
    return {"Uncached",   "CacheR",     "CacheRW",
            "CacheRW-AB", "CacheRW-CR", "CacheRW-PCby"};
}

std::string
ExperimentSweep::staticBest(const std::string &workload)
{
    std::string best;
    double best_ticks = 0;
    for (const auto &p : staticPolicyNames()) {
        double t = static_cast<double>(get(workload, p).execTicks);
        if (best.empty() || t < best_ticks) {
            best = p;
            best_ticks = t;
        }
    }
    return best;
}

std::string
ExperimentSweep::staticWorst(const std::string &workload)
{
    std::string worst;
    double worst_ticks = 0;
    for (const auto &p : staticPolicyNames()) {
        double t = static_cast<double>(get(workload, p).execTicks);
        if (worst.empty() || t > worst_ticks) {
            worst = p;
            worst_ticks = t;
        }
    }
    return worst;
}

// ---------------------------------------------------------------------
// Figure builders
// ---------------------------------------------------------------------

namespace
{

/**
 * Fetch one grid point for a figure, counting shard placeholder
 * rows so the renderers can warn (report.hh). Every figure-builder
 * lookup goes through here.
 */
const RunMetrics &
figRow(ExperimentSweep &sweep, FigureData &fig, const std::string &w,
       const std::string &p)
{
    const RunMetrics &m = sweep.get(w, p);
    if (m.placeholder)
        ++fig.placeholderRows;
    return m;
}

/** Common scaffolding: one series per policy, rows in paper order. */
FigureData
policyFigure(ExperimentSweep &sweep, const std::string &title,
             const std::string &label,
             const std::vector<std::string> &policies,
             double (*extract)(const RunMetrics &),
             const char *normalize_to_policy)
{
    FigureData fig;
    fig.title = title;
    fig.valueLabel = label;
    fig.workloads = workloadOrder();
    fig.series = policies;
    for (const auto &p : policies) {
        std::vector<double> row;
        for (const auto &w : fig.workloads) {
            double v = extract(figRow(sweep, fig, w, p));
            if (normalize_to_policy) {
                double base = extract(
                    figRow(sweep, fig, w, normalize_to_policy));
                v = base > 0 ? v / base : 0.0;
            }
            row.push_back(v);
        }
        fig.values.push_back(std::move(row));
    }
    return fig;
}

double
extractExecTicks(const RunMetrics &m)
{
    return static_cast<double>(m.execTicks);
}

double
extractDramAccesses(const RunMetrics &m)
{
    return m.dramAccesses;
}

double
extractStalls(const RunMetrics &m)
{
    return m.stallsPerRequest;
}

double
extractRowHit(const RunMetrics &m)
{
    return m.dramRowHitRate;
}

/** The five series of Figures 10-13. */
std::vector<std::string>
optSeriesNames()
{
    return {"StaticBest", "StaticWorst", "CacheRW-AB", "CacheRW-CR",
            "CacheRW-PCby"};
}

/** Resolve an optimization-figure series name to a concrete policy. */
std::string
resolveSeries(ExperimentSweep &sweep, const std::string &series,
              const std::string &workload)
{
    if (series == "StaticBest")
        return sweep.staticBest(workload);
    if (series == "StaticWorst")
        return sweep.staticWorst(workload);
    return series;
}

FigureData
optFigure(ExperimentSweep &sweep, const std::string &title,
          const std::string &label,
          double (*extract)(const RunMetrics &), bool norm_to_best,
          bool norm_to_uncached)
{
    FigureData fig;
    fig.title = title;
    fig.valueLabel = label;
    fig.workloads = workloadOrder();
    fig.series = optSeriesNames();
    for (const auto &series : fig.series) {
        std::vector<double> row;
        for (const auto &w : fig.workloads) {
            std::string policy = resolveSeries(sweep, series, w);
            double v = extract(figRow(sweep, fig, w, policy));
            if (norm_to_best) {
                double base = extract(
                    figRow(sweep, fig, w, sweep.staticBest(w)));
                v = base > 0 ? v / base : 0.0;
            } else if (norm_to_uncached) {
                double base =
                    extract(figRow(sweep, fig, w, "Uncached"));
                v = base > 0 ? v / base : 0.0;
            }
            row.push_back(v);
        }
        fig.values.push_back(std::move(row));
    }
    return fig;
}

} // namespace

FigureData
figure4(ExperimentSweep &sweep)
{
    FigureData fig;
    fig.title = "Figure 4: compute bandwidth with CacheR policy";
    fig.valueLabel = "GVOPS";
    fig.workloads = workloadOrder();
    fig.series = {"CacheR"};
    std::vector<double> row;
    for (const auto &w : fig.workloads)
        row.push_back(figRow(sweep, fig, w, "CacheR").gvops);
    fig.values.push_back(std::move(row));
    return fig;
}

FigureData
figure5(ExperimentSweep &sweep)
{
    FigureData fig;
    fig.title = "Figure 5: memory request bandwidth with CacheR policy";
    fig.valueLabel = "GMR/s";
    fig.workloads = workloadOrder();
    fig.series = {"CacheR"};
    std::vector<double> row;
    for (const auto &w : fig.workloads)
        row.push_back(figRow(sweep, fig, w, "CacheR").gmrps);
    fig.values.push_back(std::move(row));
    return fig;
}

FigureData
figure6(ExperimentSweep &sweep)
{
    return policyFigure(
        sweep, "Figure 6: execution time, static policies",
        "normalized to Uncached",
        ExperimentSweep::staticPolicyNames(), extractExecTicks,
        "Uncached");
}

FigureData
figure7(ExperimentSweep &sweep)
{
    return policyFigure(
        sweep, "Figure 7: GPU memory requests reaching DRAM",
        "normalized to Uncached",
        ExperimentSweep::staticPolicyNames(), extractDramAccesses,
        "Uncached");
}

FigureData
figure8(ExperimentSweep &sweep)
{
    return policyFigure(
        sweep, "Figure 8: cache stalls per GPU memory request",
        "stall cycles / request (log-scale in the paper)",
        ExperimentSweep::staticPolicyNames(), extractStalls, nullptr);
}

FigureData
figure9(ExperimentSweep &sweep)
{
    return policyFigure(sweep,
                        "Figure 9: DRAM row buffer hit ratio",
                        "row hits / DRAM accesses",
                        ExperimentSweep::staticPolicyNames(),
                        extractRowHit, nullptr);
}

FigureData
figure10(ExperimentSweep &sweep)
{
    return optFigure(sweep,
                     "Figure 10: execution time with optimizations",
                     "normalized to best static policy",
                     extractExecTicks, true, false);
}

FigureData
figure11(ExperimentSweep &sweep)
{
    return optFigure(
        sweep, "Figure 11: DRAM accesses with optimizations",
        "normalized to Uncached", extractDramAccesses, false, true);
}

FigureData
figure12(ExperimentSweep &sweep)
{
    return optFigure(
        sweep, "Figure 12: cache stalls per request, optimizations",
        "stall cycles / request (log-scale in the paper)",
        extractStalls, false, false);
}

FigureData
figure13(ExperimentSweep &sweep)
{
    return optFigure(sweep,
                     "Figure 13: DRAM row hit ratio, optimizations",
                     "row hits / DRAM accesses", extractRowHit, false,
                     false);
}

std::string
table1Text(const SimConfig &cfg)
{
    std::string s;
    s += "== Table 1: key simulated system parameters ==\n";
    s += csprintf("GPU clock                %.0f MHz\n",
                  1e-6 * static_cast<double>(simSecond) /
                      static_cast<double>(cfg.gpu.clockPeriod));
    s += csprintf("# of CUs                 %u\n", cfg.gpu.numCus);
    s += csprintf("SIMD units per CU        %u\n", cfg.gpu.simdsPerCu);
    s += csprintf("Wavefront slots per SIMD %u\n",
                  cfg.gpu.wfSlotsPerSimd);
    s += csprintf("Wavefront width          %u lanes\n",
                  cfg.gpu.wavefrontSize);
    s += csprintf("L1D per CU               %llu KB, %u-way, %uB line, "
                  "write-through\n",
                  static_cast<unsigned long long>(cfg.l1.size / 1024),
                  cfg.l1.assoc, cfg.l1.lineSize);
    s += csprintf("Shared L2                %llu KB total, %u banks, "
                  "%u-way, write-through (write-back for W data)\n",
                  static_cast<unsigned long long>(
                      cfg.l2Bank.size * cfg.l2Banks / 1024),
                  cfg.l2Banks, cfg.l2Bank.assoc);
    s += csprintf("Main memory              HBM2-like, %u channels, "
                  "%u banks/channel, %u B rows\n",
                  cfg.dram.channels, cfg.dram.banksPerChannel,
                  cfg.dram.rowBytes);
    s += csprintf("Approx. uncontested L1/L2/Memory latency "
                  "~50/~125/~225 GPU cycles\n");
    s += csprintf("Workload footprint scale %.3f "
                  "(see docs/ARCHITECTURE.md, scaling note)\n",
                  cfg.workloadScale);
    return s;
}

} // namespace migc
