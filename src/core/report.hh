/**
 * @file
 * Figure/table rendering: ASCII tables matching the paper's figures
 * plus CSV export.
 */

#ifndef MIGC_CORE_REPORT_HH
#define MIGC_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

#include "core/metrics.hh"

namespace migc
{

/** One figure: workloads x series of values. */
struct FigureData
{
    std::string title;
    std::string valueLabel;
    std::vector<std::string> workloads;       ///< row labels
    std::vector<std::string> series;          ///< column labels
    /** values[s][w] = series s, workload w. */
    std::vector<std::vector<double>> values;

    /**
     * How many of the rows behind `values` were all-zero shard
     * placeholders (RunMetrics::placeholder) rather than measured
     * results - nonzero when a figure is built inside one shard of
     * an unmerged multi-process sweep. printFigure/writeFigureCsv
     * warn so the zeros cannot pass for data.
     */
    std::size_t placeholderRows = 0;

    double at(std::size_t series_idx, std::size_t workload_idx) const;
};

/**
 * Warn (once per call) when @p count placeholder rows back @p what;
 * shared by the FigureData renderers and the batch-sweep binaries
 * (fig14, ablations) that consume SweepEngine::run output directly.
 */
void warnPlaceholderRows(std::size_t count, const std::string &what);

/** Count placeholder rows in a SweepEngine::run result batch. */
std::size_t countPlaceholderRows(const std::vector<RunMetrics> &rows);

/** Render @p fig as an aligned ASCII table. */
void printFigure(std::ostream &os, const FigureData &fig,
                 int precision = 3);

/** Write @p fig as CSV (rows = workloads, columns = series). */
void writeFigureCsv(const std::string &path, const FigureData &fig);

/** Geometric mean of @p v (ignores non-positive entries). */
double geoMean(const std::vector<double> &v);

} // namespace migc

#endif // MIGC_CORE_REPORT_HH
