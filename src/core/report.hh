/**
 * @file
 * Figure/table rendering: ASCII tables matching the paper's figures
 * plus CSV export.
 */

#ifndef MIGC_CORE_REPORT_HH
#define MIGC_CORE_REPORT_HH

#include <ostream>
#include <string>
#include <vector>

namespace migc
{

/** One figure: workloads x series of values. */
struct FigureData
{
    std::string title;
    std::string valueLabel;
    std::vector<std::string> workloads;       ///< row labels
    std::vector<std::string> series;          ///< column labels
    /** values[s][w] = series s, workload w. */
    std::vector<std::vector<double>> values;

    double at(std::size_t series_idx, std::size_t workload_idx) const;
};

/** Render @p fig as an aligned ASCII table. */
void printFigure(std::ostream &os, const FigureData &fig,
                 int precision = 3);

/** Write @p fig as CSV (rows = workloads, columns = series). */
void writeFigureCsv(const std::string &path, const FigureData &fig);

/** Geometric mean of @p v (ignores non-positive entries). */
double geoMean(const std::vector<double> &v);

} // namespace migc

#endif // MIGC_CORE_REPORT_HH
