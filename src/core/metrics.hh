/**
 * @file
 * Per-run metrics harvested after a workload completes: everything
 * the paper's figures are built from.
 */

#ifndef MIGC_CORE_METRICS_HH
#define MIGC_CORE_METRICS_HH

#include <map>
#include <string>

#include "sim/types.hh"

namespace migc
{

struct RunMetrics
{
    std::string workload;
    std::string policy;

    /** Wall time of the workload, host launch overheads included. */
    Tick execTicks = 0;
    double execSeconds = 0.0;

    /** Coalesced line requests issued by the CUs (Fig. 5 / Fig. 8
     *  denominator). */
    double gpuMemRequests = 0.0;

    /** DRAM bursts serviced (Fig. 7 / Fig. 11). */
    double dramReads = 0.0;
    double dramWrites = 0.0;
    double dramAccesses = 0.0;

    /** DRAM row-buffer behavior (Fig. 9 / Fig. 13). */
    double dramRowHitRate = 0.0;

    /** Cache stall cycles summed over L1s + L2 banks (Fig. 8 /
     *  Fig. 12). */
    double cacheStallCycles = 0.0;
    double stallsPerRequest = 0.0;

    /** Compute and memory bandwidth (Fig. 4 / Fig. 5). */
    double vops = 0.0;
    double gvops = 0.0;
    double gmrps = 0.0;

    /** Cache behavior breakdowns (diagnostics / ablations). */
    double l1Hits = 0.0;
    double l1Misses = 0.0;
    double l2Hits = 0.0;
    double l2Misses = 0.0;
    double l2Writebacks = 0.0;
    double rinseWritebacks = 0.0;
    double allocBypassed = 0.0;
    double predictorBypasses = 0.0;

    double kernels = 0.0;

    /**
     * Simulator events processed for this run (a cost, not a
     * modeled-hardware metric). The sweep engine's longest-job-first
     * scheduler uses it as the duration estimate for repeat runs.
     */
    double simEvents = 0.0;

    /**
     * In-memory-only marker for the all-zero stand-in rows a shard
     * worker hands out for grid points other shards own
     * (SweepEngine::placeholderFor). Deliberately NOT serialized:
     * toCsv()/fromCsv() ignore it, so cache bytes and goldens are
     * unchanged and a placeholder can never be mistaken for a real
     * result after a round-trip - the cache simply never holds one
     * (RunCache::insert refuses them). Downstream consumers check it
     * to avoid plotting or serving zeros as if they were measured:
     * figure paths warn (report.hh), migc_serve refuses.
     */
    bool placeholder = false;

    /** Serialize to CSV (schema in csvHeader()); placeholder rows
     *  must never reach this - callers gate on the flag. */
    std::string toCsv() const;

    static std::string csvHeader();

    /** Parse a line produced by toCsv(); returns false on mismatch. */
    static bool fromCsv(const std::string &line, RunMetrics &out);
};

} // namespace migc

#endif // MIGC_CORE_METRICS_HH
