#include "core/system.hh"

#include "mem/addr_utils.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace migc
{

GpuCache::PolicyView
System::l1PolicyView(std::string_view name) const
{
    // The engine's per-level flags are the single source of truth
    // for the policy -> cache-capability mapping (stores and rinsing
    // are L2 mechanisms); System only adds the seed stream.
    PolicyEngine::LevelFlags f = engine_.levelFlags(CacheLevel::l1);
    return GpuCache::PolicyView{f.cacheLoads, f.cacheStores,
                                f.allocationBypass, f.rinsing,
                                deriveSeed(cfg_.seed, name)};
}

GpuCache::PolicyView
System::l2PolicyView(std::string_view name) const
{
    PolicyEngine::LevelFlags f = engine_.levelFlags(CacheLevel::l2);
    return GpuCache::PolicyView{f.cacheLoads, f.cacheStores,
                                f.allocationBypass, f.rinsing,
                                deriveSeed(cfg_.seed, name)};
}

namespace
{

void
applyPolicyView(GpuCacheConfig &cfg, const GpuCache::PolicyView &pv)
{
    cfg.cacheLoads = pv.cacheLoads;
    cfg.cacheStores = pv.cacheStores;
    cfg.allocationBypass = pv.allocationBypass;
    cfg.rinsing = pv.rinsing;
    cfg.seed = pv.seed;
}

} // namespace

GpuCacheConfig
System::l1ConfigFor(unsigned i) const
{
    GpuCacheConfig l1 = cfg_.l1;
    l1.name = csprintf("l1_%u", i);
    applyPolicyView(l1, l1PolicyView(l1.name));
    return l1;
}

GpuCacheConfig
System::l2ConfigFor(unsigned j) const
{
    GpuCacheConfig l2 = cfg_.l2Bank;
    l2.name = csprintf("l2_%u", j);
    l2.bankInterleaveBits = floorLog2(cfg_.l2Banks);
    applyPolicyView(l2, l2PolicyView(l2.name));
    return l2;
}

System::System(const SimConfig &cfg, const CachePolicy &policy)
    : cfg_(cfg), policy_(policy), engine_(policy_),
      predictor_(cfg.predictor)
{
    // DRAM first: caches need its address map for row-aware rinsing.
    dram_ = std::make_unique<DramCtrl>("dram", eventq_, cfg_.dram,
                                       cfg_.l2Banks);

    gpu_ = std::make_unique<Gpu>("gpu", eventq_, pktPool_, cfg_.gpu);

    // Per-CU L1s with the policy's L1 behavior.
    for (unsigned i = 0; i < cfg_.gpu.numCus; ++i) {
        l1s_.push_back(std::make_unique<GpuCache>(
            l1ConfigFor(i), eventq_, pktPool_, &dram_->addressMap(),
            nullptr, &engine_, CacheLevel::l1));
        gpu_->cu(i).memPort().bind(l1s_.back()->cpuSidePort());
    }

    // Crossbar routes line addresses to L2 banks.
    XBar::Config xc = cfg_.xbar;
    xc.numInputs = cfg_.gpu.numCus;
    xc.numOutputs = cfg_.l2Banks;
    unsigned line_shift = floorLog2(cfg_.l1.lineSize);
    unsigned banks = cfg_.l2Banks;
    xbar_ = std::make_unique<XBar>(
        "xbar", eventq_, ClockDomain(cfg_.gpu.clockPeriod), xc,
        [line_shift, banks](Addr a) {
            return static_cast<unsigned>((a >> line_shift) % banks);
        });
    for (unsigned i = 0; i < cfg_.gpu.numCus; ++i)
        l1s_[i]->memSidePort().bind(xbar_->cpuSidePort(i));

    // Banked shared L2 with the policy's L2 behavior.
    for (unsigned j = 0; j < cfg_.l2Banks; ++j) {
        l2Banks_.push_back(std::make_unique<GpuCache>(
            l2ConfigFor(j), eventq_, pktPool_, &dram_->addressMap(),
            engine_.levelFlags(CacheLevel::l2).usePredictor
                ? &predictor_
                : nullptr,
            &engine_, CacheLevel::l2));
        xbar_->memSidePort(j).bind(l2Banks_.back()->cpuSidePort());
        l2Banks_.back()->memSidePort().bind(dram_->clientPort(j));
    }

    // Dispatcher synchronization hooks (Section III scope model).
    Dispatcher::SyncHooks hooks;
    hooks.invalidateL1s = [this] {
        for (auto &l1 : l1s_)
            l1->invalidateClean();
    };
    hooks.syncL2System = [this](std::function<void()> done) {
        auto remaining = std::make_shared<unsigned>(
            static_cast<unsigned>(l2Banks_.size()));
        auto shared_done = std::make_shared<std::function<void()>>(
            std::move(done));
        for (auto &bank : l2Banks_) {
            bank->flushDirty([this, remaining, shared_done] {
                if (--*remaining == 0) {
                    for (auto &b : l2Banks_)
                        b->invalidateClean();
                    (*shared_done)();
                }
            });
        }
    };
    hooks.memSystemQuiescent = [this] { return memSystemQuiescent(); };
    gpu_->dispatcher().setSyncHooks(std::move(hooks));

    // Statistics tree.
    gpu_->regStats(stats_.child("gpu"));
    for (auto &l1 : l1s_)
        l1->regStats(stats_.child(l1->name()));
    xbar_->regStats(stats_.child("xbar"));
    for (auto &l2 : l2Banks_)
        l2->regStats(stats_.child(l2->name()));
    dram_->regStats(stats_.child("dram"));
    predictor_.regStats(stats_.child("predictor"));
    engine_.regStats(stats_.child("policy"));
}

void
System::reset(const CachePolicy &policy, std::uint64_t seed)
{
    panic_if(gpu_->dispatcher().running(),
             "System::reset() while a workload is running");
    panic_if(!memSystemQuiescent(),
             "System::reset() with memory traffic in flight");

    // Detaching every pending event first (idle machinery timers,
    // posted-write drains) lets the component resets below clear
    // their queues without worrying about scheduled work.
    eventq_.reset();

    policy_ = policy;
    cfg_.seed = seed;
    engine_.reset(policy_);

    // Per-cache flags and seeds re-derive through the same
    // l1PolicyView/l2PolicyView mapping the constructor used; the
    // cache's name is its seed-stream label (allocation-free).
    gpu_->reset();
    for (unsigned i = 0; i < cfg_.gpu.numCus; ++i)
        l1s_[i]->reset(l1PolicyView(l1s_[i]->name()), nullptr);
    xbar_->reset();
    for (unsigned j = 0; j < cfg_.l2Banks; ++j) {
        l2Banks_[j]->reset(
            l2PolicyView(l2Banks_[j]->name()),
            engine_.levelFlags(CacheLevel::l2).usePredictor
                ? &predictor_
                : nullptr);
    }
    dram_->reset();
    predictor_.reset();

    // A completed run has released every packet (posted writes are
    // consumed at their ack); anything still live would leak slots
    // and indicate an ownership bug somewhere above.
    panic_if(pktPool_.liveCount() != 0,
             "System::reset() with %zu live packets",
             pktPool_.liveCount());
}

bool
System::memSystemQuiescent() const
{
    // Posted writes sitting in the DRAM controller's write queue are
    // already globally visible (they were acknowledged at the point
    // of visibility), so quiescence does not require them to have
    // drained to the banks. Every read in flight is tracked by some
    // cache's MSHR/bypass table, so the cache checks cover reads.
    for (const auto &l1 : l1s_) {
        if (!l1->quiescent())
            return false;
    }
    for (const auto &l2 : l2Banks_) {
        if (!l2->quiescent())
            return false;
    }
    return true;
}

double
System::totalCacheStallCycles() const
{
    double v = 0;
    for (const auto &l1 : l1s_)
        v += l1->stallCycles();
    for (const auto &l2 : l2Banks_)
        v += l2->stallCycles();
    return v;
}

double
System::totalL1Hits() const
{
    double v = 0;
    for (const auto &l1 : l1s_)
        v += l1->demandHits();
    return v;
}

double
System::totalL1Misses() const
{
    double v = 0;
    for (const auto &l1 : l1s_)
        v += l1->demandMisses();
    return v;
}

double
System::totalL2Hits() const
{
    double v = 0;
    for (const auto &l2 : l2Banks_)
        v += l2->demandHits();
    return v;
}

double
System::totalL2Misses() const
{
    double v = 0;
    for (const auto &l2 : l2Banks_)
        v += l2->demandMisses();
    return v;
}

double
System::totalL2Writebacks() const
{
    double v = 0;
    for (const auto &l2 : l2Banks_)
        v += l2->writebacks();
    return v;
}

double
System::totalRinseWritebacks() const
{
    double v = 0;
    for (const auto &l2 : l2Banks_)
        v += l2->rinseWritebacks();
    return v;
}

double
System::totalAllocBypassed() const
{
    double v = 0;
    for (const auto &l1 : l1s_)
        v += l1->allocBypassConversions();
    for (const auto &l2 : l2Banks_)
        v += l2->allocBypassConversions();
    return v;
}

double
System::totalPredictorBypasses() const
{
    return predictor_.bypassPredictions();
}

} // namespace migc
