#include "core/system.hh"

#include "mem/addr_utils.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace migc
{

System::System(const SimConfig &cfg, const CachePolicy &policy)
    : cfg_(cfg), policy_(policy), predictor_(cfg.predictor)
{
    // DRAM first: caches need its address map for row-aware rinsing.
    dram_ = std::make_unique<DramCtrl>("dram", eventq_, cfg_.dram,
                                       cfg_.l2Banks);

    gpu_ = std::make_unique<Gpu>("gpu", eventq_, pktPool_, cfg_.gpu);

    // Per-CU L1s with the policy's L1 behavior.
    for (unsigned i = 0; i < cfg_.gpu.numCus; ++i) {
        GpuCacheConfig l1 = cfg_.l1;
        l1.name = csprintf("l1_%u", i);
        l1.cacheLoads = policy_.cacheLoadsL1;
        l1.cacheStores = false; // stores always bypass the L1
        l1.allocationBypass = policy_.allocationBypass;
        l1.rinsing = false;
        l1.seed = deriveSeed(cfg_.seed, l1.name);
        l1s_.push_back(std::make_unique<GpuCache>(
            l1, eventq_, pktPool_, &dram_->addressMap(), nullptr));
        gpu_->cu(i).memPort().bind(l1s_.back()->cpuSidePort());
    }

    // Crossbar routes line addresses to L2 banks.
    XBar::Config xc = cfg_.xbar;
    xc.numInputs = cfg_.gpu.numCus;
    xc.numOutputs = cfg_.l2Banks;
    unsigned line_shift = floorLog2(cfg_.l1.lineSize);
    unsigned banks = cfg_.l2Banks;
    xbar_ = std::make_unique<XBar>(
        "xbar", eventq_, ClockDomain(cfg_.gpu.clockPeriod), xc,
        [line_shift, banks](Addr a) {
            return static_cast<unsigned>((a >> line_shift) % banks);
        });
    for (unsigned i = 0; i < cfg_.gpu.numCus; ++i)
        l1s_[i]->memSidePort().bind(xbar_->cpuSidePort(i));

    // Banked shared L2 with the policy's L2 behavior.
    for (unsigned j = 0; j < cfg_.l2Banks; ++j) {
        GpuCacheConfig l2 = cfg_.l2Bank;
        l2.name = csprintf("l2_%u", j);
        l2.bankInterleaveBits = floorLog2(cfg_.l2Banks);
        l2.cacheLoads = policy_.cacheLoadsL2;
        l2.cacheStores = policy_.cacheStoresL2;
        l2.allocationBypass = policy_.allocationBypass;
        l2.rinsing = policy_.cacheRinsing;
        l2.seed = deriveSeed(cfg_.seed, l2.name);
        l2Banks_.push_back(std::make_unique<GpuCache>(
            l2, eventq_, pktPool_, &dram_->addressMap(),
            policy_.pcBypassL2 ? &predictor_ : nullptr));
        xbar_->memSidePort(j).bind(l2Banks_.back()->cpuSidePort());
        l2Banks_.back()->memSidePort().bind(dram_->clientPort(j));
    }

    // Dispatcher synchronization hooks (Section III scope model).
    Dispatcher::SyncHooks hooks;
    hooks.invalidateL1s = [this] {
        for (auto &l1 : l1s_)
            l1->invalidateClean();
    };
    hooks.syncL2System = [this](std::function<void()> done) {
        auto remaining = std::make_shared<unsigned>(
            static_cast<unsigned>(l2Banks_.size()));
        auto shared_done = std::make_shared<std::function<void()>>(
            std::move(done));
        for (auto &bank : l2Banks_) {
            bank->flushDirty([this, remaining, shared_done] {
                if (--*remaining == 0) {
                    for (auto &b : l2Banks_)
                        b->invalidateClean();
                    (*shared_done)();
                }
            });
        }
    };
    hooks.memSystemQuiescent = [this] { return memSystemQuiescent(); };
    gpu_->dispatcher().setSyncHooks(std::move(hooks));

    // Statistics tree.
    gpu_->regStats(stats_.child("gpu"));
    for (auto &l1 : l1s_)
        l1->regStats(stats_.child(l1->name()));
    xbar_->regStats(stats_.child("xbar"));
    for (auto &l2 : l2Banks_)
        l2->regStats(stats_.child(l2->name()));
    dram_->regStats(stats_.child("dram"));
    predictor_.regStats(stats_.child("predictor"));
}

bool
System::memSystemQuiescent() const
{
    // Posted writes sitting in the DRAM controller's write queue are
    // already globally visible (they were acknowledged at the point
    // of visibility), so quiescence does not require them to have
    // drained to the banks. Every read in flight is tracked by some
    // cache's MSHR/bypass table, so the cache checks cover reads.
    for (const auto &l1 : l1s_) {
        if (!l1->quiescent())
            return false;
    }
    for (const auto &l2 : l2Banks_) {
        if (!l2->quiescent())
            return false;
    }
    return true;
}

double
System::totalCacheStallCycles() const
{
    double v = 0;
    for (const auto &l1 : l1s_)
        v += l1->stallCycles();
    for (const auto &l2 : l2Banks_)
        v += l2->stallCycles();
    return v;
}

double
System::totalL1Hits() const
{
    double v = 0;
    for (const auto &l1 : l1s_)
        v += l1->demandHits();
    return v;
}

double
System::totalL1Misses() const
{
    double v = 0;
    for (const auto &l1 : l1s_)
        v += l1->demandMisses();
    return v;
}

double
System::totalL2Hits() const
{
    double v = 0;
    for (const auto &l2 : l2Banks_)
        v += l2->demandHits();
    return v;
}

double
System::totalL2Misses() const
{
    double v = 0;
    for (const auto &l2 : l2Banks_)
        v += l2->demandMisses();
    return v;
}

double
System::totalL2Writebacks() const
{
    double v = 0;
    for (const auto &l2 : l2Banks_)
        v += l2->writebacks();
    return v;
}

double
System::totalRinseWritebacks() const
{
    double v = 0;
    for (const auto &l2 : l2Banks_)
        v += l2->rinseWritebacks();
    return v;
}

double
System::totalAllocBypassed() const
{
    double v = 0;
    for (const auto &l1 : l1s_)
        v += l1->allocBypassConversions();
    for (const auto &l2 : l2Banks_)
        v += l2->allocBypassConversions();
    return v;
}

double
System::totalPredictorBypasses() const
{
    return predictor_.bypassPredictions();
}

} // namespace migc
