/**
 * @file
 * A GCN-like compute unit: 4 SIMDs x 10 wavefront slots, one vector
 * instruction issued per SIMD per cycle, a coalescer feeding a
 * bounded per-CU memory queue, and an L1 port with retry flow
 * control. Ticks are only scheduled while issueable work exists, so
 * memory-bound phases cost no idle events.
 */

#ifndef MIGC_GPU_COMPUTE_UNIT_HH
#define MIGC_GPU_COMPUTE_UNIT_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "gpu/gpu_config.hh"
#include "gpu/wavefront.hh"
#include "mem/packet_pool.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace migc
{

class ComputeUnit : public SimObject
{
  public:
    ComputeUnit(std::string name, EventQueue &eq, PacketPool &pool,
                const GpuConfig &cfg, unsigned cu_id);

    /** Port to bind to this CU's L1 cpu-side port. */
    RequestPort &memPort() { return memPort_; }

    /** Dispatcher notification when a whole workgroup retires. */
    void
    onWorkgroupComplete(std::function<void(unsigned cu_id)> cb)
    {
        wgCompleteCb_ = std::move(cb);
    }

    /** Free wavefront slots across all SIMDs. */
    unsigned freeWfSlots() const;

    /**
     * Start a workgroup: @p programs holds one program per wavefront.
     * Caller must check freeWfSlots() >= programs.size().
     */
    void startWorkgroup(std::uint32_t wg_id,
                        std::vector<WavefrontProgram> programs);

    /** No live wavefronts and no memory traffic in flight. */
    bool idle() const;

    /**
     * Return to the just-constructed state, keeping all storage
     * (wavefront slots, queue buffers, hash-map buckets) allocated.
     * The CU must be idle. Part of System::reset().
     */
    void reset();

    unsigned liveWavefronts() const { return liveWavefronts_; }

    std::uint64_t outstandingStores() const { return outstandingStores_; }

    void regStats(StatGroup &group) override;

    double vectorOps() const { return statVops_.value(); }

    /** Coalesced line requests issued (the paper's GPU memory
     *  requests; denominators of Figures 5 and 8). */
    double memRequests() const
    {
        return statLoadReqs_.value() + statStoreReqs_.value();
    }

  private:
    struct PendingLine
    {
        Addr addr;
        bool isLoad;
        Addr pc;
        int slot; ///< wavefront slot for loads; -1 for stores
    };

    void tick();
    void signalWork();
    bool issueFromSimd(unsigned simd);
    bool executeOp(int slot_index, Wavefront &wf);
    void issueMemory();
    void handleResponse(PacketPtr pkt);
    void wavefrontFinished(int slot_index);

    class CuMemPort : public RequestPort
    {
      public:
        CuMemPort(std::string name, ComputeUnit &cu)
            : RequestPort(std::move(name)), cu_(cu)
        {}

        void
        recvTimingResp(PacketPtr pkt) override
        {
            cu_.handleResponse(pkt);
        }

        void
        recvReqRetry() override
        {
            cu_.portBlocked_ = false;
            cu_.signalWork();
        }

      private:
        ComputeUnit &cu_;
    };

    PacketPool &pktPool_;
    GpuConfig cfg_;
    unsigned cuId_;

    /** Slot layout: simd s owns [s*slotsPerSimd, (s+1)*slotsPerSimd). */
    std::vector<Wavefront> slots_;
    std::vector<Tick> simdBusyUntil_;
    std::vector<unsigned> simdRoundRobin_;

    std::deque<PendingLine> memQueue_;
    bool portBlocked_ = false;

    /** Load packet id -> wavefront slot. */
    std::unordered_map<std::uint64_t, int> loadCtx_;

    std::uint64_t outstandingStores_ = 0;
    unsigned liveWavefronts_ = 0;

    /** Live wavefronts remaining per workgroup id. */
    std::unordered_map<std::uint32_t, unsigned> wgLiveWaves_;

    std::function<void(unsigned)> wgCompleteCb_;

    CuMemPort memPort_;
    EventFunctionWrapper tickEvent_;

    StatScalar statVops_;
    StatScalar statLoadReqs_;
    StatScalar statStoreReqs_;
    StatScalar statLdsCycles_;
    StatScalar statActiveCycles_;
    StatScalar statWavefrontsRun_;
};

} // namespace migc

#endif // MIGC_GPU_COMPUTE_UNIT_HH
