/**
 * @file
 * Workgroup dispatcher and kernel sequencer.
 *
 * Launches each kernel's workgroups onto CUs as slots free up; when
 * a kernel's last wavefront retires it drains the memory system and
 * performs the paper's synchronization actions: clean
 * self-invalidation of the GPU caches at every kernel boundary, plus
 * an L2 dirty flush at system-scope boundaries (Section III). The
 * next kernel launches after the host launch latency.
 */

#ifndef MIGC_GPU_DISPATCHER_HH
#define MIGC_GPU_DISPATCHER_HH

#include <functional>
#include <vector>

#include "gpu/compute_unit.hh"
#include "gpu/gpu_config.hh"
#include "gpu/kernel.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace migc
{

class Dispatcher : public SimObject
{
  public:
    /**
     * Hooks into the memory system, provided by core/System.
     *
     * Scope model (Section III, coherent APU): every kernel boundary
     * self-invalidates the L1s; a system-scope boundary additionally
     * invalidates clean L2 data and flushes L2 dirty data so the host
     * observes it. Device-scope boundaries leave the L2 intact, which
     * is what lets multi-kernel workloads (RNN steps, CM layers)
     * reuse weights and activations across kernels.
     */
    struct SyncHooks
    {
        /** Self-invalidate clean data in the per-CU L1s. */
        std::function<void()> invalidateL1s;

        /**
         * System-scope L2 synchronization: flush dirty data and
         * self-invalidate clean data; invoke the callback when all
         * writebacks have been acknowledged.
         */
        std::function<void(std::function<void()>)> syncL2System;

        /** True when caches and DRAM have no requests in flight. */
        std::function<bool()> memSystemQuiescent;
    };

    Dispatcher(std::string name, EventQueue &eq, const GpuConfig &cfg,
               std::vector<ComputeUnit *> cus);

    void setSyncHooks(SyncHooks hooks) { hooks_ = std::move(hooks); }

    /**
     * Run @p kernels in order; @p on_done fires after the final
     * kernel's system-scope synchronization completes.
     */
    void run(std::vector<KernelDesc> kernels,
             std::function<void()> on_done);

    bool running() const { return running_; }

    /**
     * Return to the just-constructed state; must not be running.
     * Part of System::reset().
     */
    void reset();

    void regStats(StatGroup &group) override;

    double kernelsLaunched() const { return statKernels_.value(); }

  private:
    void launchKernel();
    void tryDispatch();
    void onWorkgroupComplete(unsigned cu_id);
    void drainPoll();
    void kernelBoundary();
    void afterBoundary();

    GpuConfig cfg_;
    std::vector<ComputeUnit *> cus_;
    SyncHooks hooks_;

    std::vector<KernelDesc> kernels_;
    std::function<void()> onDone_;
    bool running_ = false;

    std::size_t kernelIdx_ = 0;
    std::uint32_t nextWg_ = 0;
    std::uint32_t wgsOutstanding_ = 0;
    unsigned rrCu_ = 0;
    bool draining_ = false;

    EventFunctionWrapper launchEvent_;
    EventFunctionWrapper drainEvent_;

    StatScalar statKernels_;
    StatScalar statWorkgroups_;
    StatScalar statFlushes_;
    StatScalar statInvalidates_;
};

} // namespace migc

#endif // MIGC_GPU_DISPATCHER_HH
