#include "gpu/dispatcher.hh"

#include "sim/logging.hh"

namespace migc
{

Dispatcher::Dispatcher(std::string name, EventQueue &eq,
                       const GpuConfig &cfg,
                       std::vector<ComputeUnit *> cus)
    : SimObject(std::move(name), eq, ClockDomain(cfg.clockPeriod)),
      cfg_(cfg), cus_(std::move(cus)),
      launchEvent_([this] { launchKernel(); }, this->name() + ".launch",
                   Event::defaultPriority, EventCategory::gpu),
      drainEvent_([this] { drainPoll(); }, this->name() + ".drain",
                  Event::defaultPriority, EventCategory::gpu)
{
    fatal_if(cus_.empty(), "dispatcher needs at least one CU");
    for (auto *cu : cus_) {
        cu->onWorkgroupComplete(
            [this](unsigned cu_id) { onWorkgroupComplete(cu_id); });
    }
}

void
Dispatcher::run(std::vector<KernelDesc> kernels,
                std::function<void()> on_done)
{
    panic_if(running_, "dispatcher already running");
    fatal_if(kernels.empty(), "no kernels to run");
    for (const auto &k : kernels) {
        fatal_if(!k.makeProgram, "kernel '%s' has no program generator",
                 k.name.c_str());
        fatal_if(k.numWorkgroups == 0, "kernel '%s' has no workgroups",
                 k.name.c_str());
    }

    kernels_ = std::move(kernels);
    onDone_ = std::move(on_done);
    running_ = true;
    kernelIdx_ = 0;
    eventQueue().schedule(&launchEvent_, curTick() + cfg_.launchLatency);
}

void
Dispatcher::launchKernel()
{
    ++statKernels_;
    nextWg_ = 0;
    wgsOutstanding_ = 0;
    draining_ = false;
    tryDispatch();
}

void
Dispatcher::tryDispatch()
{
    const KernelDesc &k = kernels_[kernelIdx_];
    unsigned stuck = 0;
    while (nextWg_ < k.numWorkgroups && stuck < cus_.size()) {
        ComputeUnit *cu = cus_[rrCu_];
        if (cu->freeWfSlots() >= k.wavesPerWorkgroup) {
            std::vector<WavefrontProgram> programs;
            programs.reserve(k.wavesPerWorkgroup);
            for (std::uint32_t w = 0; w < k.wavesPerWorkgroup; ++w)
                programs.push_back(k.makeProgram(nextWg_, w));
            cu->startWorkgroup(nextWg_, std::move(programs));
            ++nextWg_;
            ++wgsOutstanding_;
            ++statWorkgroups_;
            stuck = 0;
        } else {
            ++stuck;
        }
        rrCu_ = (rrCu_ + 1) % static_cast<unsigned>(cus_.size());
    }

    if (nextWg_ >= k.numWorkgroups && wgsOutstanding_ == 0 &&
        !draining_) {
        draining_ = true;
        eventQueue().schedule(&drainEvent_,
                              clockEdge(cfg_.drainPollInterval));
    }
}

void
Dispatcher::onWorkgroupComplete(unsigned cu_id)
{
    (void)cu_id;
    panic_if(wgsOutstanding_ == 0, "workgroup completion underflow");
    --wgsOutstanding_;
    tryDispatch();
}

void
Dispatcher::drainPoll()
{
    bool cus_idle = true;
    for (auto *cu : cus_) {
        if (!cu->idle()) {
            cus_idle = false;
            break;
        }
    }
    if (!cus_idle || !hooks_.memSystemQuiescent()) {
        eventQueue().schedule(&drainEvent_,
                              clockEdge(cfg_.drainPollInterval));
        return;
    }
    kernelBoundary();
}

void
Dispatcher::kernelBoundary()
{
    const KernelDesc &k = kernels_[kernelIdx_];

    // Every kernel boundary self-invalidates the L1s.
    ++statInvalidates_;
    if (hooks_.invalidateL1s)
        hooks_.invalidateL1s();

    // System-scope boundaries additionally synchronize the L2 (flush
    // dirty + invalidate clean). The final kernel always synchronizes
    // at system scope so results are visible to the host.
    bool system_scope = k.endScope == SyncScope::system ||
                        kernelIdx_ + 1 == kernels_.size();
    if (system_scope && hooks_.syncL2System) {
        ++statFlushes_;
        hooks_.syncL2System([this] { afterBoundary(); });
    } else {
        afterBoundary();
    }
}

void
Dispatcher::afterBoundary()
{
    ++kernelIdx_;
    if (kernelIdx_ < kernels_.size()) {
        eventQueue().schedule(&launchEvent_,
                              curTick() + cfg_.launchLatency);
        return;
    }
    running_ = false;
    if (onDone_) {
        auto done = std::move(onDone_);
        onDone_ = nullptr;
        done();
    }
}

void
Dispatcher::reset()
{
    panic_if(running_, "resetting a running dispatcher");
    kernels_.clear();
    onDone_ = nullptr;
    kernelIdx_ = 0;
    nextWg_ = 0;
    wgsOutstanding_ = 0;
    rrCu_ = 0;
    draining_ = false;

    statKernels_.reset();
    statWorkgroups_.reset();
    statFlushes_.reset();
    statInvalidates_.reset();
}

void
Dispatcher::regStats(StatGroup &group)
{
    group.addScalar("kernels", "kernels launched", &statKernels_);
    group.addScalar("workgroups", "workgroups dispatched",
                    &statWorkgroups_);
    group.addScalar("flushes", "system-scope L2 flushes", &statFlushes_);
    group.addScalar("invalidates", "kernel-boundary invalidations",
                    &statInvalidates_);
}

} // namespace migc
