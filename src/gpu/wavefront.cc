#include "gpu/wavefront.hh"

// Wavefront is a plain state holder; logic lives in ComputeUnit.

namespace migc
{
} // namespace migc
