#include "gpu/gpu.hh"

#include "sim/logging.hh"

namespace migc
{

Gpu::Gpu(const std::string &name, EventQueue &eq, PacketPool &pool,
         const GpuConfig &cfg)
    : cfg_(cfg)
{
    fatal_if(cfg.numCus == 0, "GPU needs at least one CU");

    std::vector<ComputeUnit *> raw;
    for (unsigned i = 0; i < cfg.numCus; ++i) {
        cus_.push_back(std::make_unique<ComputeUnit>(
            name + csprintf(".cu%u", i), eq, pool, cfg, i));
        raw.push_back(cus_.back().get());
    }
    dispatcher_ = std::make_unique<Dispatcher>(name + ".dispatcher", eq,
                                               cfg, std::move(raw));
}

ComputeUnit &
Gpu::cu(unsigned i)
{
    panic_if(i >= cus_.size(), "bad CU index %u", i);
    return *cus_[i];
}

double
Gpu::totalVops() const
{
    double v = 0;
    for (const auto &cu : cus_)
        v += cu->vectorOps();
    return v;
}

double
Gpu::totalMemRequests() const
{
    double v = 0;
    for (const auto &cu : cus_)
        v += cu->memRequests();
    return v;
}

bool
Gpu::allCusIdle() const
{
    for (const auto &cu : cus_) {
        if (!cu->idle())
            return false;
    }
    return true;
}

void
Gpu::reset()
{
    dispatcher_->reset();
    for (auto &cu : cus_)
        cu->reset();
}

void
Gpu::regStats(StatGroup &group)
{
    dispatcher_->regStats(group.child("dispatcher"));
    for (auto &cu : cus_) {
        auto dot = cu->name().rfind('.');
        cu->regStats(group.child(cu->name().substr(dot + 1)));
    }
    group.addFormula("vops", "total vector ALU ops",
                     [this] { return totalVops(); });
    group.addFormula("mem_requests", "total coalesced line requests",
                     [this] { return totalMemRequests(); });
}

} // namespace migc
