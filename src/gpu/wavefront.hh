/**
 * @file
 * Wavefront execution state.
 */

#ifndef MIGC_GPU_WAVEFRONT_HH
#define MIGC_GPU_WAVEFRONT_HH

#include <cstdint>
#include <vector>

#include "gpu/kernel.hh"
#include "sim/types.hh"

namespace migc
{

/** One live 64-lane wavefront on a SIMD slot. */
struct Wavefront
{
    bool active = false;
    std::uint32_t wgId = 0;
    std::uint32_t wfId = 0;

    WavefrontProgram program;
    std::size_t pcIdx = 0;

    /** Line loads issued and not yet answered. */
    unsigned outstandingLoads = 0;

    /** Parked at a waitLoads op. */
    bool waitingMem = false;

    /**
     * Coalesced lines of the memory op at @c coalescedPc. A blocked
     * vload/vstore is re-considered every CU tick; coalescing is a
     * pure function of the op, so the CU computes it once per
     * program counter and reuses the buffer (storage persists across
     * reset() to stay allocation-free between wavefronts).
     */
    std::vector<Addr> coalesced;
    std::size_t coalescedPc = SIZE_MAX;

    /** All instructions retired (loads may still be pending). */
    bool
    instructionsDone() const
    {
        return pcIdx >= program.size();
    }

    /** Fully complete: retired and no loads in flight. */
    bool
    complete() const
    {
        return active && instructionsDone() && outstandingLoads == 0;
    }

    void
    reset()
    {
        active = false;
        program.clear();
        pcIdx = 0;
        outstandingLoads = 0;
        waitingMem = false;
        coalescedPc = SIZE_MAX;
    }
};

} // namespace migc

#endif // MIGC_GPU_WAVEFRONT_HH
