/**
 * @file
 * Wavefront execution state.
 */

#ifndef MIGC_GPU_WAVEFRONT_HH
#define MIGC_GPU_WAVEFRONT_HH

#include <cstdint>

#include "gpu/kernel.hh"
#include "sim/types.hh"

namespace migc
{

/** One live 64-lane wavefront on a SIMD slot. */
struct Wavefront
{
    bool active = false;
    std::uint32_t wgId = 0;
    std::uint32_t wfId = 0;

    WavefrontProgram program;
    std::size_t pcIdx = 0;

    /** Line loads issued and not yet answered. */
    unsigned outstandingLoads = 0;

    /** Parked at a waitLoads op. */
    bool waitingMem = false;

    /** All instructions retired (loads may still be pending). */
    bool
    instructionsDone() const
    {
        return pcIdx >= program.size();
    }

    /** Fully complete: retired and no loads in flight. */
    bool
    complete() const
    {
        return active && instructionsDone() && outstandingLoads == 0;
    }

    void
    reset()
    {
        active = false;
        program.clear();
        pcIdx = 0;
        outstandingLoads = 0;
        waitingMem = false;
    }
};

} // namespace migc

#endif // MIGC_GPU_WAVEFRONT_HH
