/**
 * @file
 * The GPU device: a set of compute units plus the dispatcher.
 */

#ifndef MIGC_GPU_GPU_HH
#define MIGC_GPU_GPU_HH

#include <memory>
#include <vector>

#include "gpu/compute_unit.hh"
#include "gpu/dispatcher.hh"
#include "gpu/gpu_config.hh"
#include "sim/sim_object.hh"

namespace migc
{

class Gpu
{
  public:
    Gpu(const std::string &name, EventQueue &eq, PacketPool &pool,
        const GpuConfig &cfg);

    unsigned numCus() const { return static_cast<unsigned>(cus_.size()); }

    ComputeUnit &cu(unsigned i);

    Dispatcher &dispatcher() { return *dispatcher_; }

    const GpuConfig &config() const { return cfg_; }

    /** Total vector ALU ops across CUs (Figure 4 numerator). */
    double totalVops() const;

    /** Total coalesced line requests across CUs (Figures 5 and 8). */
    double totalMemRequests() const;

    bool allCusIdle() const;

    /** Reset the dispatcher and every CU (System::reset()). */
    void reset();

    void regStats(StatGroup &group);

  private:
    GpuConfig cfg_;
    std::vector<std::unique_ptr<ComputeUnit>> cus_;
    std::unique_ptr<Dispatcher> dispatcher_;
};

} // namespace migc

#endif // MIGC_GPU_GPU_HH
