/**
 * @file
 * Per-wavefront memory coalescing: collapse the 64 lane addresses of
 * one vector memory instruction into unique cache-line requests,
 * preserving first-touch order.
 */

#ifndef MIGC_GPU_COALESCER_HH
#define MIGC_GPU_COALESCER_HH

#include <vector>

#include "gpu/kernel.hh"
#include "sim/types.hh"

namespace migc
{

/**
 * Coalesce @p op's lane addresses into unique line-aligned addresses.
 * @param line_size cache line size in bytes (power of two).
 */
std::vector<Addr> coalesce(const GpuOp &op, unsigned line_size);

} // namespace migc

#endif // MIGC_GPU_COALESCER_HH
