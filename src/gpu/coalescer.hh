/**
 * @file
 * Per-wavefront memory coalescing: collapse the 64 lane addresses of
 * one vector memory instruction into unique cache-line requests,
 * preserving first-touch order.
 */

#ifndef MIGC_GPU_COALESCER_HH
#define MIGC_GPU_COALESCER_HH

#include <vector>

#include "gpu/kernel.hh"
#include "sim/types.hh"

namespace migc
{

/**
 * Coalesce @p op's lane addresses into unique line-aligned addresses,
 * reusing @p out's storage (cleared first). The hot path: a blocked
 * vector memory op is re-considered every CU tick, so the caller
 * caches the result and this function must not allocate in steady
 * state.
 * @param line_size cache line size in bytes (power of two).
 */
void coalesceInto(const GpuOp &op, unsigned line_size,
                  std::vector<Addr> &out);

/** Convenience wrapper returning a fresh vector (tests, benches). */
std::vector<Addr> coalesce(const GpuOp &op, unsigned line_size);

} // namespace migc

#endif // MIGC_GPU_COALESCER_HH
