/**
 * @file
 * Kernel and wavefront-program descriptions.
 *
 * A kernel is a grid of workgroups; each workgroup is a fixed number
 * of 64-lane wavefronts. Every wavefront executes a program - a
 * sequence of vector ALU ops, vector memory ops, LDS ops, and memory
 * waits - generated lazily per wavefront by the workload so that
 * multi-gigabyte access streams never have to be stored.
 */

#ifndef MIGC_GPU_KERNEL_HH
#define MIGC_GPU_KERNEL_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace migc
{

/** Scope of the synchronization ending a kernel (Section III). */
enum class SyncScope : std::uint8_t
{
    /** GPU-internal boundary: caches self-invalidate clean data. */
    device,
    /** CPU-visible boundary: additionally flush all L2 dirty data. */
    system,
};

enum class GpuOpType : std::uint8_t
{
    valu,      ///< vector ALU work; occupies the SIMD
    vload,     ///< vector load; coalesced into line requests
    vstore,    ///< vector store; coalesced, posted
    lds,       ///< local-data-share access; no memory traffic
    waitLoads, ///< block until all of this wavefront's loads return
};

/** One wavefront-level instruction. */
struct GpuOp
{
    GpuOpType type = GpuOpType::valu;

    /** SIMD occupancy in cycles (valu/lds). */
    std::uint32_t cycles = 4;

    /** Vector operations represented (feeds the GVOPS metric). */
    std::uint32_t vops = 1;

    /** Lane-0 byte address (vload/vstore). */
    Addr base = 0;

    /** Byte stride between consecutive lanes (vload/vstore). */
    std::int64_t laneStride = 4;

    /** Active lanes (vload/vstore); <= wavefront size. */
    std::uint32_t lanes = 64;

    /** Static PC of this instruction (vload/vstore). */
    Addr pc = 0;
};

using WavefrontProgram = std::vector<GpuOp>;

/**
 * Convenience builder giving every static memory instruction a
 * stable synthetic PC: pc = pc_base + 4 * site. Workloads pass the
 * same @p site for the same static instruction across wavefronts so
 * the PC-indexed reuse predictor sees coherent streams.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(Addr pc_base) : pcBase_(pc_base) {}

    /** @p count vector ALU ops, each occupying @p cycles_per cycles. */
    ProgramBuilder &
    valu(std::uint32_t count = 1, std::uint32_t cycles_per = 4)
    {
        GpuOp op;
        op.type = GpuOpType::valu;
        op.cycles = count * cycles_per;
        op.vops = count;
        prog_.push_back(op);
        return *this;
    }

    /** LDS traffic standing in for workgroup-local reuse. */
    ProgramBuilder &
    lds(std::uint32_t count = 1, std::uint32_t cycles_per = 2)
    {
        GpuOp op;
        op.type = GpuOpType::lds;
        op.cycles = count * cycles_per;
        op.vops = 0;
        prog_.push_back(op);
        return *this;
    }

    ProgramBuilder &
    load(unsigned site, Addr base, std::int64_t lane_stride = 4,
         std::uint32_t lanes = 64)
    {
        GpuOp op;
        op.type = GpuOpType::vload;
        op.cycles = 4;
        op.vops = 0;
        op.base = base;
        op.laneStride = lane_stride;
        op.lanes = lanes;
        op.pc = pcBase_ + 4 * site;
        prog_.push_back(op);
        return *this;
    }

    ProgramBuilder &
    store(unsigned site, Addr base, std::int64_t lane_stride = 4,
          std::uint32_t lanes = 64)
    {
        GpuOp op;
        op.type = GpuOpType::vstore;
        op.cycles = 4;
        op.vops = 0;
        op.base = base;
        op.laneStride = lane_stride;
        op.lanes = lanes;
        op.pc = pcBase_ + 4 * site;
        prog_.push_back(op);
        return *this;
    }

    /** Barrier on this wavefront's outstanding loads. */
    ProgramBuilder &
    waitLoads()
    {
        GpuOp op;
        op.type = GpuOpType::waitLoads;
        op.cycles = 1;
        op.vops = 0;
        prog_.push_back(op);
        return *this;
    }

    WavefrontProgram take() { return std::move(prog_); }

  private:
    Addr pcBase_;
    WavefrontProgram prog_;
};

/** One GPU kernel launch. */
struct KernelDesc
{
    std::string name = "kernel";
    std::uint32_t numWorkgroups = 1;
    std::uint32_t wavesPerWorkgroup = 4;
    SyncScope endScope = SyncScope::system;

    /** Base for the kernel's synthetic PCs; keep distinct per kernel
     *  shape so the predictor distinguishes static instructions. */
    Addr pcBase = 0x1000;

    /** Generate the program for wavefront @p wf of workgroup @p wg. */
    std::function<WavefrontProgram(std::uint32_t wg, std::uint32_t wf)>
        makeProgram;
};

/** Total wavefronts launched by @p k. */
std::uint64_t kernelTotalWavefronts(const KernelDesc &k);

} // namespace migc

#endif // MIGC_GPU_KERNEL_HH
