#include "gpu/coalescer.hh"

#include <algorithm>

#include "mem/addr_utils.hh"
#include "sim/logging.hh"

namespace migc
{

void
coalesceInto(const GpuOp &op, unsigned line_size, std::vector<Addr> &out)
{
    panic_if(op.type != GpuOpType::vload && op.type != GpuOpType::vstore,
             "coalescing a non-memory op");

    out.clear();
    for (std::uint32_t lane = 0; lane < op.lanes; ++lane) {
        Addr a = static_cast<Addr>(
            static_cast<std::int64_t>(op.base) +
            static_cast<std::int64_t>(lane) * op.laneStride);
        Addr line = alignDown(a, line_size);
        // Lane addresses overwhelmingly walk one line at a time, so
        // the previous unique line answers almost every duplicate;
        // fall back to the full first-touch-order scan otherwise.
        if (!out.empty() && out.back() == line)
            continue;
        if (std::find(out.begin(), out.end(), line) == out.end())
            out.push_back(line);
    }
}

std::vector<Addr>
coalesce(const GpuOp &op, unsigned line_size)
{
    std::vector<Addr> lines;
    lines.reserve(8);
    coalesceInto(op, line_size, lines);
    return lines;
}

} // namespace migc
