#include "gpu/coalescer.hh"

#include <algorithm>

#include "mem/addr_utils.hh"
#include "sim/logging.hh"

namespace migc
{

std::vector<Addr>
coalesce(const GpuOp &op, unsigned line_size)
{
    panic_if(op.type != GpuOpType::vload && op.type != GpuOpType::vstore,
             "coalescing a non-memory op");

    std::vector<Addr> lines;
    lines.reserve(8);
    for (std::uint32_t lane = 0; lane < op.lanes; ++lane) {
        Addr a = static_cast<Addr>(
            static_cast<std::int64_t>(op.base) +
            static_cast<std::int64_t>(lane) * op.laneStride);
        Addr line = alignDown(a, line_size);
        if (std::find(lines.begin(), lines.end(), line) == lines.end())
            lines.push_back(line);
    }
    return lines;
}

} // namespace migc
