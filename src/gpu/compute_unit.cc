#include "gpu/compute_unit.hh"

#include <algorithm>

#include "gpu/coalescer.hh"
#include "sim/logging.hh"

namespace migc
{

ComputeUnit::ComputeUnit(std::string name, EventQueue &eq,
                         PacketPool &pool, const GpuConfig &cfg,
                         unsigned cu_id)
    : SimObject(std::move(name), eq, ClockDomain(cfg.clockPeriod)),
      pktPool_(pool), cfg_(cfg), cuId_(cu_id),
      slots_(static_cast<std::size_t>(cfg.simdsPerCu) *
             cfg.wfSlotsPerSimd),
      simdBusyUntil_(cfg.simdsPerCu, 0),
      simdRoundRobin_(cfg.simdsPerCu, 0),
      memPort_(this->name() + ".mem", *this),
      tickEvent_([this] { tick(); }, this->name() + ".tick",
                 Event::cpuTickPriority, EventCategory::gpu)
{}

unsigned
ComputeUnit::freeWfSlots() const
{
    unsigned free_slots = 0;
    for (const auto &wf : slots_) {
        if (!wf.active)
            ++free_slots;
    }
    return free_slots;
}

void
ComputeUnit::startWorkgroup(std::uint32_t wg_id,
                            std::vector<WavefrontProgram> programs)
{
    panic_if(programs.size() > freeWfSlots(),
             "workgroup dispatched to a full CU");
    panic_if(wgLiveWaves_.contains(wg_id),
             "workgroup %u already live on %s", wg_id, name().c_str());

    wgLiveWaves_[wg_id] = static_cast<unsigned>(programs.size());

    for (std::size_t i = 0; i < programs.size(); ++i) {
        // Place each wavefront on the SIMD with the most free slots
        // to spread issue bandwidth.
        unsigned best_simd = 0;
        unsigned best_free = 0;
        for (unsigned s = 0; s < cfg_.simdsPerCu; ++s) {
            unsigned free_here = 0;
            for (unsigned k = 0; k < cfg_.wfSlotsPerSimd; ++k) {
                if (!slots_[s * cfg_.wfSlotsPerSimd + k].active)
                    ++free_here;
            }
            if (free_here > best_free) {
                best_free = free_here;
                best_simd = s;
            }
        }
        panic_if(best_free == 0, "no free slot despite capacity check");

        for (unsigned k = 0; k < cfg_.wfSlotsPerSimd; ++k) {
            auto idx = best_simd * cfg_.wfSlotsPerSimd + k;
            if (!slots_[idx].active) {
                Wavefront &wf = slots_[idx];
                wf.reset();
                wf.active = true;
                wf.wgId = wg_id;
                wf.wfId = static_cast<std::uint32_t>(i);
                wf.program = std::move(programs[i]);
                ++liveWavefronts_;
                ++statWavefrontsRun_;
                break;
            }
        }
    }
    signalWork();
}

bool
ComputeUnit::idle() const
{
    return liveWavefronts_ == 0 && memQueue_.empty() &&
           loadCtx_.empty() && outstandingStores_ == 0;
}

void
ComputeUnit::reset()
{
    panic_if(!idle(), "resetting CU %u with work in flight", cuId_);
    for (auto &wf : slots_)
        wf.reset();
    std::fill(simdBusyUntil_.begin(), simdBusyUntil_.end(), 0);
    std::fill(simdRoundRobin_.begin(), simdRoundRobin_.end(), 0u);
    memQueue_.clear();
    portBlocked_ = false;
    loadCtx_.clear();
    outstandingStores_ = 0;
    liveWavefronts_ = 0;
    wgLiveWaves_.clear();

    statVops_.reset();
    statLoadReqs_.reset();
    statStoreReqs_.reset();
    statLdsCycles_.reset();
    statActiveCycles_.reset();
    statWavefrontsRun_.reset();
}

void
ComputeUnit::signalWork()
{
    if (!tickEvent_.scheduled())
        eventQueue().schedule(&tickEvent_, clockEdge(Cycles(0)));
}

void
ComputeUnit::tick()
{
    ++statActiveCycles_;

    for (unsigned s = 0; s < cfg_.simdsPerCu; ++s) {
        if (simdBusyUntil_[s] <= curTick())
            issueFromSimd(s);
    }

    issueMemory();

    // Re-arm only while issueable work exists; blocked wavefronts are
    // woken by memory responses, port retries free the queue.
    bool more = !memQueue_.empty() && !portBlocked_;
    if (!more) {
        for (const auto &wf : slots_) {
            if (wf.active && !wf.instructionsDone() && !wf.waitingMem) {
                more = true;
                break;
            }
        }
    }
    // A workgroup completion inside this tick may have re-armed the
    // event via the dispatcher's startWorkgroup -> signalWork chain.
    if (more && !tickEvent_.scheduled())
        eventQueue().schedule(&tickEvent_, clockEdge(Cycles(1)));
}

bool
ComputeUnit::issueFromSimd(unsigned simd)
{
    unsigned base = simd * cfg_.wfSlotsPerSimd;
    for (unsigned n = 0; n < cfg_.wfSlotsPerSimd; ++n) {
        unsigned k = (simdRoundRobin_[simd] + n) % cfg_.wfSlotsPerSimd;
        int idx = static_cast<int>(base + k);
        Wavefront &wf = slots_[static_cast<std::size_t>(idx)];
        if (!wf.active || wf.instructionsDone() || wf.waitingMem)
            continue;
        if (executeOp(idx, wf)) {
            simdRoundRobin_[simd] = (k + 1) % cfg_.wfSlotsPerSimd;
            return true;
        }
    }
    return false;
}

bool
ComputeUnit::executeOp(int slot_index, Wavefront &wf)
{
    const GpuOp &op = wf.program[wf.pcIdx];
    unsigned simd = static_cast<unsigned>(slot_index) /
                    cfg_.wfSlotsPerSimd;

    switch (op.type) {
      case GpuOpType::valu:
        statVops_ += op.vops;
        simdBusyUntil_[simd] = clockEdge(Cycles(op.cycles));
        ++wf.pcIdx;
        break;

      case GpuOpType::lds:
        statLdsCycles_ += op.cycles;
        simdBusyUntil_[simd] = clockEdge(Cycles(op.cycles));
        ++wf.pcIdx;
        break;

      case GpuOpType::vload:
      case GpuOpType::vstore: {
        if (wf.coalescedPc != wf.pcIdx) {
            coalesceInto(op, cfg_.lineSize, wf.coalesced);
            wf.coalescedPc = wf.pcIdx;
        }
        const std::vector<Addr> &lines = wf.coalesced;
        if (memQueue_.size() + lines.size() > cfg_.memQueueDepth)
            return false; // try again when the queue drains
        bool is_load = op.type == GpuOpType::vload;
        for (Addr line : lines) {
            memQueue_.push_back(
                PendingLine{line, is_load, op.pc, slot_index});
            if (is_load) {
                ++wf.outstandingLoads;
                ++statLoadReqs_;
            } else {
                ++outstandingStores_;
                ++statStoreReqs_;
            }
        }
        simdBusyUntil_[simd] = clockEdge(Cycles(op.cycles));
        ++wf.pcIdx;
        break;
      }

      case GpuOpType::waitLoads:
        if (wf.outstandingLoads > 0) {
            wf.waitingMem = true;
            return false;
        }
        simdBusyUntil_[simd] = clockEdge(Cycles(op.cycles));
        ++wf.pcIdx;
        break;
    }

    if (wf.complete())
        wavefrontFinished(slot_index);
    return true;
}

void
ComputeUnit::issueMemory()
{
    unsigned sent = 0;
    while (!memQueue_.empty() && !portBlocked_ &&
           sent < cfg_.memIssueWidth) {
        const PendingLine &pl = memQueue_.front();
        Packet *pkt = pktPool_.alloc(pl.isLoad ? MemCmd::ReadReq
                                               : MemCmd::WriteReq,
                                     pl.addr, cfg_.lineSize, curTick());
        pkt->pc = pl.pc;
        pkt->cuId = static_cast<int>(cuId_);
        if (pl.isLoad)
            loadCtx_[pkt->id] = pl.slot;

        if (!memPort_.sendTimingReq(pkt)) {
            if (pl.isLoad)
                loadCtx_.erase(pkt->id);
            pktPool_.release(pkt);
            portBlocked_ = true;
            return;
        }
        memQueue_.pop_front();
        ++sent;
    }
}

void
ComputeUnit::handleResponse(PacketPtr pkt)
{
    switch (pkt->cmd) {
      case MemCmd::ReadResp: {
        auto it = loadCtx_.find(pkt->id);
        panic_if(it == loadCtx_.end(), "load response for unknown %s",
                 pkt->print().c_str());
        int slot = it->second;
        loadCtx_.erase(it);
        Wavefront &wf = slots_[static_cast<std::size_t>(slot)];
        panic_if(wf.outstandingLoads == 0, "spurious load response");
        --wf.outstandingLoads;
        if (wf.waitingMem && wf.outstandingLoads == 0) {
            wf.waitingMem = false;
            signalWork();
        }
        if (wf.complete())
            wavefrontFinished(slot);
        pktPool_.release(pkt);
        break;
      }
      case MemCmd::WriteResp:
        panic_if(outstandingStores_ == 0, "spurious store ack");
        --outstandingStores_;
        pktPool_.release(pkt);
        break;
      default:
        panic("unexpected response %s at CU %u", pkt->print().c_str(),
              cuId_);
    }
}

void
ComputeUnit::wavefrontFinished(int slot_index)
{
    Wavefront &wf = slots_[static_cast<std::size_t>(slot_index)];
    std::uint32_t wg = wf.wgId;
    wf.reset();
    panic_if(liveWavefronts_ == 0, "wavefront underflow");
    --liveWavefronts_;

    auto it = wgLiveWaves_.find(wg);
    panic_if(it == wgLiveWaves_.end(), "finish for unknown workgroup");
    if (--it->second == 0) {
        wgLiveWaves_.erase(it);
        if (wgCompleteCb_)
            wgCompleteCb_(cuId_);
    }
}

void
ComputeUnit::regStats(StatGroup &group)
{
    group.addScalar("vops", "vector ALU operations", &statVops_);
    group.addScalar("load_reqs", "coalesced line loads issued",
                    &statLoadReqs_);
    group.addScalar("store_reqs", "coalesced line stores issued",
                    &statStoreReqs_);
    group.addScalar("lds_cycles", "cycles spent on LDS ops",
                    &statLdsCycles_);
    group.addScalar("active_cycles", "cycles with issueable work",
                    &statActiveCycles_);
    group.addScalar("wavefronts", "wavefronts executed",
                    &statWavefrontsRun_);
}

} // namespace migc
