/**
 * @file
 * GPU device parameters (Table 1 derived; scaled presets in
 * core/sim_config).
 */

#ifndef MIGC_GPU_GPU_CONFIG_HH
#define MIGC_GPU_GPU_CONFIG_HH

#include <cstdint>

#include "sim/types.hh"

namespace migc
{

struct GpuConfig
{
    unsigned numCus = 64;
    unsigned simdsPerCu = 4;
    unsigned wfSlotsPerSimd = 10;
    unsigned wavefrontSize = 64;
    unsigned lineSize = 64;

    /** GPU clock: 1600 MHz -> 625 ps. */
    Tick clockPeriod = 625;

    /** Coalesced line requests the CU may issue to L1 per cycle. */
    unsigned memIssueWidth = 2;

    /** Per-CU buffer of coalesced line requests awaiting issue. */
    std::size_t memQueueDepth = 64;

    /** Host-side kernel launch overhead between kernels. */
    Tick launchLatency = 600 * simNanosecond;

    /** Interval for the dispatcher's end-of-kernel drain poll. */
    Cycles drainPollInterval{64};
};

} // namespace migc

#endif // MIGC_GPU_GPU_CONFIG_HH
