#include "gpu/kernel.hh"

namespace migc
{

std::uint64_t
kernelTotalWavefronts(const KernelDesc &k)
{
    return static_cast<std::uint64_t>(k.numWorkgroups) *
           k.wavesPerWorkgroup;
}

} // namespace migc
