#include "serve/serve_service.hh"

#include <chrono>
#include <exception>

#include "core/cache_v4.hh"
#include "policy/policy_registry.hh"
#include "sim/logging.hh"
#include "workloads/workload.hh"

namespace migc
{

namespace
{

double
msSince(std::chrono::steady_clock::time_point t0)
{
    using namespace std::chrono;
    return duration_cast<duration<double, std::milli>>(
               steady_clock::now() - t0)
        .count();
}

} // namespace

ServeService::ServeService(SweepEngine &engine)
    : ServeService(engine, Options())
{}

ServeService::ServeService(SweepEngine &engine, Options opts)
    : engine_(engine), opts_(opts)
{
    // Zero-copy start when possible: map the cache file and serve
    // straight from its interned columns, deferring the engine's
    // parsing loader to the first cold miss. Any non-mappable file
    // (csv text, appended-but-not-compacted v4, torn tail, missing)
    // takes the classic parse-into-snapshot path.
    const auto t0 = std::chrono::steady_clock::now();
    std::shared_ptr<const CacheSnapshot> snap;
    if (!opts_.cachePath.empty()) {
        std::string why;
        if (auto file = MappedCacheV4::map(opts_.cachePath, &why)) {
            snap = CacheSnapshot::fromMappedFile(std::move(file));
            format_ = "v4-mmap";
        } else {
            inform("serve: cache %s is not mmap-servable (%s); "
                   "parsing it instead",
                   opts_.cachePath.c_str(), why.c_str());
        }
    }
    if (snap == nullptr) {
        snap = engine_.snapshot();
        format_ = engine_.cacheFileFormat();
    }
    loadMs_ = msSince(t0);
    snapshot_.store(std::move(snap));

    presets_.emplace("default", SimConfig::defaultConfig());
    presets_.emplace("paper", SimConfig::paperConfig());
    presets_.emplace("test", SimConfig::testConfig());
    for (const auto &[name, cfg] : presets_)
        sigToPreset_.emplace(cfg.signature(), name);
    if (opts_.simulate)
        worker_ = std::thread([this] { missWorker(); });
}

ServeService::~ServeService()
{
    {
        std::lock_guard<std::mutex> lk(missMu_);
        stop_ = true;
    }
    missCv_.notify_all();
    drainCv_.notify_all();
    if (worker_.joinable())
        worker_.join();
}

const SimConfig *
ServeService::configFor(const std::string &token,
                        std::string &sig_out) const
{
    auto pit = presets_.find(token);
    if (pit != presets_.end()) {
        sig_out = pit->second.signature();
        return &pit->second;
    }
    // Not a preset: treat the token as a signature. It is still
    // simulatable if it happens to be a preset's signature.
    sig_out = token;
    auto sit = sigToPreset_.find(token);
    if (sit != sigToPreset_.end())
        return &presets_.at(sit->second);
    return nullptr;
}

std::string
ServeService::handleGet(const ServeRequest &req)
{
    std::string sig;
    const SimConfig *cfg = configFor(req.config, sig);
    std::shared_ptr<const CacheSnapshot> snap = snapshot_.load();
    // findCsv works on both snapshot representations: a mapped
    // snapshot answers by interned-id binary search with no
    // materialized rows to point at, so the serialization-level
    // query is the one serving interface.
    std::string out;
    if (snap->findCsv(sig, req.workload, req.policy, out)) {
        served_.fetch_add(1, std::memory_order_relaxed);
        out += '\n';
        return out;
    }

    const std::string point = csprintf(
        "%s/%s/%s", req.config.c_str(), req.workload.c_str(),
        req.policy.c_str());
    if (!opts_.simulate)
        return csprintf("# miss %s\n", point.c_str());
    if (cfg == nullptr) {
        return csprintf(
            "# error: %s not cached, and config '%s' is not a preset "
            "(default, paper, test) - cannot simulate it\n",
            point.c_str(), req.config.c_str());
    }
    if (!WorkloadRegistry::instance().known(req.workload)) {
        return csprintf("# error: unknown workload '%s'\n",
                        req.workload.c_str());
    }
    if (!PolicyRegistry::instance().known(req.policy)) {
        return csprintf("# error: unknown policy '%s'\n",
                        req.policy.c_str());
    }

    PointKey key{sig, req.workload, req.policy};
    std::lock_guard<std::mutex> lk(missMu_);
    // Re-check the freshest snapshot under the miss lock: the worker
    // publishes a new snapshot *before* erasing a job from pending_,
    // so a point absent from this load and absent from pending_ has
    // genuinely never been enqueued - each cold grid point enqueues
    // exactly one simulation no matter how many clients ask.
    snap = snapshot_.load();
    if (snap->findCsv(sig, req.workload, req.policy, out)) {
        served_.fetch_add(1, std::memory_order_relaxed);
        out += '\n';
        return out;
    }
    if (pending_.count(key)) {
        return csprintf(
            "# miss %s: simulation already enqueued (wait, then "
            "re-get)\n",
            point.c_str());
    }
    pending_.insert(key);
    queue_.push_back(
        MissJob{*cfg, req.workload, req.policy, std::move(key)});
    enqueued_.fetch_add(1, std::memory_order_relaxed);
    missCv_.notify_one();
    return csprintf(
        "# miss %s: simulation enqueued (wait, then re-get)\n",
        point.c_str());
}

std::string
ServeService::handleMatch(const ServeRequest &req)
{
    // A preset name resolves to that preset's exact signature;
    // anything else globs over section signatures directly (a
    // glob-free signature matches itself literally).
    std::string sig_pattern = req.config;
    auto pit = presets_.find(req.config);
    if (pit != presets_.end())
        sig_pattern = pit->second.signature();

    std::shared_ptr<const CacheSnapshot> snap = snapshot_.load();
    std::string out;
    // matchCsv evaluates each glob once per distinct interned string
    // on a mapped snapshot (not once per row) before scanning keys.
    const std::size_t n =
        snap->matchCsv(sig_pattern, req.workload, req.policy, out);
    served_.fetch_add(n, std::memory_order_relaxed);
    out += csprintf("# matched %zu row%s\n", n, n == 1 ? "" : "s");
    return out;
}

std::string
ServeService::handleStats()
{
    std::shared_ptr<const CacheSnapshot> snap = snapshot_.load();
    std::size_t pending;
    std::uint64_t publishes;
    double publish_ms;
    {
        std::lock_guard<std::mutex> lk(missMu_);
        pending = pending_.size();
        publishes = publishes_;
        publish_ms = lastPublishMs_;
    }
    return csprintf(
        "# stats rows=%zu sections=%zu served=%llu "
        "miss-enqueues=%llu pending=%zu simulated=%llu "
        "format=%s load_ms=%.1f publishes=%llu publish_ms=%.1f\n",
        snap->rows(), snap->sectionCount(),
        static_cast<unsigned long long>(served_.load()),
        static_cast<unsigned long long>(enqueued_.load()), pending,
        static_cast<unsigned long long>(
            engine_.simulationsPerformed()),
        format_.c_str(), loadMs_,
        static_cast<unsigned long long>(publishes), publish_ms);
}

std::string
ServeService::handleLine(const std::string &line)
{
    ServeRequest req = parseServeRequest(line);
    switch (req.kind) {
      case ServeRequest::Kind::none:
        return "";
      case ServeRequest::Kind::get:
        return handleGet(req);
      case ServeRequest::Kind::match:
        return handleMatch(req);
      case ServeRequest::Kind::stats:
        return handleStats();
      case ServeRequest::Kind::wait:
        drain();
        return "# drained\n";
      case ServeRequest::Kind::help:
        return serveHelpText();
      case ServeRequest::Kind::error:
        return csprintf("# error: %s\n", req.error.c_str());
      case ServeRequest::Kind::lease:
      case ServeRequest::Kind::done:
      case ServeRequest::Kind::renew:
      case ServeRequest::Kind::push:
      case ServeRequest::Kind::fetch:
        // Fleet verbs share the wire format (serve_protocol.hh) but
        // only a migc_sweep coordinator can answer them: this
        // service has a cache, not a work queue (and must never
        // accept a push payload it would have to discard unframed).
        return "# error: lease/done/renew/push/fetch are "
               "fleet-coordinator verbs (migc_sweep); this is a "
               "serve cache\n";
    }
    return csprintf("# error: unhandled request\n");
}

void
ServeService::drain()
{
    std::unique_lock<std::mutex> lk(missMu_);
    drainCv_.wait(lk, [this] {
        return pending_.empty() || stop_;
    });
}

void
ServeService::missWorker()
{
    for (;;) {
        MissJob job;
        {
            std::unique_lock<std::mutex> lk(missMu_);
            missCv_.wait(lk, [this] {
                return stop_ || !queue_.empty();
            });
            if (stop_)
                return;
            job = std::move(queue_.front());
            queue_.pop_front();
        }
        try {
            const RunMetrics &row =
                engine_.get(job.cfg, job.workload, job.policy);
            // The engine only hands back a placeholder under an
            // active shard spec, which migc_serve refuses to start
            // under - but a served zero row would silently poison
            // clients, so check anyway. Builder::add() drops it from
            // the snapshot; just complain.
            if (row.placeholder) {
                warn("miss worker got a placeholder row for %s/%s; "
                     "not publishing it",
                     job.workload.c_str(), job.policy.c_str());
            }
        } catch (const std::exception &e) {
            warn("simulate-on-miss for %s/%s failed: %s",
                 job.workload.c_str(), job.policy.c_str(), e.what());
        }
        // Publish before erasing from pending_ (see handleGet). On a
        // service that started mmap'd, the first publish is also the
        // switch to a materialized snapshot: engine_.snapshot() made
        // the engine parse the cache file (same rows, plus the fresh
        // one), so nothing the mapped snapshot served is lost.
        const auto t0 = std::chrono::steady_clock::now();
        snapshot_.store(engine_.snapshot());
        const double publish_ms = msSince(t0);
        {
            std::lock_guard<std::mutex> lk(missMu_);
            pending_.erase(job.key);
            ++publishes_;
            lastPublishMs_ = publish_ms;
        }
        drainCv_.notify_all();
    }
}

} // namespace migc
