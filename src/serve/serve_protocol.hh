/**
 * @file
 * The migc_serve wire protocol: newline-delimited text requests.
 *
 * One request per line, whitespace-separated tokens:
 *
 *   get <config> <workload> <policy>     exact-key lookup
 *   match <config> <workload> <policy>   glob lookup ('*', '?')
 *   stats                                one-line counters
 *   wait                                 block until misses drain
 *   help                                 protocol summary
 *
 * The elastic shard fleet (core/fleet.hh) reuses this layer for its
 * coordinator socket; its verbs parse here too, and each side
 * rejects the other's verbs at dispatch (a serve cache cannot grant
 * leases, a fleet coordinator has no rows to `get`):
 *
 *   lease <worker> <gridhash>            request a run-key range
 *   done <worker> <leaseid> <key>        report one completed key
 *   renew <worker> <leaseid>             extend the lease deadline
 *   push <worker> <leaseid> <bytes> <checksum>
 *                                        upload the worker's shard
 *                                        cache: exactly <bytes> raw
 *                                        bytes follow the newline,
 *                                        cache_v4-checksummed
 *   fetch <shard>                        download the coordinator's
 *                                        stored copy of a shard file
 *
 * Blank lines and lines starting with '#' are ignored (so a cache
 * file or a recorded session can be replayed as input). Responses
 * are newline-delimited too: result rows are raw RunMetrics CSV
 * (byte-identical to the v3 cache file), everything else - status,
 * errors, the `match` trailer - starts with '#', so a client (or CI)
 * separates data from status with one grep.
 *
 * This header is pure parsing: text in, ServeRequest out. The
 * semantics live in serve_service.hh.
 */

#ifndef MIGC_SERVE_SERVE_PROTOCOL_HH
#define MIGC_SERVE_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

namespace migc
{

/** One parsed request line. */
struct ServeRequest
{
    enum class Kind
    {
        none,  ///< blank / comment: no response at all
        get,   ///< exact key lookup
        match, ///< glob lookup
        stats,
        wait,
        help,
        error, ///< unparseable; `error` holds the message
        lease, ///< fleet: request a run-key range
        done,  ///< fleet: report one completed key
        renew, ///< fleet: extend a lease deadline
        push,  ///< fleet: upload a shard cache file (payload follows)
        fetch, ///< fleet: download a stored shard cache file
    };

    Kind kind = Kind::none;

    /** Operands of get/match (config, workload, policy). */
    std::string config;
    std::string workload;
    std::string policy;

    /** Fleet operands (lease/done/renew/push/fetch). */
    unsigned worker = 0;        ///< worker index (fetch: shard index)
    std::uint64_t leaseId = 0;  ///< done/renew/push: which lease
    std::uint64_t gridHash = 0; ///< lease: the worker's grid print
    std::uint32_t key = 0;      ///< done: completed grid index
    std::uint64_t bytes = 0;    ///< push: payload byte count
    std::uint64_t checksum = 0; ///< push: payload v4Checksum

    /** Parse-error message for Kind::error. */
    std::string error;
};

/** The largest push payload a coordinator accepts (a shard cache is
 *  a few MB even for the full paper grid; anything near this bound
 *  is a corrupted or hostile header, not a cache file). */
constexpr std::uint64_t kServeMaxPushBytes = 1ull << 30;

/** Split @p line on runs of spaces/tabs (no quoting: cache names
 *  reject whitespace-adjacent forms anyway, see sim/names.hh). */
std::vector<std::string> serveTokens(const std::string &line);

/** Parse one request line (never throws; bad input returns
 *  Kind::error with a message naming the problem). */
ServeRequest parseServeRequest(const std::string &line);

/** The `help` response body (each line '#'-prefixed). */
std::string serveHelpText();

} // namespace migc

#endif // MIGC_SERVE_SERVE_PROTOCOL_HH
