/**
 * @file
 * ServeService: the warm-cache query service behind bench/migc_serve.
 *
 * The service wraps one SweepEngine and serves its results to any
 * number of concurrent clients:
 *
 *  - Reads are lock-free: clients query an immutable CacheSnapshot
 *    (cache_snapshot.hh) loaded from one atomic shared_ptr. A
 *    snapshot is never mutated; queries touch no engine lock.
 *
 *  - Cold points fall through to simulate-on-miss: the first `get`
 *    of an uncached grid point enqueues exactly one simulation job
 *    and returns immediately ('# miss ... simulation enqueued'); a
 *    single background worker runs jobs through SweepEngine::get,
 *    then publishes a new snapshot and swaps the atomic pointer, so
 *    the next query is a warm hit. `wait` blocks until the queue
 *    drains.
 *
 *  - Placeholder rows are refused twice over: CacheSnapshot::Builder
 *    never indexes one, and the miss path re-checks the flag on
 *    whatever the engine returns - an all-zero shard stand-in is
 *    served to nobody.
 *
 * handleLine() is safe to call from any number of threads (the
 * socket front end runs one thread per connection).
 */

#ifndef MIGC_SERVE_SERVE_SERVICE_HH
#define MIGC_SERVE_SERVE_SERVICE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <tuple>

#include "core/cache_snapshot.hh"
#include "core/sweep_engine.hh"
#include "serve/serve_protocol.hh"

namespace migc
{

class ServeService
{
  public:
    struct Options
    {
        /** When false, cold points answer '# miss' without ever
         *  enqueueing a simulation (pure warm-cache mode). */
        bool simulate = true;

        /**
         * The cache file backing @p engine. When set and the file is
         * a clean single-segment v4 cache, the service starts on a
         * zero-copy mmap'd snapshot (cache_v4.hh): serving begins
         * after a map + checksum pass instead of a full parse, and
         * the engine's own loader runs only if a cold miss needs a
         * simulation (the first publish then swaps in a materialized
         * snapshot). Unset - or any non-mappable file - falls back
         * to engine.snapshot(), which parses the cache.
         */
        std::string cachePath;
    };

    /**
     * Serve @p engine's results. The engine must outlive the
     * service and must not run under an active shard spec (a shard
     * worker answers foreign points with placeholders, which this
     * service exists to never serve - the caller checks).
     */
    explicit ServeService(SweepEngine &engine);
    ServeService(SweepEngine &engine, Options opts);

    /** Drains nothing: pending misses are abandoned (their rows are
     *  still cached by the engine if they finished). */
    ~ServeService();

    ServeService(const ServeService &) = delete;
    ServeService &operator=(const ServeService &) = delete;

    /**
     * Answer one protocol line (serve_protocol.hh). Returns the full
     * response, every line '\n'-terminated; empty for blank/comment
     * input. Thread-safe; `wait` blocks the calling client only.
     */
    std::string handleLine(const std::string &line);

    /** Block until every enqueued miss has simulated + published. */
    void drain();

    /** Result rows returned to clients (hits, not misses). */
    std::uint64_t served() const { return served_.load(); }

    /** Simulation jobs enqueued by cold `get`s (each cold grid
     *  point counts exactly once; repeats join the pending job). */
    std::uint64_t missEnqueues() const { return enqueued_.load(); }

    /** How the initial serving snapshot came to be: "v4-mmap" for a
     *  zero-copy mapped start, else the cache file's parsed format
     *  ("v4", "v3", "v2", "foreign", "none"). */
    const std::string &snapshotFormat() const { return format_; }

    /** Wall time the initial snapshot took (map+checksum or full
     *  parse), in milliseconds. */
    double loadMs() const { return loadMs_; }

    /** Rows in the currently served snapshot. */
    std::size_t snapshotRows() const { return snapshot_.load()->rows(); }

  private:
    /** (sig, workload, policy) - one grid point. */
    using PointKey = std::tuple<std::string, std::string, std::string>;

    /** A pending simulate-on-miss job. */
    struct MissJob
    {
        SimConfig cfg;
        std::string workload;
        std::string policy;
        PointKey key;
    };

    std::string handleGet(const ServeRequest &req);
    std::string handleMatch(const ServeRequest &req);
    std::string handleStats();

    /** Resolve a config token: preset name or exact signature with a
     *  known preset config. Returns nullptr when no SimConfig is
     *  known for it (still serveable from the snapshot by sig). */
    const SimConfig *configFor(const std::string &token,
                               std::string &sig_out) const;

    /** The background simulate-on-miss worker loop. */
    void missWorker();

    SweepEngine &engine_;
    Options opts_;

    /** See snapshotFormat() / loadMs(). Set once in the ctor. */
    std::string format_;
    double loadMs_ = 0.0;

    /** Preset configs by name and by signature. */
    std::map<std::string, SimConfig> presets_;
    std::map<std::string, std::string> sigToPreset_;

    /** The serving surface; load() to query, store() to publish. */
    std::atomic<std::shared_ptr<const CacheSnapshot>> snapshot_;

    std::atomic<std::uint64_t> served_{0};
    std::atomic<std::uint64_t> enqueued_{0};

    /** Miss queue state, all guarded by missMu_. */
    std::mutex missMu_;
    std::condition_variable missCv_;  ///< signals the worker
    std::condition_variable drainCv_; ///< signals drain() waiters
    std::deque<MissJob> queue_;
    std::set<PointKey> pending_; ///< queued or in flight
    bool stop_ = false;

    /** Snapshot publications by the miss worker and the wall time of
     *  the latest one (guarded by missMu_; stats reporting). */
    std::uint64_t publishes_ = 0;
    double lastPublishMs_ = 0.0;

    std::thread worker_;
};

} // namespace migc

#endif // MIGC_SERVE_SERVE_SERVICE_HH
