#include "serve/transport.hh"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace migc
{

// ---------------------------------------------------------------------
// Endpoint
// ---------------------------------------------------------------------

std::string
Endpoint::spec() const
{
    if (kind == Kind::tcp)
        return csprintf("tcp:%s:%u", host.c_str(),
                        static_cast<unsigned>(port));
    return "unix:" + path;
}

Endpoint
parseEndpoint(const std::string &spec)
{
    Endpoint ep;
    fatal_if(spec.empty(), "empty transport endpoint (want "
                           "unix:<path> or tcp:<host>:<port>)");
    if (spec.rfind("unix:", 0) == 0) {
        ep.path = spec.substr(5);
        fatal_if(ep.path.empty(),
                 "endpoint '%s': unix: needs a socket path",
                 spec.c_str());
        return ep;
    }
    if (spec.rfind("tcp:", 0) == 0) {
        const std::string rest = spec.substr(4);
        const std::size_t colon = rest.rfind(':');
        fatal_if(colon == std::string::npos || colon == 0 ||
                     colon + 1 == rest.size(),
                 "endpoint '%s': tcp: wants tcp:<host>:<port>",
                 spec.c_str());
        ep.kind = Endpoint::Kind::tcp;
        ep.host = rest.substr(0, colon);
        const std::string port = rest.substr(colon + 1);
        std::uint64_t p = 0;
        for (char c : port) {
            fatal_if(c < '0' || c > '9',
                     "endpoint '%s': port '%s' is not a number",
                     spec.c_str(), port.c_str());
            p = p * 10 + static_cast<std::uint64_t>(c - '0');
            fatal_if(p > 65535,
                     "endpoint '%s': port %s out of range [0, 65535]",
                     spec.c_str(), port.c_str());
        }
        ep.port = static_cast<std::uint16_t>(p);
        return ep;
    }
    // No scheme: a bare AF_UNIX path, so pre-TCP command lines and
    // tests keep working unchanged.
    ep.path = spec;
    return ep;
}

// ---------------------------------------------------------------------
// FdStream
// ---------------------------------------------------------------------

FdStream::~FdStream()
{
    if (fd_ >= 0)
        ::close(fd_);
}

ssize_t
FdStream::read(void *buf, std::size_t n)
{
    for (;;) {
        ssize_t r = ::read(fd_, buf, n);
        if (r < 0 && errno == EINTR)
            continue;
        return r;
    }
}

bool
FdStream::writeAll(const void *buf, std::size_t n)
{
    const char *p = static_cast<const char *>(buf);
    std::size_t off = 0;
    while (off < n) {
        ssize_t w = ::write(fd_, p + off, n - off);
        if (w < 0 && errno == EINTR)
            continue;
        if (w <= 0)
            return false;
        off += static_cast<std::size_t>(w);
    }
    return true;
}

void
FdStream::shutdown()
{
    ::shutdown(fd_, SHUT_RDWR);
}

// ---------------------------------------------------------------------
// Listener / connectTo
// ---------------------------------------------------------------------

namespace
{

void
fillUnixAddr(const std::string &path, sockaddr_un &addr)
{
    addr = sockaddr_un{};
    addr.sun_family = AF_UNIX;
    fatal_if(path.size() >= sizeof(addr.sun_path),
             "unix socket path too long (%zu bytes, max %zu): %s",
             path.size(), sizeof(addr.sun_path) - 1, path.c_str());
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);
}

/** getaddrinfo over the endpoint's host/port; fatal on failure for
 *  the bind path, error-string for the connect path. */
addrinfo *
resolveTcp(const Endpoint &ep, bool passive, std::string *error)
{
    addrinfo hints{};
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    if (passive)
        hints.ai_flags = AI_PASSIVE;
    addrinfo *res = nullptr;
    const std::string port = std::to_string(ep.port);
    int rc = ::getaddrinfo(ep.host.c_str(), port.c_str(), &hints,
                           &res);
    if (rc != 0) {
        if (error != nullptr) {
            *error = csprintf("resolve %s: %s", ep.host.c_str(),
                              ::gai_strerror(rc));
        }
        return nullptr;
    }
    return res;
}

void
setNoDelay(int fd)
{
    // Every protocol exchange is one small line each way; Nagle
    // would serialize the fleet on 40 ms ACK-delay stalls.
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

} // namespace

Listener::~Listener()
{
    stop();
}

void
Listener::bind(const Endpoint &ep)
{
    ep_ = ep;
    if (ep.kind == Endpoint::Kind::unix_) {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        fatal_if(fd_ < 0, "socket(AF_UNIX): %s",
                 std::strerror(errno));
        sockaddr_un addr;
        fillUnixAddr(ep.path, addr);
        ::unlink(ep.path.c_str()); // stale socket from a prior run
        fatal_if(::bind(fd_, reinterpret_cast<sockaddr *>(&addr),
                        sizeof(addr)) != 0,
                 "bind(%s): %s", ep.path.c_str(),
                 std::strerror(errno));
    } else {
        std::string err;
        addrinfo *res = resolveTcp(ep, true, &err);
        fatal_if(res == nullptr, "%s", err.c_str());
        int last_errno = 0;
        for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
            int fd = ::socket(ai->ai_family, ai->ai_socktype,
                              ai->ai_protocol);
            if (fd < 0) {
                last_errno = errno;
                continue;
            }
            // Coordinator restarts must not wait out TIME_WAIT.
            int one = 1;
            ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one,
                         sizeof(one));
            if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
                fd_ = fd;
                break;
            }
            last_errno = errno;
            ::close(fd);
        }
        ::freeaddrinfo(res);
        fatal_if(fd_ < 0, "bind(%s): %s", ep.spec().c_str(),
                 std::strerror(last_errno));
        // Port 0 asked the kernel to pick: report the real port so
        // workers (and tests) can be pointed at it.
        sockaddr_storage ss{};
        socklen_t slen = sizeof(ss);
        if (::getsockname(fd_, reinterpret_cast<sockaddr *>(&ss),
                          &slen) == 0) {
            if (ss.ss_family == AF_INET) {
                ep_.port = ntohs(
                    reinterpret_cast<sockaddr_in *>(&ss)->sin_port);
            } else if (ss.ss_family == AF_INET6) {
                ep_.port = ntohs(
                    reinterpret_cast<sockaddr_in6 *>(&ss)
                        ->sin6_port);
            }
        }
    }
    fatal_if(::listen(fd_, 64) != 0, "listen(%s): %s",
             ep_.spec().c_str(), std::strerror(errno));
}

std::unique_ptr<Stream>
Listener::accept()
{
    for (;;) {
        int fd = ::accept(fd_, nullptr, nullptr);
        if (fd < 0) {
            if (stopped_)
                return nullptr;
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            return nullptr;
        }
        if (ep_.kind == Endpoint::Kind::tcp)
            setNoDelay(fd);
        return std::make_unique<FdStream>(fd);
    }
}

void
Listener::stop()
{
    if (stopped_)
        return;
    stopped_ = true;
    if (fd_ >= 0) {
        // shutdown() alone does not unblock accept() on all kernels;
        // close() does, and accept() treats the error as the stop
        // signal.
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
    if (ep_.kind == Endpoint::Kind::unix_ && !ep_.path.empty())
        ::unlink(ep_.path.c_str());
}

std::unique_ptr<Stream>
connectTo(const Endpoint &ep, std::string *error)
{
    if (ep.kind == Endpoint::Kind::unix_) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            if (error != nullptr) {
                *error = csprintf("socket(AF_UNIX): %s",
                                  std::strerror(errno));
            }
            return nullptr;
        }
        sockaddr_un addr;
        fillUnixAddr(ep.path, addr);
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            if (error != nullptr) {
                *error = csprintf("connect(%s): %s", ep.path.c_str(),
                                  std::strerror(errno));
            }
            ::close(fd);
            return nullptr;
        }
        return std::make_unique<FdStream>(fd);
    }

    addrinfo *res = resolveTcp(ep, false, error);
    if (res == nullptr)
        return nullptr;
    int last_errno = 0;
    int fd = -1;
    for (addrinfo *ai = res; ai != nullptr; ai = ai->ai_next) {
        int s = ::socket(ai->ai_family, ai->ai_socktype,
                         ai->ai_protocol);
        if (s < 0) {
            last_errno = errno;
            continue;
        }
        if (::connect(s, ai->ai_addr, ai->ai_addrlen) == 0) {
            fd = s;
            break;
        }
        last_errno = errno;
        ::close(s);
    }
    ::freeaddrinfo(res);
    if (fd < 0) {
        if (error != nullptr) {
            *error = csprintf("connect(%s): %s", ep.spec().c_str(),
                              std::strerror(last_errno));
        }
        return nullptr;
    }
    setNoDelay(fd);
    return std::make_unique<FdStream>(fd);
}

// ---------------------------------------------------------------------
// FaultPlan
// ---------------------------------------------------------------------

std::string
FaultPlan::trace() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return trace_;
}

void
FaultPlan::note(const std::string &line)
{
    std::lock_guard<std::mutex> lk(mu_);
    trace_ += line;
    trace_ += '\n';
}

unsigned
FaultPlan::nextConn()
{
    std::lock_guard<std::mutex> lk(mu_);
    return conns_++;
}

// ---------------------------------------------------------------------
// FaultyStream
// ---------------------------------------------------------------------

namespace
{

/**
 * One direction of a faulted connection. Feed source bytes in, take
 * deliverable bytes out of `out`; `closed` means the active fault
 * tore the stream. Faults apply strictly in list order, one at a
 * time, and offsets always index the unfaulted source stream, so
 * the outcome is independent of how the kernel chunks the bytes.
 */
struct FaultChannel
{
    const char *name = "?";
    unsigned conn = 0;
    FaultPlan *plan = nullptr;
    std::vector<StreamFault> faults;
    std::size_t ai = 0;       ///< active fault index
    std::uint64_t off = 0;    ///< logical source bytes consumed
    bool closed = false;
    bool finished = false;    ///< eof trace line emitted
    std::string out;          ///< deliverable bytes
    std::uint64_t outHash = 0xcbf29ce484222325ull;

    // Active-fault state.
    bool resolved = false;    ///< trigger offset known
    std::uint64_t trigger = 0;
    bool inRange = false;     ///< consumed the trigger byte already
    std::string hold;         ///< delay: the captured range
    bool delayPending = false; ///< range captured; counting passed
    std::uint64_t passed = 0;
    std::string dup;          ///< duplicate: the captured range

    // Match scanning.
    std::size_t seen = 0;     ///< pattern occurrences so far
    std::string carry;        ///< cross-chunk match window tail
    std::uint64_t carryOff = 0;

    Rng rng{1};

    void emit(const char *p, std::size_t n)
    {
        out.append(p, n);
        for (std::size_t i = 0; i < n; ++i) {
            outHash = splitmix64(
                outHash ^ static_cast<unsigned char>(p[i]));
        }
    }

    void
    fire(const char *what)
    {
        plan->note(csprintf("conn%u %s %s @%llu", conn, name, what,
                            static_cast<unsigned long long>(trigger)));
    }

    void
    nextFault()
    {
        ++ai;
        resolved = false;
        inRange = false;
        seen = 0;
        carry.clear();
        carryOff = off;
    }

    void
    releaseHold()
    {
        if (!hold.empty()) {
            std::string h;
            h.swap(hold);
            emit(h.data(), h.size());
        }
        if (delayPending || inRange) {
            fire("delay-release");
            delayPending = false;
            nextFault();
        }
    }

    /** Resolve the active fault's trigger against the bytes about to
     *  be consumed. Returns true when the trigger is known. */
    bool
    resolveTrigger(const char *p, std::size_t i, std::size_t n)
    {
        const StreamFault &f = faults[ai];
        if (f.match.empty()) {
            trigger = f.offset;
            resolved = true;
            return true;
        }
        // Incremental search over carry + the unconsumed chunk for
        // the Nth occurrence; carryOff is the logical offset of
        // carry[0].
        std::string window = carry;
        window.append(p + i, n - i);
        std::size_t pos = 0;
        while ((pos = window.find(f.match, pos)) !=
               std::string::npos) {
            ++seen;
            if (seen >= f.matchNth) {
                trigger = carryOff + pos + f.offset;
                resolved = true;
                return true;
            }
            ++pos;
        }
        const std::size_t keep =
            f.match.empty() ? 0 : f.match.size() - 1;
        if (window.size() > keep) {
            carryOff += window.size() - keep;
            window.erase(0, window.size() - keep);
        }
        carry = std::move(window);
        return false;
    }

    void
    feed(const char *p, std::size_t n)
    {
        std::size_t i = 0;
        while (i < n && !closed) {
            if (delayPending) {
                // Let holdBytes later bytes pass, then flush the
                // held range behind them.
                const StreamFault &f = faults[ai];
                std::size_t take = static_cast<std::size_t>(
                    std::min<std::uint64_t>(n - i,
                                            f.holdBytes - passed));
                emit(p + i, take);
                i += take;
                off += take;
                passed += take;
                if (passed >= f.holdBytes)
                    releaseHold();
                continue;
            }
            if (ai >= faults.size()) {
                emit(p + i, n - i);
                off += n - i;
                return;
            }
            if (!resolved && !resolveTrigger(p, i, n)) {
                emit(p + i, n - i);
                off += n - i;
                return;
            }
            if (off < trigger) {
                // Clean bytes before the trigger.
                std::size_t take = static_cast<std::size_t>(
                    std::min<std::uint64_t>(n - i, trigger - off));
                emit(p + i, take);
                i += take;
                off += take;
                continue;
            }
            // A match may resolve to a trigger that already passed
            // (offset pointing into delivered bytes): apply from
            // here, deterministically. Never once the range started
            // consuming, though - re-clamping at a mid-range chunk
            // boundary would stretch the range by the chunking, and
            // outcomes must not depend on how the kernel splits
            // reads.
            if (trigger < off && !inRange)
                trigger = off;

            const StreamFault &f = faults[ai];
            const std::uint64_t range_end = trigger + f.len;
            std::size_t take = static_cast<std::size_t>(
                std::min<std::uint64_t>(n - i, range_end - off));
            switch (f.op) {
              case StreamFault::Op::truncate:
                fire("truncate");
                closed = true;
                return;
              case StreamFault::Op::drop:
                inRange = true;
                i += take; // swallowed
                off += take;
                if (off >= range_end) {
                    fire("drop");
                    closed = true;
                }
                continue;
              case StreamFault::Op::corrupt: {
                inRange = true;
                std::string buf(p + i, take);
                for (char &c : buf) {
                    // 1 + below(255) is never zero: every byte in
                    // the range really changes.
                    c = static_cast<char>(
                        static_cast<unsigned char>(c) ^
                        static_cast<unsigned char>(
                            1 + rng.below(255)));
                }
                emit(buf.data(), buf.size());
                i += take;
                off += take;
                if (off >= range_end) {
                    fire("corrupt");
                    nextFault();
                }
                continue;
              }
              case StreamFault::Op::duplicate:
                inRange = true;
                emit(p + i, take);
                dup.append(p + i, take);
                i += take;
                off += take;
                if (off >= range_end) {
                    fire("duplicate");
                    emit(dup.data(), dup.size());
                    dup.clear();
                    nextFault();
                }
                continue;
              case StreamFault::Op::delay:
                inRange = true;
                hold.append(p + i, take);
                i += take;
                off += take;
                if (off >= range_end) {
                    delayPending = true;
                    passed = 0;
                    if (f.holdBytes == 0)
                        releaseHold();
                }
                continue;
            }
        }
    }

    /** The direction stalled (reader waiting, writer turned around,
     *  or EOF): flush held bytes, finalize a mid-range drop. */
    void
    stall()
    {
        if (closed)
            return;
        if (ai < faults.size() && (inRange || delayPending)) {
            switch (faults[ai].op) {
              case StreamFault::Op::delay:
                releaseHold();
                break;
              case StreamFault::Op::drop:
                // The rest of the range is never coming (the writer
                // is waiting for a reply that depends on the
                // swallowed bytes): tear the connection now, like
                // the dead link this fault models.
                fire("drop");
                closed = true;
                break;
              case StreamFault::Op::duplicate:
                // Duplicate whatever part of the range arrived.
                fire("duplicate");
                emit(dup.data(), dup.size());
                dup.clear();
                nextFault();
                break;
              default:
                break;
            }
        }
    }

    void
    finish()
    {
        // Idempotent: the read path finalizes on inner EOF and the
        // destructor finalizes whatever is left; the eof trace line
        // must appear exactly once per direction.
        if (finished)
            return;
        finished = true;
        stall();
        plan->note(csprintf(
            "conn%u %s eof bytes=%llu hash=%llu", conn, name,
            static_cast<unsigned long long>(off),
            static_cast<unsigned long long>(outHash)));
    }
};

class FaultyStream : public Stream
{
  public:
    FaultyStream(std::unique_ptr<Stream> inner,
                 std::shared_ptr<FaultPlan> plan)
        : inner_(std::move(inner)), plan_(std::move(plan))
    {
        const unsigned conn = plan_->nextConn();
        tx_.name = "tx";
        rx_.name = "rx";
        for (FaultChannel *ch : {&tx_, &rx_}) {
            ch->conn = conn;
            ch->plan = plan_.get();
            ch->carryOff = 0;
            ch->rng = Rng(deriveSeed(
                plan_->seed, csprintf("fault-%s-%u", ch->name,
                                      conn)));
        }
        for (const StreamFault &f : plan_->faults) {
            if (f.conn != conn)
                continue;
            (f.dir == StreamFault::Dir::tx ? tx_ : rx_)
                .faults.push_back(f);
        }
        plan_->note(csprintf("conn%u open", conn));
    }

    ~FaultyStream() override
    {
        if (!finished_) {
            finished_ = true;
            tx_.finish();
            rx_.finish();
        }
    }

    bool
    writeAll(const void *buf, std::size_t n) override
    {
        if (broken_)
            return false;
        tx_.feed(static_cast<const char *>(buf), n);
        bool ok = true;
        if (!tx_.out.empty()) {
            ok = inner_->writeAll(tx_.out);
            tx_.out.clear();
        }
        if (tx_.closed) {
            breakStream();
            return false;
        }
        return ok;
    }

    ssize_t
    read(void *buf, std::size_t n) override
    {
        for (;;) {
            if (!rx_.out.empty()) {
                std::size_t take = std::min(n, rx_.out.size());
                std::memcpy(buf, rx_.out.data(), take);
                rx_.out.erase(0, take);
                return static_cast<ssize_t>(take);
            }
            if (broken_ || rx_.closed) {
                breakStream();
                return 0;
            }
            // The writer is stalled waiting on the reply to what it
            // just wrote: any held tx bytes must go out now or
            // nobody ever answers.
            tx_.stall();
            if (!tx_.out.empty()) {
                inner_->writeAll(tx_.out);
                tx_.out.clear();
            }
            if (tx_.closed) {
                breakStream();
                return 0;
            }
            char chunk[4096];
            ssize_t r = inner_->read(chunk, sizeof(chunk));
            if (r <= 0) {
                rx_.finish();
                if (rx_.out.empty())
                    return r;
                continue;
            }
            rx_.feed(chunk, static_cast<std::size_t>(r));
            if (rx_.out.empty())
                rx_.stall(); // release holds / finalize drops
        }
    }

    void
    shutdown() override
    {
        inner_->shutdown();
    }

  private:
    void
    breakStream()
    {
        if (!broken_) {
            broken_ = true;
            inner_->shutdown();
        }
        if (!finished_) {
            finished_ = true;
            tx_.finish();
            rx_.finish();
        }
    }

    std::unique_ptr<Stream> inner_;
    std::shared_ptr<FaultPlan> plan_;
    FaultChannel tx_, rx_;
    bool broken_ = false;
    bool finished_ = false;
};

} // namespace

std::unique_ptr<Stream>
wrapFaulty(std::unique_ptr<Stream> inner,
           std::shared_ptr<FaultPlan> plan)
{
    return std::make_unique<FaultyStream>(std::move(inner),
                                          std::move(plan));
}

} // namespace migc
