/**
 * @file
 * The byte transport under the fleet and serve sockets.
 *
 * PR 8's fleet coordinator and migc_serve each open-coded an AF_UNIX
 * listener; this header extracts the plumbing behind three small
 * types so the same protocol code runs over a local socket or TCP:
 *
 *  - Endpoint / parseEndpoint: one spec string names the transport.
 *    `unix:<path>` is an AF_UNIX stream socket, `tcp:<host>:<port>`
 *    an IPv4/IPv6 TCP socket (port 0 asks the kernel for an
 *    ephemeral port; Listener::bound() reports the real one). A bare
 *    string with no scheme is an AF_UNIX path, so every pre-TCP
 *    command line keeps working unchanged.
 *
 *  - Stream: a connected byte stream (read / writeAll / shutdown).
 *    FdStream wraps a socket fd; tests substitute in-memory fakes.
 *
 *  - Listener: bind + accept over an Endpoint, stoppable from
 *    another thread (stop() closes the fd, which unblocks accept).
 *
 * connectTo() dials an Endpoint and, on failure, reports the
 * underlying errno string instead of swallowing it - a fleet worker
 * that cannot reach its coordinator must say *why* (wrong host,
 * refused port, missing socket file).
 *
 * The bottom half is the deterministic fault-injection shim the
 * chaos tests (tests/test_fleet_faults.cc) drive: wrapFaulty() wraps
 * any Stream in a FaultyStream that drops, truncates, duplicates,
 * delays, or bit-flips bytes at scripted offsets of the logical
 * (unfaulted) byte stream. No real clocks anywhere: "delay" is byte
 * *reordering* (hold a range until N later bytes pass, or the
 * direction stalls), "drop" and "truncate" tear the connection the
 * way a dead link would, and "corrupt" XORs with masks derived from
 * a sim/rng.hh stream, so the same seed + schedule always produces
 * the same byte trace (FaultPlan::trace(), pinned by a replay test).
 */

#ifndef MIGC_SERVE_TRANSPORT_HH
#define MIGC_SERVE_TRANSPORT_HH

#include <sys/types.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace migc
{

/** One parsed transport address. */
struct Endpoint
{
    enum class Kind
    {
        unix_, ///< AF_UNIX stream socket at `path`
        tcp,   ///< TCP stream socket at `host`:`port`
    };

    Kind kind = Kind::unix_;
    std::string path;        ///< unix: filesystem path
    std::string host;        ///< tcp: hostname or numeric address
    std::uint16_t port = 0;  ///< tcp: port (0 = ephemeral on bind)

    /** The canonical spec string ("unix:/x" / "tcp:host:port"). */
    std::string spec() const;
};

/**
 * Parse `unix:<path>`, `tcp:<host>:<port>`, or a bare AF_UNIX path
 * (anything without one of those schemes). Fatal on malformed specs
 * (empty path, missing or non-numeric port) - a mistyped endpoint
 * must never silently become a relative socket file.
 */
Endpoint parseEndpoint(const std::string &spec);

/**
 * A connected byte stream. Not internally synchronized: one reader
 * and one writer at a time (the fleet client serializes transactions
 * on its own mutex; the servers use one thread per connection).
 */
class Stream
{
  public:
    virtual ~Stream() = default;

    /** Up to @p n bytes; 0 on EOF, negative on error. Blocking. */
    virtual ssize_t read(void *buf, std::size_t n) = 0;

    /** All @p n bytes or false. */
    virtual bool writeAll(const void *buf, std::size_t n) = 0;

    bool writeAll(const std::string &s)
    {
        return writeAll(s.data(), s.size());
    }

    /** Tear both directions; unblocks a concurrent read(). Safe to
     *  call from another thread (that is its whole purpose). */
    virtual void shutdown() {}
};

/** Stream over a connected socket fd (owned; closed on destroy). */
class FdStream : public Stream
{
  public:
    explicit FdStream(int fd) : fd_(fd) {}
    ~FdStream() override;

    FdStream(const FdStream &) = delete;
    FdStream &operator=(const FdStream &) = delete;

    ssize_t read(void *buf, std::size_t n) override;
    bool writeAll(const void *buf, std::size_t n) override;
    void shutdown() override;

  private:
    int fd_;
};

/** Bind + accept over an Endpoint. */
class Listener
{
  public:
    Listener() = default;
    ~Listener();

    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;

    /** Bind and listen. Fatal on errors (an unreachable coordinator
     *  is never worth a silent single-process fallback). For
     *  tcp:*:0 the kernel picks the port; bound() has the real one.
     *  For unix endpoints a stale socket file is unlinked first. */
    void bind(const Endpoint &ep);

    /** One accepted connection, or nullptr once stop() was called
     *  (or on a non-transient accept error). Blocking. */
    std::unique_ptr<Stream> accept();

    /** Close the listening socket; unblocks accept(). Idempotent.
     *  Unix endpoints also unlink their socket file. */
    void stop();

    /** The endpoint actually bound (tcp port resolved). */
    const Endpoint &bound() const { return ep_; }

  private:
    int fd_ = -1;
    bool stopped_ = false;
    Endpoint ep_;
};

/**
 * Dial @p ep once. nullptr on failure with the underlying errno
 * string (plus the failing step) in @p error - the caller decides
 * whether to retry, and its final fatal can say what actually went
 * wrong instead of "could not reach".
 */
std::unique_ptr<Stream> connectTo(const Endpoint &ep,
                                  std::string *error);

// ---------------------------------------------------------------------
// Deterministic fault injection
// ---------------------------------------------------------------------

/**
 * One scripted fault. Offsets index the *logical* byte stream of one
 * direction of one connection - the bytes as the faulted side wrote
 * (tx) or the peer sent (rx) them, before any fault applied - so a
 * schedule is reproducible no matter how the kernel chunks reads.
 * When @p match is set, the trigger is `offset` bytes past the start
 * of the @p matchNth occurrence of the pattern in that stream (so a
 * test can say "the 2nd `done` line" without counting bytes).
 *
 * Faults on one channel fire in list order, one at a time.
 */
struct StreamFault
{
    enum class Op
    {
        drop,      ///< swallow the range, then tear the connection
        truncate,  ///< deliver up to the trigger, then tear it
        duplicate, ///< deliver the range twice
        delay,     ///< reorder: hold the range behind holdBytes
                   ///< later bytes (released at EOF / stall)
        corrupt,   ///< XOR the range with seeded nonzero masks
    };

    enum class Dir
    {
        tx, ///< bytes the wrapped side writes
        rx, ///< bytes the wrapped side reads
    };

    Op op = Op::drop;
    Dir dir = Dir::tx;
    unsigned conn = 0;          ///< which connection (0 = first)
    std::uint64_t offset = 0;   ///< absolute, or relative to match
    std::uint64_t len = 1;      ///< bytes in the range
    std::string match;          ///< optional pattern trigger
    std::size_t matchNth = 1;   ///< 1-based occurrence of match
    std::uint64_t holdBytes = 0; ///< delay: later bytes to let pass
};

/**
 * A fault schedule shared across a client's reconnects: each
 * StreamFault names the connection it applies to, wrapFaulty()
 * counts connections, and the trace records every fault firing plus
 * a per-connection digest of the bytes each direction delivered.
 * Same seed + same schedule + same scripted input = same trace
 * (asserted by the replay test).
 */
struct FaultPlan
{
    std::vector<StreamFault> faults;
    std::uint64_t seed = 1; ///< corrupt-mask RNG stream

    /** The deterministic event log ("\n"-joined). */
    std::string trace() const;

    /** Append one trace line (internal; locked). */
    void note(const std::string &line);

    /** Next connection index (internal; locked). */
    unsigned nextConn();

  private:
    mutable std::mutex mu_;
    std::string trace_;
    unsigned conns_ = 0;
};

/** Applied to every (re)connected stream of a FleetClient; tests
 *  install wrapFaulty() here, production leaves it empty. */
using StreamWrapper = std::function<std::unique_ptr<Stream>(
    std::unique_ptr<Stream>)>;

/** Wrap @p inner in the fault shim for the plan's next connection. */
std::unique_ptr<Stream> wrapFaulty(std::unique_ptr<Stream> inner,
                                   std::shared_ptr<FaultPlan> plan);

} // namespace migc

#endif // MIGC_SERVE_TRANSPORT_HH
