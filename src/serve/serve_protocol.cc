#include "serve/serve_protocol.hh"

#include "sim/logging.hh"

namespace migc
{

std::vector<std::string>
serveTokens(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t' || line[i] == '\r'))
            ++i;
        std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
               line[i] != '\r')
            ++i;
        if (i > start)
            out.push_back(line.substr(start, i - start));
    }
    return out;
}

namespace
{

ServeRequest
badRequest(std::string message)
{
    ServeRequest req;
    req.kind = ServeRequest::Kind::error;
    req.error = std::move(message);
    return req;
}

} // namespace

ServeRequest
parseServeRequest(const std::string &line)
{
    ServeRequest req;
    std::vector<std::string> tok = serveTokens(line);
    if (tok.empty() || tok[0][0] == '#')
        return req; // blank / comment: Kind::none
    const std::string &verb = tok[0];
    if (verb == "get" || verb == "match") {
        if (tok.size() != 4) {
            return badRequest(csprintf(
                "%s takes exactly 3 operands: %s <config> <workload> "
                "<policy> (got %zu)",
                verb.c_str(), verb.c_str(), tok.size() - 1));
        }
        req.kind = verb == "get" ? ServeRequest::Kind::get
                                 : ServeRequest::Kind::match;
        req.config = tok[1];
        req.workload = tok[2];
        req.policy = tok[3];
        return req;
    }
    if (verb == "stats" || verb == "wait" || verb == "help") {
        if (tok.size() != 1) {
            return badRequest(
                csprintf("%s takes no operands", verb.c_str()));
        }
        req.kind = verb == "stats" ? ServeRequest::Kind::stats
                   : verb == "wait" ? ServeRequest::Kind::wait
                                    : ServeRequest::Kind::help;
        return req;
    }
    return badRequest(csprintf(
        "unknown command '%s' (try: help)", verb.c_str()));
}

std::string
serveHelpText()
{
    return
        "# get <config> <workload> <policy>   exact lookup; hit "
        "prints one CSV row,\n"
        "#                                    cold prints '# miss "
        "...' and simulates\n"
        "# match <config> <workload> <policy> glob lookup ('*', "
        "'?'); rows then\n"
        "#                                    '# matched N'\n"
        "# stats                              one-line counters\n"
        "# wait                               block until enqueued "
        "misses finish\n"
        "# help                               this text\n"
        "# <config> is a preset (default, paper, test) or a config "
        "signature;\n"
        "# match also globs over signatures. Rows are v3 cache CSV, "
        "status lines\n"
        "# start with '#'.\n";
}

} // namespace migc
