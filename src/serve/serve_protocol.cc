#include "serve/serve_protocol.hh"

#include "sim/logging.hh"

namespace migc
{

std::vector<std::string>
serveTokens(const std::string &line)
{
    std::vector<std::string> out;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() &&
               (line[i] == ' ' || line[i] == '\t' || line[i] == '\r'))
            ++i;
        std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t' &&
               line[i] != '\r')
            ++i;
        if (i > start)
            out.push_back(line.substr(start, i - start));
    }
    return out;
}

namespace
{

ServeRequest
badRequest(std::string message)
{
    ServeRequest req;
    req.kind = ServeRequest::Kind::error;
    req.error = std::move(message);
    return req;
}

/** Strict decimal uint64: the whole token, no sign, no overflow. */
bool
parseU64(const std::string &tok, std::uint64_t &out)
{
    if (tok.empty())
        return false;
    std::uint64_t v = 0;
    for (char c : tok) {
        if (c < '0' || c > '9')
            return false;
        std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (v > (UINT64_MAX - digit) / 10)
            return false;
        v = v * 10 + digit;
    }
    out = v;
    return true;
}

} // namespace

ServeRequest
parseServeRequest(const std::string &line)
{
    ServeRequest req;
    std::vector<std::string> tok = serveTokens(line);
    if (tok.empty() || tok[0][0] == '#')
        return req; // blank / comment: Kind::none
    const std::string &verb = tok[0];
    if (verb == "get" || verb == "match") {
        if (tok.size() != 4) {
            return badRequest(csprintf(
                "%s takes exactly 3 operands: %s <config> <workload> "
                "<policy> (got %zu)",
                verb.c_str(), verb.c_str(), tok.size() - 1));
        }
        req.kind = verb == "get" ? ServeRequest::Kind::get
                                 : ServeRequest::Kind::match;
        req.config = tok[1];
        req.workload = tok[2];
        req.policy = tok[3];
        return req;
    }
    if (verb == "stats" || verb == "wait" || verb == "help") {
        if (tok.size() != 1) {
            return badRequest(
                csprintf("%s takes no operands", verb.c_str()));
        }
        req.kind = verb == "stats" ? ServeRequest::Kind::stats
                   : verb == "wait" ? ServeRequest::Kind::wait
                                    : ServeRequest::Kind::help;
        return req;
    }
    if (verb == "fetch") {
        // fetch <shard>: download the coordinator's stored copy of
        // shard <shard>'s cache file (core/fleet.hh).
        if (tok.size() != 2) {
            return badRequest(
                "fetch takes exactly 1 operand: fetch <shard>");
        }
        std::uint64_t shard = 0;
        if (!parseU64(tok[1], shard) || shard > 4095) {
            return badRequest(csprintf(
                "fetch: shard index '%s' is not an integer in "
                "[0, 4095]",
                tok[1].c_str()));
        }
        req.worker = static_cast<unsigned>(shard);
        req.kind = ServeRequest::Kind::fetch;
        return req;
    }
    if (verb == "lease" || verb == "done" || verb == "renew" ||
        verb == "push") {
        // Fleet verbs (core/fleet.hh):
        //   lease <worker> <gridhash>
        //   done <worker> <leaseid> <key>
        //   renew <worker> <leaseid>
        //   push <worker> <leaseid> <bytes> <checksum>
        const std::size_t want =
            verb == "done" ? 4 : verb == "push" ? 5 : 3;
        if (tok.size() != want) {
            return badRequest(csprintf(
                "%s takes exactly %zu operands (got %zu; try: help)",
                verb.c_str(), want - 1, tok.size() - 1));
        }
        std::uint64_t worker = 0;
        if (!parseU64(tok[1], worker) || worker > 4095) {
            return badRequest(csprintf(
                "%s: worker index '%s' is not an integer in "
                "[0, 4095]",
                verb.c_str(), tok[1].c_str()));
        }
        req.worker = static_cast<unsigned>(worker);
        if (verb == "lease") {
            if (!parseU64(tok[2], req.gridHash)) {
                return badRequest(csprintf(
                    "lease: grid fingerprint '%s' is not a decimal "
                    "uint64",
                    tok[2].c_str()));
            }
            req.kind = ServeRequest::Kind::lease;
            return req;
        }
        if (!parseU64(tok[2], req.leaseId)) {
            return badRequest(csprintf(
                "%s: lease id '%s' is not a decimal uint64",
                verb.c_str(), tok[2].c_str()));
        }
        if (verb == "renew") {
            req.kind = ServeRequest::Kind::renew;
            return req;
        }
        if (verb == "push") {
            if (!parseU64(tok[3], req.bytes) ||
                req.bytes > kServeMaxPushBytes) {
                return badRequest(csprintf(
                    "push: byte count '%s' is not an integer in "
                    "[0, %llu]",
                    tok[3].c_str(),
                    static_cast<unsigned long long>(
                        kServeMaxPushBytes)));
            }
            if (!parseU64(tok[4], req.checksum)) {
                return badRequest(csprintf(
                    "push: checksum '%s' is not a decimal uint64",
                    tok[4].c_str()));
            }
            req.kind = ServeRequest::Kind::push;
            return req;
        }
        std::uint64_t key = 0;
        if (!parseU64(tok[3], key) || key > UINT32_MAX) {
            return badRequest(csprintf(
                "done: grid index '%s' is not an integer in "
                "[0, 2^32)",
                tok[3].c_str()));
        }
        req.key = static_cast<std::uint32_t>(key);
        req.kind = ServeRequest::Kind::done;
        return req;
    }
    return badRequest(csprintf(
        "unknown command '%s' (try: help)", verb.c_str()));
}

std::string
serveHelpText()
{
    return
        "# get <config> <workload> <policy>   exact lookup; hit "
        "prints one CSV row,\n"
        "#                                    cold prints '# miss "
        "...' and simulates\n"
        "# match <config> <workload> <policy> glob lookup ('*', "
        "'?'); rows then\n"
        "#                                    '# matched N'\n"
        "# stats                              one-line counters\n"
        "# wait                               block until enqueued "
        "misses finish\n"
        "# help                               this text\n"
        "# <config> is a preset (default, paper, test) or a config "
        "signature;\n"
        "# match also globs over signatures. Rows are v3 cache CSV, "
        "status lines\n"
        "# start with '#'.\n"
        "# lease/done/renew/push/fetch are fleet-coordinator verbs "
        "(migc_sweep;\n"
        "# see docs/SWEEPS.md): they share this wire format but are "
        "answered only\n"
        "# by a sweep coordinator socket, never by migc_serve. "
        "push streams a\n"
        "# checksummed shard cache upload (raw payload after the "
        "header line);\n"
        "# fetch streams a stored shard file back.\n";
}

} // namespace migc
