#include "dram/channel.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace migc
{

Channel::Channel(std::string name, EventQueue &eq, const DramConfig &cfg,
                 const AddressMap &map, unsigned index,
                 RespondFn respond, SpaceFn space_freed)
    : SimObject(std::move(name), eq, ClockDomain(cfg.tBurst)),
      cfg_(cfg), map_(map), index_(index), respond_(std::move(respond)),
      spaceFreed_(std::move(space_freed)), banks_(cfg.banksPerChannel),
      serviceEvent_([this] { serviceQueues(); }, this->name() + ".service",
                    Event::defaultPriority, EventCategory::dram)
{}

bool
Channel::enqueue(PacketPtr pkt)
{
    DramCoord coord = map_.decode(pkt->addr);
    panic_if(coord.channel != index_, "packet routed to wrong channel");

    bool is_write = isWriteCmd(pkt->cmd);
    auto &q = is_write ? writeQ_ : readQ_;
    std::size_t depth = is_write ? cfg_.writeQDepth : cfg_.readQDepth;
    if (q.size() >= depth)
        return false;

    // Writes are acked at the queue (point of global visibility) and
    // drain later; the requester may free the packet once the ack
    // arrives, so the queue entry must not retain the pointer.
    q.push_back(QueueEntry{is_write ? nullptr : pkt, coord, curTick()});

    if (is_write) {
        pkt->makeResponse();
        respond_(pkt, curTick() + cfg_.respLatency);
    } else {
        lastReadArrival_ = curTick();
    }

    scheduleNext(curTick());
    return true;
}

void
Channel::scheduleNext(Tick when)
{
    Tick at = std::max(when, curTick());
    if (!serviceEvent_.scheduled())
        eventQueue().schedule(&serviceEvent_, at);
    else if (serviceEvent_.when() > at)
        eventQueue().reschedule(&serviceEvent_, at);
}

std::size_t
Channel::pickFrFcfs(const std::deque<QueueEntry> &q) const
{
    std::size_t window = std::min<std::size_t>(q.size(),
                                               cfg_.schedulerWindow);
    // First ready row hit wins (first-ready); otherwise oldest (FCFS).
    for (std::size_t i = 0; i < window; ++i) {
        const auto &e = q[i];
        const Bank &bank = banks_[e.coord.bank];
        if (bank.classify(e.coord.row) == RowOutcome::hit &&
            bank.readyAt() <= curTick()) {
            return i;
        }
    }
    // Second pass: any row hit in the window, even if the bank is
    // still busy; keeping the streak beats strict age order.
    for (std::size_t i = 0; i < window; ++i) {
        const auto &e = q[i];
        if (banks_[e.coord.bank].classify(e.coord.row) == RowOutcome::hit)
            return i;
    }
    return 0;
}

Tick
Channel::issue(QueueEntry &entry, bool is_write)
{
    Bank &bank = banks_[entry.coord.bank];

    RowOutcome outcome = bank.classify(entry.coord.row);
    if (is_write) {
        ++statWrites_;
        if (outcome == RowOutcome::hit)
            ++statWriteRowHits_;
        else if (outcome == RowOutcome::conflict)
            ++statWriteRowConflicts_;
    } else {
        ++statReads_;
        if (outcome == RowOutcome::hit)
            ++statReadRowHits_;
        else if (outcome == RowOutcome::conflict)
            ++statReadRowConflicts_;
    }

    // Command pipelining: CAS commands to an open row issue at the
    // burst rate (tCCD ~= tBurst); only precharge/activate serialize
    // a bank. The data bus transfers one burst per tBurst, so row-hit
    // streaks stream back-to-back while other banks' activations
    // overlap under them (FR-FCFS timing model).
    Tick cmd_ready = std::max(curTick(), bank.readyAt());
    Tick access_lat = bank.access(entry.coord.row, cfg_);

    Tick data_start = std::max(cmd_ready + access_lat, busFreeAt_);
    if (lastWasWrite_ != is_write) {
        data_start += is_write ? cfg_.tRtw : cfg_.tWtr;
        ++statTurnarounds_;
        lastWasWrite_ = is_write;
    }
    Tick done = data_start + cfg_.tBurst;

    busFreeAt_ = done;
    // Next command to this bank: after the activation completes plus
    // one tCCD slot; a row hit therefore frees the bank after one
    // burst slot. Write recovery is folded into an extra tWr for
    // writes (approximation documented in DESIGN.md).
    Tick bank_next = cmd_ready + (access_lat - cfg_.tCas) + cfg_.tBurst;
    if (is_write)
        bank_next += cfg_.tWr / 4;
    bank.setReadyAt(bank_next);
    return done;
}

void
Channel::serviceQueues()
{
    if (readQ_.empty() && writeQ_.empty())
        return;

    // Write drain hysteresis: commit to a write burst at the high
    // watermark, or eagerly when reads are absent and enough writes
    // have accumulated to amortize the bus turnaround. Small write
    // tails drain only after the read stream has been silent for a
    // while (liveness at kernel boundaries).
    if (writeMode_) {
        if (writeQ_.empty() ||
            (writeQ_.size() <= cfg_.writeLowWatermark &&
             !readQ_.empty())) {
            writeMode_ = false;
        }
    } else if (writeQ_.size() >= cfg_.writeHighWatermark) {
        writeMode_ = true;
    } else if (readQ_.empty() && !writeQ_.empty()) {
        if (writeQ_.size() >= cfg_.writeEagerThreshold ||
            curTick() >= lastReadArrival_ + cfg_.writeIdleDrainDelay) {
            writeMode_ = true;
        } else {
            // Defer: wait for reads to resume or the idle timeout.
            scheduleNext(lastReadArrival_ + cfg_.writeIdleDrainDelay);
            return;
        }
    }

    bool service_write = writeMode_ || readQ_.empty();
    if (service_write && writeQ_.empty())
        return; // deferred write tail; reads empty too
    auto &q = service_write ? writeQ_ : readQ_;
    panic_if(q.empty(), "servicing an empty DRAM queue");

    std::size_t idx = pickFrFcfs(q);
    QueueEntry entry = q[idx];
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));

    Tick done = issue(entry, service_write);

    if (service_write) {
        // Already acked at enqueue; the packet has been consumed by
        // the requester. Nothing more to send.
    } else {
        statReadQueueLatency_.sample(
            static_cast<double>(curTick() - entry.arrival));
        entry.pkt->makeResponse();
        respond_(entry.pkt, done + cfg_.respLatency);
    }

    (void)done;
    if (spaceFreed_)
        spaceFreed_();

    if (!readQ_.empty() || !writeQ_.empty()) {
        // One scheduling decision per burst slot: the bus is the
        // throughput limit; bank activations overlap underneath.
        scheduleNext(curTick() + cfg_.tBurst);
    }
}

void
Channel::reset()
{
    panic_if(!readQ_.empty(), "resetting channel with reads in flight");
    writeQ_.clear();
    for (Bank &bank : banks_)
        bank.reset();
    writeMode_ = false;
    busFreeAt_ = 0;
    lastWasWrite_ = false;
    lastReadArrival_ = 0;

    statReads_.reset();
    statWrites_.reset();
    statReadRowHits_.reset();
    statWriteRowHits_.reset();
    statReadRowConflicts_.reset();
    statWriteRowConflicts_.reset();
    statTurnarounds_.reset();
    statReadQueueLatency_.reset();
}

void
Channel::regStats(StatGroup &group)
{
    group.addScalar("reads", "read bursts serviced", &statReads_);
    group.addScalar("writes", "write bursts serviced", &statWrites_);
    group.addScalar("read_row_hits", "reads hitting an open row",
                    &statReadRowHits_);
    group.addScalar("write_row_hits", "writes hitting an open row",
                    &statWriteRowHits_);
    group.addScalar("read_row_conflicts", "reads closing another row",
                    &statReadRowConflicts_);
    group.addScalar("write_row_conflicts", "writes closing another row",
                    &statWriteRowConflicts_);
    group.addScalar("turnarounds", "bus direction switches",
                    &statTurnarounds_);
    group.addFormula("read_q_latency",
                     "mean ticks a read waited in the queue",
                     [this] { return statReadQueueLatency_.mean(); });
    group.addFormula("row_hit_rate", "row hits / all accesses", [this] {
        double total = statReads_.value() + statWrites_.value();
        return total > 0 ? rowHits() / total : 0.0;
    });
}

} // namespace migc
