#include "dram/dram_ctrl.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace migc
{

DramCtrl::DramCtrl(std::string name, EventQueue &eq, const DramConfig &cfg,
                   unsigned num_clients)
    : SimObject(std::move(name), eq), cfg_(cfg), map_(cfg)
{
    fatal_if(num_clients == 0, "memory controller needs a client");

    for (unsigned i = 0; i < num_clients; ++i) {
        ports_.push_back(std::make_unique<ClientPort>(
            this->name() + csprintf(".port%u", i), *this, i));
        respQueues_.push_back(std::make_unique<RespPacketQueue>(
            eventQueue(), *ports_.back(),
            this->name() + csprintf(".respq%u", i)));
    }
    clientWaiting_.assign(num_clients, false);

    for (unsigned c = 0; c < cfg_.channels; ++c) {
        channels_.push_back(std::make_unique<Channel>(
            this->name() + csprintf(".ch%u", c), eventQueue(), cfg_, map_,
            c,
            [this](PacketPtr pkt, Tick ready) {
                auto it = routeBack_.find(pkt->id);
                panic_if(it == routeBack_.end(),
                         "DRAM response for unknown packet %s",
                         pkt->print().c_str());
                unsigned dst = it->second;
                routeBack_.erase(it);
                respQueues_[dst]->push(pkt, ready);
            },
            [this] { handleChannelSpaceFreed(); }));
    }
}

ResponsePort &
DramCtrl::clientPort(unsigned i)
{
    panic_if(i >= ports_.size(), "bad DRAM client index %u", i);
    return *ports_[i];
}

bool
DramCtrl::handleRequest(unsigned src, PacketPtr pkt)
{
    DramCoord coord = map_.decode(pkt->addr);
    // Record the return route before enqueueing: writes are acked
    // from inside enqueue().
    routeBack_[pkt->id] = src;
    if (!channels_[coord.channel]->enqueue(pkt)) {
        routeBack_.erase(pkt->id);
        ++statRejects_;
        clientWaiting_[src] = true;
        return false;
    }
    return true;
}

void
DramCtrl::handleChannelSpaceFreed()
{
    for (unsigned i = 0; i < clientWaiting_.size(); ++i) {
        if (clientWaiting_[i]) {
            clientWaiting_[i] = false;
            ports_[i]->sendReqRetry();
        }
    }
}

void
DramCtrl::reset()
{
    panic_if(!routeBack_.empty(),
             "resetting DRAM with unanswered requests");
    for (auto &ch : channels_)
        ch->reset();
    for (auto &rq : respQueues_)
        rq->reset();
    std::fill(clientWaiting_.begin(), clientWaiting_.end(), false);
    statRejects_.reset();
}

void
DramCtrl::regStats(StatGroup &group)
{
    group.addScalar("rejects", "requests rejected on full channel queue",
                    &statRejects_);
    group.addFormula("reads", "total read bursts",
                     [this] { return totalReads(); });
    group.addFormula("writes", "total write bursts",
                     [this] { return totalWrites(); });
    group.addFormula("row_hit_rate", "row hits / accesses",
                     [this] { return rowHitRate(); });
    for (auto &ch : channels_) {
        // Channel names are unique; use the trailing component.
        auto dot = ch->name().rfind('.');
        ch->regStats(group.child(ch->name().substr(dot + 1)));
    }
}

double
DramCtrl::totalReads() const
{
    double v = 0;
    for (const auto &ch : channels_)
        v += ch->reads();
    return v;
}

double
DramCtrl::totalWrites() const
{
    double v = 0;
    for (const auto &ch : channels_)
        v += ch->writes();
    return v;
}

double
DramCtrl::totalRowHits() const
{
    double v = 0;
    for (const auto &ch : channels_)
        v += ch->rowHits();
    return v;
}

double
DramCtrl::rowHitRate() const
{
    double total = totalAccesses();
    return total > 0 ? totalRowHits() / total : 0.0;
}

} // namespace migc
