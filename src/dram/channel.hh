/**
 * @file
 * One DRAM channel: read/write queues, FR-FCFS scheduling, write
 * drain watermarks, and row-buffer statistics.
 *
 * Writes are acknowledged when they enter the channel queue (the
 * point of global visibility in this system); they drain to the
 * banks later, in row-friendly bursts, competing with reads for the
 * data bus exactly as in a real controller.
 */

#ifndef MIGC_DRAM_CHANNEL_HH
#define MIGC_DRAM_CHANNEL_HH

#include <deque>
#include <functional>
#include <vector>

#include "dram/address_map.hh"
#include "dram/bank.hh"
#include "dram/dram_config.hh"
#include "mem/packet.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace migc
{

class Channel : public SimObject
{
  public:
    /** Invoked when a read's data is available (owns routing). */
    using RespondFn = std::function<void(PacketPtr, Tick ready)>;

    /** Invoked when queue space frees (for upstream retries). */
    using SpaceFn = std::function<void()>;

    Channel(std::string name, EventQueue &eq, const DramConfig &cfg,
            const AddressMap &map, unsigned index,
            RespondFn respond, SpaceFn space_freed);

    /**
     * Try to accept @p pkt.
     * Writes are acked immediately via the respond callback; reads
     * respond when serviced. @return false when the queue is full.
     */
    bool enqueue(PacketPtr pkt);

    bool
    idle() const
    {
        return readQ_.empty() && writeQ_.empty();
    }

    /**
     * Drop queued work (acked posted writes may still be draining at
     * run end; their packets were consumed at the ack) and return
     * banks, bus, and stats to the just-constructed state. No read
     * may be in flight. Part of System::reset().
     */
    void reset();

    void regStats(StatGroup &group) override;

    // --- aggregate counters for the experiment harness ---
    double reads() const { return statReads_.value(); }
    double writes() const { return statWrites_.value(); }
    double rowHits() const
    {
        return statReadRowHits_.value() + statWriteRowHits_.value();
    }
    double readRowHits() const { return statReadRowHits_.value(); }
    double writeRowHits() const { return statWriteRowHits_.value(); }

  private:
    struct QueueEntry
    {
        PacketPtr pkt;
        DramCoord coord;
        Tick arrival;
    };

    void scheduleNext(Tick when);
    void serviceQueues();

    /**
     * Pick the FR-FCFS winner in @p q: the oldest row-hit within the
     * scheduler window, else the oldest entry. @return index into q.
     */
    std::size_t pickFrFcfs(const std::deque<QueueEntry> &q) const;

    /** Issue one entry to its bank; @return tick the burst completes. */
    Tick issue(QueueEntry &entry, bool is_write);

    const DramConfig &cfg_;
    const AddressMap &map_;
    unsigned index_;
    RespondFn respond_;
    SpaceFn spaceFreed_;

    std::vector<Bank> banks_;
    std::deque<QueueEntry> readQ_;
    std::deque<QueueEntry> writeQ_;

    bool writeMode_ = false;
    Tick busFreeAt_ = 0;
    bool lastWasWrite_ = false;
    Tick lastReadArrival_ = 0;

    EventFunctionWrapper serviceEvent_;

    StatScalar statReads_;
    StatScalar statWrites_;
    StatScalar statReadRowHits_;
    StatScalar statWriteRowHits_;
    StatScalar statReadRowConflicts_;
    StatScalar statWriteRowConflicts_;
    StatScalar statTurnarounds_;
    StatAverage statReadQueueLatency_;
};

} // namespace migc

#endif // MIGC_DRAM_CHANNEL_HH
