/**
 * @file
 * Physical address to channel/bank/row/column decomposition.
 *
 * Layout (low to high bits): line offset | channel | column | bank |
 * row. Striping channels at line granularity maximizes channel-level
 * parallelism for streaming kernels; placing the column bits below
 * the bank bits means a contiguous stream fills an entire row in one
 * bank before moving to the next bank, producing the long open-row
 * streaks whose disruption the paper studies.
 */

#ifndef MIGC_DRAM_ADDRESS_MAP_HH
#define MIGC_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "dram/dram_config.hh"
#include "sim/types.hh"

namespace migc
{

/** Decoded DRAM coordinates of one line address. */
struct DramCoord
{
    unsigned channel = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    unsigned column = 0;

    bool
    operator==(const DramCoord &o) const = default;
};

class AddressMap
{
  public:
    explicit AddressMap(const DramConfig &cfg);

    DramCoord decode(Addr addr) const;

    /**
     * A globally unique identifier of the DRAM row containing
     * @p addr, i.e. (channel, bank, row) flattened. Used by the L2
     * Dirty-Block Index for row-aware rinsing.
     */
    std::uint64_t rowId(Addr addr) const;

    /** Number of cache lines held by one DRAM row. */
    unsigned linesPerRow() const { return linesPerRow_; }

    unsigned channels() const { return channels_; }

  private:
    unsigned channels_;
    unsigned banks_;
    unsigned linesPerRow_;
    bool bankXor_;
    unsigned lineShift_;
    unsigned channelBits_;
    unsigned columnBits_;
    unsigned bankBits_;
};

} // namespace migc

#endif // MIGC_DRAM_ADDRESS_MAP_HH
