/**
 * @file
 * Per-bank open-row state machine.
 */

#ifndef MIGC_DRAM_BANK_HH
#define MIGC_DRAM_BANK_HH

#include <cstdint>

#include "dram/dram_config.hh"
#include "sim/types.hh"

namespace migc
{

/** Result of presenting an access to a bank. */
enum class RowOutcome : std::uint8_t
{
    hit,      ///< row already open
    closedMiss, ///< bank precharged; activate only
    conflict, ///< different row open; precharge + activate
};

/**
 * One DRAM bank: tracks the open row and the earliest tick the bank
 * can begin a new column access.
 */
class Bank
{
  public:
    /** Classify an access to @p row without changing state. */
    RowOutcome
    classify(std::uint64_t row) const
    {
        if (!rowOpen_)
            return RowOutcome::closedMiss;
        return row == openRow_ ? RowOutcome::hit : RowOutcome::conflict;
    }

    /**
     * Latency from bank-ready to data for an access to @p row, and
     * transition the bank state to "row open".
     */
    Tick access(std::uint64_t row, const DramConfig &cfg);

    Tick readyAt() const { return readyAt_; }

    /** Push back the earliest next access (bank busy / recovery). */
    void
    setReadyAt(Tick t)
    {
        if (t > readyAt_)
            readyAt_ = t;
    }

    bool rowOpen() const { return rowOpen_; }

    std::uint64_t openRow() const { return openRow_; }

    /** Precharge (close) the open row, e.g. on refresh. */
    void
    close()
    {
        rowOpen_ = false;
    }

    /** Forget all state (System::reset()). */
    void
    reset()
    {
        rowOpen_ = false;
        openRow_ = 0;
        readyAt_ = 0;
    }

  private:
    bool rowOpen_ = false;
    std::uint64_t openRow_ = 0;
    Tick readyAt_ = 0;
};

} // namespace migc

#endif // MIGC_DRAM_BANK_HH
