/**
 * @file
 * The multi-channel HBM2-like memory controller.
 *
 * Exposes one response port per client (L2 bank); requests are
 * routed to channels by the address map and responses are routed
 * back to the originating client.
 */

#ifndef MIGC_DRAM_DRAM_CTRL_HH
#define MIGC_DRAM_DRAM_CTRL_HH

#include <memory>
#include <unordered_map>
#include <vector>

#include "dram/address_map.hh"
#include "dram/channel.hh"
#include "dram/dram_config.hh"
#include "mem/packet_queue.hh"
#include "mem/port.hh"
#include "sim/sim_object.hh"
#include "sim/stats.hh"

namespace migc
{

class DramCtrl : public SimObject
{
  public:
    DramCtrl(std::string name, EventQueue &eq, const DramConfig &cfg,
             unsigned num_clients);

    /** Port facing client @p i (bind to an L2 bank's mem-side port). */
    ResponsePort &clientPort(unsigned i);

    const AddressMap &addressMap() const { return map_; }

    const DramConfig &config() const { return cfg_; }

    void regStats(StatGroup &group) override;

    /** Reset every channel, queue, and stat (System::reset()). */
    void reset();

    // --- aggregates for the experiment harness ---
    double totalReads() const;
    double totalWrites() const;
    double totalAccesses() const { return totalReads() + totalWrites(); }
    double totalRowHits() const;

    /** Row hit fraction over all serviced bursts. */
    double rowHitRate() const;

    bool
    allIdle() const
    {
        for (const auto &ch : channels_) {
            if (!ch->idle())
                return false;
        }
        return true;
    }

  private:
    bool handleRequest(unsigned src, PacketPtr pkt);
    void handleChannelSpaceFreed();

    class ClientPort : public ResponsePort
    {
      public:
        ClientPort(std::string name, DramCtrl &ctrl, unsigned index)
            : ResponsePort(std::move(name)), ctrl_(ctrl), index_(index)
        {}

        bool
        recvTimingReq(PacketPtr pkt) override
        {
            return ctrl_.handleRequest(index_, pkt);
        }

      private:
        DramCtrl &ctrl_;
        unsigned index_;
    };

    DramConfig cfg_;
    AddressMap map_;

    std::vector<std::unique_ptr<ClientPort>> ports_;
    std::vector<std::unique_ptr<RespPacketQueue>> respQueues_;
    std::vector<std::unique_ptr<Channel>> channels_;

    /** Request id -> client index for response routing. */
    std::unordered_map<std::uint64_t, unsigned> routeBack_;

    /** Clients waiting on a full channel queue. */
    std::vector<bool> clientWaiting_;

    StatScalar statRejects_;
};

} // namespace migc

#endif // MIGC_DRAM_DRAM_CTRL_HH
