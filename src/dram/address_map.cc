#include "dram/address_map.hh"

#include "mem/addr_utils.hh"
#include "sim/logging.hh"

namespace migc
{

AddressMap::AddressMap(const DramConfig &cfg)
    : channels_(cfg.channels), banks_(cfg.banksPerChannel),
      linesPerRow_(cfg.rowBytes / cfg.burstBytes),
      bankXor_(cfg.bankXorHash)
{
    fatal_if(!isPowerOf2(cfg.burstBytes), "burst size must be 2^n");
    fatal_if(!isPowerOf2(cfg.channels), "channel count must be 2^n");
    fatal_if(!isPowerOf2(cfg.banksPerChannel), "bank count must be 2^n");
    fatal_if(cfg.rowBytes % cfg.burstBytes != 0,
             "row size must be a multiple of the burst size");
    fatal_if(!isPowerOf2(linesPerRow_), "lines per row must be 2^n");

    lineShift_ = floorLog2(cfg.burstBytes);
    channelBits_ = floorLog2(cfg.channels);
    columnBits_ = floorLog2(linesPerRow_);
    bankBits_ = floorLog2(cfg.banksPerChannel);
}

DramCoord
AddressMap::decode(Addr addr) const
{
    std::uint64_t line = addr >> lineShift_;
    DramCoord c;
    c.channel = static_cast<unsigned>(line & ((1ULL << channelBits_) - 1));
    line >>= channelBits_;
    c.column = static_cast<unsigned>(line & ((1ULL << columnBits_) - 1));
    line >>= columnBits_;
    c.bank = static_cast<unsigned>(line & ((1ULL << bankBits_) - 1));
    line >>= bankBits_;
    c.row = line;
    if (bankXor_) {
        // Fold all row bits into the bank index so buffers at any
        // power-of-two offset land in different banks.
        std::uint64_t fold = c.row;
        fold ^= fold >> bankBits_;
        fold ^= fold >> (2 * bankBits_);
        fold ^= fold >> (4 * bankBits_);
        c.bank ^= static_cast<unsigned>(fold &
                                        ((1ULL << bankBits_) - 1));
    }
    return c;
}

std::uint64_t
AddressMap::rowId(Addr addr) const
{
    DramCoord c = decode(addr);
    return (c.row * banks_ + c.bank) * channels_ + c.channel;
}

} // namespace migc
