/**
 * @file
 * Geometry and timing parameters for the HBM2-like main memory.
 *
 * Defaults approximate one stack of HBM2 as in Table 1 of the paper
 * (scaled variants are produced by core/sim_config). All timings are
 * in ticks (picoseconds).
 */

#ifndef MIGC_DRAM_DRAM_CONFIG_HH
#define MIGC_DRAM_DRAM_CONFIG_HH

#include <cstddef>

#include "sim/types.hh"

namespace migc
{

struct DramConfig
{
    /** Independent channels (HBM2: 16 per stack). */
    unsigned channels = 16;

    /** Banks per channel. */
    unsigned banksPerChannel = 16;

    /** Row (page) size per channel, bytes. */
    unsigned rowBytes = 2048;

    /** Bytes transferred per burst; one cache line. */
    unsigned burstBytes = 64;

    /** Data-bus occupancy of one burst. */
    Tick tBurst = 2000;

    /** Column access latency (CAS). */
    Tick tCas = 14000;

    /** Activate (RAS-to-CAS) latency. */
    Tick tRcd = 14000;

    /** Precharge latency. */
    Tick tRp = 14000;

    /** Write recovery added to bank busy time after a write burst. */
    Tick tWr = 16000;

    /** Bus turnaround bubble when switching read -> write. */
    Tick tRtw = 4000;

    /** Bus turnaround bubble when switching write -> read. */
    Tick tWtr = 4000;

    /** Fixed response-path latency back to the requester. */
    Tick respLatency = 4000;

    /** Read queue capacity per channel. */
    std::size_t readQDepth = 64;

    /**
     * Write queue capacity per channel. Deep: it stands in for the
     * controller's write buffering plus the point-of-visibility
     * queueing above it, and keeps posted stores from head-of-line
     * blocking reads in the shared upstream queues.
     */
    std::size_t writeQDepth = 384;

    /** Enter write-drain mode at this write queue occupancy. */
    std::size_t writeHighWatermark = 96;

    /** Leave write-drain mode at this write queue occupancy. */
    std::size_t writeLowWatermark = 24;

    /**
     * When the read queue is momentarily empty, start an eager write
     * drain only above this occupancy - otherwise each read gap
     * would cost a bus turnaround for a couple of writes.
     */
    std::size_t writeEagerThreshold = 60;

    /**
     * Drain writes below the eager threshold only after the read
     * stream has been silent this long (liveness for write tails).
     */
    Tick writeIdleDrainDelay = 150 * simNanosecond;

    /** Oldest entries considered by the FR-FCFS scheduler. */
    unsigned schedulerWindow = 32;

    /**
     * Permutation-based bank interleaving: XOR the bank index with
     * the low row bits so same-offset buffers (tensor in / tensor
     * out) do not collide in the same banks. Standard in real
     * controllers and gem5.
     */
    bool bankXorHash = true;
};

} // namespace migc

#endif // MIGC_DRAM_DRAM_CONFIG_HH
