#include "dram/bank.hh"

namespace migc
{

Tick
Bank::access(std::uint64_t row, const DramConfig &cfg)
{
    Tick latency = 0;
    switch (classify(row)) {
      case RowOutcome::hit:
        latency = cfg.tCas;
        break;
      case RowOutcome::closedMiss:
        latency = cfg.tRcd + cfg.tCas;
        break;
      case RowOutcome::conflict:
        latency = cfg.tRp + cfg.tRcd + cfg.tCas;
        break;
    }
    rowOpen_ = true;
    openRow_ = row;
    return latency;
}

} // namespace migc
