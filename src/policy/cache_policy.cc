#include "policy/cache_policy.hh"

#include "policy/policy_registry.hh"
#include "sim/logging.hh"

namespace migc
{

CachePolicy
CachePolicy::make(PolicyKind kind)
{
    CachePolicy p;
    switch (kind) {
      case PolicyKind::uncached:
        p.name = "Uncached";
        p.cacheLoadsL1 = false;
        p.cacheLoadsL2 = false;
        p.cacheStoresL2 = false;
        break;
      case PolicyKind::cacheR:
        p.name = "CacheR";
        p.cacheStoresL2 = false;
        break;
      case PolicyKind::cacheRW:
        p.name = "CacheRW";
        break;
      case PolicyKind::cacheRwAb:
        p.name = "CacheRW-AB";
        p.allocationBypass = true;
        break;
      case PolicyKind::cacheRwCr:
        p.name = "CacheRW-CR";
        p.allocationBypass = true;
        p.cacheRinsing = true;
        break;
      case PolicyKind::cacheRwPcby:
        p.name = "CacheRW-PCby";
        p.allocationBypass = true;
        p.cacheRinsing = true;
        p.pcBypassL2 = true;
        break;
    }
    return p;
}

CachePolicy
CachePolicy::fromName(const std::string &name)
{
    return PolicyRegistry::instance().make(name);
}

std::vector<CachePolicy>
CachePolicy::staticPolicies()
{
    return {make(PolicyKind::uncached), make(PolicyKind::cacheR),
            make(PolicyKind::cacheRW)};
}

std::vector<CachePolicy>
CachePolicy::allPolicies()
{
    return {make(PolicyKind::uncached),   make(PolicyKind::cacheR),
            make(PolicyKind::cacheRW),    make(PolicyKind::cacheRwAb),
            make(PolicyKind::cacheRwCr),  make(PolicyKind::cacheRwPcby)};
}

std::vector<CachePolicy>
CachePolicy::dynamicPolicies()
{
    return {fromName("CacheRW-DynAB"), fromName("CacheRW-Duel"),
            fromName("CacheRW-DynCR")};
}

} // namespace migc
