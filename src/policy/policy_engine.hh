/**
 * @file
 * Per-System policy decision engine.
 *
 * One PolicyEngine per System turns the run's CachePolicy into
 * allocate/bypass/rinse verdicts at the cache hierarchy's decision
 * points. Every verdict is a non-virtual inline call whose static
 * fast path is a single enum compare, so the six paper policies run
 * bit-identically to the pre-engine flag checks (pinned by the
 * golden-determinism suite) at zero added cost (pinned by the
 * micro_substrate policy_decision_overhead scenario).
 *
 * The engine also owns the mutable state of the dynamic policies:
 *
 *  - adaptiveBypass: a fixed-point occupancy threshold; requests to a
 *    set whose busy-way fraction crosses it convert to bypasses
 *    before allocation can block (cf. adaptive bypass for ML kernels,
 *    PAPERS.md).
 *
 *  - setDueling: a DIP-style PSEL saturating counter. Leader sets
 *    behave as CacheR (stores bypass) or CacheRW (stores coalesce);
 *    each bypassed store to a CacheR leader and each writeback from a
 *    CacheRW leader is that constituency's DRAM-write cost and moves
 *    PSEL; follower sets adopt the currently cheaper side. Per-set
 *    cost samples are recorded in Tags (Tags::bumpDuelSample).
 *
 *  - dynamicRinse: a fixed-point running mean of the dirty-line
 *    population of rows reaching eviction; only rows at least as
 *    dirty as the mean (and above the policy's floor) are rinsed.
 *
 * All state is integer/fixed-point arithmetic seeded from the policy
 * alone: runs are bit-identical for any MIGC_JOBS, and reset() is
 * allocation-free like every other System component.
 */

#ifndef MIGC_POLICY_POLICY_ENGINE_HH
#define MIGC_POLICY_POLICY_ENGINE_HH

#include <cstdint>

#include "policy/cache_policy.hh"
#include "sim/stats.hh"

namespace migc
{

/** Which level of the hierarchy a cache serves. */
enum class CacheLevel : std::uint8_t
{
    l1,
    l2,
};

/** A set's role in the store-policy duel. */
enum class DuelRole : std::uint8_t
{
    follower, ///< follows PSEL
    leaderR,  ///< always bypasses stores (CacheR constituency)
    leaderRW, ///< always coalesces stores (CacheRW constituency)
};

class PolicyEngine
{
  public:
    explicit PolicyEngine(const CachePolicy &policy);

    /**
     * Adopt a new policy and restart all dynamic state, performing
     * zero heap allocations (System::reset()).
     */
    void reset(const CachePolicy &policy);

    const CachePolicy &policy() const { return policy_; }

    /** The static per-level view of the policy: what a cache at this
     *  level is structurally capable of. This is the single source of
     *  truth for the policy -> per-cache flag mapping (the L1 never
     *  caches stores or rinses; prediction is an L2 mechanism). */
    struct LevelFlags
    {
        bool cacheLoads;
        bool cacheStores;
        bool allocationBypass;
        bool rinsing;
        bool usePredictor;
    };

    LevelFlags
    levelFlags(CacheLevel level) const
    {
        if (level == CacheLevel::l1) {
            return LevelFlags{policy_.cacheLoadsL1, false,
                              policy_.allocationBypass, false, false};
        }
        return LevelFlags{policy_.cacheLoadsL2, policy_.cacheStoresL2,
                          policy_.allocationBypass,
                          policy_.cacheRinsing, policy_.pcBypassL2};
    }

    // -----------------------------------------------------------------
    // Set dueling
    // -----------------------------------------------------------------

    bool
    duelingActive(CacheLevel level) const
    {
        return policy_.dynamic == DynPolicy::setDueling &&
               level == CacheLevel::l2;
    }

    /** Constituency of set @p set in a cache of @p num_sets sets. */
    DuelRole
    duelRole(unsigned set, unsigned num_sets) const
    {
        unsigned period = policy_.duelLeaderPeriod < num_sets
                              ? policy_.duelLeaderPeriod
                              : num_sets;
        unsigned r = set % period;
        if (r == 0)
            return DuelRole::leaderR;
        if (r == period / 2)
            return DuelRole::leaderRW;
        return DuelRole::follower;
    }

    /** Should a store to a set with role @p role coalesce in the L2?
     *  Leaders obey their constituency; followers follow PSEL (low
     *  PSEL = bypassing has been the expensive side = cache). */
    bool
    cacheStore(DuelRole role) const
    {
        if (role == DuelRole::leaderRW)
            return true;
        if (role == DuelRole::leaderR)
            return false;
        return psel_ <= pselInit_;
    }

    /** A store bypassed the L2 in a CacheR leader set (one DRAM
     *  write charged to the bypassing constituency). */
    void
    noteDuelBypassStore()
    {
        ++statDuelCostR_;
        if (psel_ > 0)
            --psel_;
    }

    /** A writeback left a CacheRW leader set (one DRAM write charged
     *  to the coalescing constituency). */
    void
    noteDuelWriteback()
    {
        ++statDuelCostRW_;
        if (psel_ < pselMax_)
            ++psel_;
    }

    std::uint32_t psel() const { return psel_; }

    // -----------------------------------------------------------------
    // Adaptive allocation bypass
    // -----------------------------------------------------------------

    bool
    occupancyBypassActive() const
    {
        return policy_.dynamic == DynPolicy::adaptiveBypass;
    }

    /** Convert this cached request to a bypass? True when the target
     *  set's busy-way fraction has reached the policy threshold. */
    bool
    occupancyBypass(unsigned busy_ways, unsigned assoc)
    {
        // busy/assoc >= threshold, in Q8 fixed point.
        if ((static_cast<std::uint32_t>(busy_ways) << 8) >=
            occupancyLimitQ8_ * assoc) {
            ++statOccupancyBypasses_;
            return true;
        }
        return false;
    }

    // -----------------------------------------------------------------
    // Dynamic rinsing
    // -----------------------------------------------------------------

    /**
     * Rinse the whole DRAM row whose dirty population (including the
     * line being evicted) is @p row_population? Static rinsing
     * policies always say yes; the dynamic policy compares against a
     * running mean and feeds the observation back into it.
     */
    bool
    rinseRow(std::size_t row_population)
    {
        if (policy_.dynamic != DynPolicy::dynamicRinse)
            return true;
        const std::int64_t pop_q8 =
            static_cast<std::int64_t>(row_population) << 8;
        const std::int64_t avg = rinseAvgQ8_;
        // EWMA with 1/8 gain; integer, so bit-identical everywhere.
        rinseAvgQ8_ = avg + ((pop_q8 - avg) >> 3);
        if (row_population >= policy_.dynRinseMinLines &&
            pop_q8 >= avg) {
            ++statRinseRinsed_;
            return true;
        }
        ++statRinseDeferred_;
        return false;
    }

    void regStats(StatGroup &group);

    double occupancyBypasses() const
    {
        return statOccupancyBypasses_.value();
    }
    double rinseDeferred() const { return statRinseDeferred_.value(); }

  private:
    void applyPolicy(const CachePolicy &policy);

    CachePolicy policy_;

    /** adaptiveBypass: round(dynBypassOccupancy * 256). */
    std::uint32_t occupancyLimitQ8_ = 256;

    /** setDueling: PSEL counter, its ceiling, and its midpoint. */
    std::uint32_t psel_ = 0;
    std::uint32_t pselMax_ = 0;
    std::uint32_t pselInit_ = 0;

    /** dynamicRinse: running mean row population, Q8 fixed point. */
    std::int64_t rinseAvgQ8_ = 0;

    StatScalar statDuelCostR_;
    StatScalar statDuelCostRW_;
    StatScalar statOccupancyBypasses_;
    StatScalar statRinseRinsed_;
    StatScalar statRinseDeferred_;
};

} // namespace migc

#endif // MIGC_POLICY_POLICY_ENGINE_HH
