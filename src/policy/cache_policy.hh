/**
 * @file
 * GPU caching policies studied by the paper.
 *
 * Three static policies (Section III):
 *  - Uncached: loads and stores bypass all GPU caches.
 *  - CacheR:   loads cached in L1+L2; stores bypass all GPU caches.
 *  - CacheRW:  loads cached in L1+L2; stores bypass L1 and coalesce
 *              in the L2 until a system-scope flush.
 *
 * Three cumulative optimizations on CacheRW (Section VII):
 *  - AB:   allocation bypass - convert a cached request to a bypass
 *          request whenever allocation would block.
 *  - CR:   row-locality-aware cache rinsing via a Dirty-Block Index.
 *  - PCby: PC-indexed reuse prediction for L2 loads and stores.
 */

#ifndef MIGC_POLICY_CACHE_POLICY_HH
#define MIGC_POLICY_CACHE_POLICY_HH

#include <string>
#include <vector>

namespace migc
{

/** The six named configurations evaluated in the paper. */
enum class PolicyKind
{
    uncached,
    cacheR,
    cacheRW,
    cacheRwAb,
    cacheRwCr,
    cacheRwPcby,
};

/** Tunable caching-policy knobs; presets via make(). */
struct CachePolicy
{
    std::string name = "CacheRW";

    /** Cache loads in the per-CU L1s. */
    bool cacheLoadsL1 = true;

    /** Cache loads in the shared L2. */
    bool cacheLoadsL2 = true;

    /** Coalesce stores in the shared L2 (write-back until flush). */
    bool cacheStoresL2 = true;

    /** Convert to bypass instead of blocking on allocation. */
    bool allocationBypass = false;

    /** Dirty-Block Index row rinsing at the L2. */
    bool cacheRinsing = false;

    /** PC-based L2 bypass prediction (loads and stores). */
    bool pcBypassL2 = false;

    /** Build one of the paper's named configurations. */
    static CachePolicy make(PolicyKind kind);

    /** Parse a policy name such as "CacheRW-AB" (fatal on unknown). */
    static CachePolicy fromName(const std::string &name);

    /** The three static policies, in paper order. */
    static std::vector<CachePolicy> staticPolicies();

    /** All six configurations, in paper order. */
    static std::vector<CachePolicy> allPolicies();

    /** True when no GPU cache ever allocates. */
    bool
    fullyBypassed() const
    {
        return !cacheLoadsL1 && !cacheLoadsL2 && !cacheStoresL2;
    }
};

} // namespace migc

#endif // MIGC_POLICY_CACHE_POLICY_HH
