/**
 * @file
 * GPU caching policies studied by the paper, plus dynamic variants.
 *
 * Three static policies (Section III):
 *  - Uncached: loads and stores bypass all GPU caches.
 *  - CacheR:   loads cached in L1+L2; stores bypass all GPU caches.
 *  - CacheRW:  loads cached in L1+L2; stores bypass L1 and coalesce
 *              in the L2 until a system-scope flush.
 *
 * Three cumulative optimizations on CacheRW (Section VII):
 *  - AB:   allocation bypass - convert a cached request to a bypass
 *          request whenever allocation would block.
 *  - CR:   row-locality-aware cache rinsing via a Dirty-Block Index.
 *  - PCby: PC-indexed reuse prediction for L2 loads and stores.
 *
 * Three dynamic policies beyond the paper (decided at run time by the
 * PolicyEngine, see policy_engine.hh):
 *  - DynAB: adaptive allocation bypass - convert to bypass as soon as
 *           the target set's busy-way occupancy crosses a threshold,
 *           before allocation actually blocks.
 *  - Duel:  DIP-style set dueling between CacheR and CacheRW store
 *           handling; leader sets sample both, followers follow PSEL.
 *  - DynCR: rinsing with a dynamic row-dirtiness threshold - sparse
 *           rows stay cached, rows at least as dirty as the running
 *           mean drain in row-clustered bursts.
 *
 * Policies are constructed by name through the PolicyRegistry
 * (policy_registry.hh); parameterized variants append "@value" to a
 * registered base name (e.g. "CacheRW-DynAB@0.5").
 */

#ifndef MIGC_POLICY_CACHE_POLICY_HH
#define MIGC_POLICY_CACHE_POLICY_HH

#include <string>
#include <vector>

namespace migc
{

/** The six named configurations evaluated in the paper. */
enum class PolicyKind
{
    uncached,
    cacheR,
    cacheRW,
    cacheRwAb,
    cacheRwCr,
    cacheRwPcby,
};

/** Run-time decision mechanisms layered on the static knobs. */
enum class DynPolicy : std::uint8_t
{
    none,           ///< purely static: the booleans below decide
    adaptiveBypass, ///< occupancy-threshold allocation bypass
    setDueling,     ///< CacheR-vs-CacheRW store dueling (DIP-style)
    dynamicRinse,   ///< row-dirtiness-threshold DBI rinsing
};

/** Tunable caching-policy knobs; presets via make() / fromName(). */
struct CachePolicy
{
    std::string name = "CacheRW";

    /** Cache loads in the per-CU L1s. */
    bool cacheLoadsL1 = true;

    /** Cache loads in the shared L2. */
    bool cacheLoadsL2 = true;

    /** Coalesce stores in the shared L2 (write-back until flush).
     *  Under set dueling this is the capability; the per-set verdict
     *  comes from the PolicyEngine. */
    bool cacheStoresL2 = true;

    /** Convert to bypass instead of blocking on allocation. */
    bool allocationBypass = false;

    /** Dirty-Block Index row rinsing at the L2. */
    bool cacheRinsing = false;

    /** PC-based L2 bypass prediction (loads and stores). */
    bool pcBypassL2 = false;

    // --- dynamic-policy mechanism and parameters ---

    /** Which run-time mechanism (if any) refines the knobs above. */
    DynPolicy dynamic = DynPolicy::none;

    /** adaptiveBypass: busy-way fraction of the target set at which a
     *  cached request converts to a bypass request, in (0, 1]. */
    double dynBypassOccupancy = 0.75;

    /** setDueling: one CacheR leader and one CacheRW leader every
     *  this many sets (a power of two >= 2, so the constituencies
     *  tile set counts evenly); the rest follow PSEL. */
    unsigned duelLeaderPeriod = 32;

    /** setDueling: PSEL saturating-counter width in bits. */
    unsigned duelPselBits = 10;

    /** dynamicRinse: never rinse rows with fewer dirty lines. */
    unsigned dynRinseMinLines = 2;

    /** Build one of the paper's named configurations. */
    static CachePolicy make(PolicyKind kind);

    /**
     * Construct any registered policy - paper preset or parameterized
     * dynamic variant - from its name via the PolicyRegistry (fatal
     * on unknown, listing the valid names).
     */
    static CachePolicy fromName(const std::string &name);

    /** The three static policies, in paper order. */
    static std::vector<CachePolicy> staticPolicies();

    /** All six paper configurations, in paper order. */
    static std::vector<CachePolicy> allPolicies();

    /** The three dynamic policies at default parameters. */
    static std::vector<CachePolicy> dynamicPolicies();

    /** True when no GPU cache ever allocates. */
    bool
    fullyBypassed() const
    {
        return !cacheLoadsL1 && !cacheLoadsL2 && !cacheStoresL2;
    }
};

} // namespace migc

#endif // MIGC_POLICY_CACHE_POLICY_HH
