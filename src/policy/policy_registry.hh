/**
 * @file
 * String-keyed registry of caching policies.
 *
 * Every run entry point (runner, sweep engine, figure binaries)
 * addresses policies purely by name, and the RunCache keys results on
 * those names - so any policy the registry can reconstruct from its
 * name sweeps, caches, and replays like the paper's six presets with
 * zero changes elsewhere.
 *
 * A spec is either a registered base name ("CacheRW-Duel") or a base
 * name plus one parameter ("CacheRW-DynAB@0.5"); the entry's factory
 * parses the parameter and the full spec becomes the policy's name,
 * so parameterized variants land in their own cache namespaces.
 *
 * Downstream users register their own entries with add(); the
 * built-in entries (six paper presets + three dynamic policies) are
 * registered on first use.
 */

#ifndef MIGC_POLICY_POLICY_REGISTRY_HH
#define MIGC_POLICY_POLICY_REGISTRY_HH

#include <functional>
#include <string>
#include <vector>

#include "policy/cache_policy.hh"

namespace migc
{

class PolicyRegistry
{
  public:
    struct Entry
    {
        /** Base name matched against the spec before any "@param". */
        std::string name;

        /** One-line description for --list / error output. */
        std::string help;

        /** Meaning of the optional "@param"; empty = none accepted. */
        std::string paramHelp;

        /**
         * Build the policy. @p spec is the full requested name (it
         * must become the policy's name); @p param is the text after
         * "@", or empty. Fatal on a malformed parameter.
         */
        std::function<CachePolicy(const std::string &spec,
                                  const std::string &param)>
            factory;
    };

    /** The process-wide registry (built-ins registered on first use). */
    static PolicyRegistry &instance();

    /**
     * Register an entry (replaces an existing entry of the same
     * name). Not safe to call while a sweep is resolving policies on
     * worker threads; register before submitting runs.
     */
    void add(Entry entry);

    /** Build @p spec; fatal on unknown name, listing valid names. */
    CachePolicy make(const std::string &spec) const;

    /** Non-fatal variant: false when the base name is unknown. */
    bool tryMake(const std::string &spec, CachePolicy &out) const;

    bool known(const std::string &spec) const;

    /** Registered base names, registration order. */
    std::vector<std::string> names() const;

    /** Human-readable listing of every entry (for --list output). */
    std::string describe() const;

  private:
    PolicyRegistry();

    const Entry *findEntry(const std::string &base) const;

    std::vector<Entry> entries_;
};

} // namespace migc

#endif // MIGC_POLICY_POLICY_REGISTRY_HH
