#include "policy/reuse_predictor.hh"

#include "mem/addr_utils.hh"
#include "sim/logging.hh"

namespace migc
{

ReusePredictor::ReusePredictor() : ReusePredictor(Config{}) {}

ReusePredictor::ReusePredictor(const Config &cfg)
    : cfg_(cfg), maxCounter_((1u << cfg.counterBits) - 1),
      table_(cfg.entries,
             static_cast<std::uint8_t>(cfg.initialValue))
{
    fatal_if(!isPowerOf2(cfg.entries), "predictor entries must be 2^n");
    fatal_if(cfg.initialValue > maxCounter_,
             "predictor initial value exceeds counter range");
    fatal_if(cfg.threshold > maxCounter_ + 1,
             "predictor threshold exceeds counter range");
    fatal_if(cfg.sampleInterval == 0, "sample interval must be >= 1");
}

std::size_t
ReusePredictor::indexOf(Addr pc) const
{
    return hashAddr(pc) & (cfg_.entries - 1);
}

bool
ReusePredictor::shouldCache(Addr pc, Addr line_addr)
{
    ++statLookups_;
    if (table_[indexOf(pc)] >= cfg_.threshold)
        return true;
    // Deterministic set sampling: a fixed slice of the address space
    // is always cached so no-reuse PCs can redeem themselves.
    if (hashAddr(line_addr >> 6) % cfg_.sampleInterval == 0) {
        ++statSampledOverrides_;
        return true;
    }
    ++statBypassPredictions_;
    return false;
}

void
ReusePredictor::trainReuse(Addr pc)
{
    ++statTrainReuse_;
    auto &c = table_[indexOf(pc)];
    if (c < maxCounter_)
        ++c;
}

void
ReusePredictor::trainNoReuse(Addr pc)
{
    ++statTrainNoReuse_;
    auto &c = table_[indexOf(pc)];
    if (c > 0)
        --c;
}

unsigned
ReusePredictor::counterFor(Addr pc) const
{
    return table_[indexOf(pc)];
}

void
ReusePredictor::reset()
{
    for (auto &c : table_)
        c = static_cast<std::uint8_t>(cfg_.initialValue);
    statLookups_.reset();
    statBypassPredictions_.reset();
    statSampledOverrides_.reset();
    statTrainReuse_.reset();
    statTrainNoReuse_.reset();
}

void
ReusePredictor::regStats(StatGroup &group)
{
    group.addScalar("lookups", "bypass decisions made", &statLookups_);
    group.addScalar("bypass_predictions", "accesses predicted no-reuse",
                    &statBypassPredictions_);
    group.addScalar("sampled_overrides",
                    "bypass predictions overridden by sampling",
                    &statSampledOverrides_);
    group.addScalar("train_reuse", "positive training events",
                    &statTrainReuse_);
    group.addScalar("train_no_reuse", "negative training events",
                    &statTrainNoReuse_);
}

} // namespace migc
