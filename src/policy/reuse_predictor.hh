/**
 * @file
 * PC-indexed reuse predictor for adaptive L2 bypassing.
 *
 * Follows the adaptive GPU cache bypassing scheme of Tian et al.
 * (GPGPU'15), applied at the L2 for both loads and stores as in the
 * paper (Section VII.C): a table of saturating counters indexed by a
 * hash of the requesting PC. A block inserted by PC p that is later
 * reused strengthens p's counter; a block evicted without reuse
 * weakens it. Requests whose PC's counter falls below the caching
 * threshold bypass the cache. A deterministic address-hash sample of
 * accesses is always cached so the predictor keeps learning even for
 * PCs currently predicted to bypass.
 */

#ifndef MIGC_POLICY_REUSE_PREDICTOR_HH
#define MIGC_POLICY_REUSE_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"

namespace migc
{

class ReusePredictor
{
  public:
    struct Config
    {
        /** Number of counters (power of two). */
        std::size_t entries = 1024;

        /** Saturating counter ceiling (2^bits - 1). */
        unsigned counterBits = 3;

        /** Cache when counter >= threshold. */
        unsigned threshold = 4;

        /** Counters start here (weakly caching). */
        unsigned initialValue = 4;

        /** 1-in-N lines always cached for training. */
        unsigned sampleInterval = 16;
    };

    ReusePredictor();

    explicit ReusePredictor(const Config &cfg);

    /**
     * Decide whether an access by @p pc to @p line_addr should be
     * cached. Sampled lines return true regardless of the counter so
     * training continues while bypassing.
     */
    bool shouldCache(Addr pc, Addr line_addr);

    /** A block inserted by @p pc was reused before eviction. */
    void trainReuse(Addr pc);

    /** A block inserted by @p pc was evicted without reuse. */
    void trainNoReuse(Addr pc);

    /** Raw counter value for @p pc (tests / introspection). */
    unsigned counterFor(Addr pc) const;

    /** Reset all counters to the initial value and zero the stats. */
    void reset();

    void regStats(StatGroup &group);

    double bypassPredictions() const
    {
        return statBypassPredictions_.value();
    }

  private:
    std::size_t indexOf(Addr pc) const;

    Config cfg_;
    unsigned maxCounter_;
    std::vector<std::uint8_t> table_;

    StatScalar statLookups_;
    StatScalar statBypassPredictions_;
    StatScalar statSampledOverrides_;
    StatScalar statTrainReuse_;
    StatScalar statTrainNoReuse_;
};

} // namespace migc

#endif // MIGC_POLICY_REUSE_PREDICTOR_HH
