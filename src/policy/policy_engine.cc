#include "policy/policy_engine.hh"

#include <cmath>

#include "sim/logging.hh"

namespace migc
{

PolicyEngine::PolicyEngine(const CachePolicy &policy)
{
    applyPolicy(policy);
}

void
PolicyEngine::applyPolicy(const CachePolicy &policy)
{
    fatal_if(policy.dynamic == DynPolicy::adaptiveBypass &&
                 (policy.dynBypassOccupancy <= 0.0 ||
                  policy.dynBypassOccupancy > 1.0),
             "policy '%s': occupancy threshold must be in (0, 1]",
             policy.name.c_str());
    // Power-of-two periods divide every (power-of-two) set count, so
    // the CacheR and CacheRW leader constituencies are always the
    // same size and PSEL sampling is unbiased.
    fatal_if(policy.dynamic == DynPolicy::setDueling &&
                 (policy.duelLeaderPeriod < 2 ||
                  (policy.duelLeaderPeriod &
                   (policy.duelLeaderPeriod - 1)) != 0),
             "policy '%s': leader period must be a power of two >= 2",
             policy.name.c_str());
    // Validated for every policy (not just dueling ones): the PSEL
    // geometry below is always computed, and bits == 0 would shift
    // by a negative amount.
    fatal_if(policy.duelPselBits == 0 || policy.duelPselBits > 20,
             "policy '%s': PSEL width must be in [1, 20] bits",
             policy.name.c_str());
    fatal_if(policy.dynamic == DynPolicy::dynamicRinse &&
                 policy.dynRinseMinLines == 0,
             "policy '%s': rinse floor must be >= 1",
             policy.name.c_str());

    // policy_ is assigned (not rebuilt), so the std::string name's
    // storage is recycled whenever capacity allows - reset() stays
    // allocation-free for same-or-shorter policy names, matching the
    // rest of System::reset(); the golden suite's reuse test covers
    // the cross-policy case.
    policy_ = policy;

    occupancyLimitQ8_ = static_cast<std::uint32_t>(
        std::lround(policy_.dynBypassOccupancy * 256.0));
    if (occupancyLimitQ8_ == 0)
        occupancyLimitQ8_ = 1;

    pselMax_ = (1u << policy_.duelPselBits) - 1;
    pselInit_ = 1u << (policy_.duelPselBits - 1);
    psel_ = pselInit_;

    rinseAvgQ8_ = static_cast<std::int64_t>(policy_.dynRinseMinLines)
                  << 8;

    statDuelCostR_.reset();
    statDuelCostRW_.reset();
    statOccupancyBypasses_.reset();
    statRinseRinsed_.reset();
    statRinseDeferred_.reset();
}

void
PolicyEngine::reset(const CachePolicy &policy)
{
    applyPolicy(policy);
}

void
PolicyEngine::regStats(StatGroup &group)
{
    group.addScalar("duel_cost_r",
                    "bypassed stores charged to CacheR leader sets",
                    &statDuelCostR_);
    group.addScalar("duel_cost_rw",
                    "writebacks charged to CacheRW leader sets",
                    &statDuelCostRW_);
    group.addScalar("occupancy_bypasses",
                    "requests pre-bypassed on set occupancy",
                    &statOccupancyBypasses_);
    group.addScalar("rinse_rows_rinsed",
                    "eviction rows rinsed by the dynamic threshold",
                    &statRinseRinsed_);
    group.addScalar("rinse_rows_deferred",
                    "eviction rows kept cached by the dynamic threshold",
                    &statRinseDeferred_);
    group.addFormula("duel_psel", "PSEL counter value",
                     [this] { return static_cast<double>(psel_); });
}

} // namespace migc
