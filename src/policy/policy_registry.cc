#include "policy/policy_registry.hh"

#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "sim/logging.hh"
#include "sim/names.hh"

namespace migc
{

namespace
{

/** Split "Base@param" into base and param (param empty if no "@"). */
void
splitSpec(const std::string &spec, std::string &base, std::string &param)
{
    auto at = spec.find('@');
    if (at == std::string::npos) {
        base = spec;
        param.clear();
    } else {
        base = spec.substr(0, at);
        param = spec.substr(at + 1);
    }
}

double
parseFraction(const std::string &spec, const std::string &param)
{
    char *end = nullptr;
    double v = std::strtod(param.c_str(), &end);
    fatal_if(end == param.c_str() || *end != '\0' || !std::isfinite(v) ||
                 v <= 0.0 || v > 1.0,
             "policy '%s': parameter must be a fraction in (0, 1]",
             spec.c_str());
    return v;
}

unsigned
parseUnsigned(const std::string &spec, const std::string &param,
              unsigned min_value)
{
    // strtoul would silently wrap a negative value to a huge one.
    fatal_if(param.empty() || !std::isdigit(
                 static_cast<unsigned char>(param[0])),
             "policy '%s': parameter must be an integer >= %u",
             spec.c_str(), min_value);
    char *end = nullptr;
    unsigned long v = std::strtoul(param.c_str(), &end, 10);
    fatal_if(*end != '\0' || v < min_value || v > UINT32_MAX,
             "policy '%s': parameter must be an integer >= %u",
             spec.c_str(), min_value);
    return static_cast<unsigned>(v);
}

PolicyRegistry::Entry
presetEntry(PolicyKind kind, const char *help)
{
    CachePolicy preset = CachePolicy::make(kind);
    PolicyRegistry::Entry e;
    e.name = preset.name;
    e.help = help;
    e.factory = [kind](const std::string &spec, const std::string &param) {
        fatal_if(!param.empty(), "policy '%s' takes no parameter",
                 spec.c_str());
        return CachePolicy::make(kind);
    };
    return e;
}

} // namespace

PolicyRegistry::PolicyRegistry()
{
    // The paper's six configurations, Figure 6/10 order.
    add(presetEntry(PolicyKind::uncached,
                    "loads and stores bypass all GPU caches"));
    add(presetEntry(PolicyKind::cacheR,
                    "loads cached in L1+L2; stores bypass"));
    add(presetEntry(PolicyKind::cacheRW,
                    "loads cached; stores coalesce in the L2"));
    add(presetEntry(PolicyKind::cacheRwAb,
                    "CacheRW + allocation bypass"));
    add(presetEntry(PolicyKind::cacheRwCr,
                    "CacheRW-AB + DBI row rinsing"));
    add(presetEntry(PolicyKind::cacheRwPcby,
                    "CacheRW-CR + PC reuse prediction"));

    // Dynamic policies (PolicyEngine-decided).
    add(Entry{
        "CacheRW-DynAB",
        "CacheRW-AB with occupancy-threshold pre-bypass",
        "busy-way fraction in (0, 1] triggering bypass (default 0.75)",
        [](const std::string &spec, const std::string &param) {
            CachePolicy p = CachePolicy::make(PolicyKind::cacheRwAb);
            p.name = spec;
            p.dynamic = DynPolicy::adaptiveBypass;
            if (!param.empty())
                p.dynBypassOccupancy = parseFraction(spec, param);
            return p;
        }});
    add(Entry{
        "CacheRW-Duel",
        "DIP-style set dueling between CacheR and CacheRW stores",
        "leader-set period, a power of two >= 2 (default 32)",
        [](const std::string &spec, const std::string &param) {
            CachePolicy p = CachePolicy::make(PolicyKind::cacheRW);
            p.name = spec;
            p.dynamic = DynPolicy::setDueling;
            if (!param.empty())
                p.duelLeaderPeriod = parseUnsigned(spec, param, 2);
            // A power of two always divides the (power-of-two) set
            // count, so the two leader constituencies stay the same
            // size and PSEL sampling is unbiased.
            fatal_if((p.duelLeaderPeriod &
                      (p.duelLeaderPeriod - 1)) != 0,
                     "policy '%s': leader period must be a power "
                     "of two",
                     spec.c_str());
            return p;
        }});
    add(Entry{
        "CacheRW-DynCR",
        "CacheRW-CR with a dynamic row-dirtiness rinse threshold",
        "minimum dirty lines per rinsed row, >= 1 (default 2)",
        [](const std::string &spec, const std::string &param) {
            CachePolicy p = CachePolicy::make(PolicyKind::cacheRwCr);
            p.name = spec;
            p.dynamic = DynPolicy::dynamicRinse;
            if (!param.empty())
                p.dynRinseMinLines = parseUnsigned(spec, param, 1);
            return p;
        }});
}

PolicyRegistry &
PolicyRegistry::instance()
{
    static PolicyRegistry registry;
    return registry;
}

void
PolicyRegistry::add(Entry entry)
{
    // Policy names key RunCache rows; a name the cache cannot
    // round-trip would be cached-and-lost (reloaded rows fail the
    // CSV field-count check and the point silently re-simulates).
    checkCacheName("policy", entry.name);
    for (auto &e : entries_) {
        if (e.name == entry.name) {
            e = std::move(entry);
            return;
        }
    }
    entries_.push_back(std::move(entry));
}

const PolicyRegistry::Entry *
PolicyRegistry::findEntry(const std::string &base) const
{
    for (const auto &e : entries_) {
        if (e.name == base)
            return &e;
    }
    return nullptr;
}

bool
PolicyRegistry::tryMake(const std::string &spec, CachePolicy &out) const
{
    // The full spec - parameter included - becomes the policy's name
    // and therefore a cache key, so a spec like "CacheRW-DynAB@0,5"
    // must die here: its comma would split the serialized row and
    // the result would be dropped as a parse error on reload. Fatal
    // rather than "unknown": the base name may be perfectly valid,
    // and an actionable message beats a misleading name listing.
    checkCacheName("policy", spec);
    std::string base, param;
    splitSpec(spec, base, param);
    // A trailing '@' ("CacheRW-DynAB@") would alias the default
    // parameters under a second cache namespace; reject it.
    if (spec.find('@') != std::string::npos && param.empty())
        return false;
    const Entry *e = findEntry(base);
    if (e == nullptr)
        return false;
    // Entries without a paramHelp accept no parameter: reject
    // "Uncached@5" here (gracefully) rather than in the factory.
    if (!param.empty() && e->paramHelp.empty())
        return false;
    out = e->factory(spec, param);
    out.name = spec;
    return true;
}

CachePolicy
PolicyRegistry::make(const std::string &spec) const
{
    CachePolicy p;
    if (tryMake(spec, p))
        return p;
    fatal("unknown cache policy '%s' (valid: %s; parameterized "
          "variants append '@value')",
          spec.c_str(), joinStrings(names()).c_str());
}

bool
PolicyRegistry::known(const std::string &spec) const
{
    // Full tryMake so a malformed spec over a valid base name
    // ("Uncached@5", "CacheRW-DynAB@") is reported unknown here
    // rather than fatal()ing later in make(). Malformed parameter
    // *values* still fatal with an actionable message, as in make().
    CachePolicy ignored;
    return tryMake(spec, ignored);
}

std::vector<std::string>
PolicyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_)
        out.push_back(e.name);
    return out;
}

std::string
PolicyRegistry::describe() const
{
    std::string out;
    for (const auto &e : entries_) {
        out += csprintf("  %-14s %s\n", e.name.c_str(), e.help.c_str());
        if (!e.paramHelp.empty())
            out += csprintf("  %-14s   @param: %s\n", "",
                            e.paramHelp.c_str());
    }
    return out;
}

} // namespace migc
