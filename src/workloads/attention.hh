/**
 * @file
 * Transformer attention workload (model extension, not in the paper).
 *
 * Attention is the dominant memory pattern of modern MI inference and
 * is absent from the paper's Table 2 suite. One attention head is
 * modeled as the three kernels of scaled-dot-product attention:
 *
 *   1. attnQKt:     S = Q . K^T   - every wave streams the whole K
 *                    matrix (massive cross-workgroup reuse only the
 *                    L2 can capture) and stores a score tile.
 *   2. attnSoftmax: P = softmax(S) - three passes over the freshly
 *                    written score rows (max, exp+sum, normalize),
 *                    so the coalesced stores of phase 1 are re-read
 *                    while still L2-dirty under CacheRW.
 *   3. attnV:       O = P . V     - streams V with cross-workgroup
 *                    reuse and the probability rows once each.
 *
 * Kernels 1 and 2 end at device scope so the L2 carries the score /
 * probability tensors between phases; kernel 3 publishes at system
 * scope. The mix of streaming (K, V) and producer-consumer reuse
 * (S, P) phases makes the workload sensitive to both read caching
 * and store coalescing - the regime the dynamic policies target.
 */

#ifndef MIGC_WORKLOADS_ATTENTION_HH
#define MIGC_WORKLOADS_ATTENTION_HH

#include "workloads/workload.hh"

namespace migc
{

class AttentionWorkload : public Workload
{
  public:
    std::string name() const override { return "Attn"; }

    Category category() const override
    {
        return Category::reuseSensitive;
    }

    WorkloadInfo
    paperInfo() const override
    {
        // Not part of the paper's suite; the "paper" columns report
        // the modeled configuration instead.
        return {"seq 256, d_head 64 (extension)", 3, 3, "(extension)"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

} // namespace migc

#endif // MIGC_WORKLOADS_ATTENTION_HH
