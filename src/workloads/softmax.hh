/**
 * @file
 * Softmax layers (DNNMark FwSoft / BwSoft).
 *
 * Tiny footprints (the paper lists 0.01-0.02 MB) re-read in multiple
 * passes inside a single kernel (max, exp-sum, normalize), so with
 * caching nearly every access after the first pass hits - the purest
 * reuse-sensitive pattern. The kernels are small, so the end-to-end
 * win is modest, exactly as Figure 6 shows.
 */

#ifndef MIGC_WORKLOADS_SOFTMAX_HH
#define MIGC_WORKLOADS_SOFTMAX_HH

#include "workloads/workload.hh"

namespace migc
{

class FwSoftWorkload : public Workload
{
  public:
    std::string name() const override { return "FwSoft"; }

    Category category() const override { return Category::reuseSensitive; }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 512", 1, 1, "0.01 MB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

class BwSoftWorkload : public Workload
{
  public:
    std::string name() const override { return "BwSoft"; }

    Category category() const override { return Category::reuseSensitive; }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 512", 1, 1, "0.02 MB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

} // namespace migc

#endif // MIGC_WORKLOADS_SOFTMAX_HH
