#include "workloads/attention.hh"

namespace migc
{

using workload_detail::region;
using workload_detail::roundTo;

namespace
{

constexpr std::uint32_t wavesPerWg = 4;
constexpr std::uint32_t rowsPerWave = 16;
constexpr std::uint32_t headDim = 64;   ///< elements per row of Q/K/V
constexpr std::uint64_t elemBytes = 4;
/** One Q/K/V row: headDim fp32 elements = one 64-lane vector load. */
constexpr std::uint64_t rowBytes = headDim * elemBytes;

/** Sequence length at @p scale, in whole workgroups of rows. */
std::uint32_t
seqLen(double scale)
{
    return static_cast<std::uint32_t>(
        roundTo(scale * 256.0,
                static_cast<std::uint64_t>(wavesPerWg) * rowsPerWave));
}

/** Lane-chunks (64 x fp32 = 256 B) in one score row of @p seq. */
std::uint32_t
scoreChunks(std::uint32_t seq)
{
    return seq * elemBytes / 256;
}

} // namespace

std::vector<KernelDesc>
AttentionWorkload::buildKernels(double scale) const
{
    const std::uint32_t seq = seqLen(scale);
    const std::uint32_t wgs = seq / (wavesPerWg * rowsPerWave);
    const std::uint32_t chunks = scoreChunks(seq);
    const Addr q_base = region(0);
    const Addr k_base = region(1);
    const Addr v_base = region(2);
    const Addr s_base = region(3); ///< scores S = Q.K^T
    const Addr p_base = region(4); ///< probabilities P = softmax(S)
    const Addr o_base = region(5); ///< output O = P.V

    // Phase 1: S = Q.K^T. Every wave owns rowsPerWave query rows and
    // streams the whole K matrix in rowsPerWave-row tiles.
    KernelDesc qkt;
    qkt.name = "attnQKt";
    qkt.wavesPerWorkgroup = wavesPerWg;
    qkt.numWorkgroups = wgs;
    qkt.endScope = SyncScope::device; // scores stay in the L2
    qkt.pcBase = 0x30000;
    qkt.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(qkt.pcBase);
        std::uint64_t row0 =
            (static_cast<std::uint64_t>(wg) * wavesPerWg + wf) *
            rowsPerWave;
        // This wave's Q tile, staged once through the LDS.
        for (std::uint32_t r = 0; r < rowsPerWave; ++r)
            b.load(0, q_base + (row0 + r) * rowBytes);
        b.waitLoads();
        b.lds(2);
        for (std::uint32_t kt = 0; kt < seq; kt += rowsPerWave) {
            // Stream one K tile (shared by every workgroup).
            for (std::uint32_t r = 0; r < rowsPerWave; ++r)
                b.load(1, k_base + (kt + r) * rowBytes);
            b.waitLoads();
            b.lds(2);
            // rowsPerWave x rowsPerWave dot products over headDim.
            b.valu(rowsPerWave * rowsPerWave * headDim / 64, 4);
        }
        // Store this wave's score rows (seq fp32 each).
        for (std::uint32_t r = 0; r < rowsPerWave; ++r) {
            Addr srow = s_base + (row0 + r) * seq * elemBytes;
            for (std::uint32_t c = 0; c < chunks; ++c)
                b.store(2, srow + c * 256);
        }
        return b.take();
    };

    // Phase 2: P = softmax(S), three passes per score row; re-reads
    // the rows phase 1 just stored (L2-dirty hits under CacheRW).
    KernelDesc soft;
    soft.name = "attnSoftmax";
    soft.wavesPerWorkgroup = wavesPerWg;
    soft.numWorkgroups = wgs;
    soft.endScope = SyncScope::device; // probabilities stay in the L2
    soft.pcBase = 0x31000;
    soft.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(soft.pcBase);
        std::uint64_t row0 =
            (static_cast<std::uint64_t>(wg) * wavesPerWg + wf) *
            rowsPerWave;
        for (std::uint32_t r = 0; r < rowsPerWave; ++r) {
            Addr srow = s_base + (row0 + r) * seq * elemBytes;
            Addr prow = p_base + (row0 + r) * seq * elemBytes;
            // Pass 1: row max.
            for (std::uint32_t c = 0; c < chunks; ++c)
                b.load(0, srow + c * 256);
            b.waitLoads();
            b.valu(chunks);
            // Pass 2: exp and sum (second read of the row).
            for (std::uint32_t c = 0; c < chunks; ++c)
                b.load(1, srow + c * 256);
            b.waitLoads();
            b.valu(3 * chunks);
            // Pass 3: normalize and write out (third read).
            for (std::uint32_t c = 0; c < chunks; ++c)
                b.load(2, srow + c * 256);
            b.waitLoads();
            b.valu(2 * chunks);
            for (std::uint32_t c = 0; c < chunks; ++c)
                b.store(3, prow + c * 256);
        }
        return b.take();
    };

    // Phase 3: O = P.V. Streams V (shared across workgroups) against
    // each wave's probability rows.
    KernelDesc av;
    av.name = "attnV";
    av.wavesPerWorkgroup = wavesPerWg;
    av.numWorkgroups = wgs;
    av.endScope = SyncScope::system; // publish the head's output
    av.pcBase = 0x32000;
    av.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(av.pcBase);
        std::uint64_t row0 =
            (static_cast<std::uint64_t>(wg) * wavesPerWg + wf) *
            rowsPerWave;
        for (std::uint32_t vt = 0; vt < seq; vt += rowsPerWave) {
            // Stream one V tile (shared by every workgroup).
            for (std::uint32_t r = 0; r < rowsPerWave; ++r)
                b.load(0, v_base + (vt + r) * rowBytes);
            // The probability columns weighting this tile: V rows
            // [vt, vt+rowsPerWave) are weighted by P columns vt..,
            // which live in the chunk at byte offset vt*elemBytes -
            // so four consecutive tiles re-read the same chunk
            // (tight producer-consumer locality).
            std::uint64_t c256 = (vt * elemBytes / 256) * 256;
            for (std::uint32_t r = 0; r < rowsPerWave; ++r) {
                b.load(1, p_base + (row0 + r) * seq * elemBytes +
                              c256);
            }
            b.waitLoads();
            b.lds(2);
            b.valu(rowsPerWave * rowsPerWave * headDim / 64, 4);
        }
        for (std::uint32_t r = 0; r < rowsPerWave; ++r)
            b.store(2, o_base + (row0 + r) * rowBytes);
        return b.take();
    };

    return {qkt, soft, av};
}

std::uint64_t
AttentionWorkload::modelFootprint(double scale) const
{
    const std::uint64_t seq = seqLen(scale);
    // Q, K, V, O (seq x headDim) plus S and P (seq x seq).
    return 4 * seq * rowBytes + 2 * seq * seq * elemBytes;
}

} // namespace migc
