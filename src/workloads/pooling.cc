#include "workloads/pooling.hh"

namespace migc
{

using workload_detail::region;

namespace
{

constexpr std::uint64_t chunkBytes = 256;
constexpr std::uint64_t rowChunks = 4;  ///< input row = 1 KiB
constexpr std::uint64_t rowBytes = rowChunks * chunkBytes;
constexpr std::uint32_t wavesPerWg = 4;
constexpr std::uint32_t inRowsPerWave = 4; ///< fresh rows per wave
constexpr std::uint32_t outRowsPerWave = inRowsPerWave / 2;

std::uint64_t
inputRows(double scale)
{
    // 12 MiB of input at scale 1.
    auto rows = static_cast<std::uint64_t>(scale * (12 << 20) / rowBytes);
    std::uint64_t per_wg = inRowsPerWave * wavesPerWg;
    rows = (rows / per_wg) * per_wg;
    return rows < per_wg ? per_wg : rows;
}

} // namespace

std::vector<KernelDesc>
FwPoolWorkload::buildKernels(double scale) const
{
    std::uint64_t rows = inputRows(scale);
    Addr x_base = region(0);
    Addr y_base = region(1);
    std::uint64_t rows_per_wg = inRowsPerWave * wavesPerWg;

    KernelDesc k;
    k.name = "miopenPoolingFwd";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = static_cast<std::uint32_t>(rows / rows_per_wg);
    k.endScope = SyncScope::system;
    k.pcBase = 0x15000;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(k.pcBase);
        std::uint64_t wave_first_row =
            static_cast<std::uint64_t>(wg) * rows_per_wg +
            static_cast<std::uint64_t>(wf) * inRowsPerWave;
        for (std::uint32_t r = 0; r < outRowsPerWave; ++r) {
            // 3-row window with stride 2: rows 2r and 2r+1 are fresh;
            // row 2r+2 is re-read by the next window (and the last
            // one belongs to the neighboring wave/workgroup) - the
            // cache-capturable overlap.
            std::uint64_t top = wave_first_row + 2 * r;
            for (std::uint64_t c = 0; c < rowChunks; ++c) {
                std::uint64_t off = top * rowBytes + c * chunkBytes;
                b.load(0, x_base + off);
                b.load(1, x_base + off + rowBytes);
                // Overlap row, wrapping at the tensor boundary.
                b.load(2, x_base +
                              (off + 2 * rowBytes) % (rows * rowBytes));
            }
            b.waitLoads();
            b.lds(4);  // window max via LDS staging
            b.valu(6);
            // Output row: half the input width (two chunks).
            Addr out = y_base + (top / 2) * (rowBytes / 2);
            b.store(3, out);
            b.store(3, out + chunkBytes);
        }
        return b.take();
    };
    return {k};
}

std::uint64_t
FwPoolWorkload::modelFootprint(double scale) const
{
    std::uint64_t rows = inputRows(scale);
    return rows * rowBytes + rows * rowBytes / 4; // x plus y
}

std::vector<KernelDesc>
BwPoolWorkload::buildKernels(double scale) const
{
    std::uint64_t rows = inputRows(scale); // dx rows
    Addr dy_base = region(0);
    Addr dx_base = region(1);
    std::uint64_t rows_per_wg = inRowsPerWave * wavesPerWg;

    KernelDesc k;
    k.name = "miopenPoolingBwd";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = static_cast<std::uint32_t>(rows / rows_per_wg);
    k.endScope = SyncScope::system;
    k.pcBase = 0x16000;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(k.pcBase);
        std::uint64_t wave_first_row =
            static_cast<std::uint64_t>(wg) * rows_per_wg +
            static_cast<std::uint64_t>(wf) * inRowsPerWave;
        for (std::uint32_t r = 0; r < outRowsPerWave; ++r) {
            std::uint64_t dy_row = (wave_first_row / 2) + r;
            // Read one dy row (half an input row wide).
            Addr dy = dy_base + dy_row * (rowBytes / 2);
            b.load(0, dy);
            b.load(0, dy + chunkBytes);
            b.waitLoads();
            b.valu(4);
            // Scatter into the 3 overlapped dx rows; row 2r+2 is
            // rewritten by the next window -> write coalescing win.
            std::uint64_t top = wave_first_row + 2 * r;
            for (std::uint64_t c = 0; c < rowChunks; ++c) {
                Addr dx0 = dx_base + top * rowBytes + c * chunkBytes;
                b.store(1, dx0);
                b.store(2, dx0 + rowBytes);
                b.store(3, dx_base +
                               ((top + 2) % rows) * rowBytes +
                               c * chunkBytes);
            }
        }
        return b.take();
    };
    return {k};
}

std::uint64_t
BwPoolWorkload::modelFootprint(double scale) const
{
    std::uint64_t rows = inputRows(scale);
    return rows * rowBytes + rows * rowBytes / 4; // dx plus dy
}

} // namespace migc
