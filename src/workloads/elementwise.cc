#include "workloads/elementwise.hh"

namespace migc
{

using workload_detail::region;
using workload_detail::roundTo;

namespace
{

constexpr std::uint64_t chunkBytes = 256; ///< one 64-lane fp32 vload
constexpr std::uint32_t itersPerWf = 32;
constexpr std::uint32_t unroll = 8; ///< deep software pipelining (MLP)
constexpr std::uint32_t wavesPerWg = 4;

/** Elements (chunks) covered by one workload at @p scale. */
std::uint64_t
fwChunks(double scale)
{
    // 6 MiB of fp32 elements per tensor at scale 1.
    return roundTo(scale * (6 << 20), chunkBytes * itersPerWf *
                                          wavesPerWg) / chunkBytes;
}

/**
 * Grid-stride chunk assignment: at any instant the live wavefronts
 * cover a dense span of consecutive chunks (as a real element-wise
 * kernel's global thread ids do), which is what gives the Uncached
 * configuration its long DRAM open-row streaks (Figure 9).
 */
std::uint64_t
gridStrideChunk(std::uint64_t wf_index, std::uint64_t total_wfs,
                std::uint32_t group, std::uint32_t u)
{
    return (static_cast<std::uint64_t>(group) * total_wfs + wf_index) *
               unroll + u;
}

} // namespace

std::vector<KernelDesc>
FwActWorkload::buildKernels(double scale) const
{
    std::uint64_t chunks = fwChunks(scale);
    Addr x_base = region(0);
    Addr y_base = region(1);

    KernelDesc k;
    k.name = "miopenActivationFwd";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = static_cast<std::uint32_t>(
        chunks / (itersPerWf * wavesPerWg));
    k.endScope = SyncScope::system;
    k.pcBase = 0x10000;
    std::uint64_t total_wfs =
        static_cast<std::uint64_t>(k.numWorkgroups) * wavesPerWg;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(k.pcBase);
        std::uint64_t w = static_cast<std::uint64_t>(wg) * wavesPerWg +
                          wf;
        for (std::uint32_t g = 0; g < itersPerWf / unroll; ++g) {
            for (std::uint32_t u = 0; u < unroll; ++u) {
                b.load(0, x_base + gridStrideChunk(w, total_wfs, g, u) *
                                       chunkBytes);
            }
            b.waitLoads();
            b.valu(2 * unroll); // max(x, 0)
            for (std::uint32_t u = 0; u < unroll; ++u) {
                b.store(1, y_base +
                               gridStrideChunk(w, total_wfs, g, u) *
                                   chunkBytes);
            }
        }
        return b.take();
    };
    return {k};
}

std::uint64_t
FwActWorkload::modelFootprint(double scale) const
{
    return fwChunks(scale) * chunkBytes * 2; // x and y
}

std::vector<KernelDesc>
BwActWorkload::buildKernels(double scale) const
{
    std::uint64_t chunks = fwChunks(scale);
    Addr dy_base = region(0);
    Addr y_base = region(1);
    Addr dx_base = region(2);

    KernelDesc k;
    k.name = "miopenActivationBwd";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = static_cast<std::uint32_t>(
        chunks / (itersPerWf * wavesPerWg));
    k.endScope = SyncScope::system;
    k.pcBase = 0x11000;
    std::uint64_t total_wfs =
        static_cast<std::uint64_t>(k.numWorkgroups) * wavesPerWg;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(k.pcBase);
        std::uint64_t w = static_cast<std::uint64_t>(wg) * wavesPerWg +
                          wf;
        for (std::uint32_t g = 0; g < itersPerWf / unroll; ++g) {
            for (std::uint32_t u = 0; u < unroll; ++u) {
                Addr off = gridStrideChunk(w, total_wfs, g, u) *
                           chunkBytes;
                b.load(0, dy_base + off);
                b.load(1, y_base + off);
            }
            b.waitLoads();
            b.valu(3 * unroll); // dx = dy * (y > 0)
            for (std::uint32_t u = 0; u < unroll; ++u) {
                b.store(2, dx_base +
                               gridStrideChunk(w, total_wfs, g, u) *
                                   chunkBytes);
            }
        }
        return b.take();
    };
    return {k};
}

std::uint64_t
BwActWorkload::modelFootprint(double scale) const
{
    return fwChunks(scale) * chunkBytes * 3; // dy, y, dx
}

} // namespace migc
