#include "workloads/rnn.hh"

namespace migc
{

using workload_detail::region;

namespace
{

constexpr std::uint32_t hidden = 128;
constexpr std::uint32_t kDim = 2 * hidden; ///< [x_t ; h_{t-1}]
constexpr std::uint32_t wavesPerWg = 4;
constexpr std::uint32_t rowsPerWave = 16;
constexpr std::uint32_t kChunk = 64; ///< K elements per GEMV step

std::uint32_t
seqLen(double scale)
{
    auto s = static_cast<std::uint32_t>(scale * 16.0);
    return s < 2 ? 2 : s;
}

/**
 * Gate GEMV: out[n_out] = W[n_out x kDim] * xh[kDim].
 * Streams W once; the xh vector is re-read by every wave (the
 * in-kernel reuse), and W itself is the cross-step L2 reuse.
 */
KernelDesc
gemvKernel(const std::string &name, Addr pc_base, Addr w_base,
           Addr xh_base, Addr out_base, std::uint32_t n_out)
{
    KernelDesc k;
    k.name = name;
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = n_out / (wavesPerWg * rowsPerWave);
    k.endScope = SyncScope::device;
    k.pcBase = pc_base;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(pc_base);
        std::uint64_t row0 =
            (static_cast<std::uint64_t>(wg) * wavesPerWg + wf) *
            rowsPerWave;
        for (std::uint32_t kt = 0; kt < kDim / kChunk; ++kt) {
            std::uint64_t k0 = static_cast<std::uint64_t>(kt) * kChunk;
            b.load(0, xh_base + k0 * 4); // shared input vector chunk
            for (std::uint32_t r = 0; r < rowsPerWave; ++r) {
                Addr w = w_base + ((row0 + r) * kDim + k0) * 4;
                b.load(1, w);
            }
            b.waitLoads();
            b.lds(2);
            b.valu(rowsPerWave * kChunk / 64, 4); // MACs
        }
        b.valu(8); // gate nonlinearities
        b.store(2, out_base + row0 * 4, 4, rowsPerWave);
        return b.take();
    };
    return k;
}

/** Element-wise cell state/hidden update; tiny streams. */
KernelDesc
cellUpdateKernel(const std::string &name, Addr pc_base, Addr gates_base,
                 Addr c_base, Addr h_out_base, std::uint32_t n_out)
{
    KernelDesc k;
    k.name = name;
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = 1;
    k.endScope = SyncScope::device;
    k.pcBase = pc_base;
    k.makeProgram = [=](std::uint32_t, std::uint32_t wf) {
        ProgramBuilder b(pc_base);
        std::uint64_t chunks = n_out * 4 / 256;
        if (wf >= chunks) {
            // Wave got no chunk: still participates in the barrier.
            b.valu(1);
            return b.take();
        }
        // Round-robin chunk assignment keeps every wave non-empty
        // even when the gate vector is only a few chunks long.
        for (std::uint64_t idx = wf; idx < chunks; idx += wavesPerWg) {
            Addr off = idx * 256;
            b.load(0, gates_base + off);
            b.load(1, c_base + (off % (hidden * 4)));
            b.waitLoads();
            b.valu(6); // sigmoid/tanh combine
            b.store(2, c_base + (off % (hidden * 4)));
            b.store(3, h_out_base + (off % (hidden * 4)));
        }
        return b.take();
    };
    return k;
}

/**
 * dW accumulation: dW += dgates (x) xh. Reads and rewrites the whole
 * gradient buffer every step - the CacheRW coalescing target.
 */
KernelDesc
wgradKernel(const std::string &name, Addr pc_base, Addr dw_base,
            Addr dgates_base, Addr xh_base, std::uint32_t n_out)
{
    KernelDesc k;
    k.name = name;
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = n_out / (wavesPerWg * rowsPerWave);
    k.endScope = SyncScope::device;
    k.pcBase = pc_base;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(pc_base);
        std::uint64_t row0 =
            (static_cast<std::uint64_t>(wg) * wavesPerWg + wf) *
            rowsPerWave;
        b.load(0, dgates_base + row0 * 4, 4, rowsPerWave);
        b.load(1, xh_base);
        b.waitLoads();
        for (std::uint32_t r = 0; r < rowsPerWave; ++r) {
            Addr row = dw_base + (row0 + r) * kDim * 4;
            // Read-modify-write the full row (kDim * 4 B = 4 chunks).
            for (std::uint32_t c = 0; c < kDim * 4 / 256; ++c) {
                b.load(2, row + c * 256);
                b.waitLoads();
                b.valu(2);
                b.store(3, row + c * 256);
            }
        }
        return b.take();
    };
    return k;
}

} // namespace

std::string
RnnWorkload::name() const
{
    std::string base = cell_ == RnnCell::lstm ? "LSTM" : "GRU";
    return (training_ ? "FwBw" : "Fw") + base;
}

WorkloadInfo
RnnWorkload::paperInfo() const
{
    if (training_) {
        return {"Batch 1, seq len 16, hidden 128", 6, 363, "0.48 MB"};
    }
    return {"Batch 1, seq len 16, hidden 128", 4, 150, "0.38 MB"};
}

std::vector<KernelDesc>
RnnWorkload::buildKernels(double scale) const
{
    std::uint32_t steps = seqLen(scale);
    std::uint32_t n_out = gates() * hidden;

    Addr w_base = region(0);      // recurrent weights
    Addr xh_base = region(1);     // per-step [x;h] buffers
    Addr gates_base = region(2);  // per-step gate activations
    Addr c_base = region(3);      // cell state
    Addr dw_base = region(4);     // weight gradients (training)
    Addr dg_base = region(5);     // gate gradients (training)

    std::vector<KernelDesc> ks;
    for (std::uint32_t t = 0; t < steps; ++t) {
        Addr xh_t = xh_base + static_cast<Addr>(t) * kDim * 4;
        Addr g_t = gates_base + static_cast<Addr>(t) * n_out * 4;
        ks.push_back(gemvKernel(name() + ".gates", 0x23000, w_base,
                                xh_t, g_t, n_out));
        ks.push_back(cellUpdateKernel(name() + ".cell", 0x23800, g_t,
                                      c_base, xh_t + hidden * 4,
                                      n_out));
    }
    if (training_) {
        for (std::uint32_t t = steps; t-- > 0;) {
            Addr xh_t = xh_base + static_cast<Addr>(t) * kDim * 4;
            Addr g_t = gates_base + static_cast<Addr>(t) * n_out * 4;
            // Backward-through-time: transposed GEMV for dxh, then
            // accumulate dW.
            ks.push_back(gemvKernel(name() + ".bwdData", 0x24000,
                                    w_base, g_t, dg_base, n_out));
            ks.push_back(wgradKernel(name() + ".bwdWeights", 0x24800,
                                     dw_base, dg_base, xh_t, n_out));
        }
    }
    ks.back().endScope = SyncScope::system;
    return ks;
}

std::uint64_t
RnnWorkload::modelFootprint(double scale) const
{
    std::uint32_t steps = seqLen(scale);
    std::uint32_t n_out = gates() * hidden;
    std::uint64_t w = static_cast<std::uint64_t>(n_out) * kDim * 4;
    std::uint64_t acts = static_cast<std::uint64_t>(steps) *
                         (kDim + n_out) * 4;
    std::uint64_t grads = training_ ? w + n_out * 4 : 0;
    return w + acts + grads + hidden * 4;
}

} // namespace migc
