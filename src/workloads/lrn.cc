#include "workloads/lrn.hh"

namespace migc
{

using workload_detail::region;
using workload_detail::roundTo;

namespace
{

constexpr std::uint64_t chunkBytes = 256;
constexpr std::uint32_t itersPerWf = 32;
constexpr std::uint32_t wavesPerWg = 4;

/** Plane (channel) size: the cross-channel reuse distance. */
constexpr std::uint64_t planeBytes = 1 << 20; // 1 MiB >= L2 share

std::uint64_t
planes(double scale)
{
    // 4 planes at scale 1 -> 4 MiB of input.
    auto p = static_cast<std::uint64_t>(scale * 4.0);
    return p < 2 ? 2 : p;
}

} // namespace

std::vector<KernelDesc>
FwLrnWorkload::buildKernels(double scale) const
{
    std::uint64_t num_planes = planes(scale);
    std::uint64_t chunks_per_plane = planeBytes / chunkBytes;
    std::uint64_t chunks = num_planes * chunks_per_plane;
    Addr x_base = region(0);
    Addr y_base = region(1);

    KernelDesc k;
    k.name = "miopenLRNForward";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = static_cast<std::uint32_t>(
        chunks / (itersPerWf * wavesPerWg));
    k.endScope = SyncScope::system;
    k.pcBase = 0x12000;
    std::uint64_t total_wfs =
        static_cast<std::uint64_t>(k.numWorkgroups) * wavesPerWg;
    constexpr std::uint32_t unroll = 8;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(k.pcBase);
        std::uint64_t w = static_cast<std::uint64_t>(wg) * wavesPerWg +
                          wf;
        for (std::uint32_t g = 0; g < itersPerWf / unroll; ++g) {
            for (std::uint32_t u = 0; u < unroll; ++u) {
                std::uint64_t chunk =
                    (static_cast<std::uint64_t>(g) * total_wfs + w) *
                        unroll + u;
                Addr off = chunk * chunkBytes;
                // Own-plane element plus the next channel's element:
                // the second read targets data another workgroup
                // reads as its own plane, one full plane later -
                // reuse the caches cannot hold on to.
                Addr neighbor = (off + planeBytes) %
                                (chunks * chunkBytes);
                b.load(0, x_base + off);
                b.load(1, x_base + neighbor);
            }
            b.waitLoads();
            b.lds(2 * unroll);  // window partial sums staged in LDS
            b.valu(4 * unroll); // square, scale, pow
            for (std::uint32_t u = 0; u < unroll; ++u) {
                std::uint64_t chunk =
                    (static_cast<std::uint64_t>(g) * total_wfs + w) *
                        unroll + u;
                b.store(2, y_base + chunk * chunkBytes);
            }
        }
        return b.take();
    };
    return {k};
}

std::uint64_t
FwLrnWorkload::modelFootprint(double scale) const
{
    return planes(scale) * planeBytes * 2; // x and y
}

} // namespace migc
