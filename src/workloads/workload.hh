/**
 * @file
 * The MI workloads of Table 2 (plus model extensions), modeled as
 * memory-access-pattern generators.
 *
 * The paper ran DNNMark / DeepBench / MIOpen-benchmark binaries on a
 * full ROCm stack inside gem5. We cannot execute GCN binaries, so
 * each workload here reproduces the *memory structure* the paper
 * describes for that layer type - footprint, load/store mix, tiling,
 * LDS usage, intra- and inter-kernel reuse distance, kernel count,
 * and synchronization scope - at a footprint scaled to the scaled
 * simulator configuration (see DESIGN.md, substitution table).
 *
 * Workloads are constructed by name through the WorkloadRegistry;
 * workloadOrder() / extendedWorkloadOrder() derive from the same
 * registry, so the order lists and the factory cannot drift apart.
 * Downstream users register additional workloads with
 * WorkloadRegistry::add() (see examples/custom_workload.cpp).
 */

#ifndef MIGC_WORKLOADS_WORKLOAD_HH
#define MIGC_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"

namespace migc
{

/** The paper's three workload classes (Section VI.A). */
enum class Category
{
    insensitive,         ///< cache policy changes exec time < 5%
    reuseSensitive,      ///< caching helps
    throughputSensitive, ///< caching hurts
};

const char *categoryName(Category c);

/** Table 2 metadata (the paper's own numbers, for reporting). */
struct WorkloadInfo
{
    std::string input;
    unsigned uniqueKernels = 1;
    unsigned totalKernels = 1;
    std::string gpuFootprint;
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** The class the paper measured for this workload. */
    virtual Category category() const = 0;

    /** Table 2 row for this workload. */
    virtual WorkloadInfo paperInfo() const = 0;

    /**
     * Build the kernel sequence at footprint scale @p scale
     * (1.0 = the scaled default, docs/ARCHITECTURE.md scaling note).
     * Validates @p scale once for every workload (fatal unless
     * finite and > 0) and delegates to buildKernels().
     */
    std::vector<KernelDesc> kernels(double scale) const;

    /** Modeled GPU footprint in bytes at @p scale (validated like
     *  kernels()). */
    std::uint64_t footprintBytes(double scale) const;

  protected:
    /** Workload-specific kernel construction; @p scale is already
     *  validated by the non-virtual kernels() wrapper. */
    virtual std::vector<KernelDesc> buildKernels(double scale) const = 0;

    /** Workload-specific footprint model; @p scale validated. */
    virtual std::uint64_t modelFootprint(double scale) const = 0;
};

/**
 * String-keyed registry of workloads: the single source of truth for
 * which workloads exist and how the reporting paths order them.
 */
class WorkloadRegistry
{
  public:
    struct Entry
    {
        std::string name;

        std::function<std::unique_ptr<Workload>()> factory;

        /**
         * Position in the paper's Figure 6 ordering, or -1 for a
         * model extension beyond the paper's 17 (extensions report
         * after the paper set, in registration order).
         */
        int figure6Rank = -1;
    };

    /** The process-wide registry (built-ins registered on first use). */
    static WorkloadRegistry &instance();

    /**
     * Register an entry (replaces an existing entry of the same
     * name). Register before submitting sweep runs; not safe while
     * worker threads are resolving workloads.
     */
    void add(Entry entry);

    /** Build @p name; fatal on unknown, listing the valid names. */
    std::unique_ptr<Workload> make(const std::string &name) const;

    bool known(const std::string &name) const;

    /** The paper's workloads in Figure 6 order. */
    std::vector<std::string> paperOrder() const;

    /** Paper order plus the registered model extensions. */
    std::vector<std::string> extendedOrder() const;

    /** One line per entry, for --list output. */
    std::string describe() const;

  private:
    WorkloadRegistry();

    std::vector<Entry> entries_;
};

/** Workload names in the paper's Figure 6 order (registry-derived). */
std::vector<std::string> workloadOrder();

/** Paper order plus model extensions such as Attn (registry-derived);
 *  the 18-workload list the dynamic-policy sweeps run on. */
std::vector<std::string> extendedWorkloadOrder();

/** Instantiate a workload by name (fatal on unknown name, listing
 *  the valid names). */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** Instantiate the paper's 17 workloads in Figure 6 order. */
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

namespace workload_detail
{

/** Disjoint 256 MiB address regions for workload buffers. */
constexpr Addr
region(unsigned i)
{
    return 0x1'0000'0000ULL + static_cast<Addr>(i) * 0x1000'0000ULL;
}

/** Round @p v to a multiple of @p m, at least @p m. */
std::uint64_t roundTo(double v, std::uint64_t m);

/** Shared scale validation: fatal unless finite and > 0. */
void checkScale(const char *workload, double scale);

} // namespace workload_detail

} // namespace migc

#endif // MIGC_WORKLOADS_WORKLOAD_HH
