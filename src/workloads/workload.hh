/**
 * @file
 * The 17 MI workloads of Table 2, modeled as memory-access-pattern
 * generators.
 *
 * The paper ran DNNMark / DeepBench / MIOpen-benchmark binaries on a
 * full ROCm stack inside gem5. We cannot execute GCN binaries, so
 * each workload here reproduces the *memory structure* the paper
 * describes for that layer type - footprint, load/store mix, tiling,
 * LDS usage, intra- and inter-kernel reuse distance, kernel count,
 * and synchronization scope - at a footprint scaled to the scaled
 * simulator configuration (see DESIGN.md, substitution table).
 */

#ifndef MIGC_WORKLOADS_WORKLOAD_HH
#define MIGC_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hh"

namespace migc
{

/** The paper's three workload classes (Section VI.A). */
enum class Category
{
    insensitive,         ///< cache policy changes exec time < 5%
    reuseSensitive,      ///< caching helps
    throughputSensitive, ///< caching hurts
};

const char *categoryName(Category c);

/** Table 2 metadata (the paper's own numbers, for reporting). */
struct WorkloadInfo
{
    std::string input;
    unsigned uniqueKernels = 1;
    unsigned totalKernels = 1;
    std::string gpuFootprint;
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** The class the paper measured for this workload. */
    virtual Category category() const = 0;

    /** Table 2 row for this workload. */
    virtual WorkloadInfo paperInfo() const = 0;

    /**
     * Build the kernel sequence at footprint scale @p scale
     * (1.0 = the scaled default documented in EXPERIMENTS.md).
     */
    virtual std::vector<KernelDesc> kernels(double scale) const = 0;

    /** Modeled GPU footprint in bytes at @p scale. */
    virtual std::uint64_t footprintBytes(double scale) const = 0;
};

/** Workload names in the paper's Figure 6 order. */
std::vector<std::string> workloadOrder();

/** Instantiate a workload by name (fatal on unknown name). */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** Instantiate all 17 workloads in Figure 6 order. */
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

namespace workload_detail
{

/** Disjoint 256 MiB address regions for workload buffers. */
constexpr Addr
region(unsigned i)
{
    return 0x1'0000'0000ULL + static_cast<Addr>(i) * 0x1000'0000ULL;
}

/** Round @p v to a multiple of @p m, at least @p m. */
std::uint64_t roundTo(double v, std::uint64_t m);

} // namespace workload_detail

} // namespace migc

#endif // MIGC_WORKLOADS_WORKLOAD_HH
