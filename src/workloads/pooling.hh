/**
 * @file
 * Max-pooling layers (DNNMark FwPool / BwPool), 3x3 window, stride 2.
 *
 * Forward: workgroups stage their input tile through the LDS; only
 * the one-row halo shared with the neighboring tile is re-read
 * through the caches, so read caching helps but modestly - while the
 * bursty tile loads drive high cache stall counts (the paper notes
 * FwPool's stalls are offset by its reuse, and that it loses ~7%
 * under allocation bypass until PC-based bypassing repairs it).
 *
 * Backward: each dy element scatters into an overlapping 3x3 input
 * gradient window, so consecutive iterations rewrite the same dx
 * lines - the unbalanced load/store mix the paper calls out, and a
 * prime write-coalescing win for CacheRW.
 */

#ifndef MIGC_WORKLOADS_POOLING_HH
#define MIGC_WORKLOADS_POOLING_HH

#include "workloads/workload.hh"

namespace migc
{

class FwPoolWorkload : public Workload
{
  public:
    std::string name() const override { return "FwPool"; }

    Category category() const override { return Category::reuseSensitive; }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 256", 1, 1, "480 MB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

class BwPoolWorkload : public Workload
{
  public:
    std::string name() const override { return "BwPool"; }

    Category category() const override { return Category::reuseSensitive; }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 256", 1, 1, "252 MB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

} // namespace migc

#endif // MIGC_WORKLOADS_POOLING_HH
