#include "workloads/batchnorm.hh"

namespace migc
{

using workload_detail::region;
using workload_detail::roundTo;

namespace
{

constexpr std::uint64_t chunkBytes = 256;
constexpr std::uint32_t wavesPerWg = 4;

/** Slab of x handled (and re-read) by one workgroup. */
constexpr std::uint64_t slabBytes = 64 << 10; // 64 KiB

std::uint32_t
numSlabs(double scale)
{
    // 2 MiB of input at scale 1 -> 32 slabs.
    auto n = static_cast<std::uint32_t>(scale * 32.0);
    return n < 4 ? 4 : n;
}

} // namespace

std::vector<KernelDesc>
FwBnWorkload::buildKernels(double scale) const
{
    std::uint32_t slabs = numSlabs(scale);
    Addr x_base = region(0);
    Addr y_base = region(1);
    std::uint64_t chunks_per_wf = slabBytes / chunkBytes / wavesPerWg;

    KernelDesc k;
    k.name = "miopenBatchNormFwdSpatial";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = slabs;
    k.endScope = SyncScope::system;
    k.pcBase = 0x13000;
    constexpr std::uint32_t unroll = 8;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(k.pcBase);
        Addr slab = x_base + static_cast<Addr>(wg) * slabBytes;
        Addr out = y_base + static_cast<Addr>(wg) * slabBytes;
        // Waves sweep the slab front-to-back together (chunk c goes
        // to wave c%4), as MIOpen's workgroup-parallel reductions do;
        // the slab is therefore a dense sequential stream at DRAM.
        // Pass 1: accumulate mean/variance over the slab.
        for (std::uint64_t g = 0; g < chunks_per_wf / unroll; ++g) {
            for (std::uint32_t u = 0; u < unroll; ++u) {
                std::uint64_t c =
                    (g * wavesPerWg + wf) * unroll + u;
                b.load(0, slab + c * chunkBytes);
            }
            b.waitLoads();
            b.valu(2 * unroll);
        }
        b.lds(4); // cross-wavefront reduction of the statistics
        b.valu(2);
        // Pass 2: re-read the slab (L2-distance reuse), normalize,
        // write out.
        for (std::uint64_t g = 0; g < chunks_per_wf / unroll; ++g) {
            for (std::uint32_t u = 0; u < unroll; ++u) {
                std::uint64_t c =
                    (g * wavesPerWg + wf) * unroll + u;
                b.load(1, slab + c * chunkBytes);
            }
            b.waitLoads();
            b.valu(3 * unroll);
            for (std::uint32_t u = 0; u < unroll; ++u) {
                std::uint64_t c =
                    (g * wavesPerWg + wf) * unroll + u;
                b.store(2, out + c * chunkBytes);
            }
        }
        return b.take();
    };
    return {k};
}

std::uint64_t
FwBnWorkload::modelFootprint(double scale) const
{
    return static_cast<std::uint64_t>(numSlabs(scale)) * slabBytes * 2;
}

std::vector<KernelDesc>
BwBnWorkload::buildKernels(double scale) const
{
    std::uint32_t slabs = numSlabs(scale);
    Addr x_base = region(0);
    Addr dy_base = region(1);
    Addr dx_base = region(2);
    Addr param_base = region(3); // dgamma/dbeta accumulators
    std::uint64_t chunks_per_wf = slabBytes / chunkBytes / wavesPerWg;

    KernelDesc k;
    k.name = "miopenBatchNormBwdSpatial";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = slabs;
    k.endScope = SyncScope::system;
    k.pcBase = 0x14000;
    constexpr std::uint32_t unroll = 4;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(k.pcBase);
        Addr xs = x_base + static_cast<Addr>(wg) * slabBytes;
        Addr dys = dy_base + static_cast<Addr>(wg) * slabBytes;
        Addr dxs = dx_base + static_cast<Addr>(wg) * slabBytes;
        // One accumulator line per (workgroup, wavefront): stored
        // into every iteration -> near-total write coalescing in L2.
        Addr acc = param_base +
                   (static_cast<Addr>(wg) * wavesPerWg + wf) * 64;
        // Pass 1: reduce dy*x into dgamma/dbeta accumulators.
        for (std::uint64_t g = 0; g < chunks_per_wf / unroll; ++g) {
            for (std::uint32_t u = 0; u < unroll; ++u) {
                std::uint64_t c =
                    (g * wavesPerWg + wf) * unroll + u;
                b.load(0, xs + c * chunkBytes);
                b.load(1, dys + c * chunkBytes);
            }
            b.waitLoads();
            b.valu(3 * unroll);
            b.store(2, acc, 4, 16); // partial accumulator update
        }
        b.lds(4);
        // Pass 2: re-read x and dy, produce dx.
        for (std::uint64_t g = 0; g < chunks_per_wf / unroll; ++g) {
            for (std::uint32_t u = 0; u < unroll; ++u) {
                std::uint64_t c =
                    (g * wavesPerWg + wf) * unroll + u;
                b.load(3, xs + c * chunkBytes);
                b.load(4, dys + c * chunkBytes);
            }
            b.waitLoads();
            b.valu(4 * unroll);
            for (std::uint32_t u = 0; u < unroll; ++u) {
                std::uint64_t c =
                    (g * wavesPerWg + wf) * unroll + u;
                b.store(5, dxs + c * chunkBytes);
            }
        }
        return b.take();
    };
    return {k};
}

std::uint64_t
BwBnWorkload::modelFootprint(double scale) const
{
    // x, dy, dx slabs plus the small parameter accumulators.
    std::uint64_t slabs = numSlabs(scale);
    return slabs * slabBytes * 3 + slabs * wavesPerWg * 64;
}

} // namespace migc
