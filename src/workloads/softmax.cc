#include "workloads/softmax.hh"

namespace migc
{

using workload_detail::region;

namespace
{

constexpr std::uint64_t chunkBytes = 256;
constexpr std::uint32_t wavesPerWg = 4;

/** Per-wavefront slice of the softmax vector, re-read each pass. */
constexpr std::uint64_t sliceChunks = 8; // 2 KiB per wavefront

std::uint32_t
numWgs(double scale)
{
    // 64 KiB buffer at scale 1 -> 8 workgroups.
    auto n = static_cast<std::uint32_t>(scale * 8.0);
    return n < 2 ? 2 : n;
}

/** Three-pass softmax body shared by forward and backward. */
WavefrontProgram
softmaxProgram(Addr pc_base, Addr in_base, Addr extra_base,
               Addr out_base, std::uint32_t wg, std::uint32_t wf,
               bool has_extra)
{
    ProgramBuilder b(pc_base);
    Addr slice = (static_cast<Addr>(wg) * wavesPerWg + wf) *
                 sliceChunks * chunkBytes;

    // Pass 1: row max. The whole slice is in flight at once, as a
    // vectorized softmax kernel would issue it.
    for (std::uint64_t c = 0; c < sliceChunks; ++c)
        b.load(0, in_base + slice + c * chunkBytes);
    b.waitLoads();
    b.valu(sliceChunks);
    b.lds(2);
    // Pass 2: exp and sum; re-reads the same slice (cache hit).
    for (std::uint64_t c = 0; c < sliceChunks; ++c) {
        b.load(1, in_base + slice + c * chunkBytes);
        if (has_extra)
            b.load(2, extra_base + slice + c * chunkBytes);
    }
    b.waitLoads();
    b.valu(3 * sliceChunks);
    b.lds(2);
    // Pass 3: normalize and write out; third read of the slice.
    for (std::uint64_t c = 0; c < sliceChunks; ++c)
        b.load(3, in_base + slice + c * chunkBytes);
    b.waitLoads();
    b.valu(2 * sliceChunks);
    for (std::uint64_t c = 0; c < sliceChunks; ++c)
        b.store(4, out_base + slice + c * chunkBytes);
    return b.take();
}

} // namespace

std::vector<KernelDesc>
FwSoftWorkload::buildKernels(double scale) const
{
    std::uint32_t wgs = numWgs(scale);
    Addr x_base = region(0);
    Addr y_base = region(1);

    KernelDesc k;
    k.name = "miopenSoftmaxFwd";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = wgs;
    k.endScope = SyncScope::system;
    k.pcBase = 0x17000;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        return softmaxProgram(k.pcBase, x_base, 0, y_base, wg, wf,
                              false);
    };
    return {k};
}

std::uint64_t
FwSoftWorkload::modelFootprint(double scale) const
{
    return static_cast<std::uint64_t>(numWgs(scale)) * wavesPerWg *
           sliceChunks * chunkBytes * 2;
}

std::vector<KernelDesc>
BwSoftWorkload::buildKernels(double scale) const
{
    std::uint32_t wgs = numWgs(scale);
    Addr y_base = region(0);
    Addr dy_base = region(1);
    Addr dx_base = region(2);

    KernelDesc k;
    k.name = "miopenSoftmaxBwd";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = wgs;
    k.endScope = SyncScope::system;
    k.pcBase = 0x18000;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        return softmaxProgram(k.pcBase, y_base, dy_base, dx_base, wg,
                              wf, true);
    };
    return {k};
}

std::uint64_t
BwSoftWorkload::modelFootprint(double scale) const
{
    return static_cast<std::uint64_t>(numWgs(scale)) * wavesPerWg *
           sliceChunks * chunkBytes * 3;
}

} // namespace migc
