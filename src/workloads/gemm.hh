/**
 * @file
 * GEMM-family workloads: DeepBench SGEMM / DGEMM and the DNNMark
 * fully connected forward layer (FwFc).
 *
 * All three use an LDS-tiled dense GEMM. SGEMM/DGEMM use large tiles
 * (high arithmetic intensity), so despite read caching removing
 * 70-85% of their DRAM traffic they stay compute-bound and policy-
 * insensitive, as in the paper. FwFc uses small tiles and a large
 * weight matrix streamed by every batch tile, making it memory-bound
 * with heavy cross-workgroup weight reuse: the paper's biggest read
 * caching winner (up to 93% demand reduction, 29% speedup).
 */

#ifndef MIGC_WORKLOADS_GEMM_HH
#define MIGC_WORKLOADS_GEMM_HH

#include "workloads/workload.hh"

namespace migc
{

/** Shape/tiling parameters for the shared tiled-GEMM generator. */
struct GemmShape
{
    std::uint32_t m = 512;
    std::uint32_t n = 128;
    std::uint32_t k = 512;
    std::uint32_t elemBytes = 4;
    std::uint32_t tileM = 64;
    std::uint32_t tileN = 64;
    std::uint32_t tileK = 16;
    /** Cycles per vector MAC (2 for fp32 MAC+addr, 4+ for fp64). */
    std::uint32_t cyclesPerVop = 4;
};

/**
 * Build one tiled GEMM kernel C[MxN] = A[MxK] * B[KxN].
 * Workgroups sharing a B (N-dimension) tile get adjacent ids so they
 * run concurrently and their shared tiles are L2-resident.
 */
KernelDesc makeGemmKernel(const std::string &name, Addr pc_base,
                          Addr a_base, Addr b_base, Addr c_base,
                          const GemmShape &shape);

class SgemmWorkload : public Workload
{
  public:
    std::string name() const override { return "SGEMM"; }

    Category category() const override { return Category::insensitive; }

    WorkloadInfo
    paperInfo() const override
    {
        return {"4Kx128x4K", 1, 1, "68 MB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

class DgemmWorkload : public Workload
{
  public:
    std::string name() const override { return "DGEMM"; }

    Category category() const override { return Category::insensitive; }

    WorkloadInfo
    paperInfo() const override
    {
        return {"4Kx128x4K", 1, 1, "132 MB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

class FwFcWorkload : public Workload
{
  public:
    std::string name() const override { return "FwFc"; }

    Category category() const override { return Category::reuseSensitive; }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 512", 1, 1, "148.2 MB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

} // namespace migc

#endif // MIGC_WORKLOADS_GEMM_HH
