/**
 * @file
 * The Composed Model (DNNMark CM): a small multi-layer network
 * alternating convolution, activation, and pooling kernels.
 *
 * Convolutions dominate and are compute-bound; layer activations are
 * passed between kernels through memory at device scope, so caching
 * captures substantial reuse (the paper measures a 69% demand
 * reduction) without moving the bottleneck - CM is the canonical
 * memory-insensitive workload.
 */

#ifndef MIGC_WORKLOADS_COMPOSED_HH
#define MIGC_WORKLOADS_COMPOSED_HH

#include "workloads/workload.hh"

namespace migc
{

class ComposedModelWorkload : public Workload
{
  public:
    std::string name() const override { return "CM"; }

    Category category() const override { return Category::insensitive; }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 64", 4, 130, "12.1 MB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

} // namespace migc

#endif // MIGC_WORKLOADS_COMPOSED_HH
