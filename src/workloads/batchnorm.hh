/**
 * @file
 * Batch normalization layers (DNNMark FwBN / BwBN).
 *
 * MIOpen's spatial batch-norm kernels make two passes over each
 * workgroup's channel slab (statistics, then normalization), so the
 * second pass re-reads data at a slab-sized reuse distance the L2
 * can capture - the paper's reuse-sensitive read pattern. The
 * backward pass additionally accumulates per-channel dgamma/dbeta
 * into the same lines every iteration, which is exactly the write
 * coalescing opportunity CacheRW exploits (paper: BwBN is one of the
 * biggest write-caching winners).
 */

#ifndef MIGC_WORKLOADS_BATCHNORM_HH
#define MIGC_WORKLOADS_BATCHNORM_HH

#include "workloads/workload.hh"

namespace migc
{

class FwBnWorkload : public Workload
{
  public:
    std::string name() const override { return "FwBN"; }

    Category category() const override { return Category::reuseSensitive; }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 256", 1, 1, "42 MB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

class BwBnWorkload : public Workload
{
  public:
    std::string name() const override { return "BwBN"; }

    Category category() const override { return Category::reuseSensitive; }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 512", 1, 1, "5.88 MB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

} // namespace migc

#endif // MIGC_WORKLOADS_BATCHNORM_HH
