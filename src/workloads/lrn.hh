/**
 * @file
 * Local Response Normalization forward (DNNMark FwLRN).
 *
 * Normalizes each element across a window of adjacent channels, so
 * every output reads its own plane plus neighboring planes. The
 * cross-plane re-reads are separated by an entire plane's worth of
 * workgroups - far beyond what the caches can hold - so attempting
 * to cache them only buys stalls and row-locality disruption: the
 * paper's most caching-hostile workload (Section VII.A notes FwLRN
 * is most affected by allocation blocking and benefits most from
 * allocation bypass).
 */

#ifndef MIGC_WORKLOADS_LRN_HH
#define MIGC_WORKLOADS_LRN_HH

#include "workloads/workload.hh"

namespace migc
{

class FwLrnWorkload : public Workload
{
  public:
    std::string name() const override { return "FwLRN"; }

    Category
    category() const override
    {
        return Category::throughputSensitive;
    }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 100", 1, 1, "2.4 GB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

} // namespace migc

#endif // MIGC_WORKLOADS_LRN_HH
