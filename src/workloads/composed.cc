#include "workloads/composed.hh"

#include "workloads/gemm.hh"

namespace migc
{

using workload_detail::region;

namespace
{

constexpr std::uint32_t wavesPerWg = 4;

std::uint32_t
numLayers(double scale)
{
    auto n = static_cast<std::uint32_t>(scale * 8.0);
    return n < 2 ? 2 : n;
}

/** Small element-wise activation over @p bytes at @p base. */
KernelDesc
actKernel(Addr pc_base, Addr in_base, Addr out_base, std::uint64_t bytes)
{
    constexpr std::uint64_t chunk = 256;
    constexpr std::uint32_t iters = 8;
    KernelDesc k;
    k.name = "cmActivation";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = static_cast<std::uint32_t>(
        bytes / (chunk * iters * wavesPerWg));
    if (k.numWorkgroups == 0)
        k.numWorkgroups = 1;
    k.endScope = SyncScope::device;
    k.pcBase = pc_base;
    std::uint64_t chunks = bytes / chunk;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(pc_base);
        std::uint64_t first =
            (static_cast<std::uint64_t>(wg) * wavesPerWg + wf) * iters;
        std::uint32_t live = 0;
        for (std::uint32_t it = 0; it < iters; ++it) {
            std::uint64_t c = first + it;
            if (c >= chunks)
                break;
            b.load(0, in_base + c * chunk);
            ++live;
        }
        if (live == 0) {
            b.valu(1);
            return b.take();
        }
        b.waitLoads();
        b.valu(2 * live);
        for (std::uint32_t it = 0; it < live; ++it)
            b.store(1, out_base + (first + it) * chunk);
        return b.take();
    };
    return k;
}

/** 2x reduction pooling over @p bytes. */
KernelDesc
poolKernel(Addr pc_base, Addr in_base, Addr out_base,
           std::uint64_t bytes)
{
    constexpr std::uint64_t chunk = 256;
    constexpr std::uint32_t iters = 8;
    KernelDesc k;
    k.name = "cmPooling";
    k.wavesPerWorkgroup = wavesPerWg;
    k.numWorkgroups = static_cast<std::uint32_t>(
        bytes / (chunk * iters * wavesPerWg));
    if (k.numWorkgroups == 0)
        k.numWorkgroups = 1;
    k.endScope = SyncScope::device;
    k.pcBase = pc_base;
    std::uint64_t chunks = bytes / chunk;
    k.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        ProgramBuilder b(pc_base);
        std::uint64_t first =
            (static_cast<std::uint64_t>(wg) * wavesPerWg + wf) * iters;
        std::uint32_t live = 0;
        for (std::uint32_t it = 0; it < iters; it += 2) {
            std::uint64_t c = first + it;
            if (c + 1 >= chunks)
                break;
            b.load(0, in_base + c * chunk);
            b.load(0, in_base + (c + 1) * chunk);
            live += 2;
        }
        if (live == 0) {
            b.valu(1);
            return b.take();
        }
        b.waitLoads();
        b.lds(live);
        b.valu(3 * live / 2);
        for (std::uint32_t it = 0; it < live; it += 2)
            b.store(1, out_base + (first + it) * chunk / 2);
        return b.take();
    };
    return k;
}

} // namespace

std::vector<KernelDesc>
ComposedModelWorkload::buildKernels(double scale) const
{
    std::uint32_t layers = numLayers(scale);

    // Activation ping-pong buffers and per-layer weights.
    Addr act_a = region(0);
    Addr act_b = region(1);
    Addr weights = region(2);

    // Convolution modeled as implicit GEMM: 256 output pixels x
    // 64 output channels x 256 (in-channels x filter taps).
    GemmShape conv;
    conv.m = 256;
    conv.n = 64;
    conv.k = 256;
    conv.elemBytes = 4;
    conv.cyclesPerVop = 4;

    std::uint64_t act_bytes =
        static_cast<std::uint64_t>(conv.m) * conv.n * 4; // 64 KiB

    std::vector<KernelDesc> ks;
    for (std::uint32_t l = 0; l < layers; ++l) {
        Addr in = (l % 2 == 0) ? act_a : act_b;
        Addr out = (l % 2 == 0) ? act_b : act_a;
        Addr w = weights + static_cast<Addr>(l) * (1 << 20);

        KernelDesc conv_k = makeGemmKernel(
            "cmConvolution", 0x25000, in, w, out, conv);
        conv_k.endScope = SyncScope::device;
        ks.push_back(conv_k);
        ks.push_back(actKernel(0x25800, out, out, act_bytes));
        ks.push_back(poolKernel(0x26000, out, in, act_bytes));
    }
    ks.back().endScope = SyncScope::system;
    return ks;
}

std::uint64_t
ComposedModelWorkload::modelFootprint(double scale) const
{
    std::uint32_t layers = numLayers(scale);
    // Two activation buffers plus per-layer weight tensors.
    std::uint64_t conv_w = 256ULL * 64 * 4;
    return 2ULL * 256 * 256 * 4 + layers * conv_w;
}

} // namespace migc
