/**
 * @file
 * DeepBench recurrent networks: LSTM/GRU inference (Fw*) and
 * training (FwBw*), batch 1, hidden size 128, sequence length 16 -
 * the English-Vietnamese translation configuration the paper uses.
 *
 * Each timestep runs a gate GEMV over the recurrent weights plus a
 * small element-wise cell-update kernel, connected by device-scope
 * boundaries (no host synchronization between steps). The weight
 * matrix fits in the L2, so with load caching every step after the
 * first reads its weights from cache - the cross-kernel weight reuse
 * behind the paper's classification of the RNNs as reuse sensitive.
 * Training adds a transposed GEMV and a dW accumulation kernel whose
 * read-modify-write of the gradient buffer every step is the write
 * coalescing opportunity CacheRW exploits.
 */

#ifndef MIGC_WORKLOADS_RNN_HH
#define MIGC_WORKLOADS_RNN_HH

#include "workloads/workload.hh"

namespace migc
{

enum class RnnCell
{
    lstm, ///< 4 gates
    gru,  ///< 3 gates
};

class RnnWorkload : public Workload
{
  public:
    RnnWorkload(RnnCell cell, bool training)
        : cell_(cell), training_(training)
    {}

    std::string name() const override;

    Category category() const override { return Category::reuseSensitive; }

    WorkloadInfo paperInfo() const override;

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;

  private:
    std::uint32_t gates() const { return cell_ == RnnCell::lstm ? 4 : 3; }

    RnnCell cell_;
    bool training_;
};

} // namespace migc

#endif // MIGC_WORKLOADS_RNN_HH
