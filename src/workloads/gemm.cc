#include "workloads/gemm.hh"

#include "sim/logging.hh"

namespace migc
{

using workload_detail::region;
using workload_detail::roundTo;

namespace
{

constexpr std::uint32_t wavesPerWg = 4;

GemmShape
scaledShape(GemmShape s, double scale)
{
    s.m = static_cast<std::uint32_t>(
        roundTo(scale * s.m, s.tileM));
    return s;
}

} // namespace

KernelDesc
makeGemmKernel(const std::string &name, Addr pc_base, Addr a_base,
               Addr b_base, Addr c_base, const GemmShape &s)
{
    fatal_if(s.m % s.tileM || s.n % s.tileN || s.k % s.tileK,
             "GEMM dims must divide into tiles");
    fatal_if(s.tileM % wavesPerWg, "tileM must divide across waves");
    fatal_if(s.tileK % wavesPerWg, "tileK must divide across waves");

    std::uint32_t grid_m = s.m / s.tileM;
    std::uint32_t grid_n = s.n / s.tileN;
    std::uint32_t rows_per_wave = s.tileM / wavesPerWg;
    std::uint32_t b_rows_per_wave = s.tileK / wavesPerWg;
    std::uint32_t k_iters = s.k / s.tileK;
    // Vector MACs per wave per k-iteration.
    std::uint32_t mac_vops = rows_per_wave * s.tileN * s.tileK / 64;

    KernelDesc kd;
    kd.name = name;
    kd.wavesPerWorkgroup = wavesPerWg;
    kd.numWorkgroups = grid_m * grid_n;
    kd.endScope = SyncScope::system;
    kd.pcBase = pc_base;
    kd.makeProgram = [=](std::uint32_t wg, std::uint32_t wf) {
        // wgM varies fastest so workgroups sharing a B tile are
        // dispatched together.
        std::uint32_t wg_m = wg % grid_m;
        std::uint32_t wg_n = wg / grid_m;
        std::uint64_t e = s.elemBytes;
        std::uint64_t row0 = static_cast<std::uint64_t>(wg_m) * s.tileM +
                             static_cast<std::uint64_t>(wf) *
                                 rows_per_wave;

        ProgramBuilder b(pc_base);
        for (std::uint32_t kt = 0; kt < k_iters; ++kt) {
            std::uint64_t k0 = static_cast<std::uint64_t>(kt) * s.tileK;
            // A subtile: rows_per_wave rows x tileK elements.
            for (std::uint32_t r = 0; r < rows_per_wave; ++r) {
                Addr a = a_base + ((row0 + r) * s.k + k0) * e;
                b.load(0, a, static_cast<std::int64_t>(e), s.tileK);
            }
            // B subtile: this wave's share of tileK x tileN.
            for (std::uint32_t br = 0; br < b_rows_per_wave; ++br) {
                std::uint64_t brow = k0 + wf * b_rows_per_wave + br;
                Addr bb = b_base +
                          (brow * s.n +
                           static_cast<std::uint64_t>(wg_n) * s.tileN) *
                              e;
                b.load(1, bb, static_cast<std::int64_t>(e), s.tileN);
            }
            b.waitLoads();
            b.lds(4); // stage tiles through the LDS
            b.valu(mac_vops, s.cyclesPerVop);
        }
        // Epilogue: write this wave's C rows.
        for (std::uint32_t r = 0; r < rows_per_wave; ++r) {
            Addr c = c_base +
                     ((row0 + r) * s.n +
                      static_cast<std::uint64_t>(wg_n) * s.tileN) *
                         e;
            b.store(2, c, static_cast<std::int64_t>(e), s.tileN);
        }
        return b.take();
    };
    return kd;
}

// ---------------------------------------------------------------------
// SGEMM
// ---------------------------------------------------------------------

namespace
{

GemmShape
sgemmShape()
{
    GemmShape s;
    s.m = 512;
    s.n = 128;
    s.k = 512;
    s.elemBytes = 4;
    s.cyclesPerVop = 4;
    return s;
}

GemmShape
dgemmShape()
{
    GemmShape s;
    s.m = 512;
    s.n = 128;
    s.k = 256;
    s.elemBytes = 8;
    s.cyclesPerVop = 8; // fp64 at half rate
    return s;
}

GemmShape
fwfcShape()
{
    GemmShape s;
    s.m = 128;  // batch tile rows
    s.n = 512;  // output neurons
    s.k = 512;  // input neurons
    s.elemBytes = 4;
    s.tileM = 32;
    s.tileN = 32;
    s.tileK = 8;
    s.cyclesPerVop = 4;
    return s;
}

std::uint64_t
gemmFootprint(const GemmShape &s)
{
    return static_cast<std::uint64_t>(s.elemBytes) *
           (static_cast<std::uint64_t>(s.m) * s.k +
            static_cast<std::uint64_t>(s.k) * s.n +
            static_cast<std::uint64_t>(s.m) * s.n);
}

} // namespace

std::vector<KernelDesc>
SgemmWorkload::buildKernels(double scale) const
{
    GemmShape s = scaledShape(sgemmShape(), scale);
    return {makeGemmKernel("rocblasSgemm", 0x20000, region(0), region(1),
                           region(2), s)};
}

std::uint64_t
SgemmWorkload::modelFootprint(double scale) const
{
    return gemmFootprint(scaledShape(sgemmShape(), scale));
}

std::vector<KernelDesc>
DgemmWorkload::buildKernels(double scale) const
{
    GemmShape s = scaledShape(dgemmShape(), scale);
    return {makeGemmKernel("rocblasDgemm", 0x21000, region(0), region(1),
                           region(2), s)};
}

std::uint64_t
DgemmWorkload::modelFootprint(double scale) const
{
    return gemmFootprint(scaledShape(dgemmShape(), scale));
}

std::vector<KernelDesc>
FwFcWorkload::buildKernels(double scale) const
{
    GemmShape s = scaledShape(fwfcShape(), scale);
    return {makeGemmKernel("miopenFullyConnectedFwd", 0x22000, region(0),
                           region(1), region(2), s)};
}

std::uint64_t
FwFcWorkload::modelFootprint(double scale) const
{
    return gemmFootprint(scaledShape(fwfcShape(), scale));
}

} // namespace migc
