#include "workloads/workload.hh"

#include "sim/logging.hh"
#include "workloads/batchnorm.hh"
#include "workloads/composed.hh"
#include "workloads/elementwise.hh"
#include "workloads/gemm.hh"
#include "workloads/lrn.hh"
#include "workloads/pooling.hh"
#include "workloads/rnn.hh"
#include "workloads/softmax.hh"

namespace migc
{

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::insensitive:
        return "Insensitive";
      case Category::reuseSensitive:
        return "Reuse Sensitive";
      case Category::throughputSensitive:
        return "Throughput Sensitive";
    }
    return "?";
}

std::vector<std::string>
workloadOrder()
{
    // Figure 6 order: insensitive, reuse sensitive, throughput
    // sensitive.
    return {"DGEMM",    "SGEMM",  "CM",       "FwBN",     "FwPool",
            "FwSoft",   "BwSoft", "BwPool",   "FwGRU",    "FwLSTM",
            "FwBwGRU",  "FwBwLSTM", "BwBN",   "FwFc",     "FwAct",
            "FwLRN",    "BwAct"};
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "FwAct")
        return std::make_unique<FwActWorkload>();
    if (name == "BwAct")
        return std::make_unique<BwActWorkload>();
    if (name == "FwLRN")
        return std::make_unique<FwLrnWorkload>();
    if (name == "FwBN")
        return std::make_unique<FwBnWorkload>();
    if (name == "BwBN")
        return std::make_unique<BwBnWorkload>();
    if (name == "FwPool")
        return std::make_unique<FwPoolWorkload>();
    if (name == "BwPool")
        return std::make_unique<BwPoolWorkload>();
    if (name == "FwSoft")
        return std::make_unique<FwSoftWorkload>();
    if (name == "BwSoft")
        return std::make_unique<BwSoftWorkload>();
    if (name == "SGEMM")
        return std::make_unique<SgemmWorkload>();
    if (name == "DGEMM")
        return std::make_unique<DgemmWorkload>();
    if (name == "FwFc")
        return std::make_unique<FwFcWorkload>();
    if (name == "FwLSTM")
        return std::make_unique<RnnWorkload>(RnnCell::lstm, false);
    if (name == "FwGRU")
        return std::make_unique<RnnWorkload>(RnnCell::gru, false);
    if (name == "FwBwLSTM")
        return std::make_unique<RnnWorkload>(RnnCell::lstm, true);
    if (name == "FwBwGRU")
        return std::make_unique<RnnWorkload>(RnnCell::gru, true);
    if (name == "CM")
        return std::make_unique<ComposedModelWorkload>();
    fatal("unknown workload '%s'", name.c_str());
}

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads()
{
    std::vector<std::unique_ptr<Workload>> all;
    for (const auto &name : workloadOrder())
        all.push_back(makeWorkload(name));
    return all;
}

namespace workload_detail
{

std::uint64_t
roundTo(double v, std::uint64_t m)
{
    auto r = static_cast<std::uint64_t>(v / static_cast<double>(m)) * m;
    return r < m ? m : r;
}

} // namespace workload_detail

} // namespace migc
