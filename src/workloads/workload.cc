#include "workloads/workload.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/names.hh"
#include "workloads/attention.hh"
#include "workloads/batchnorm.hh"
#include "workloads/composed.hh"
#include "workloads/elementwise.hh"
#include "workloads/gemm.hh"
#include "workloads/lrn.hh"
#include "workloads/pooling.hh"
#include "workloads/rnn.hh"
#include "workloads/softmax.hh"

namespace migc
{

const char *
categoryName(Category c)
{
    switch (c) {
      case Category::insensitive:
        return "Insensitive";
      case Category::reuseSensitive:
        return "Reuse Sensitive";
      case Category::throughputSensitive:
        return "Throughput Sensitive";
    }
    return "?";
}

// ---------------------------------------------------------------------
// Workload (scale-validating non-virtual entry points)
// ---------------------------------------------------------------------

std::vector<KernelDesc>
Workload::kernels(double scale) const
{
    workload_detail::checkScale(name().c_str(), scale);
    return buildKernels(scale);
}

std::uint64_t
Workload::footprintBytes(double scale) const
{
    workload_detail::checkScale(name().c_str(), scale);
    return modelFootprint(scale);
}

// ---------------------------------------------------------------------
// WorkloadRegistry
// ---------------------------------------------------------------------

namespace
{

template <typename W, typename... Args>
WorkloadRegistry::Entry
builtin(const char *name, int rank, Args... args)
{
    return WorkloadRegistry::Entry{
        name, [args...] { return std::make_unique<W>(args...); }, rank};
}

} // namespace

WorkloadRegistry::WorkloadRegistry()
{
    // The paper's 17 workloads; figure6Rank encodes the Figure 6
    // ordering (insensitive, reuse sensitive, throughput sensitive)
    // independently of registration order.
    add(builtin<DgemmWorkload>("DGEMM", 0));
    add(builtin<SgemmWorkload>("SGEMM", 1));
    add(builtin<ComposedModelWorkload>("CM", 2));
    add(builtin<FwBnWorkload>("FwBN", 3));
    add(builtin<FwPoolWorkload>("FwPool", 4));
    add(builtin<FwSoftWorkload>("FwSoft", 5));
    add(builtin<BwSoftWorkload>("BwSoft", 6));
    add(builtin<BwPoolWorkload>("BwPool", 7));
    add(builtin<RnnWorkload>("FwGRU", 8, RnnCell::gru, false));
    add(builtin<RnnWorkload>("FwLSTM", 9, RnnCell::lstm, false));
    add(builtin<RnnWorkload>("FwBwGRU", 10, RnnCell::gru, true));
    add(builtin<RnnWorkload>("FwBwLSTM", 11, RnnCell::lstm, true));
    add(builtin<BwBnWorkload>("BwBN", 12));
    add(builtin<FwFcWorkload>("FwFc", 13));
    add(builtin<FwActWorkload>("FwAct", 14));
    add(builtin<FwLrnWorkload>("FwLRN", 15));
    add(builtin<BwActWorkload>("BwAct", 16));

    // Model extensions beyond the paper's suite (rank -1).
    add(builtin<AttentionWorkload>("Attn", -1));
}

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    return registry;
}

void
WorkloadRegistry::add(Entry entry)
{
    // Workload names are the first field of every cache row: a name
    // the v3 format cannot round-trip would be cached-and-lost. The
    // literal name "workload" is also rejected - its rows would
    // start with the CSV header prefix "workload," and be skipped as
    // headers on reload.
    checkCacheName("workload", entry.name);
    fatal_if(entry.name == "workload",
             "workload name 'workload' collides with the run-cache "
             "CSV header prefix; its rows would be dropped on reload");
    for (auto &e : entries_) {
        if (e.name == entry.name) {
            e = std::move(entry);
            return;
        }
    }
    entries_.push_back(std::move(entry));
}

std::unique_ptr<Workload>
WorkloadRegistry::make(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return e.factory();
    }
    fatal("unknown workload '%s' (valid: %s)", name.c_str(),
          joinStrings(extendedOrder()).c_str());
}

bool
WorkloadRegistry::known(const std::string &name) const
{
    for (const auto &e : entries_) {
        if (e.name == name)
            return true;
    }
    return false;
}

std::vector<std::string>
WorkloadRegistry::paperOrder() const
{
    std::vector<const Entry *> paper;
    for (const auto &e : entries_) {
        if (e.figure6Rank >= 0)
            paper.push_back(&e);
    }
    std::sort(paper.begin(), paper.end(),
              [](const Entry *a, const Entry *b) {
                  return a->figure6Rank < b->figure6Rank;
              });
    std::vector<std::string> names;
    names.reserve(paper.size());
    for (const Entry *e : paper)
        names.push_back(e->name);
    return names;
}

std::vector<std::string>
WorkloadRegistry::extendedOrder() const
{
    std::vector<std::string> names = paperOrder();
    for (const auto &e : entries_) {
        if (e.figure6Rank < 0)
            names.push_back(e.name);
    }
    return names;
}

std::string
WorkloadRegistry::describe() const
{
    std::string out;
    for (const auto &name : extendedOrder()) {
        auto wl = make(name);
        out += csprintf("  %-9s %-20s %s\n", name.c_str(),
                        categoryName(wl->category()),
                        wl->paperInfo().input.c_str());
    }
    return out;
}

// ---------------------------------------------------------------------
// Registry-backed free functions
// ---------------------------------------------------------------------

std::vector<std::string>
workloadOrder()
{
    return WorkloadRegistry::instance().paperOrder();
}

std::vector<std::string>
extendedWorkloadOrder()
{
    return WorkloadRegistry::instance().extendedOrder();
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    return WorkloadRegistry::instance().make(name);
}

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads()
{
    std::vector<std::unique_ptr<Workload>> all;
    for (const auto &name : workloadOrder())
        all.push_back(makeWorkload(name));
    return all;
}

namespace workload_detail
{

std::uint64_t
roundTo(double v, std::uint64_t m)
{
    auto r = static_cast<std::uint64_t>(v / static_cast<double>(m)) * m;
    return r < m ? m : r;
}

void
checkScale(const char *workload, double scale)
{
    fatal_if(!std::isfinite(scale) || scale <= 0.0,
             "workload %s: footprint scale must be finite and > 0 "
             "(got %g)",
             workload, scale);
}

} // namespace workload_detail

} // namespace migc
