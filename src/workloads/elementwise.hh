/**
 * @file
 * Activation layers (DNNMark FwAct / BwAct): element-wise ReLU
 * forward and backward.
 *
 * Dense streaming with zero reuse and minimal compute - the paper's
 * canonical throughput-sensitive workloads (Section VI.A): caching
 * only adds allocation stalls and DRAM row-locality disruption.
 * Forward reads x and writes y; backward reads dy and y and writes
 * dx, so the backward pass has a 2:1 load:store mix.
 */

#ifndef MIGC_WORKLOADS_ELEMENTWISE_HH
#define MIGC_WORKLOADS_ELEMENTWISE_HH

#include "workloads/workload.hh"

namespace migc
{

class FwActWorkload : public Workload
{
  public:
    std::string name() const override { return "FwAct"; }

    Category
    category() const override
    {
        return Category::throughputSensitive;
    }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 100", 1, 1, "1.6 GB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

class BwActWorkload : public Workload
{
  public:
    std::string name() const override { return "BwAct"; }

    Category
    category() const override
    {
        return Category::throughputSensitive;
    }

    WorkloadInfo
    paperInfo() const override
    {
        return {"Batch size 100", 1, 1, "2.4 GB"};
    }

  protected:
    std::vector<KernelDesc> buildKernels(double scale) const override;

    std::uint64_t modelFootprint(double scale) const override;
};

} // namespace migc

#endif // MIGC_WORKLOADS_ELEMENTWISE_HH
