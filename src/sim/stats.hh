/**
 * @file
 * A small hierarchical statistics package.
 *
 * Stats are plain counters owned by simulation objects; a StatGroup
 * collects (name, description, accessor) triples so they can be
 * dumped uniformly and harvested by the experiment harness.
 */

#ifndef MIGC_SIM_STATS_HH
#define MIGC_SIM_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace migc
{

/** A monotonically increasing scalar counter. */
class StatScalar
{
  public:
    StatScalar() = default;

    StatScalar &
    operator+=(double v)
    {
        value_ += v;
        return *this;
    }

    StatScalar &
    operator++()
    {
        value_ += 1.0;
        return *this;
    }

    void set(double v) { value_ = v; }

    double value() const { return value_; }

    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** Running average (sum / count). */
class StatAverage
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        count_ += 1.0;
    }

    double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }

    double count() const { return count_; }

    double sum() const { return sum_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0.0;
    }

  private:
    double sum_ = 0.0;
    double count_ = 0.0;
};

/**
 * A fixed-bucket histogram over [min, max); out-of-range samples go
 * to saturating end buckets.
 */
class StatHistogram
{
  public:
    StatHistogram() : StatHistogram(0.0, 1.0, 1) {}

    StatHistogram(double min, double max, std::size_t buckets);

    void sample(double v, double weight = 1.0);

    double count() const { return count_; }

    double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }

    double minSample() const { return minSeen_; }

    double maxSample() const { return maxSeen_; }

    const std::vector<double> &buckets() const { return buckets_; }

    double bucketLow(std::size_t i) const;

    void reset();

  private:
    double min_;
    double max_;
    double width_;
    std::vector<double> buckets_;
    double count_ = 0.0;
    double sum_ = 0.0;
    double minSeen_ = 0.0;
    double maxSeen_ = 0.0;
    bool any_ = false;
};

/**
 * Registry of named statistics for one subsystem, arranged in a tree
 * by dotted path.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Register a scalar stat under @p name. */
    void addScalar(const std::string &name, const std::string &desc,
                   const StatScalar *stat);

    /** Register a derived value computed at dump time. */
    void addFormula(const std::string &name, const std::string &desc,
                    std::function<double()> fn);

    void addHistogram(const std::string &name, const std::string &desc,
                      const StatHistogram *stat);

    /** Create (or get) a child group named @p name. */
    StatGroup &child(const std::string &name);

    const std::string &name() const { return name_; }

    /** Fetch one value by dotted path, e.g. "l2.bank0.hits". */
    double get(const std::string &dotted_path) const;

    /** True if @p dotted_path names a registered value. */
    bool has(const std::string &dotted_path) const;

    /** Sum a stat over all direct children, e.g. sumOverChildren("hits"). */
    double sumOverChildren(const std::string &leaf_path) const;

    /** Dump all stats (recursively) as "path value # desc" lines. */
    void dump(std::ostream &os, const std::string &prefix = "") const;

    /** Flatten to (path, value) pairs for programmatic harvest. */
    void flatten(std::map<std::string, double> &out,
                 const std::string &prefix = "") const;

  private:
    struct Entry
    {
        std::string name;
        std::string desc;
        std::function<double()> value;
        const StatHistogram *histogram = nullptr;
    };

    const Entry *findLocal(const std::string &name) const;

    std::string name_;
    std::vector<Entry> entries_;
    // map keeps deterministic iteration order for dumps
    std::map<std::string, StatGroup> children_;
};

} // namespace migc

#endif // MIGC_SIM_STATS_HH
