/**
 * @file
 * Named simulation objects with access to a shared event queue.
 */

#ifndef MIGC_SIM_SIM_OBJECT_HH
#define MIGC_SIM_SIM_OBJECT_HH

#include <string>
#include <utility>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace migc
{

class StatGroup;

/**
 * Base class for every modeled hardware structure.
 *
 * A SimObject knows its name, its event queue, and its clock domain;
 * subclasses schedule member events through the helpers here so all
 * timing stays edge-aligned.
 */
class SimObject
{
  public:
    SimObject(std::string name, EventQueue &eq,
              ClockDomain clock = ClockDomain(1000))
        : name_(std::move(name)), eventq_(eq), clock_(clock)
    {}

    virtual ~SimObject() = default;

    SimObject(const SimObject &) = delete;
    SimObject &operator=(const SimObject &) = delete;

    const std::string &name() const { return name_; }

    EventQueue &eventQueue() { return eventq_; }

    const ClockDomain &clockDomain() const { return clock_; }

    Tick curTick() const { return eventq_.curTick(); }

    /** The tick of the clock edge @p delay cycles after now. */
    Tick
    clockEdge(Cycles delay = Cycles(0)) const
    {
        return clock_.clockEdge(eventq_.curTick(), delay);
    }

    /** Current time expressed in this object's cycles. */
    Cycles
    curCycle() const
    {
        return clock_.ticksToCycles(eventq_.curTick());
    }

    Tick cyclesToTicks(Cycles c) const { return clock_.cyclesToTicks(c); }

    /** Schedule @p ev at the clock edge @p delay cycles from now. */
    void
    schedule(Event &ev, Cycles delay)
    {
        eventq_.schedule(&ev, clockEdge(delay));
    }

    /** Schedule @p ev at absolute tick @p when. */
    void
    scheduleAt(Event &ev, Tick when)
    {
        eventq_.schedule(&ev, when);
    }

    /** Register statistics with @p group (called once at build time). */
    virtual void regStats(StatGroup &group) { (void)group; }

  private:
    std::string name_;
    EventQueue &eventq_;
    ClockDomain clock_;
};

} // namespace migc

#endif // MIGC_SIM_SIM_OBJECT_HH
